add_test([=[Fig1.PathFeedbackRetainsTheCrucialIntermediate]=]  /root/repo/build/tests/Fig1Test [==[--gtest_filter=Fig1.PathFeedbackRetainsTheCrucialIntermediate]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Fig1.PathFeedbackRetainsTheCrucialIntermediate]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  Fig1Test_TESTS Fig1.PathFeedbackRetainsTheCrucialIntermediate)
