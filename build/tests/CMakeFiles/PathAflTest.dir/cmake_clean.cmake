file(REMOVE_RECURSE
  "CMakeFiles/PathAflTest.dir/PathAflTest.cpp.o"
  "CMakeFiles/PathAflTest.dir/PathAflTest.cpp.o.d"
  "PathAflTest"
  "PathAflTest.pdb"
  "PathAflTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PathAflTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
