# Empty compiler generated dependencies file for PathAflTest.
# This may be replaced when dependencies are built.
