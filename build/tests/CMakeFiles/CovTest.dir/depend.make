# Empty dependencies file for CovTest.
# This may be replaced when dependencies are built.
