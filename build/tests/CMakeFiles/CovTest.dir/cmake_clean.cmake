file(REMOVE_RECURSE
  "CMakeFiles/CovTest.dir/CovTest.cpp.o"
  "CMakeFiles/CovTest.dir/CovTest.cpp.o.d"
  "CovTest"
  "CovTest.pdb"
  "CovTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CovTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
