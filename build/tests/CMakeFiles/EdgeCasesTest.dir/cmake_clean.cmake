file(REMOVE_RECURSE
  "CMakeFiles/EdgeCasesTest.dir/EdgeCasesTest.cpp.o"
  "CMakeFiles/EdgeCasesTest.dir/EdgeCasesTest.cpp.o.d"
  "EdgeCasesTest"
  "EdgeCasesTest.pdb"
  "EdgeCasesTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EdgeCasesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
