# Empty dependencies file for EdgeCasesTest.
# This may be replaced when dependencies are built.
