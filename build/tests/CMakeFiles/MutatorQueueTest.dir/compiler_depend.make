# Empty compiler generated dependencies file for MutatorQueueTest.
# This may be replaced when dependencies are built.
