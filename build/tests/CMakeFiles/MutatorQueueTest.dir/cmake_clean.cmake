file(REMOVE_RECURSE
  "CMakeFiles/MutatorQueueTest.dir/MutatorQueueTest.cpp.o"
  "CMakeFiles/MutatorQueueTest.dir/MutatorQueueTest.cpp.o.d"
  "MutatorQueueTest"
  "MutatorQueueTest.pdb"
  "MutatorQueueTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MutatorQueueTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
