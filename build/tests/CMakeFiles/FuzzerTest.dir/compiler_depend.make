# Empty compiler generated dependencies file for FuzzerTest.
# This may be replaced when dependencies are built.
