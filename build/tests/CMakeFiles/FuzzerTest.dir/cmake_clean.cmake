file(REMOVE_RECURSE
  "CMakeFiles/FuzzerTest.dir/FuzzerTest.cpp.o"
  "CMakeFiles/FuzzerTest.dir/FuzzerTest.cpp.o.d"
  "FuzzerTest"
  "FuzzerTest.pdb"
  "FuzzerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FuzzerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
