file(REMOVE_RECURSE
  "CMakeFiles/StrategyTest.dir/StrategyTest.cpp.o"
  "CMakeFiles/StrategyTest.dir/StrategyTest.cpp.o.d"
  "StrategyTest"
  "StrategyTest.pdb"
  "StrategyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StrategyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
