# Empty dependencies file for StrategyTest.
# This may be replaced when dependencies are built.
