# Empty dependencies file for InstrumentTest.
# This may be replaced when dependencies are built.
