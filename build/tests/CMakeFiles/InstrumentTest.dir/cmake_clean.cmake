file(REMOVE_RECURSE
  "CMakeFiles/InstrumentTest.dir/InstrumentTest.cpp.o"
  "CMakeFiles/InstrumentTest.dir/InstrumentTest.cpp.o.d"
  "InstrumentTest"
  "InstrumentTest.pdb"
  "InstrumentTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InstrumentTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
