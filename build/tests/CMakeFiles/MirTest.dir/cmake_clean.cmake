file(REMOVE_RECURSE
  "CMakeFiles/MirTest.dir/MirTest.cpp.o"
  "CMakeFiles/MirTest.dir/MirTest.cpp.o.d"
  "MirTest"
  "MirTest.pdb"
  "MirTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MirTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
