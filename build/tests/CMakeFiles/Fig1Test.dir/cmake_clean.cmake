file(REMOVE_RECURSE
  "CMakeFiles/Fig1Test.dir/Fig1Test.cpp.o"
  "CMakeFiles/Fig1Test.dir/Fig1Test.cpp.o.d"
  "Fig1Test"
  "Fig1Test.pdb"
  "Fig1Test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Fig1Test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
