# Empty compiler generated dependencies file for Fig1Test.
# This may be replaced when dependencies are built.
