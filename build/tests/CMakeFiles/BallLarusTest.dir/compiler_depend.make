# Empty compiler generated dependencies file for BallLarusTest.
# This may be replaced when dependencies are built.
