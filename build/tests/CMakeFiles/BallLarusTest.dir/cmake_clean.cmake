file(REMOVE_RECURSE
  "BallLarusTest"
  "BallLarusTest.pdb"
  "BallLarusTest[1]_tests.cmake"
  "CMakeFiles/BallLarusTest.dir/BallLarusTest.cpp.o"
  "CMakeFiles/BallLarusTest.dir/BallLarusTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BallLarusTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
