file(REMOVE_RECURSE
  "CMakeFiles/TargetsTest.dir/TargetsTest.cpp.o"
  "CMakeFiles/TargetsTest.dir/TargetsTest.cpp.o.d"
  "TargetsTest"
  "TargetsTest.pdb"
  "TargetsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TargetsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
