# Empty compiler generated dependencies file for TargetsTest.
# This may be replaced when dependencies are built.
