# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/MirTest[1]_include.cmake")
include("/root/repo/build/tests/LangTest[1]_include.cmake")
include("/root/repo/build/tests/CfgTest[1]_include.cmake")
include("/root/repo/build/tests/BallLarusTest[1]_include.cmake")
include("/root/repo/build/tests/InstrumentTest[1]_include.cmake")
include("/root/repo/build/tests/VmTest[1]_include.cmake")
include("/root/repo/build/tests/CovTest[1]_include.cmake")
include("/root/repo/build/tests/MutatorQueueTest[1]_include.cmake")
include("/root/repo/build/tests/FuzzerTest[1]_include.cmake")
include("/root/repo/build/tests/StrategyTest[1]_include.cmake")
include("/root/repo/build/tests/PathAflTest[1]_include.cmake")
include("/root/repo/build/tests/TargetsTest[1]_include.cmake")
include("/root/repo/build/tests/Fig1Test[1]_include.cmake")
include("/root/repo/build/tests/EdgeCasesTest[1]_include.cmake")
