# Empty dependencies file for table3_queue_sizes.
# This may be replaced when dependencies are built.
