file(REMOVE_RECURSE
  "CMakeFiles/table9_crash_counts.dir/table9_crash_counts.cpp.o"
  "CMakeFiles/table9_crash_counts.dir/table9_crash_counts.cpp.o.d"
  "table9_crash_counts"
  "table9_crash_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_crash_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
