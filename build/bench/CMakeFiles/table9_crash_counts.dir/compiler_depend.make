# Empty compiler generated dependencies file for table9_crash_counts.
# This may be replaced when dependencies are built.
