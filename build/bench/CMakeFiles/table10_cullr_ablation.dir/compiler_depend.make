# Empty compiler generated dependencies file for table10_cullr_ablation.
# This may be replaced when dependencies are built.
