file(REMOVE_RECURSE
  "CMakeFiles/table10_cullr_ablation.dir/table10_cullr_ablation.cpp.o"
  "CMakeFiles/table10_cullr_ablation.dir/table10_cullr_ablation.cpp.o.d"
  "table10_cullr_ablation"
  "table10_cullr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_cullr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
