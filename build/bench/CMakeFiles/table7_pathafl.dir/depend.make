# Empty dependencies file for table7_pathafl.
# This may be replaced when dependencies are built.
