file(REMOVE_RECURSE
  "CMakeFiles/table7_pathafl.dir/table7_pathafl.cpp.o"
  "CMakeFiles/table7_pathafl.dir/table7_pathafl.cpp.o.d"
  "table7_pathafl"
  "table7_pathafl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_pathafl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
