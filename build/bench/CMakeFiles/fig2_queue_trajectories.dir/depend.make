# Empty dependencies file for fig2_queue_trajectories.
# This may be replaced when dependencies are built.
