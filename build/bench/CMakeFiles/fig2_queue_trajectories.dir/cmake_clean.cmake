file(REMOVE_RECURSE
  "CMakeFiles/fig2_queue_trajectories.dir/fig2_queue_trajectories.cpp.o"
  "CMakeFiles/fig2_queue_trajectories.dir/fig2_queue_trajectories.cpp.o.d"
  "fig2_queue_trajectories"
  "fig2_queue_trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_queue_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
