file(REMOVE_RECURSE
  "CMakeFiles/table1_queue_growth.dir/table1_queue_growth.cpp.o"
  "CMakeFiles/table1_queue_growth.dir/table1_queue_growth.cpp.o.d"
  "table1_queue_growth"
  "table1_queue_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_queue_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
