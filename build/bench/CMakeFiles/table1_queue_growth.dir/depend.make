# Empty dependencies file for table1_queue_growth.
# This may be replaced when dependencies are built.
