file(REMOVE_RECURSE
  "CMakeFiles/table4_edge_coverage.dir/table4_edge_coverage.cpp.o"
  "CMakeFiles/table4_edge_coverage.dir/table4_edge_coverage.cpp.o.d"
  "table4_edge_coverage"
  "table4_edge_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_edge_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
