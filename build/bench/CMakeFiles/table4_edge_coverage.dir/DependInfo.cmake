
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_edge_coverage.cpp" "bench/CMakeFiles/table4_edge_coverage.dir/table4_edge_coverage.cpp.o" "gcc" "bench/CMakeFiles/table4_edge_coverage.dir/table4_edge_coverage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/targets/CMakeFiles/pf_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/pf_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/pf_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/cov/CMakeFiles/pf_cov.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/pf_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/bl/CMakeFiles/pf_bl.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/pf_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/pathafl/CMakeFiles/pf_pathafl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
