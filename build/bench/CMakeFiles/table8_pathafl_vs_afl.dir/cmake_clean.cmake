file(REMOVE_RECURSE
  "CMakeFiles/table8_pathafl_vs_afl.dir/table8_pathafl_vs_afl.cpp.o"
  "CMakeFiles/table8_pathafl_vs_afl.dir/table8_pathafl_vs_afl.cpp.o.d"
  "table8_pathafl_vs_afl"
  "table8_pathafl_vs_afl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_pathafl_vs_afl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
