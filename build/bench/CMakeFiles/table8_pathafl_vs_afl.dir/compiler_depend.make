# Empty compiler generated dependencies file for table8_pathafl_vs_afl.
# This may be replaced when dependencies are built.
