# Empty dependencies file for table2_bug_finding.
# This may be replaced when dependencies are built.
