file(REMOVE_RECURSE
  "CMakeFiles/table6_median_bugs.dir/table6_median_bugs.cpp.o"
  "CMakeFiles/table6_median_bugs.dir/table6_median_bugs.cpp.o.d"
  "table6_median_bugs"
  "table6_median_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_median_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
