# Empty dependencies file for table6_median_bugs.
# This may be replaced when dependencies are built.
