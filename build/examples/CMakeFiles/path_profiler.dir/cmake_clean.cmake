file(REMOVE_RECURSE
  "CMakeFiles/path_profiler.dir/path_profiler.cpp.o"
  "CMakeFiles/path_profiler.dir/path_profiler.cpp.o.d"
  "path_profiler"
  "path_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
