# Empty dependencies file for path_profiler.
# This may be replaced when dependencies are built.
