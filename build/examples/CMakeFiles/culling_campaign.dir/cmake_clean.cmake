file(REMOVE_RECURSE
  "CMakeFiles/culling_campaign.dir/culling_campaign.cpp.o"
  "CMakeFiles/culling_campaign.dir/culling_campaign.cpp.o.d"
  "culling_campaign"
  "culling_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culling_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
