# Empty dependencies file for culling_campaign.
# This may be replaced when dependencies are built.
