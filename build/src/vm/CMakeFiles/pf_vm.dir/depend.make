# Empty dependencies file for pf_vm.
# This may be replaced when dependencies are built.
