file(REMOVE_RECURSE
  "libpf_vm.a"
)
