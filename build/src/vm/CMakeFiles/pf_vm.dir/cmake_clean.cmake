file(REMOVE_RECURSE
  "CMakeFiles/pf_vm.dir/Vm.cpp.o"
  "CMakeFiles/pf_vm.dir/Vm.cpp.o.d"
  "libpf_vm.a"
  "libpf_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
