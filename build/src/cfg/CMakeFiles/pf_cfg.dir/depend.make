# Empty dependencies file for pf_cfg.
# This may be replaced when dependencies are built.
