file(REMOVE_RECURSE
  "libpf_cfg.a"
)
