file(REMOVE_RECURSE
  "CMakeFiles/pf_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/pf_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/pf_cfg.dir/EdgeSplit.cpp.o"
  "CMakeFiles/pf_cfg.dir/EdgeSplit.cpp.o.d"
  "libpf_cfg.a"
  "libpf_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
