file(REMOVE_RECURSE
  "libpf_pathafl.a"
)
