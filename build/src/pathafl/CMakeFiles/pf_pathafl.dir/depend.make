# Empty dependencies file for pf_pathafl.
# This may be replaced when dependencies are built.
