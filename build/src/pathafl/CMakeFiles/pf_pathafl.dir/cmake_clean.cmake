file(REMOVE_RECURSE
  "CMakeFiles/pf_pathafl.dir/PathAfl.cpp.o"
  "CMakeFiles/pf_pathafl.dir/PathAfl.cpp.o.d"
  "libpf_pathafl.a"
  "libpf_pathafl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_pathafl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
