file(REMOVE_RECURSE
  "CMakeFiles/pf_strategy.dir/Campaign.cpp.o"
  "CMakeFiles/pf_strategy.dir/Campaign.cpp.o.d"
  "CMakeFiles/pf_strategy.dir/Evaluation.cpp.o"
  "CMakeFiles/pf_strategy.dir/Evaluation.cpp.o.d"
  "libpf_strategy.a"
  "libpf_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
