file(REMOVE_RECURSE
  "libpf_strategy.a"
)
