# Empty dependencies file for pf_strategy.
# This may be replaced when dependencies are built.
