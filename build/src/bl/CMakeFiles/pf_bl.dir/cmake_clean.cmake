file(REMOVE_RECURSE
  "CMakeFiles/pf_bl.dir/BallLarus.cpp.o"
  "CMakeFiles/pf_bl.dir/BallLarus.cpp.o.d"
  "libpf_bl.a"
  "libpf_bl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_bl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
