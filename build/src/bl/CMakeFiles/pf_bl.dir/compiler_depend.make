# Empty compiler generated dependencies file for pf_bl.
# This may be replaced when dependencies are built.
