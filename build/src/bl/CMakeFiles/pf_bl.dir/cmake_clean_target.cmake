file(REMOVE_RECURSE
  "libpf_bl.a"
)
