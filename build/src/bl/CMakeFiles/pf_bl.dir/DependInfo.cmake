
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bl/BallLarus.cpp" "src/bl/CMakeFiles/pf_bl.dir/BallLarus.cpp.o" "gcc" "src/bl/CMakeFiles/pf_bl.dir/BallLarus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/pf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/pf_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
