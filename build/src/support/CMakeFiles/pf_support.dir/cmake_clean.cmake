file(REMOVE_RECURSE
  "CMakeFiles/pf_support.dir/Env.cpp.o"
  "CMakeFiles/pf_support.dir/Env.cpp.o.d"
  "CMakeFiles/pf_support.dir/Rng.cpp.o"
  "CMakeFiles/pf_support.dir/Rng.cpp.o.d"
  "CMakeFiles/pf_support.dir/Stats.cpp.o"
  "CMakeFiles/pf_support.dir/Stats.cpp.o.d"
  "CMakeFiles/pf_support.dir/Table.cpp.o"
  "CMakeFiles/pf_support.dir/Table.cpp.o.d"
  "libpf_support.a"
  "libpf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
