file(REMOVE_RECURSE
  "CMakeFiles/pf_instrument.dir/Instrument.cpp.o"
  "CMakeFiles/pf_instrument.dir/Instrument.cpp.o.d"
  "CMakeFiles/pf_instrument.dir/ShadowEdges.cpp.o"
  "CMakeFiles/pf_instrument.dir/ShadowEdges.cpp.o.d"
  "libpf_instrument.a"
  "libpf_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
