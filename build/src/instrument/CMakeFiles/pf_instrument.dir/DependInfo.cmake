
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/Instrument.cpp" "src/instrument/CMakeFiles/pf_instrument.dir/Instrument.cpp.o" "gcc" "src/instrument/CMakeFiles/pf_instrument.dir/Instrument.cpp.o.d"
  "/root/repo/src/instrument/ShadowEdges.cpp" "src/instrument/CMakeFiles/pf_instrument.dir/ShadowEdges.cpp.o" "gcc" "src/instrument/CMakeFiles/pf_instrument.dir/ShadowEdges.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bl/CMakeFiles/pf_bl.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/pf_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
