# Empty compiler generated dependencies file for pf_instrument.
# This may be replaced when dependencies are built.
