file(REMOVE_RECURSE
  "libpf_instrument.a"
)
