# Empty compiler generated dependencies file for pf_mir.
# This may be replaced when dependencies are built.
