file(REMOVE_RECURSE
  "libpf_mir.a"
)
