file(REMOVE_RECURSE
  "CMakeFiles/pf_mir.dir/Builder.cpp.o"
  "CMakeFiles/pf_mir.dir/Builder.cpp.o.d"
  "CMakeFiles/pf_mir.dir/Printer.cpp.o"
  "CMakeFiles/pf_mir.dir/Printer.cpp.o.d"
  "CMakeFiles/pf_mir.dir/Verifier.cpp.o"
  "CMakeFiles/pf_mir.dir/Verifier.cpp.o.d"
  "libpf_mir.a"
  "libpf_mir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_mir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
