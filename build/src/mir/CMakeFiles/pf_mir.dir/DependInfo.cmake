
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mir/Builder.cpp" "src/mir/CMakeFiles/pf_mir.dir/Builder.cpp.o" "gcc" "src/mir/CMakeFiles/pf_mir.dir/Builder.cpp.o.d"
  "/root/repo/src/mir/Printer.cpp" "src/mir/CMakeFiles/pf_mir.dir/Printer.cpp.o" "gcc" "src/mir/CMakeFiles/pf_mir.dir/Printer.cpp.o.d"
  "/root/repo/src/mir/Verifier.cpp" "src/mir/CMakeFiles/pf_mir.dir/Verifier.cpp.o" "gcc" "src/mir/CMakeFiles/pf_mir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
