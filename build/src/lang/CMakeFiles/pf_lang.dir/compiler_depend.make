# Empty compiler generated dependencies file for pf_lang.
# This may be replaced when dependencies are built.
