file(REMOVE_RECURSE
  "libpf_lang.a"
)
