file(REMOVE_RECURSE
  "CMakeFiles/pf_lang.dir/Compile.cpp.o"
  "CMakeFiles/pf_lang.dir/Compile.cpp.o.d"
  "CMakeFiles/pf_lang.dir/Lexer.cpp.o"
  "CMakeFiles/pf_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/pf_lang.dir/Parser.cpp.o"
  "CMakeFiles/pf_lang.dir/Parser.cpp.o.d"
  "libpf_lang.a"
  "libpf_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
