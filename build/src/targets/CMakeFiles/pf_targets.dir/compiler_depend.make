# Empty compiler generated dependencies file for pf_targets.
# This may be replaced when dependencies are built.
