
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/Cflow.cpp" "src/targets/CMakeFiles/pf_targets.dir/Cflow.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Cflow.cpp.o.d"
  "/root/repo/src/targets/Exiv2.cpp" "src/targets/CMakeFiles/pf_targets.dir/Exiv2.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Exiv2.cpp.o.d"
  "/root/repo/src/targets/Ffmpeg.cpp" "src/targets/CMakeFiles/pf_targets.dir/Ffmpeg.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Ffmpeg.cpp.o.d"
  "/root/repo/src/targets/Flvmeta.cpp" "src/targets/CMakeFiles/pf_targets.dir/Flvmeta.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Flvmeta.cpp.o.d"
  "/root/repo/src/targets/Gdk.cpp" "src/targets/CMakeFiles/pf_targets.dir/Gdk.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Gdk.cpp.o.d"
  "/root/repo/src/targets/Imginfo.cpp" "src/targets/CMakeFiles/pf_targets.dir/Imginfo.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Imginfo.cpp.o.d"
  "/root/repo/src/targets/Infotocap.cpp" "src/targets/CMakeFiles/pf_targets.dir/Infotocap.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Infotocap.cpp.o.d"
  "/root/repo/src/targets/Jhead.cpp" "src/targets/CMakeFiles/pf_targets.dir/Jhead.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Jhead.cpp.o.d"
  "/root/repo/src/targets/Jq.cpp" "src/targets/CMakeFiles/pf_targets.dir/Jq.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Jq.cpp.o.d"
  "/root/repo/src/targets/Lame.cpp" "src/targets/CMakeFiles/pf_targets.dir/Lame.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Lame.cpp.o.d"
  "/root/repo/src/targets/Mp3gain.cpp" "src/targets/CMakeFiles/pf_targets.dir/Mp3gain.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Mp3gain.cpp.o.d"
  "/root/repo/src/targets/Mp42aac.cpp" "src/targets/CMakeFiles/pf_targets.dir/Mp42aac.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Mp42aac.cpp.o.d"
  "/root/repo/src/targets/Mujs.cpp" "src/targets/CMakeFiles/pf_targets.dir/Mujs.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Mujs.cpp.o.d"
  "/root/repo/src/targets/NmNew.cpp" "src/targets/CMakeFiles/pf_targets.dir/NmNew.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/NmNew.cpp.o.d"
  "/root/repo/src/targets/Objdump.cpp" "src/targets/CMakeFiles/pf_targets.dir/Objdump.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Objdump.cpp.o.d"
  "/root/repo/src/targets/Pdftotext.cpp" "src/targets/CMakeFiles/pf_targets.dir/Pdftotext.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Pdftotext.cpp.o.d"
  "/root/repo/src/targets/Registry.cpp" "src/targets/CMakeFiles/pf_targets.dir/Registry.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Registry.cpp.o.d"
  "/root/repo/src/targets/Sqlite3.cpp" "src/targets/CMakeFiles/pf_targets.dir/Sqlite3.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Sqlite3.cpp.o.d"
  "/root/repo/src/targets/Tiffsplit.cpp" "src/targets/CMakeFiles/pf_targets.dir/Tiffsplit.cpp.o" "gcc" "src/targets/CMakeFiles/pf_targets.dir/Tiffsplit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strategy/CMakeFiles/pf_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/pf_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/cov/CMakeFiles/pf_cov.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/pf_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/bl/CMakeFiles/pf_bl.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/pf_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/pathafl/CMakeFiles/pf_pathafl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
