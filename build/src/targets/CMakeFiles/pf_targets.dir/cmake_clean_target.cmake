file(REMOVE_RECURSE
  "libpf_targets.a"
)
