# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("mir")
subdirs("lang")
subdirs("cfg")
subdirs("bl")
subdirs("instrument")
subdirs("vm")
subdirs("cov")
subdirs("fuzz")
subdirs("pathafl")
subdirs("strategy")
subdirs("targets")
