file(REMOVE_RECURSE
  "libpf_fuzz.a"
)
