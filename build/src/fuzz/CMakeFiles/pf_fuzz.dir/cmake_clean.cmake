file(REMOVE_RECURSE
  "CMakeFiles/pf_fuzz.dir/Fuzzer.cpp.o"
  "CMakeFiles/pf_fuzz.dir/Fuzzer.cpp.o.d"
  "CMakeFiles/pf_fuzz.dir/Mutator.cpp.o"
  "CMakeFiles/pf_fuzz.dir/Mutator.cpp.o.d"
  "CMakeFiles/pf_fuzz.dir/Queue.cpp.o"
  "CMakeFiles/pf_fuzz.dir/Queue.cpp.o.d"
  "libpf_fuzz.a"
  "libpf_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
