# Empty dependencies file for pf_fuzz.
# This may be replaced when dependencies are built.
