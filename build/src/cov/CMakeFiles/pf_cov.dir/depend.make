# Empty dependencies file for pf_cov.
# This may be replaced when dependencies are built.
