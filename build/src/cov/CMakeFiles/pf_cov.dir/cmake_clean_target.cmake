file(REMOVE_RECURSE
  "libpf_cov.a"
)
