file(REMOVE_RECURSE
  "CMakeFiles/pf_cov.dir/CoverageMap.cpp.o"
  "CMakeFiles/pf_cov.dir/CoverageMap.cpp.o.d"
  "libpf_cov.a"
  "libpf_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
