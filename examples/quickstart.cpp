//===- quickstart.cpp - End-to-end tour of the public API ---------------------===//
//
// Part of the pathfuzz project.
//
// Quickstart: compile a MiniLang program, instrument it with the paper's
// path-aware feedback and with AFL++-style edge coverage, fuzz both for a
// small budget, and compare what they find. The planted bug is the Fig. 1
// shape: a heap overflow that only triggers when a rare intra-procedural
// path combines with a byte check.
//
// Run: ./quickstart [exec_budget]
//
//===----------------------------------------------------------------------===//

#include "strategy/Campaign.h"

#include <cstdio>
#include <cstdlib>

using namespace pathfuzz;

static const char *Program = R"ml(
// A tiny chunk parser with a path-gated overflow.
global table[14];

fn handle(ntok, first) {
  var j;
  if (ntok % 4 == 0 && ntok > 9) {
    j = 3;                  // rare path
  } else {
    j = -2;
  }
  if (first == 'h') {
    table[ntok + j] = 7;    // overflow iff j == 3 and ntok == 12
  } else {
    if (j < 0) { j = -j; }
    table[j] = 1;
  }
  return j;
}

fn main() {
  if (len() < 2) { return 0; }
  var ntok = 0;
  var i = 0;
  while (i < len()) {
    var c = in(i);
    if (c == ';') {
      if (ntok > 0 && ntok <= 12) { handle(ntok, in(0)); }
      ntok = 0;
    } else if (c > ' ') {
      ntok = ntok + 1;
    }
    i = i + 1;
  }
  return ntok;
}
)ml";

int main(int argc, char **argv) {
  uint64_t Budget = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;

  strategy::Subject S;
  S.Name = "quickstart";
  S.Source = Program;
  const char *SeedText = "hello world; ab cd ef;";
  S.Seeds = {fuzz::Input(SeedText, SeedText + 22)};

  std::printf("Fuzzing the quickstart subject for %llu executions...\n\n",
              static_cast<unsigned long long>(Budget));

  for (strategy::FuzzerKind Kind :
       {strategy::FuzzerKind::Pcguard, strategy::FuzzerKind::Path}) {
    strategy::CampaignOptions Opts;
    Opts.Kind = Kind;
    Opts.ExecBudget = Budget;
    Opts.Seed = 42;
    strategy::CampaignResult R = strategy::runCampaign(S, Opts);
    std::printf("%-8s queue=%-6llu unique-crashes=%-4zu unique-bugs=%zu "
                "edges=%u\n",
                strategy::fuzzerKindName(Kind),
                static_cast<unsigned long long>(R.FinalQueueSize),
                R.CrashHashes.size(), R.BugIds.size(), R.edgesCovered());
  }

  std::printf("\nThe path-aware fuzzer retains inputs that traverse the rare\n"
              "(j = 3) path even when every edge was already seen, so the\n"
              "combination with the 'h' check is reached by later byte\n"
              "mutations (Section II-B of the paper).\n");
  return 0;
}
