//===- culling_campaign.cpp - Driving the culling strategy ---------------------===//
//
// Part of the pathfuzz project.
//
// Drives the paper's culling strategy (Section III-B1) by hand on one
// subject, printing per-round statistics: queue size before/after each
// cull, cumulative bugs and edges. This is the paper's Fig. 2 sawtooth,
// observable round by round, with full control over the knobs the
// artifact exposes (RUNTIME / FUZZING_WINDOW_ORIG analogues).
//
// Run: ./culling_campaign [subject] [total_execs] [rounds]
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "lang/Compile.h"
#include "targets/Targets.h"

#include <cstdio>
#include <cstdlib>
#include <set>

using namespace pathfuzz;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "lame";
  uint64_t Budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;
  uint32_t Rounds =
      argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10)) : 5;

  const targets::Subject *S = targets::findSubject(Name);
  if (!S) {
    std::fprintf(stderr, "unknown subject '%s'\n", Name);
    return 1;
  }

  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.message().c_str());
    return 1;
  }
  mir::Module Base = std::move(*CR.Mod);
  instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(Base);

  mir::Module PathMod = Base;
  instr::InstrumentOptions IO;
  IO.Mode = instr::Feedback::Path;
  instr::InstrumentReport Report = instr::instrumentModule(PathMod, IO);

  std::printf("Culling campaign on '%s': %llu execs over %u rounds\n\n",
              S->Name.c_str(), static_cast<unsigned long long>(Budget),
              Rounds);
  std::printf("%-6s %10s %12s %12s %10s %8s\n", "round", "execs",
              "queue(end)", "queue(cull)", "bugs(cum)", "edges");

  std::vector<fuzz::Input> Seeds = S->Seeds;
  std::set<uint64_t> Bugs;
  std::set<uint32_t> Edges;
  uint64_t Spent = 0;

  for (uint32_t Round = 0; Round < Rounds; ++Round) {
    uint64_t RoundBudget =
        Round + 1 == Rounds ? Budget - Spent : Budget / Rounds;
    fuzz::FuzzerOptions FO;
    FO.Seed = 42 + Round;
    fuzz::Fuzzer F(PathMod, Report, Shadow, FO);
    for (const fuzz::Input &In : Seeds)
      F.addSeed(In);
    F.run(RoundBudget);
    Spent += F.stats().Execs;

    for (uint64_t B : F.bugIds())
      Bugs.insert(B);
    for (uint32_t E : F.coveredEdgeList())
      Edges.insert(E);

    // The paper's culling criterion: an edge-coverage-preserving subset.
    std::vector<size_t> Kept = F.corpus().edgePreservingSubset();
    std::printf("%-6u %10llu %12zu %12zu %10zu %8zu\n", Round,
                static_cast<unsigned long long>(F.stats().Execs),
                F.corpus().size(), Kept.size(), Bugs.size(), Edges.size());

    Seeds.clear();
    for (size_t Index : Kept)
      Seeds.push_back(F.corpus()[Index].Data);
    if (Seeds.empty())
      Seeds = S->Seeds;
  }

  std::printf("\nTotal: %zu unique bugs, %zu edges, %llu execs.\n",
              Bugs.size(), Edges.size(),
              static_cast<unsigned long long>(Spent));
  std::printf("Each cull hands the next round a queue that still covers\n"
              "every edge seen so far, so no coverage regresses while the\n"
              "fuzzer gets a fresh chance to prioritize (Section III-B1).\n");
  return 0;
}
