// Whitespace-separated token scanner: classifies every byte and keeps a
// small class histogram in a global — the branchy per-byte loop of a
// real tokenizer, plus global stores for the snapshot-reset executor to
// undo between runs.
global classes[4];

fn classOf(c) {
  if (c == ' ' || c == 10 || c == 9) {
    return 0;
  }
  if (c >= '0' && c <= '9') {
    return 1;
  }
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
    return 2;
  }
  return 3;
}

fn main() {
  var tokens = 0;
  var inTok = 0;
  var i = 0;
  var n = len();
  while (i < n) {
    var k = classOf(in(i));
    classes[k] = classes[k] + 1;
    if (k == 0) {
      inTok = 0;
    } else if (inTok == 0) {
      inTok = 1;
      tokens = tokens + 1;
    }
    i = i + 1;
  }
  return tokens * 256 + classes[1];
}
