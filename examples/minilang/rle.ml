// Bounded run-length expansion into a fixed window, then a checksum of
// what was written: load/store traffic with explicit clamping — the
// shape of a decoder hot loop.
global window[64];

fn main() {
  var out = 0;
  var i = 0;
  var n = len();
  while (i + 1 < n) {
    var count = in(i) & 15;
    var value = in(i + 1);
    var j = 0;
    while (j < count) {
      if (out < 64) {
        window[out] = value;
        out = out + 1;
      }
      j = j + 1;
    }
    i = i + 2;
  }
  var sum = 0;
  var k = 0;
  while (k < out) {
    sum = sum + window[k];
    k = k + 1;
  }
  return sum;
}
