// Sums every input byte — the smallest loopy MiniLang program, and the
// quickstart subject for `pathfuzz-lint` (it must lint clean).
fn main() {
  var n = len();
  var i = 0;
  var total = 0;
  while (i < n) {
    total = total + in(i);
    i = i + 1;
  }
  return total;
}
