// Table lookup with a clamped index: exercises globals, calls and
// branching without tripping any lint check.
global table[8] = {1, 2, 3, 5, 8, 13, 21, 34};

fn clampIndex(i) {
  if (i < 0) {
    return 0;
  }
  if (i > 7) {
    return 7;
  }
  return i;
}

fn main() {
  if (len() == 0) {
    return 0 - 1;
  }
  return table[clampIndex(in(0))];
}
