// Adler-style rolling checksum over the whole input: two accumulators
// and a modulus per byte — the arithmetic inner loop of a real hasher.
fn main() {
  var a = 1;
  var b = 0;
  var i = 0;
  var n = len();
  while (i < n) {
    a = (a + in(i)) % 65521;
    b = (b + a) % 65521;
    i = i + 1;
  }
  return b * 65536 + a;
}
