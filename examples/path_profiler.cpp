//===- path_profiler.cpp - Classic Ball-Larus path profiling -------------------===//
//
// Part of the pathfuzz project.
//
// Uses the Ball-Larus machinery as the performance-profiling tool it was
// born as [Ball & Larus, MICRO'96]: run a workload through an
// instrumented program, count how often each acyclic path executes, and
// print the hottest paths per function with their block sequences. This
// is the "path profile" view the paper adapts into a fuzzing feedback.
//
// Run: ./path_profiler [subject] (default: cflow)
//
//===----------------------------------------------------------------------===//

#include "bl/BallLarus.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "targets/Targets.h"
#include "vm/Vm.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace pathfuzz;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "cflow";
  const targets::Subject *S = targets::findSubject(Name);
  if (!S) {
    std::fprintf(stderr, "unknown subject '%s'\n", Name);
    return 1;
  }

  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.message().c_str());
    return 1;
  }
  mir::Module M = std::move(*CR.Mod);

  // Per-function path histograms.
  struct FuncProfile {
    uint64_t NumPaths = 0;
    std::map<uint64_t, uint64_t> Hits; // path id -> count
  };
  std::vector<FuncProfile> Profiles(M.Funcs.size());

  // Build per-function DAGs for reconstruction.
  std::vector<std::optional<bl::BLDag>> Dags;
  for (const mir::Function &F : M.Funcs) {
    cfg::CfgView G(F);
    Dags.push_back(bl::BLDag::build(G));
    if (Dags.back())
      Profiles[Dags.size() - 1].NumPaths = Dags.back()->numPaths();
  }

  // The workload: the subject's seeds plus simple mutations of them.
  std::vector<fuzz::Input> Workload = S->Seeds;
  for (const fuzz::Input &Seed : S->Seeds) {
    for (int K = 1; K <= 8; ++K) {
      fuzz::Input V = Seed;
      for (size_t I = 0; I < V.size(); I += K + 1)
        V[I] = static_cast<uint8_t>(V[I] + K);
      Workload.push_back(V);
    }
  }

  // Profile one function at a time: instrument a fresh copy, strip the
  // probes from every other function, and run with a zero key so each
  // flushed map index is exactly a raw path ID of the profiled function.
  for (uint32_t FIdx = 0; FIdx < M.Funcs.size(); ++FIdx) {
    if (!Dags[FIdx] || Profiles[FIdx].NumPaths > (1u << 15))
      continue;
    mir::Module Copy = M;
    instr::InstrumentOptions IO;
    IO.Mode = instr::Feedback::Path;
    instr::instrumentModule(Copy, IO);
    for (uint32_t Other = 0; Other < Copy.Funcs.size(); ++Other) {
      if (Other == FIdx)
        continue;
      for (mir::BasicBlock &BB : Copy.Funcs[Other].Blocks) {
        std::vector<mir::Instr> Kept;
        for (const mir::Instr &I : BB.Instrs)
          if (!I.isProbe())
            Kept.push_back(I);
        BB.Instrs = std::move(Kept);
      }
      Copy.Funcs[Other].HasPathReg = false;
    }

    vm::Vm Machine(Copy);
    std::vector<uint8_t> Map(1u << 16, 0);
    vm::FeedbackContext Fb;
    Fb.Map = Map.data();
    Fb.MapMask = static_cast<uint32_t>(Map.size() - 1);
    vm::ExecOptions EO;
    for (const fuzz::Input &In : Workload) {
      std::fill(Map.begin(), Map.end(), 0);
      Machine.run(In.data(), In.size(), EO, &Fb);
      for (uint64_t Id = 0; Id < Profiles[FIdx].NumPaths; ++Id)
        if (Map[Id])
          Profiles[FIdx].Hits[Id] += Map[Id];
    }
  }

  std::printf("Path profile for subject '%s' over %zu workload inputs\n\n",
              S->Name.c_str(), Workload.size());
  for (uint32_t FIdx = 0; FIdx < M.Funcs.size(); ++FIdx) {
    const FuncProfile &P = Profiles[FIdx];
    if (P.Hits.empty())
      continue;
    std::printf("@%s: %llu acyclic paths, %zu exercised\n",
                M.Funcs[FIdx].Name.c_str(),
                static_cast<unsigned long long>(P.NumPaths), P.Hits.size());
    // Hottest three paths.
    std::vector<std::pair<uint64_t, uint64_t>> Sorted(P.Hits.begin(),
                                                      P.Hits.end());
    std::sort(Sorted.begin(), Sorted.end(),
              [](auto &A, auto &B) { return A.second > B.second; });
    for (size_t K = 0; K < Sorted.size() && K < 3; ++K) {
      std::printf("  path %llu (%llu hits): ",
                  static_cast<unsigned long long>(Sorted[K].first),
                  static_cast<unsigned long long>(Sorted[K].second));
      for (uint32_t B : Dags[FIdx]->reconstruct(Sorted[K].first))
        std::printf("%s ", M.Funcs[FIdx].Blocks[B].Name.c_str());
      std::printf("\n");
    }
  }
  return 0;
}
