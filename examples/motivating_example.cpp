//===- motivating_example.cpp - The paper's Fig. 1, end to end -----------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Section II-B's motivating example: the function `foo` with a
// heap overflow that only triggers when execution reaches the write
// through the rare (len % 4 == 0 && len > 39) path AND the input starts
// with 'h'. The example:
//
//   1. compiles `foo` and shows its MIR CFG,
//   2. runs the Ball-Larus analysis, listing every acyclic path with its
//      ID and block sequence (Fig. 1's right-hand side),
//   3. shows which path ID the bug-triggering execution takes,
//   4. demonstrates the feedback difference: an input that takes the rare
//      path *without* crashing is path-novel but edge-stale.
//
//===----------------------------------------------------------------------===//

#include "bl/BallLarus.h"
#include "cov/CoverageMap.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "mir/Printer.h"
#include "vm/Vm.h"

#include <cstdio>
#include <string>

using namespace pathfuzz;

// Fig. 1 of the paper, in MiniLang. N = 54; arr has N + 2 cells so the
// early length check admits exactly the lengths the paper intends.
static const char *Fig1 = R"ml(
global arr[56];

fn main() {
  var n = len();
  if (n - 2 > 54 || n < 3) { return 0; }
  var j;
  if (n % 4 == 0 && n > 39) {
    j = 3;               // rare to reach
  } else {
    j = -2;
  }
  var c = in(0);
  if (c == 'h') {
    arr[n + j] = 7;      // buffer overflow via the rare block, n == 56
  } else {
    if (j < 0) { j = -j; }
    arr[j] = 0;
  }
  return 0;
}
)ml";

static std::vector<uint8_t> inputOfLen(size_t N, char First) {
  std::vector<uint8_t> In(N, 'x');
  if (N)
    In[0] = static_cast<uint8_t>(First);
  return In;
}

int main() {
  lang::CompileResult CR = lang::compileSource(Fig1, "fig1");
  if (!CR.ok()) {
    std::fprintf(stderr, "compile failed:\n%s", CR.message().c_str());
    return 1;
  }
  mir::Module M = std::move(*CR.Mod);
  const mir::Function &F = M.Funcs[static_cast<size_t>(M.findFunction("main"))];

  std::printf("== The function under test (MIR) ==\n%s\n",
              mir::printFunction(F, &M).c_str());

  cfg::CfgView G(F);
  auto Dag = bl::BLDag::build(G);
  std::printf("== Ball-Larus analysis ==\n");
  std::printf("acyclic paths: %llu\n",
              static_cast<unsigned long long>(Dag->numPaths()));
  for (uint64_t Id = 0; Id < Dag->numPaths(); ++Id) {
    std::printf("  path %2llu: ", static_cast<unsigned long long>(Id));
    for (uint32_t B : Dag->reconstruct(Id))
      std::printf("%s ", F.Blocks[B].Name.c_str());
    std::printf("\n");
  }

  // Instrument with path probes and observe which IDs real executions hit
  // (zero function keys => map index == path ID).
  mir::Module Inst = M;
  instr::InstrumentOptions IO;
  IO.Mode = instr::Feedback::Path;
  instr::instrumentModule(Inst, IO);

  vm::Vm Machine(Inst);
  cov::CoverageMap Map(16);
  auto pathIdsOf = [&](const std::vector<uint8_t> &In) {
    Map.reset();
    vm::FeedbackContext Fb;
    Fb.Map = Map.data();
    Fb.MapMask = Map.mask();
    vm::ExecOptions EO;
    vm::ExecResult R = Machine.run(In.data(), In.size(), EO, &Fb);
    std::string Ids;
    for (uint32_t I = 0; I < Map.size(); ++I)
      if (Map.data()[I])
        Ids += std::to_string(I) + " ";
    return std::make_pair(Ids, R.crashed());
  };

  std::printf("\n== Executions ==\n");
  struct Case {
    const char *Desc;
    std::vector<uint8_t> In;
  } Cases[] = {
      {"len 20, starts 'x' (common path, no crash)     ", inputOfLen(20, 'x')},
      {"len 20, starts 'h' (reaches write, j = -2, ok) ", inputOfLen(20, 'h')},
      {"len 56, starts 'x' (RARE path, benign)         ", inputOfLen(56, 'x')},
      {"len 56, starts 'h' (RARE path + 'h': the bug)  ", inputOfLen(56, 'h')},
  };
  for (const Case &C : Cases) {
    auto [Ids, Crashed] = pathIdsOf(C.In);
    std::printf("  %s -> path IDs { %s} %s\n", C.Desc, Ids.c_str(),
                Crashed ? "CRASH" : "");
  }

  std::printf(
      "\nThe third execution traverses a path ID no earlier execution\n"
      "produced, even though every CFG edge it takes was already seen:\n"
      "an edge-coverage fuzzer discards it, a path-aware fuzzer retains\n"
      "it, and one byte mutation ('x' -> 'h') later triggers the bug.\n");
  return 0;
}
