//===- SelectiveTest.cpp - Two-tier selective execution identity --------------===//
//
// Part of the pathfuzz project.
//
// The selective (two-tier) mode's contract: campaigns that bulk-execute on
// the probe-free cheap image and replay only unseen exec-path signatures
// on the full image are *byte-identical* to always-instrumented campaigns
// — same CampaignResult serialization, same queue, same coverage, same
// checkpoint/resume behavior. The suite pins that contract at three
// levels:
//
//  - per exec: the cheap image agrees with the full image on every
//    non-map observable and on the exec-path signature, for every example
//    subject under every feedback mode;
//  - per plan: on randomized CFGs the elision plan passes the dominator-
//    backed audit and the elided image still matches, while tampered
//    plans (elide a non-probe, keep a probe) are rejected;
//  - per campaign: selective-on vs selective-off serializations are equal
//    across drivers, the selective run actually skips (the
//    vm.selective.* counters prove the cheap tier engaged), and
//    kill+resume under selective reproduces the uninterrupted result.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cov/CoverageMap.h"
#include "instrument/Elide.h"
#include "instrument/Instrument.h"
#include "strategy/BuildCache.h"
#include "support/Env.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"
#include "vm/Image.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pathfuzz;
using namespace pathfuzz::strategy;

namespace {

#ifdef PATHFUZZ_SOURCE_DIR
const char *ExamplesDir = PATHFUZZ_SOURCE_DIR "/examples/minilang";
#else
const char *ExamplesDir = "examples/minilang";
#endif

std::string slurp(const std::string &Path) {
  std::ifstream F(Path);
  std::ostringstream SS;
  SS << F.rdbuf();
  return SS.str();
}

const char *const ExampleNames[] = {"sum", "lookup", "checksum", "tokens",
                                    "rle"};

std::vector<Subject> exampleSubjects() {
  std::vector<Subject> Out;
  for (const char *Name : ExampleNames) {
    Subject S;
    S.Name = Name;
    S.Source = slurp(std::string(ExamplesDir) + "/" + Name + ".ml");
    EXPECT_FALSE(S.Source.empty()) << "missing example " << Name;
    fuzz::Input In(256);
    Rng R(7);
    for (uint8_t &B : In)
      B = static_cast<uint8_t>(R.below(256));
    S.Seeds.push_back(std::move(In));
    Out.push_back(std::move(S));
  }
  return Out;
}

std::vector<fuzz::Input> workload(const Subject &S, size_t Count,
                                  uint64_t Seed) {
  std::vector<fuzz::Input> Inputs = S.Seeds;
  Rng R(Seed);
  while (Inputs.size() < Count) {
    fuzz::Input In = S.Seeds[R.index(S.Seeds.size())];
    for (int M = 0; M < 4; ++M)
      In[R.index(In.size())] = static_cast<uint8_t>(R.below(256));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

/// Everything a cheap execution must reproduce exactly: the replay
/// decision is gated on the signature alone, so per-exec observables that
/// feed the fuzzer directly (fault record, steps, return value, shadow
/// edges, cmp log, heap accounting) come from the *cheap* run and must be
/// bit-identical to the full engine's.
void expectSameNonMapResult(const vm::ExecResult &A, const vm::ExecResult &B,
                            const std::string &What) {
  EXPECT_EQ(A.TheFault.Kind, B.TheFault.Kind) << What;
  EXPECT_EQ(A.TheFault.Func, B.TheFault.Func) << What;
  EXPECT_EQ(A.TheFault.Block, B.TheFault.Block) << What;
  EXPECT_EQ(A.TheFault.InstrIdx, B.TheFault.InstrIdx) << What;
  EXPECT_EQ(A.TheFault.stackHash(), B.TheFault.stackHash()) << What;
  EXPECT_EQ(A.Steps, B.Steps) << What;
  EXPECT_EQ(A.ReturnValue, B.ReturnValue) << What;
  EXPECT_EQ(A.ShadowEdges, B.ShadowEdges) << What;
  EXPECT_EQ(A.CmpOperands, B.CmpOperands) << What;
  EXPECT_EQ(A.HeapAllocs, B.HeapAllocs) << What;
  EXPECT_EQ(A.HeapCellsAllocated, B.HeapCellsAllocated) << What;
}

/// Replay Inputs through the fully instrumented image (coverage map
/// attached, as the replay tier runs it) and through the audited cheap
/// image (no map, signature only, as the bulk tier runs it); every
/// non-map observable and the exec-path signature must agree.
void expectCheapTierIdentity(const mir::Module &M,
                             const instr::ShadowEdgeIndex *Shadow,
                             const std::vector<fuzz::Input> &Inputs,
                             const uint64_t *FuncKeys,
                             const std::string &What) {
  instr::ElisionPlan Plan = instr::planProbeElision(M);
  instr::AuditResult AR = instr::auditElisionPlan(M, Plan);
  ASSERT_TRUE(AR.ok()) << What << ": " << AR.message();

  vm::ProgramImage Full = vm::ProgramImage::build(M, Shadow);
  vm::ProgramImage Cheap = vm::ProgramImage::build(M, Shadow, &Plan);
  ASSERT_EQ(Full.codeSize(), Cheap.codeSize()) << What;

  vm::Vm FullVm(M, Shadow);
  FullVm.attachImage(&Full);
  vm::Vm CheapVm(M, Shadow);
  CheapVm.attachImage(&Cheap);
  cov::CoverageMap Map(16);
  for (size_t K = 0; K < Inputs.size(); ++K) {
    const fuzz::Input &In = Inputs[K];
    vm::ExecOptions EO;
    EO.StepLimit = 200000;
    EO.LogCmps = true;
    Map.reset();

    uint64_t SigFull = 0, SigCheap = 0;
    vm::FeedbackContext FbFull;
    FbFull.Map = Map.data();
    FbFull.MapMask = Map.mask();
    FbFull.FuncKeys = FuncKeys;
    FbFull.PathSig = &SigFull;
    vm::FeedbackContext FbCheap;
    FbCheap.PathSig = &SigCheap;

    vm::ExecResult RF = FullVm.run(In.data(), In.size(), EO, &FbFull);
    vm::ExecResult RC = CheapVm.run(In.data(), In.size(), EO, &FbCheap);
    std::string Tag = What + " input " + std::to_string(K);
    expectSameNonMapResult(RF, RC, Tag);
    EXPECT_EQ(SigFull, SigCheap) << Tag << ": signatures diverge";
  }
}

//===----------------------------------------------------------------------===//
// Per-exec identity
//===----------------------------------------------------------------------===//

/// Cheap-tier identity on every example subject under every feedback
/// mode, through the same BuildCache path the drivers use.
TEST(Selective, ExampleSubjectsCheapTierIdentity) {
  for (const Subject &S : exampleSubjects()) {
    BuildCache Cache;
    std::shared_ptr<SubjectBuild> SB = Cache.get(S);
    ASSERT_TRUE(SB->ok()) << SB->error();
    CampaignOptions O;
    O.VmMode = vm::VmExecMode::FastPath;
    O.Selective = vm::SelectiveMode::On;
    for (instr::Feedback Mode :
         {instr::Feedback::None, instr::Feedback::EdgePrecise,
          instr::Feedback::EdgeClassic, instr::Feedback::Path}) {
      const InstrumentedBuild &IB = SB->instrumented(Mode, O);
      ASSERT_NE(IB.Image, nullptr);
      ASSERT_NE(IB.CheapImage, nullptr)
          << "selective build must produce the cheap twin";
      std::string What =
          S.Name + "/feedback" + std::to_string(static_cast<int>(Mode));
      expectCheapTierIdentity(IB.Mod, &SB->shadow(),
                              workload(S, 48, 0x5eedbeef),
                              IB.Report.FuncKeys.data(), What);
    }
  }
}

/// The probe count sanity check: on an instrumented module the plan must
/// elide something, and exactly the probes.
TEST(Selective, PlanCoversExactlyTheProbes) {
  Subject S = exampleSubjects()[0];
  BuildCache Cache;
  std::shared_ptr<SubjectBuild> SB = Cache.get(S);
  ASSERT_TRUE(SB->ok());
  CampaignOptions O;
  O.VmMode = vm::VmExecMode::FastPath;
  const InstrumentedBuild &IB =
      SB->instrumented(instr::Feedback::Path, O);

  instr::ElisionPlan Plan = instr::planProbeElision(IB.Mod);
  EXPECT_GT(Plan.count(), 0u);
  uint64_t Probes = 0;
  for (const mir::Function &Fn : IB.Mod.Funcs)
    for (const mir::BasicBlock &B : Fn.Blocks)
      for (const mir::Instr &I : B.Instrs)
        if (I.isProbe())
          ++Probes;
  EXPECT_EQ(Plan.count(), Probes);
}

//===----------------------------------------------------------------------===//
// Randomized-CFG elision property test
//===----------------------------------------------------------------------===//

/// Arbitrary generated CFGs (loops, unreachable blocks, step-limit
/// hangs): the elision plan must audit clean and the elided image must
/// agree with the full one on observables and signature.
TEST(Selective, RandomizedMirElisionIdentity) {
  Rng R(20260809);
  for (int Trial = 0; Trial < 120; ++Trial) {
    mir::Module M = test::moduleWith(test::randomFunction(R));
    instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(M);
    instr::InstrumentOptions IO;
    IO.Mode = Trial % 2 ? instr::Feedback::Path : instr::Feedback::EdgePrecise;
    IO.Seed = R.below(1u << 30);
    instr::InstrumentReport Rep = instr::instrumentModule(M, IO);

    std::vector<fuzz::Input> Inputs;
    for (int K = 0; K < 6; ++K) {
      fuzz::Input In(R.below(12));
      for (uint8_t &B : In)
        B = static_cast<uint8_t>(R.below(256));
      Inputs.push_back(std::move(In));
    }
    expectCheapTierIdentity(M, &Shadow, Inputs, Rep.FuncKeys.data(),
                            "random trial " + std::to_string(Trial));
  }
}

//===----------------------------------------------------------------------===//
// Audit rejection
//===----------------------------------------------------------------------===//

/// Tampered plans must be rejected: eliding a non-probe would change
/// program semantics, keeping a probe would write the cheap tier's null
/// coverage map.
TEST(Selective, AuditRejectsTamperedPlans) {
  Subject S = exampleSubjects()[3]; // tokens: calls + branches
  BuildCache Cache;
  std::shared_ptr<SubjectBuild> SB = Cache.get(S);
  ASSERT_TRUE(SB->ok());
  CampaignOptions O;
  O.VmMode = vm::VmExecMode::FastPath;
  const InstrumentedBuild &IB =
      SB->instrumented(instr::Feedback::Path, O);
  const mir::Module &M = IB.Mod;

  instr::ElisionPlan Good = instr::planProbeElision(M);
  ASSERT_TRUE(instr::auditElisionPlan(M, Good).ok());
  ASSERT_GT(Good.count(), 0u);

  // Un-elide the first planned probe: a surviving probe fails the audit.
  {
    instr::ElisionPlan Plan = Good;
    bool Flipped = false;
    for (auto &Fn : Plan.Elide) {
      for (auto &B : Fn) {
        for (auto &Slot : B)
          if (Slot) {
            Slot = 0;
            Flipped = true;
            break;
          }
        if (Flipped)
          break;
      }
      if (Flipped)
        break;
    }
    ASSERT_TRUE(Flipped);
    instr::AuditResult AR = instr::auditElisionPlan(M, Plan);
    EXPECT_FALSE(AR.ok());
    EXPECT_FALSE(AR.message().empty());
  }

  // Elide a non-probe: semantic instructions must never be planned away.
  {
    instr::ElisionPlan Plan = Good;
    bool Flipped = false;
    for (uint32_t F = 0; F < M.Funcs.size() && !Flipped; ++F)
      for (uint32_t B = 0; B < M.Funcs[F].Blocks.size() && !Flipped; ++B) {
        const auto &Instrs = M.Funcs[F].Blocks[B].Instrs;
        for (uint32_t I = 0; I < Instrs.size(); ++I)
          if (!Instrs[I].isProbe()) {
            Plan.Elide[F][B][I] = 1;
            Flipped = true;
            break;
          }
      }
    ASSERT_TRUE(Flipped);
    EXPECT_FALSE(instr::auditElisionPlan(M, Plan).ok());
  }

  // Wrong dimensions (a plan for a different module) must not pass either.
  {
    instr::ElisionPlan Plan = Good;
    Plan.Elide.emplace_back();
    EXPECT_FALSE(instr::auditElisionPlan(M, Plan).ok());
  }
}

//===----------------------------------------------------------------------===//
// Campaign byte-equality
//===----------------------------------------------------------------------===//

CampaignOptions selectiveOpts(FuzzerKind Kind, vm::SelectiveMode Mode) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = 4000;
  Opts.Seed = 11;
  Opts.VmMode = vm::VmExecMode::FastPath;
  Opts.Selective = Mode;
  return Opts;
}

/// Whole campaigns across drivers and example subjects: selective-on and
/// selective-off serializations must be byte-identical.
TEST(Selective, CampaignResultsAreByteIdentical) {
  std::vector<Subject> Examples = exampleSubjects();
  for (size_t SubjIdx : {size_t(1), size_t(3)}) { // lookup, tokens
    const Subject &S = Examples[SubjIdx];
    for (FuzzerKind Kind :
         {FuzzerKind::Path, FuzzerKind::Pcguard, FuzzerKind::Cull}) {
      CampaignResult On =
          runCampaign(S, selectiveOpts(Kind, vm::SelectiveMode::On));
      CampaignResult Off =
          runCampaign(S, selectiveOpts(Kind, vm::SelectiveMode::Off));
      EXPECT_EQ(serializeCampaignResult(On), serializeCampaignResult(Off))
          << S.Name << "/" << fuzzerKindName(Kind);
    }
  }
}

/// The cheap tier must actually engage: a traced selective campaign
/// records skips and replays, its observable telemetry matches the
/// selective-off run, and the vm.selective.* family is engine-local
/// (present only on the selective run).
TEST(Selective, TelemetryProvesTwoTierEngagesAndStaysObservablyEqual) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  const Subject S = exampleSubjects()[3]; // tokens
  CampaignOptions On = selectiveOpts(FuzzerKind::Path, vm::SelectiveMode::On);
  On.Trace.Enabled = true;
  On.Trace.SampleInterval = 512;
  CampaignOptions Off = On;
  Off.Selective = vm::SelectiveMode::Off;

  CampaignResult ROn = runCampaign(S, On);
  CampaignResult ROff = runCampaign(S, Off);
  EXPECT_EQ(serializeCampaignResult(ROn), serializeCampaignResult(ROff));

  ASSERT_NE(ROn.Trace, nullptr);
  ASSERT_NE(ROff.Trace, nullptr);
  ASSERT_EQ(ROn.Trace->Instances.size(), ROff.Trace->Instances.size());
  uint64_t Skipped = 0, Replays = 0, Mismatches = 0;
  for (size_t K = 0; K < ROn.Trace->Instances.size(); ++K) {
    const telemetry::InstanceRecord &A = ROn.Trace->Instances[K];
    const telemetry::InstanceRecord &B = ROff.Trace->Instances[K];
    EXPECT_EQ(A.Samples, B.Samples);
    EXPECT_TRUE(telemetry::sameObservableMetrics(A.Metrics, B.Metrics));
    auto It = A.Metrics.counters().find("vm.selective.skipped");
    if (It != A.Metrics.counters().end())
      Skipped += It->second;
    It = A.Metrics.counters().find("vm.selective.replays");
    if (It != A.Metrics.counters().end())
      Replays += It->second;
    It = A.Metrics.counters().find("vm.selective.replay.mismatch");
    if (It != A.Metrics.counters().end())
      Mismatches += It->second;
    EXPECT_FALSE(B.Metrics.counters().count("vm.selective.skipped"));
    EXPECT_FALSE(B.Metrics.counters().count("vm.selective.replays"));
  }
  // A 4000-exec mutational campaign revisits paths constantly; if nothing
  // was skipped the cheap tier never paid for itself, and if nothing was
  // replayed the map could never learn. A cheap/full divergence
  // (replay.mismatch) would break the identity contract outright.
  EXPECT_GT(Skipped, 0u);
  EXPECT_GT(Replays, 0u);
  EXPECT_EQ(Mismatches, 0u);
  EXPECT_TRUE(telemetry::isEngineLocalMetric("vm.selective.skipped"));
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume under selective
//===----------------------------------------------------------------------===//

/// Kill+resume under selective execution: every checkpoint resume must
/// reproduce the uninterrupted selective run, which itself must equal the
/// always-instrumented run. The signature cache is deliberately not part
/// of the checkpoint — a resumed run re-replays, but results stay
/// byte-identical.
TEST(Selective, CheckpointResumeIsByteIdentical) {
  Subject S = exampleSubjects()[1]; // lookup
  CampaignOptions Plain = selectiveOpts(FuzzerKind::Pcguard,
                                        vm::SelectiveMode::On);
  Plain.ExecBudget = 6000;
  CampaignOptions Always = Plain;
  Always.Selective = vm::SelectiveMode::Off;
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));
  EXPECT_EQ(Ref, serializeCampaignResult(runCampaign(S, Always)));

  CampaignOptions WithCkpt = Plain;
  WithCkpt.CheckpointInterval = 900;
  std::vector<std::vector<uint8_t>> Checkpoints;
  WithCkpt.CheckpointSink = [&Checkpoints](const std::vector<uint8_t> &Blob) {
    Checkpoints.push_back(Blob);
  };
  CampaignError Err;
  CampaignResult Observed = runCampaign(S, WithCkpt, &Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(serializeCampaignResult(Observed), Ref);
  ASSERT_GE(Checkpoints.size(), 3u) << "budget 6000 / interval 900";

  for (size_t I = 0; I < Checkpoints.size(); ++I) {
    SCOPED_TRACE("checkpoint " + std::to_string(I));
    CampaignError ResumeErr;
    CampaignResult Resumed =
        resumeCampaign(S, Plain, Checkpoints[I], &ResumeErr);
    ASSERT_FALSE(ResumeErr.Failed) << ResumeErr.Message;
    EXPECT_EQ(serializeCampaignResult(Resumed), Ref);
    // Cross-mode resume: a checkpoint written under selective must also
    // resume correctly with selective off — the mode is not part of the
    // checkpoint fingerprint.
    CampaignError CrossErr;
    CampaignResult Cross =
        resumeCampaign(S, Always, Checkpoints[I], &CrossErr);
    ASSERT_FALSE(CrossErr.Failed) << CrossErr.Message;
    EXPECT_EQ(serializeCampaignResult(Cross), Ref);
  }
}

//===----------------------------------------------------------------------===//
// Mode resolution
//===----------------------------------------------------------------------===//

/// CampaignOptions::Selective forces the tier choice; Auto follows
/// PATHFUZZ_SELECTIVE (default on).
TEST(Selective, ModeResolution) {
  EXPECT_FALSE(vm::selectiveEnabled(vm::SelectiveMode::Off));
  EXPECT_TRUE(vm::selectiveEnabled(vm::SelectiveMode::On));

  unsetenv("PATHFUZZ_SELECTIVE");
  EXPECT_TRUE(vm::selectiveEnabled(vm::SelectiveMode::Auto));
  setenv("PATHFUZZ_SELECTIVE", "0", 1);
  EXPECT_FALSE(vm::selectiveEnabled(vm::SelectiveMode::Auto));
  setenv("PATHFUZZ_SELECTIVE", "1", 1);
  EXPECT_TRUE(vm::selectiveEnabled(vm::SelectiveMode::Auto));
  unsetenv("PATHFUZZ_SELECTIVE");
}

} // namespace
