//===- LintTest.cpp - MiniLang lint suite -------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lint.h"

#include "lang/Compile.h"
#include "targets/Targets.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pathfuzz;
using namespace pathfuzz::lang;

namespace {

std::vector<LintDiagnostic> lintOk(const char *Source, LintOptions Opts = {}) {
  std::vector<std::string> Errs;
  std::vector<LintDiagnostic> Diags = lintSource(Source, "test", Errs, Opts);
  EXPECT_TRUE(Errs.empty()) << Errs.front();
  return Diags;
}

bool hasDiag(const std::vector<LintDiagnostic> &Diags, LintCheck Check,
             uint32_t Line = 0) {
  return std::any_of(Diags.begin(), Diags.end(), [&](const LintDiagnostic &D) {
    return D.Check == Check && (Line == 0 || D.Line == Line);
  });
}

TEST(Lint, UseBeforeInitAtTheReadingLine) {
  auto Diags = lintOk(R"ml(
fn main() {
  var x;
  if (len() > 0) {
    x = 1;
  }
  return x;
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::UseBeforeInit, 7))
      << "x is uninitialized on the len()==0 path";
  EXPECT_FALSE(hasDiag(Diags, LintCheck::UseBeforeInit, 5))
      << "the assignment itself is not a use";
}

TEST(Lint, NoUseBeforeInitWhenAllPathsAssign) {
  auto Diags = lintOk(R"ml(
fn main() {
  var x;
  if (len() > 0) {
    x = 1;
  } else {
    x = 2;
  }
  return x;
}
)ml");
  EXPECT_FALSE(hasDiag(Diags, LintCheck::UseBeforeInit));
}

TEST(Lint, DeadStoreAtTheOverwrittenInit) {
  auto Diags = lintOk(R"ml(
fn main() {
  var x = 5;
  x = len();
  return x;
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::DeadStore, 3))
      << "the initializer 5 is overwritten before any read";
  for (const auto &D : Diags) {
    if (D.Check == LintCheck::DeadStore) {
      EXPECT_EQ(D.Line, 3u) << D.str();
    }
  }
}

TEST(Lint, UnreachableCodeAfterReturn) {
  auto Diags = lintOk(R"ml(
fn main() {
  return 0;
  return 1;
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::UnreachableCode, 4));
}

TEST(Lint, GuaranteedDivByZero) {
  auto Diags = lintOk(R"ml(
fn main() {
  var d = 0;
  return 10 / d;
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::DivByZero, 4));
}

TEST(Lint, InputDependentDivisorIsNotFlagged) {
  auto Diags = lintOk(R"ml(
fn main() {
  if (len() == 0) {
    return 0;
  }
  return 10 / in(0);
}
)ml");
  EXPECT_FALSE(hasDiag(Diags, LintCheck::DivByZero))
      << "in(0) may be zero but is not provably zero";
}

TEST(Lint, ConstIndexOutsideGlobalBounds) {
  auto Diags = lintOk(R"ml(
global g[4] = {1, 2, 3, 4};
fn main() {
  return g[7];
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::ConstOutOfBounds, 4));
}

TEST(Lint, ConstIndexOutsideLocalArrayBounds) {
  auto Diags = lintOk(R"ml(
fn main() {
  var a[2];
  a[5] = 1;
  return 0;
}
)ml");
  EXPECT_TRUE(hasDiag(Diags, LintCheck::ConstOutOfBounds, 4));
}

TEST(Lint, InBoundsIndexIsNotFlagged) {
  auto Diags = lintOk(R"ml(
global g[4] = {1, 2, 3, 4};
fn main() {
  return g[3];
}
)ml");
  EXPECT_FALSE(hasDiag(Diags, LintCheck::ConstOutOfBounds));
}

TEST(Lint, UnusedParamNamesTheParameter) {
  auto Diags = lintOk(R"ml(
fn helper(a, b) {
  return a;
}
fn main() {
  return helper(1, 2);
}
)ml");
  bool Found = false;
  for (const auto &D : Diags)
    if (D.Check == LintCheck::UnusedParam && D.Func == "helper") {
      Found = true;
      EXPECT_NE(D.Message.find("b"), std::string::npos) << D.str();
    }
  EXPECT_TRUE(Found);
}

TEST(Lint, UnusedFunctionUnreachableFromMain) {
  auto Diags = lintOk(R"ml(
fn dead() {
  return 1;
}
fn main() {
  return 0;
}
)ml");
  bool Found = false;
  for (const auto &D : Diags)
    if (D.Check == LintCheck::UnusedFunction) {
      Found = true;
      EXPECT_EQ(D.Func, "dead") << D.str();
    }
  EXPECT_TRUE(Found);
}

TEST(Lint, TransitivelyCalledFunctionIsUsed) {
  auto Diags = lintOk(R"ml(
fn leaf(x) {
  return x + 1;
}
fn mid(x) {
  return leaf(x);
}
fn main() {
  return mid(len());
}
)ml");
  EXPECT_FALSE(hasDiag(Diags, LintCheck::UnusedFunction));
}

TEST(Lint, CleanProgramHasNoFindings) {
  auto Diags = lintOk(R"ml(
fn add(a, b) {
  return a + b;
}
fn main() {
  return add(len(), 1);
}
)ml");
  EXPECT_TRUE(Diags.empty()) << Diags.front().str();
}

TEST(Lint, OptionsMaskIndividualChecks) {
  LintOptions NoUbi;
  NoUbi.EnableUseBeforeInit = false;
  auto Diags = lintOk(R"ml(
fn main() {
  var x;
  if (len() > 0) {
    x = 1;
  }
  return x;
}
)ml",
                      NoUbi);
  EXPECT_FALSE(hasDiag(Diags, LintCheck::UseBeforeInit));
}

TEST(Lint, DiagnosticStringFormat) {
  auto Diags = lintOk(R"ml(
fn main() {
  var d = 0;
  return 10 / d;
}
)ml");
  ASSERT_TRUE(hasDiag(Diags, LintCheck::DivByZero));
  for (const auto &D : Diags)
    if (D.Check == LintCheck::DivByZero) {
      EXPECT_NE(D.str().find("[div-by-zero]"), std::string::npos) << D.str();
      EXPECT_NE(D.str().find("@main"), std::string::npos) << D.str();
    }
  EXPECT_STREQ(lintCheckName(LintCheck::UseBeforeInit), "use-before-init");
  EXPECT_STREQ(lintCheckName(LintCheck::ConstOutOfBounds),
               "const-out-of-bounds");
}

/// Every bundled fuzzing subject lints without crashing, and every finding
/// is attributable: located in source (Line > 0) and in a named function.
/// Several subjects carry planted constant-index bugs the linter is
/// expected to surface; those findings are intentional and the CLI runs
/// over the subjects with --allow-findings.
TEST(Lint, AllSubjectsLintCleanlyOrWithLocatedFindings) {
  size_t Total = 0;
  for (const auto &S : targets::allSubjects()) {
    std::vector<std::string> Errs;
    std::vector<LintDiagnostic> Diags = lintSource(S.Source, S.Name, Errs);
    EXPECT_TRUE(Errs.empty()) << S.Name << ": " << Errs.front();
    for (const auto &D : Diags) {
      EXPECT_GT(D.Line, 0u) << S.Name << ": unattributed finding " << D.str();
      EXPECT_FALSE(D.Func.empty()) << S.Name << ": " << D.str();
    }
    Total += Diags.size();
  }
  // Informational: the planted-bug subjects are expected to trip the
  // out-of-bounds check; this is not asserted per subject to keep the
  // corpus free to evolve.
  RecordProperty("total_findings", static_cast<int>(Total));
}

} // namespace
