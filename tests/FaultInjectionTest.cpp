//===- FaultInjectionTest.cpp - Deterministic failure-point registry -----------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "lang/Compile.h"
#include "vm/Vm.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace pathfuzz;

namespace {

TEST(FaultInjection, DisabledByDefaultAndCostsNothing) {
  fault::ScopedFaultInjection Guard;
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  // Unarmed sites never fail and never count.
  EXPECT_FALSE(fault::shouldFail("no.such.site"));
  EXPECT_EQ(fault::hitCount("no.such.site"), 0u);
  EXPECT_TRUE(fault::isTransient("no.such.site"));
}

TEST(FaultInjection, NthHitFailsExactlyOnce) {
  fault::ScopedFaultInjection Guard;
  fault::SiteConfig C;
  C.FailOnHit = 3;
  fault::armSite("t.site", C);
  EXPECT_TRUE(fault::enabled());

  int Failures = 0;
  for (int Hit = 1; Hit <= 6; ++Hit) {
    bool Failed = fault::shouldFail("t.site");
    EXPECT_EQ(Failed, Hit == 3) << "hit " << Hit;
    Failures += Failed;
  }
  EXPECT_EQ(Failures, 1);
  EXPECT_EQ(fault::hitCount("t.site"), 6u);
}

TEST(FaultInjection, RearmResetsTheHitCounter) {
  fault::ScopedFaultInjection Guard;
  fault::SiteConfig C;
  C.FailOnHit = 2;
  fault::armSite("t.site", C);
  EXPECT_FALSE(fault::shouldFail("t.site"));
  EXPECT_TRUE(fault::shouldFail("t.site"));
  fault::armSite("t.site", C); // re-arm: counter back to zero
  EXPECT_EQ(fault::hitCount("t.site"), 0u);
  EXPECT_FALSE(fault::shouldFail("t.site"));
  EXPECT_TRUE(fault::shouldFail("t.site"));
}

TEST(FaultInjection, ProbabilityTriggerIsSeededAndReproducible) {
  fault::ScopedFaultInjection Guard;
  fault::SiteConfig C;
  C.ProbPermille = 400;
  C.ProbSeed = 1234;
  fault::armSite("t.prob", C);
  std::vector<bool> First;
  for (int I = 0; I < 200; ++I)
    First.push_back(fault::shouldFail("t.prob"));

  fault::armSite("t.prob", C); // same seed → same draw sequence
  std::vector<bool> Second;
  for (int I = 0; I < 200; ++I)
    Second.push_back(fault::shouldFail("t.prob"));
  EXPECT_EQ(First, Second);

  // ~40% of 200 draws; statistically impossible to miss entirely or
  // saturate with a correct implementation.
  int Fails = 0;
  for (bool B : First)
    Fails += B;
  EXPECT_GT(Fails, 20);
  EXPECT_LT(Fails, 180);
}

TEST(FaultInjection, TransientFlagAndDisarm) {
  fault::ScopedFaultInjection Guard;
  fault::SiteConfig C;
  C.FailOnHit = 1;
  C.Transient = false;
  fault::armSite("t.persistent", C);
  EXPECT_FALSE(fault::isTransient("t.persistent"));
  fault::disarmSite("t.persistent");
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::isTransient("t.persistent")); // unarmed → retryable
}

TEST(FaultInjection, ArmFromEnvParsesEverySpecForm) {
  fault::ScopedFaultInjection Guard;
  ::setenv("PATHFUZZ_FAULT_SITES",
           "a@2,b%250~9,c@1!,noform,@3,d%0,e%2000", 1);
  // a@2, b%250~9 and c@1! are valid; the rest are malformed (no trigger,
  // empty name, zero or out-of-range permille) and skipped.
  EXPECT_EQ(fault::armFromEnv(), 3u);
  ::unsetenv("PATHFUZZ_FAULT_SITES");

  EXPECT_FALSE(fault::shouldFail("a"));
  EXPECT_TRUE(fault::shouldFail("a"));
  EXPECT_TRUE(fault::isTransient("a"));
  EXPECT_TRUE(fault::isTransient("b"));
  EXPECT_FALSE(fault::isTransient("c"));
  EXPECT_TRUE(fault::shouldFail("c"));
  EXPECT_FALSE(fault::shouldFail("noform"));
}

TEST(FaultInjection, ArmFromEnvWarnsOncePerMalformedEntry) {
  // A typo in a drill spec must not silently disarm it: every skipped
  // entry earns exactly one stderr warning quoting the original text
  // (including a trailing '!').
  // (envList strips plain spaces by design; a tab survives into the spec
  // and must be rejected rather than armed under an unmatchable name.)
  fault::ScopedFaultInjection Guard;
  ::setenv("PATHFUZZ_FAULT_SITES", "ok@1,noform,bad\tsite@2,e%2000!", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(fault::armFromEnv(), 1u);
  const std::string Errs = ::testing::internal::GetCapturedStderr();
  ::unsetenv("PATHFUZZ_FAULT_SITES");

  EXPECT_NE(Errs.find("skipping malformed entry 'noform'"), std::string::npos)
      << Errs;
  EXPECT_NE(Errs.find("skipping malformed entry 'bad\tsite@2'"),
            std::string::npos)
      << Errs;
  EXPECT_NE(Errs.find("skipping malformed entry 'e%2000!'"), std::string::npos)
      << Errs;
  // The valid entry is armed silently.
  EXPECT_EQ(Errs.find("'ok@1'"), std::string::npos) << Errs;
  EXPECT_TRUE(fault::shouldFail("ok"));
}

TEST(FaultInjection, ResetDisarmsEverything) {
  fault::SiteConfig C;
  C.FailOnHit = 1;
  fault::armSite("x", C);
  fault::armSite("y", C);
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::shouldFail("x"));
  EXPECT_EQ(fault::hitCount("y"), 0u);
}

TEST(FaultInjection, ScopedGuardResetsOnScopeExit) {
  {
    fault::ScopedFaultInjection Guard;
    fault::SiteConfig C;
    C.FailOnHit = 1;
    fault::armSite("scoped", C);
    EXPECT_TRUE(fault::enabled());
  }
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInjection, VmHeapAllocSiteRaisesOutOfMemory) {
  fault::ScopedFaultInjection Guard;
  lang::CompileResult CR = lang::compileSource(R"ml(
fn main() {
  var a[4];
  a[0] = 7;
  return a[0];
}
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;

  // Baseline: the allocation succeeds with no fault armed.
  vm::ExecResult Clean = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_FALSE(Clean.crashed());
  EXPECT_EQ(Clean.ReturnValue, 7);

  fault::SiteConfig C;
  C.FailOnHit = 1;
  fault::armSite("vm.heap.alloc", C);
  vm::ExecResult Faulted = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_EQ(Faulted.TheFault.Kind, vm::FaultKind::OutOfMemory);

  // The site fired once; the next run (hit 2 ≠ 1) succeeds again.
  vm::ExecResult After = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_FALSE(After.crashed());
}

} // namespace
