//===- AuditTest.cpp - Static instrumentation auditor -------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The auditor's contract, exercised from both sides:
//
//  - every plan the Ball-Larus planner emits is accepted, and the
//    acceptance verdict agrees with brute-force path-enumeration
//    simulation (the thing the audit exists to avoid at scale);
//  - every single-constant mutation of a plan is rejected, and the
//    simulation confirms some path really would emit a wrong ID;
//  - auditModule proves soundness for every function of all bundled
//    subjects under both placements, and for a function with 2^28
//    acyclic paths — where enumeration is out of the question;
//  - the strategy.instrument.corrupt fault site makes BuildCache reject
//    the corrupted build end to end.
//
//===----------------------------------------------------------------------===//

#include "instrument/Audit.h"

#include "bl/BallLarus.h"
#include "cfg/Cfg.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "strategy/BuildCache.h"
#include "support/FaultInjection.h"
#include "targets/Targets.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::bl;
using namespace pathfuzz::instr;

namespace {

/// Simulate a probe plan over one acyclic path (as DAG edge indices) and
/// return the value the flush probe would emit. This is the brute-force
/// oracle the audit replaces; mirrors the helper in BallLarusTest.
int64_t simulatePlan(const BLDag &Dag, const PathProbePlan &Plan,
                     const std::vector<uint32_t> &PathEdges) {
  const std::vector<DagEdge> &Edges = Dag.edges();
  EXPECT_FALSE(PathEdges.empty());

  int64_t R = 0;
  const DagEdge &First = Edges[PathEdges.front()];
  if (First.Kind == DagEdgeKind::EntryToFirst) {
    R = Plan.EntryInit;
  } else {
    EXPECT_EQ(First.Kind, DagEdgeKind::EntryDummy);
    bool Found = false;
    for (const auto &BP : Plan.BackProbes) {
      if (BP.CfgEdgeIndex == First.CfgEdgeIndex) {
        R = BP.Reset;
        Found = true;
        break;
      }
    }
    EXPECT_TRUE(Found) << "missing back probe for the path's entry dummy";
  }

  for (size_t I = 1; I < PathEdges.size(); ++I) {
    const DagEdge &E = Edges[PathEdges[I]];
    if (E.Kind != DagEdgeKind::Real)
      continue;
    for (const auto &EI : Plan.EdgeIncs)
      if (EI.CfgEdgeIndex == E.CfgEdgeIndex)
        R += EI.Inc;
  }

  const DagEdge &Last = Edges[PathEdges.back()];
  if (Last.Kind == DagEdgeKind::RetToExit) {
    for (const auto &RP : Plan.RetProbes)
      if (RP.Block == Last.Src)
        return R + RP.FlushAdd;
    ADD_FAILURE() << "missing ret probe for block " << Last.Src;
    return -1;
  }
  EXPECT_EQ(Last.Kind, DagEdgeKind::ExitDummy);
  for (const auto &BP : Plan.BackProbes)
    if (BP.CfgEdgeIndex == Last.CfgEdgeIndex)
      return R + BP.FlushAdd;
  ADD_FAILURE() << "missing back probe flush";
  return -1;
}

/// Whether simulating the plan over every enumerated path reproduces the
/// canonical IDs 0..NumPaths-1 exactly.
bool simulationAgrees(const BLDag &Dag, const PathProbePlan &Plan,
                      const std::vector<std::vector<uint32_t>> &PathEdges) {
  for (uint64_t Id = 0; Id < PathEdges.size(); ++Id)
    if (simulatePlan(Dag, Plan, PathEdges[Id]) != static_cast<int64_t>(Id))
      return false;
  return true;
}

/// All single-constant mutations of a plan, the corruption class the
/// rejection property quantifies over.
std::vector<std::pair<std::string, PathProbePlan>>
allSingleConstantMutations(const PathProbePlan &Plan) {
  std::vector<std::pair<std::string, PathProbePlan>> Out;
  for (size_t I = 0; I < Plan.EdgeIncs.size(); ++I)
    for (int64_t D : {int64_t(1), int64_t(-1)}) {
      PathProbePlan P = Plan;
      P.EdgeIncs[I].Inc += D;
      Out.emplace_back("EdgeIncs[" + std::to_string(I) + "] " +
                           (D > 0 ? "+1" : "-1"),
                       std::move(P));
    }
  {
    PathProbePlan P = Plan;
    P.EntryInit += 1;
    Out.emplace_back("EntryInit +1", std::move(P));
  }
  for (size_t I = 0; I < Plan.BackProbes.size(); ++I) {
    PathProbePlan P = Plan;
    P.BackProbes[I].FlushAdd += 1;
    Out.emplace_back("BackProbes[" + std::to_string(I) + "].FlushAdd +1",
                     std::move(P));
    P = Plan;
    P.BackProbes[I].Reset += 1;
    Out.emplace_back("BackProbes[" + std::to_string(I) + "].Reset +1",
                     std::move(P));
  }
  for (size_t I = 0; I < Plan.RetProbes.size(); ++I) {
    PathProbePlan P = Plan;
    P.RetProbes[I].FlushAdd += 1;
    Out.emplace_back("RetProbes[" + std::to_string(I) + "].FlushAdd +1",
                     std::move(P));
  }
  return Out;
}

class AuditRandom : public ::testing::TestWithParam<uint64_t> {};

/// Acceptance side: canonical plans pass the audit, and the audit verdict
/// matches the enumeration oracle.
TEST_P(AuditRandom, AcceptsCanonicalPlansInBothPlacements) {
  Rng R(GetParam());
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G, 1 << 16);
  if (!Dag)
    return; // overflow guard tripped; nothing to audit

  auto PathEdges = Dag->enumerateAllPathEdges();
  for (PlacementMode Mode : {PlacementMode::Simple, PlacementMode::SpanningTree}) {
    PathProbePlan Plan = Dag->makePlan(Mode);
    AuditResult AR = auditPlan(G, *Dag, Plan, Mode);
    EXPECT_TRUE(AR.ok()) << AR.message();
    // What the audit just proved algebraically, the oracle confirms by
    // walking every path.
    EXPECT_TRUE(simulationAgrees(*Dag, Plan, PathEdges));
  }
}

/// Rejection side: every single-constant corruption is caught, and in each
/// case the enumeration oracle agrees that some path would emit a wrong ID.
/// Together with the acceptance test this shows audit verdict == oracle
/// verdict over this corruption class.
TEST_P(AuditRandom, RejectsEverySingleConstantMutation) {
  Rng R(GetParam() ^ 0xbadc0de);
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G, 512); // keep enumeration cheap
  if (!Dag)
    return;

  auto PathEdges = Dag->enumerateAllPathEdges();
  for (PlacementMode Mode : {PlacementMode::Simple, PlacementMode::SpanningTree}) {
    PathProbePlan Plan = Dag->makePlan(Mode);
    for (auto &[What, Mutated] : allSingleConstantMutations(Plan)) {
      AuditResult AR = auditPlan(G, *Dag, Mutated, Mode);
      EXPECT_FALSE(AR.ok())
          << "audit accepted a corrupted plan: " << What << " (seed "
          << GetParam() << ")";
      EXPECT_FALSE(simulationAgrees(*Dag, Mutated, PathEdges))
          << "audit rejected " << What
          << " but simulation says the plan still works (audit too strict?)";
    }
  }
}

/// Module-level audit over random functions, all four feedback modes.
TEST_P(AuditRandom, ModuleAuditAcceptsAllFeedbackModes) {
  Rng R(GetParam() ^ 0x5151);
  mir::Module Base = test::moduleWith(test::randomFunction(R));
  for (Feedback Mode : {Feedback::None, Feedback::EdgePrecise,
                        Feedback::EdgeClassic, Feedback::Path}) {
    for (PlacementMode P :
         {PlacementMode::Simple, PlacementMode::SpanningTree}) {
      mir::Module Inst = Base;
      InstrumentOptions IO;
      IO.Mode = Mode;
      IO.Placement = P;
      InstrumentReport Rep = instrumentModule(Inst, IO);
      AuditResult AR = auditModule(Base, Inst, Rep, IO);
      EXPECT_TRUE(AR.ok()) << "mode " << int(Mode) << ": " << AR.message();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditRandom,
                         ::testing::Range<uint64_t>(0, 40));

/// The acceptance criterion: the audit proves plan soundness for every
/// function of every bundled subject, under both placements, without
/// enumerating a single path.
TEST(Audit, ProvesAllSubjectsSoundUnderBothPlacements) {
  for (const auto &S : targets::allSubjects()) {
    lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
    ASSERT_TRUE(CR.ok()) << S.Name << ": " << CR.message();
    for (PlacementMode P :
         {PlacementMode::Simple, PlacementMode::SpanningTree}) {
      mir::Module Inst = *CR.Mod;
      InstrumentOptions IO;
      IO.Mode = Feedback::Path;
      IO.Placement = P;
      InstrumentReport Rep = instrumentModule(Inst, IO);
      AuditResult AR = auditModule(*CR.Mod, Inst, Rep, IO);
      EXPECT_TRUE(AR.ok())
          << S.Name << " ("
          << (P == PlacementMode::Simple ? "simple" : "spanning-tree")
          << "): " << AR.message();
    }
    // The edge feedbacks audit clean too.
    for (Feedback Mode : {Feedback::EdgePrecise, Feedback::EdgeClassic}) {
      mir::Module Inst = *CR.Mod;
      InstrumentOptions IO;
      IO.Mode = Mode;
      InstrumentReport Rep = instrumentModule(Inst, IO);
      AuditResult AR = auditModule(*CR.Mod, Inst, Rep, IO);
      EXPECT_TRUE(AR.ok()) << S.Name << ": " << AR.message();
    }
  }
}

/// The point of the algebra: a function with 2^28 acyclic paths is proven
/// sound in milliseconds. Enumeration would walk 268 million paths.
TEST(Audit, ProvesHugePathCountWithoutEnumeration) {
  const int Diamonds = 28;
  mir::FunctionBuilder FB("wide", 1);
  mir::Reg C = FB.emitInLen();
  for (int I = 0; I < Diamonds; ++I) {
    uint32_t T = FB.newBlock(), E = FB.newBlock(), J = FB.newBlock();
    FB.setCondBr(C, T, E);
    FB.setInsertPoint(T);
    FB.setBr(J);
    FB.setInsertPoint(E);
    FB.setBr(J);
    FB.setInsertPoint(J);
  }
  FB.setRet(C);
  mir::Function F = FB.take();

  // Plan-level: the DAG has exactly 2^28 paths and its plan audits clean.
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G, 1ULL << 30);
  ASSERT_TRUE(Dag.has_value());
  EXPECT_EQ(Dag->numPaths(), 1ULL << Diamonds);
  for (PlacementMode P : {PlacementMode::Simple, PlacementMode::SpanningTree}) {
    PathProbePlan Plan = Dag->makePlan(P);
    AuditResult AR = auditPlan(G, *Dag, Plan, P);
    EXPECT_TRUE(AR.ok()) << AR.message();
  }

  // Module-level: instrumentation must not fall back, and the whole module
  // audit still proves soundness.
  mir::Module Base = test::moduleWith(F);
  mir::Module Inst = Base;
  InstrumentOptions IO;
  IO.Mode = Feedback::Path;
  InstrumentReport Rep = instrumentModule(Inst, IO);
  EXPECT_EQ(Rep.TotalPathFallbacks, 0u);
  EXPECT_GE(Rep.TotalPaths, 1ULL << Diamonds);
  AuditResult AR = auditModule(Base, Inst, Rep, IO);
  EXPECT_TRUE(AR.ok()) << AR.message();
}

/// A loopy source program that exercises every path-probe kind: edge
/// increments, a back-edge flush/reset and a return flush.
const char *LoopySource = R"ml(
fn main() {
  var i = 0;
  var s = 0;
  while (i < len()) {
    if (in(i) > 10) {
      s = s + 2;
    } else {
      s = s + 1;
    }
    i = i + 1;
  }
  return s;
}
)ml";

struct InstrumentedSubject {
  mir::Module Base;
  mir::Module Inst;
  InstrumentReport Rep;
  InstrumentOptions IO;
};

InstrumentedSubject instrumentLoopy(Feedback Mode) {
  lang::CompileResult CR = lang::compileSource(LoopySource, "loopy");
  EXPECT_TRUE(CR.ok()) << CR.message();
  InstrumentedSubject S;
  S.Base = std::move(*CR.Mod);
  S.Inst = S.Base;
  S.IO.Mode = Mode;
  S.Rep = instrumentModule(S.Inst, S.IO);
  return S;
}

mir::Instr *findProbe(mir::Module &M, mir::Opcode Op) {
  for (auto &F : M.Funcs)
    for (auto &B : F.Blocks)
      for (auto &I : B.Instrs)
        if (I.Op == Op)
          return &I;
  return nullptr;
}

/// Hand corruptions of a path-instrumented module are all caught.
TEST(Audit, ModuleAuditCatchesHandCorruption) {
  {
    InstrumentedSubject S = instrumentLoopy(Feedback::Path);
    mir::Instr *P = findProbe(S.Inst, mir::Opcode::PathAdd);
    ASSERT_NE(P, nullptr) << "the loop body must carry an increment";
    P->Imm += 1;
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "off-by-one path increment not caught";
  }
  {
    InstrumentedSubject S = instrumentLoopy(Feedback::Path);
    mir::Instr *P = findProbe(S.Inst, mir::Opcode::PathFlushBack);
    ASSERT_NE(P, nullptr) << "the while loop must carry a back-edge flush";
    P->Imm += 1;
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "corrupted back-edge flush constant not caught";
  }
  {
    InstrumentedSubject S = instrumentLoopy(Feedback::Path);
    mir::Instr *P = findProbe(S.Inst, mir::Opcode::PathFlushRet);
    ASSERT_NE(P, nullptr);
    P->Imm += 1;
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "corrupted return flush constant not caught";
  }
  {
    InstrumentedSubject S = instrumentLoopy(Feedback::Path);
    int Main = S.Inst.findFunction("main");
    ASSERT_GE(Main, 0);
    S.Inst.Funcs[static_cast<size_t>(Main)].PathRegInit += 1;
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "corrupted path register init not caught";
  }
  {
    // Deleting a probe outright must break the structural replay.
    InstrumentedSubject S = instrumentLoopy(Feedback::Path);
    bool Removed = false;
    for (auto &F : S.Inst.Funcs) {
      for (auto &B : F.Blocks) {
        for (size_t I = 0; I < B.Instrs.size(); ++I)
          if (B.Instrs[I].Op == mir::Opcode::PathAdd) {
            B.Instrs.erase(B.Instrs.begin() + static_cast<long>(I));
            Removed = true;
            break;
          }
        if (Removed)
          break;
      }
      if (Removed)
        break;
    }
    ASSERT_TRUE(Removed);
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "deleted probe not caught";
  }
  {
    InstrumentedSubject S = instrumentLoopy(Feedback::EdgePrecise);
    mir::Instr *P = findProbe(S.Inst, mir::Opcode::EdgeProbe);
    ASSERT_NE(P, nullptr);
    P->Imm += 1;
    EXPECT_FALSE(auditModule(S.Base, S.Inst, S.Rep, S.IO).ok())
        << "duplicated edge ID not caught";
  }
}

/// End-to-end: the strategy.instrument.corrupt fault flips one probe
/// constant after the pass, and BuildCache's audit refuses the build —
/// deterministically, in any build flavor. The retry (fault is one-shot)
/// succeeds and serves an audited module.
TEST(Audit, BuildCacheRejectsCorruptedBuild) {
  fault::ScopedFaultInjection Guard;
  strategy::Subject S;
  S.Name = "audit-corrupt";
  S.Source = LoopySource;

  strategy::SubjectBuild SB(S);
  ASSERT_TRUE(SB.ok()) << SB.error();
  strategy::CampaignOptions Opts;

  fault::SiteConfig C;
  C.FailOnHit = 1;
  fault::armSite("strategy.instrument.corrupt", C);

  std::string Err;
  const strategy::InstrumentedBuild *B =
      SB.tryInstrumented(Feedback::Path, Opts, &Err);
  EXPECT_EQ(B, nullptr) << "corrupted build was served";
  EXPECT_NE(Err.find("audit"), std::string::npos) << Err;

  // The fault fired once; the retry re-runs the pass cleanly.
  instr::setAuditEnabled(true);
  B = SB.tryInstrumented(Feedback::Path, Opts, &Err);
  ASSERT_NE(B, nullptr) << Err;
  EXPECT_TRUE(B->Mod.Instrumented);

  // And the served module itself re-audits clean.
  InstrumentOptions IO;
  IO.Mode = Feedback::Path;
  IO.Placement = Opts.Placement;
  IO.MapSizeLog2 = Opts.MapSizeLog2;
  IO.Seed = 0x5eed0000 + Opts.MapSizeLog2;
  EXPECT_TRUE(auditModule(SB.base(), B->Mod, B->Report, IO).ok());
  instr::setAuditEnabled(false);
}

/// The PATHFUZZ_AUDIT toggle and programmatic override.
TEST(Audit, EnableOverrideWins) {
  instr::setAuditEnabled(true);
  EXPECT_TRUE(instr::auditEnabled());
  instr::setAuditEnabled(false);
  EXPECT_FALSE(instr::auditEnabled());
  // Leave the audit ON for the rest of this binary: it makes every later
  // BuildCache use in this process stricter, which is what we want here.
  instr::setAuditEnabled(true);
}

} // namespace
