//===- TestUtil.h - Shared test helpers -------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TESTS_TESTUTIL_H
#define PATHFUZZ_TESTS_TESTUTIL_H

#include "mir/Builder.h"
#include "mir/Mir.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace test {

/// Generate a random but well-formed register-only function: Const /
/// BinImm / InByte / InLen instructions, Br / CondBr / Switch / Ret
/// terminators. No memory ops, so execution either returns or hits the
/// step limit — ideal for semantics-preservation and Ball-Larus property
/// tests on arbitrary CFG shapes (including loops and unreachable
/// blocks).
inline mir::Function randomFunction(Rng &R, unsigned MaxBlocks = 12) {
  unsigned NumBlocks = 2 + static_cast<unsigned>(R.below(MaxBlocks - 1));
  mir::FunctionBuilder FB("random", /*NumParams=*/1);

  // Pre-create the blocks so terminators can target any of them.
  std::vector<uint32_t> Blocks;
  Blocks.push_back(0);
  for (unsigned I = 1; I < NumBlocks; ++I)
    Blocks.push_back(FB.newBlock());

  // A pool of registers written before use.
  std::vector<mir::Reg> Pool = {0};

  for (unsigned B = 0; B < NumBlocks; ++B) {
    FB.setInsertPoint(Blocks[B]);
    unsigned NumInstrs = static_cast<unsigned>(R.below(4));
    for (unsigned I = 0; I < NumInstrs; ++I) {
      switch (R.below(4)) {
      case 0:
        Pool.push_back(FB.emitConst(R.range(-8, 200)));
        break;
      case 1:
        Pool.push_back(FB.emitBinImm(
            static_cast<mir::BinOp>(R.below(3)), // Add/Sub/Mul
            Pool[R.index(Pool.size())], R.range(-3, 3)));
        break;
      case 2:
        Pool.push_back(FB.emitInByte(Pool[R.index(Pool.size())]));
        break;
      case 3:
        Pool.push_back(FB.emitInLen());
        break;
      }
    }
    // Terminator: bias towards forward control flow so most blocks are
    // reachable, but allow arbitrary targets (back edges, self loops).
    uint32_t T1 = Blocks[R.index(NumBlocks)];
    uint32_t T2 = Blocks[R.index(NumBlocks)];
    switch (R.below(8)) {
    case 0:
    case 1:
      FB.setRet(Pool[R.index(Pool.size())]);
      break;
    case 2:
      FB.setBr(T1);
      break;
    case 3: {
      std::vector<int64_t> Cases = {R.range(0, 4), R.range(5, 9)};
      std::vector<uint32_t> Targets = {T1, T2};
      FB.setSwitch(Pool[R.index(Pool.size())], Cases, Targets,
                   Blocks[R.index(NumBlocks)]);
      break;
    }
    default:
      FB.setCondBr(Pool[R.index(Pool.size())], T1, T2);
      break;
    }
  }
  return FB.take();
}

/// Wrap a function into a module whose main calls it once.
inline mir::Module moduleWith(mir::Function F) {
  mir::Module M;
  M.Name = "test";
  F.Name = "callee";
  M.Funcs.push_back(std::move(F));

  mir::FunctionBuilder Main("main", 0);
  mir::Reg Arg = Main.emitInLen();
  mir::Reg Ret = Main.emitCall(0, {Arg});
  Main.setRet(Ret);
  M.Funcs.push_back(Main.take());
  return M;
}

} // namespace test
} // namespace pathfuzz

#endif // PATHFUZZ_TESTS_TESTUTIL_H
