//===- TargetsTest.cpp - Subject-suite sanity ----------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

#include "lang/Compile.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::targets;

namespace {

TEST(Targets, SuiteHasThePapersEighteenSubjects) {
  const auto &Suite = allSubjects();
  ASSERT_EQ(Suite.size(), 18u);
  for (const char *Name :
       {"cflow", "exiv2", "ffmpeg", "flvmeta", "gdk", "imginfo", "infotocap",
        "jhead", "jq", "lame", "mp3gain", "mp42aac", "mujs", "nm-new",
        "objdump", "pdftotext", "sqlite3", "tiffsplit"})
    EXPECT_NE(findSubject(Name), nullptr) << Name;
  EXPECT_EQ(findSubject("wav2svf"), nullptr) << "excluded by the paper";
}

class TargetsEach : public ::testing::TestWithParam<size_t> {};

TEST_P(TargetsEach, CompilesAndSeedsAreBenign) {
  const Subject &S = allSubjects()[GetParam()];
  lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
  ASSERT_TRUE(CR.ok()) << S.Name << ":\n" << CR.message();

  // Seeds must execute cleanly: a crashing seed would hand the bug to
  // every fuzzer for free and starve the queue.
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  EO.StepLimit = 100000;
  ASSERT_FALSE(S.Seeds.empty()) << S.Name;
  for (const fuzz::Input &Seed : S.Seeds) {
    vm::ExecResult R = Machine.run(Seed.data(), Seed.size(), EO, nullptr);
    EXPECT_FALSE(R.crashed())
        << S.Name << " seed crashes: " << vm::faultKindName(R.TheFault.Kind)
        << " in func " << R.TheFault.Func << " block " << R.TheFault.Block;
    EXPECT_FALSE(R.hung()) << S.Name << " seed hangs";
  }
}

TEST_P(TargetsEach, SeedsExerciseRealCode) {
  const Subject &S = allSubjects()[GetParam()];
  lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
  ASSERT_TRUE(CR.ok());
  instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(*CR.Mod);
  vm::Vm Machine(*CR.Mod, &Shadow);
  vm::ExecOptions EO;
  size_t BestEdges = 0;
  for (const fuzz::Input &Seed : S.Seeds) {
    vm::ExecResult R = Machine.run(Seed.data(), Seed.size(), EO, nullptr);
    BestEdges = std::max(BestEdges, R.ShadowEdges.size());
  }
  // At least one seed must get past the magic checks into the parser.
  EXPECT_GE(BestEdges, 8u) << S.Name;
}

INSTANTIATE_TEST_SUITE_P(All, TargetsEach, ::testing::Range<size_t>(0, 18),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string N = allSubjects()[Info.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

/// Known triggering inputs for a few planted bugs: these pin down that the
/// bugs are real and reachable, independent of any fuzzer.
TEST(Targets, CflowProgressionBugTriggers) {
  const Subject *S = findSubject("cflow");
  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  // 25 one-char tokens with no ';' creep curs past token_stack.
  std::string In;
  for (int I = 0; I < 25; ++I)
    In += "a ";
  vm::ExecResult R = Machine.run(
      reinterpret_cast<const uint8_t *>(In.data()), In.size(), EO, nullptr);
  EXPECT_TRUE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OobWrite);
}

TEST(Targets, CflowFig1StyleBugTriggers) {
  const Subject *S = findSubject("cflow");
  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  // Exactly 12 tokens starting with 'h', then ';': decl_info[15] OOB.
  std::string In = "h a b c d e f g i j k l;";
  vm::ExecResult R = Machine.run(
      reinterpret_cast<const uint8_t *>(In.data()), In.size(), EO, nullptr);
  EXPECT_TRUE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OobWrite);

  // The same 12 tokens without the 'h' start take the rare path benignly:
  // this is the intermediate state only a path-aware fuzzer retains.
  std::string Benign = "x a b c d e f g i j k l;";
  vm::ExecResult R2 = Machine.run(
      reinterpret_cast<const uint8_t *>(Benign.data()), Benign.size(), EO,
      nullptr);
  EXPECT_FALSE(R2.crashed());
}

TEST(Targets, CflowPragmaGadgetTriggers) {
  const Subject *S = findSubject("cflow");
  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  ASSERT_TRUE(CR.ok()) << CR.message();
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  // Three occurrences of flag combination 0x2c overflow attr_tab.
  std::vector<uint8_t> One = {'@', 0x00, 0x00, 0x04, 0x08, 0x00, 0x20};
  std::vector<uint8_t> In;
  for (int K = 0; K < 3; ++K)
    In.insert(In.end(), One.begin(), One.end());
  vm::ExecResult R = Machine.run(In.data(), In.size(), EO, nullptr);
  EXPECT_TRUE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OobWrite);

  // One or two occurrences are benign: the stepping stones only the path
  // feedback's per-path hit counts distinguish.
  vm::ExecResult R2 = Machine.run(One.data(), One.size(), EO, nullptr);
  EXPECT_FALSE(R2.crashed());
  std::vector<uint8_t> Two(In.begin(), In.begin() + 14);
  vm::ExecResult R3 = Machine.run(Two.data(), Two.size(), EO, nullptr);
  EXPECT_FALSE(R3.crashed());
}

TEST(Targets, NmNewHasNoPlantedBugs) {
  // Short fuzzing on nm-new must stay crash-free (the paper's all-zero
  // row).
  const Subject *S = findSubject("nm-new");
  strategy::CampaignOptions Opts;
  Opts.Kind = strategy::FuzzerKind::Pcguard;
  Opts.ExecBudget = 8000;
  strategy::CampaignResult R = strategy::runCampaign(*S, Opts);
  EXPECT_EQ(R.BugIds.size(), 0u);
  EXPECT_EQ(R.TotalCrashes, 0u);
}

TEST(Targets, SubjectsFromEnvFilters) {
  ::setenv("REPRO_SUBJECTS", "cflow,jq", 1);
  std::vector<Subject> Subset = subjectsFromEnv();
  ::unsetenv("REPRO_SUBJECTS");
  ASSERT_EQ(Subset.size(), 2u);
  EXPECT_EQ(Subset[0].Name, "cflow");
  EXPECT_EQ(Subset[1].Name, "jq");
  EXPECT_EQ(subjectsFromEnv().size(), 18u);
}

} // namespace
