//===- KillTortureTest.cpp - SIGKILL the campaign, resume, repeat -------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The tentpole durability drill. A child process runs a stored campaign
// and SIGKILLs itself the instant each new checkpoint is persisted — the
// harshest schedule the durability contract admits, killing at every
// checkpoint boundary of every process life. The parent just re-spawns
// the child until one life reaches the end of the budget. The contract
// under test:
//
//  - every life makes strict forward progress (one checkpoint interval),
//    so the torture converges well inside the round bound;
//  - the final result is byte-identical (serializeCampaignResult) to an
//    uninterrupted in-memory run, across every driver family;
//  - the final telemetry trace is observably identical to the
//    uninterrupted run's (the store's own counters excepted);
//  - a checkpoint corrupted on disk mid-torture is quarantined and the
//    run falls back to the previous one, still ending byte-identical.
//
// The child communicates through its exit status alone (SIGKILL = one
// more round; 0 = converged and matched; small codes = which contract
// broke), so no gtest machinery runs after fork().
//
//===----------------------------------------------------------------------===//

#include "strategy/Campaign.h"
#include "strategy/Store.h"
#include "support/Io.h"
#include "telemetry/Trace.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace pathfuzz;
using namespace pathfuzz::strategy;
namespace fs = std::filesystem;

namespace {

// Child exit codes (0 = success; SIGKILL = scheduled death).
constexpr int ExitCampaignError = 10;
constexpr int ExitResultMismatch = 11;
constexpr int ExitTraceMismatch = 12;

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

CampaignOptions tortureOpts(FuzzerKind Kind) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = 6000;
  Opts.Seed = 5;
  Opts.CullRounds = 3;
  return Opts;
}

bool sameEvents(const std::vector<telemetry::Event> &A,
                const std::vector<telemetry::Event> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Exec != B[I].Exec || A[I].Kind != B[I].Kind ||
        A[I].Arg32 != B[I].Arg32 || A[I].Arg64 != B[I].Arg64 ||
        A[I].Arg8 != B[I].Arg8)
      return false;
  return true;
}

/// Observable-telemetry identity: everything except the store's own
/// instance record (the uninterrupted run has none) and the engine-local
/// metric families sameObservableMetrics() already masks.
bool sameObservableTrace(const telemetry::CampaignTrace &Stored,
                         const telemetry::CampaignTrace &Ref) {
  if (Stored.Subject != Ref.Subject || Stored.Fuzzer != Ref.Fuzzer ||
      Stored.Seed != Ref.Seed)
    return false;
  if (!sameEvents(Stored.CampaignEvents, Ref.CampaignEvents))
    return false;
  std::vector<const telemetry::InstanceRecord *> A;
  for (const telemetry::InstanceRecord &R : Stored.Instances)
    if (R.Label != "store")
      A.push_back(&R);
  if (A.size() != Ref.Instances.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const telemetry::InstanceRecord &S = *A[I];
    const telemetry::InstanceRecord &R = Ref.Instances[I];
    if (S.Label != R.Label || S.ExecOffset != R.ExecOffset ||
        S.EventsRecorded != R.EventsRecorded || !sameEvents(S.Events, R.Events))
      return false;
    if (!(S.Samples == R.Samples))
      return false;
    if (!telemetry::sameObservableMetrics(S.Metrics, R.Metrics))
      return false;
  }
  return true;
}

/// One process life: run the stored campaign, SIGKILL-ing ourselves the
/// moment the first new checkpoint of this life hits the disk. Never
/// returns — only _exit() (gtest must not run in the child).
[[noreturn]] void childLife(const Subject &S, const CampaignOptions &Base,
                            const std::string &StoreDir,
                            const std::vector<uint8_t> &Ref,
                            const telemetry::CampaignTrace *RefTrace) {
  CampaignOptions Opts = Base;
  Opts.StoreDir = StoreDir;
  Opts.CheckpointInterval = 700;
  Opts.Trace.Enabled = RefTrace != nullptr;
  // The store persists each checkpoint BEFORE the sink sees it, so dying
  // here models SIGKILL "the instant after the write" — the worst legal
  // moment. A life that emits no checkpoint (the final partial interval)
  // runs to completion instead.
  Opts.CheckpointSink = [](const std::vector<uint8_t> &) {
    ::raise(SIGKILL);
  };
  CampaignError Err;
  CampaignResult R = runStoredCampaign(S, Opts, &Err);
  if (Err.Failed)
    ::_exit(ExitCampaignError);
  if (serializeCampaignResult(R) != Ref)
    ::_exit(ExitResultMismatch);
  if (RefTrace) {
    if (!R.Trace || !sameObservableTrace(*R.Trace, *RefTrace))
      ::_exit(ExitTraceMismatch);
  }
  ::_exit(0);
}

std::string newestCheckpointFile(const std::string &Dir) {
  std::string Newest;
  if (!fs::exists(Dir))
    return Newest;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".pfsnap")
      Newest = std::max(Newest, E.path().string());
  return Newest;
}

size_t filesIn(const std::string &Dir) {
  if (!fs::exists(Dir))
    return 0;
  size_t N = 0;
  for (const auto &E : fs::directory_iterator(Dir)) {
    (void)E;
    ++N;
  }
  return N;
}

class KillTorture : public ::testing::TestWithParam<FuzzerKind> {};

TEST_P(KillTorture, ConvergesByteIdenticalThroughRepeatedSigkill) {
  const FuzzerKind Kind = GetParam();
  Subject S = smallSubject();
  CampaignOptions Base = tortureOpts(Kind);

  // Uninterrupted reference, with the same checkpoint cadence and tracing
  // so the telemetry comparison is apples to apples (checkpoint events
  // are part of the trace).
  CampaignOptions RefOpts = Base;
  RefOpts.CheckpointInterval = 700;
  RefOpts.CheckpointSink = [](const std::vector<uint8_t> &) {};
  RefOpts.Trace.Enabled = true;
  CampaignError RefErr;
  CampaignResult RefResult = runCampaign(S, RefOpts, &RefErr);
  ASSERT_FALSE(RefErr.Failed) << RefErr.Message;
  const std::vector<uint8_t> Ref = serializeCampaignResult(RefResult);
  const telemetry::CampaignTrace *RefTrace = RefResult.Trace.get();

  const std::string Root =
      (fs::temp_directory_path() /
       ("pathfuzz-torture-" + std::to_string(::getpid()) + "-" +
        std::string(fuzzerKindName(Kind))))
          .string();
  const std::string StoreDir = Root + "/campaign";
  std::error_code Ec;
  fs::remove_all(Root, Ec);

  // ~9 lives suffice (budget/interval + corruption drill + final life);
  // 64 is the divergence alarm, not the expectation.
  const int MaxRounds = 64;
  int Kills = 0;
  bool Converged = false;
  bool Corrupted = false;
  for (int Round = 1; Round <= MaxRounds && !Converged; ++Round) {
    if (Round == 4 && !Corrupted) {
      // Mid-torture corruption drill: damage the newest checkpoint on
      // disk; the next life must quarantine it and fall back.
      std::string Newest = newestCheckpointFile(StoreDir);
      if (!Newest.empty()) {
        std::vector<uint8_t> Raw;
        ASSERT_TRUE(io::readFileBounded(Newest, 1 << 30, Raw));
        ASSERT_GT(Raw.size(), 2u);
        Raw[Raw.size() / 2] ^= 0x04;
        ASSERT_TRUE(io::atomicWriteFile(Newest, Raw));
        Corrupted = true;
      }
    }

    pid_t Pid = ::fork();
    ASSERT_NE(Pid, -1);
    if (Pid == 0)
      childLife(S, Base, StoreDir, Ref, RefTrace); // never returns

    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    if (WIFSIGNALED(Status)) {
      ASSERT_EQ(WTERMSIG(Status), SIGKILL)
          << "child died of an unscheduled signal";
      ++Kills;
      continue;
    }
    ASSERT_TRUE(WIFEXITED(Status));
    ASSERT_EQ(WEXITSTATUS(Status), 0)
        << "10=campaign error, 11=result not byte-identical, "
           "12=telemetry trace diverged";
    Converged = true;
  }
  ASSERT_TRUE(Converged) << "no forward progress: every life was killed "
                            "without finishing within "
                         << MaxRounds << " rounds";
  // The schedule kills after every persisted checkpoint, so the torture
  // is only meaningful if several lives actually died.
  EXPECT_GE(Kills, 3) << "torture never actually interrupted the campaign";
  EXPECT_TRUE(Corrupted) << "corruption drill found no checkpoint to damage";
  EXPECT_GE(filesIn(StoreDir + "/quarantine"), 1u)
      << "corrupted checkpoint was not quarantined";

  // The surviving store is Done and replays the same bytes from disk.
  std::vector<StoreScanEntry> Scan = scanStoreRoot(Root);
  ASSERT_EQ(Scan.size(), 1u);
  EXPECT_EQ(Scan[0].State, StoreState::Done);
  EXPECT_EQ(serializeCampaignResult(Scan[0].Final), Ref);

  fs::remove_all(Root, Ec);
}

INSTANTIATE_TEST_SUITE_P(Drivers, KillTorture,
                         ::testing::Values(FuzzerKind::Pcguard,
                                           FuzzerKind::Cull,
                                           FuzzerKind::Opp),
                         [](const auto &Info) {
                           return std::string(fuzzerKindName(Info.param));
                         });

} // namespace
