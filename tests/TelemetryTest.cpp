//===- TelemetryTest.cpp - Telemetry subsystem ---------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The telemetry contracts:
//
//  - Recording is purely observational: a traced campaign produces a
//    byte-identical CampaignResult to an untraced one.
//  - Exports are deterministic: the merged JSONL for a set of campaigns
//    is byte-identical at any batch thread count, and the JSONL round-
//    trips through pathfuzz-report's parsers back to the exporters' CSVs.
//  - A killed-and-resumed campaign reports the same samples and metric
//    values as an uninterrupted one (events depend on the checkpoint
//    cadence — CheckpointWritten markers — and are deliberately not part
//    of this oracle).
//  - Export failure (the telemetry.export.fail site) degrades to an
//    error return, never an abort.
//
//===----------------------------------------------------------------------===//

#include "strategy/Batch.h"
#include "strategy/Campaign.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "telemetry/Export.h"
#include "telemetry/Report.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace pathfuzz;
using namespace pathfuzz::strategy;
using namespace pathfuzz::telemetry;

namespace {

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

CampaignOptions tracedOpts(FuzzerKind Kind, uint64_t Budget = 5000) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = Budget;
  Opts.Seed = 3;
  Opts.CullRounds = 2;
  Opts.Trace.Enabled = true;
  Opts.Trace.SampleInterval = 512;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Event ring
//===----------------------------------------------------------------------===//

Event mkEvent(uint64_t Exec) {
  Event E;
  E.Kind = EventKind::ExecCompleted;
  E.Exec = Exec;
  E.Arg32 = static_cast<uint32_t>(Exec * 3);
  E.Arg64 = Exec * 7;
  E.Arg8 = Exec % 3;
  return E;
}

TEST(EventRing, KeepsOrderAndOverwritesOldest) {
  EventRing Ring(/*CapacityLog2=*/6); // 64 events, the clamp floor
  ASSERT_EQ(Ring.capacity(), 64u);

  for (uint64_t I = 0; I < 40; ++I)
    Ring.push(mkEvent(I));
  EXPECT_EQ(Ring.size(), 40u);
  EXPECT_EQ(Ring.recorded(), 40u);
  EXPECT_EQ(Ring.dropped(), 0u);

  for (uint64_t I = 40; I < 100; ++I)
    Ring.push(mkEvent(I));
  EXPECT_EQ(Ring.size(), 64u);
  EXPECT_EQ(Ring.recorded(), 100u);
  EXPECT_EQ(Ring.dropped(), 36u);

  // events() yields the newest 64, oldest first.
  std::vector<Event> Got = Ring.events();
  ASSERT_EQ(Got.size(), 64u);
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(Got[I], mkEvent(36 + I)) << "index " << I;
}

TEST(EventRing, ClampsCapacityAndRestores) {
  EventRing Tiny(0), Huge(40);
  EXPECT_EQ(Tiny.capacity(), 64u);
  EXPECT_EQ(Huge.capacity(), size_t(1) << 20);

  EventRing Ring(6);
  for (uint64_t I = 0; I < 100; ++I)
    Ring.push(mkEvent(I));

  EventRing Fresh(6);
  Fresh.restore(Ring.events(), Ring.recorded());
  EXPECT_EQ(Fresh.recorded(), Ring.recorded());
  EXPECT_EQ(Fresh.dropped(), Ring.dropped());
  EXPECT_EQ(Fresh.events(), Ring.events());
}

TEST(EventRing, RestoredRingContinuesInPhase) {
  // Restoring a wrapped ring must preserve the slot phase: pushes after
  // the restore overwrite oldest-first, exactly as if the ring had never
  // been snapshotted (the fuzzer resume contract).
  EventRing Ref(6);
  for (uint64_t I = 0; I < 150; ++I)
    Ref.push(mkEvent(I));

  EventRing Snapshotted(6);
  for (uint64_t I = 0; I < 100; ++I) // wrapped: 36 events already dropped
    Snapshotted.push(mkEvent(I));
  EventRing Resumed(6);
  Resumed.restore(Snapshotted.events(), Snapshotted.recorded());
  for (uint64_t I = 100; I < 150; ++I)
    Resumed.push(mkEvent(I));

  EXPECT_EQ(Resumed.recorded(), Ref.recorded());
  EXPECT_EQ(Resumed.dropped(), Ref.dropped());
  EXPECT_EQ(Resumed.events(), Ref.events());

  // A restore into a larger ring keeps only the surviving history (the
  // pre-snapshot drops cannot be resurrected).
  EventRing Bigger(8);
  Bigger.restore(Snapshotted.events(), Snapshotted.recorded());
  EXPECT_EQ(Bigger.recorded(), 100u);
  EXPECT_EQ(Bigger.size(), 64u);
  EXPECT_EQ(Bigger.events(), Snapshotted.events());

  // And into a smaller ring, only the newest events fit.
  EventRing Smaller(6);
  std::vector<Event> All;
  for (uint64_t I = 0; I < 100; ++I)
    All.push_back(mkEvent(I));
  Smaller.restore(All, 100);
  ASSERT_EQ(Smaller.size(), 64u);
  EXPECT_EQ(Smaller.events(), Snapshotted.events());
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketsAreFixedLog2) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~0ull), Histogram::NumBuckets - 1);
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Histogram::bucketLow(11), 1024u);

  Histogram H;
  for (uint64_t V : {0ull, 1ull, 5ull, 5ull, 700ull})
    H.observe(V);
  EXPECT_EQ(H.Count, 5u);
  EXPECT_EQ(H.Sum, 711u);
  EXPECT_EQ(H.Min, 0u);
  EXPECT_EQ(H.Max, 700u);
  EXPECT_EQ(H.Buckets[0], 1u);
  EXPECT_EQ(H.Buckets[1], 1u);
  EXPECT_EQ(H.Buckets[3], 2u); // 5 twice
  EXPECT_EQ(H.Buckets[10], 1u); // 700
}

TEST(Metrics, RegistryRoundTripsWithStablePointers) {
  MetricsRegistry Reg;
  uint64_t *Execs = Reg.counter("execs");
  *Execs = 1234;
  *Reg.gauge("queue") = -7;
  Reg.histogram("steps")->observe(100);
  Reg.histogram("steps")->observe(3);

  ByteWriter W;
  Reg.serialize(W);
  std::vector<uint8_t> Bytes = W.take();

  MetricsRegistry Back;
  // Pre-registration, as the fuzzer does at construction: the restore
  // must land in the existing nodes so this pointer stays correct.
  uint64_t *BackExecs = Back.counter("execs");
  {
    ByteReader R(Bytes);
    ASSERT_TRUE(Back.deserialize(R));
    EXPECT_TRUE(R.done());
  }
  EXPECT_TRUE(Back == Reg);
  EXPECT_EQ(*BackExecs, 1234u);
  *BackExecs += 1;
  EXPECT_EQ(Back.counters().at("execs"), 1235u);

  // Truncated input is rejected, at every prefix length.
  for (size_t N = 0; N < Bytes.size(); ++N) {
    MetricsRegistry Bad;
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + N);
    ByteReader R(Cut);
    EXPECT_FALSE(Bad.deserialize(R) && R.done()) << "prefix " << N;
  }
}

//===----------------------------------------------------------------------===//
// PATHFUZZ_TRACE parsing
//===----------------------------------------------------------------------===//

TEST(TraceConfig, ParsesEnvSpecList) {
  ::unsetenv("PATHFUZZ_TRACE");
  EXPECT_FALSE(traceConfigFromEnv().Enabled);

  ::setenv("PATHFUZZ_TRACE", "on", 1);
  TraceConfig On = traceConfigFromEnv();
  EXPECT_TRUE(On.Enabled);
  EXPECT_EQ(On.RingCapacityLog2, 12u);
  EXPECT_EQ(On.SampleInterval, 2048u);

  ::setenv("PATHFUZZ_TRACE", "out=t.jsonl,sample@512,ring@100,csv,wall", 1);
  TraceConfig Full = traceConfigFromEnv();
  EXPECT_TRUE(Full.Enabled);
  EXPECT_EQ(Full.OutPath, "t.jsonl");
  EXPECT_EQ(Full.SampleInterval, 512u);
  EXPECT_EQ(Full.RingCapacityLog2, 7u); // 100 rounded up to 128
  EXPECT_TRUE(Full.Csv);
  EXPECT_TRUE(Full.Wall);

  // off wins over everything else in the list.
  ::setenv("PATHFUZZ_TRACE", "on,sample@256,off", 1);
  EXPECT_FALSE(traceConfigFromEnv().Enabled);

  // Malformed values are skipped, not half-parsed: the defaults survive
  // garbage, overflow and signs, exactly like fault-site specs.
  ::setenv("PATHFUZZ_TRACE",
           "sample@junk,sample@99999999999999999999999,sample@-4,ring@12x", 1);
  TraceConfig Garbage = traceConfigFromEnv();
  EXPECT_TRUE(Garbage.Enabled); // non-off entries still enable
  EXPECT_EQ(Garbage.SampleInterval, 2048u);
  EXPECT_EQ(Garbage.RingCapacityLog2, 12u);

  ::unsetenv("PATHFUZZ_TRACE");
}

//===----------------------------------------------------------------------===//
// Non-perturbation and export determinism
//===----------------------------------------------------------------------===//

TEST(Tracing, DoesNotPerturbCampaignResults) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  Subject S = smallSubject();
  for (FuzzerKind Kind : {FuzzerKind::Path, FuzzerKind::Cull,
                          FuzzerKind::Opp}) {
    SCOPED_TRACE(fuzzerKindName(Kind));
    CampaignOptions Traced = tracedOpts(Kind);
    CampaignOptions Untraced = Traced;
    Untraced.Trace = TraceConfig();

    CampaignResult RT = runCampaign(S, Traced);
    CampaignResult RU = runCampaign(S, Untraced);
    EXPECT_EQ(serializeCampaignResult(RT), serializeCampaignResult(RU));

    ASSERT_NE(RT.Trace, nullptr);
    EXPECT_EQ(RU.Trace, nullptr);
    ASSERT_FALSE(RT.Trace->Instances.empty());
    EXPECT_FALSE(RT.Trace->Instances.front().Samples.empty());
    EXPECT_FALSE(RT.Trace->Instances.front().Events.empty());
    EXPECT_EQ(RT.Trace->Subject, "small");
    EXPECT_EQ(RT.Trace->Fuzzer, std::string(fuzzerKindName(Kind)));
  }
}

/// The four configurations the acceptance criteria name, as one batch.
std::vector<BatchJob> fourConfigJobs(const Subject &S) {
  std::vector<BatchJob> Jobs;
  for (FuzzerKind Kind : {FuzzerKind::Path, FuzzerKind::Cull, FuzzerKind::Opp,
                          FuzzerKind::Pcguard}) {
    BatchJob J;
    J.S = &S;
    J.Opts = tracedOpts(Kind, 4000);
    Jobs.push_back(J);
  }
  return Jobs;
}

std::string mergedJsonlOf(const std::vector<CampaignResult> &Results) {
  std::vector<const CampaignTrace *> Traces;
  for (const CampaignResult &R : Results)
    Traces.push_back(R.Trace.get());
  return mergedJsonl(Traces);
}

TEST(Tracing, MergedJsonlIsByteIdenticalAcrossJobCounts) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  Subject S = smallSubject();
  std::vector<BatchJob> Jobs = fourConfigJobs(S);

  std::string Serial = mergedJsonlOf(runCampaigns(Jobs, 1));
  std::string Parallel = mergedJsonlOf(runCampaigns(Jobs, 4));
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);

  // The merged trace feeds pathfuzz-report: the queue-trajectory CSV must
  // carry all four configurations.
  std::string Csv = queueCsvFromJsonl(Serial);
  EXPECT_EQ(Csv.rfind("subject,fuzzer,seed,execs,queue\n", 0), 0u);
  for (const char *Fuzzer : {"path", "cull", "opp", "pcguard"})
    EXPECT_NE(Csv.find("\nsmall," + std::string(Fuzzer) + ","),
              std::string::npos)
        << Fuzzer;
}

//===----------------------------------------------------------------------===//
// JSONL schema (golden) and report round-trips
//===----------------------------------------------------------------------===//

/// Assert Keys appear in Line in order — the schema's field order is part
/// of the determinism contract, so reorders are breaking changes.
void expectKeyOrder(const std::string &Line,
                    const std::vector<std::string> &Keys) {
  size_t Pos = 0;
  for (const std::string &Key : Keys) {
    size_t At = Line.find("\"" + Key + "\":", Pos);
    ASSERT_NE(At, std::string::npos) << Key << " missing in: " << Line;
    Pos = At + 1;
  }
}

std::string firstLineOfType(const std::string &Jsonl, const std::string &Type) {
  size_t Start = 0;
  while (Start < Jsonl.size()) {
    size_t End = Jsonl.find('\n', Start);
    std::string Line = Jsonl.substr(Start, End - Start);
    std::string Got;
    if (jsonStr(Line, "type", Got) && Got == Type)
      return Line;
    if (End == std::string::npos)
      break;
    Start = End + 1;
  }
  return "";
}

TEST(Export, JsonlMatchesGoldenSchema) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  Subject S = smallSubject();
  CampaignResult R = runCampaign(S, tracedOpts(FuzzerKind::Path, 3000));
  ASSERT_NE(R.Trace, nullptr);
  std::string Jsonl = traceJsonl(*R.Trace);

  // Line 1 is the campaign header with the exact identity prefix every
  // other line repeats.
  const std::string Golden =
      "{\"type\":\"campaign\",\"subject\":\"small\",\"fuzzer\":\"path\","
      "\"seed\":3,\"instances\":1}";
  EXPECT_EQ(Jsonl.substr(0, Jsonl.find('\n')), Golden);

  expectKeyOrder(firstLineOfType(Jsonl, "instance"),
                 {"type", "subject", "fuzzer", "seed", "instance",
                  "exec_offset", "events_recorded", "events_kept"});
  expectKeyOrder(firstLineOfType(Jsonl, "sample"),
                 {"type", "subject", "fuzzer", "seed", "instance", "exec",
                  "queue", "favored", "edges", "crashes", "uniq_crashes",
                  "hangs", "uniq_bugs", "cull_passes", "dict"});
  expectKeyOrder(firstLineOfType(Jsonl, "event"),
                 {"type", "subject", "fuzzer", "seed", "instance", "kind",
                  "exec", "a32", "a64", "a8"});
  expectKeyOrder(firstLineOfType(Jsonl, "counter"),
                 {"type", "subject", "fuzzer", "seed", "instance", "name",
                  "value"});
  expectKeyOrder(firstLineOfType(Jsonl, "histogram"),
                 {"type", "subject", "fuzzer", "seed", "instance", "name",
                  "count", "sum", "min", "max", "buckets"});

  // Wall-clock fields only appear on request.
  EXPECT_EQ(Jsonl.find("wall_micros"), std::string::npos);
}

TEST(Report, CsvsRoundTripThroughJsonl) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  Subject S = smallSubject();
  std::vector<CampaignResult> Results = runCampaigns(fourConfigJobs(S), 2);
  std::vector<const CampaignTrace *> Traces;
  for (const CampaignResult &R : Results) {
    ASSERT_NE(R.Trace, nullptr);
    Traces.push_back(R.Trace.get());
  }
  std::string Jsonl = mergedJsonl(Traces);

  // The report tool's JSONL parse reproduces the exporters' CSVs exactly.
  EXPECT_EQ(queueCsvFromJsonl(Jsonl), queueTrajectoryCsv(Traces));
  EXPECT_EQ(coverageCsvFromJsonl(Jsonl), coverageCsv(Traces));

  std::string Crash = crashSummaryFromJsonl(Jsonl);
  EXPECT_EQ(Crash.rfind("subject,fuzzer,seed,crashes,unique_crashes,"
                        "unique_bugs,dedup_events\n",
                        0),
            0u);
  EXPECT_NE(Crash.find("\nsmall,path,3,"), std::string::npos);

  std::string Bench = benchJsonFromJsonl(Jsonl, "roundtrip");
  EXPECT_NE(Bench.find("\"name\":\"roundtrip\""), std::string::npos);
  EXPECT_NE(Bench.find("\"final_exec\":"), std::string::npos);
  EXPECT_NE(Bench.find("\"fuzzer\":\"pcguard\""), std::string::npos);
}

TEST(Report, CsvEscapesDelimitersInNames) {
  // Subject and fuzzer names flow verbatim from campaign configs into the
  // CSV emitters. Before RFC-4180 quoting, a comma in a name shifted every
  // later column; a quote or newline corrupted the row outright.
  EXPECT_EQ(csvField("plain"), "plain");
  EXPECT_EQ(csvField("a,b"), "\"a,b\"");
  EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvField("two\nlines"), "\"two\nlines\"");

  CampaignTrace T;
  T.Subject = "lib,v2";
  T.Fuzzer = "path \"exp\"";
  T.Seed = 7;
  InstanceRecord Rec;
  Rec.Label = "main";
  Sample S;
  S.Exec = 100;
  S.QueueSize = 3;
  S.EdgesCovered = 12;
  Rec.Samples.push_back(S);
  T.Instances.push_back(Rec);
  std::vector<const CampaignTrace *> Traces{&T};

  const std::string Row = "\"lib,v2\",\"path \"\"exp\"\"\",7,100,";
  std::string Queue = queueTrajectoryCsv(Traces);
  EXPECT_NE(Queue.find("\n" + Row + "3\n"), std::string::npos) << Queue;
  std::string Cov = coverageCsv(Traces);
  EXPECT_NE(Cov.find("\n" + Row + "12\n"), std::string::npos) << Cov;

  // The JSONL path escapes the same names at the JSON layer, and the
  // report tool's re-derived CSVs must still match the exporters byte for
  // byte — the round-trip contract is independent of name contents.
  std::string Jsonl = mergedJsonl(Traces);
  EXPECT_EQ(queueCsvFromJsonl(Jsonl), Queue);
  EXPECT_EQ(coverageCsvFromJsonl(Jsonl), Cov);
  std::string Crash = crashSummaryFromJsonl(Jsonl);
  EXPECT_NE(Crash.find("\"lib,v2\",\"path \"\"exp\"\"\",7,"),
            std::string::npos)
      << Crash;
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume telemetry
//===----------------------------------------------------------------------===//

/// Samples and metric values must survive kill+resume exactly; events are
/// excluded (the checkpointed run records CheckpointWritten markers the
/// uninterrupted reference never sees), and so are the engine-local
/// metric families (telemetry::isEngineLocalMetric): a resumed selective
/// run legitimately replays paths its predecessor already consumed — its
/// vm.selective.* counters differ while everything observable agrees.
void expectSameSeries(const CampaignTrace &A, const CampaignTrace &B) {
  EXPECT_EQ(A.Subject, B.Subject);
  EXPECT_EQ(A.Fuzzer, B.Fuzzer);
  EXPECT_EQ(A.Seed, B.Seed);
  ASSERT_EQ(A.Instances.size(), B.Instances.size());
  for (size_t I = 0; I < A.Instances.size(); ++I) {
    SCOPED_TRACE("instance " + A.Instances[I].Label);
    EXPECT_EQ(A.Instances[I].Label, B.Instances[I].Label);
    EXPECT_EQ(A.Instances[I].ExecOffset, B.Instances[I].ExecOffset);
    EXPECT_EQ(A.Instances[I].Samples, B.Instances[I].Samples);
    EXPECT_TRUE(telemetry::sameObservableMetrics(A.Instances[I].Metrics,
                                                 B.Instances[I].Metrics));
  }
}

class TelemetryResume : public ::testing::TestWithParam<FuzzerKind> {};

TEST_P(TelemetryResume, ResumedCampaignReportsTheSameSeries) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  Subject S = smallSubject();
  CampaignOptions Plain = tracedOpts(GetParam());
  CampaignResult Ref = runCampaign(S, Plain);
  ASSERT_NE(Ref.Trace, nullptr);

  CampaignOptions WithCkpt = Plain;
  WithCkpt.CheckpointInterval = 900;
  std::vector<std::vector<uint8_t>> Checkpoints;
  WithCkpt.CheckpointSink = [&Checkpoints](const std::vector<uint8_t> &Blob) {
    Checkpoints.push_back(Blob);
  };
  runCampaign(S, WithCkpt);
  ASSERT_GE(Checkpoints.size(), 2u);

  for (size_t I = 0; I < Checkpoints.size(); ++I) {
    SCOPED_TRACE("checkpoint " + std::to_string(I));
    CampaignError Err;
    CampaignResult Resumed = resumeCampaign(S, Plain, Checkpoints[I], &Err);
    ASSERT_FALSE(Err.Failed) << Err.Message;
    EXPECT_EQ(serializeCampaignResult(Resumed), serializeCampaignResult(Ref));
    ASSERT_NE(Resumed.Trace, nullptr);
    expectSameSeries(*Resumed.Trace, *Ref.Trace);
  }
}

INSTANTIATE_TEST_SUITE_P(Drivers, TelemetryResume,
                         ::testing::Values(FuzzerKind::Pcguard,
                                           FuzzerKind::Cull,
                                           FuzzerKind::Opp),
                         [](const auto &Info) {
                           return std::string(fuzzerKindName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Export failure degrades, never aborts
//===----------------------------------------------------------------------===//

TEST(Export, FileWriteFailureIsAnErrorReturnNotAnAbort) {
  if (!telemetry::Compiled)
    GTEST_SKIP() << "telemetry compiled out";
  fault::ScopedFaultInjection Guard;

  Subject S = smallSubject();
  CampaignOptions Opts = tracedOpts(FuzzerKind::Path, 3000);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Opts));

  fault::SiteConfig Always;
  Always.FailOnHit = 1;
  fault::armSite("telemetry.export.fail", Always);

  // The campaign itself is unaffected by the armed export site...
  CampaignResult R = runCampaign(S, Opts);
  EXPECT_EQ(serializeCampaignResult(R), Ref);
  ASSERT_NE(R.Trace, nullptr);

  // ...and the export reports failure instead of writing or aborting.
  std::string Err;
  EXPECT_FALSE(exportFile("/tmp/pathfuzz_telemetry_should_not_exist.jsonl",
                          traceJsonl(*R.Trace), &Err));
  EXPECT_NE(Err.find("telemetry.export.fail"), std::string::npos);

  // Re-armed to fail once: the first export fails, the next succeeds —
  // the site models a transient filesystem error.
  fault::armSite("telemetry.export.fail", Always);
  std::string Path = ::testing::TempDir() + "pathfuzz_telemetry_export.jsonl";
  EXPECT_FALSE(exportFile(Path, "x\n", &Err));
  EXPECT_TRUE(exportFile(Path, traceJsonl(*R.Trace), &Err)) << Err;
  std::remove(Path.c_str());
}

} // namespace
