//===- MirTest.cpp - MIR builder, printer, verifier ----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "mir/Builder.h"
#include "mir/Printer.h"
#include "mir/Verifier.h"

#include "cfg/Cfg.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::mir;

namespace {

Module wrap(Function F) {
  Module M;
  M.Name = "m";
  F.Name = "main";
  M.Funcs.push_back(std::move(F));
  return M;
}

TEST(Builder, AllocatesRegistersAndBlocks) {
  FunctionBuilder FB("f", 2);
  EXPECT_EQ(FB.function().NumParams, 2);
  Reg A = FB.emitConst(5);
  Reg B = FB.emitBin(BinOp::Add, 0, A);
  EXPECT_NE(A, B);
  uint32_t BB = FB.newBlock("next");
  FB.setBr(BB);
  FB.setInsertPoint(BB);
  FB.setRet(B);
  Function F = FB.take();
  EXPECT_EQ(F.numBlocks(), 2u);
  EXPECT_EQ(F.Blocks[1].Name, "next");
  EXPECT_GT(F.NumRegs, 2);
}

TEST(Builder, TakeTerminatesOpenBlocks) {
  FunctionBuilder FB("f", 0);
  FB.newBlock("dangling");
  FB.setRetConst(1);
  Function F = FB.take();
  Module M = wrap(std::move(F));
  EXPECT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
}

TEST(Printer, RendersInstructionsAndTerminators) {
  FunctionBuilder FB("f", 1);
  Reg C = FB.emitConst(9);
  Reg S = FB.emitBin(BinOp::Mul, 0, C);
  uint32_t T = FB.newBlock("t"), E = FB.newBlock("e");
  FB.setCondBr(S, T, E);
  FB.setInsertPoint(T);
  FB.setRet(S);
  FB.setInsertPoint(E);
  FB.setRetConst(0);
  Function F = FB.take();
  std::string Out = printFunction(F);
  EXPECT_NE(Out.find("= const 9"), std::string::npos);
  EXPECT_NE(Out.find("mul"), std::string::npos);
  EXPECT_NE(Out.find("condbr"), std::string::npos);
  EXPECT_NE(Out.find("ret"), std::string::npos);
  EXPECT_NE(Out.find("func @f(1)"), std::string::npos);
}

TEST(Printer, RendersProbesAndModule) {
  Instr P;
  P.Op = Opcode::PathFlushBack;
  P.Imm = 4;
  P.Imm2 = 2;
  EXPECT_EQ(printInstr(P), "path.flush.back +4, reset 2");
  P.Op = Opcode::EdgeProbe;
  P.Imm = 17;
  EXPECT_EQ(printInstr(P), "edge.probe 17");
}

TEST(Verifier, CatchesBadRegisters) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  F.Blocks[0].Instrs[0].A = 200; // out of range destination
  Module M = wrap(std::move(F));
  VerifyResult R = verifyModule(M);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.message().find("out of range"), std::string::npos);
}

TEST(Verifier, CatchesBadSuccessors) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  F.Blocks[0].Term.Kind = TermKind::Br;
  F.Blocks[0].Term.Succs = {42};
  Module M = wrap(std::move(F));
  EXPECT_FALSE(verifyModule(M).ok());
}

TEST(Verifier, CatchesCallArityMismatch) {
  Module M;
  {
    FunctionBuilder FB("callee", 2);
    FB.setRetConst(0);
    M.Funcs.push_back(FB.take());
  }
  {
    FunctionBuilder FB("main", 0);
    Reg A = FB.emitConst(1);
    Reg R = FB.emitCall(0, {A}); // callee wants 2 args
    FB.setRet(R);
    M.Funcs.push_back(FB.take());
  }
  VerifyResult R = verifyModule(M);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.message().find("passes 1 args"), std::string::npos);
}

TEST(Verifier, CatchesSwitchArityAndMissingMain) {
  FunctionBuilder FB("notmain", 0);
  Reg C = FB.emitConst(0);
  FB.setSwitch(C, {1, 2}, {0, 0}, 0);
  Function F = FB.take();
  F.Blocks[0].Term.CaseValues.pop_back(); // break the arity
  Module M;
  M.Funcs.push_back(std::move(F));
  VerifyResult R = verifyModule(M);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.message().find("no @main"), std::string::npos);
  EXPECT_NE(R.message().find("arity mismatch"), std::string::npos);
}

TEST(Verifier, CatchesStrayPathProbe) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  Instr Probe;
  Probe.Op = Opcode::PathAdd;
  F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(), Probe);
  Module M = wrap(std::move(F)); // HasPathReg not set
  EXPECT_FALSE(verifyModule(M).ok());
}

TEST(Printer, BlockHeadersCarryCfgEdgeIds) {
  // The printed "; edges #k->succ" annotations must agree with the edge
  // numbering cfg::CfgView assigns — same IDs a PathProbePlan references.
  FunctionBuilder FB("f", 0);
  Reg C = FB.emitInLen();
  uint32_t T = FB.newBlock("t"), E = FB.newBlock("e"), J = FB.newBlock("j");
  FB.setCondBr(C, T, E);
  FB.setInsertPoint(T);
  FB.setBr(J);
  FB.setInsertPoint(E);
  FB.setBr(J);
  FB.setInsertPoint(J);
  FB.setRet(C);
  Function F = FB.take();

  std::string Out = printFunction(F);
  cfg::CfgView G(F);
  for (uint32_t E2 = 0; E2 < G.edges().size(); ++E2) {
    const cfg::Edge &Edge = G.edges()[E2];
    std::string Want =
        "#" + std::to_string(E2) + "->" + F.Blocks[Edge.Dst].Name;
    EXPECT_NE(Out.find(Want), std::string::npos)
        << "missing edge annotation '" << Want << "' in:\n"
        << Out;
  }
  EXPECT_NE(Out.find("entry: ; edges #0->t #1->e"), std::string::npos) << Out;
  // Blocks without successors get no annotation.
  EXPECT_NE(Out.find("j:\n"), std::string::npos) << Out;
}

TEST(Printer, HeaderShowsPathRegister) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  EXPECT_EQ(printFunction(F).find("pathreg"), std::string::npos);
  F.HasPathReg = true;
  F.PathReg = F.NumRegs++;
  F.PathRegInit = 3;
  std::string Out = printFunction(F);
  EXPECT_NE(Out.find("; pathreg r" + std::to_string(F.PathReg) + " init 3"),
            std::string::npos)
      << Out;
}

TEST(Verifier, ErrorsCarryFunctionAndBlockPrefix) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  F.Blocks[0].Instrs[0].A = 200;
  Module M = wrap(std::move(F));
  VerifyResult R = verifyModule(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("@main:entry:"), std::string::npos)
      << R.message();
}

TEST(Verifier, RejectsProbesInNonInstrumentedModules) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  Instr Probe;
  Probe.Op = Opcode::EdgeProbe;
  Probe.Imm = 0;
  F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(), Probe);
  Module M = wrap(std::move(F));
  ASSERT_FALSE(M.Instrumented);
  VerifyResult R = verifyModule(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("never went through instrumentation"),
            std::string::npos)
      << R.message();

  // The identical module is fine once it is marked as instrumented.
  M.Instrumented = true;
  EXPECT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
}

TEST(Verifier, RejectsRetFlushOutsideReturnBlocks) {
  FunctionBuilder FB("f", 0);
  uint32_t Next = FB.newBlock("next");
  FB.setBr(Next);
  FB.setInsertPoint(Next);
  FB.setRetConst(0);
  Function F = FB.take();
  F.HasPathReg = true;
  F.PathReg = F.NumRegs++;
  Instr Probe;
  Probe.Op = Opcode::PathFlushRet;
  F.Blocks[0].Instrs.push_back(Probe); // entry ends in br, not ret
  Module M = wrap(std::move(F));
  M.Instrumented = true;
  VerifyResult R = verifyModule(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("outside a return block"), std::string::npos)
      << R.message();
}

TEST(Verifier, RejectsNegativeProbeIds) {
  FunctionBuilder FB("f", 0);
  FB.setRetConst(0);
  Function F = FB.take();
  Instr Probe;
  Probe.Op = Opcode::EdgeProbe;
  Probe.Imm = -1;
  F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(), Probe);
  Module M = wrap(std::move(F));
  M.Instrumented = true;
  VerifyResult R = verifyModule(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("negative id"), std::string::npos)
      << R.message();
}

TEST(Module, LookupAndCounts) {
  FunctionBuilder FB("main", 0);
  FB.setRetConst(0);
  Module M = wrap(FB.take());
  EXPECT_EQ(M.findFunction("main"), 0);
  EXPECT_EQ(M.findFunction("nope"), -1);
  EXPECT_EQ(M.totalBlocks(), 1u);
}

} // namespace
