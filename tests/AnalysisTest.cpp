//===- AnalysisTest.cpp - Dataflow framework and analyses ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ConstRange.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/ReachingDefs.h"
#include "analysis/UseDef.h"

#include "TestUtil.h"
#include "lang/Compile.h"

#include <gtest/gtest.h>

#include <deque>

using namespace pathfuzz;
using namespace pathfuzz::analysis;

namespace {

/// Blocks reachable from entry when Banned is deleted from the graph.
std::vector<bool> reachableWithout(const cfg::CfgView &G, uint32_t Banned) {
  std::vector<bool> Seen(G.numBlocks(), false);
  if (Banned == 0)
    return Seen;
  Seen[0] = true;
  std::deque<uint32_t> Q{0};
  while (!Q.empty()) {
    uint32_t B = Q.front();
    Q.pop_front();
    for (uint32_t E : G.succEdges(B)) {
      uint32_t D = G.edges()[E].Dst;
      if (D != Banned && !Seen[D]) {
        Seen[D] = true;
        Q.push_back(D);
      }
    }
  }
  return Seen;
}

/// Blocks that can reach some reachable Ret block when Banned is deleted.
/// Pass Banned = UINT32_MAX to delete nothing.
std::vector<bool> reachesExitWithout(const cfg::CfgView &G, uint32_t Banned) {
  std::vector<bool> Seen(G.numBlocks(), false);
  std::deque<uint32_t> Q;
  for (uint32_t B = 0; B < G.numBlocks(); ++B)
    if (B != Banned && G.isReachable(B) && G.isExitBlock(B)) {
      Seen[B] = true;
      Q.push_back(B);
    }
  while (!Q.empty()) {
    uint32_t B = Q.front();
    Q.pop_front();
    for (uint32_t E : G.predEdges(B)) {
      uint32_t S = G.edges()[E].Src;
      if (S != Banned && !Seen[S]) {
        Seen[S] = true;
        Q.push_back(S);
      }
    }
  }
  return Seen;
}

class AnalysisRandom : public ::testing::TestWithParam<uint64_t> {};

/// Dominance against the brute-force oracle: A dominates B iff deleting A
/// disconnects B from the entry.
TEST_P(AnalysisRandom, DominatorsMatchDeletionOracle) {
  Rng R(GetParam());
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  DominatorTree DT(G);

  for (uint32_t A = 0; A < G.numBlocks(); ++A) {
    if (!G.isReachable(A))
      continue;
    std::vector<bool> Without = reachableWithout(G, A);
    for (uint32_t B = 0; B < G.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      bool Oracle = (A == B) || !Without[B];
      ASSERT_EQ(DT.dominates(A, B), Oracle)
          << "dominates(" << A << ", " << B << ")";
    }
  }
}

/// Post-dominance against the oracle: A post-dominates B iff deleting A
/// cuts every B -> exit path.
TEST_P(AnalysisRandom, PostDominatorsMatchDeletionOracle) {
  Rng R(GetParam() ^ 0x9d0f);
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  PostDominatorTree PDT(G);

  std::vector<bool> ReachesExit = reachesExitWithout(G, UINT32_MAX);
  for (uint32_t A = 0; A < G.numBlocks(); ++A) {
    if (!G.isReachable(A))
      continue;
    std::vector<bool> Without = reachesExitWithout(G, A);
    for (uint32_t B = 0; B < G.numBlocks(); ++B) {
      if (!G.isReachable(B) || !ReachesExit[B])
        continue;
      bool Oracle = (A == B) || !Without[B];
      ASSERT_EQ(PDT.postDominates(A, B), Oracle)
          << "postDominates(" << A << ", " << B << ")";
    }
  }
}

/// The liveness fixed point must satisfy its own defining equations:
/// LiveOut = union of successors' LiveIn, and LiveIn = backward transfer
/// of LiveOut through the block (recomputed here instruction by
/// instruction, independently of the solver's Use/Kill summaries).
TEST_P(AnalysisRandom, LivenessSatisfiesDataflowEquations) {
  Rng R(GetParam() ^ 0x11fe);
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  LivenessResult L = computeLiveness(F, G);

  ASSERT_EQ(L.LiveIn.size(), F.numBlocks());
  ASSERT_EQ(L.LiveOut.size(), F.numBlocks());

  for (uint32_t B = 0; B < G.numBlocks(); ++B) {
    if (!G.isReachable(B))
      continue;
    // LiveOut = union over successors.
    BitVec Out(F.NumRegs);
    for (uint32_t E : G.succEdges(B))
      Out.unionWith(L.LiveIn[G.edges()[E].Dst]);
    ASSERT_TRUE(Out == L.LiveOut[B]) << "block " << B;

    // LiveIn = per-instruction backward transfer of LiveOut.
    BitVec Live = L.LiveOut[B];
    forEachTermUse(F.Blocks[B].Term,
                   [&](mir::Reg Use) { Live.set(Use); });
    const auto &Instrs = F.Blocks[B].Instrs;
    for (size_t I = Instrs.size(); I-- > 0;) {
      forEachDef(F, Instrs[I], [&](mir::Reg Def) { Live.reset(Def); });
      forEachUse(F, Instrs[I], [&](mir::Reg Use) { Live.set(Use); });
    }
    ASSERT_TRUE(Live == L.LiveIn[B]) << "block " << B;
  }
}

/// The interval solver must terminate (widening) and stay sound on
/// arbitrary CFG shapes, including loops and unreachable blocks.
TEST_P(AnalysisRandom, ConstRangeTerminatesOnArbitraryCfgs) {
  Rng R(GetParam() ^ 0xc0de);
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  ConstRangeResult CR = computeConstRanges(F, G);
  ASSERT_EQ(CR.In.size(), F.numBlocks());
  // The entry is always feasible, and no feasible env may hold Bottom for
  // a register a reachable instruction reads (values, not contradictions).
  EXPECT_TRUE(CR.In[0].Feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisRandom,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Liveness, DiamondKeepsBranchUsedValueLive) {
  // entry: c = in.len; v = const 7; condbr c, t, e
  // t: ret v           e: ret c
  mir::FunctionBuilder FB("f", 0);
  mir::Reg C = FB.emitInLen();
  mir::Reg V = FB.emitConst(7);
  uint32_t T = FB.newBlock("t"), E = FB.newBlock("e");
  FB.setCondBr(C, T, E);
  FB.setInsertPoint(T);
  FB.setRet(V);
  FB.setInsertPoint(E);
  FB.setRet(C);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  LivenessResult L = computeLiveness(F, G);

  EXPECT_TRUE(L.LiveOut[0].test(V)) << "v is read on the t path";
  EXPECT_TRUE(L.LiveOut[0].test(C)) << "c is read on the e path";
  EXPECT_TRUE(L.LiveIn[T].test(V));
  EXPECT_FALSE(L.LiveIn[T].test(C)) << "t never reads c";
  EXPECT_FALSE(L.LiveIn[E].test(V)) << "e never reads v";
  // Nothing is live after a return.
  EXPECT_EQ(L.LiveOut[T].count(), 0u);
}

TEST(ReachingDefs, PartialInitReachesJoinAsMaybeUninit) {
  // entry: c = in.len; condbr c, t, j
  // t: x = const 1; br j
  // j: ret x          -- x is uninitialized on the entry->j path
  mir::FunctionBuilder FB("f", 0);
  mir::Reg C = FB.emitInLen();
  uint32_t T = FB.newBlock("t"), J = FB.newBlock("j");
  FB.setCondBr(C, T, J);
  FB.setInsertPoint(T);
  mir::Reg X = FB.emitConst(1);
  FB.setBr(J);
  FB.setInsertPoint(J);
  FB.setRet(X);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  ReachingDefs RD(F, G);

  // At the terminator of j (index = #instrs), x may be uninitialized.
  EXPECT_TRUE(RD.mayBeUninitAt(J, 0, X));
  // Inside t, right after its def, it cannot be.
  EXPECT_FALSE(RD.mayBeUninitAt(T, 1, X));
  // The pool register c is defined at entry before the branch.
  EXPECT_FALSE(RD.mayBeUninitAt(J, 0, C));
}

TEST(ReachingDefs, SynthDefsDoNotCountWhenIgnored) {
  // x's only def is marked Synth (the frontend's implicit zero-init).
  mir::FunctionBuilder FB("f", 0);
  mir::Reg X = FB.emitConst(0);
  FB.setRet(X);
  mir::Function F = FB.take();
  F.Blocks[0].Instrs[0].Synth = true;
  cfg::CfgView G(F);

  ReachingDefsOptions Strict;
  Strict.IgnoreSynthDefs = true;
  ReachingDefs Lax(F, G);
  ReachingDefs NoSynth(F, G, Strict);
  EXPECT_FALSE(Lax.mayBeUninitAt(0, 1, X))
      << "the synth def initializes x when synth defs count";
  EXPECT_TRUE(NoSynth.mayBeUninitAt(0, 1, X))
      << "ignoring synth defs, x is still uninitialized at its use";
}

TEST(ConstRange, FoldsConstantChains) {
  mir::FunctionBuilder FB("f", 0);
  mir::Reg A = FB.emitConst(7);
  mir::Reg B = FB.emitBinImm(mir::BinOp::Add, A, 3);
  mir::Reg C = FB.emitBinImm(mir::BinOp::Mul, B, 4);
  FB.setRet(C);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  ConstRangeResult CR = computeConstRanges(F, G);

  ASSERT_TRUE(CR.Out[0].Feasible);
  EXPECT_TRUE(CR.Out[0].Regs[C] == AbsVal::intConst(40));
}

TEST(ConstRange, GuaranteedDivByZeroMakesSuccessorInfeasible) {
  // entry: z = const 0; q = 10 / z; br next   -- traps before the branch
  mir::FunctionBuilder FB("f", 0);
  mir::Reg Z = FB.emitConst(0);
  mir::Reg Ten = FB.emitConst(10);
  mir::Reg Q = FB.emitBin(mir::BinOp::Div, Ten, Z);
  uint32_t Next = FB.newBlock("next");
  FB.setBr(Next);
  FB.setInsertPoint(Next);
  FB.setRet(Q);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  ConstRangeResult CR = computeConstRanges(F, G);

  EXPECT_TRUE(CR.In[0].Feasible);
  EXPECT_FALSE(CR.Out[0].Feasible) << "the division always traps";
  EXPECT_FALSE(CR.In[Next].Feasible);
}

TEST(ConstRange, CountingLoopWidensAndTerminates) {
  lang::CompileResult R = lang::compileSource(R"ml(
fn main() {
  var i = 0;
  while (i < 100000) {
    i = i + 1;
  }
  return i;
}
)ml",
                                              "loop");
  ASSERT_TRUE(R.ok()) << R.message();
  const mir::Function &F =
      R.Mod->Funcs[static_cast<size_t>(R.Mod->findFunction("main"))];
  cfg::CfgView G(F);
  ConstRangeResult CR = computeConstRanges(F, G);
  // Must reach a fixed point (widening) with every reachable block's input
  // environment feasible — the loop is executable.
  for (uint32_t B = 0; B < G.numBlocks(); ++B) {
    if (G.isReachable(B)) {
      EXPECT_TRUE(CR.In[B].Feasible) << "block " << B;
    }
  }
}

TEST(Dominators, DiamondAndLoopStructure) {
  // entry -> (t | e) -> join; join -> entry would be a back edge; keep it
  // simple: diamond only, plus LoopInfo on a separate while-loop shape.
  mir::FunctionBuilder FB("f", 0);
  mir::Reg C = FB.emitInLen();
  uint32_t T = FB.newBlock("t"), E = FB.newBlock("e"), J = FB.newBlock("j");
  FB.setCondBr(C, T, E);
  FB.setInsertPoint(T);
  FB.setBr(J);
  FB.setInsertPoint(E);
  FB.setBr(J);
  FB.setInsertPoint(J);
  FB.setRet(C);
  mir::Function F = FB.take();
  cfg::CfgView G(F);

  DominatorTree DT(G);
  EXPECT_EQ(DT.idom(T), 0u);
  EXPECT_EQ(DT.idom(E), 0u);
  EXPECT_EQ(DT.idom(J), 0u) << "neither arm dominates the join";
  EXPECT_TRUE(DT.dominates(0, J));
  EXPECT_FALSE(DT.dominates(T, J));

  PostDominatorTree PDT(G);
  EXPECT_EQ(PDT.ipostdom(T), J);
  EXPECT_EQ(PDT.ipostdom(E), J);
  EXPECT_EQ(PDT.ipostdom(0), J) << "the join postdominates the fork";
  EXPECT_EQ(PDT.ipostdom(J), PostDominatorTree::VirtualExit);
  EXPECT_TRUE(PDT.postDominates(J, 0));
  EXPECT_FALSE(PDT.postDominates(T, 0));
}

TEST(LoopInfo, WhileLoopHasOneHeader) {
  lang::CompileResult R = lang::compileSource(R"ml(
fn main() {
  var i = 0;
  while (i < 10) {
    i = i + 1;
  }
  return i;
}
)ml",
                                              "loop");
  ASSERT_TRUE(R.ok()) << R.message();
  const mir::Function &F =
      R.Mod->Funcs[static_cast<size_t>(R.Mod->findFunction("main"))];
  cfg::CfgView G(F);
  LoopInfo LI = LoopInfo::compute(G);
  ASSERT_EQ(LI.Headers.size(), 1u);
  uint32_t H = LI.Headers[0];
  EXPECT_EQ(LI.InnermostHeader[H], H);
}

} // namespace
