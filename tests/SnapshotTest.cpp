//===- SnapshotTest.cpp - Fuzzer snapshot/restore ------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Snapshot.h"

#include "lang/Compile.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::fuzz;

namespace {

struct Harness {
  mir::Module Mod;
  instr::ShadowEdgeIndex Shadow;
  instr::InstrumentReport Report;

  Harness(const char *Src, instr::Feedback Mode, uint32_t MapSizeLog2 = 16) {
    lang::CompileResult CR = lang::compileSource(Src, "t");
    EXPECT_TRUE(CR.ok()) << CR.message();
    Mod = std::move(*CR.Mod);
    Shadow = instr::ShadowEdgeIndex::build(Mod);
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    IO.MapSizeLog2 = MapSizeLog2;
    Report = instr::instrumentModule(Mod, IO);
  }
};

const char *BuggyLoop = R"ml(
fn main() {
  var a[4];
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == 'B') { k = k + 1; }
    if (c == 'U' && k > 1) { a[in(i + 1) % 8] = 1; }
    i = i + 1;
  }
  return k;
}
)ml";

/// Everything observable about a fuzzer the campaign layer reads.
struct Observed {
  FuzzStats Stats;
  size_t QueueSize;
  std::vector<uint32_t> Edges;
  std::vector<int64_t> Dict;
  size_t Crashes, Hangs, Bugs;

  static Observed of(const Fuzzer &F) {
    Observed O{F.stats(),
               F.corpus().size(),
               F.coveredEdgeList(),
               F.cmpDict(),
               F.uniqueCrashes().size(),
               F.uniqueHangs().size(),
               F.bugIds().size()};
    return O;
  }
};

void expectSame(const Observed &A, const Observed &B) {
  EXPECT_EQ(A.Stats.Execs, B.Stats.Execs);
  EXPECT_EQ(A.Stats.Crashes, B.Stats.Crashes);
  EXPECT_EQ(A.Stats.Hangs, B.Stats.Hangs);
  EXPECT_EQ(A.Stats.LastFindExec, B.Stats.LastFindExec);
  EXPECT_EQ(A.Stats.QueueCycles, B.Stats.QueueCycles);
  EXPECT_EQ(A.Stats.QueueGrowth, B.Stats.QueueGrowth);
  EXPECT_EQ(A.QueueSize, B.QueueSize);
  EXPECT_EQ(A.Edges, B.Edges);
  EXPECT_EQ(A.Dict, B.Dict);
  EXPECT_EQ(A.Crashes, B.Crashes);
  EXPECT_EQ(A.Hangs, B.Hangs);
  EXPECT_EQ(A.Bugs, B.Bugs);
}

TEST(Snapshot, EnvelopeRoundTrips) {
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> Blob = sealSnapshot(Payload);
  std::vector<uint8_t> Out;
  ASSERT_TRUE(openSnapshot(Blob, Out));
  EXPECT_EQ(Out, Payload);
}

TEST(Snapshot, EnvelopeRejectsCorruption) {
  std::vector<uint8_t> Blob = sealSnapshot({10, 20, 30, 40});
  std::vector<uint8_t> Out;

  // Bit flip in the payload: checksum mismatch.
  std::vector<uint8_t> Flipped = Blob;
  Flipped.back() ^= 0x01;
  EXPECT_FALSE(openSnapshot(Flipped, Out));

  // Truncation at every prefix length.
  for (size_t N = 0; N < Blob.size(); ++N) {
    std::vector<uint8_t> Cut(Blob.begin(), Blob.begin() + N);
    EXPECT_FALSE(openSnapshot(Cut, Out)) << "prefix " << N;
  }

  // Trailing garbage.
  std::vector<uint8_t> Long = Blob;
  Long.push_back(0);
  EXPECT_FALSE(openSnapshot(Long, Out));

  // Wrong magic.
  std::vector<uint8_t> BadMagic = Blob;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(openSnapshot(BadMagic, Out));

  // Unknown version.
  std::vector<uint8_t> BadVersion = Blob;
  BadVersion[4] = 0x7f;
  EXPECT_FALSE(openSnapshot(BadVersion, Out));
}

TEST(Snapshot, ByteReaderRejectsOversizedLengths) {
  // A length prefix larger than the remaining bytes must fail cleanly,
  // including values that would overflow a naive `N * width` check.
  ByteWriter W;
  W.u64(~0ull);
  std::vector<uint8_t> Buf = W.take();
  {
    ByteReader R(Buf);
    (void)R.vecU64();
    EXPECT_FALSE(R.ok());
  }
  {
    ByteReader R(Buf);
    (void)R.vecU32();
    EXPECT_FALSE(R.ok());
  }
  {
    ByteReader R(Buf);
    (void)R.blob();
    EXPECT_FALSE(R.ok());
  }
}

TEST(Snapshot, RestoredFuzzerContinuesByteIdentically) {
  for (instr::Feedback Mode :
       {instr::Feedback::EdgePrecise, instr::Feedback::Path}) {
    SCOPED_TRACE(static_cast<int>(Mode));
    // Reference: one uninterrupted run. Traced, so the snapshot carries
    // the versioned metrics section and the restore must round-trip it.
    // Every fuzzer in this test shares the same checkpoint cadence (the
    // reference's hook is a no-op): CheckpointWritten events land in the
    // ring at identical exec points, keeping the event comparison exact.
    Harness HRef(BuggyLoop, Mode);
    FuzzerOptions FO;
    FO.Seed = 17;
    FO.Trace.Enabled = true;
    FO.Trace.SampleInterval = 512;
    FO.CheckpointInterval = 4000;
    FO.OnCheckpoint = [](const Fuzzer &) {};
    Fuzzer Ref(HRef.Mod, HRef.Report, HRef.Shadow, FO);
    Ref.addSeed({'B', 'B', 'U', 'x'});
    Ref.run(8000);

    // Interrupted: capture a snapshot at the ~4000-exec safe point (the
    // checkpoint hook — run()'s budget stop can land mid-energy-loop,
    // which is exactly why checkpoints only fire at safe points), then
    // restore into a fresh fuzzer on a fresh (bit-identical) build and
    // finish the budget there.
    Harness HA(BuggyLoop, Mode);
    FuzzerOptions FA = FO;
    std::vector<uint8_t> Blob;
    Observed AtCheckpoint;
    FA.OnCheckpoint = [&Blob, &AtCheckpoint](const Fuzzer &F) {
      if (Blob.empty()) {
        Blob = F.snapshot();
        AtCheckpoint = Observed::of(F);
      }
    };
    Fuzzer A(HA.Mod, HA.Report, HA.Shadow, FA);
    A.addSeed({'B', 'B', 'U', 'x'});
    A.run(8000);
    ASSERT_FALSE(Blob.empty());

    Harness HB(BuggyLoop, Mode);
    Fuzzer B(HB.Mod, HB.Report, HB.Shadow, FO);
    ASSERT_TRUE(B.restore(Blob));
    expectSame(AtCheckpoint, Observed::of(B));
    B.run(8000);

    expectSame(Observed::of(Ref), Observed::of(B));
    // Corpus contents, not just sizes.
    ASSERT_EQ(Ref.corpus().size(), B.corpus().size());
    for (size_t I = 0; I < Ref.corpus().size(); ++I) {
      EXPECT_EQ(Ref.corpus()[I].Data, B.corpus()[I].Data);
      EXPECT_EQ(Ref.corpus()[I].Favored, B.corpus()[I].Favored);
    }
    // Telemetry state too: same cumulative metrics, samples and events
    // as the uninterrupted run (under PATHFUZZ_NO_TELEMETRY no trace is
    // ever attached, so only the campaign-state half applies).
    if (telemetry::Compiled) {
      ASSERT_NE(Ref.trace(), nullptr);
      ASSERT_NE(B.trace(), nullptr);
      EXPECT_TRUE(Ref.trace()->metrics() == B.trace()->metrics());
      EXPECT_EQ(Ref.trace()->samples(), B.trace()->samples());
      EXPECT_EQ(Ref.trace()->ring().recorded(), B.trace()->ring().recorded());
      EXPECT_EQ(Ref.trace()->ring().events(), B.trace()->ring().events());
    }
  }
}

TEST(Snapshot, UntracedFuzzerAcceptsATracedSnapshot) {
  // Restoring a traced snapshot into an untraced fuzzer must consume the
  // metrics section (validating the trailing done() check) and simply
  // drop it — operators may resume a campaign with tracing off.
  Harness HA(BuggyLoop, instr::Feedback::Path);
  FuzzerOptions Traced;
  Traced.Seed = 11;
  Traced.Trace.Enabled = true;
  Fuzzer A(HA.Mod, HA.Report, HA.Shadow, Traced);
  A.addSeed({'B', 'B', 'U', 'x'});
  A.run(2000);
  std::vector<uint8_t> Blob = A.snapshot();

  Harness HB(BuggyLoop, instr::Feedback::Path);
  FuzzerOptions Untraced;
  Untraced.Seed = 11;
  Fuzzer B(HB.Mod, HB.Report, HB.Shadow, Untraced);
  ASSERT_TRUE(B.restore(Blob));
  EXPECT_EQ(B.trace(), nullptr);
  expectSame(Observed::of(A), Observed::of(B));
}

TEST(Snapshot, SnapshotItselfDoesNotPerturbTheRun) {
  Harness H1(BuggyLoop, instr::Feedback::Path);
  Harness H2(BuggyLoop, instr::Feedback::Path);
  FuzzerOptions FO;
  FO.Seed = 5;
  Fuzzer Plain(H1.Mod, H1.Report, H1.Shadow, FO);
  Plain.addSeed({'B', 'B', 'U', 'x'});
  Plain.run(6000);

  FuzzerOptions FC = FO;
  FC.CheckpointInterval = 512;
  size_t Fired = 0;
  FC.OnCheckpoint = [&Fired](const Fuzzer &F) {
    ++Fired;
    (void)F.snapshot(); // const: taking the snapshot must not perturb
  };
  Fuzzer Check(H2.Mod, H2.Report, H2.Shadow, FC);
  Check.addSeed({'B', 'B', 'U', 'x'});
  Check.run(6000);

  EXPECT_GT(Fired, 0u);
  expectSame(Observed::of(Plain), Observed::of(Check));
}

TEST(Snapshot, RestoreRejectsMismatchedConfiguration) {
  Harness H(BuggyLoop, instr::Feedback::Path);
  FuzzerOptions FO;
  FO.Seed = 9;
  Fuzzer A(H.Mod, H.Report, H.Shadow, FO);
  A.addSeed({'B', 'U'});
  A.run(1000);
  std::vector<uint8_t> Blob = A.snapshot();

  // Different map size → different structural fingerprint.
  Harness HSmall(BuggyLoop, instr::Feedback::Path, /*MapSizeLog2=*/10);
  FuzzerOptions Small = FO;
  Small.MapSizeLog2 = 10;
  Fuzzer B(HSmall.Mod, HSmall.Report, HSmall.Shadow, Small);
  uint64_t ExecsBefore = B.stats().Execs;
  EXPECT_FALSE(B.restore(Blob));
  EXPECT_EQ(B.stats().Execs, ExecsBefore); // untouched on rejection

  // Garbage blob and an empty blob.
  EXPECT_FALSE(B.restore({1, 2, 3}));
  EXPECT_FALSE(B.restore({}));
}

} // namespace
