//===- SupportTest.cpp - Support utilities --------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace pathfuzz;

namespace {

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123), C(124);
  bool AnyDiff = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t Va = A.next();
    EXPECT_EQ(Va, B.next());
    AnyDiff |= (Va != C.next());
  }
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2200);
  EXPECT_LT(Hits, 2800);
}

TEST(Stats, MedianAndGeomean) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0);
  EXPECT_DOUBLE_EQ(geomean({2, 8}), 4);
  EXPECT_DOUBLE_EQ(geomean({5}), 5);
  EXPECT_DOUBLE_EQ(geomean({0, -3}), 0);  // non-positive skipped
  EXPECT_DOUBLE_EQ(geomean({0, 4, 4}), 4);
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2);
  Summary S = Summary::of({1, 5, 3});
  EXPECT_DOUBLE_EQ(S.Min, 1);
  EXPECT_DOUBLE_EQ(S.Max, 5);
  EXPECT_DOUBLE_EQ(S.Median, 3);
}

TEST(Hashing, CombineAndFnv) {
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_NE(mix64(0), mix64(1));
}

TEST(Table, RendersAlignedColumns) {
  Table T("title");
  T.setHeader({"name", "v"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("title"), std::string::npos);
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
  EXPECT_EQ(Table::pair(3, 14), "3 (14)");
  EXPECT_EQ(Table::fixed(1.234, 1), "1.2");
}

TEST(Env, ParsesValuesAndLists) {
  ::setenv("PF_TEST_INT", "42", 1);
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 42u);
  ::setenv("PF_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 7u);
  ::unsetenv("PF_TEST_INT");
  EXPECT_EQ(envU64("PF_TEST_INT", 9), 9u);

  // Out-of-range values are malformed, not saturated: strtoull would
  // silently wrap "-1" to ULLONG_MAX and clamp overflow with ERANGE.
  ::setenv("PF_TEST_INT", "-1", 1);
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 7u);
  ::setenv("PF_TEST_INT", "99999999999999999999999", 1);
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 7u);
  ::setenv("PF_TEST_INT", "18446744073709551615", 1); // exactly UINT64_MAX
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 18446744073709551615ull);
  ::setenv("PF_TEST_INT", "18446744073709551616", 1); // UINT64_MAX + 1
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 7u);
  ::setenv("PF_TEST_INT", "12x", 1); // trailing junk
  EXPECT_EQ(envU64("PF_TEST_INT", 7), 7u);
  ::unsetenv("PF_TEST_INT");

  ::setenv("PF_TEST_LIST", "a, b,c", 1);
  std::vector<std::string> Xs = envList("PF_TEST_LIST");
  ASSERT_EQ(Xs.size(), 3u);
  EXPECT_EQ(Xs[0], "a");
  EXPECT_EQ(Xs[1], "b");
  EXPECT_EQ(Xs[2], "c");
  ::unsetenv("PF_TEST_LIST");
}

TEST(Env, ParseU64IsStrict) {
  uint64_t V = 99;
  EXPECT_TRUE(parseU64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseU64("18446744073709551615", V));
  EXPECT_EQ(V, ~0ull);

  // Rejections must leave the output untouched.
  V = 42;
  EXPECT_FALSE(parseU64("", V));
  EXPECT_FALSE(parseU64(" 1", V));
  EXPECT_FALSE(parseU64("1 ", V));
  EXPECT_FALSE(parseU64("+1", V));
  EXPECT_FALSE(parseU64("-1", V));
  EXPECT_FALSE(parseU64("0x10", V));
  EXPECT_FALSE(parseU64("12junk", V));
  EXPECT_FALSE(parseU64("18446744073709551616", V)); // UINT64_MAX + 1
  EXPECT_FALSE(parseU64("99999999999999999999999", V));
  EXPECT_EQ(V, 42u);
}

TEST(Env, BoolMatchesAuditContract) {
  ::unsetenv("PF_TEST_BOOL");
  EXPECT_TRUE(envBool("PF_TEST_BOOL", true));
  EXPECT_FALSE(envBool("PF_TEST_BOOL", false));
  ::setenv("PF_TEST_BOOL", "", 1);
  EXPECT_TRUE(envBool("PF_TEST_BOOL", true));
  ::setenv("PF_TEST_BOOL", "0", 1);
  EXPECT_FALSE(envBool("PF_TEST_BOOL", true));
  ::setenv("PF_TEST_BOOL", "1", 1);
  EXPECT_TRUE(envBool("PF_TEST_BOOL", false));
  ::setenv("PF_TEST_BOOL", "yes", 1); // anything non-"0" enables
  EXPECT_TRUE(envBool("PF_TEST_BOOL", false));
  ::unsetenv("PF_TEST_BOOL");
}

TEST(Env, SplitSpecRejectsMalformedEntries) {
  std::string Name = "keep";
  uint64_t Value = 7;
  ASSERT_TRUE(splitSpecU64("sample@512", Name, Value));
  EXPECT_EQ(Name, "sample");
  EXPECT_EQ(Value, 512u);

  // All of these leave the outputs untouched — a typo skips the spec
  // instead of arming it half-parsed.
  Name = "keep";
  Value = 7;
  EXPECT_FALSE(splitSpecU64("", Name, Value));
  EXPECT_FALSE(splitSpecU64("noat", Name, Value));
  EXPECT_FALSE(splitSpecU64("@5", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@junk", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@-2", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@18446744073709551616", Name, Value));
  // 0x-prefixed values are typos, not hex input.
  EXPECT_FALSE(splitSpecU64("site@0x10", Name, Value));
  // Whitespace around the separator (or anywhere in the spec) makes the
  // entry malformed as a whole. envList strips only plain spaces, so a
  // tab used to flow straight into the *name* — arming a fault site or
  // trace series under a name no lookup would ever match.
  EXPECT_FALSE(splitSpecU64("site @5", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@ 5", Name, Value));
  EXPECT_FALSE(splitSpecU64(" site@5", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@5 ", Name, Value));
  EXPECT_FALSE(splitSpecU64("si\tte@5", Name, Value));
  EXPECT_FALSE(splitSpecU64("site\t@5", Name, Value));
  EXPECT_FALSE(splitSpecU64("site@5\n", Name, Value));
  EXPECT_EQ(Name, "keep");
  EXPECT_EQ(Value, 7u);
}

TEST(Env, FaultSpecListRejectsWhitespaceNames) {
  // End-to-end regression through armFromEnv: a tab inside a spec entry
  // survives envList's space stripping; the malformed entry must be
  // skipped, not armed under an unmatchable name (hit-count *and*
  // probabilistic forms).
  fault::ScopedFaultInjection Guard;
  ::setenv("PATHFUZZ_FAULT_SITES", "si\tte@2,site\t%500,good@1", 1);
  EXPECT_EQ(fault::armFromEnv(), 1u);
  EXPECT_TRUE(fault::shouldFail("good"));
  EXPECT_FALSE(fault::shouldFail("si\tte"));
  EXPECT_FALSE(fault::shouldFail("site\t"));
  ::unsetenv("PATHFUZZ_FAULT_SITES");
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  for (size_t Threads : {1u, 2u, 4u}) {
    ThreadPool Pool(Threads);
    constexpr size_t N = 500;
    std::vector<std::atomic<int>> Ran(N);
    for (auto &R : Ran)
      R.store(0);
    for (size_t I = 0; I < N; ++I)
      Pool.submit([&Ran, I] { Ran[I].fetch_add(1); });
    Pool.wait();
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Ran[I].load(), 1) << "job " << I << " @" << Threads;
  }
}

TEST(ThreadPool, TrySubmitHonorsTheDispatchFaultSite) {
  fault::ScopedFaultInjection Guard;
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};

  // No fault armed: trySubmit behaves exactly like submit.
  EXPECT_TRUE(Pool.trySubmit([&Ran] { Ran.fetch_add(1); }));

  fault::SiteConfig C;
  C.FailOnHit = 1;
  fault::armSite("support.pool.dispatch", C);
  // The rejected job is NOT enqueued; the next attempt goes through.
  EXPECT_FALSE(Pool.trySubmit([&Ran] { Ran.fetch_add(1); }));
  EXPECT_TRUE(Pool.trySubmit([&Ran] { Ran.fetch_add(1); }));
  Pool.wait();
  EXPECT_EQ(Ran.load(), 2);
}

TEST(ThreadPool, StealsAcrossWorkers) {
  // One slow job pins a worker; the fast jobs round-robined onto its
  // deque must be stolen and finished by its peers well before the slow
  // job completes.
  ThreadPool Pool(4);
  std::atomic<int> FastDone{0};
  std::atomic<bool> Release{false};
  Pool.submit([&] {
    while (!Release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  for (int I = 0; I < 100; ++I)
    Pool.submit([&] {
      if (FastDone.fetch_add(1) + 1 == 100)
        Release.store(true);
    });
  Pool.wait();
  EXPECT_EQ(FastDone.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&] { Count.fetch_add(1); });
  Pool.submit([&] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("PATHFUZZ_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  ::unsetenv("PATHFUZZ_JOBS");
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
