//===- RobustnessTest.cpp - Checkpoint/resume and fault-tolerant batches -------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The robustness contracts:
//
//  - A campaign killed mid-run and resumed from its last checkpoint
//    produces a byte-identical CampaignResult to the uninterrupted run
//    (serializeCampaignResult is the equality oracle).
//  - A batch with one failing trial completes every other trial
//    byte-identically to a fault-free batch; the failure is recorded as
//    a structured BatchJobStatus, never an abort.
//  - Transient faults are retried by deterministic replay; the retry
//    reproduces exactly the result the fault interrupted.
//
//===----------------------------------------------------------------------===//

#include "strategy/Batch.h"
#include "strategy/BuildCache.h"
#include "strategy/Campaign.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace pathfuzz;
using namespace pathfuzz::strategy;

namespace {

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

Subject otherSubject() {
  Subject S;
  S.Name = "other";
  S.Source = R"ml(
fn main() {
  var a[4];
  if (len() > 2 && in(0) == 'R' && in(1) == 'T') {
    a[in(2) % 8] = 1;  // OOB for in(2) % 8 >= 4
  }
  return 0;
}
)ml";
  S.Seeds = {{'R', 'T', 1}};
  return S;
}

Subject brokenSubject() {
  Subject S;
  S.Name = "broken";
  S.Source = "fn main( { this does not parse }";
  S.Seeds = {{1}};
  return S;
}

CampaignOptions baseOpts(FuzzerKind Kind, uint64_t Budget = 6000) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = Budget;
  Opts.Seed = 5;
  Opts.CullRounds = 3;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume
//===----------------------------------------------------------------------===//

class CheckpointResume : public ::testing::TestWithParam<FuzzerKind> {};

TEST_P(CheckpointResume, ResumeFromEveryCheckpointIsByteIdentical) {
  const FuzzerKind Kind = GetParam();
  Subject S = smallSubject();
  CampaignOptions Plain = baseOpts(Kind);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));

  // The same campaign emitting checkpoints. Checkpointing must not
  // perturb the run.
  CampaignOptions WithCkpt = Plain;
  WithCkpt.CheckpointInterval = 900;
  std::vector<std::vector<uint8_t>> Checkpoints;
  WithCkpt.CheckpointSink = [&Checkpoints](const std::vector<uint8_t> &Blob) {
    Checkpoints.push_back(Blob);
  };
  CampaignError Err;
  CampaignResult Observed = runCampaign(S, WithCkpt, &Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(serializeCampaignResult(Observed), Ref);
  ASSERT_GE(Checkpoints.size(), 3u) << "budget 6000 / interval 900";

  // "Kill" the campaign at each checkpoint in turn and resume: every
  // resume must reproduce the uninterrupted result exactly. The resume
  // runs without a sink — the checkpoint cadence is not part of the
  // fingerprint.
  for (size_t I = 0; I < Checkpoints.size(); ++I) {
    SCOPED_TRACE("checkpoint " + std::to_string(I));
    CampaignError ResumeErr;
    CampaignResult Resumed = resumeCampaign(S, Plain, Checkpoints[I],
                                            &ResumeErr);
    ASSERT_FALSE(ResumeErr.Failed) << ResumeErr.Message;
    EXPECT_EQ(serializeCampaignResult(Resumed), Ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Drivers, CheckpointResume,
                         ::testing::Values(FuzzerKind::Pcguard,
                                           FuzzerKind::Cull,
                                           FuzzerKind::CullRandom,
                                           FuzzerKind::Opp,
                                           FuzzerKind::PathAfl),
                         [](const auto &Info) {
                           return std::string(fuzzerKindName(Info.param));
                         });

TEST(CheckpointResumeEdge, RejectsCorruptAndMismatchedCheckpoints) {
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard, 3000);
  CampaignOptions WithCkpt = Opts;
  WithCkpt.CheckpointInterval = 1000;
  std::vector<std::vector<uint8_t>> Checkpoints;
  WithCkpt.CheckpointSink = [&Checkpoints](const std::vector<uint8_t> &Blob) {
    Checkpoints.push_back(Blob);
  };
  runCampaign(S, WithCkpt);
  ASSERT_FALSE(Checkpoints.empty());

  // Bit-flip: the envelope checksum rejects it with a structured error.
  std::vector<uint8_t> Bad = Checkpoints.back();
  Bad[Bad.size() / 2] ^= 0x40;
  CampaignError Err;
  resumeCampaign(S, Opts, Bad, &Err);
  EXPECT_TRUE(Err.Failed);
  EXPECT_FALSE(Err.Message.empty());

  // Same blob, different campaign options: fingerprint mismatch.
  CampaignOptions Other = Opts;
  Other.Seed = 6;
  CampaignError Err2;
  resumeCampaign(S, Other, Checkpoints.back(), &Err2);
  EXPECT_TRUE(Err2.Failed);

  // Different kind entirely.
  CampaignOptions OtherKind = Opts;
  OtherKind.Kind = FuzzerKind::Path;
  CampaignError Err3;
  resumeCampaign(S, OtherKind, Checkpoints.back(), &Err3);
  EXPECT_TRUE(Err3.Failed);
}

// Every way a checkpoint blob can rot on disk, against every driver
// family: the resume must fail cleanly — structured error, no crash, no
// partially-restored result leaking out — for truncation at any length,
// bit flips, a foreign magic and an unknown envelope version.
class ResumeErrorPaths : public ::testing::TestWithParam<FuzzerKind> {};

TEST_P(ResumeErrorPaths, CorruptBlobsFailCleanlyNeverPartially) {
  const FuzzerKind Kind = GetParam();
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(Kind, 4000);
  CampaignOptions WithCkpt = Opts;
  WithCkpt.CheckpointInterval = 1000;
  std::vector<std::vector<uint8_t>> Checkpoints;
  WithCkpt.CheckpointSink = [&Checkpoints](const std::vector<uint8_t> &Blob) {
    Checkpoints.push_back(Blob);
  };
  runCampaign(S, WithCkpt);
  ASSERT_FALSE(Checkpoints.empty());
  const std::vector<uint8_t> &Good = Checkpoints.back();

  // Both resume entry points: the Subject overload (the serial driver)
  // and the SubjectBuild overload (what the batch runner's shared build
  // cache goes through).
  BuildCache Cache;
  std::shared_ptr<SubjectBuild> B = Cache.get(S);
  auto expectCleanFailure = [&](std::vector<uint8_t> Blob, const char *What) {
    SCOPED_TRACE(What);
    for (int Driver = 0; Driver < 2; ++Driver) {
      SCOPED_TRACE(Driver == 0 ? "serial" : "batch build");
      CampaignError Err;
      CampaignResult R = Driver == 0 ? resumeCampaign(S, Opts, Blob, &Err)
                                     : resumeCampaign(*B, Opts, Blob, &Err);
      EXPECT_TRUE(Err.Failed);
      EXPECT_FALSE(Err.Message.empty());
      // No partial restore escapes: the result is the empty default.
      EXPECT_EQ(R.Execs, 0u);
      EXPECT_TRUE(R.EdgeSet.empty());
      EXPECT_TRUE(R.CrashHashes.empty());
    }
  };

  for (size_t Cut :
       {size_t(0), size_t(3), Good.size() / 4, Good.size() / 2,
        Good.size() - 1})
    expectCleanFailure({Good.begin(), Good.begin() + Cut}, "truncated");

  std::vector<uint8_t> Flipped = Good;
  Flipped[Good.size() / 3] ^= 0x08;
  expectCleanFailure(Flipped, "bit-flipped payload");

  std::vector<uint8_t> Magic = Good;
  Magic[0] ^= 0xff; // envelope magic is bytes 0..3
  expectCleanFailure(Magic, "wrong magic");

  std::vector<uint8_t> Version = Good;
  Version[4] = 0x7f; // envelope version is bytes 4..7
  expectCleanFailure(Version, "wrong version");
}

INSTANTIATE_TEST_SUITE_P(Drivers, ResumeErrorPaths,
                         ::testing::Values(FuzzerKind::Pcguard,
                                           FuzzerKind::Cull,
                                           FuzzerKind::Opp),
                         [](const auto &Info) {
                           return std::string(fuzzerKindName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Structured campaign errors
//===----------------------------------------------------------------------===//

TEST(CampaignErrors, CompileFailureIsReportedNotFatal) {
  Subject S = brokenSubject();
  CampaignError Err;
  CampaignResult R = runCampaign(S, baseOpts(FuzzerKind::Path, 1000), &Err);
  EXPECT_TRUE(Err.Failed);
  EXPECT_FALSE(Err.Transient); // real compile errors never retry
  EXPECT_FALSE(Err.Message.empty()) << "the diagnostic must be preserved";
  EXPECT_TRUE(Err.FaultSite.empty());
  EXPECT_EQ(R.Execs, 0u);
}

TEST(CampaignErrors, WatchdogConvertsRunawayIntoError) {
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard, 50000);
  Opts.WatchdogExecLimit = 500; // far below the budget: trips immediately
  CampaignError Err;
  runCampaign(S, Opts, &Err);
  EXPECT_TRUE(Err.Failed);
  EXPECT_TRUE(Err.Watchdog);
}

TEST(CampaignErrors, GenerousWatchdogDoesNotPerturbResults) {
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(FuzzerKind::Cull, 4000);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Opts));
  CampaignOptions Watched = Opts;
  Watched.WatchdogExecLimit = 8 * Opts.ExecBudget + 4096;
  CampaignError Err;
  CampaignResult R = runCampaign(S, Watched, &Err);
  EXPECT_FALSE(Err.Failed);
  EXPECT_EQ(serializeCampaignResult(R), Ref);
}

//===----------------------------------------------------------------------===//
// Fault-tolerant batches
//===----------------------------------------------------------------------===//

std::vector<BatchJob> twoSubjectJobs(const Subject &A, const Subject &B) {
  std::vector<BatchJob> Jobs;
  for (const Subject *S : {&A, &B})
    for (uint32_t Trial = 0; Trial < 2; ++Trial) {
      BatchJob J;
      J.S = S;
      J.Opts = baseOpts(FuzzerKind::Path, 3000);
      J.Opts.Seed = trialSeed(5, FuzzerKind::Path, Trial);
      Jobs.push_back(J);
    }
  return Jobs;
}

TEST(BatchFaults, OneFailingCompileCostsOnlyItsOwnJobs) {
  fault::ScopedFaultInjection Guard;
  Subject A = smallSubject(), B = otherSubject();
  std::vector<BatchJob> Jobs = twoSubjectJobs(A, B);

  std::vector<CampaignResult> Clean = runCampaigns(Jobs, 1);

  // At one thread the cache compiles subjects in job order: "small" is
  // compile #1, "other" is #2. Fail #2 persistently.
  fault::SiteConfig C;
  C.FailOnHit = 2;
  C.Transient = false;
  fault::armSite("strategy.compile", C);

  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 1, &BS, &Statuses);
  fault::reset();

  ASSERT_EQ(Got.size(), 4u);
  ASSERT_EQ(Statuses.size(), 4u);
  // Subject A's jobs are byte-identical to the fault-free batch.
  for (size_t I : {0u, 1u}) {
    EXPECT_TRUE(Statuses[I].Ok);
    EXPECT_EQ(serializeCampaignResult(Got[I]),
              serializeCampaignResult(Clean[I]));
  }
  // Subject B's jobs failed with the fault recorded; results left empty.
  for (size_t I : {2u, 3u}) {
    EXPECT_FALSE(Statuses[I].Ok);
    EXPECT_EQ(Statuses[I].FaultSite, "strategy.compile");
    EXPECT_FALSE(Statuses[I].Error.empty());
    EXPECT_EQ(Got[I].Execs, 0u);
  }
  EXPECT_EQ(BS.JobsFailed, 2u);
}

TEST(BatchFaults, UncompilableSubjectDegradesGracefullyAtFourThreads) {
  Subject A = smallSubject(), Broken = brokenSubject();
  std::vector<BatchJob> Jobs = twoSubjectJobs(A, Broken);
  std::vector<CampaignResult> Clean = runCampaigns(
      {Jobs.begin(), Jobs.begin() + 2}, 1);

  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 4, &BS, &Statuses);

  for (size_t I : {0u, 1u}) {
    EXPECT_TRUE(Statuses[I].Ok);
    EXPECT_EQ(serializeCampaignResult(Got[I]),
              serializeCampaignResult(Clean[I]));
  }
  for (size_t I : {2u, 3u}) {
    EXPECT_FALSE(Statuses[I].Ok);
    EXPECT_FALSE(Statuses[I].Error.empty())
        << "compile diagnostic must survive the batch";
  }
  EXPECT_EQ(BS.JobsFailed, 2u);
}

TEST(BatchFaults, TransientCompileFaultIsRetriedToTheExactResult) {
  fault::ScopedFaultInjection Guard;
  Subject A = smallSubject();
  std::vector<BatchJob> Jobs;
  BatchJob J;
  J.S = &A;
  J.Opts = baseOpts(FuzzerKind::Path, 3000);
  Jobs.push_back(J);

  std::vector<CampaignResult> Clean = runCampaigns(Jobs, 1);

  fault::SiteConfig C;
  C.FailOnHit = 1; // first compile fails; transient by default
  fault::armSite("strategy.compile", C);
  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 1, &BS, &Statuses);
  fault::reset();

  ASSERT_EQ(Statuses.size(), 1u);
  EXPECT_TRUE(Statuses[0].Ok);
  EXPECT_EQ(Statuses[0].Attempts, 2u);
  EXPECT_EQ(serializeCampaignResult(Got[0]),
            serializeCampaignResult(Clean[0]));
  EXPECT_EQ(BS.JobsRetried, 1u);
  EXPECT_EQ(BS.JobsFailed, 0u);
  // The retry recompiled: two front-end compilations for one subject.
  EXPECT_EQ(BS.SubjectsCompiled, 2u);
}

TEST(BatchFaults, TransientInstrumentFaultIsRetriedWithoutRecompiling) {
  fault::ScopedFaultInjection Guard;
  Subject A = smallSubject();
  std::vector<BatchJob> Jobs;
  BatchJob J;
  J.S = &A;
  J.Opts = baseOpts(FuzzerKind::Path, 3000);
  Jobs.push_back(J);

  std::vector<CampaignResult> Clean = runCampaigns(Jobs, 1);

  fault::SiteConfig C;
  C.FailOnHit = 1;
  fault::armSite("strategy.instrument", C);
  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 1, &BS, &Statuses);
  fault::reset();

  EXPECT_TRUE(Statuses[0].Ok);
  EXPECT_EQ(Statuses[0].Attempts, 2u);
  EXPECT_EQ(serializeCampaignResult(Got[0]),
            serializeCampaignResult(Clean[0]));
  // Failed instrumentation attempts are not cached, so the retry reuses
  // the compiled subject: one compilation, one (successful) pass.
  EXPECT_EQ(BS.SubjectsCompiled, 1u);
  EXPECT_EQ(BS.ModulesInstrumented, 1u);
}

TEST(BatchFaults, RejectedDispatchIsRetriedNotLost) {
  fault::ScopedFaultInjection Guard;
  Subject A = smallSubject();
  std::vector<BatchJob> Jobs = twoSubjectJobs(A, A);
  std::vector<CampaignResult> Clean = runCampaigns(Jobs, 1);

  fault::SiteConfig C;
  C.FailOnHit = 2; // reject the second pool submission once
  fault::armSite("support.pool.dispatch", C);
  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 2, &BS, &Statuses);
  fault::reset();

  EXPECT_GE(BS.DispatchRetries, 1u);
  EXPECT_EQ(BS.JobsFailed, 0u);
  ASSERT_EQ(Got.size(), Clean.size());
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_TRUE(Statuses[I].Ok);
    EXPECT_EQ(serializeCampaignResult(Got[I]),
              serializeCampaignResult(Clean[I]))
        << "job " << I;
  }
}

TEST(BatchFaults, WatchdogTripSurfacesAsTimedOutStatus) {
  Subject A = smallSubject();
  std::vector<BatchJob> Jobs;
  BatchJob J;
  J.S = &A;
  J.Opts = baseOpts(FuzzerKind::Pcguard, 50000);
  J.Opts.WatchdogExecLimit = 500;
  Jobs.push_back(J);

  BatchStats BS;
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Got = runCampaigns(Jobs, 1, &BS, &Statuses);
  EXPECT_FALSE(Statuses[0].Ok);
  EXPECT_TRUE(Statuses[0].TimedOut);
  EXPECT_EQ(Got[0].Execs, 0u);
  EXPECT_EQ(BS.JobsFailed, 1u);
}

TEST(BatchFaults, CheckpointingInsideABatchDoesNotPerturbIt) {
  // Campaign options with a checkpoint sink flow through the batch
  // unchanged; results match the sink-free batch byte for byte.
  Subject A = smallSubject();
  std::vector<BatchJob> Jobs = twoSubjectJobs(A, A);
  std::vector<CampaignResult> Clean = runCampaigns(Jobs, 1);

  std::atomic<size_t> Seen{0};
  std::vector<BatchJob> Ckpt = Jobs;
  for (BatchJob &J : Ckpt) {
    J.Opts.CheckpointInterval = 1000;
    J.Opts.CheckpointSink = [&Seen](const std::vector<uint8_t> &) {
      Seen.fetch_add(1, std::memory_order_relaxed);
    };
  }
  std::vector<CampaignResult> Got = runCampaigns(Ckpt, 2);
  EXPECT_GT(Seen.load(), 0u);
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(serializeCampaignResult(Got[I]),
              serializeCampaignResult(Clean[I]));
}

} // namespace
