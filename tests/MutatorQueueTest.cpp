//===- MutatorQueueTest.cpp - Mutation engine and corpus ----------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"
#include "fuzz/Queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pathfuzz;
using namespace pathfuzz::fuzz;

namespace {

TEST(Mutator, DeterministicForSeed) {
  MutatorConfig MC;
  Rng A(5), B(5);
  Mutator MA(A, MC), MB(B, MC);
  Input Da = {1, 2, 3, 4, 5}, Db = Da;
  std::vector<int64_t> Dict = {0x41};
  for (int I = 0; I < 50; ++I) {
    MA.havoc(Da, Dict);
    MB.havoc(Db, Dict);
    ASSERT_EQ(Da, Db) << "iteration " << I;
  }
}

TEST(Mutator, RespectsMaxLenAndNonEmpty) {
  MutatorConfig MC;
  MC.MaxLen = 32;
  Rng R(9);
  Mutator M(R, MC);
  Input Data = {1};
  for (int I = 0; I < 500; ++I) {
    M.havoc(Data, {});
    ASSERT_LE(Data.size(), MC.MaxLen);
    ASSERT_FALSE(Data.empty());
  }
}

TEST(Mutator, DictionaryValuesShowUp) {
  MutatorConfig MC;
  Rng R(13);
  Mutator M(R, MC);
  std::vector<int64_t> Dict = {0x77};
  int Hits = 0;
  for (int I = 0; I < 300; ++I) {
    Input Data(16, 0);
    M.havoc(Data, Dict);
    for (uint8_t B : Data)
      if (B == 0x77) {
        ++Hits;
        break;
      }
  }
  EXPECT_GT(Hits, 20);
}

TEST(Mutator, SpliceMixesInputs) {
  MutatorConfig MC;
  Rng R(17);
  Mutator M(R, MC);
  Input A(20, 'a');
  Input B(20, 'b');
  bool SawB = false;
  for (int I = 0; I < 50 && !SawB; ++I) {
    Input Data = A;
    M.splice(Data, B, {});
    for (uint8_t C : Data)
      SawB |= (C == 'b');
  }
  EXPECT_TRUE(SawB);
}

QueueEntry entry(uint64_t Steps, std::vector<uint32_t> MapSet,
                 std::vector<uint32_t> EdgeSet = {}) {
  QueueEntry E;
  E.Data = {1};
  E.Steps = Steps;
  E.MapSet = std::move(MapSet);
  E.EdgeSet = std::move(EdgeSet);
  return E;
}

TEST(Corpus, FavoredMarksMinimalCoveringSet) {
  Corpus Q(64);
  Q.add(entry(10, {1, 2, 3}));
  Q.add(entry(5, {1}));       // cheaper for index 1
  Q.add(entry(100, {7}));     // sole owner of 7
  Q.add(entry(1000, {2, 3})); // dominated: never favored
  Q.cullIfNeeded();
  EXPECT_TRUE(Q[0].Favored);  // cheapest for 2 and 3
  EXPECT_TRUE(Q[1].Favored);  // cheapest for 1
  EXPECT_TRUE(Q[2].Favored);
  EXPECT_FALSE(Q[3].Favored);
  EXPECT_EQ(Q.favoredCount(), 3u);
  EXPECT_EQ(Q.pendingFavored(), 3u);
  Q.markFuzzed(0);
  EXPECT_EQ(Q.pendingFavored(), 2u);
}

TEST(Corpus, EdgePreservingSubsetCoversAllEdges) {
  Corpus Q(16);
  Q.add(entry(10, {0}, {100, 101}));
  Q.add(entry(1, {1}, {101}));
  Q.add(entry(10, {2}, {102}));
  Q.add(entry(10, {3}, {100, 101, 102})); // expensive superset
  std::vector<size_t> Sub = Q.edgePreservingSubset();

  std::set<uint32_t> Covered;
  for (size_t I : Sub)
    for (uint32_t E : Q[I].EdgeSet)
      Covered.insert(E);
  EXPECT_EQ(Covered, (std::set<uint32_t>{100, 101, 102}));
  EXPECT_LT(Sub.size(), Q.size());
}

TEST(Corpus, EdgeSubsetOnRandomCorpusNeverRegresses) {
  Rng R(23);
  Corpus Q(32);
  std::set<uint32_t> All;
  for (int I = 0; I < 60; ++I) {
    std::vector<uint32_t> Edges;
    unsigned N = 1 + R.below(6);
    for (unsigned K = 0; K < N; ++K)
      Edges.push_back(static_cast<uint32_t>(R.below(40)));
    std::sort(Edges.begin(), Edges.end());
    Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
    All.insert(Edges.begin(), Edges.end());
    Q.add(entry(1 + R.below(100), {static_cast<uint32_t>(I % 32)}, Edges));
  }
  std::set<uint32_t> Covered;
  for (size_t I : Q.edgePreservingSubset())
    for (uint32_t E : Q[I].EdgeSet)
      Covered.insert(E);
  EXPECT_EQ(Covered, All) << "culling must preserve total edge coverage";
}

} // namespace
