//===- LangTest.cpp - MiniLang lexer, parser, and lowering --------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::lang;

namespace {

int64_t eval(const char *Src, const std::vector<uint8_t> &In = {}) {
  CompileResult CR = compileSource(Src, "t");
  EXPECT_TRUE(CR.ok()) << CR.message();
  if (!CR.ok())
    return INT64_MIN;
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  vm::ExecResult R = Machine.run(In.data(), In.size(), EO, nullptr);
  EXPECT_FALSE(R.crashed()) << faultKindName(R.TheFault.Kind);
  return R.ReturnValue;
}

std::vector<std::string> compileErrors(const char *Src) {
  CompileResult CR = compileSource(Src, "t");
  EXPECT_FALSE(CR.ok());
  return CR.Errors;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokensAndLiterals) {
  Lexer L("fn x1 0x2a 'h' '\\n' 42 <= >> && != // comment\n /* c */ %");
  std::vector<Token> Ts = L.lexAll();
  ASSERT_TRUE(L.errors().empty());
  ASSERT_EQ(Ts.size(), 12u);
  EXPECT_EQ(Ts[0].Kind, TokKind::KwFn);
  EXPECT_EQ(Ts[1].Kind, TokKind::Ident);
  EXPECT_EQ(Ts[1].Text, "x1");
  EXPECT_EQ(Ts[2].IntVal, 42);
  EXPECT_EQ(Ts[3].IntVal, 'h');
  EXPECT_EQ(Ts[4].IntVal, '\n');
  EXPECT_EQ(Ts[5].IntVal, 42);
  EXPECT_EQ(Ts[6].Kind, TokKind::Le);
  EXPECT_EQ(Ts[7].Kind, TokKind::Shr);
  EXPECT_EQ(Ts[8].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Ts[9].Kind, TokKind::NotEq);
  EXPECT_EQ(Ts[10].Kind, TokKind::Percent);
  EXPECT_EQ(Ts[11].Kind, TokKind::Eof);
}

TEST(Lexer, TracksLocations) {
  Lexer L("fn\n  main");
  Token A = L.next();
  Token B = L.next();
  EXPECT_EQ(A.Loc.Line, 1u);
  EXPECT_EQ(B.Loc.Line, 2u);
  EXPECT_EQ(B.Loc.Col, 3u);
}

TEST(Lexer, ReportsBadCharacters) {
  Lexer L("fn @");
  L.lexAll();
  EXPECT_FALSE(L.errors().empty());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, PrecedenceMatchesC) {
  // 2 + 3 * 4 == 14, (2 | 1) == 3 with | looser than +
  EXPECT_EQ(eval("fn main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(eval("fn main() { return 2 | 1 + 0; }"), 3);
  EXPECT_EQ(eval("fn main() { return 1 + 2 == 3; }"), 1);
  EXPECT_EQ(eval("fn main() { return 10 - 3 - 2; }"), 5); // left assoc
  EXPECT_EQ(eval("fn main() { return 2 * (3 + 4); }"), 14);
  EXPECT_EQ(eval("fn main() { return -3 + 1; }"), -2);
  EXPECT_EQ(eval("fn main() { return !0 + !5; }"), 1);
}

TEST(Parser, RejectsBadAssignmentTarget) {
  auto Errs = compileErrors("fn main() { 1 + 2 = 3; return 0; }");
  EXPECT_FALSE(Errs.empty());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  Parser P("fn main() { var ; return 0; } fn f( { }");
  EXPECT_FALSE(P.parseProgram().has_value());
  EXPECT_GE(P.errors().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Lowering / semantics
//===----------------------------------------------------------------------===//

TEST(Compile, ShortCircuitEvaluation) {
  // The right side of && must not run when the left is false: otherwise
  // the division would fault.
  EXPECT_EQ(eval("fn main() { return len() > 0 && 10 / len() > 0; }"), 0);
  EXPECT_EQ(eval("fn main() { return 1 || 10 / len(); }"), 1);
  EXPECT_EQ(eval("fn main() { return 2 && 3; }"), 1); // normalized to 0/1
}

TEST(Compile, WhileBreakContinue) {
  EXPECT_EQ(eval(R"ml(
fn main() {
  var s = 0;
  var i = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    s = s + i;
  }
  return s * 100 + i;
}
)ml"),
            1609); // s = 1+3+5+7 = 16, i = 9
}

TEST(Compile, NestedScopesShadowing) {
  EXPECT_EQ(eval(R"ml(
fn main() {
  var x = 1;
  {
    var x = 2;
    x = x + 1;
  }
  return x;
}
)ml"),
            1);
}

TEST(Compile, FunctionsAndRecursion) {
  EXPECT_EQ(eval(R"ml(
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() { return fib(10); }
)ml"),
            55);
}

TEST(Compile, ForwardReferencesWork) {
  EXPECT_EQ(eval(R"ml(
fn main() { return later(3); }
fn later(x) { return x * 2; }
)ml"),
            6);
}

TEST(Compile, GlobalsAndArrays) {
  EXPECT_EQ(eval(R"ml(
global tab[4] = {10, 20};
fn main() {
  var a[3];
  a[0] = tab[0] + tab[1];
  a[1] = tab[2];        // zero-initialized tail
  tab[3] = 5;
  return a[0] + a[1] + tab[3];
}
)ml"),
            35);
}

TEST(Compile, DeadCodeAfterReturnIsTolerated) {
  EXPECT_EQ(eval("fn main() { return 1; return 2; }"), 1);
  EXPECT_EQ(eval(R"ml(
fn main() {
  var i = 0;
  while (i < 3) { break; i = i + 1; }
  return i;
}
)ml"),
            0);
}

TEST(Compile, SemanticErrors) {
  EXPECT_FALSE(compileErrors("fn main() { return x; }").empty());
  EXPECT_FALSE(
      compileErrors("fn main() { var a = 1; var a = 2; return a; }").empty());
  EXPECT_FALSE(compileErrors("fn main() { break; return 0; }").empty());
  EXPECT_FALSE(compileErrors("fn f(a) { return a; } fn main() { return f(); }")
                   .empty());
  EXPECT_FALSE(compileErrors("fn f() { return 0; }").empty()); // no main
  EXPECT_FALSE(compileErrors("fn main(x) { return x; }").empty());
  EXPECT_FALSE(compileErrors("fn main() { return nosuch(1); }").empty());
  EXPECT_FALSE(
      compileErrors("fn main() { return 0; } fn main() { return 1; }")
          .empty());
}

TEST(Compile, BuiltinArityChecked) {
  EXPECT_FALSE(compileErrors("fn main() { return len(1); }").empty());
  EXPECT_FALSE(compileErrors("fn main() { return in(); }").empty());
  EXPECT_FALSE(compileErrors("fn main() { return alloc(1, 2); }").empty());
}

TEST(Compile, InputDrivenControlFlow) {
  const char *Src = R"ml(
fn main() {
  if (in(0) == 'a' && in(1) == 'b') { return 100; }
  if (in(0) == 'a' || len() > 4) { return 50; }
  return 7;
}
)ml";
  EXPECT_EQ(eval(Src, {'a', 'b'}), 100);
  EXPECT_EQ(eval(Src, {'a', 'x'}), 50);
  EXPECT_EQ(eval(Src, {'q', 'q', 'q', 'q', 'q'}), 50);
  EXPECT_EQ(eval(Src, {'q'}), 7);
}

} // namespace
