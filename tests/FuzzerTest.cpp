//===- FuzzerTest.cpp - Fuzzing loop integration -------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "lang/Compile.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::fuzz;

namespace {

struct Harness {
  mir::Module Mod;
  instr::ShadowEdgeIndex Shadow;
  instr::InstrumentReport Report;

  Harness(const char *Src, instr::Feedback Mode) {
    lang::CompileResult CR = lang::compileSource(Src, "t");
    EXPECT_TRUE(CR.ok()) << CR.message();
    Mod = std::move(*CR.Mod);
    // Shadow numbering comes from the original module, pre-probes.
    Shadow = instr::ShadowEdgeIndex::build(Mod);
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    Report = instr::instrumentModule(Mod, IO);
  }
};

const char *EasyBug = R"ml(
fn main() {
  var a[4];
  if (in(0) == 'B') {
    if (in(1) == 'U') {
      a[in(2) % 8] = 1;   // OOB for in(2) % 8 >= 4
    }
  }
  return 0;
}
)ml";

TEST(Fuzzer, FindsAShallowBug) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.Seed = 3;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B', 'U', 'G'});
  F.run(20000);
  EXPECT_GE(F.bugIds().size(), 1u);
  EXPECT_GE(F.uniqueCrashes().size(), 1u);
  EXPECT_GT(F.stats().Crashes, 0u);
  // Crashing inputs are never queued.
  for (const QueueEntry &E : F.corpus().entries()) {
    vm::ExecResult R = F.executeRaw(E.Data);
    EXPECT_FALSE(R.crashed());
  }
}

TEST(Fuzzer, DeterministicCampaigns) {
  for (instr::Feedback Mode :
       {instr::Feedback::EdgePrecise, instr::Feedback::Path}) {
    Harness H1(EasyBug, Mode);
    Harness H2(EasyBug, Mode);
    FuzzerOptions FO;
    FO.Seed = 99;
    Fuzzer F1(H1.Mod, H1.Report, H1.Shadow, FO);
    Fuzzer F2(H2.Mod, H2.Report, H2.Shadow, FO);
    F1.addSeed({'B', 'x'});
    F2.addSeed({'B', 'x'});
    F1.run(5000);
    F2.run(5000);
    EXPECT_EQ(F1.stats().Execs, F2.stats().Execs);
    EXPECT_EQ(F1.corpus().size(), F2.corpus().size());
    EXPECT_EQ(F1.stats().Crashes, F2.stats().Crashes);
    EXPECT_EQ(F1.edgesCovered(), F2.edgesCovered());
    EXPECT_EQ(F1.bugIds(), F2.bugIds());
  }
}

TEST(Fuzzer, CrashingSeedIsRecordedNotQueued) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B', 'U', 0x07}); // 7 % 8 = 7 >= 4: crashes
  EXPECT_EQ(F.corpus().size(), 0u);
  EXPECT_EQ(F.uniqueCrashes().size(), 1u);
}

TEST(Fuzzer, RunsWithoutSeeds) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.run(2000);
  EXPECT_GE(F.stats().Execs, 2000u);
  EXPECT_GE(F.corpus().size(), 1u);
}

TEST(Fuzzer, PathFeedbackRetainsMorePathDiversity) {
  // A function whose two decisions produce 4 paths over the same edges
  // once each branch direction was seen: the path feedback must keep more
  // entries than edge feedback.
  const char *Src = R"ml(
fn f(a, b) {
  var x;
  if (a) { x = 1; } else { x = 2; }
  if (b) { x = x + 10; } else { x = x * 3; }
  return x;
}
fn main() {
  return f(in(0) & 1, in(1) & 1);
}
)ml";
  uint64_t QueueSizes[2];
  int I = 0;
  for (instr::Feedback Mode :
       {instr::Feedback::EdgePrecise, instr::Feedback::Path}) {
    Harness H(Src, Mode);
    FuzzerOptions FO;
    FO.Seed = 7;
    Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
    F.addSeed({0, 0});
    F.run(4000);
    QueueSizes[I++] = F.corpus().size();
  }
  EXPECT_GT(QueueSizes[1], QueueSizes[0]);
}

TEST(Fuzzer, CycleSchedulerLatchesCycleEndAtCycleStart) {
  // Regression for the queue-cycle wrap bug: the old cursor advanced
  // modulo the *live* queue size, so growth mid-cycle made it wrap early
  // and starve the new tail entries for an entire pass. The cycle length
  // must be latched when the cycle starts and the grown tail picked up by
  // the very next cycle.
  CycleScheduler S;
  EXPECT_EQ(S.next(3), 0u);
  EXPECT_EQ(S.next(3), 1u);
  // Queue grows from 3 to 6 mid-cycle: the current cycle still ends at 3.
  EXPECT_EQ(S.next(6), 2u);
  EXPECT_EQ(S.completedCycles(), 0u);
  // Next cycle re-latches and covers all six entries exactly once.
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(S.next(6), I);
  EXPECT_EQ(S.completedCycles(), 1u);
  // A cursor that wrapped modulo live size would never hand out 6 here.
  EXPECT_EQ(S.next(7), 0u);
  EXPECT_EQ(S.next(7), 1u);
  for (size_t I = 2; I < 7; ++I)
    EXPECT_EQ(S.next(7), I);
  EXPECT_EQ(S.completedCycles(), 2u);
}

TEST(Fuzzer, QueueCyclesAdvanceDuringARun) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.Seed = 11;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B', 'U'});
  F.run(20000);
  // Small corpus + big budget: the cursor must complete many full passes.
  EXPECT_GE(F.stats().QueueCycles, 2u);
}

const char *HangProne = R"ml(
fn main() {
  if (in(0) == 'L') {
    var i = 0;
    while (i >= 0) { i = i + 1; }
  }
  return 0;
}
)ml";

TEST(Fuzzer, HangsAreRecordedAndDeduplicated) {
  Harness H(HangProne, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.Exec.StepLimit = 500;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);

  F.addSeed({'L'});
  EXPECT_EQ(F.corpus().size(), 0u); // hung seeds are not queued
  ASSERT_EQ(F.uniqueHangs().size(), 1u);
  EXPECT_EQ(F.stats().Hangs, 1u);
  EXPECT_GE(F.uniqueHangs()[0].Steps, 500u);
  EXPECT_EQ(F.uniqueHangs()[0].Data, Input({'L'}));

  F.addSeed({'L'}); // same input: counted, not re-recorded
  EXPECT_EQ(F.stats().Hangs, 2u);
  EXPECT_EQ(F.uniqueHangs().size(), 1u);

  F.addSeed({'L', 'x'}); // distinct hanging input: new record
  EXPECT_EQ(F.stats().Hangs, 3u);
  EXPECT_EQ(F.uniqueHangs().size(), 2u);
}

TEST(Fuzzer, GrowthSamplesAccumulate) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.GrowthSampleInterval = 512;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B'});
  F.run(5000);
  EXPECT_GE(F.stats().QueueGrowth.size(), 5u);
  for (size_t I = 1; I < F.stats().QueueGrowth.size(); ++I)
    EXPECT_LE(F.stats().QueueGrowth[I - 1].first,
              F.stats().QueueGrowth[I].first);
}

} // namespace
