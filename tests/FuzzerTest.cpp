//===- FuzzerTest.cpp - Fuzzing loop integration -------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "lang/Compile.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::fuzz;

namespace {

struct Harness {
  mir::Module Mod;
  instr::ShadowEdgeIndex Shadow;
  instr::InstrumentReport Report;

  Harness(const char *Src, instr::Feedback Mode) {
    lang::CompileResult CR = lang::compileSource(Src, "t");
    EXPECT_TRUE(CR.ok()) << CR.message();
    Mod = std::move(*CR.Mod);
    // Shadow numbering comes from the original module, pre-probes.
    Shadow = instr::ShadowEdgeIndex::build(Mod);
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    Report = instr::instrumentModule(Mod, IO);
  }
};

const char *EasyBug = R"ml(
fn main() {
  var a[4];
  if (in(0) == 'B') {
    if (in(1) == 'U') {
      a[in(2) % 8] = 1;   // OOB for in(2) % 8 >= 4
    }
  }
  return 0;
}
)ml";

TEST(Fuzzer, FindsAShallowBug) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.Seed = 3;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B', 'U', 'G'});
  F.run(20000);
  EXPECT_GE(F.bugIds().size(), 1u);
  EXPECT_GE(F.uniqueCrashes().size(), 1u);
  EXPECT_GT(F.stats().Crashes, 0u);
  // Crashing inputs are never queued.
  for (const QueueEntry &E : F.corpus().entries()) {
    vm::ExecResult R = F.executeRaw(E.Data);
    EXPECT_FALSE(R.crashed());
  }
}

TEST(Fuzzer, DeterministicCampaigns) {
  for (instr::Feedback Mode :
       {instr::Feedback::EdgePrecise, instr::Feedback::Path}) {
    Harness H1(EasyBug, Mode);
    Harness H2(EasyBug, Mode);
    FuzzerOptions FO;
    FO.Seed = 99;
    Fuzzer F1(H1.Mod, H1.Report, H1.Shadow, FO);
    Fuzzer F2(H2.Mod, H2.Report, H2.Shadow, FO);
    F1.addSeed({'B', 'x'});
    F2.addSeed({'B', 'x'});
    F1.run(5000);
    F2.run(5000);
    EXPECT_EQ(F1.stats().Execs, F2.stats().Execs);
    EXPECT_EQ(F1.corpus().size(), F2.corpus().size());
    EXPECT_EQ(F1.stats().Crashes, F2.stats().Crashes);
    EXPECT_EQ(F1.edgesCovered(), F2.edgesCovered());
    EXPECT_EQ(F1.bugIds(), F2.bugIds());
  }
}

TEST(Fuzzer, CrashingSeedIsRecordedNotQueued) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B', 'U', 0x07}); // 7 % 8 = 7 >= 4: crashes
  EXPECT_EQ(F.corpus().size(), 0u);
  EXPECT_EQ(F.uniqueCrashes().size(), 1u);
}

TEST(Fuzzer, RunsWithoutSeeds) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.run(2000);
  EXPECT_GE(F.stats().Execs, 2000u);
  EXPECT_GE(F.corpus().size(), 1u);
}

TEST(Fuzzer, PathFeedbackRetainsMorePathDiversity) {
  // A function whose two decisions produce 4 paths over the same edges
  // once each branch direction was seen: the path feedback must keep more
  // entries than edge feedback.
  const char *Src = R"ml(
fn f(a, b) {
  var x;
  if (a) { x = 1; } else { x = 2; }
  if (b) { x = x + 10; } else { x = x * 3; }
  return x;
}
fn main() {
  return f(in(0) & 1, in(1) & 1);
}
)ml";
  uint64_t QueueSizes[2];
  int I = 0;
  for (instr::Feedback Mode :
       {instr::Feedback::EdgePrecise, instr::Feedback::Path}) {
    Harness H(Src, Mode);
    FuzzerOptions FO;
    FO.Seed = 7;
    Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
    F.addSeed({0, 0});
    F.run(4000);
    QueueSizes[I++] = F.corpus().size();
  }
  EXPECT_GT(QueueSizes[1], QueueSizes[0]);
}

TEST(Fuzzer, GrowthSamplesAccumulate) {
  Harness H(EasyBug, instr::Feedback::EdgePrecise);
  FuzzerOptions FO;
  FO.GrowthSampleInterval = 512;
  Fuzzer F(H.Mod, H.Report, H.Shadow, FO);
  F.addSeed({'B'});
  F.run(5000);
  EXPECT_GE(F.stats().QueueGrowth.size(), 5u);
  for (size_t I = 1; I < F.stats().QueueGrowth.size(); ++I)
    EXPECT_LE(F.stats().QueueGrowth[I - 1].first,
              F.stats().QueueGrowth[I].first);
}

} // namespace
