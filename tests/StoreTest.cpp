//===- StoreTest.cpp - Durable campaign store and IO primitives ---------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The durability contracts below the kill-torture suite:
//
//  - io::atomicWriteFile publishes all-or-nothing: every injected failure
//    leg (write error, short write, fsync, rename) leaves the previous
//    destination content intact and no temporary behind.
//  - CampaignStore rotates checkpoints, recovers the newest valid one,
//    quarantines corrupt files instead of trusting them, and refuses a
//    manifest pinned to a different subject or options fingerprint.
//  - runStoredCampaign produces byte-identical results to an in-memory
//    run, resumes across corruption by falling back to older checkpoints
//    (counting store.checkpoint.{recovered,quarantined}), and returns the
//    recorded result without re-executing once a campaign is done.
//  - The batch runner derives per-trial store directories from
//    PATHFUZZ_STORE without perturbing results.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Snapshot.h"
#include "strategy/Batch.h"
#include "strategy/Campaign.h"
#include "strategy/Store.h"
#include "support/FaultInjection.h"
#include "support/Io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace pathfuzz;
using namespace pathfuzz::strategy;
namespace fs = std::filesystem;

namespace {

/// Unique scratch directory, removed on scope exit.
class TempDir {
public:
  TempDir() {
    static int Counter = 0;
    Path = (fs::temp_directory_path() /
            ("pathfuzz-store-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(Counter++)))
               .string();
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  const std::string &path() const { return Path; }
  std::string sub(const std::string &Name) const { return Path + "/" + Name; }

private:
  std::string Path;
};

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

Subject otherSubject() {
  Subject S;
  S.Name = "other";
  S.Source = R"ml(
fn main() {
  var a[4];
  if (len() > 2 && in(0) == 'R' && in(1) == 'T') {
    a[in(2) % 8] = 1;  // OOB for in(2) % 8 >= 4
  }
  return 0;
}
)ml";
  S.Seeds = {{'R', 'T', 1}};
  return S;
}

CampaignOptions baseOpts(FuzzerKind Kind, uint64_t Budget = 4000) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = Budget;
  Opts.Seed = 5;
  Opts.CullRounds = 3;
  return Opts;
}

std::vector<uint8_t> bytesOf(const std::string &S) {
  return {S.begin(), S.end()};
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::vector<uint8_t> Out;
  EXPECT_TRUE(io::readFileBounded(Path, 1 << 30, Out)) << Path;
  return Out;
}

size_t filesIn(const std::string &Dir) {
  if (!fs::exists(Dir))
    return 0;
  size_t N = 0;
  for (const auto &E : fs::directory_iterator(Dir)) {
    (void)E;
    ++N;
  }
  return N;
}

/// Run a campaign capturing its emitted checkpoint blobs.
std::vector<std::vector<uint8_t>>
captureCheckpoints(const Subject &S, CampaignOptions Opts, uint64_t Interval) {
  Opts.CheckpointInterval = Interval;
  std::vector<std::vector<uint8_t>> Out;
  Opts.CheckpointSink = [&Out](const std::vector<uint8_t> &B) {
    Out.push_back(B);
  };
  CampaignError Err;
  runCampaign(S, Opts, &Err);
  EXPECT_FALSE(Err.Failed) << Err.Message;
  return Out;
}

const telemetry::InstanceRecord *
storeRecord(const std::shared_ptr<telemetry::CampaignTrace> &T) {
  if (!T)
    return nullptr;
  for (const telemetry::InstanceRecord &R : T->Instances)
    if (R.Label == "store")
      return &R;
  return nullptr;
}

uint64_t counterOf(const telemetry::MetricsRegistry &M,
                   const std::string &Name) {
  auto It = M.counters().find(Name);
  return It == M.counters().end() ? 0 : It->second;
}

//===----------------------------------------------------------------------===//
// io::atomicWriteFile / io::readFileBounded
//===----------------------------------------------------------------------===//

TEST(AtomicIo, WriteReadRoundTripAndOverwrite) {
  TempDir Dir;
  const std::string Path = Dir.sub("data.bin");
  ASSERT_TRUE(io::atomicWriteFile(Path, std::string("first content")));
  EXPECT_EQ(readAll(Path), bytesOf("first content"));
  ASSERT_TRUE(io::atomicWriteFile(Path, std::string("replacement")));
  EXPECT_EQ(readAll(Path), bytesOf("replacement"));
  // The temporary never survives a successful publish.
  EXPECT_FALSE(fs::exists(Path + io::tmpSuffix()));
  EXPECT_EQ(filesIn(Dir.path()), 1u);
}

TEST(AtomicIo, EmptyPayloadIsValid) {
  TempDir Dir;
  const std::string Path = Dir.sub("empty.bin");
  ASSERT_TRUE(io::atomicWriteFile(Path, std::vector<uint8_t>{}));
  std::vector<uint8_t> Out{1, 2, 3};
  ASSERT_TRUE(io::readFileBounded(Path, 16, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(AtomicIo, ReadBoundedRefusesOversizeAndMissing) {
  TempDir Dir;
  const std::string Path = Dir.sub("big.bin");
  ASSERT_TRUE(io::atomicWriteFile(Path, std::string("0123456789")));
  std::vector<uint8_t> Out;
  std::string Err;
  EXPECT_FALSE(io::readFileBounded(Path, 9, Out, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_TRUE(io::readFileBounded(Path, 10, Out));
  EXPECT_EQ(Out.size(), 10u);
  EXPECT_FALSE(io::readFileBounded(Dir.sub("no-such-file"), 16, Out, &Err));
}

TEST(AtomicIo, EveryFaultLegPreservesOldContent) {
  // The whole point of the primitive: no failure mode may tear the
  // destination or leave a temporary behind.
  for (const char *Site :
       {"io.write.fail", "io.write.short", "io.fsync.fail", "io.rename.fail"}) {
    SCOPED_TRACE(Site);
    TempDir Dir;
    const std::string Path = Dir.sub("data.bin");
    ASSERT_TRUE(io::atomicWriteFile(Path, std::string("old content")));

    fault::ScopedFaultInjection Guard;
    fault::SiteConfig C;
    C.FailOnHit = 1;
    fault::armSite(Site, C);
    std::string Err;
    EXPECT_FALSE(io::atomicWriteFile(Path, std::string("new content"), &Err));
    EXPECT_NE(Err.find(Site), std::string::npos) << Err;
    fault::reset();

    EXPECT_EQ(readAll(Path), bytesOf("old content"));
    EXPECT_FALSE(fs::exists(Path + io::tmpSuffix()));
    EXPECT_EQ(filesIn(Dir.path()), 1u);

    // And the very next write, fault gone, succeeds.
    EXPECT_TRUE(io::atomicWriteFile(Path, std::string("new content")));
    EXPECT_EQ(readAll(Path), bytesOf("new content"));
  }
}

//===----------------------------------------------------------------------===//
// CampaignStore
//===----------------------------------------------------------------------===//

TEST(CampaignStore, RotatesAndRecoversNewest) {
  TempDir Dir;
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard);
  Opts.StoreKeepLast = 3;
  std::string Err;
  auto Store = CampaignStore::open(Dir.sub("c"), "small", Opts, &Err);
  ASSERT_TRUE(Store) << Err;
  EXPECT_FALSE(Store->done());

  for (int I = 1; I <= 5; ++I) {
    std::vector<uint8_t> Blob =
        fuzz::sealSnapshot(bytesOf("payload " + std::to_string(I)));
    ASSERT_TRUE(Store->writeCheckpoint(Blob, &Err)) << Err;
  }
  // Retention: only the last 3 remain on disk.
  EXPECT_EQ(Store->checkpointsOnDisk(), 3u);
  EXPECT_EQ(counterOf(Store->metrics(), "store.checkpoint.written"), 5u);

  std::vector<uint8_t> Recovered;
  ASSERT_TRUE(Store->recover(Recovered));
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(fuzz::openSnapshot(Recovered, Payload));
  EXPECT_EQ(Payload, bytesOf("payload 5"));
  EXPECT_EQ(counterOf(Store->metrics(), "store.checkpoint.recovered"), 1u);
}

TEST(CampaignStore, RecoverQuarantinesTornNewest) {
  TempDir Dir;
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard);
  std::string Err;
  auto Store = CampaignStore::open(Dir.sub("c"), "small", Opts, &Err);
  ASSERT_TRUE(Store) << Err;
  ASSERT_TRUE(Store->writeCheckpoint(fuzz::sealSnapshot(bytesOf("good"))));
  ASSERT_TRUE(Store->writeCheckpoint(fuzz::sealSnapshot(bytesOf("newest"))));

  // Flip one payload bit in the newest file: the envelope checksum must
  // reject it and recovery must fall back to the older checkpoint.
  std::string Newest;
  for (const auto &E : fs::directory_iterator(Dir.sub("c")))
    if (E.path().extension() == ".pfsnap")
      Newest = std::max(Newest, E.path().string());
  ASSERT_FALSE(Newest.empty());
  std::vector<uint8_t> Raw = readAll(Newest);
  Raw[Raw.size() - 2] ^= 0x40;
  ASSERT_TRUE(io::atomicWriteFile(Newest, Raw));

  std::vector<uint8_t> Recovered;
  ASSERT_TRUE(Store->recover(Recovered));
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(fuzz::openSnapshot(Recovered, Payload));
  EXPECT_EQ(Payload, bytesOf("good"));
  EXPECT_EQ(counterOf(Store->metrics(), "store.checkpoint.quarantined"), 1u);
  EXPECT_EQ(filesIn(Dir.sub("c") + "/quarantine"), 1u);

  // With the fallback also gone (payload-level damage only the resume
  // could see), quarantineRecovered() exhausts the store.
  Store->quarantineRecovered();
  EXPECT_FALSE(Store->recover(Recovered));
  EXPECT_EQ(filesIn(Dir.sub("c") + "/quarantine"), 2u);
}

TEST(CampaignStore, RefusesForeignSubjectAndFingerprint) {
  TempDir Dir;
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard);
  std::string Err;
  ASSERT_TRUE(CampaignStore::open(Dir.sub("c"), "small", Opts, &Err)) << Err;

  // Same directory, different subject: hard error naming both.
  EXPECT_FALSE(CampaignStore::open(Dir.sub("c"), "other", Opts, &Err));
  EXPECT_NE(Err.find("small"), std::string::npos) << Err;

  // Same subject, different schedule-relevant option: fingerprint error.
  CampaignOptions Changed = Opts;
  Changed.Seed += 1;
  EXPECT_FALSE(CampaignStore::open(Dir.sub("c"), "small", Changed, &Err));
  EXPECT_NE(Err.find("fingerprint"), std::string::npos) << Err;

  // Robustness knobs are deliberately NOT pinned: changing them reopens
  // the same store.
  CampaignOptions Knobs = Opts;
  Knobs.CheckpointInterval = 123;
  Knobs.WatchdogExecLimit = 999999;
  Knobs.StoreKeepLast = 7;
  EXPECT_TRUE(CampaignStore::open(Dir.sub("c"), "small", Knobs, &Err)) << Err;
}

TEST(CampaignStore, OpenSweepsStrayTemporaries) {
  TempDir Dir;
  const std::string C = Dir.sub("c");
  fs::create_directories(C);
  // A crash mid-atomicWriteFile leaves "<dest>.tmp"; open must sweep it.
  std::ofstream(C + "/ckpt-0001.pfsnap" + io::tmpSuffix()) << "torn";
  std::ofstream(C + "/manifest.pfm" + io::tmpSuffix()) << "torn";
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard);
  std::string Err;
  ASSERT_TRUE(CampaignStore::open(C, "small", Opts, &Err)) << Err;
  const std::string Suffix = io::tmpSuffix();
  for (const auto &E : fs::directory_iterator(C)) {
    const std::string P = E.path().string();
    EXPECT_FALSE(P.size() >= Suffix.size() &&
                 P.compare(P.size() - Suffix.size(), Suffix.size(), Suffix) ==
                     0)
        << "stray temporary survived open: " << P;
  }
  EXPECT_FALSE(fs::exists(C + "/ckpt-0001.pfsnap" + io::tmpSuffix()));
  EXPECT_FALSE(fs::exists(C + "/manifest.pfm" + io::tmpSuffix()));
}

//===----------------------------------------------------------------------===//
// runStoredCampaign
//===----------------------------------------------------------------------===//

TEST(StoredCampaign, ByteIdenticalToInMemoryAndDoneOnce) {
  Subject S = smallSubject();
  CampaignOptions Plain = baseOpts(FuzzerKind::Cull);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));

  TempDir Dir;
  CampaignOptions Stored = Plain;
  Stored.StoreDir = Dir.sub("c");
  Stored.CheckpointInterval = 1000;
  CampaignError Err;
  CampaignResult R = runCampaign(S, Stored, &Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(serializeCampaignResult(R), Ref);

  std::vector<StoreScanEntry> Scan = scanStoreRoot(Dir.path());
  ASSERT_EQ(Scan.size(), 1u);
  EXPECT_EQ(Scan[0].State, StoreState::Done);
  EXPECT_EQ(Scan[0].Subject, "small");
  EXPECT_EQ(Scan[0].Opts.Kind, FuzzerKind::Cull);
  EXPECT_EQ(Scan[0].Opts.Seed, Plain.Seed);
  EXPECT_EQ(serializeCampaignResult(Scan[0].Final), Ref);

  // A second stored run returns the recorded result without executing:
  // the watchdog would trip instantly if it re-ran.
  CampaignOptions Again = Stored;
  Again.WatchdogExecLimit = 1;
  CampaignResult R2 = runCampaign(S, Again, &Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(serializeCampaignResult(R2), Ref);
}

TEST(StoredCampaign, ResumesFromPersistedCheckpoints) {
  // Seed a store with the first checkpoints of a run, as if the process
  // had been killed there, and let the stored campaign finish the rest.
  Subject S = smallSubject();
  CampaignOptions Plain = baseOpts(FuzzerKind::Pcguard);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));
  std::vector<std::vector<uint8_t>> Ckpts = captureCheckpoints(S, Plain, 1000);
  ASSERT_GE(Ckpts.size(), 2u);

  TempDir Dir;
  std::string Err;
  {
    auto Store = CampaignStore::open(Dir.sub("c"), "small", Plain, &Err);
    ASSERT_TRUE(Store) << Err;
    ASSERT_TRUE(Store->writeCheckpoint(Ckpts[0], &Err)) << Err;
    ASSERT_TRUE(Store->writeCheckpoint(Ckpts[1], &Err)) << Err;
  }
  std::vector<StoreScanEntry> Scan = scanStoreRoot(Dir.path());
  ASSERT_EQ(Scan.size(), 1u);
  EXPECT_EQ(Scan[0].State, StoreState::Resumable);

  CampaignOptions Stored = Plain;
  Stored.StoreDir = Dir.sub("c");
  Stored.CheckpointInterval = 1000;
  Stored.Trace.Enabled = true;
  CampaignError CErr;
  CampaignResult R = runCampaign(S, Stored, &CErr);
  ASSERT_FALSE(CErr.Failed) << CErr.Message;
  EXPECT_EQ(serializeCampaignResult(R), Ref);
  if (telemetry::Compiled) {
    const telemetry::InstanceRecord *Rec = storeRecord(R.Trace);
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(counterOf(Rec->Metrics, "store.checkpoint.recovered"), 1u);
    EXPECT_EQ(counterOf(Rec->Metrics, "store.checkpoint.quarantined"), 0u);
  }
}

TEST(StoredCampaign, CorruptNewestCheckpointFallsBackAndCounts) {
  // The acceptance drill: corrupt the newest checkpoint, observe the run
  // fall back to the previous one, count store.checkpoint.quarantined,
  // and still end byte-identical.
  Subject S = smallSubject();
  CampaignOptions Plain = baseOpts(FuzzerKind::Pcguard);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));
  std::vector<std::vector<uint8_t>> Ckpts = captureCheckpoints(S, Plain, 1000);
  ASSERT_GE(Ckpts.size(), 2u);

  TempDir Dir;
  std::string Err;
  {
    auto Store = CampaignStore::open(Dir.sub("c"), "small", Plain, &Err);
    ASSERT_TRUE(Store) << Err;
    ASSERT_TRUE(Store->writeCheckpoint(Ckpts[0], &Err)) << Err;
    std::vector<uint8_t> Torn = Ckpts[1];
    Torn[Torn.size() / 2] ^= 0x10; // checksum now rejects the envelope
    ASSERT_TRUE(Store->writeCheckpoint(Torn, &Err)) << Err;
  }

  CampaignOptions Stored = Plain;
  Stored.StoreDir = Dir.sub("c");
  Stored.CheckpointInterval = 1000;
  Stored.Trace.Enabled = true;
  CampaignError CErr;
  CampaignResult R = runCampaign(S, Stored, &CErr);
  ASSERT_FALSE(CErr.Failed) << CErr.Message;
  EXPECT_EQ(serializeCampaignResult(R), Ref);
  EXPECT_EQ(filesIn(Dir.sub("c") + "/quarantine"), 1u);
  if (telemetry::Compiled) {
    const telemetry::InstanceRecord *Rec = storeRecord(R.Trace);
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(counterOf(Rec->Metrics, "store.checkpoint.quarantined"), 1u);
    EXPECT_EQ(counterOf(Rec->Metrics, "store.checkpoint.recovered"), 1u);
  }
}

TEST(StoredCampaign, SealedGarbageIsQuarantinedByTheDriver) {
  // A checkpoint whose envelope validates but whose payload does not
  // restore: only resumeCampaign can detect it, so the driver (not the
  // store scan) must quarantine and fall back.
  Subject S = smallSubject();
  CampaignOptions Plain = baseOpts(FuzzerKind::Pcguard);
  std::vector<uint8_t> Ref = serializeCampaignResult(runCampaign(S, Plain));
  std::vector<std::vector<uint8_t>> Ckpts = captureCheckpoints(S, Plain, 1000);
  ASSERT_FALSE(Ckpts.empty());

  TempDir Dir;
  std::string Err;
  {
    auto Store = CampaignStore::open(Dir.sub("c"), "small", Plain, &Err);
    ASSERT_TRUE(Store) << Err;
    ASSERT_TRUE(Store->writeCheckpoint(Ckpts[0], &Err)) << Err;
  }
  // Manufacture a NEWER checkpoint that is sealed-but-nonsense.
  ASSERT_TRUE(io::atomicWriteFile(Dir.sub("c") + "/ckpt-0099.pfsnap",
                                  fuzz::sealSnapshot(bytesOf("not a state"))));

  CampaignOptions Stored = Plain;
  Stored.StoreDir = Dir.sub("c");
  Stored.CheckpointInterval = 1000;
  Stored.Trace.Enabled = true;
  CampaignError CErr;
  CampaignResult R = runCampaign(S, Stored, &CErr);
  ASSERT_FALSE(CErr.Failed) << CErr.Message;
  EXPECT_EQ(serializeCampaignResult(R), Ref);
  EXPECT_EQ(filesIn(Dir.sub("c") + "/quarantine"), 1u);
  if (telemetry::Compiled) {
    const telemetry::InstanceRecord *Rec = storeRecord(R.Trace);
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(counterOf(Rec->Metrics, "store.checkpoint.quarantined"), 1u);
  }
}

TEST(StoredCampaign, ScanClassifiesEveryState) {
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard, 2000);
  TempDir Root;
  std::string Err;

  // a-done: a finished campaign.
  {
    CampaignOptions Stored = Opts;
    Stored.StoreDir = Root.sub("a-done");
    CampaignError CErr;
    runCampaign(S, Stored, &CErr);
    ASSERT_FALSE(CErr.Failed) << CErr.Message;
  }
  // b-fresh: manifest only, no checkpoint yet.
  ASSERT_TRUE(CampaignStore::open(Root.sub("b-fresh"), "small", Opts, &Err))
      << Err;
  // c-resumable: manifest plus one valid checkpoint.
  {
    auto Store = CampaignStore::open(Root.sub("c-resume"), "small", Opts, &Err);
    ASSERT_TRUE(Store) << Err;
    std::vector<std::vector<uint8_t>> Ckpts =
        captureCheckpoints(S, Opts, 1000);
    ASSERT_FALSE(Ckpts.empty());
    ASSERT_TRUE(Store->writeCheckpoint(Ckpts[0], &Err)) << Err;
  }
  // d-corrupt: a garbage manifest.
  fs::create_directories(Root.sub("d-corrupt"));
  ASSERT_TRUE(io::atomicWriteFile(Root.sub("d-corrupt") + "/manifest.pfm",
                                  std::string("garbage")));
  // e-unrelated: a directory the scan must skip entirely.
  fs::create_directories(Root.sub("e-unrelated"));
  std::ofstream(Root.sub("e-unrelated") + "/notes.txt") << "hi";

  std::vector<StoreScanEntry> Scan = scanStoreRoot(Root.path());
  ASSERT_EQ(Scan.size(), 4u);
  EXPECT_EQ(Scan[0].State, StoreState::Done);
  EXPECT_EQ(Scan[1].State, StoreState::Fresh);
  EXPECT_EQ(Scan[2].State, StoreState::Resumable);
  EXPECT_EQ(Scan[2].CheckpointFiles, 1u);
  EXPECT_EQ(Scan[3].State, StoreState::Corrupt);
  EXPECT_FALSE(Scan[3].Error.empty());

  // The supervisor entry points: a resumable scan entry round-trips into
  // runnable options that finish the campaign.
  const StoreScanEntry &E = Scan[2];
  EXPECT_EQ(E.Subject, "small");
  CampaignOptions Drive = E.Opts;
  Drive.StoreDir = E.Dir;
  CampaignError CErr;
  CampaignResult R = runStoredCampaign(S, Drive, &CErr);
  ASSERT_FALSE(CErr.Failed) << CErr.Message;
  EXPECT_EQ(serializeCampaignResult(R),
            serializeCampaignResult(Scan[0].Final));
}

TEST(StoredCampaign, EmptyStoreDirIsAnError) {
  Subject S = smallSubject();
  CampaignOptions Opts = baseOpts(FuzzerKind::Pcguard, 1000);
  CampaignError Err;
  runStoredCampaign(S, Opts, &Err);
  EXPECT_TRUE(Err.Failed);
}

//===----------------------------------------------------------------------===//
// Batch integration: PATHFUZZ_STORE
//===----------------------------------------------------------------------===//

TEST(StoredCampaign, BatchDerivesPerTrialDirsFromEnv) {
  Subject Small = smallSubject();
  Subject Other = otherSubject();
  std::vector<BatchJob> Jobs;
  Jobs.push_back({&Small, baseOpts(FuzzerKind::Pcguard, 2000)});
  Jobs.push_back({&Other, baseOpts(FuzzerKind::Cull, 2000)});
  Jobs[1].Opts.Seed = 9;

  std::vector<CampaignResult> Plain = runCampaigns(Jobs, 1);

  TempDir Root;
  ::setenv("PATHFUZZ_STORE", Root.path().c_str(), 1);
  std::vector<BatchJobStatus> Statuses;
  std::vector<CampaignResult> Stored = runCampaigns(Jobs, 1, nullptr, &Statuses);
  ::unsetenv("PATHFUZZ_STORE");

  ASSERT_EQ(Stored.size(), Plain.size());
  for (size_t I = 0; I < Plain.size(); ++I) {
    EXPECT_TRUE(Statuses[I].Ok) << Statuses[I].Error;
    EXPECT_EQ(serializeCampaignResult(Stored[I]),
              serializeCampaignResult(Plain[I]))
        << "job " << I;
  }
  // One directory per trial cell, named subject-kind-sSeed, all done.
  EXPECT_TRUE(fs::exists(Root.sub("small-pcguard-s5")));
  EXPECT_TRUE(fs::exists(Root.sub("other-cull-s9")));
  std::vector<StoreScanEntry> Scan = scanStoreRoot(Root.path());
  ASSERT_EQ(Scan.size(), 2u);
  for (const StoreScanEntry &E : Scan)
    EXPECT_EQ(E.State, StoreState::Done) << E.Dir;

  // Re-running the same batch against the same root resumes (here:
  // returns) every done trial byte-identically.
  ::setenv("PATHFUZZ_STORE", Root.path().c_str(), 1);
  std::vector<CampaignResult> Again = runCampaigns(Jobs, 1);
  ::unsetenv("PATHFUZZ_STORE");
  for (size_t I = 0; I < Plain.size(); ++I)
    EXPECT_EQ(serializeCampaignResult(Again[I]),
              serializeCampaignResult(Plain[I]));
}

} // namespace
