//===- PathAflTest.cpp - PathAFL comparator -------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "pathafl/PathAfl.h"

#include "cov/CoverageMap.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <set>

using namespace pathfuzz;

namespace {

/// A module whose main dispatches between two call orders; used to check
/// the call-path hashing observes orderings.
const char *CallOrderSrc = R"ml(
fn a(x) { return x + 1; }
fn b(x) { return x + 2; }
fn c(x) { return x + 3; }
fn d(x) { return x + 4; }
fn e(x) { return x + 5; }
fn f(x) { return x + 6; }
fn g(x) { return x + 7; }
fn main() {
  if (in(0) == 1) {
    return a(b(c(d(e(f(g(0)))))));
  }
  return g(f(e(d(c(b(a(0)))))));
}
)ml";

TEST(PathAfl, SelectionPicksASubsetOfFunctions) {
  unsigned Selected = 0;
  for (uint32_t F = 0; F < 64; ++F)
    Selected += pathafl::isSelectedFunction(F);
  EXPECT_GT(Selected, 4u);  // partial...
  EXPECT_LT(Selected, 40u); // ...but not full instrumentation
}

TEST(PathAfl, CallPathHashDistinguishesCallOrders) {
  lang::CompileResult CR = lang::compileSource(CallOrderSrc, "order");
  ASSERT_TRUE(CR.ok()) << CR.message();
  mir::Module M = std::move(*CR.Mod);
  instr::InstrumentOptions IO;
  IO.Mode = instr::Feedback::EdgeClassic;
  instr::InstrumentReport Rep = instr::instrumentModule(M, IO);

  vm::Vm Machine(M);
  vm::ExecOptions EO;

  auto touched = [&](uint8_t First) {
    cov::CoverageMap Map(16);
    vm::FeedbackContext Fb;
    Fb.Map = Map.data();
    Fb.MapMask = Map.mask();
    Fb.FuncKeys = Rep.FuncKeys.data();
    Fb.CallPathHash = true;
    uint8_t In[1] = {First};
    Machine.run(In, 1, EO, &Fb);
    std::set<uint32_t> Idx;
    for (uint32_t I = 0; I < Map.size(); ++I)
      if (Map.data()[I])
        Idx.insert(I);
    return Idx;
  };

  std::set<uint32_t> OrderA = touched(1);
  std::set<uint32_t> OrderB = touched(0);
  // Different call orders must produce (at least partially) different
  // hash entries beyond the shared block coverage.
  EXPECT_NE(OrderA, OrderB);
}

TEST(PathAfl, HashStepMatchesVmConstants) {
  // The helper mirrors the VM's hashing; a drift here silently decouples
  // the comparator's documentation from its implementation.
  uint64_t H = pathafl::callHashSeed();
  uint64_t H1 = pathafl::callHashStep(H, 3);
  uint64_t H2 = pathafl::callHashStep(H, 4);
  EXPECT_NE(H1, H2);
  EXPECT_EQ(pathafl::callHashStep(H, 3), H1);
  EXPECT_EQ(H, 0x50a7af1dULL);
}

} // namespace
