//===- CfgTest.cpp - CFG analyses ----------------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "TestUtil.h"
#include "analysis/Dominators.h"
#include "cfg/EdgeSplit.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

#include <set>

using namespace pathfuzz;
using namespace pathfuzz::cfg;

namespace {

/// entry -> header; header -> (body | exit); body -> header.
mir::Function loopFunction() {
  mir::FunctionBuilder FB("loop", 1);
  uint32_t H = FB.newBlock("h"), B = FB.newBlock("b"), X = FB.newBlock("x");
  FB.setBr(H);
  FB.setInsertPoint(H);
  FB.setCondBr(0, B, X);
  FB.setInsertPoint(B);
  FB.setBr(H);
  FB.setInsertPoint(X);
  FB.setRet(0);
  return FB.take();
}

TEST(Cfg, EdgesAndPreds) {
  mir::Function F = loopFunction();
  CfgView G(F);
  EXPECT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.edges().size(), 4u); // entry->h, h->b, h->x, b->h
  EXPECT_EQ(G.predEdges(1).size(), 2u);
  EXPECT_EQ(G.succEdges(1).size(), 2u);
  EXPECT_TRUE(G.isExitBlock(3));
  EXPECT_FALSE(G.isExitBlock(1));
}

TEST(Cfg, BackEdgeDetection) {
  mir::Function F = loopFunction();
  CfgView G(F);
  EXPECT_EQ(G.numBackEdges(), 1u);
  unsigned Found = 0;
  for (uint32_t E = 0; E < G.edges().size(); ++E) {
    if (G.isBackEdge(E)) {
      ++Found;
      EXPECT_EQ(G.edges()[E].Src, 2u);
      EXPECT_EQ(G.edges()[E].Dst, 1u);
    }
  }
  EXPECT_EQ(Found, 1u);
}

TEST(Cfg, SelfLoopIsABackEdge) {
  mir::FunctionBuilder FB("self", 1);
  uint32_t L = FB.newBlock("l"), X = FB.newBlock("x");
  FB.setBr(L);
  FB.setInsertPoint(L);
  FB.setCondBr(0, L, X);
  FB.setInsertPoint(X);
  FB.setRet(0);
  mir::Function F = FB.take();
  CfgView G(F);
  EXPECT_EQ(G.numBackEdges(), 1u);
}

TEST(Cfg, TopoOrderRespectsForwardEdges) {
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    Rng R(Seed);
    mir::Function F = test::randomFunction(R);
    CfgView G(F);
    std::vector<int> Position(G.numBlocks(), -1);
    const std::vector<uint32_t> &Topo = G.topoOrder();
    for (size_t I = 0; I < Topo.size(); ++I)
      Position[Topo[I]] = static_cast<int>(I);
    EXPECT_EQ(Topo.empty() ? 0u : Topo.front(), 0u);
    for (uint32_t E = 0; E < G.edges().size(); ++E) {
      if (G.isBackEdge(E))
        continue;
      const Edge &Ed = G.edges()[E];
      if (!G.isReachable(Ed.Src))
        continue;
      EXPECT_LT(Position[Ed.Src], Position[Ed.Dst])
          << "seed " << Seed << " edge " << Ed.Src << "->" << Ed.Dst;
    }
  }
}

TEST(Cfg, UnreachableBlocksExcluded) {
  mir::FunctionBuilder FB("u", 0);
  uint32_t Dead = FB.newBlock("dead");
  FB.setRetConst(0);
  FB.setInsertPoint(Dead);
  FB.setRetConst(1);
  mir::Function F = FB.take();
  CfgView G(F);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(Dead));
  for (uint32_t B : G.topoOrder())
    EXPECT_NE(B, Dead);
}

TEST(Cfg, Dominators) {
  mir::Function F = loopFunction();
  CfgView G(F);
  analysis::DominatorTree DT(G);
  EXPECT_EQ(DT.idom(1), 0u); // header dominated by entry
  EXPECT_EQ(DT.idom(2), 1u);
  EXPECT_EQ(DT.idom(3), 1u);
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_TRUE(DT.dominates(1, 2));
  EXPECT_FALSE(DT.dominates(2, 3));
  EXPECT_TRUE(DT.dominates(3, 3));
}

TEST(Cfg, LoopInfo) {
  mir::Function F = loopFunction();
  CfgView G(F);
  analysis::LoopInfo LI = analysis::LoopInfo::compute(G);
  ASSERT_EQ(LI.Headers.size(), 1u);
  EXPECT_EQ(LI.Headers[0], 1u);
  EXPECT_EQ(LI.InnermostHeader[1], 1u);
  EXPECT_EQ(LI.InnermostHeader[2], 1u);
  EXPECT_EQ(LI.InnermostHeader[0], UINT32_MAX);
  EXPECT_EQ(LI.InnermostHeader[3], UINT32_MAX);
}

TEST(Cfg, CriticalEdgeDetectionAndSplit) {
  // diamond with an extra edge entry->join: entry has 2 succs, join has 2
  // preds, so entry->join is critical.
  mir::FunctionBuilder FB("c", 1);
  uint32_t A = FB.newBlock("a"), J = FB.newBlock("j");
  FB.setCondBr(0, A, J);
  FB.setInsertPoint(A);
  FB.setBr(J);
  FB.setInsertPoint(J);
  FB.setRet(0);
  mir::Function F = FB.take();
  {
    CfgView G(F);
    uint32_t Critical = UINT32_MAX;
    for (uint32_t E = 0; E < G.edges().size(); ++E)
      if (G.isCriticalEdge(E))
        Critical = E;
    ASSERT_NE(Critical, UINT32_MAX);
    EXPECT_EQ(G.edges()[Critical].Src, 0u);
    EXPECT_EQ(G.edges()[Critical].Dst, J);
  }
  uint32_t NewBlock = splitEdge(F, 0, 1);
  EXPECT_EQ(NewBlock, 3u);
  EXPECT_EQ(F.Blocks[0].Term.Succs[1], NewBlock);
  EXPECT_EQ(F.Blocks[NewBlock].Term.Succs[0], J);
  mir::Module M;
  M.Funcs.push_back(F);
  M.Funcs.back().Name = "main";
  EXPECT_TRUE(mir::verifyModule(M).ok());
  CfgView G2(F);
  for (uint32_t E = 0; E < G2.edges().size(); ++E)
    EXPECT_FALSE(G2.isCriticalEdge(E));
}

} // namespace
