//===- VmTest.cpp - VM semantics and memory-safety checking -------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "lang/Compile.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::vm;

namespace {

mir::Module compile(const char *Src) {
  lang::CompileResult CR = lang::compileSource(Src, "t");
  EXPECT_TRUE(CR.ok()) << CR.message();
  return std::move(*CR.Mod);
}

ExecResult run(const mir::Module &M, const std::vector<uint8_t> &In = {},
               uint64_t StepLimit = 100000) {
  Vm Machine(M);
  ExecOptions EO;
  EO.StepLimit = StepLimit;
  return Machine.run(In.data(), In.size(), EO, nullptr);
}

TEST(Vm, ReturnsMainValue) {
  mir::Module M = compile("fn main() { return 41 + 1; }");
  EXPECT_EQ(run(M).ReturnValue, 42);
}

TEST(Vm, ArithmeticSemantics) {
  mir::Module M = compile(R"ml(
fn main() {
  var a = 7 / 2;
  var b = -7 / 2;
  var c = 7 % 3;
  var d = -7 % 3;
  var e = 1 << 10;
  var f = -16 >> 2;
  return a * 1000000 + (b + 10) * 10000 + c * 1000 + (d + 10) * 100
       + (e / 128) * 10 + (f + 10);
}
)ml");
  // a=3 b=-3 c=1 d=-1 e=1024 f=-4: 3 * 1e6 + 7*1e4 + 1000 + 900 + 80 + 6
  EXPECT_EQ(run(M).ReturnValue, 3071986);
}

TEST(Vm, DivByZeroFaults) {
  mir::Module M = compile("fn main() { return 1 / (len() - len()); }");
  ExecResult R = run(M);
  EXPECT_TRUE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, FaultKind::DivByZero);
}

TEST(Vm, HeapOobWriteFaults) {
  mir::Module M = compile(R"ml(
fn main() {
  var a[4];
  a[len()] = 1;   // OOB when input length >= 4
  return a[0];
}
)ml");
  EXPECT_FALSE(run(M, {1, 2, 3}).crashed());
  ExecResult R = run(M, {1, 2, 3, 4});
  EXPECT_TRUE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, FaultKind::OobWrite);
}

TEST(Vm, HeapOobReadAndNegativeIndexFault) {
  mir::Module M = compile(R"ml(
fn main() {
  var a[4];
  return a[0 - 1 - len()];
}
)ml");
  ExecResult R = run(M);
  EXPECT_EQ(R.TheFault.Kind, FaultKind::OobRead);
}

TEST(Vm, UseAfterFreeAndDoubleFree) {
  mir::Module UAF = compile(R"ml(
fn main() {
  var a[4];
  free(a);
  return a[0];
}
)ml");
  EXPECT_EQ(run(UAF).TheFault.Kind, FaultKind::UseAfterFree);

  mir::Module DF = compile(R"ml(
fn main() {
  var a[4];
  free(a);
  free(a);
  return 0;
}
)ml");
  EXPECT_EQ(run(DF).TheFault.Kind, FaultKind::DoubleFree);
}

TEST(Vm, FreeingGlobalIsInvalid) {
  mir::Module M = compile(R"ml(
global g[4];
fn main() { free(g); return 0; }
)ml");
  EXPECT_EQ(run(M).TheFault.Kind, FaultKind::InvalidFree);
}

TEST(Vm, WildPointerFaults) {
  mir::Module M = compile(R"ml(
fn main() {
  var p = 12345;
  return p[0];
}
)ml");
  EXPECT_EQ(run(M).TheFault.Kind, FaultKind::BadPointer);
}

TEST(Vm, AbortBuiltinFaults) {
  mir::Module M = compile("fn main() { abort(); return 0; }");
  EXPECT_EQ(run(M).TheFault.Kind, FaultKind::Abort);
}

TEST(Vm, StackOverflowOnDeepRecursion) {
  mir::Module M = compile(R"ml(
fn rec(n) { return rec(n + 1); }
fn main() { return rec(0); }
)ml");
  EXPECT_EQ(run(M).TheFault.Kind, FaultKind::StackOverflow);
}

TEST(Vm, StepLimitIsAHangNotACrash) {
  mir::Module M = compile("fn main() { while (1) { } return 0; }");
  ExecResult R = run(M, {}, 1000);
  EXPECT_TRUE(R.hung());
  EXPECT_FALSE(R.crashed());
  EXPECT_EQ(R.TheFault.Kind, FaultKind::StepLimit);
}

TEST(Vm, NegativeAllocationIsOutOfMemory) {
  mir::Module M = compile(R"ml(
fn main() {
  var a[0 - 5];
  return 0;
}
)ml");
  EXPECT_EQ(run(M).TheFault.Kind, FaultKind::OutOfMemory);
}

TEST(Vm, InputBuiltins) {
  mir::Module M = compile(R"ml(
fn main() {
  if (in(100) != -1) { return -1; }   // out of range reads -1
  return len() * 1000 + in(0) + in(len() - 1);
}
)ml");
  EXPECT_EQ(run(M, {7, 1, 9}).ReturnValue, 3016);
}

TEST(Vm, GlobalsAreReinitializedPerRun) {
  mir::Module M = compile(R"ml(
global g[3] = {5, 6};
fn main() {
  var old = g[0];
  g[0] = g[0] + 1;
  return old * 100 + g[2];
}
)ml");
  Vm Machine(M);
  ExecOptions EO;
  EXPECT_EQ(Machine.run(nullptr, 0, EO, nullptr).ReturnValue, 500);
  // Second run must see the pristine initializer again.
  EXPECT_EQ(Machine.run(nullptr, 0, EO, nullptr).ReturnValue, 500);
}

TEST(Vm, CallStackCapturedInnermostFirst) {
  mir::Module M = compile(R"ml(
fn inner() { var a[1]; return a[9]; }
fn outer() { return inner(); }
fn main() { return outer(); }
)ml");
  ExecResult R = run(M);
  ASSERT_TRUE(R.crashed());
  ASSERT_EQ(R.TheFault.Stack.size(), 3u);
  int Inner = M.findFunction("inner");
  int Main = M.findFunction("main");
  EXPECT_EQ(R.TheFault.Stack.front().Func, static_cast<uint32_t>(Inner));
  EXPECT_EQ(R.TheFault.Stack.back().Func, static_cast<uint32_t>(Main));
}

TEST(Vm, StackHashDistinguishesCallers) {
  mir::Module M = compile(R"ml(
fn crash() { var a[1]; return a[5]; }
fn via1() { return crash(); }
fn via2() { return crash(); }
fn main() {
  if (in(0) == 'a') { return via1(); }
  return via2();
}
)ml");
  ExecResult A = run(M, {'a'});
  ExecResult B = run(M, {'b'});
  ASSERT_TRUE(A.crashed());
  ASSERT_TRUE(B.crashed());
  // Same root cause, different stacks: the paper's unique-crash vs
  // unique-bug distinction.
  EXPECT_EQ(A.TheFault.bugId(), B.TheFault.bugId());
  EXPECT_NE(A.TheFault.stackHash(), B.TheFault.stackHash());
}

TEST(Vm, CmpLoggingCollectsOperands) {
  mir::Module M = compile(R"ml(
fn main() {
  if (in(0) == 77) { return 1; }
  if (len() < 1234) { return 2; }
  return 0;
}
)ml");
  Vm Machine(M);
  ExecOptions EO;
  EO.LogCmps = true;
  std::vector<uint8_t> In = {9};
  ExecResult R = Machine.run(In.data(), In.size(), EO, nullptr);
  bool Saw77 = false, Saw1234 = false;
  for (int64_t V : R.CmpOperands) {
    Saw77 |= (V == 77);
    Saw1234 |= (V == 1234);
  }
  EXPECT_TRUE(Saw77);
  EXPECT_TRUE(Saw1234);
}

TEST(Vm, ShadowEdgesRecordedAndSorted) {
  mir::Module M = compile(R"ml(
fn main() {
  var i = 0;
  var s = 0;
  while (i < len()) { s = s + in(i); i = i + 1; }
  return s;
}
)ml");
  instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(M);
  Vm Machine(M, &Shadow);
  ExecOptions EO;
  std::vector<uint8_t> In = {1, 2};
  ExecResult R = Machine.run(In.data(), In.size(), EO, nullptr);
  ASSERT_FALSE(R.ShadowEdges.empty());
  for (size_t I = 1; I < R.ShadowEdges.size(); ++I)
    EXPECT_LT(R.ShadowEdges[I - 1], R.ShadowEdges[I]);
  for (uint32_t Id : R.ShadowEdges)
    EXPECT_LT(Id, Shadow.numEdges());

  // A longer input takes the loop more times but adds no new edges.
  std::vector<uint8_t> In2 = {1, 2, 3, 4};
  ExecResult R2 = Machine.run(In2.data(), In2.size(), EO, nullptr);
  EXPECT_EQ(R.ShadowEdges, R2.ShadowEdges);
}

} // namespace
