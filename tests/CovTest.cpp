//===- CovTest.cpp - Coverage map and novelty detection -----------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cov/CoverageMap.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::cov;

namespace {

TEST(CoverageMap, BucketingMatchesAfl) {
  EXPECT_EQ(CoverageMap::bucketFor(0), 0);
  EXPECT_EQ(CoverageMap::bucketFor(1), 1);
  EXPECT_EQ(CoverageMap::bucketFor(2), 2);
  EXPECT_EQ(CoverageMap::bucketFor(3), 4);
  EXPECT_EQ(CoverageMap::bucketFor(4), 8);
  EXPECT_EQ(CoverageMap::bucketFor(7), 8);
  EXPECT_EQ(CoverageMap::bucketFor(8), 16);
  EXPECT_EQ(CoverageMap::bucketFor(15), 16);
  EXPECT_EQ(CoverageMap::bucketFor(16), 32);
  EXPECT_EQ(CoverageMap::bucketFor(31), 32);
  EXPECT_EQ(CoverageMap::bucketFor(32), 64);
  EXPECT_EQ(CoverageMap::bucketFor(127), 64);
  EXPECT_EQ(CoverageMap::bucketFor(128), 128);
  EXPECT_EQ(CoverageMap::bucketFor(255), 128);
}

TEST(CoverageMap, ClassifiedValuesAreSingleBitBuckets) {
  // Classified entries are one-hot bucket masks (that is what lets the
  // virgin map track per-bucket novelty with bitwise AND). Note AFL's
  // classification is deliberately *not* idempotent — it runs exactly
  // once per trace.
  CoverageMap Map(8);
  Rng R(1);
  for (int I = 0; I < 100; ++I)
    Map.data()[R.below(Map.size())] = static_cast<uint8_t>(R.next());
  Map.classifyCounts();
  for (uint32_t I = 0; I < Map.size(); ++I) {
    uint8_t V = Map.data()[I];
    EXPECT_TRUE(V == 0 || (V & (V - 1)) == 0) << "value " << int(V);
  }
}

TEST(CoverageMap, ClassifyMatchesScalarReference) {
  CoverageMap Map(10);
  Rng R(7);
  std::vector<uint8_t> Ref(Map.size(), 0);
  for (int I = 0; I < 500; ++I) {
    uint32_t Idx = static_cast<uint32_t>(R.below(Map.size()));
    uint8_t V = static_cast<uint8_t>(R.next());
    Map.data()[Idx] = V;
    Ref[Idx] = V;
  }
  Map.classifyCounts();
  for (uint32_t I = 0; I < Map.size(); ++I)
    ASSERT_EQ(Map.data()[I], CoverageMap::bucketFor(Ref[I])) << I;
}

TEST(CoverageMap, CountBytes) {
  CoverageMap Map(8);
  EXPECT_EQ(Map.countBytes(), 0u);
  Map.data()[3] = 1;
  Map.data()[200] = 128;
  EXPECT_EQ(Map.countBytes(), 2u);
  Map.reset();
  EXPECT_EQ(Map.countBytes(), 0u);
}

TEST(VirginMap, DetectsNewEdgesThenNewCountsThenNothing) {
  CoverageMap Trace(8);
  VirginMap Virgin(Trace.size());

  Trace.data()[10] = 1;
  Trace.classifyCounts();
  EXPECT_EQ(Virgin.hasNewBits(Trace), Novelty::NewEdges);
  EXPECT_EQ(Virgin.hasNewBits(Trace), Novelty::None);

  // Same entry, higher hit bucket: NewCounts.
  Trace.reset();
  Trace.data()[10] = 9; // bucket 16
  Trace.classifyCounts();
  EXPECT_EQ(Virgin.hasNewBits(Trace), Novelty::NewCounts);
  EXPECT_EQ(Virgin.hasNewBits(Trace), Novelty::None);

  // A different entry: NewEdges again, even with old entries present.
  Trace.data()[99] = 1;
  Trace.classifyCounts();
  EXPECT_EQ(Virgin.hasNewBits(Trace), Novelty::NewEdges);
  EXPECT_EQ(Virgin.coveredEntries(), 2u);
}

TEST(VirginMap, WouldHaveAgreesWithHas) {
  Rng R(3);
  for (int Round = 0; Round < 50; ++Round) {
    CoverageMap Trace(6);
    VirginMap Virgin(Trace.size());
    // Pre-populate the virgin map.
    for (int I = 0; I < 20; ++I) {
      Trace.data()[R.below(Trace.size())] = static_cast<uint8_t>(R.next());
    }
    Trace.classifyCounts();
    Virgin.hasNewBits(Trace);

    CoverageMap Next(6);
    for (int I = 0; I < 10; ++I)
      Next.data()[R.below(Next.size())] = static_cast<uint8_t>(R.next());
    Next.classifyCounts();
    Novelty Predicted = Virgin.wouldHaveNewBits(Next);
    Novelty Actual = Virgin.hasNewBits(Next);
    ASSERT_EQ(Predicted, Actual) << "round " << Round;
    ASSERT_EQ(Virgin.hasNewBits(Next), Novelty::None);
  }
}

} // namespace
