//===- EdgeCasesTest.cpp - Cross-module edge cases -----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "strategy/Campaign.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace pathfuzz;

namespace {

TEST(LexerEdge, BadHexAndUnterminatedComment) {
  {
    lang::Lexer L("0x");
    L.lexAll();
    EXPECT_FALSE(L.errors().empty());
  }
  {
    lang::Lexer L("fn /* never closed");
    L.lexAll();
    EXPECT_FALSE(L.errors().empty());
  }
  {
    lang::Lexer L("'a");
    L.lexAll();
    EXPECT_FALSE(L.errors().empty());
  }
}

TEST(ParserEdge, GlobalDeclarations) {
  {
    lang::Parser P("global g[4] = {1, -2, 3}; fn main() { return g[1]; }");
    auto Prog = P.parseProgram();
    ASSERT_TRUE(Prog.has_value()) << "negative initializers must parse";
    ASSERT_EQ(Prog->Globals.size(), 1u);
    EXPECT_EQ(Prog->Globals[0].Init[1], -2);
  }
  {
    lang::Parser P("global g[x]; fn main() { return 0; }");
    EXPECT_FALSE(P.parseProgram().has_value())
        << "global sizes must be literals";
  }
}

TEST(CompileEdge, HugeGlobalRejected) {
  lang::CompileResult CR = lang::compileSource(
      "global g[99999999]; fn main() { return 0; }", "t");
  EXPECT_FALSE(CR.ok());
}

TEST(VmEdge, GlobalInitLongerThanSizeIsTruncated) {
  // The frontend can't produce this, but hand-built modules can; the VM
  // must clamp rather than scribble.
  lang::CompileResult CR =
      lang::compileSource("global g[2]; fn main() { return g[1]; }", "t");
  ASSERT_TRUE(CR.ok());
  mir::Module Mod = std::move(*CR.Mod);
  Mod.Globals[0].Init = {7, 8, 9, 10}; // oversized on purpose
  vm::Vm Machine(Mod);
  vm::ExecOptions EO;
  vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_FALSE(R.crashed());
  EXPECT_EQ(R.ReturnValue, 8);
}

TEST(VmEdge, HeapCellLimitTriggersOom) {
  lang::CompileResult CR = lang::compileSource(R"ml(
fn main() {
  var i = 0;
  while (i < 1000) {
    var a[4096];
    a[0] = i;
    i = i + 1;
  }
  return i;
}
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  EO.HeapCellLimit = 64 * 1024;
  vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OutOfMemory);
}

TEST(VmEdge, ObjectCountLimitTriggersOom) {
  // Many tiny allocations exhaust MaxObjects long before the cell limit.
  lang::CompileResult CR = lang::compileSource(R"ml(
fn main() {
  var i = 0;
  while (i < 100) {
    var a[1];
    a[0] = i;
    i = i + 1;
  }
  return i;
}
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO;
  EO.MaxObjects = 16;
  vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OutOfMemory);
}

TEST(VmEdge, RunawayRecursionTriggersStackOverflow) {
  lang::CompileResult CR = lang::compileSource(R"ml(
fn down(n) { return down(n + 1); }
fn main() { return down(0); }
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  vm::Vm Machine(*CR.Mod);
  vm::ExecOptions EO; // default MaxCallDepth
  vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
  EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::StackOverflow);
}

TEST(VmEdge, HeapCellLimitBoundaryIsExact) {
  // One 8-cell allocation against an exactly-8-cell budget succeeds;
  // against a 7-cell budget it faults. The limit is a boundary, not a
  // fudge factor.
  lang::CompileResult CR = lang::compileSource(R"ml(
fn main() {
  var a[8];
  a[7] = 5;
  return a[7];
}
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  vm::Vm Machine(*CR.Mod);
  {
    vm::ExecOptions EO;
    EO.HeapCellLimit = 8;
    vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
    EXPECT_FALSE(R.crashed());
    EXPECT_EQ(R.ReturnValue, 5);
  }
  {
    vm::ExecOptions EO;
    EO.HeapCellLimit = 7;
    vm::ExecResult R = Machine.run(nullptr, 0, EO, nullptr);
    EXPECT_EQ(R.TheFault.Kind, vm::FaultKind::OutOfMemory);
  }
}

TEST(MutatorEdge, EmptyInputBecomesNonEmpty) {
  Rng R(1);
  fuzz::MutatorConfig MC;
  fuzz::Mutator M(R, MC);
  fuzz::Input Data;
  M.mutateOnce(Data, {});
  EXPECT_FALSE(Data.empty());
}

TEST(InstrumentEdge, ClassicBlockIdsFitTheMap) {
  lang::CompileResult CR = lang::compileSource(R"ml(
fn f(a) { if (a) { return 1; } return 2; }
fn main() { return f(len()); }
)ml",
                                               "t");
  ASSERT_TRUE(CR.ok());
  mir::Module M = std::move(*CR.Mod);
  instr::InstrumentOptions IO;
  IO.Mode = instr::Feedback::EdgeClassic;
  IO.MapSizeLog2 = 10;
  instr::instrumentModule(M, IO);
  for (const auto &F : M.Funcs)
    for (const auto &BB : F.Blocks)
      for (const auto &I : BB.Instrs)
        if (I.Op == mir::Opcode::BlockProbe) {
          EXPECT_LT(I.Imm, 1 << 10);
        }
}

TEST(CampaignEdge, ZeroBudgetStillTerminates) {
  strategy::Subject S;
  S.Name = "tiny";
  S.Source = "fn main() { return in(0); }";
  S.Seeds = {{1, 2, 3}};
  strategy::CampaignOptions Opts;
  Opts.Kind = strategy::FuzzerKind::Cull;
  Opts.ExecBudget = 1;
  strategy::CampaignResult R = strategy::runCampaign(S, Opts);
  EXPECT_GE(R.Execs, 1u);
}

TEST(CampaignEdge, SubjectWhoseSeedsAllCrashStillRuns) {
  strategy::Subject S;
  S.Name = "crashy";
  S.Source = R"ml(
fn main() {
  var a[2];
  if (len() > 0 && in(0) > 100) { a[5] = 1; }
  return 0;
}
)ml";
  S.Seeds = {{200}}; // crashes immediately
  strategy::CampaignOptions Opts;
  Opts.Kind = strategy::FuzzerKind::Path;
  Opts.ExecBudget = 3000;
  strategy::CampaignResult R = strategy::runCampaign(S, Opts);
  EXPECT_GE(R.BugIds.size(), 1u);
  EXPECT_GE(R.Execs, 3000u);
}

} // namespace
