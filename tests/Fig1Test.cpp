//===- Fig1Test.cpp - The paper's motivating claim, as a test -------------------===//
//
// Part of the pathfuzz project.
//
// Section II-B's narrative, executed literally: after the fuzzer has seen
// (a) an input taking the rare j=3 path with a non-'h' first byte and
// (b) an input taking the common path with an 'h' first byte, a third
// input combining the rare path WITH the 'h' branch is
//
//   - NOT novel under edge coverage (every edge was individually seen),
//   - novel under the Ball-Larus path feedback (the combination is a new
//     acyclic path),
//
// and a pure length mutation of that retained input triggers the planted
// heap overflow.
//
//===----------------------------------------------------------------------===//

#include "cov/CoverageMap.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace pathfuzz;

namespace {

const char *Fig1 = R"ml(
global arr[56];
fn main() {
  var n = len();
  if (n - 2 > 54 || n < 3) { return 0; }
  var j;
  if (n % 4 == 0 && n > 39) { j = 3; } else { j = -2; }
  var c = in(0);
  if (c == 'h') {
    arr[n + j] = 7;
  } else {
    if (j < 0) { j = -j; }
    arr[j] = 0;
  }
  return 0;
}
)ml";

std::vector<uint8_t> inputOfLen(size_t N, char First) {
  std::vector<uint8_t> In(N, 'x');
  if (N)
    In[0] = static_cast<uint8_t>(First);
  return In;
}

struct Feedback {
  mir::Module Mod;
  instr::InstrumentReport Rep;
  cov::CoverageMap Trace{16};
  cov::VirginMap Virgin{1u << 16};
  vm::Vm Machine;

  // Mod and Rep are members declared before Machine, so instrumenting in
  // Machine's initializer (comma expression) is safe and keeps Machine's
  // module reference pointing at the instrumented copy.
  Feedback(const mir::Module &Base, instr::Feedback Mode)
      : Mod(Base), Machine((instrumentInto(Mod, Mode, Rep), Mod)) {}

  static void instrumentInto(mir::Module &M, instr::Feedback Mode,
                             instr::InstrumentReport &Rep) {
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    Rep = instr::instrumentModule(M, IO);
  }

  /// Run an input; returns (novelty, crashed).
  std::pair<cov::Novelty, bool> run(const std::vector<uint8_t> &In) {
    Trace.reset();
    vm::FeedbackContext Fb;
    Fb.Map = Trace.data();
    Fb.MapMask = Trace.mask();
    Fb.FuncKeys = Rep.FuncKeys.data();
    vm::ExecOptions EO;
    vm::ExecResult R = Machine.run(In.data(), In.size(), EO, &Fb);
    Trace.classifyCounts();
    return {Virgin.hasNewBits(Trace), R.crashed()};
  }
};

TEST(Fig1, PathFeedbackRetainsTheCrucialIntermediate) {
  lang::CompileResult CR = lang::compileSource(Fig1, "fig1");
  ASSERT_TRUE(CR.ok()) << CR.message();

  Feedback Edge(*CR.Mod, instr::Feedback::EdgePrecise);
  Feedback Path(*CR.Mod, instr::Feedback::Path);

  // History: rare path without 'h', then common path with 'h'.
  auto RareNoH = inputOfLen(44, 'x'); // 44 % 4 == 0 && 44 > 39 -> j = 3
  auto CommonH = inputOfLen(21, 'h'); // common path, 'h' branch
  for (auto *F : {&Edge, &Path}) {
    EXPECT_NE(F->run(RareNoH).first, cov::Novelty::None);
    EXPECT_NE(F->run(CommonH).first, cov::Novelty::None);
  }

  // The crucial intermediate: rare path AND 'h', still benign (44+3 < 56).
  auto RareH = inputOfLen(44, 'h');
  auto [EdgeNov, EdgeCrash] = Edge.run(RareH);
  auto [PathNov, PathCrash] = Path.run(RareH);
  ASSERT_FALSE(EdgeCrash);
  ASSERT_FALSE(PathCrash);
  EXPECT_EQ(EdgeNov, cov::Novelty::None)
      << "edge coverage must consider the intermediate stale";
  EXPECT_NE(PathNov, cov::Novelty::None)
      << "the path feedback must retain the intermediate";

  // A pure length mutation of the retained input triggers the bug.
  auto Bug = inputOfLen(56, 'h'); // 56 % 4 == 0, 56 + 3 >= 56
  EXPECT_TRUE(Path.run(Bug).second);
}

} // namespace
