//===- InstrumentTest.cpp - Instrumentation pass properties -------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrument.h"

#include "TestUtil.h"
#include "cov/CoverageMap.h"
#include "mir/Verifier.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::instr;

namespace {

std::vector<uint8_t> randomInput(Rng &R) {
  std::vector<uint8_t> In(R.below(24));
  for (auto &B : In)
    B = static_cast<uint8_t>(R.next());
  return In;
}

vm::ExecResult runOn(const mir::Module &M, const ShadowEdgeIndex &Shadow,
                     const std::vector<uint8_t> &In, uint8_t *Map,
                     uint32_t Mask, const uint64_t *Keys) {
  vm::Vm Machine(M, &Shadow);
  vm::ExecOptions EO;
  EO.StepLimit = 200000;
  vm::FeedbackContext Fb;
  Fb.Map = Map;
  Fb.MapMask = Mask;
  Fb.FuncKeys = Keys;
  return Machine.run(In.data(), In.size(), EO, Map ? &Fb : nullptr);
}

class InstrumentRandom : public ::testing::TestWithParam<uint64_t> {};

/// Instrumentation must not change observable behaviour: same return
/// value, same fault (site and kind, in normalized coordinates), and the
/// same shadow edge set — across every feedback mode.
TEST_P(InstrumentRandom, PreservesSemanticsAndShadowEdges) {
  Rng R(GetParam());
  mir::Module Base = test::moduleWith(test::randomFunction(R));
  ASSERT_TRUE(mir::verifyModule(Base).ok());
  ShadowEdgeIndex Shadow = ShadowEdgeIndex::build(Base);

  std::vector<std::vector<uint8_t>> Inputs;
  for (int I = 0; I < 8; ++I)
    Inputs.push_back(randomInput(R));

  for (Feedback Mode : {Feedback::EdgePrecise, Feedback::EdgeClassic,
                        Feedback::Path}) {
    mir::Module Inst = Base;
    InstrumentOptions IO;
    IO.Mode = Mode;
    instrumentModule(Inst, IO);
    ASSERT_TRUE(mir::verifyModule(Inst).ok());

    for (const auto &In : Inputs) {
      vm::ExecResult A = runOn(Base, Shadow, In, nullptr, 0, nullptr);
      vm::ExecResult B = runOn(Inst, Shadow, In, nullptr, 0, nullptr);
      if (A.hung() || B.hung()) {
        // Probes add steps; a run near the limit may time out in one mode
        // only. Loop-free comparisons below still hold for the rest.
        continue;
      }
      ASSERT_EQ(A.ReturnValue, B.ReturnValue) << "mode " << int(Mode);
      ASSERT_EQ(A.TheFault.Kind, B.TheFault.Kind);
      ASSERT_EQ(A.TheFault.bugId(), B.TheFault.bugId());
      ASSERT_EQ(A.TheFault.stackHash(), B.TheFault.stackHash());
      ASSERT_EQ(A.ShadowEdges, B.ShadowEdges) << "mode " << int(Mode);
    }
  }
}

/// Path probes must emit IDs in [0, NumPaths) at run time: with a zero
/// function key and a map larger than any per-function path count, every
/// touched map index is a valid path ID.
TEST_P(InstrumentRandom, RuntimePathIdsAreInRange) {
  Rng R(GetParam() ^ 0xabcdef);
  mir::Module M = test::moduleWith(test::randomFunction(R));
  ShadowEdgeIndex Shadow = ShadowEdgeIndex::build(M);

  InstrumentOptions IO;
  IO.Mode = Feedback::Path;
  InstrumentReport Rep = instrumentModule(M, IO);

  uint64_t MaxPaths = 0;
  for (const auto &Info : Rep.PerFunction)
    MaxPaths = std::max(MaxPaths, Info.NumPaths);
  if (MaxPaths == 0 || MaxPaths > (1u << 16) ||
      Rep.TotalPathFallbacks > 0)
    GTEST_SKIP() << "unsuitable path count for the in-range check";

  cov::CoverageMap Map(16);
  for (int I = 0; I < 16; ++I) {
    Map.reset();
    auto In = randomInput(R);
    runOn(M, Shadow, In, Map.data(), Map.mask(), /*Keys=*/nullptr);
    for (uint32_t Idx = 0; Idx < Map.size(); ++Idx) {
      if (Map.data()[Idx]) {
        ASSERT_LT(Idx, MaxPaths) << "flushed path ID out of range";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstrumentRandom,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Instrument, EdgePreciseAssignsUniqueIds) {
  Rng R(5);
  mir::Module M = test::moduleWith(test::randomFunction(R));
  InstrumentOptions IO;
  IO.Mode = Feedback::EdgePrecise;
  InstrumentReport Rep = instrumentModule(M, IO);
  EXPECT_GT(Rep.NumEdgeIds, 0u);
  EXPECT_EQ(Rep.TotalProbes, Rep.NumEdgeIds);

  // Every probe ID appears exactly once in the module.
  std::vector<int> Seen(Rep.NumEdgeIds, 0);
  for (const auto &F : M.Funcs)
    for (const auto &BB : F.Blocks)
      for (const auto &I : BB.Instrs)
        if (I.Op == mir::Opcode::EdgeProbe)
          Seen[static_cast<size_t>(I.Imm)]++;
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], 1) << "edge id " << I;
}

TEST(Instrument, PathOverflowFallsBackToEdgeProbes) {
  // 24 stacked diamonds: ~16M paths, above the configured cap.
  mir::FunctionBuilder FB("wide", 0);
  uint32_t Prev = 0;
  mir::Reg C = FB.emitInLen();
  for (int K = 0; K < 24; ++K) {
    uint32_t A = FB.newBlock(), B = FB.newBlock(), J = FB.newBlock();
    FB.setCondBr(C, A, B);
    FB.setInsertPoint(A);
    FB.setBr(J);
    FB.setInsertPoint(B);
    FB.setBr(J);
    FB.setInsertPoint(J);
    Prev = J;
  }
  FB.setInsertPoint(Prev);
  FB.setRetConst(0);
  mir::Module M;
  M.Name = "m";
  mir::Function F = FB.take();
  F.Name = "main";
  M.Funcs.push_back(std::move(F));

  InstrumentOptions IO;
  IO.Mode = Feedback::Path;
  IO.MaxPathsPerFunction = 1 << 20;
  InstrumentReport Rep = instrumentModule(M, IO);
  EXPECT_EQ(Rep.TotalPathFallbacks, 1u);
  EXPECT_GT(Rep.NumEdgeIds, 0u);
  EXPECT_TRUE(mir::verifyModule(M).ok());
}

TEST(Instrument, ShadowEdgeIdsStableAcrossModes) {
  Rng R(11);
  mir::Module Base = test::moduleWith(test::randomFunction(R));
  ShadowEdgeIndex Shadow = ShadowEdgeIndex::build(Base);
  // Shadow numbering is built pre-instrumentation; trampolines added later
  // must map to UINT32_MAX and original (block, slot) pairs keep their ID.
  mir::Module Inst = Base;
  InstrumentOptions IO;
  IO.Mode = Feedback::Path;
  instrumentModule(Inst, IO);
  for (uint32_t FIdx = 0; FIdx < Base.Funcs.size(); ++FIdx) {
    uint32_t Orig = Shadow.origBlocks(FIdx);
    EXPECT_EQ(Orig, Base.Funcs[FIdx].numBlocks());
    for (uint32_t B = 0; B < Inst.Funcs[FIdx].numBlocks(); ++B) {
      if (B >= Orig) {
        EXPECT_EQ(Shadow.edgeId(FIdx, B, 0), UINT32_MAX);
      }
    }
  }
}

} // namespace
