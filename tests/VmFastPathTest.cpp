//===- VmFastPathTest.cpp - Fast path vs reference interpreter identity -------===//
//
// Part of the pathfuzz project.
//
// The identity contract of the pre-decoded fast path (vm/Image.h,
// vm/Exec.cpp): for every module, every input and every feedback mode it
// produces bit-identical observable results to the reference
// interpreter — same fault record (kind, coordinates, stack hash), same
// step count, same return value, same coverage-map bytes, same shadow
// edges and cmp log, same heap accounting. The suite pins that contract
// three ways:
//
//  - every example subject (examples/minilang/*.ml) replayed per-exec
//    through both engines across all feedback modes;
//  - a randomized property test over arbitrary generated CFGs (loops,
//    unreachable blocks, step-limit hangs);
//  - whole campaigns compared through serializeCampaignResult and their
//    telemetry traces (which must agree apart from the fast-path-only
//    vm.fastpath.* metric family);
//
// plus snapshot-reset correctness: dirtied global pages must be restored
// between executions exactly as the interpreter's fresh materialization
// would, and the reset stats must account for them.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cov/CoverageMap.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "strategy/BuildCache.h"
#include "support/Env.h"
#include "vm/Image.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pathfuzz;
using namespace pathfuzz::strategy;

namespace {

#ifdef PATHFUZZ_SOURCE_DIR
const char *ExamplesDir = PATHFUZZ_SOURCE_DIR "/examples/minilang";
#else
const char *ExamplesDir = "examples/minilang";
#endif

std::string slurp(const std::string &Path) {
  std::ifstream F(Path);
  std::ostringstream SS;
  SS << F.rdbuf();
  return SS.str();
}

const char *const ExampleNames[] = {"sum", "lookup", "checksum", "tokens",
                                    "rle"};

/// The example subjects, with deterministic seeds sized so the loop
/// subjects actually iterate.
std::vector<Subject> exampleSubjects() {
  std::vector<Subject> Out;
  for (const char *Name : ExampleNames) {
    Subject S;
    S.Name = Name;
    S.Source = slurp(std::string(ExamplesDir) + "/" + Name + ".ml");
    EXPECT_FALSE(S.Source.empty()) << "missing example " << Name;
    fuzz::Input In(256);
    Rng R(7);
    for (uint8_t &B : In)
      B = static_cast<uint8_t>(R.below(256));
    S.Seeds.push_back(std::move(In));
    Out.push_back(std::move(S));
  }
  return Out;
}

/// Deterministic mutated-seed workload (independent of the engine).
std::vector<fuzz::Input> workload(const Subject &S, size_t Count,
                                  uint64_t Seed) {
  std::vector<fuzz::Input> Inputs = S.Seeds;
  Rng R(Seed);
  while (Inputs.size() < Count) {
    fuzz::Input In = S.Seeds[R.index(S.Seeds.size())];
    for (int M = 0; M < 4; ++M)
      In[R.index(In.size())] = static_cast<uint8_t>(R.below(256));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

/// Field-level identity of two executions. DirtyGlobalCells is the one
/// deliberate exception: it is fast-path bookkeeping, always zero on the
/// reference interpreter.
void expectSameResult(const vm::ExecResult &A, const vm::ExecResult &B,
                      const char *What) {
  EXPECT_EQ(A.TheFault.Kind, B.TheFault.Kind) << What;
  EXPECT_EQ(A.TheFault.Func, B.TheFault.Func) << What;
  EXPECT_EQ(A.TheFault.Block, B.TheFault.Block) << What;
  EXPECT_EQ(A.TheFault.InstrIdx, B.TheFault.InstrIdx) << What;
  EXPECT_EQ(A.TheFault.stackHash(), B.TheFault.stackHash()) << What;
  EXPECT_EQ(A.Steps, B.Steps) << What;
  EXPECT_EQ(A.ReturnValue, B.ReturnValue) << What;
  EXPECT_EQ(A.ShadowEdges, B.ShadowEdges) << What;
  EXPECT_EQ(A.CmpOperands, B.CmpOperands) << What;
  EXPECT_EQ(A.HeapAllocs, B.HeapAllocs) << What;
  EXPECT_EQ(A.HeapCellsAllocated, B.HeapCellsAllocated) << What;
}

/// Replay the workload through a fresh interpreter Vm and a fresh
/// fast-path Vm sharing one image; compare every observable per exec.
void expectEngineIdentity(const mir::Module &M,
                          const instr::ShadowEdgeIndex *Shadow,
                          const vm::ProgramImage &Image,
                          const std::vector<fuzz::Input> &Inputs,
                          const uint64_t *FuncKeys, const char *What) {
  vm::Vm Interp(M, Shadow);
  vm::Vm Fast(M, Shadow);
  Fast.attachImage(&Image);
  cov::CoverageMap MapI(16), MapF(16);
  for (size_t K = 0; K < Inputs.size(); ++K) {
    const fuzz::Input &In = Inputs[K];
    vm::ExecOptions EO;
    EO.StepLimit = 200000;
    EO.LogCmps = true;
    MapI.reset();
    MapF.reset();
    vm::FeedbackContext FbI, FbF;
    FbI.Map = MapI.data();
    FbI.MapMask = MapI.mask();
    FbI.FuncKeys = FuncKeys;
    FbF.Map = MapF.data();
    FbF.MapMask = MapF.mask();
    FbF.FuncKeys = FuncKeys;
    vm::ExecResult RI = Interp.run(In.data(), In.size(), EO, &FbI);
    vm::ExecResult RF = Fast.run(In.data(), In.size(), EO, &FbF);
    expectSameResult(RI, RF, What);
    EXPECT_EQ(std::memcmp(MapI.data(), MapF.data(), MapI.size()), 0)
        << What << " input " << K << ": coverage maps diverge";
  }
}

/// Per-exec identity on every example subject under every feedback mode.
TEST(VmFastPath, ExampleSubjectsIdentity) {
  for (const Subject &S : exampleSubjects()) {
    BuildCache Cache;
    std::shared_ptr<SubjectBuild> SB = Cache.get(S);
    CampaignOptions O;
    O.VmMode = vm::VmExecMode::FastPath;
    for (instr::Feedback Mode :
         {instr::Feedback::None, instr::Feedback::EdgePrecise,
          instr::Feedback::EdgeClassic, instr::Feedback::Path}) {
      const InstrumentedBuild &IB = SB->instrumented(Mode, O);
      ASSERT_NE(IB.Image, nullptr);
      std::string What =
          S.Name + "/feedback" + std::to_string(static_cast<int>(Mode));
      expectEngineIdentity(IB.Mod, &SB->shadow(), *IB.Image,
                           workload(S, 48, 0x5eedbeef),
                           IB.Report.FuncKeys.data(), What.c_str());
    }
  }
}

/// Randomized property test: arbitrary generated CFGs (back edges, self
/// loops, unreachable blocks, step-limit hangs), instrumented with
/// Ball-Larus path probes, must execute identically through both
/// engines.
TEST(VmFastPath, RandomizedMirIdentity) {
  Rng R(20260807);
  for (int Trial = 0; Trial < 150; ++Trial) {
    mir::Module M = test::moduleWith(test::randomFunction(R));
    instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(M);
    instr::InstrumentOptions IO;
    IO.Mode = Trial % 2 ? instr::Feedback::Path : instr::Feedback::EdgePrecise;
    IO.Seed = R.below(1u << 30);
    instr::InstrumentReport Rep = instr::instrumentModule(M, IO);
    vm::ProgramImage Image = vm::ProgramImage::build(M, &Shadow);

    std::vector<fuzz::Input> Inputs;
    for (int K = 0; K < 6; ++K) {
      fuzz::Input In(R.below(12));
      for (uint8_t &B : In)
        B = static_cast<uint8_t>(R.below(256));
      Inputs.push_back(std::move(In));
    }
    std::string What = "random trial " + std::to_string(Trial);
    expectEngineIdentity(M, &Shadow, Image, Inputs, Rep.FuncKeys.data(),
                         What.c_str());
  }
}

/// Strip the engine-local metric families (vm.fastpath.*, vm.selective.*),
/// the only permitted divergence between traced campaigns run on different
/// engines. The family list lives in telemetry::isEngineLocalMetric — the
/// shared definition all identity tests use.
template <typename MapT> MapT withoutEngineLocalFamilies(const MapT &In) {
  MapT Out;
  for (const auto &KV : In)
    if (!telemetry::isEngineLocalMetric(KV.first))
      Out.insert(KV);
  return Out;
}

/// Whole campaigns: byte-identical findings and (minus engine-local
/// families) identical telemetry under either engine.
TEST(VmFastPath, CampaignIdentityAndTelemetry) {
  std::vector<Subject> Examples = exampleSubjects();
  const Subject &S = Examples[3]; // tokens: globals + calls + branches
  for (FuzzerKind Kind : {FuzzerKind::Path, FuzzerKind::Pcguard}) {
    CampaignOptions Interp;
    Interp.Kind = Kind;
    Interp.ExecBudget = 4000;
    Interp.Seed = 11;
    Interp.Trace.Enabled = true;
    Interp.Trace.SampleInterval = 512;
    Interp.VmMode = vm::VmExecMode::Interpreter;
    CampaignOptions Fast = Interp;
    Fast.VmMode = vm::VmExecMode::FastPath;

    CampaignResult RI = runCampaign(S, Interp);
    CampaignResult RF = runCampaign(S, Fast);
    EXPECT_EQ(serializeCampaignResult(RI), serializeCampaignResult(RF))
        << fuzzerKindName(Kind);

    ASSERT_NE(RI.Trace, nullptr);
    ASSERT_NE(RF.Trace, nullptr);
    ASSERT_EQ(RI.Trace->Instances.size(), RF.Trace->Instances.size());
    for (size_t K = 0; K < RI.Trace->Instances.size(); ++K) {
      const telemetry::InstanceRecord &A = RI.Trace->Instances[K];
      const telemetry::InstanceRecord &B = RF.Trace->Instances[K];
      EXPECT_EQ(A.Label, B.Label);
      EXPECT_EQ(A.ExecOffset, B.ExecOffset);
      EXPECT_EQ(A.Samples, B.Samples);
      EXPECT_EQ(A.EventsRecorded, B.EventsRecorded);
      EXPECT_EQ(withoutEngineLocalFamilies(A.Metrics.counters()),
                withoutEngineLocalFamilies(B.Metrics.counters()));
      EXPECT_EQ(withoutEngineLocalFamilies(A.Metrics.gauges()),
                withoutEngineLocalFamilies(B.Metrics.gauges()));
      EXPECT_TRUE(
          telemetry::sameObservableMetrics(A.Metrics, B.Metrics));
      // The fast-path campaign must actually carry the family...
      EXPECT_TRUE(B.Metrics.gauges().count("vm.fastpath.image.bytes"));
      // ...and the interpreter campaign must not.
      EXPECT_FALSE(A.Metrics.gauges().count("vm.fastpath.image.bytes"));
      EXPECT_FALSE(A.Metrics.counters().count("vm.fastpath.reset.bytes"));
    }
  }
}

/// Snapshot reset: a run that dirties global pages must not leak them
/// into the next run — a read-only execution afterwards sees pristine
/// globals, exactly like the interpreter's per-run materialization.
TEST(VmFastPath, SnapshotResetRestoresDirtyPages) {
  lang::CompileResult CR = lang::compileSource(R"ml(
global g[512];

fn main() {
  if (len() > 1 && in(0) == 'w') {
    g[in(1) * 2] = 7;
    return -1;
  }
  var s = 0;
  var i = 0;
  while (i < 512) {
    s = s + g[i];
    i = i + 1;
  }
  return s;
}
)ml",
                                               "snap");
  ASSERT_TRUE(CR.ok()) << CR.message();
  mir::Module M = std::move(*CR.Mod);
  vm::ProgramImage Image = vm::ProgramImage::build(M, nullptr);
  vm::Vm Fast(M);
  Fast.attachImage(&Image);
  vm::Vm Interp(M);
  vm::ExecOptions EO;

  // Alternate writes at spread-out indexes (distinct 64-cell pages) with
  // full-array reads; the read must always see zeros.
  for (int Round = 0; Round < 8; ++Round) {
    uint8_t W[2] = {'w', static_cast<uint8_t>(Round * 37)};
    vm::ExecResult RW = Fast.run(W, 2, EO, nullptr);
    EXPECT_EQ(RW.ReturnValue, -1);
    EXPECT_GT(RW.DirtyGlobalCells, 0u);
    vm::ExecResult RF = Fast.run(nullptr, 0, EO, nullptr);
    vm::ExecResult RI = Interp.run(nullptr, 0, EO, nullptr);
    EXPECT_EQ(RF.ReturnValue, 0);
    expectSameResult(RI, RF, "read-after-write round");
  }

  const vm::ResetStats &St = Fast.resetStats();
  EXPECT_GT(St.Resets, 0u);
  EXPECT_GT(St.DirtyPagesReset, 0u);
  // Page-granular restore: cells = pages * page size, and only the
  // written pages (one per write) ever got restored — far fewer than
  // executions * total global cells.
  EXPECT_EQ(St.DirtyCellsReset, St.DirtyPagesReset * vm::SnapshotPageCells);
  EXPECT_LE(St.DirtyPagesReset, 8u * 2u);
}

/// The engine-selection knob: CampaignOptions::VmMode forces an engine,
/// Auto follows PATHFUZZ_VM_FASTPATH (default on).
TEST(VmFastPath, ModeResolution) {
  EXPECT_FALSE(vm::fastPathEnabled(vm::VmExecMode::Interpreter));
  EXPECT_TRUE(vm::fastPathEnabled(vm::VmExecMode::FastPath));

  unsetenv("PATHFUZZ_VM_FASTPATH");
  EXPECT_TRUE(vm::fastPathEnabled(vm::VmExecMode::Auto));
  setenv("PATHFUZZ_VM_FASTPATH", "0", 1);
  EXPECT_FALSE(vm::fastPathEnabled(vm::VmExecMode::Auto));
  setenv("PATHFUZZ_VM_FASTPATH", "1", 1);
  EXPECT_TRUE(vm::fastPathEnabled(vm::VmExecMode::Auto));
  unsetenv("PATHFUZZ_VM_FASTPATH");

  // Informational, but must be callable and stable.
  EXPECT_EQ(vm::threadedDispatch(), vm::threadedDispatch());
}

} // namespace
