//===- BallLarusTest.cpp - Ball-Larus encoding properties ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "bl/BallLarus.h"

#include "TestUtil.h"
#include "lang/Compile.h"

#include <gtest/gtest.h>

#include <set>

using namespace pathfuzz;
using namespace pathfuzz::bl;

namespace {

/// Simulate a probe plan over one acyclic path (as DAG edge indices) and
/// return the value the flush probe would emit.
int64_t simulatePlan(const BLDag &Dag, const PathProbePlan &Plan,
                     const std::vector<uint32_t> &PathEdges) {
  const std::vector<DagEdge> &Edges = Dag.edges();
  EXPECT_FALSE(PathEdges.empty());

  // Initial value: function entry or the reset constant of the back edge
  // whose EntryDummy starts this path.
  int64_t R = 0;
  const DagEdge &First = Edges[PathEdges.front()];
  if (First.Kind == DagEdgeKind::EntryToFirst) {
    R = Plan.EntryInit;
  } else {
    EXPECT_EQ(First.Kind, DagEdgeKind::EntryDummy);
    bool Found = false;
    for (const auto &BP : Plan.BackProbes) {
      if (BP.CfgEdgeIndex == First.CfgEdgeIndex) {
        R = BP.Reset;
        Found = true;
        break;
      }
    }
    EXPECT_TRUE(Found) << "missing back probe for the path's entry dummy";
  }

  // Real-edge increments.
  for (size_t I = 1; I < PathEdges.size(); ++I) {
    const DagEdge &E = Edges[PathEdges[I]];
    if (E.Kind != DagEdgeKind::Real)
      continue;
    for (const auto &EI : Plan.EdgeIncs)
      if (EI.CfgEdgeIndex == E.CfgEdgeIndex)
        R += EI.Inc;
  }

  // Flush at the last edge.
  const DagEdge &Last = Edges[PathEdges.back()];
  if (Last.Kind == DagEdgeKind::RetToExit) {
    for (const auto &RP : Plan.RetProbes)
      if (RP.Block == Last.Src)
        return R + RP.FlushAdd;
    ADD_FAILURE() << "missing ret probe for block " << Last.Src;
    return -1;
  }
  EXPECT_EQ(Last.Kind, DagEdgeKind::ExitDummy);
  for (const auto &BP : Plan.BackProbes)
    if (BP.CfgEdgeIndex == Last.CfgEdgeIndex)
      return R + BP.FlushAdd;
  ADD_FAILURE() << "missing back probe flush";
  return -1;
}

/// Build the Fig. 1 function `foo` from the paper in MiniLang.
mir::Module buildFig1() {
  const char *Src = R"ml(
global arr[56];
fn main() {
  var n = len();
  if (n - 2 > 54 || n < 3) { return 0; }
  var j;
  if (n % 4 == 0 && n > 39) {
    j = 3;
  } else {
    j = -2;
  }
  var c = in(0);
  if (c == 'h') {
    arr[n + j] = 7;
  } else {
    if (j < 0) { j = -j; }
    arr[j] = 0;
  }
  return 0;
}
)ml";
  lang::CompileResult CR = lang::compileSource(Src, "fig1");
  EXPECT_TRUE(CR.ok()) << CR.message();
  return std::move(*CR.Mod);
}

TEST(BallLarus, TrivialSingleBlock) {
  mir::FunctionBuilder FB("f", 0);
  FB.setRetConst(7);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G);
  ASSERT_TRUE(Dag.has_value());
  EXPECT_EQ(Dag->numPaths(), 1u);
  PathProbePlan Plan = Dag->makePlan(PlacementMode::Simple);
  EXPECT_EQ(Plan.NumPaths, 1u);
  EXPECT_TRUE(Plan.EdgeIncs.empty());
  ASSERT_EQ(Plan.RetProbes.size(), 1u);
  EXPECT_EQ(Plan.RetProbes[0].FlushAdd, 0);
}

TEST(BallLarus, DiamondHasTwoPaths) {
  // entry -> (a | b) -> join -> ret
  mir::FunctionBuilder FB("f", 1);
  uint32_t A = FB.newBlock("a"), B = FB.newBlock("b"), J = FB.newBlock("j");
  FB.setCondBr(0, A, B);
  FB.setInsertPoint(A);
  FB.setBr(J);
  FB.setInsertPoint(B);
  FB.setBr(J);
  FB.setInsertPoint(J);
  FB.setRet(0);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G);
  ASSERT_TRUE(Dag.has_value());
  EXPECT_EQ(Dag->numPaths(), 2u);
  EXPECT_EQ(Dag->enumerateAllPaths().size(), 2u);
}

TEST(BallLarus, LoopTruncatesAtBackEdge) {
  // entry -> header; header -> (body | exit); body -> header (back edge)
  mir::FunctionBuilder FB("f", 1);
  uint32_t H = FB.newBlock("h"), Body = FB.newBlock("body"),
           X = FB.newBlock("x");
  FB.setBr(H);
  FB.setInsertPoint(H);
  FB.setCondBr(0, Body, X);
  FB.setInsertPoint(Body);
  FB.setBr(H);
  FB.setInsertPoint(X);
  FB.setRet(0);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  ASSERT_EQ(G.numBackEdges(), 1u);
  auto Dag = BLDag::build(G);
  ASSERT_TRUE(Dag.has_value());
  // Paths: entry->h->body(STOP), entry->h->x->ret, h->body(STOP),
  // h->x->ret.
  EXPECT_EQ(Dag->numPaths(), 4u);
}

TEST(BallLarus, Fig1MotivatingExampleHasDistinctBugPathId) {
  mir::Module M = buildFig1();
  const mir::Function &F = M.Funcs[static_cast<size_t>(M.findFunction("main"))];
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G);
  ASSERT_TRUE(Dag.has_value());
  // The paper's `foo` has 5 acyclic paths; our lowering adds short-circuit
  // blocks, so the count differs, but every path must get a unique ID and
  // the encoding must be a bijection.
  auto Paths = Dag->enumerateAllPaths();
  EXPECT_EQ(Paths.size(), Dag->numPaths());
  EXPECT_GE(Paths.size(), 5u);
  for (uint64_t Id = 0; Id < Dag->numPaths(); ++Id)
    EXPECT_EQ(Dag->reconstruct(Id), Paths[Id]) << "path " << Id;
}

TEST(BallLarus, OverflowGuardKicksIn) {
  // A ladder of K diamonds has 2^K paths; cap below that.
  mir::FunctionBuilder FB("f", 1);
  uint32_t Prev = 0;
  for (int K = 0; K < 8; ++K) {
    uint32_t A = FB.newBlock(), B = FB.newBlock(), J = FB.newBlock();
    FB.setInsertPoint(Prev);
    FB.setCondBr(0, A, B);
    FB.setInsertPoint(A);
    FB.setBr(J);
    FB.setInsertPoint(B);
    FB.setBr(J);
    Prev = J;
  }
  FB.setInsertPoint(Prev);
  FB.setRet(0);
  mir::Function F = FB.take();
  cfg::CfgView G(F);
  EXPECT_FALSE(BLDag::build(G, /*MaxPaths=*/255).has_value());
  auto Dag = BLDag::build(G, /*MaxPaths=*/256);
  ASSERT_TRUE(Dag.has_value());
  EXPECT_EQ(Dag->numPaths(), 256u);
}

class BallLarusRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BallLarusRandom, EncodingIsABijectionAndPlansAgree) {
  Rng R(GetParam());
  mir::Function F = test::randomFunction(R);
  cfg::CfgView G(F);
  auto Dag = BLDag::build(G, /*MaxPaths=*/1 << 20);
  if (!Dag)
    GTEST_SKIP() << "path count above the test cap";

  auto Paths = Dag->enumerateAllPaths();
  ASSERT_EQ(Paths.size(), Dag->numPaths());

  // IDs are exactly [0, NumPaths) and reconstruct() inverts them.
  for (uint64_t Id = 0; Id < Dag->numPaths(); ++Id)
    ASSERT_EQ(Dag->reconstruct(Id), Paths[Id]) << "path " << Id;

  // Both placements emit exactly the enumeration index for every path.
  auto PathEdges = Dag->enumerateAllPathEdges();
  ASSERT_EQ(PathEdges.size(), Dag->numPaths());
  PathProbePlan Simple = Dag->makePlan(PlacementMode::Simple);
  PathProbePlan Tree = Dag->makePlan(PlacementMode::SpanningTree);
  for (uint64_t Id = 0; Id < Dag->numPaths(); ++Id) {
    ASSERT_EQ(simulatePlan(*Dag, Simple, PathEdges[Id]),
              static_cast<int64_t>(Id))
        << "simple placement, path " << Id;
    ASSERT_EQ(simulatePlan(*Dag, Tree, PathEdges[Id]),
              static_cast<int64_t>(Id))
        << "spanning-tree placement, path " << Id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BallLarusRandom,
                         ::testing::Range<uint64_t>(0, 60));

TEST(BallLarus, SpanningTreePlacementBoundsProbesByChords) {
  // The chord placement may only instrument off-tree real edges: every
  // tree edge must carry a zero increment.
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    Rng R(Seed);
    mir::Function F = test::randomFunction(R);
    cfg::CfgView G(F);
    auto Dag = BLDag::build(G, 1 << 20);
    if (!Dag)
      continue;
    Dag->computeChordIncrements();
    for (const DagEdge &E : Dag->edges()) {
      if (E.OnTree) {
        EXPECT_EQ(E.Inc, 0) << "seed " << Seed;
      }
    }
  }
}

} // namespace
