//===- StrategyTest.cpp - Campaign drivers --------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Batch.h"
#include "strategy/BuildCache.h"
#include "strategy/Campaign.h"
#include "strategy/Evaluation.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::strategy;

namespace {

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

CampaignOptions smallOpts(FuzzerKind Kind, uint64_t Budget = 6000) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = Budget;
  Opts.Seed = 5;
  Opts.CullRounds = 3;
  return Opts;
}

TEST(Campaign, EveryKindRunsToBudget) {
  Subject S = smallSubject();
  for (FuzzerKind Kind :
       {FuzzerKind::Pcguard, FuzzerKind::Path, FuzzerKind::Cull,
        FuzzerKind::CullRandom, FuzzerKind::Opp, FuzzerKind::Afl,
        FuzzerKind::PathAfl}) {
    CampaignResult R = runCampaign(S, smallOpts(Kind));
    EXPECT_GE(R.Execs, 6000u) << fuzzerKindName(Kind);
    EXPECT_GT(R.FinalQueueSize, 0u) << fuzzerKindName(Kind);
    EXPECT_GT(R.edgesCovered(), 0u) << fuzzerKindName(Kind);
    EXPECT_EQ(R.Kind, Kind);
  }
}

TEST(Campaign, Deterministic) {
  Subject S = smallSubject();
  for (FuzzerKind Kind :
       {FuzzerKind::Pcguard, FuzzerKind::Cull, FuzzerKind::Opp}) {
    CampaignResult A = runCampaign(S, smallOpts(Kind));
    CampaignResult B = runCampaign(S, smallOpts(Kind));
    EXPECT_EQ(A.Execs, B.Execs);
    EXPECT_EQ(A.FinalQueueSize, B.FinalQueueSize);
    EXPECT_EQ(A.BugIds, B.BugIds);
    EXPECT_EQ(A.CrashHashes, B.CrashHashes);
    EXPECT_EQ(A.EdgeSet, B.EdgeSet);
  }
}

TEST(Campaign, CullChargesCullingCostToBudget) {
  Subject S = smallSubject();
  CampaignResult R = runCampaign(S, smallOpts(FuzzerKind::Cull, 4000));
  // Re-seeding executions are part of the accounted budget: total execs
  // stay close to the nominal budget rather than exceeding it per round.
  EXPECT_LT(R.Execs, 4000u + 2000u);
}

TEST(Campaign, UniqueCrashRecordsMatchHashes) {
  Subject S = smallSubject();
  CampaignResult R = runCampaign(S, smallOpts(FuzzerKind::Pcguard, 20000));
  EXPECT_EQ(R.UniqueCrashes.size(), R.CrashHashes.size());
  for (const fuzz::CrashRecord &C : R.UniqueCrashes) {
    EXPECT_TRUE(R.CrashHashes.count(C.StackHash));
    EXPECT_TRUE(R.BugIds.count(C.BugId));
  }
}

TEST(Evaluation, RunsAndAggregates) {
  Subject S = smallSubject();
  CampaignOptions Base = smallOpts(FuzzerKind::Pcguard, 3000);
  Evaluation E = evaluate({S}, {FuzzerKind::Pcguard, FuzzerKind::Path}, 3,
                          Base);
  ASSERT_EQ(E.SubjectNames.size(), 1u);
  const RunSet &RS = E.at("small", FuzzerKind::Pcguard);
  ASSERT_EQ(RS.Runs.size(), 3u);
  EXPECT_GE(RS.medianQueueSize(), 1.0);
  EXPECT_LT(RS.medianRunIndex(), 3u);
  // Cumulative sets contain every run's findings.
  auto Cum = RS.cumulativeBugs();
  for (const CampaignResult &R : RS.Runs)
    for (uint64_t B : R.BugIds)
      EXPECT_TRUE(Cum.count(B));
}

TEST(Batch, MatchesSerialRunnerAtEveryThreadCount) {
  // The determinism guarantee behind the parallel evaluation: for the
  // same seeds, runCampaigns produces byte-identical per-campaign results
  // to the serial runner at 1, 2 and 4 threads.
  Subject S = smallSubject();
  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Pcguard, FuzzerKind::Path,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  std::vector<BatchJob> Jobs;
  std::vector<CampaignResult> Serial;
  for (FuzzerKind K : Kinds)
    for (uint32_t Trial = 0; Trial < 2; ++Trial) {
      BatchJob J;
      J.S = &S;
      J.Opts = smallOpts(K, 3000);
      J.Opts.Seed = trialSeed(J.Opts.Seed, K, Trial);
      Jobs.push_back(J);
      Serial.push_back(runCampaign(S, J.Opts));
    }

  for (size_t Threads : {1u, 2u, 4u}) {
    BatchStats BS;
    std::vector<CampaignResult> Got = runCampaigns(Jobs, Threads, &BS);
    ASSERT_EQ(Got.size(), Serial.size());
    for (size_t I = 0; I < Got.size(); ++I) {
      SCOPED_TRACE("job " + std::to_string(I) + " @" +
                   std::to_string(Threads) + " threads");
      EXPECT_EQ(Got[I].Kind, Serial[I].Kind);
      EXPECT_EQ(Got[I].Execs, Serial[I].Execs);
      EXPECT_EQ(Got[I].FinalQueueSize, Serial[I].FinalQueueSize);
      EXPECT_EQ(Got[I].TotalCrashes, Serial[I].TotalCrashes);
      EXPECT_EQ(Got[I].TotalHangs, Serial[I].TotalHangs);
      EXPECT_EQ(Got[I].BugIds, Serial[I].BugIds);
      EXPECT_EQ(Got[I].CrashHashes, Serial[I].CrashHashes);
      EXPECT_EQ(Got[I].HangHashes, Serial[I].HangHashes);
      EXPECT_EQ(Got[I].EdgeSet, Serial[I].EdgeSet);
      EXPECT_EQ(Got[I].QueueGrowth, Serial[I].QueueGrowth);
    }
    // The shared build cache compiled the one subject exactly once and
    // instrumented it once per feedback mode ({EdgePrecise, Path} here).
    EXPECT_EQ(BS.SubjectsCompiled, 1u);
    EXPECT_EQ(BS.ModulesInstrumented, 2u);
    EXPECT_EQ(BS.Threads, Threads);
  }
}

TEST(Batch, SharedBuildIsReusableAcrossCampaigns) {
  Subject S = smallSubject();
  SubjectBuild B(S);
  CampaignOptions Opts = smallOpts(FuzzerKind::Path, 2000);
  CampaignResult FromShared = runCampaign(B, Opts);
  CampaignResult FromShared2 = runCampaign(B, Opts);
  CampaignResult Fresh = runCampaign(S, Opts);
  EXPECT_EQ(FromShared.Execs, Fresh.Execs);
  EXPECT_EQ(FromShared.BugIds, Fresh.BugIds);
  EXPECT_EQ(FromShared.EdgeSet, Fresh.EdgeSet);
  EXPECT_EQ(FromShared2.FinalQueueSize, Fresh.FinalQueueSize);
  // Two path campaigns plus the instrumentation cache: one build total.
  EXPECT_EQ(B.instrumentCount(), 1u);
}

TEST(Evaluation, EvaluateIsIndependentOfJobCount) {
  // evaluate() routes through the batch runner; PATHFUZZ_JOBS must not
  // change what it computes.
  Subject S = smallSubject();
  CampaignOptions Base = smallOpts(FuzzerKind::Pcguard, 2000);
  ::setenv("PATHFUZZ_JOBS", "1", 1);
  Evaluation A = evaluate({S}, {FuzzerKind::Pcguard, FuzzerKind::Path}, 2,
                          Base);
  ::setenv("PATHFUZZ_JOBS", "4", 1);
  Evaluation B = evaluate({S}, {FuzzerKind::Pcguard, FuzzerKind::Path}, 2,
                          Base);
  ::unsetenv("PATHFUZZ_JOBS");
  for (FuzzerKind K : {FuzzerKind::Pcguard, FuzzerKind::Path}) {
    const RunSet &RA = A.at("small", K);
    const RunSet &RB = B.at("small", K);
    ASSERT_EQ(RA.Runs.size(), RB.Runs.size());
    for (size_t I = 0; I < RA.Runs.size(); ++I) {
      EXPECT_EQ(RA.Runs[I].Execs, RB.Runs[I].Execs);
      EXPECT_EQ(RA.Runs[I].BugIds, RB.Runs[I].BugIds);
      EXPECT_EQ(RA.Runs[I].EdgeSet, RB.Runs[I].EdgeSet);
      EXPECT_EQ(RA.Runs[I].FinalQueueSize, RB.Runs[I].FinalQueueSize);
    }
  }
}

TEST(Evaluation, SetAlgebra) {
  std::set<uint64_t> A = {1, 2, 3}, B = {2, 3, 4};
  EXPECT_EQ(setIntersectSize(A, B), 2u);
  EXPECT_EQ(setSubtractSize(A, B), 1u);
  EXPECT_EQ(setSubtractSize(B, A), 1u);
  EXPECT_EQ(setUnion(A, B).size(), 4u);
}

} // namespace
