//===- StrategyTest.cpp - Campaign drivers --------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Campaign.h"
#include "strategy/Evaluation.h"

#include <gtest/gtest.h>

using namespace pathfuzz;
using namespace pathfuzz::strategy;

namespace {

Subject smallSubject() {
  Subject S;
  S.Name = "small";
  S.Source = R"ml(
global tab[8];
fn step(k, c) {
  var j;
  if (k % 3 == 0 && k > 4) { j = 2; } else { j = 0; }
  if (c == 'z') {
    tab[k % 7 + j] = 1;  // OOB when k % 7 == 6 and j == 2
  } else {
    tab[j] = 1;
  }
  return j;
}
fn main() {
  var i = 0;
  var k = 0;
  while (i < len()) {
    var c = in(i);
    if (c == '.') { step(k, in(i + 1)); k = 0; } else { k = k + 1; }
    i = i + 1;
  }
  return k;
}
)ml";
  const char *Seed = "abc.z def.x";
  S.Seeds = {fuzz::Input(Seed, Seed + 11)};
  return S;
}

CampaignOptions smallOpts(FuzzerKind Kind, uint64_t Budget = 6000) {
  CampaignOptions Opts;
  Opts.Kind = Kind;
  Opts.ExecBudget = Budget;
  Opts.Seed = 5;
  Opts.CullRounds = 3;
  return Opts;
}

TEST(Campaign, EveryKindRunsToBudget) {
  Subject S = smallSubject();
  for (FuzzerKind Kind :
       {FuzzerKind::Pcguard, FuzzerKind::Path, FuzzerKind::Cull,
        FuzzerKind::CullRandom, FuzzerKind::Opp, FuzzerKind::Afl,
        FuzzerKind::PathAfl}) {
    CampaignResult R = runCampaign(S, smallOpts(Kind));
    EXPECT_GE(R.Execs, 6000u) << fuzzerKindName(Kind);
    EXPECT_GT(R.FinalQueueSize, 0u) << fuzzerKindName(Kind);
    EXPECT_GT(R.edgesCovered(), 0u) << fuzzerKindName(Kind);
    EXPECT_EQ(R.Kind, Kind);
  }
}

TEST(Campaign, Deterministic) {
  Subject S = smallSubject();
  for (FuzzerKind Kind :
       {FuzzerKind::Pcguard, FuzzerKind::Cull, FuzzerKind::Opp}) {
    CampaignResult A = runCampaign(S, smallOpts(Kind));
    CampaignResult B = runCampaign(S, smallOpts(Kind));
    EXPECT_EQ(A.Execs, B.Execs);
    EXPECT_EQ(A.FinalQueueSize, B.FinalQueueSize);
    EXPECT_EQ(A.BugIds, B.BugIds);
    EXPECT_EQ(A.CrashHashes, B.CrashHashes);
    EXPECT_EQ(A.EdgeSet, B.EdgeSet);
  }
}

TEST(Campaign, CullChargesCullingCostToBudget) {
  Subject S = smallSubject();
  CampaignResult R = runCampaign(S, smallOpts(FuzzerKind::Cull, 4000));
  // Re-seeding executions are part of the accounted budget: total execs
  // stay close to the nominal budget rather than exceeding it per round.
  EXPECT_LT(R.Execs, 4000u + 2000u);
}

TEST(Campaign, UniqueCrashRecordsMatchHashes) {
  Subject S = smallSubject();
  CampaignResult R = runCampaign(S, smallOpts(FuzzerKind::Pcguard, 20000));
  EXPECT_EQ(R.UniqueCrashes.size(), R.CrashHashes.size());
  for (const fuzz::CrashRecord &C : R.UniqueCrashes) {
    EXPECT_TRUE(R.CrashHashes.count(C.StackHash));
    EXPECT_TRUE(R.BugIds.count(C.BugId));
  }
}

TEST(Evaluation, RunsAndAggregates) {
  Subject S = smallSubject();
  CampaignOptions Base = smallOpts(FuzzerKind::Pcguard, 3000);
  Evaluation E = evaluate({S}, {FuzzerKind::Pcguard, FuzzerKind::Path}, 3,
                          Base);
  ASSERT_EQ(E.SubjectNames.size(), 1u);
  const RunSet &RS = E.at("small", FuzzerKind::Pcguard);
  ASSERT_EQ(RS.Runs.size(), 3u);
  EXPECT_GE(RS.medianQueueSize(), 1.0);
  EXPECT_LT(RS.medianRunIndex(), 3u);
  // Cumulative sets contain every run's findings.
  auto Cum = RS.cumulativeBugs();
  for (const CampaignResult &R : RS.Runs)
    for (uint64_t B : R.BugIds)
      EXPECT_TRUE(Cum.count(B));
}

TEST(Evaluation, SetAlgebra) {
  std::set<uint64_t> A = {1, 2, 3}, B = {2, 3, 4};
  EXPECT_EQ(setIntersectSize(A, B), 2u);
  EXPECT_EQ(setSubtractSize(A, B), 1u);
  EXPECT_EQ(setSubtractSize(B, A), 1u);
  EXPECT_EQ(setUnion(A, B).size(), 4u);
}

} // namespace
