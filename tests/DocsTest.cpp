//===- DocsTest.cpp - Documentation lint: links and knob coverage -------------===//
//
// Part of the pathfuzz project.
//
// Two generation-checks that keep the docs tree from rotting:
//
//  - every intra-repo markdown link in the curated doc set (README,
//    DESIGN, ROADMAP, CHANGES, EXPERIMENTS, docs/*.md) must resolve to
//    a file that exists;
//  - docs/CONFIG.md must mention every PATHFUZZ_* / REPRO_* environment
//    knob actually read in the tree (support/Env.h call sites, plus
//    $ENV{} reads in the ctest scripts), and must not document ghosts —
//    every knob named in CONFIG.md has to correspond to a real env call
//    site, a ctest $ENV read, or a CMake option().
//
// Runs under the `docs` ctest label.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

#ifdef PATHFUZZ_SOURCE_DIR
const char *SourceDir = PATHFUZZ_SOURCE_DIR;
#else
const char *SourceDir = ".";
#endif

std::string slurp(const fs::path &P) {
  std::ifstream F(P);
  std::ostringstream SS;
  SS << F.rdbuf();
  return SS.str();
}

/// The markdown files whose links we police. PAPER/PAPERS/SNIPPETS are
/// retrieval artifacts with external content and are exempt.
std::vector<fs::path> curatedDocs() {
  const fs::path Root(SourceDir);
  std::vector<fs::path> Docs;
  for (const char *Name :
       {"README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md",
        "EXPERIMENTS.md"}) {
    fs::path P = Root / Name;
    if (fs::exists(P))
      Docs.push_back(P);
  }
  if (fs::exists(Root / "docs"))
    for (const fs::directory_entry &E : fs::directory_iterator(Root / "docs"))
      if (E.path().extension() == ".md")
        Docs.push_back(E.path());
  EXPECT_GE(Docs.size(), 7u) << "curated doc set unexpectedly small";
  return Docs;
}

/// Every intra-repo [text](target) link resolves to an existing file.
TEST(Docs, IntraRepoLinksResolve) {
  const std::regex LinkRe(R"(\]\(([^)\s]+)\))");
  for (const fs::path &Doc : curatedDocs()) {
    std::string Text = slurp(Doc);
    ASSERT_FALSE(Text.empty()) << Doc;
    for (std::sregex_iterator It(Text.begin(), Text.end(), LinkRe), End;
         It != End; ++It) {
      std::string Target = (*It)[1].str();
      if (Target.rfind("http://", 0) == 0 || Target.rfind("https://", 0) == 0 ||
          Target.rfind("mailto:", 0) == 0)
        continue;
      if (Target[0] == '#') // same-file anchor
        continue;
      size_t Hash = Target.find('#');
      if (Hash != std::string::npos)
        Target = Target.substr(0, Hash);
      fs::path Resolved = Doc.parent_path() / Target;
      EXPECT_TRUE(fs::exists(Resolved))
          << Doc.filename().string() << ": dead link -> " << Target;
    }
  }
}

/// Collect every PATHFUZZ_* / REPRO_* token in Text.
std::set<std::string> knobTokens(const std::string &Text) {
  static const std::regex KnobRe(R"((?:PATHFUZZ|REPRO)_[A-Z0-9_]+)");
  std::set<std::string> Out;
  for (std::sregex_iterator It(Text.begin(), Text.end(), KnobRe), End;
       It != End; ++It)
    Out.insert(It->str());
  return Out;
}

/// docs/CONFIG.md vs reality: the documented knob set equals the union
/// of env*() call sites, ctest $ENV{} reads and CMake option()s.
TEST(Docs, ConfigTableMatchesEnvCallSites) {
  const fs::path Root(SourceDir);

  // 1. env*("NAME") call sites in C++ under src/, bench/, tools/,
  //    examples/ (Env.h's own declarations carry no literals).
  std::set<std::string> Used;
  const std::regex EnvCallRe(
      R"(env(?:U64|Bool|Str|List)\s*\(\s*"((?:PATHFUZZ|REPRO)_[A-Z0-9_]+)\")");
  for (const char *Dir : {"src", "bench", "tools", "examples"}) {
    for (fs::recursive_directory_iterator It(Root / Dir), End; It != End;
         ++It) {
      const fs::path &P = It->path();
      if (P.extension() != ".cpp" && P.extension() != ".h")
        continue;
      std::string Text = slurp(P);
      for (std::sregex_iterator M(Text.begin(), Text.end(), EnvCallRe), End2;
           M != End2; ++M)
        Used.insert((*M)[1].str());
    }
  }
  EXPECT_GE(Used.size(), 10u) << "env call-site scan found too few knobs";

  // 2. $ENV{NAME} reads in the ctest scripts.
  const std::regex CtestEnvRe(R"(\$ENV\{((?:PATHFUZZ|REPRO)_[A-Z0-9_]+)\})");
  for (const fs::directory_entry &E : fs::directory_iterator(Root / "cmake")) {
    std::string Text = slurp(E.path());
    for (std::sregex_iterator M(Text.begin(), Text.end(), CtestEnvRe), End2;
         M != End2; ++M)
      Used.insert((*M)[1].str());
  }

  // 3. CMake option()s (documented in CONFIG.md's build-shape table, but
  //    not environment variables).
  std::set<std::string> Options;
  const std::regex OptionRe(R"(option\s*\(\s*(PATHFUZZ_[A-Z0-9_]+))");
  std::string TopCMake = slurp(Root / "CMakeLists.txt");
  for (std::sregex_iterator M(TopCMake.begin(), TopCMake.end(), OptionRe), End2;
       M != End2; ++M)
    Options.insert((*M)[1].str());
  EXPECT_TRUE(Options.count("PATHFUZZ_SANITIZE"));

  std::string Config = slurp(Root / "docs" / "CONFIG.md");
  ASSERT_FALSE(Config.empty()) << "docs/CONFIG.md missing";
  std::set<std::string> Documented = knobTokens(Config);

  // Every knob the code reads is documented.
  for (const std::string &Knob : Used)
    EXPECT_TRUE(Documented.count(Knob))
        << "env knob " << Knob << " is read in the tree but missing from "
        << "docs/CONFIG.md";

  // Every knob CONFIG.md names is real.
  for (const std::string &Knob : Documented)
    EXPECT_TRUE(Used.count(Knob) || Options.count(Knob))
        << "docs/CONFIG.md documents " << Knob
        << ", which is neither an env call site, a ctest $ENV read, nor a "
        << "CMake option";

  // The tentpole knob is wired through both sides.
  EXPECT_TRUE(Used.count("PATHFUZZ_VM_FASTPATH"));
  EXPECT_TRUE(Documented.count("PATHFUZZ_VM_FASTPATH"));
}

} // namespace
