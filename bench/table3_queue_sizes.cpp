//===- table3_queue_sizes.cpp - Table III reproduction ------------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table III: median final queue sizes per fuzzer and their
// ratios against pcguard, with the geometric means. Expected shape
// (paper): path ~4.5x, cull ~2.2x, opp ~3.2x — i.e. both biasing methods
// significantly tame the path feedback's queue explosion, with cull the
// most aggressive.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table III: median queue sizes and ratios vs pcguard");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::Pcguard,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "pcguard", "cull", "opp", "path/pcg",
               "cull/pcg", "opp/pcg"});

  std::vector<double> RPath, RCull, ROpp;
  for (const std::string &Name : E.SubjectNames) {
    double QPath = E.at(Name, FuzzerKind::Path).medianQueueSize();
    double QPcg = E.at(Name, FuzzerKind::Pcguard).medianQueueSize();
    double QCull = E.at(Name, FuzzerKind::Cull).medianQueueSize();
    double QOpp = E.at(Name, FuzzerKind::Opp).medianQueueSize();
    double Rp = QPcg ? QPath / QPcg : 0;
    double Rc = QPcg ? QCull / QPcg : 0;
    double Ro = QPcg ? QOpp / QPcg : 0;
    RPath.push_back(Rp);
    RCull.push_back(Rc);
    ROpp.push_back(Ro);
    T.addRow({Name, Table::fixed(QPath, 0), Table::fixed(QPcg, 0),
              Table::fixed(QCull, 0), Table::fixed(QOpp, 0), Table::fixed(Rp),
              Table::fixed(Rc), Table::fixed(Ro)});
  }
  T.addRow({"GEOMEAN", "", "", "", "", Table::fixed(geomean(RPath)),
            Table::fixed(geomean(RCull)), Table::fixed(geomean(ROpp))});
  T.print();
  return 0;
}
