//===- table9_crash_counts.cpp - Table IX reproduction ------------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table IX: total crashing executions vs stack-hash-unique
// crashes for PathAFL and AFL. Expected shape (paper): thousands of raw
// crashes collapse to a few dozen unique ones — AFL-style "unique crash"
// counting grossly over-counts relative to stack-hash clustering, which
// is why the paper's main evaluation reports triaged unique bugs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table IX: crashes and unique crashes, PathAFL vs AFL");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::PathAfl,
                                         FuzzerKind::Afl};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "pathafl crashes", "pathafl unique",
               "afl crashes", "afl unique"});

  uint64_t TotCrash[2] = {0, 0};
  std::set<uint64_t> TotUnique[2];
  for (const std::string &Name : E.SubjectNames) {
    uint64_t Crashes[2] = {0, 0};
    std::set<uint64_t> Unique[2];
    for (int K = 0; K < 2; ++K) {
      const RunSet &RS = E.at(Name, Kinds[K]);
      for (const CampaignResult &R : RS.Runs)
        Crashes[K] += R.TotalCrashes;
      Unique[K] = RS.cumulativeCrashes();
      TotCrash[K] += Crashes[K];
      for (uint64_t X : Unique[K])
        TotUnique[K].insert(X ^ fnv1a(Name));
    }
    T.addRow({Name, Table::num(Crashes[0]),
              Table::num(uint64_t(Unique[0].size())), Table::num(Crashes[1]),
              Table::num(uint64_t(Unique[1].size()))});
  }
  T.addRow({"TOTAL", Table::num(TotCrash[0]),
            Table::num(uint64_t(TotUnique[0].size())), Table::num(TotCrash[1]),
            Table::num(uint64_t(TotUnique[1].size()))});
  T.print();
  return 0;
}
