//===- table8_pathafl_vs_afl.cpp - Table VIII reproduction --------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table VIII: PathAFL against its own AFL baseline. Expected
// shape (paper): the two find nearly the same bugs (31 of 34/32 shared) —
// PathAFL's whole-program path hashing adds little over its base fuzzer.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table VIII: unique bugs, PathAFL vs AFL");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::PathAfl,
                                         FuzzerKind::Afl};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "pathafl", "afl", "pathafl&afl", "pathafl\\afl",
               "afl\\pathafl"});

  std::set<uint64_t> Tot[2];
  for (const std::string &Name : E.SubjectNames) {
    std::set<uint64_t> B[2];
    for (int K = 0; K < 2; ++K) {
      B[K] = E.at(Name, Kinds[K]).cumulativeBugs();
      for (uint64_t X : B[K])
        Tot[K].insert(X ^ fnv1a(Name));
    }
    T.addRow({Name, Table::num(uint64_t(B[0].size())),
              Table::num(uint64_t(B[1].size())),
              Table::num(uint64_t(setIntersectSize(B[0], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[0], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[0])))});
  }
  T.addRow({"TOTAL", Table::num(uint64_t(Tot[0].size())),
            Table::num(uint64_t(Tot[1].size())),
            Table::num(uint64_t(setIntersectSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[0])))});
  T.print();
  return 0;
}
