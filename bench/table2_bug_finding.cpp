//===- table2_bug_finding.cpp - Table II + Fig. 3 reproduction ----------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table II: unique bugs (and unique crashes) found by each
// fuzzer cumulatively across the runs, with the pairwise set
// intersections and differences the paper reports, plus the Fig. 3
// inclusion relations. Expected shape (paper, 10 x 48 h): path finds
// bugs pcguard misses (14 of 77) while trailing slightly in total;
// cull beats pcguard outright (98 vs 89); opp lands between.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

namespace {

struct SubjectSets {
  std::set<uint64_t> Bugs[4];    // path, pcguard, cull, opp
  std::set<uint64_t> Crashes[4];
};

} // namespace

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table II: unique bugs (unique crashes) per fuzzer, "
                "cumulative across runs");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::Pcguard,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "pcguard", "cull", "opp",
               "path&pcg", "cull&pcg", "opp&pcg", "opp&cull", "path\\pcg",
               "pcg\\path", "cull\\pcg", "pcg\\cull", "opp\\pcg", "pcg\\opp",
               "opp\\cull", "cull\\opp"});

  SubjectSets Total;
  for (const std::string &Name : E.SubjectNames) {
    SubjectSets S;
    for (int K = 0; K < 4; ++K) {
      const RunSet &RS = E.at(Name, Kinds[K]);
      S.Bugs[K] = RS.cumulativeBugs();
      S.Crashes[K] = RS.cumulativeCrashes();
      for (uint64_t B : S.Bugs[K])
        Total.Bugs[K].insert(B ^ fnv1a(Name));
      for (uint64_t Cr : S.Crashes[K])
        Total.Crashes[K].insert(Cr ^ fnv1a(Name));
    }
    auto Cell = [&](int K) {
      return Table::pair(S.Bugs[K].size(), S.Crashes[K].size());
    };
    T.addRow({Name, Cell(0), Cell(1), Cell(2), Cell(3),
              Table::num(uint64_t(setIntersectSize(S.Bugs[0], S.Bugs[1]))),
              Table::num(uint64_t(setIntersectSize(S.Bugs[2], S.Bugs[1]))),
              Table::num(uint64_t(setIntersectSize(S.Bugs[3], S.Bugs[1]))),
              Table::num(uint64_t(setIntersectSize(S.Bugs[3], S.Bugs[2]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[0], S.Bugs[1]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[1], S.Bugs[0]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[2], S.Bugs[1]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[1], S.Bugs[2]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[3], S.Bugs[1]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[1], S.Bugs[3]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[3], S.Bugs[2]))),
              Table::num(uint64_t(setSubtractSize(S.Bugs[2], S.Bugs[3])))});
  }
  auto TCell = [&](int K) {
    return Table::pair(Total.Bugs[K].size(), Total.Crashes[K].size());
  };
  T.addRow({"TOTAL", TCell(0), TCell(1), TCell(2), TCell(3),
            Table::num(uint64_t(setIntersectSize(Total.Bugs[0], Total.Bugs[1]))),
            Table::num(uint64_t(setIntersectSize(Total.Bugs[2], Total.Bugs[1]))),
            Table::num(uint64_t(setIntersectSize(Total.Bugs[3], Total.Bugs[1]))),
            Table::num(uint64_t(setIntersectSize(Total.Bugs[3], Total.Bugs[2]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[0], Total.Bugs[1]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[1], Total.Bugs[0]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[2], Total.Bugs[1]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[1], Total.Bugs[2]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[3], Total.Bugs[1]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[1], Total.Bugs[3]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[3], Total.Bugs[2]))),
            Table::num(uint64_t(setSubtractSize(Total.Bugs[2], Total.Bugs[3])))});
  T.print();

  // Fig. 3: inclusion relations over the union of all subjects.
  std::printf("\nFig. 3 (inclusion relations over all benchmarks):\n");
  auto PrintPair = [&](const char *A, const std::set<uint64_t> &SA,
                       const char *B, const std::set<uint64_t> &SB) {
    std::printf("  %s=%zu  %s=%zu  common=%zu  only-%s=%zu  only-%s=%zu\n", A,
                SA.size(), B, SB.size(), setIntersectSize(SA, SB), A,
                setSubtractSize(SA, SB), B, setSubtractSize(SB, SA));
  };
  PrintPair("path", Total.Bugs[0], "pcguard", Total.Bugs[1]);
  PrintPair("cull", Total.Bugs[2], "pcguard", Total.Bugs[1]);
  PrintPair("opp", Total.Bugs[3], "cull", Total.Bugs[2]);
  std::set<uint64_t> AnyPathAware =
      setUnion(setUnion(Total.Bugs[0], Total.Bugs[2]), Total.Bugs[3]);
  PrintPair("path-aware(any)", AnyPathAware, "pcguard", Total.Bugs[1]);
  return 0;
}
