//===- selective_throughput.cpp - Two-tier selective mode measurement ---------===//
//
// Part of the pathfuzz project.
//
// Measures what two-tier selective execution (probe-free cheap image +
// signature-gated replay; see docs/PERFORMANCE.md's cost-model section)
// buys over always-instrumented campaigns:
//
//  - end-to-end campaigns on every example subject
//    (examples/minilang/*.ml), alternating paired selective-on /
//    selective-off legs on a shared build, best-of-N execs/sec and the
//    median of per-pair speedups per subject;
//  - the serializeCampaignResult byte-identity check on every pair — the
//    mode's defining contract;
//  - the vm.selective.* counters (skips, replays, replay mismatches)
//    from one traced selective campaign per subject;
//  - and writes the whole record to BENCH_selective.json
//    (PATHFUZZ_BENCH_OUT overrides the path).
//
// The speedup is machine- and workload-shaped (replay-rate-dependent);
// the exit code reflects only the identity checks.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "strategy/BuildCache.h"
#include "telemetry/Export.h"
#include "telemetry/Report.h"
#include "vm/Image.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The example subjects under examples/minilang/ (PATHFUZZ_EXAMPLES_DIR
/// overrides for out-of-tree runs), seeded the same way vm_throughput
/// seeds them so the two records measure comparable workloads.
std::vector<Subject> loadExampleSubjects() {
#ifdef PATHFUZZ_SOURCE_DIR
  const char *Default = PATHFUZZ_SOURCE_DIR "/examples/minilang";
#else
  const char *Default = "examples/minilang";
#endif
  std::string Dir = envStr("PATHFUZZ_EXAMPLES_DIR", Default);
  std::vector<Subject> Out;
  for (const char *Name : {"sum", "lookup", "checksum", "tokens", "rle"}) {
    std::ifstream F(Dir + "/" + Name + ".ml");
    if (!F)
      continue;
    std::ostringstream SS;
    SS << F.rdbuf();
    Subject S;
    S.Name = Name;
    S.Source = SS.str();
    if (std::strcmp(Name, "lookup") == 0) {
      S.Seeds.push_back({'a', 'b', 'c'});
    } else {
      fuzz::Input In(1024);
      Rng R(7);
      for (uint8_t &B : In)
        B = static_cast<uint8_t>(R.below(256));
      S.Seeds.push_back(std::move(In));
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

struct SubjectMeasurement {
  std::string Name;
  double OffEps = 0.0;
  double OnEps = 0.0;
  double SpeedupBest = 0.0;
  double SpeedupMedian = 0.0;
  uint64_t Skipped = 0;
  uint64_t Replays = 0;
  uint64_t ReplayMismatch = 0;
  bool Identical = false;
};

SubjectMeasurement measureSubject(const Subject &S, const CampaignOptions &Base,
                                  uint64_t Execs, uint32_t Reps) {
  SubjectMeasurement M;
  M.Name = S.Name;

  BuildCache Cache;
  std::shared_ptr<SubjectBuild> SB = Cache.get(S);

  CampaignOptions Off = Base;
  Off.Kind = FuzzerKind::Path;
  Off.Trace = telemetry::TraceConfig(); // timed legs run untraced
  Off.Selective = vm::SelectiveMode::Off;
  CampaignOptions On = Off;
  On.Selective = vm::SelectiveMode::On;

  // Warm both builds (full + cheap image) before timing anything.
  (void)runCampaign(*SB, On);

  uint64_t OffMin = ~0ull, OnMin = ~0ull;
  std::vector<double> PairSpeedup;
  M.Identical = true;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    const bool OnFirst = (Rep & 1) != 0;
    uint64_t UOff = 0, UOn = 0;
    std::vector<uint8_t> BytesOff, BytesOn;
    for (int Leg = 0; Leg < 2; ++Leg) {
      const bool RunOn = OnFirst == (Leg == 0);
      uint64_t T0 = nowMicros();
      CampaignResult R = runCampaign(*SB, RunOn ? On : Off);
      uint64_t Dt = nowMicros() - T0;
      (RunOn ? UOn : UOff) = Dt;
      (RunOn ? BytesOn : BytesOff) = serializeCampaignResult(R);
    }
    OffMin = std::min(OffMin, UOff);
    OnMin = std::min(OnMin, UOn);
    if (UOn)
      PairSpeedup.push_back(double(UOff) / double(UOn));
    M.Identical &= BytesOff == BytesOn;
  }
  std::sort(PairSpeedup.begin(), PairSpeedup.end());
  M.SpeedupMedian =
      PairSpeedup.empty() ? 0.0 : PairSpeedup[PairSpeedup.size() / 2];
  M.SpeedupBest = OnMin ? double(OffMin) / double(OnMin) : 0.0;
  if (OffMin)
    M.OffEps = double(Execs) * 1e6 / double(OffMin);
  if (OnMin)
    M.OnEps = double(Execs) * 1e6 / double(OnMin);

  // One traced selective campaign for the vm.selective.* counters.
  CampaignOptions Traced = On;
  Traced.Trace.Enabled = true;
  CampaignResult R = runCampaign(*SB, Traced);
  if (R.Trace)
    for (const telemetry::InstanceRecord &I : R.Trace->Instances) {
      auto Get = [&I](const char *Name) -> uint64_t {
        auto It = I.Metrics.counters().find(Name);
        return It == I.Metrics.counters().end() ? 0 : It->second;
      };
      M.Skipped += Get("vm.selective.skipped");
      M.Replays += Get("vm.selective.replays");
      M.ReplayMismatch += Get("vm.selective.replay.mismatch");
    }
  return M;
}

} // namespace

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Selective (two-tier) execution: campaign throughput vs "
                "always-instrumented");

  std::vector<Subject> Examples = loadExampleSubjects();
  const uint32_t Reps = std::max<uint32_t>(3, C.Runs);
  CampaignOptions Base = C.campaignOptions();

  std::vector<SubjectMeasurement> Subjects;
  bool Identical = true;
  bool MismatchFree = true;
  for (const Subject &S : Examples) {
    Subjects.push_back(measureSubject(S, Base, C.Execs, Reps));
    Identical &= Subjects.back().Identical;
    MismatchFree &= Subjects.back().ReplayMismatch == 0;
  }

  std::vector<double> Medians;
  for (const SubjectMeasurement &M : Subjects)
    Medians.push_back(M.SpeedupMedian);
  std::sort(Medians.begin(), Medians.end());
  const double CampaignSpeedupMedian =
      Medians.empty() ? 0.0 : Medians[Medians.size() / 2];

  std::printf("example-subject campaigns (%" PRIu64 " execs, %u paired "
              "reps each):\n",
              C.Execs, Reps);
  std::printf("  %-9s %12s %12s %8s %8s %10s %9s %9s\n", "subject",
              "off exec/s", "on exec/s", "best", "median", "skipped",
              "replays", "mismatch");
  for (const SubjectMeasurement &M : Subjects)
    std::printf("  %-9s %12.0f %12.0f %7.2fx %7.2fx %10" PRIu64 " %9" PRIu64
                " %9" PRIu64 "\n",
                M.Name.c_str(), M.OffEps, M.OnEps, M.SpeedupBest,
                M.SpeedupMedian, M.Skipped, M.Replays, M.ReplayMismatch);
  std::printf("  median campaign speedup across example subjects: %.2fx\n",
              CampaignSpeedupMedian);
  std::printf("selective == always-instrumented results: %s\n",
              Identical ? "yes" : "NO");
  std::printf("replay mismatches: %s\n", MismatchFree ? "none" : "PRESENT");

  std::string Doc = "{\"name\":\"selective_throughput\",";
  {
    char Buf[512];
    Doc += "\"subjects\":[";
    for (size_t I = 0; I < Subjects.size(); ++I) {
      const SubjectMeasurement &M = Subjects[I];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s{\"name\":\"%s\",\"off_execs_per_sec\":%.1f,"
          "\"on_execs_per_sec\":%.1f,\"speedup_best\":%.3f,"
          "\"speedup_median\":%.3f,\"skipped\":%" PRIu64
          ",\"replays\":%" PRIu64 ",\"replay_mismatch\":%" PRIu64
          ",\"identical\":%s}",
          I ? "," : "", M.Name.c_str(), M.OffEps, M.OnEps, M.SpeedupBest,
          M.SpeedupMedian, M.Skipped, M.Replays, M.ReplayMismatch,
          M.Identical ? "true" : "false");
      Doc += Buf;
    }
    Doc += "],";
    std::snprintf(Buf, sizeof(Buf),
                  "\"campaign_execs\":%" PRIu64 ",\"reps\":%u,"
                  "\"campaign_speedup_median\":%.3f,"
                  "\"results_identical\":%s}\n",
                  C.Execs, Reps, CampaignSpeedupMedian,
                  Identical && MismatchFree ? "true" : "false");
    Doc += Buf;
  }

  std::string OutPath = envStr("PATHFUZZ_BENCH_OUT", "BENCH_selective.json");
  std::string Err;
  if (!telemetry::exportFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "warning: bench record export failed: %s\n",
                 Err.c_str());
    return Identical && MismatchFree ? 0 : 1;
  }
  std::printf("\nwrote %s\n", OutPath.c_str());
  return Identical && MismatchFree ? 0 : 1;
}
