//===- table6_median_bugs.cpp - Table VI / Appendix B reproduction ------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Appendix B's Table VI: the unique-bug counts of each
// fuzzer's *median* run, with the pairwise set relations computed between
// the median runs. Expected shape: the cumulative trends of Table II are
// preserved, slightly compressed.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table VI: unique bugs in the median run per fuzzer");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::Pcguard,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "pcguard", "cull", "opp", "path&pcg",
               "cull&pcg", "opp&pcg", "opp&cull", "path\\pcg", "pcg\\path",
               "cull\\pcg", "pcg\\cull"});

  uint64_t Tot[4] = {0, 0, 0, 0};
  for (const std::string &Name : E.SubjectNames) {
    std::set<uint64_t> B[4];
    for (int K = 0; K < 4; ++K) {
      B[K] = E.at(Name, Kinds[K]).medianRunBugs();
      Tot[K] += B[K].size();
    }
    T.addRow({Name, Table::num(uint64_t(B[0].size())),
              Table::num(uint64_t(B[1].size())),
              Table::num(uint64_t(B[2].size())),
              Table::num(uint64_t(B[3].size())),
              Table::num(uint64_t(setIntersectSize(B[0], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[2], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[3], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[3], B[2]))),
              Table::num(uint64_t(setSubtractSize(B[0], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[0]))),
              Table::num(uint64_t(setSubtractSize(B[2], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[2])))});
  }
  T.addRow({"TOTAL", Table::num(Tot[0]), Table::num(Tot[1]),
            Table::num(Tot[2]), Table::num(Tot[3]), "", "", "", "", "", "",
            "", ""});
  T.print();
  return 0;
}
