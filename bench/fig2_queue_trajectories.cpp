//===- fig2_queue_trajectories.cpp - Fig. 2 reproduction ----------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Fig. 2: relative queue-size trajectories of the three
// path-aware techniques (baseline path, culling with its sawtooth
// restarts, opportunistic with its small inherited queue) plus pcguard.
// Prints one CSV-ish series per fuzzer, sampled over the campaign.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Fig. 2: queue-size trajectories (path, cull, opp, pcguard)");

  // Default to a queue-explosive subject, as the figure illustrates the
  // explosion; REPRO_SUBJECTS narrows this too.
  const Subject *S = nullptr;
  for (const Subject &Sub : C.Subjects)
    if (Sub.Name == "infotocap")
      S = &Sub;
  if (!S)
    S = &C.Subjects.front();

  // The four trajectories are independent campaigns over one shared
  // subject build: batch them and print in the fixed kind order.
  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::Cull,
                                         FuzzerKind::Opp, FuzzerKind::Pcguard};
  std::vector<BatchJob> Jobs;
  for (FuzzerKind Kind : Kinds) {
    BatchJob J;
    J.S = S;
    J.Opts = C.campaignOptions();
    J.Opts.Kind = Kind;
    J.Opts.GrowthSampleInterval =
        static_cast<uint32_t>(std::max<uint64_t>(256, C.Execs / 40));
    Jobs.push_back(J);
  }
  std::vector<CampaignResult> Results = runCampaigns(Jobs);
  exportTraces(C, Results);

  std::printf("subject: %s\n\n", S->Name.c_str());
  std::printf("fuzzer,execs,queue\n");
  for (size_t I = 0; I < Kinds.size(); ++I)
    for (auto [Execs, Queue] : Results[I].QueueGrowth)
      std::printf("%s,%llu,%llu\n", fuzzerKindName(Kinds[I]),
                  static_cast<unsigned long long>(Execs),
                  static_cast<unsigned long long>(Queue));
  return 0;
}
