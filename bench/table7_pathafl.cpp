//===- table7_pathafl.cpp - Table VII / Appendix C reproduction ---------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table VII: our path-aware fuzzers against the PathAFL
// comparator. Expected shape (paper): PathAFL finds roughly a third of
// the bugs the paper's fuzzers expose, with a small number of exclusives.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table VII: unique bugs, our path-aware fuzzers vs PathAFL");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::PathAfl,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "pathafl", "cull", "opp", "path&pafl",
               "cull&pafl", "opp&pafl", "path\\pafl", "pafl\\path",
               "cull\\pafl", "pafl\\cull", "opp\\pafl", "pafl\\opp"});

  std::set<uint64_t> Tot[4];
  for (const std::string &Name : E.SubjectNames) {
    std::set<uint64_t> B[4];
    for (int K = 0; K < 4; ++K) {
      B[K] = E.at(Name, Kinds[K]).cumulativeBugs();
      for (uint64_t X : B[K])
        Tot[K].insert(X ^ fnv1a(Name));
    }
    T.addRow({Name, Table::num(uint64_t(B[0].size())),
              Table::num(uint64_t(B[1].size())),
              Table::num(uint64_t(B[2].size())),
              Table::num(uint64_t(B[3].size())),
              Table::num(uint64_t(setIntersectSize(B[0], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[2], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[3], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[0], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[0]))),
              Table::num(uint64_t(setSubtractSize(B[2], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[2]))),
              Table::num(uint64_t(setSubtractSize(B[3], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[3])))});
  }
  T.addRow({"TOTAL", Table::num(uint64_t(Tot[0].size())),
            Table::num(uint64_t(Tot[1].size())),
            Table::num(uint64_t(Tot[2].size())),
            Table::num(uint64_t(Tot[3].size())),
            Table::num(uint64_t(setIntersectSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setIntersectSize(Tot[2], Tot[1]))),
            Table::num(uint64_t(setIntersectSize(Tot[3], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[0]))),
            Table::num(uint64_t(setSubtractSize(Tot[2], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[2]))),
            Table::num(uint64_t(setSubtractSize(Tot[3], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[3])))});
  T.print();

  if (!Tot[1].empty() && !Tot[2].empty())
    std::printf("\nPathAFL finds %.1f%% of cull's bugs.\n",
                100.0 * double(setIntersectSize(Tot[1], Tot[2])) /
                    double(Tot[2].size()));
  return 0;
}
