//===- BenchCommon.h - Shared benchmark-harness configuration ---*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Every table/figure binary reads the same environment knobs, mirroring
// the artifact's RUNTIME / FUZZING_WINDOW_ORIG variables:
//
//   REPRO_RUNS      runs per (subject, fuzzer) pair   (default 3;
//                   the paper uses 10)
//   REPRO_EXECS     execution budget per run          (default 20000;
//                   the paper uses 48 hours)
//   REPRO_SUBJECTS  comma-separated subject subset    (default: all 18)
//   REPRO_SEED      base seed                         (default 7)
//   REPRO_LONG      multiply the budget by 8 (the "1-week campaign")
//   REPRO_VERBOSE   progress lines on stderr
//   PATHFUZZ_JOBS   worker threads for the campaign batch runner
//                   (default: hardware concurrency; results are
//                   byte-identical at any value)
//   PATHFUZZ_TRACE  telemetry tracing (see telemetry/Trace.h); with
//                   out=PATH the drivers that call exportTraces() write
//                   the merged campaign trace JSONL (and, with csv, the
//                   queue-trajectory CSV) next to their printed tables
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_BENCH_BENCHCOMMON_H
#define PATHFUZZ_BENCH_BENCHCOMMON_H

#include "strategy/Batch.h"
#include "strategy/Evaluation.h"
#include "support/Env.h"
#include "support/Hashing.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "targets/Targets.h"
#include "telemetry/Export.h"

#include <cstdio>

namespace pathfuzz {
namespace bench {

struct BenchConfig {
  uint32_t Runs;
  uint64_t Execs;
  uint64_t Seed;
  bool Verbose;
  std::vector<strategy::Subject> Subjects;
  telemetry::TraceConfig Trace;

  static BenchConfig fromEnv() {
    BenchConfig C;
    C.Runs = static_cast<uint32_t>(envU64("REPRO_RUNS", 3));
    C.Execs = envU64("REPRO_EXECS", 20000);
    if (envU64("REPRO_LONG", 0))
      C.Execs *= 8;
    C.Seed = envU64("REPRO_SEED", 7);
    C.Verbose = envU64("REPRO_VERBOSE", 0) != 0;
    C.Subjects = targets::subjectsFromEnv();
    C.Trace = telemetry::traceConfigFromEnv();
    return C;
  }

  strategy::CampaignOptions campaignOptions() const {
    strategy::CampaignOptions Opts;
    Opts.ExecBudget = Execs;
    Opts.Seed = Seed;
    Opts.Trace = Trace;
    return Opts;
  }

  void printHeader(const char *What) const {
    std::printf("=== %s ===\n", What);
    std::printf("(%u run(s) x %llu execs per <subject, fuzzer> on %zu "
                "thread(s); REPRO_RUNS/REPRO_EXECS/REPRO_SUBJECTS/"
                "PATHFUZZ_JOBS scale this)\n\n",
                Runs, static_cast<unsigned long long>(Execs),
                strategy::resolvedJobCount());
  }
};

/// Run the standard evaluation for this binary's fuzzers. Campaigns fan
/// out across the batch runner's thread pool; output stays byte-identical
/// at any PATHFUZZ_JOBS value.
inline strategy::Evaluation
runEvaluation(const BenchConfig &C,
              const std::vector<strategy::FuzzerKind> &Kinds) {
  return strategy::evaluate(C.Subjects, Kinds, C.Runs, C.campaignOptions(),
                            C.Verbose);
}

/// Emit the campaign traces a driver collected when PATHFUZZ_TRACE asks
/// for out=PATH: the merged JSONL goes to PATH, and with the csv flag
/// the queue-trajectory table additionally goes to PATH.csv. Export
/// failures (including the telemetry.export.fail fault site) degrade to
/// a stderr warning — the driver's printed tables are never affected.
inline void exportTraces(const BenchConfig &C,
                         const std::vector<strategy::CampaignResult> &Results) {
  if (!C.Trace.Enabled || C.Trace.OutPath.empty())
    return;
  std::vector<const telemetry::CampaignTrace *> Traces;
  for (const strategy::CampaignResult &R : Results)
    if (R.Trace)
      Traces.push_back(R.Trace.get());
  if (Traces.empty())
    return;
  std::string Err;
  std::string Jsonl = telemetry::mergedJsonl(Traces, C.Trace.Wall);
  if (!telemetry::exportFile(C.Trace.OutPath, Jsonl, &Err))
    std::fprintf(stderr, "warning: trace export failed: %s\n", Err.c_str());
  if (C.Trace.Csv &&
      !telemetry::exportFile(C.Trace.OutPath + ".csv",
                             telemetry::queueTrajectoryCsv(Traces), &Err))
    std::fprintf(stderr, "warning: trace export failed: %s\n", Err.c_str());
}

} // namespace bench
} // namespace pathfuzz

#endif // PATHFUZZ_BENCH_BENCHCOMMON_H
