//===- store_overhead.cpp - Durable-store cost measurement --------------------===//
//
// Part of the pathfuzz project.
//
// Measures what the durability layer costs — the per-checkpoint
// seal+fsync tax is fixed, so it dominates the second-long bench
// campaigns here and amortizes to noise on real ones:
//
//  - end-to-end: a stored (checkpoint-every-interval, fsync-per-write)
//    vs an in-memory campaign on a shared build, median of paired reps,
//    plus the byte-identity check that durability is purely protective;
//  - the resume leg: time to finish a campaign from its last persisted
//    checkpoint vs running it whole;
//  - checkpoint volume: files written, bytes per checkpoint;
//  - and writes the record to BENCH_store.json (PATHFUZZ_BENCH_OUT
//    overrides the path).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "strategy/BuildCache.h"
#include "strategy/Store.h"
#include "telemetry/Report.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <filesystem>

#include <unistd.h>

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;
namespace fs = std::filesystem;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Durable-store overhead: stored vs in-memory campaigns");

  const Subject *S = nullptr;
  for (const Subject &Sub : C.Subjects)
    if (Sub.Name == "jhead")
      S = &Sub;
  if (!S)
    S = &C.Subjects.front();

  BuildCache Cache;
  std::shared_ptr<SubjectBuild> B = Cache.get(*S);

  CampaignOptions InMemory = C.campaignOptions();
  InMemory.Kind = FuzzerKind::Path;
  InMemory.Trace = telemetry::TraceConfig(); // baseline ignores the env

  const std::string Root =
      (fs::temp_directory_path() /
       ("pathfuzz-bench-store-" + std::to_string(::getpid())))
          .string();
  std::error_code Ec;
  fs::remove_all(Root, Ec);

  // 8 checkpoints per campaign — the runStoredCampaign default cadence —
  // so the measured tax includes seal + atomic write + fsync + rotate,
  // eight times per run.
  const uint64_t Interval = std::max<uint64_t>(1, C.Execs / 8);

  const uint32_t Reps = std::max<uint32_t>(5, C.Runs);
  uint64_t MemMin = ~0ull, StoredMin = ~0ull;
  std::vector<double> PairPct;
  std::vector<uint8_t> MemBytes, StoredBytes;
  (void)runCampaign(*B, InMemory); // warm caches before timing anything
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    // Fresh directory per stored rep: each run pays the full fresh-start
    // cost, never a short-circuit through a done manifest.
    CampaignOptions Stored = InMemory;
    Stored.StoreDir = Root + "/rep-" + std::to_string(Rep);
    Stored.CheckpointInterval = Interval;
    // Alternate order within each pair so machine drift taxes both sides
    // evenly (same scheme as telemetry_overhead).
    const bool StoredFirst = (Rep & 1) != 0;
    uint64_t M = 0, D = 0;
    CampaignResult RM, RD;
    for (int Leg = 0; Leg < 2; ++Leg) {
      const bool RunStored = StoredFirst == (Leg == 0);
      uint64_t T0 = nowMicros();
      CampaignResult R = runCampaign(*B, RunStored ? Stored : InMemory);
      uint64_t Dt = nowMicros() - T0;
      if (RunStored) {
        D = Dt;
        RD = std::move(R);
      } else {
        M = Dt;
        RM = std::move(R);
      }
    }
    MemMin = std::min(MemMin, M);
    StoredMin = std::min(StoredMin, D);
    if (M)
      PairPct.push_back(100.0 * (double(D) - double(M)) / double(M));
    if (Rep == 0) {
      MemBytes = serializeCampaignResult(RM);
      StoredBytes = serializeCampaignResult(RD);
    }
  }
  const bool Identical = MemBytes == StoredBytes;
  std::sort(PairPct.begin(), PairPct.end());
  const double OverheadPct =
      PairPct.empty() ? 0.0 : PairPct[PairPct.size() / 2];

  // Checkpoint volume, from one traced stored run in its own directory.
  CampaignOptions Traced = InMemory;
  Traced.StoreDir = Root + "/traced";
  Traced.CheckpointInterval = Interval;
  Traced.Trace.Enabled = true;
  CampaignResult TracedR = runCampaign(*B, Traced);
  uint64_t CkptWritten = 0, CkptBytes = 0;
  if (TracedR.Trace)
    for (const telemetry::InstanceRecord &Rec : TracedR.Trace->Instances)
      if (Rec.Label == "store") {
        auto Find = [&Rec](const char *Name) -> uint64_t {
          auto It = Rec.Metrics.counters().find(Name);
          return It == Rec.Metrics.counters().end() ? 0 : It->second;
        };
        CkptWritten = Find("store.checkpoint.written");
        CkptBytes = Find("store.checkpoint.bytes");
      }

  // The resume leg: seed a fresh directory with the campaign's persisted
  // checkpoints minus the last interval's progress (as a SIGKILL there
  // would leave it), then time finishing from disk.
  uint64_t ResumeMicros = 0;
  {
    CampaignOptions Seeded = InMemory;
    Seeded.CheckpointInterval = Interval;
    std::vector<std::vector<uint8_t>> Ckpts;
    Seeded.CheckpointSink = [&Ckpts](const std::vector<uint8_t> &Blob) {
      Ckpts.push_back(Blob);
    };
    (void)runCampaign(*B, Seeded);
    if (!Ckpts.empty()) {
      std::string Err;
      auto Store =
          CampaignStore::open(Root + "/resume", S->Name, InMemory, &Err);
      if (Store)
        Store->writeCheckpoint(Ckpts.back());
      CampaignOptions Resume = InMemory;
      Resume.StoreDir = Root + "/resume";
      Resume.CheckpointInterval = Interval;
      uint64_t T0 = nowMicros();
      CampaignResult R = runCampaign(*B, Resume);
      ResumeMicros = nowMicros() - T0;
      if (serializeCampaignResult(R) != MemBytes)
        std::fprintf(stderr, "warning: resumed result diverged\n");
    }
  }

  // Interval sweep: the tax scales with checkpoint count, so price the
  // layer at coarser and finer cadences than the default too.
  struct SweepPoint {
    uint64_t Interval;
    uint64_t Micros;
  };
  std::vector<SweepPoint> Sweep;
  for (uint64_t Div : {4, 8, 16}) {
    CampaignOptions Pt = InMemory;
    Pt.StoreDir = Root + "/sweep-" + std::to_string(Div);
    Pt.CheckpointInterval = std::max<uint64_t>(1, C.Execs / Div);
    uint64_t Best = ~0ull;
    for (uint32_t Rep = 0; Rep < 2; ++Rep) {
      fs::remove_all(Pt.StoreDir, Ec); // fresh start, never a done-replay
      uint64_t T0 = nowMicros();
      (void)runCampaign(*B, Pt);
      Best = std::min(Best, nowMicros() - T0);
    }
    Sweep.push_back({Pt.CheckpointInterval, Best});
  }

  std::printf("subject: %s (%" PRIu64 " execs, %u paired reps, "
              "%" PRIu64 "-exec checkpoint interval)\n",
              S->Name.c_str(), C.Execs, Reps, Interval);
  std::printf("campaign, in-memory:   %8" PRIu64 " us (best)\n", MemMin);
  std::printf("campaign, stored:      %8" PRIu64 " us (best)\n", StoredMin);
  std::printf("overhead, median of paired reps: %+.2f%%\n", OverheadPct);
  std::printf("checkpoints per run: %" PRIu64 " (%" PRIu64
              " bytes total, %" PRIu64 " bytes each)\n",
              CkptWritten, CkptBytes,
              CkptWritten ? CkptBytes / CkptWritten : 0);
  std::printf("resume from last checkpoint: %8" PRIu64 " us\n", ResumeMicros);
  for (const SweepPoint &P : Sweep)
    std::printf("interval sweep: every %6" PRIu64 " execs -> %8" PRIu64
                " us (%+.2f%% vs in-memory best)\n",
                P.Interval, P.Micros,
                MemMin ? 100.0 * (double(P.Micros) - double(MemMin)) /
                             double(MemMin)
                       : 0.0);
  std::printf("stored == in-memory results: %s\n", Identical ? "yes" : "NO");

  std::vector<const telemetry::CampaignTrace *> Traces;
  if (TracedR.Trace)
    Traces.push_back(TracedR.Trace.get());
  std::string Jsonl = telemetry::mergedJsonl(Traces);
  std::string Bench = telemetry::benchJsonFromJsonl(Jsonl, "store_overhead");

  std::string SweepJson = "\"interval_sweep\":[";
  for (size_t I = 0; I < Sweep.size(); ++I) {
    char Pt[96];
    std::snprintf(Pt, sizeof(Pt),
                  "%s{\"interval\":%" PRIu64 ",\"micros\":%" PRIu64 "}",
                  I ? "," : "", Sweep[I].Interval, Sweep[I].Micros);
    SweepJson += Pt;
  }
  SweepJson += "],";

  char Extra[512];
  std::snprintf(Extra, sizeof(Extra),
                "\"subject\":\"%s\",\"execs\":%" PRIu64 ",\"reps\":%u,"
                "\"checkpoint_interval\":%" PRIu64 ","
                "\"campaign_inmemory_micros\":%" PRIu64 ","
                "\"campaign_stored_micros\":%" PRIu64 ","
                "\"overhead_pct\":%.3f,"
                "\"checkpoints_written\":%" PRIu64 ","
                "\"checkpoint_bytes\":%" PRIu64 ","
                "\"resume_micros\":%" PRIu64 ","
                "\"results_identical\":%s,",
                S->Name.c_str(), C.Execs, Reps, Interval, MemMin, StoredMin,
                OverheadPct, CkptWritten, CkptBytes, ResumeMicros,
                Identical ? "true" : "false");
  std::string Doc = Bench;
  size_t Pos = Doc.find("\"configs\":");
  if (Pos != std::string::npos)
    Doc.insert(Pos, SweepJson + Extra);

  fs::remove_all(Root, Ec);

  std::string OutPath = envStr("PATHFUZZ_BENCH_OUT", "BENCH_store.json");
  std::string Err;
  if (!telemetry::exportFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "warning: bench record export failed: %s\n",
                 Err.c_str());
    return Identical ? 0 : 1;
  }
  std::printf("\nwrote %s\n", OutPath.c_str());
  return Identical ? 0 : 1;
}
