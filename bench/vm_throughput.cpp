//===- vm_throughput.cpp - VM fast-path throughput measurement ----------------===//
//
// Part of the pathfuzz project.
//
// Measures what the VM execution fast path (vm/Image.h + vm/Exec.cpp)
// buys over the reference interpreter, backing docs/PERFORMANCE.md:
//
//  - raw executor throughput on the example subjects
//    (examples/minilang/*.ml): each replays the same mutated-seed input
//    set through both engines — ns/step, execs/sec, best-of and
//    median-of-paired-reps speedup per subject, with a field-level
//    identity sweep (fault, steps, return value, coverage map, shadow
//    edges, cmp log) before any timing. The headline is the median
//    speedup across the example subjects;
//  - end-to-end: interpreter vs fast-path campaigns on a shared target
//    build, alternating paired reps, median per-pair speedup and
//    best-of-N execs/sec, plus the serializeCampaignResult
//    byte-identity check;
//  - fast-path bookkeeping: pre-decoded image size and cache hits, and
//    the vm.fastpath.* telemetry series (snapshot-reset bytes) from a
//    traced campaign;
//  - and writes the whole record to BENCH_vm.json (PATHFUZZ_BENCH_OUT
//    overrides the path).
//
// The speedup is machine-dependent; the exit code reflects only the
// identity checks, which must hold everywhere.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cov/CoverageMap.h"
#include "strategy/BuildCache.h"
#include "telemetry/Report.h"
#include "vm/Image.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The example subjects under examples/minilang/. PATHFUZZ_EXAMPLES_DIR
/// overrides the baked-in source location (for out-of-tree runs).
std::vector<Subject> loadExampleSubjects() {
#ifdef PATHFUZZ_SOURCE_DIR
  const char *Default = PATHFUZZ_SOURCE_DIR "/examples/minilang";
#else
  const char *Default = "examples/minilang";
#endif
  std::string Dir = envStr("PATHFUZZ_EXAMPLES_DIR", Default);
  std::vector<Subject> Out;
  for (const char *Name : {"sum", "lookup", "checksum", "tokens", "rle"}) {
    std::ifstream F(Dir + "/" + Name + ".ml");
    if (!F)
      continue;
    std::ostringstream SS;
    SS << F.rdbuf();
    Subject S;
    S.Name = Name;
    S.Source = SS.str();
    if (std::strcmp(Name, "lookup") == 0) {
      S.Seeds.push_back({'a', 'b', 'c'});
    } else {
      // The loop subjects scale with input length; a 1 KiB seed keeps
      // the measurement in the executor rather than in per-exec setup.
      fuzz::Input In(1024);
      Rng R(7);
      for (uint8_t &B : In)
        B = static_cast<uint8_t>(R.below(256));
      S.Seeds.push_back(std::move(In));
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

/// The raw-executor workload: the subject's seeds plus mutated copies
/// (fixed random stream, independent of the engine under test) — the
/// same shape of input a fuzzing campaign replays.
std::vector<fuzz::Input> makeWorkload(const Subject &S, size_t Count) {
  std::vector<fuzz::Input> Inputs = S.Seeds;
  Rng R(0x5eedbeef);
  while (Inputs.size() < Count) {
    fuzz::Input In = S.Seeds[R.index(S.Seeds.size())];
    for (int M = 0; M < 4; ++M)
      In[R.index(In.size())] = static_cast<uint8_t>(R.below(256));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

struct RawEngine {
  vm::Vm Machine;
  cov::CoverageMap Map;

  RawEngine(const InstrumentedBuild &IB, const instr::ShadowEdgeIndex &Shadow,
            const vm::ProgramImage *Image)
      : Machine(IB.Mod, &Shadow), Map(16) {
    if (Image)
      Machine.attachImage(Image);
  }

  vm::ExecResult exec(const InstrumentedBuild &IB, const fuzz::Input &In,
                      bool LogCmps, bool ResetMap) {
    if (ResetMap)
      Map.reset();
    vm::FeedbackContext Fb;
    Fb.Map = Map.data();
    Fb.MapMask = Map.mask();
    Fb.FuncKeys = IB.Report.FuncKeys.data();
    vm::ExecOptions EO;
    EO.LogCmps = LogCmps;
    return Machine.run(In.data(), In.size(), EO, &Fb);
  }
};

/// Field-level identity of two executions (everything ExecResult carries
/// except the fast-path-only DirtyGlobalCells bookkeeping).
bool sameResult(const vm::ExecResult &A, const vm::ExecResult &B) {
  return A.TheFault.Kind == B.TheFault.Kind && A.TheFault.Func == B.TheFault.Func &&
         A.TheFault.Block == B.TheFault.Block &&
         A.TheFault.InstrIdx == B.TheFault.InstrIdx &&
         A.TheFault.stackHash() == B.TheFault.stackHash() &&
         A.Steps == B.Steps && A.ReturnValue == B.ReturnValue &&
         A.ShadowEdges == B.ShadowEdges && A.CmpOperands == B.CmpOperands &&
         A.HeapAllocs == B.HeapAllocs &&
         A.HeapCellsAllocated == B.HeapCellsAllocated;
}

/// Per-example-subject measurement record.
struct RawMeasurement {
  std::string Name;
  uint64_t StepsPerExec = 0;
  double InterpNsPerStep = 0.0;
  double FastNsPerStep = 0.0;
  double InterpEps = 0.0;
  double FastEps = 0.0;
  double SpeedupBest = 0.0;
  double SpeedupMedian = 0.0;
  bool Identical = false;
};

/// Identity sweep + alternating paired timing of one subject through
/// both engines. The identity pass resets the coverage map per exec and
/// compares every observable field; the timed legs skip the reset (a
/// constant memset cost identical for both engines) so they measure the
/// executor itself.
RawMeasurement measureRaw(const Subject &S, uint32_t Reps) {
  RawMeasurement M;
  M.Name = S.Name;

  BuildCache Cache;
  std::shared_ptr<SubjectBuild> SB = Cache.get(S);
  CampaignOptions O;
  O.VmMode = vm::VmExecMode::FastPath;
  const InstrumentedBuild &IB = SB->instrumented(instr::Feedback::Path, O);

  std::vector<fuzz::Input> Inputs = makeWorkload(S, 256);
  RawEngine EngInterp(IB, SB->shadow(), nullptr);
  RawEngine EngFast(IB, SB->shadow(), IB.Image.get());

  M.Identical = true;
  uint64_t TotalSteps = 0;
  for (const fuzz::Input &In : Inputs) {
    vm::ExecResult RA = EngInterp.exec(IB, In, /*LogCmps=*/true, true);
    vm::ExecResult RB = EngFast.exec(IB, In, /*LogCmps=*/true, true);
    M.Identical &= sameResult(RA, RB);
    M.Identical &= std::memcmp(EngInterp.Map.data(), EngFast.Map.data(),
                               EngInterp.Map.size()) == 0;
    TotalSteps += RA.Steps;
  }
  M.StepsPerExec = TotalSteps / Inputs.size();

  uint64_t InterpMin = ~0ull, FastMin = ~0ull;
  std::vector<double> PairSpeedup;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    const bool FastFirst = (Rep & 1) != 0;
    uint64_t UI = 0, UF = 0;
    for (int Leg = 0; Leg < 2; ++Leg) {
      const bool RunFast = FastFirst == (Leg == 0);
      RawEngine &E = RunFast ? EngFast : EngInterp;
      uint64_t T0 = nowMicros();
      for (const fuzz::Input &In : Inputs)
        (void)E.exec(IB, In, /*LogCmps=*/false, false);
      (RunFast ? UF : UI) = nowMicros() - T0;
    }
    InterpMin = std::min(InterpMin, UI);
    FastMin = std::min(FastMin, UF);
    if (UF)
      PairSpeedup.push_back(double(UI) / double(UF));
  }
  std::sort(PairSpeedup.begin(), PairSpeedup.end());
  M.SpeedupMedian =
      PairSpeedup.empty() ? 0.0 : PairSpeedup[PairSpeedup.size() / 2];
  M.SpeedupBest = FastMin ? double(InterpMin) / double(FastMin) : 0.0;
  if (TotalSteps) {
    M.InterpNsPerStep = double(InterpMin) * 1000.0 / double(TotalSteps);
    M.FastNsPerStep = double(FastMin) * 1000.0 / double(TotalSteps);
  }
  if (InterpMin)
    M.InterpEps = double(Inputs.size()) * 1e6 / double(InterpMin);
  if (FastMin)
    M.FastEps = double(Inputs.size()) * 1e6 / double(FastMin);
  return M;
}

} // namespace

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("VM throughput: fast path vs reference interpreter");

  //===--------------------------------------------------------------------===//
  // Raw executor on the example subjects: identity sweep, paired timing.
  //===--------------------------------------------------------------------===//

  std::vector<Subject> Examples = loadExampleSubjects();
  const uint32_t RawReps = std::max<uint32_t>(7, C.Runs);
  std::vector<RawMeasurement> Raw;
  bool RawIdentical = true;
  for (const Subject &S : Examples) {
    Raw.push_back(measureRaw(S, RawReps));
    RawIdentical &= Raw.back().Identical;
  }
  std::vector<double> Medians;
  for (const RawMeasurement &M : Raw)
    Medians.push_back(M.SpeedupMedian);
  std::sort(Medians.begin(), Medians.end());
  const double ExamplesSpeedupMedian =
      Medians.empty() ? 0.0 : Medians[Medians.size() / 2];

  //===--------------------------------------------------------------------===//
  // End-to-end campaigns: alternating paired reps on a shared target
  // build (the fuzzing layer on top dilutes the raw-executor win; both
  // numbers are reported).
  //===--------------------------------------------------------------------===//

  const Subject *S = nullptr;
  for (const Subject &Sub : C.Subjects)
    if (Sub.Name == "jhead")
      S = &Sub;
  if (!S)
    S = &C.Subjects.front();

  BuildCache Cache;
  std::shared_ptr<SubjectBuild> SB = Cache.get(*S);

  CampaignOptions Interp = C.campaignOptions();
  Interp.Kind = FuzzerKind::Path;
  Interp.Trace = telemetry::TraceConfig(); // timed legs run untraced
  Interp.VmMode = vm::VmExecMode::Interpreter;
  CampaignOptions Fast = Interp;
  Fast.VmMode = vm::VmExecMode::FastPath;

  const uint32_t Reps = std::max<uint32_t>(3, C.Runs);
  uint64_t InterpMin = ~0ull, FastMin = ~0ull;
  std::vector<double> PairSpeedup;
  bool CampaignIdentical = true;
  (void)runCampaign(*SB, Interp); // warm caches before timing anything
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    const bool FastFirst = (Rep & 1) != 0;
    uint64_t UI = 0, UF = 0;
    std::vector<uint8_t> BytesI, BytesF;
    for (int Leg = 0; Leg < 2; ++Leg) {
      const bool RunFast = FastFirst == (Leg == 0);
      uint64_t T0 = nowMicros();
      CampaignResult R = runCampaign(*SB, RunFast ? Fast : Interp);
      uint64_t Dt = nowMicros() - T0;
      (RunFast ? UF : UI) = Dt;
      (RunFast ? BytesF : BytesI) = serializeCampaignResult(R);
    }
    InterpMin = std::min(InterpMin, UI);
    FastMin = std::min(FastMin, UF);
    if (UF)
      PairSpeedup.push_back(double(UI) / double(UF));
    CampaignIdentical &= BytesI == BytesF;
  }
  std::sort(PairSpeedup.begin(), PairSpeedup.end());
  const double CampaignSpeedup =
      PairSpeedup.empty() ? 0.0 : PairSpeedup[PairSpeedup.size() / 2];
  const double InterpEps =
      InterpMin ? double(C.Execs) * 1e6 / double(InterpMin) : 0.0;
  const double FastEps = FastMin ? double(C.Execs) * 1e6 / double(FastMin) : 0.0;

  //===--------------------------------------------------------------------===//
  // Fast-path bookkeeping: image cache stats and the vm.fastpath.* series
  // from one traced fast-path campaign.
  //===--------------------------------------------------------------------===//

  CampaignOptions TracedFast = Fast;
  TracedFast.Trace.Enabled = true;
  CampaignResult TracedR = runCampaign(*SB, TracedFast);
  uint64_t DirtyResetBytes = 0;
  int64_t ImageBytes = 0;
  if (TracedR.Trace)
    for (const telemetry::InstanceRecord &I : TracedR.Trace->Instances) {
      auto It = I.Metrics.counters().find("vm.fastpath.reset.bytes");
      if (It != I.Metrics.counters().end())
        DirtyResetBytes += It->second;
      auto Gt = I.Metrics.gauges().find("vm.fastpath.image.bytes");
      if (Gt != I.Metrics.gauges().end())
        ImageBytes = Gt->second;
    }

  const bool Identical = RawIdentical && CampaignIdentical;

  std::printf("dispatch: %s\n\n",
              vm::threadedDispatch() ? "computed-goto (threaded)"
                                     : "portable switch");
  std::printf("raw executor, example subjects (256 mutated-seed inputs, "
              "%u paired reps each):\n",
              RawReps);
  std::printf("  %-9s %11s %15s %13s %8s %8s\n", "subject", "steps/exec",
              "interp ns/step", "fast ns/step", "best", "median");
  for (const RawMeasurement &M : Raw)
    std::printf("  %-9s %11" PRIu64 " %15.2f %13.2f %7.2fx %7.2fx\n",
                M.Name.c_str(), M.StepsPerExec, M.InterpNsPerStep,
                M.FastNsPerStep, M.SpeedupBest, M.SpeedupMedian);
  std::printf("  median speedup across example subjects:  %.2fx\n\n",
              ExamplesSpeedupMedian);
  std::printf("campaign subject: %s (%" PRIu64 " execs, %u paired reps)\n",
              S->Name.c_str(), C.Execs, Reps);
  std::printf("campaign interpreter: %8" PRIu64 " us (best), %9.0f execs/sec\n",
              InterpMin, InterpEps);
  std::printf("campaign fast path:   %8" PRIu64 " us (best), %9.0f execs/sec\n",
              FastMin, FastEps);
  std::printf("campaign speedup, median of paired reps: %.2fx\n",
              CampaignSpeedup);
  std::printf("image: %" PRId64 " bytes, %zu decode(s), %zu cache hit(s)\n",
              ImageBytes, SB->imageBuilds(), SB->imageHits());
  std::printf("snapshot reset: %" PRIu64 " bytes restored over the traced "
              "campaign\n",
              DirtyResetBytes);
  std::printf("fast path == interpreter results: %s\n",
              Identical ? "yes" : "NO");

  std::vector<const telemetry::CampaignTrace *> Traces;
  if (TracedR.Trace)
    Traces.push_back(TracedR.Trace.get());
  std::string Jsonl = telemetry::mergedJsonl(Traces);
  std::string Bench = telemetry::benchJsonFromJsonl(Jsonl, "vm_throughput");

  // Splice the measurements into the report tool's bench record, right
  // before its "configs" array.
  std::string Extra;
  {
    char Buf[512];
    Extra += "\"examples\":[";
    for (size_t I = 0; I < Raw.size(); ++I) {
      const RawMeasurement &M = Raw[I];
      std::snprintf(Buf, sizeof(Buf),
                    "%s{\"name\":\"%s\",\"steps_per_exec\":%" PRIu64
                    ",\"interp_ns_per_step\":%.3f,\"fast_ns_per_step\":%.3f,"
                    "\"interp_execs_per_sec\":%.1f,\"fast_execs_per_sec\":%.1f,"
                    "\"speedup_best\":%.3f,\"speedup_median\":%.3f,"
                    "\"identical\":%s}",
                    I ? "," : "", M.Name.c_str(), M.StepsPerExec,
                    M.InterpNsPerStep, M.FastNsPerStep, M.InterpEps, M.FastEps,
                    M.SpeedupBest, M.SpeedupMedian,
                    M.Identical ? "true" : "false");
      Extra += Buf;
    }
    Extra += "],";
    std::snprintf(
        Buf, sizeof(Buf),
        "\"examples_speedup_median\":%.3f,"
        "\"threaded_dispatch\":%s,\"campaign_subject\":\"%s\","
        "\"campaign_execs\":%" PRIu64 ",\"reps\":%u,",
        ExamplesSpeedupMedian, vm::threadedDispatch() ? "true" : "false",
        S->Name.c_str(), C.Execs, Reps);
    Extra += Buf;
    std::snprintf(
        Buf, sizeof(Buf),
        "\"interp_campaign_micros\":%" PRIu64 ",\"fast_campaign_micros\":%" PRIu64
        ",\"interp_execs_per_sec\":%.1f,\"fast_execs_per_sec\":%.1f,"
        "\"campaign_speedup_median\":%.3f,"
        "\"image_bytes\":%" PRId64 ",\"image_builds\":%zu,\"image_hits\":%zu,"
        "\"dirty_reset_bytes\":%" PRIu64 ",\"results_identical\":%s,",
        InterpMin, FastMin, InterpEps, FastEps, CampaignSpeedup, ImageBytes,
        SB->imageBuilds(), SB->imageHits(), DirtyResetBytes,
        Identical ? "true" : "false");
    Extra += Buf;
  }
  std::string Doc = Bench;
  size_t Pos = Doc.find("\"configs\":");
  if (Pos != std::string::npos)
    Doc.insert(Pos, Extra);

  std::string OutPath = envStr("PATHFUZZ_BENCH_OUT", "BENCH_vm.json");
  std::string Err;
  if (!telemetry::exportFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "warning: bench record export failed: %s\n",
                 Err.c_str());
    return Identical ? 0 : 1;
  }
  std::printf("\nwrote %s\n", OutPath.c_str());
  return Identical ? 0 : 1;
}
