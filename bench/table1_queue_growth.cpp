//===- table1_queue_growth.cpp - Table I reproduction -------------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table I: per-subject function counts and the queue sizes an
// edge-feedback and a path-feedback fuzzer accumulate over one campaign.
// Expected shape: the path queue is a multiple of the edge queue, with
// extreme blowups on the branchy state-machine subjects (infotocap, lame
// in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/Compile.h"

#include <chrono>

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table I: queue items after an edge vs path campaign");

  // All (subject, kind) campaigns are independent: submit the whole
  // cross product to the batch runner and read the results back in row
  // order. Each subject is compiled once and instrumented once per
  // feedback mode, shared by both campaigns.
  std::vector<BatchJob> Jobs;
  for (const Subject &S : C.Subjects)
    for (FuzzerKind Kind : {FuzzerKind::Pcguard, FuzzerKind::Path}) {
      BatchJob J;
      J.S = &S;
      J.Opts = C.campaignOptions();
      J.Opts.Kind = Kind;
      Jobs.push_back(J);
    }

  auto Start = std::chrono::steady_clock::now();
  BatchStats BS;
  std::vector<CampaignResult> Results = runCampaigns(Jobs, 0, &BS);
  exportTraces(C, Results);
  double WallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  Table T;
  T.setHeader({"Benchmark", "Functions", "Queue (edge)", "Queue (path)",
               "path/edge"});

  std::vector<double> Ratios;
  for (size_t I = 0; I < C.Subjects.size(); ++I) {
    const Subject &S = C.Subjects[I];
    lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
    uint64_t Functions = CR.ok() ? CR.Mod->Funcs.size() : 0;

    const CampaignResult &Edge = Results[2 * I];
    const CampaignResult &Path = Results[2 * I + 1];
    double Ratio = Edge.FinalQueueSize
                       ? double(Path.FinalQueueSize) / Edge.FinalQueueSize
                       : 0.0;
    Ratios.push_back(Ratio);
    T.addRow({S.Name, Table::num(Functions), Table::num(Edge.FinalQueueSize),
              Table::num(Path.FinalQueueSize), Table::fixed(Ratio)});
  }
  T.addRow({"GEOMEAN", "", "", "", Table::fixed(geomean(Ratios))});
  T.print();

  std::printf("\n%zu campaigns on %zu thread(s) in %.2fs; %zu subject "
              "compile(s), %zu instrumented build(s)\n",
              Jobs.size(), BS.Threads, WallSec, BS.SubjectsCompiled,
              BS.ModulesInstrumented);
  return 0;
}
