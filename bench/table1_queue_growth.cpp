//===- table1_queue_growth.cpp - Table I reproduction -------------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table I: per-subject function counts and the queue sizes an
// edge-feedback and a path-feedback fuzzer accumulate over one campaign.
// Expected shape: the path queue is a multiple of the edge queue, with
// extreme blowups on the branchy state-machine subjects (infotocap, lame
// in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/Compile.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table I: queue items after an edge vs path campaign");

  Table T;
  T.setHeader({"Benchmark", "Functions", "Queue (edge)", "Queue (path)",
               "path/edge"});

  std::vector<double> Ratios;
  for (const Subject &S : C.Subjects) {
    lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
    uint64_t Functions = CR.ok() ? CR.Mod->Funcs.size() : 0;

    CampaignOptions Opts = C.campaignOptions();
    Opts.Kind = FuzzerKind::Pcguard;
    CampaignResult Edge = runCampaign(S, Opts);
    Opts.Kind = FuzzerKind::Path;
    CampaignResult Path = runCampaign(S, Opts);

    double Ratio = Edge.FinalQueueSize
                       ? double(Path.FinalQueueSize) / Edge.FinalQueueSize
                       : 0.0;
    Ratios.push_back(Ratio);
    T.addRow({S.Name, Table::num(Functions), Table::num(Edge.FinalQueueSize),
              Table::num(Path.FinalQueueSize), Table::fixed(Ratio)});
  }
  T.addRow({"GEOMEAN", "", "", "", Table::fixed(geomean(Ratios))});
  T.print();
  return 0;
}
