//===- table4_edge_coverage.cpp - Table IV reproduction -----------------------===//
//
// Part of the pathfuzz project.
//
// Reproduces Table IV: edge coverage attained cumulatively across runs
// (via the mode-independent shadow edge sets, the afl-showmap analogue),
// plus the set differences vs pcguard. Expected shape (paper): the
// path-aware fuzzers reach somewhat fewer edges in total (path covers
// ~87% of pcguard's) yet each uniquely reaches edges pcguard misses.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table IV: cumulative edge coverage and differences vs "
                "pcguard");

  const std::vector<FuzzerKind> Kinds = {FuzzerKind::Path, FuzzerKind::Pcguard,
                                         FuzzerKind::Cull, FuzzerKind::Opp};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "pcguard", "cull", "opp", "path\\pcg",
               "cull\\pcg", "opp\\pcg"});

  uint64_t Tot[4] = {0, 0, 0, 0};
  uint64_t TotDiff[3] = {0, 0, 0};
  for (const std::string &Name : E.SubjectNames) {
    std::set<uint32_t> Sets[4];
    for (int K = 0; K < 4; ++K) {
      Sets[K] = E.at(Name, Kinds[K]).cumulativeEdges();
      Tot[K] += Sets[K].size();
    }
    size_t DPath = setSubtractSize(Sets[0], Sets[1]);
    size_t DCull = setSubtractSize(Sets[2], Sets[1]);
    size_t DOpp = setSubtractSize(Sets[3], Sets[1]);
    TotDiff[0] += DPath;
    TotDiff[1] += DCull;
    TotDiff[2] += DOpp;
    T.addRow({Name, Table::num(uint64_t(Sets[0].size())),
              Table::num(uint64_t(Sets[1].size())),
              Table::num(uint64_t(Sets[2].size())),
              Table::num(uint64_t(Sets[3].size())), Table::num(uint64_t(DPath)),
              Table::num(uint64_t(DCull)), Table::num(uint64_t(DOpp))});
  }
  T.addRow({"TOTAL", Table::num(Tot[0]), Table::num(Tot[1]),
            Table::num(Tot[2]), Table::num(Tot[3]), Table::num(TotDiff[0]),
            Table::num(TotDiff[1]), Table::num(TotDiff[2])});
  T.print();

  std::printf("\npath covers %.1f%% of pcguard's total edges.\n",
              Tot[1] ? 100.0 * double(Tot[0]) / double(Tot[1]) : 0.0);
  return 0;
}
