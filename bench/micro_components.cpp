//===- micro_components.cpp - google-benchmark micro-benchmarks ---------------===//
//
// Part of the pathfuzz project.
//
// Micro-benchmarks for the per-execution hot paths backing the overhead
// claims: coverage-map classification and novelty checking, VM execution
// under each instrumentation mode, and the havoc mutator. These isolate
// the component costs that Appendix A's end-to-end replay aggregates.
//
//===----------------------------------------------------------------------===//

#include "cov/CoverageMap.h"
#include "fuzz/Mutator.h"
#include "instrument/Instrument.h"
#include "lang/Compile.h"
#include "targets/Targets.h"
#include "telemetry/Trace.h"
#include "vm/Vm.h"

#include <benchmark/benchmark.h>

using namespace pathfuzz;

namespace {

void BM_ClassifyCounts(benchmark::State &State) {
  cov::CoverageMap Map(16);
  Rng R(1);
  for (int I = 0; I < 400; ++I)
    Map.data()[R.below(Map.size())] = static_cast<uint8_t>(R.next());
  for (auto _ : State) {
    cov::CoverageMap Copy = Map;
    Copy.classifyCounts();
    benchmark::DoNotOptimize(Copy.data());
  }
}
BENCHMARK(BM_ClassifyCounts);

void BM_HasNewBits(benchmark::State &State) {
  cov::CoverageMap Map(16);
  Rng R(2);
  for (int I = 0; I < 400; ++I)
    Map.data()[R.below(Map.size())] = 1;
  Map.classifyCounts();
  cov::VirginMap Virgin(Map.size());
  Virgin.hasNewBits(Map); // saturate: steady-state is the common case
  for (auto _ : State) {
    benchmark::DoNotOptimize(Virgin.hasNewBits(Map));
  }
}
BENCHMARK(BM_HasNewBits);

void BM_Havoc(benchmark::State &State) {
  Rng R(3);
  fuzz::MutatorConfig MC;
  fuzz::Mutator Mut(R, MC);
  std::vector<int64_t> Dict = {0x2a, 255, 1024};
  fuzz::Input Base(128, 'x');
  for (auto _ : State) {
    fuzz::Input Data = Base;
    Mut.havoc(Data, Dict);
    benchmark::DoNotOptimize(Data.data());
  }
}
BENCHMARK(BM_Havoc);

/// VM execution of one subject seed under a given instrumentation.
void runVmBench(benchmark::State &State, instr::Feedback Mode) {
  const targets::Subject *S = targets::findSubject("jhead");
  lang::CompileResult CR = lang::compileSource(S->Source, S->Name);
  mir::Module M = std::move(*CR.Mod);
  instr::ShadowEdgeIndex Shadow = instr::ShadowEdgeIndex::build(M);
  instr::InstrumentOptions IO;
  IO.Mode = Mode;
  instr::InstrumentReport Rep = instr::instrumentModule(M, IO);

  vm::Vm Machine(M, &Shadow);
  cov::CoverageMap Trace(16);
  vm::ExecOptions EO;
  const fuzz::Input &In = S->Seeds[0];
  for (auto _ : State) {
    Trace.reset();
    vm::FeedbackContext Fb;
    Fb.Map = Trace.data();
    Fb.MapMask = Trace.mask();
    Fb.FuncKeys = Rep.FuncKeys.data();
    benchmark::DoNotOptimize(
        Machine.run(In.data(), In.size(), EO, &Fb).Steps);
  }
}

void BM_VmUninstrumented(benchmark::State &State) {
  runVmBench(State, instr::Feedback::None);
}
BENCHMARK(BM_VmUninstrumented);

void BM_VmEdgePrecise(benchmark::State &State) {
  runVmBench(State, instr::Feedback::EdgePrecise);
}
BENCHMARK(BM_VmEdgePrecise);

void BM_VmEdgeClassic(benchmark::State &State) {
  runVmBench(State, instr::Feedback::EdgeClassic);
}
BENCHMARK(BM_VmEdgeClassic);

void BM_VmPath(benchmark::State &State) {
  runVmBench(State, instr::Feedback::Path);
}
BENCHMARK(BM_VmPath);

// Telemetry hot-path costs. The disabled case is the one every untraced
// execution pays: PF_TRACE_EVENT against a null recorder, i.e. one
// branch. The enabled cases bound the per-exec cost a traced campaign
// adds (one ring push + a couple of histogram observes).

void BM_TraceEventDisabled(benchmark::State &State) {
  telemetry::InstanceTrace *Tr = nullptr;
  uint64_t Exec = 0;
  for (auto _ : State) {
    ++Exec;
    PF_TRACE_EVENT(Tr, telemetry::EventKind::ExecCompleted, Exec, 64, 1000, 0);
    benchmark::DoNotOptimize(Tr);
  }
}
BENCHMARK(BM_TraceEventDisabled);

void BM_TraceEventEnabled(benchmark::State &State) {
  telemetry::TraceConfig Cfg;
  Cfg.Enabled = true;
  telemetry::InstanceTrace Trace(Cfg);
  telemetry::InstanceTrace *Tr = &Trace;
  (void)Tr; // PF_TRACE_EVENT is empty under PATHFUZZ_NO_TELEMETRY
  uint64_t Exec = 0;
  for (auto _ : State) {
    ++Exec;
    PF_TRACE_EVENT(Tr, telemetry::EventKind::ExecCompleted, Exec, 64, 1000, 0);
    benchmark::DoNotOptimize(Trace.ring().recorded());
  }
}
BENCHMARK(BM_TraceEventEnabled);

void BM_HistogramObserve(benchmark::State &State) {
  telemetry::Histogram H;
  uint64_t V = 1;
  for (auto _ : State) {
    H.observe(V);
    V = V * 2862933555777941757ULL + 3037000493ULL; // cheap LCG spread
    benchmark::DoNotOptimize(H);
  }
}
BENCHMARK(BM_HistogramObserve);

} // namespace

BENCHMARK_MAIN();
