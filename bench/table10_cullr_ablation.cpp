//===- table10_cullr_ablation.cpp - Table X / Appendix D reproduction ---------===//
//
// Part of the pathfuzz project.
//
// Reproduces Appendix D's ablation: replacing the edge-coverage-
// preserving culling criterion with random retention (cull_r). Expected
// shape (paper): cull_r improves on the plain path baseline (81 vs 77) —
// merely shrinking the queue already helps — but trails the principled
// cull (98) because random trimming causes coverage regression.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Table X: culling ablation, random retention (cull_r) vs "
                "path and cull");

  const std::vector<FuzzerKind> Kinds = {
      FuzzerKind::Path, FuzzerKind::CullRandom, FuzzerKind::Cull};
  Evaluation E = runEvaluation(C, Kinds);

  Table T;
  T.setHeader({"Benchmark", "path", "cull_r", "cull", "path&cull_r",
               "cull&cull_r", "path\\cull_r", "cull_r\\path", "cull\\cull_r",
               "cull_r\\cull"});

  std::set<uint64_t> Tot[3];
  for (const std::string &Name : E.SubjectNames) {
    std::set<uint64_t> B[3];
    for (int K = 0; K < 3; ++K) {
      B[K] = E.at(Name, Kinds[K]).cumulativeBugs();
      for (uint64_t X : B[K])
        Tot[K].insert(X ^ fnv1a(Name));
    }
    T.addRow({Name, Table::num(uint64_t(B[0].size())),
              Table::num(uint64_t(B[1].size())),
              Table::num(uint64_t(B[2].size())),
              Table::num(uint64_t(setIntersectSize(B[0], B[1]))),
              Table::num(uint64_t(setIntersectSize(B[2], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[0], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[0]))),
              Table::num(uint64_t(setSubtractSize(B[2], B[1]))),
              Table::num(uint64_t(setSubtractSize(B[1], B[2])))});
  }
  T.addRow({"TOTAL", Table::num(uint64_t(Tot[0].size())),
            Table::num(uint64_t(Tot[1].size())),
            Table::num(uint64_t(Tot[2].size())),
            Table::num(uint64_t(setIntersectSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setIntersectSize(Tot[2], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[0], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[0]))),
            Table::num(uint64_t(setSubtractSize(Tot[2], Tot[1]))),
            Table::num(uint64_t(setSubtractSize(Tot[1], Tot[2])))});
  T.print();
  return 0;
}
