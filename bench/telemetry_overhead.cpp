//===- telemetry_overhead.cpp - Telemetry cost measurement --------------------===//
//
// Part of the pathfuzz project.
//
// Measures what the telemetry subsystem costs, backing the observability
// section's overhead claims:
//
//  - per-event micro cost: PF_TRACE_EVENT against a null recorder (what
//    every untraced execution pays — one branch) vs against a live ring;
//  - end-to-end: a traced vs untraced path campaign on a shared build,
//    best-of-N wall time, plus the byte-identity check that tracing is
//    purely observational;
//  - and writes the whole record, with per-config end states from the
//    traced campaigns, to BENCH_telemetry.json (PATHFUZZ_BENCH_OUT
//    overrides the path).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "strategy/BuildCache.h"
#include "telemetry/Report.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>

using namespace pathfuzz;
using namespace pathfuzz::bench;
using namespace pathfuzz::strategy;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// ns/op of PF_TRACE_EVENT through a pointer the optimizer cannot
/// constant-fold. Tr == nullptr measures the disabled (untraced) branch.
double traceEventNs(telemetry::InstanceTrace *Tr, uint64_t Iters) {
  telemetry::InstanceTrace *volatile Slot = Tr;
  uint64_t T0 = nowMicros();
  for (uint64_t I = 0; I < Iters; ++I) {
    telemetry::InstanceTrace *P = Slot;
    (void)P; // PF_TRACE_EVENT is empty under PATHFUZZ_NO_TELEMETRY
    PF_TRACE_EVENT(P, telemetry::EventKind::ExecCompleted, I, 64, 1000, 0);
  }
  return double(nowMicros() - T0) * 1000.0 / double(Iters);
}

} // namespace

int main() {
  BenchConfig C = BenchConfig::fromEnv();
  C.printHeader("Telemetry overhead: traced vs untraced campaigns");

  const Subject *S = nullptr;
  for (const Subject &Sub : C.Subjects)
    if (Sub.Name == "jhead")
      S = &Sub;
  if (!S)
    S = &C.Subjects.front();

  // Per-event micro cost first; the disabled case is the only cost an
  // untraced campaign ever sees.
  const double DisabledNs = traceEventNs(nullptr, 1u << 26);
  telemetry::TraceConfig RingCfg;
  RingCfg.Enabled = true;
  telemetry::InstanceTrace MicroTrace(RingCfg);
  const double EnabledNs = traceEventNs(&MicroTrace, 1u << 24);

  // End-to-end: same pre-compiled build, alternating untraced / traced
  // reps. Each adjacent pair sees the same machine conditions, so the
  // reported overhead is the MEDIAN of the per-pair ratios — best-of-N
  // on each side separately lets a single lucky outlier flip the sign
  // on a noisy box. Tracing must not perturb the campaign, so the two
  // serialized results must compare equal.
  BuildCache Cache;
  std::shared_ptr<SubjectBuild> B = Cache.get(*S);

  CampaignOptions Untraced = C.campaignOptions();
  Untraced.Kind = FuzzerKind::Path;
  Untraced.Trace = telemetry::TraceConfig(); // baseline ignores the env
  CampaignOptions Traced = Untraced;
  Traced.Trace.Enabled = true;

  const uint32_t Reps = std::max<uint32_t>(5, C.Runs);
  uint64_t UntracedMin = ~0ull, TracedMin = ~0ull;
  std::vector<double> PairPct;
  std::vector<uint8_t> UntracedBytes, TracedBytes;
  CampaignResult TracedR;
  (void)runCampaign(*B, Untraced); // warm caches before timing anything
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    // Swap which config runs first each rep: if the machine slows down
    // monotonically through a pair (thermal / scheduler drift), a fixed
    // order would tax whichever side always runs second.
    const bool TracedFirst = (Rep & 1) != 0;
    uint64_t U = 0, T = 0;
    CampaignResult RU, RT;
    for (int Leg = 0; Leg < 2; ++Leg) {
      const bool RunTraced = TracedFirst == (Leg == 0);
      uint64_t T0 = nowMicros();
      CampaignResult R = runCampaign(*B, RunTraced ? Traced : Untraced);
      uint64_t Dt = nowMicros() - T0;
      if (RunTraced) {
        T = Dt;
        RT = std::move(R);
      } else {
        U = Dt;
        RU = std::move(R);
      }
    }
    UntracedMin = std::min(UntracedMin, U);
    TracedMin = std::min(TracedMin, T);
    if (U)
      PairPct.push_back(100.0 * (double(T) - double(U)) / double(U));

    if (Rep == 0) {
      UntracedBytes = serializeCampaignResult(RU);
      TracedBytes = serializeCampaignResult(RT);
      TracedR = std::move(RT);
    }
  }
  const bool Identical = UntracedBytes == TracedBytes;
  std::sort(PairPct.begin(), PairPct.end());
  const double OverheadPct =
      PairPct.empty() ? 0.0 : PairPct[PairPct.size() / 2];

  // One traced pcguard campaign joins the record so the configs table
  // has both feedback families.
  CampaignOptions Pcguard = Traced;
  Pcguard.Kind = FuzzerKind::Pcguard;
  CampaignResult PcR = runCampaign(*B, Pcguard);

  std::vector<const telemetry::CampaignTrace *> Traces;
  if (TracedR.Trace)
    Traces.push_back(TracedR.Trace.get());
  if (PcR.Trace)
    Traces.push_back(PcR.Trace.get());
  std::string Jsonl = telemetry::mergedJsonl(Traces);
  std::string Bench = telemetry::benchJsonFromJsonl(Jsonl, "telemetry_overhead");

  std::printf("subject: %s (%" PRIu64 " execs, %u paired reps)\n",
              S->Name.c_str(), C.Execs, Reps);
  std::printf("trace event, disabled: %8.2f ns/op\n", DisabledNs);
  std::printf("trace event, enabled:  %8.2f ns/op\n", EnabledNs);
  std::printf("campaign, untraced:    %8" PRIu64 " us (best)\n", UntracedMin);
  std::printf("campaign, traced:      %8" PRIu64 " us (best)\n", TracedMin);
  std::printf("overhead, median of paired reps: %+.2f%%\n", OverheadPct);
  std::printf("traced == untraced results: %s\n", Identical ? "yes" : "NO");

  // Splice the measurements into the report tool's bench record, right
  // before its "configs" array.
  char Extra[512];
  std::snprintf(Extra, sizeof(Extra),
                "\"subject\":\"%s\",\"execs\":%" PRIu64 ",\"reps\":%u,"
                "\"trace_event_disabled_ns\":%.3f,"
                "\"trace_event_enabled_ns\":%.3f,"
                "\"campaign_untraced_micros\":%" PRIu64 ","
                "\"campaign_traced_micros\":%" PRIu64 ","
                "\"overhead_pct\":%.3f,\"results_identical\":%s,",
                S->Name.c_str(), C.Execs, Reps, DisabledNs, EnabledNs,
                UntracedMin, TracedMin, OverheadPct,
                Identical ? "true" : "false");
  std::string Doc = Bench;
  size_t Pos = Doc.find("\"configs\":");
  if (Pos != std::string::npos)
    Doc.insert(Pos, Extra);

  std::string OutPath = envStr("PATHFUZZ_BENCH_OUT", "BENCH_telemetry.json");
  std::string Err;
  if (!telemetry::exportFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "warning: bench record export failed: %s\n",
                 Err.c_str());
    return Identical ? 0 : 1;
  }
  std::printf("\nwrote %s\n", OutPath.c_str());
  return Identical ? 0 : 1;
}
