//===- PathfuzzResume.cpp - Durable-store supervisor CLI ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Supervisor over a durable campaign store root (strategy/Store.h): scan
// every campaign directory, report its state, and — with --run — drive
// the unfinished ones to completion from their newest valid checkpoint.
//
//   pathfuzz-resume <store-root>          report one line per campaign
//   pathfuzz-resume --run <store-root>    ... then finish fresh/resumable
//                                         campaigns via the store layer
//
// The manifest pins each campaign's subject and options fingerprint, so
// the supervisor needs no other configuration: subjects are looked up in
// the built-in suite by name. Campaigns whose subject is unknown, whose
// manifest is corrupt, or that fail to run are reported and reflected in
// the exit code; they never stop the remaining campaigns.
//
// Exit codes: 0 = every campaign done (or store empty), 1 = corrupt /
// failed / unfinished campaigns remain, 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "strategy/Store.h"
#include "targets/Targets.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace pathfuzz;
using strategy::StoreScanEntry;
using strategy::StoreState;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: pathfuzz-resume [--run] <store-root>\n"
               "\n"
               "  --run   drive fresh/resumable campaigns to completion\n"
               "          (default: report only)\n");
}

void reportLine(const StoreScanEntry &E) {
  if (E.Subject.empty()) {
    std::printf("%-10s %s (%s)\n", strategy::storeStateName(E.State),
                E.Dir.c_str(), E.Error.c_str());
    return;
  }
  std::printf("%-10s %-10s %-8s seed=%-6llu budget=%-8llu ckpts=%llu  %s\n",
              strategy::storeStateName(E.State), E.Subject.c_str(),
              strategy::fuzzerKindName(E.Opts.Kind),
              static_cast<unsigned long long>(E.Opts.Seed),
              static_cast<unsigned long long>(E.Opts.ExecBudget),
              static_cast<unsigned long long>(E.CheckpointFiles),
              E.Dir.c_str());
}

/// Finish one unfinished campaign; returns true on success.
bool driveCampaign(const StoreScanEntry &E) {
  const strategy::Subject *S = targets::findSubject(E.Subject);
  if (!S) {
    std::fprintf(stderr, "pathfuzz-resume: %s: unknown subject '%s'\n",
                 E.Dir.c_str(), E.Subject.c_str());
    return false;
  }
  strategy::CampaignOptions Opts = E.Opts;
  Opts.StoreDir = E.Dir;
  strategy::CampaignError Err;
  strategy::CampaignResult R = strategy::runStoredCampaign(*S, Opts, &Err);
  if (Err.Failed) {
    std::fprintf(stderr, "pathfuzz-resume: %s: %s\n", E.Dir.c_str(),
                 Err.Message.c_str());
    return false;
  }
  std::printf("finished   %-10s %-8s seed=%-6llu execs=%llu bugs=%zu "
              "crashes=%zu\n",
              E.Subject.c_str(), strategy::fuzzerKindName(E.Opts.Kind),
              static_cast<unsigned long long>(E.Opts.Seed),
              static_cast<unsigned long long>(R.Execs), R.BugIds.size(),
              R.CrashHashes.size());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Run = false;
  std::string Root;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--run") == 0) {
      Run = true;
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      usage();
      return 0;
    } else if (Argv[I][0] == '-') {
      usage();
      return 2;
    } else if (Root.empty()) {
      Root = Argv[I];
    } else {
      usage();
      return 2;
    }
  }
  if (Root.empty()) {
    usage();
    return 2;
  }

  std::vector<StoreScanEntry> Entries = strategy::scanStoreRoot(Root);
  bool AllDone = true;
  for (const StoreScanEntry &E : Entries) {
    reportLine(E);
    if (E.State == StoreState::Corrupt)
      AllDone = false;
  }

  if (Run) {
    for (const StoreScanEntry &E : Entries) {
      if (E.State != StoreState::Fresh && E.State != StoreState::Resumable)
        continue;
      if (!driveCampaign(E))
        AllDone = false;
    }
  } else {
    for (const StoreScanEntry &E : Entries)
      if (E.State == StoreState::Fresh || E.State == StoreState::Resumable)
        AllDone = false;
  }
  return AllDone ? 0 : 1;
}
