//===- PathfuzzLint.cpp - MiniLang lint CLI ----------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Command-line front end for lang::lint:
//
//   pathfuzz-lint file.ml [file2.ml ...]   lint MiniLang source files
//   pathfuzz-lint --subject cflow          lint one embedded subject
//   pathfuzz-lint --all-subjects           lint the whole target suite
//   pathfuzz-lint --allow-findings ...     findings don't fail the run
//
// Output is one diagnostic per line in the familiar compiler shape
// `name:line:col: warning: [check] message`, so editors and CI log
// scrapers can parse it. Exit codes: 0 = clean (or findings allowed),
// 1 = findings, 2 = usage/compile errors.
//
//===----------------------------------------------------------------------===//

#include "lang/Lint.h"
#include "targets/Targets.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pathfuzz;

namespace {

struct Options {
  std::vector<std::string> Files;
  std::vector<std::string> Subjects;
  bool AllSubjects = false;
  bool AllowFindings = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: pathfuzz-lint [--allow-findings] <file.ml ...>\n"
      "       pathfuzz-lint [--allow-findings] --subject <name> [...]\n"
      "       pathfuzz-lint [--allow-findings] --all-subjects\n"
      "\n"
      "Lints MiniLang programs: use-before-init, dead stores, unreachable\n"
      "code, guaranteed division by zero, constant out-of-bounds accesses,\n"
      "unused parameters and functions. Exit 1 on findings (unless\n"
      "--allow-findings), 2 on usage or compile errors.\n");
}

/// Lint one named source; prints diagnostics and returns their count, or
/// -1 on compile errors.
int lintOne(const std::string &Name, const std::string &Source) {
  std::vector<std::string> CompileErrors;
  std::vector<lang::LintDiagnostic> Diags =
      lang::lintSource(Source, Name, CompileErrors);
  if (!CompileErrors.empty()) {
    for (const std::string &E : CompileErrors)
      std::fprintf(stderr, "%s: error: %s\n", Name.c_str(), E.c_str());
    return -1;
  }
  for (const lang::LintDiagnostic &D : Diags)
    std::printf("%s:%u:%u: warning: [%s] %s%s%s%s\n", Name.c_str(), D.Line,
                D.Col, lang::lintCheckName(D.Check), D.Message.c_str(),
                D.Func.empty() ? "" : " (in @",
                D.Func.empty() ? "" : D.Func.c_str(),
                D.Func.empty() ? "" : ")");
  return static_cast<int>(Diags.size());
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--allow-findings") {
      Opts.AllowFindings = true;
    } else if (Arg == "--all-subjects") {
      Opts.AllSubjects = true;
    } else if (Arg == "--subject") {
      if (++I == argc) {
        usage();
        return 2;
      }
      Opts.Subjects.push_back(argv[I]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      usage();
      return 2;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  if (Opts.Files.empty() && Opts.Subjects.empty() && !Opts.AllSubjects) {
    usage();
    return 2;
  }

  int TotalFindings = 0;
  bool HadErrors = false;
  auto Accumulate = [&](int N) {
    if (N < 0)
      HadErrors = true;
    else
      TotalFindings += N;
  };

  for (const std::string &File : Opts.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "%s: error: cannot open file\n", File.c_str());
      HadErrors = true;
      continue;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Accumulate(lintOne(File, SS.str()));
  }

  if (Opts.AllSubjects)
    for (const strategy::Subject &S : targets::allSubjects())
      Accumulate(lintOne(S.Name, S.Source));
  for (const std::string &Name : Opts.Subjects) {
    const strategy::Subject *S = targets::findSubject(Name);
    if (!S) {
      std::fprintf(stderr, "unknown subject: %s\n", Name.c_str());
      HadErrors = true;
      continue;
    }
    Accumulate(lintOne(S->Name, S->Source));
  }

  if (HadErrors)
    return 2;
  if (TotalFindings > 0) {
    std::fprintf(stderr, "pathfuzz-lint: %d finding(s)\n", TotalFindings);
    return Opts.AllowFindings ? 0 : 1;
  }
  return 0;
}
