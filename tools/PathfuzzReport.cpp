//===- PathfuzzReport.cpp - Campaign trace report CLI ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Command-line front end for telemetry::Report — turns campaign trace
// JSONL files (written by the bench exporters or any PATHFUZZ_TRACE
// out=... run) into the artifact tables and curves the paper reports:
//
//   pathfuzz-report --queue-csv trace.jsonl       queue trajectory CSV
//   pathfuzz-report --coverage-csv trace.jsonl    coverage-over-execs CSV
//   pathfuzz-report --crash-summary trace.jsonl   crash dedup summary CSV
//   pathfuzz-report --bench-json NAME trace.jsonl per-config end states
//   pathfuzz-report --out FILE ...                write instead of stdout
//
// Multiple JSONL inputs are concatenated (the exporter already sorts each
// file by subject/fuzzer/seed; pass pre-merged files for a global sort).
// Exit codes: 0 = ok, 1 = export failed (e.g. unwritable --out),
// 2 = usage or unreadable input.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"
#include "telemetry/Report.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pathfuzz;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: pathfuzz-report [--out FILE] MODE <trace.jsonl ...>\n"
      "\n"
      "modes:\n"
      "  --queue-csv          queue trajectory per configuration\n"
      "                       (subject,fuzzer,seed,execs,queue)\n"
      "  --coverage-csv       edge coverage over the exec budget\n"
      "                       (subject,fuzzer,seed,execs,edges)\n"
      "  --crash-summary      per-campaign crash dedup totals\n"
      "  --bench-json NAME    per-config end states as one JSON record\n"
      "\n"
      "Inputs are trace JSONL files produced by running campaigns with\n"
      "PATHFUZZ_TRACE=out=PATH (or the bench drivers). Without --out the\n"
      "table goes to stdout.\n");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Mode;
  std::string BenchName;
  std::string OutPath;
  std::vector<std::string> Inputs;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    }
    if (Arg == "--out") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      OutPath = Argv[I];
      continue;
    }
    if (Arg == "--queue-csv" || Arg == "--coverage-csv" ||
        Arg == "--crash-summary") {
      Mode = Arg;
      continue;
    }
    if (Arg == "--bench-json") {
      Mode = Arg;
      if (++I >= Argc) {
        usage();
        return 2;
      }
      BenchName = Argv[I];
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "pathfuzz-report: unknown option '%s'\n",
                   Arg.c_str());
      usage();
      return 2;
    }
    Inputs.push_back(Arg);
  }

  if (Mode.empty() || Inputs.empty()) {
    usage();
    return 2;
  }

  std::string Jsonl;
  for (const std::string &Path : Inputs) {
    std::string Chunk;
    if (!readFile(Path, Chunk)) {
      std::fprintf(stderr, "pathfuzz-report: cannot read '%s'\n",
                   Path.c_str());
      return 2;
    }
    Jsonl += Chunk;
  }

  std::string Table;
  if (Mode == "--queue-csv")
    Table = telemetry::queueCsvFromJsonl(Jsonl);
  else if (Mode == "--coverage-csv")
    Table = telemetry::coverageCsvFromJsonl(Jsonl);
  else if (Mode == "--crash-summary")
    Table = telemetry::crashSummaryFromJsonl(Jsonl);
  else
    Table = telemetry::benchJsonFromJsonl(Jsonl, BenchName);

  if (OutPath.empty()) {
    std::fwrite(Table.data(), 1, Table.size(), stdout);
    return 0;
  }
  std::string Err;
  if (!telemetry::exportFile(OutPath, Table, &Err)) {
    std::fprintf(stderr, "pathfuzz-report: warning: %s\n", Err.c_str());
    return 1;
  }
  return 0;
}
