//===- Env.h - Environment-variable configuration ---------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The benchmark binaries scale their campaigns via environment variables
// (REPRO_RUNS, REPRO_EXECS, REPRO_SUBJECTS, REPRO_SEED, REPRO_LONG),
// mirroring how the paper's artifact exposes RUNTIME and
// FUZZING_WINDOW_ORIG knobs for artifact evaluators.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_ENV_H
#define PATHFUZZ_SUPPORT_ENV_H

#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {

/// Integer environment variable with a default; malformed values fall back
/// to the default.
uint64_t envU64(const char *Name, uint64_t Default);

/// String environment variable with a default.
std::string envStr(const char *Name, const std::string &Default);

/// Comma-separated list environment variable; empty if unset.
std::vector<std::string> envList(const char *Name);

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_ENV_H
