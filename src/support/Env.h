//===- Env.h - Environment-variable configuration ---------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The one place environment input is parsed. The benchmark binaries scale
// their campaigns via environment variables (REPRO_RUNS, REPRO_EXECS,
// REPRO_SUBJECTS, REPRO_SEED, REPRO_LONG), mirroring how the paper's
// artifact exposes RUNTIME and FUZZING_WINDOW_ORIG knobs for artifact
// evaluators; the robustness and telemetry layers configure themselves
// from spec-list knobs (PATHFUZZ_FAULT_SITES, PATHFUZZ_TRACE) built on
// the same strict parser, so a typo in a spec skips the entry instead of
// arming it with a half-parsed number.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_ENV_H
#define PATHFUZZ_SUPPORT_ENV_H

#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {

/// Strict decimal parse of an *entire* string into a u64. Rejects empty
/// input, signs, whitespace, trailing garbage and overflow — every
/// spec-list knob and envU64 route numbers through here.
bool parseU64(const std::string &Text, uint64_t &Out);

/// Integer environment variable with a default; malformed values fall back
/// to the default.
uint64_t envU64(const char *Name, uint64_t Default);

/// Boolean environment variable: unset or empty returns Default; "0"
/// disables, anything else enables (matching PATHFUZZ_AUDIT's contract).
bool envBool(const char *Name, bool Default);

/// String environment variable with a default.
std::string envStr(const char *Name, const std::string &Default);

/// Comma-separated list environment variable; empty if unset. Spaces are
/// stripped and empty entries dropped.
std::vector<std::string> envList(const char *Name);

/// Split a `name@value` spec entry (the PATHFUZZ_FAULT_SITES /
/// PATHFUZZ_TRACE attachment syntax). Returns false — leaving the outputs
/// untouched — when there is no '@', the name is empty, the spec contains
/// any whitespace (around the separator or inside the name; envList only
/// strips plain spaces, so tabs used to leak into names), or the value is
/// not a strict u64 (no signs, no whitespace, no 0x prefix, no overflow).
bool splitSpecU64(const std::string &Spec, std::string &Name, uint64_t &Value);

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_ENV_H
