//===- Bytes.h - Little-endian byte serialization helpers -------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// An append-only little-endian byte writer and a bounds-checked reader.
// These started life inside fuzz/Snapshot.h; they live in support/ so the
// layers below the fuzzer (telemetry traces, tools) can serialize without
// depending on the fuzz layer. fuzz/Snapshot.h re-exports them under
// pathfuzz::fuzz for its existing users.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_BYTES_H
#define PATHFUZZ_SUPPORT_BYTES_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pathfuzz {

/// Append-only little-endian byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void bytes(const void *Data, size_t N) {
    const auto *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + N);
  }
  /// u64 length prefix + raw bytes.
  void blob(const std::vector<uint8_t> &B) {
    u64(B.size());
    bytes(B.data(), B.size());
  }
  /// u64 length prefix + raw characters (no terminator).
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void vecU32(const std::vector<uint32_t> &Xs) {
    u64(Xs.size());
    for (uint32_t X : Xs)
      u32(X);
  }
  void vecU64(const std::vector<uint64_t> &Xs) {
    u64(Xs.size());
    for (uint64_t X : Xs)
      u64(X);
  }
  void vecI64(const std::vector<int64_t> &Xs) {
    u64(Xs.size());
    for (int64_t X : Xs)
      i64(X);
  }

  const std::vector<uint8_t> &data() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader. Any overrun latches ok() to false
/// and subsequent reads return zeros; callers check ok() once at the end.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t N) : P(Data), End(Data + N) {}
  explicit ByteReader(const std::vector<uint8_t> &B)
      : ByteReader(B.data(), B.size()) {}

  uint8_t u8() {
    uint8_t V = 0;
    copy(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(u8()) << (8 * I);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(u8()) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  bool bytes(void *Out, size_t N) { return copy(Out, N); }
  std::vector<uint8_t> blob() {
    uint64_t N = u64();
    if (N > remaining()) {
      OkFlag = false;
      return {};
    }
    std::vector<uint8_t> Out(P, P + N);
    P += N;
    return Out;
  }
  std::string str() {
    uint64_t N = u64();
    if (N > remaining()) {
      OkFlag = false;
      return {};
    }
    std::string Out(reinterpret_cast<const char *>(P), N);
    P += N;
    return Out;
  }
  std::vector<uint32_t> vecU32() {
    uint64_t N = u64();
    if (N > remaining() / 4) {
      OkFlag = false;
      return {};
    }
    std::vector<uint32_t> Out(N);
    for (auto &X : Out)
      X = u32();
    return Out;
  }
  std::vector<uint64_t> vecU64() {
    uint64_t N = u64();
    if (N > remaining() / 8) {
      OkFlag = false;
      return {};
    }
    std::vector<uint64_t> Out(N);
    for (auto &X : Out)
      X = u64();
    return Out;
  }
  std::vector<int64_t> vecI64() {
    uint64_t N = u64();
    if (N > remaining() / 8) {
      OkFlag = false;
      return {};
    }
    std::vector<int64_t> Out(N);
    for (auto &X : Out)
      X = i64();
    return Out;
  }

  /// Read exactly N raw bytes (no length prefix).
  std::vector<uint8_t> raw(size_t N) {
    if (N > remaining()) {
      OkFlag = false;
      return {};
    }
    std::vector<uint8_t> Out(P, P + N);
    P += N;
    return Out;
  }

  /// Latch the reader into the failed state (malformed length fields).
  void invalidate() { OkFlag = false; }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool ok() const { return OkFlag; }
  /// ok() and fully consumed — the final acceptance check.
  bool done() const { return OkFlag && P == End; }

private:
  bool copy(void *Out, size_t N) {
    if (N > remaining()) {
      OkFlag = false;
      std::memset(Out, 0, N);
      return false;
    }
    std::memcpy(Out, P, N);
    P += N;
    return true;
  }

  const uint8_t *P;
  const uint8_t *End;
  bool OkFlag = true;
};

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_BYTES_H
