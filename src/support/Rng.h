//===- Rng.h - Deterministic random number generation ----------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// A small, fast, deterministic PRNG used throughout the fuzzer. All fuzzing
// randomness flows through one Rng instance per campaign so that campaigns
// are exactly reproducible from a 64-bit seed, which the evaluation harness
// relies on to attribute bug-finding differences to the feedback mechanism
// rather than to nondeterminism.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_RNG_H
#define PATHFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathfuzz {

/// SplitMix64 step; used both for seeding and as a cheap stateless mixer.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Stateless 64-bit finalizer (the SplitMix64 output function).
inline uint64_t mix64(uint64_t X) {
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// xoshiro256** PRNG. Deterministic, fast, and good enough for fuzzing;
/// mirrors the role of AFL++'s internal PRNG.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x243f6a8885a308d3ULL) { reseed(Seed); }

  /// Re-initialize the full state from a 64-bit seed via SplitMix64.
  void reseed(uint64_t Seed) {
    for (auto &Word : S)
      Word = splitMix64(Seed);
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    // Debiased via rejection on the top of the range.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// True with probability 1/N.
  bool oneIn(uint64_t N) { return below(N) == 0; }

  /// Random element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &Xs) {
    assert(!Xs.empty() && "pick() from empty vector");
    return Xs[below(Xs.size())];
  }

  /// Random index into a container of the given size.
  size_t index(size_t Size) { return static_cast<size_t>(below(Size)); }

  /// Copy out the full 256-bit generator state (checkpoint support).
  void saveState(uint64_t Out[4]) const {
    for (int I = 0; I < 4; ++I)
      Out[I] = S[I];
  }

  /// Restore a state captured by saveState(); the stream continues from
  /// exactly that position.
  void loadState(const uint64_t In[4]) {
    for (int I = 0; I < 4; ++I)
      S[I] = In[I];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_RNG_H
