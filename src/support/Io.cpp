//===- Io.cpp - Crash-safe file primitives ------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include "support/FaultInjection.h"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace pathfuzz {
namespace io {

namespace {

constexpr const char *TmpSuffix = ".tmp";

/// Durability barrier for the parent directory: after rename(), the new
/// directory entry must itself reach disk or a power cut can resurrect
/// the old file. Best-effort by design (see the header).
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

const char *tmpSuffix() { return TmpSuffix; }

bool atomicWriteFile(const std::string &Path, const void *Data, size_t Size,
                     std::string *Err) {
  const std::string Tmp = Path + TmpSuffix;
  auto Fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    std::remove(Tmp.c_str());
    return false;
  };

  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Fail("cannot open " + Tmp + " for writing");

  // Fault drills. The short-write site truncates the request to half its
  // bytes — deterministic, and exactly the torn shape a full disk or a
  // crash mid-fwrite produces — so the no-torn-destination guarantee is
  // testable without raw device tricks.
  bool Injected = fault::enabled();
  if (Injected && fault::shouldFail("io.write.fail")) {
    std::fclose(F);
    return Fail("injected fault at io.write.fail");
  }
  size_t ToWrite = Size;
  bool InjectedShort = Injected && fault::shouldFail("io.write.short");
  if (InjectedShort)
    ToWrite = Size / 2;
  size_t Written = ToWrite ? std::fwrite(Data, 1, ToWrite, F) : 0;
  if (Written != Size) {
    std::fclose(F);
    return Fail(InjectedShort ? "injected fault at io.write.short"
                              : "short write to " + Tmp);
  }
  if (std::fflush(F) != 0) {
    std::fclose(F);
    return Fail("flush failed for " + Tmp);
  }
  // fsync before close: the rename below must never publish bytes that
  // only exist in the page cache.
  bool InjectedFsync = Injected && fault::shouldFail("io.fsync.fail");
  bool FsyncFailed = InjectedFsync || ::fsync(::fileno(F)) != 0;
  if (std::fclose(F) != 0 || FsyncFailed) {
    if (InjectedFsync)
      return Fail("injected fault at io.fsync.fail");
    return Fail(FsyncFailed ? "fsync failed for " + Tmp
                            : "close failed for " + Tmp);
  }

  if (Injected && fault::shouldFail("io.rename.fail"))
    return Fail("injected fault at io.rename.fail");
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return Fail("rename to " + Path + " failed");

  fsyncParentDir(Path);
  return true;
}

bool atomicWriteFile(const std::string &Path, const std::vector<uint8_t> &Data,
                     std::string *Err) {
  return atomicWriteFile(Path, Data.data(), Data.size(), Err);
}

bool atomicWriteFile(const std::string &Path, const std::string &Data,
                     std::string *Err) {
  return atomicWriteFile(Path, Data.data(), Data.size(), Err);
}

bool readFileBounded(const std::string &Path, size_t MaxBytes,
                     std::vector<uint8_t> &Out, std::string *Err) {
  Out.clear();
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  bool Ok = std::fseek(F, 0, SEEK_END) == 0;
  long Size = Ok ? std::ftell(F) : -1;
  if (Size < 0 || static_cast<unsigned long>(Size) > MaxBytes) {
    std::fclose(F);
    if (Err)
      *Err = Size < 0 ? "cannot stat " + Path
                      : Path + " exceeds the " + std::to_string(MaxBytes) +
                            "-byte read bound";
    return false;
  }
  std::rewind(F);
  Out.resize(static_cast<size_t>(Size));
  size_t Read =
      Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  if (Read != Out.size()) {
    Out.clear();
    if (Err)
      *Err = "short read from " + Path;
    return false;
  }
  return true;
}

} // namespace io
} // namespace pathfuzz
