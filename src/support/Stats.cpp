//===- Stats.cpp - Summary statistics --------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cmath>

namespace pathfuzz {

double median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return (Xs[N / 2 - 1] + Xs[N / 2]) / 2.0;
}

double median(const std::vector<uint64_t> &Xs) {
  std::vector<double> Ds(Xs.begin(), Xs.end());
  return median(std::move(Ds));
}

double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double geomean(const std::vector<double> &Xs) {
  double LogSum = 0;
  size_t N = 0;
  for (double X : Xs) {
    if (X <= 0)
      continue;
    LogSum += std::log(X);
    ++N;
  }
  if (N == 0)
    return 0;
  return std::exp(LogSum / static_cast<double>(N));
}

Summary Summary::of(const std::vector<double> &Xs) {
  Summary S;
  if (Xs.empty())
    return S;
  S.Min = *std::min_element(Xs.begin(), Xs.end());
  S.Max = *std::max_element(Xs.begin(), Xs.end());
  S.Mean = mean(Xs);
  S.Median = median(Xs);
  return S;
}

} // namespace pathfuzz
