//===- FaultInjection.cpp - Deterministic failure-point registry --------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Env.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace pathfuzz {
namespace fault {

namespace {

struct SiteState {
  SiteConfig Config;
  uint64_t Hits = 0;
  Rng Prob{1};
};

struct Registry {
  std::mutex M;
  std::map<std::string, SiteState> Sites;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Armed-site count mirrored outside the lock so shouldFail() is one
/// relaxed load on the (universal) nothing-armed path.
std::atomic<size_t> ArmedCount{0};

} // namespace

bool enabled() { return ArmedCount.load(std::memory_order_relaxed) > 0; }

void armSite(const std::string &Site, const SiteConfig &Config) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  SiteState &S = R.Sites[Site];
  S.Config = Config;
  S.Hits = 0;
  S.Prob.reseed(Config.ProbSeed);
  ArmedCount.store(R.Sites.size(), std::memory_order_relaxed);
}

void disarmSite(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  R.Sites.erase(Site);
  ArmedCount.store(R.Sites.size(), std::memory_order_relaxed);
}

void reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  R.Sites.clear();
  ArmedCount.store(0, std::memory_order_relaxed);
}

namespace {

/// Parse one PATHFUZZ_FAULT_SITES entry (without the trailing '!', which
/// the caller strips). Numbers go through the strict support parser:
/// "site@2x" is a typo to reject, not a request to fail on the second
/// hit. Whitespace anywhere makes the entry malformed, matching
/// splitSpecU64 — tabs survive envList's space stripping and would
/// otherwise arm a site under a name no shouldFail() lookup can match.
bool parseSiteSpec(const std::string &Spec, std::string &Name,
                   SiteConfig &C) {
  if (Spec.find_first_of(" \t\n\v\f\r") != std::string::npos)
    return false;
  size_t Pct = Spec.find('%');
  if (Spec.find('@') != std::string::npos)
    return splitSpecU64(Spec, Name, C.FailOnHit) && C.FailOnHit != 0;
  if (Pct == std::string::npos)
    return false;
  Name = Spec.substr(0, Pct);
  std::string Rest = Spec.substr(Pct + 1);
  size_t Tilde = Rest.find('~');
  if (Tilde != std::string::npos) {
    if (!parseU64(Rest.substr(Tilde + 1), C.ProbSeed))
      return false;
    Rest = Rest.substr(0, Tilde);
  }
  uint64_t Permille = 0;
  if (Name.empty() || !parseU64(Rest, Permille) || Permille == 0 ||
      Permille > 1000)
    return false;
  C.ProbPermille = static_cast<uint32_t>(Permille);
  return true;
}

} // namespace

size_t armFromEnv() {
  size_t Armed = 0;
  for (const std::string &Entry : envList("PATHFUZZ_FAULT_SITES")) {
    std::string Spec = Entry;
    SiteConfig C;
    if (!Spec.empty() && Spec.back() == '!') {
      C.Transient = false;
      Spec.pop_back();
    }
    std::string Name;
    if (!parseSiteSpec(Spec, Name, C)) {
      // A typo'd spec must not silently disarm a robustness drill: say
      // which entry was dropped (once per entry, to stderr, with the
      // original text including any '!').
      std::fprintf(stderr,
                   "pathfuzz: warning: PATHFUZZ_FAULT_SITES: skipping "
                   "malformed entry '%s'\n",
                   Entry.c_str());
      continue;
    }
    armSite(Name, C);
    ++Armed;
  }
  return Armed;
}

bool shouldFail(const char *Site) {
  if (!enabled())
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto It = R.Sites.find(Site);
  if (It == R.Sites.end())
    return false;
  SiteState &S = It->second;
  ++S.Hits;
  if (S.Config.FailOnHit)
    return S.Hits == S.Config.FailOnHit;
  if (S.Config.ProbPermille)
    return S.Prob.below(1000) < S.Config.ProbPermille;
  return false;
}

bool isTransient(const char *Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto It = R.Sites.find(Site);
  return It == R.Sites.end() ? true : It->second.Config.Transient;
}

uint64_t hitCount(const char *Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto It = R.Sites.find(Site);
  return It == R.Sites.end() ? 0 : It->second.Hits;
}

} // namespace fault
} // namespace pathfuzz
