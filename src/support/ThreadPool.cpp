//===- ThreadPool.cpp - Work-stealing thread pool -----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Env.h"
#include "support/FaultInjection.h"

#include <algorithm>

namespace pathfuzz {

ThreadPool::ThreadPool(size_t Threads) {
  Threads = std::max<size_t>(1, Threads);
  Queues.reserve(Threads);
  for (size_t I = 0; I < Threads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(Threads);
  for (size_t I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(SleepM);
    Stop.store(true);
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  size_t Target = NextQueue.fetch_add(1) % Queues.size();
  Pending.fetch_add(1);
  Queued.fetch_add(1);
  {
    std::lock_guard<std::mutex> L(Queues[Target]->M);
    Queues[Target]->Jobs.push_back(std::move(Job));
  }
  // Taking SleepM pairs with the waiter's predicate check: a worker that
  // saw Queued == 0 is fully parked before we can acquire the lock, so
  // the notify cannot be lost.
  { std::lock_guard<std::mutex> L(SleepM); }
  WorkCv.notify_one();
}

bool ThreadPool::trySubmit(std::function<void()> Job) {
  if (fault::enabled() && fault::shouldFail("support.pool.dispatch"))
    return false;
  submit(std::move(Job));
  return true;
}

bool ThreadPool::tryRunOne(size_t Self) {
  std::function<void()> Job;
  const size_t N = Queues.size();
  for (size_t K = 0; K < N && !Job; ++K) {
    WorkerQueue &W = *Queues[(Self + K) % N];
    std::lock_guard<std::mutex> L(W.M);
    if (W.Jobs.empty())
      continue;
    if (K == 0) {
      Job = std::move(W.Jobs.front());
      W.Jobs.pop_front();
    } else {
      // Steal from the cold end of a peer's deque.
      Job = std::move(W.Jobs.back());
      W.Jobs.pop_back();
    }
    Queued.fetch_sub(1);
  }
  if (!Job)
    return false;
  Job();
  if (Pending.fetch_sub(1) == 1) {
    { std::lock_guard<std::mutex> L(SleepM); }
    IdleCv.notify_all();
  }
  return true;
}

void ThreadPool::workerLoop(size_t Self) {
  for (;;) {
    if (tryRunOne(Self))
      continue;
    std::unique_lock<std::mutex> L(SleepM);
    WorkCv.wait(L, [this] { return Stop.load() || Queued.load() > 0; });
    if (Stop.load())
      return;
  }
}

void ThreadPool::wait() {
  // The caller scans from queue 0; any index works since it only steals.
  while (tryRunOne(0))
    ;
  std::unique_lock<std::mutex> L(SleepM);
  IdleCv.wait(L, [this] { return Pending.load() == 0; });
}

size_t ThreadPool::defaultThreadCount() {
  uint64_t Env = envU64("PATHFUZZ_JOBS", 0);
  if (Env > 0)
    return static_cast<size_t>(Env);
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

} // namespace pathfuzz
