//===- FaultInjection.h - Deterministic failure-point registry --*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// A registry of named failure sites for exercising the robustness layer.
// Production code probes a site with shouldFail("name"); the probe is a
// single relaxed atomic load when nothing is armed, so permanently wiring
// sites into hot paths (subject compilation, instrumentation, thread-pool
// dispatch, the VM heap) costs nothing in normal operation.
//
// A site triggers either on its Nth hit (exact, deterministic) or per hit
// with a seeded probability, so every failure path the batch runner must
// survive — compile errors, instrumentation errors, dispatch refusals,
// resource exhaustion inside a trial — is reproducible in tests. Sites are
// armed programmatically (armSite) or from the PATHFUZZ_FAULT_SITES
// environment variable:
//
//   PATHFUZZ_FAULT_SITES="strategy.compile@2,vm.heap.alloc%50~7,x@1!"
//
//   site@N      fail exactly on the Nth hit (1-based)
//   site%P      fail each hit with probability P/1000
//   site%P~S    ... drawing from an RNG seeded with S
//   trailing !  the fault is persistent (retrying cannot succeed);
//               without it faults are transient and the batch runner's
//               bounded retry is allowed to re-attempt the operation
//
// Hit counters are global; with a multi-threaded batch the attribution of
// the Nth hit to a particular job depends on scheduling, so deterministic
// tests either arm sites hit from the submitting thread or run the batch
// at one thread.
//
// Wired sites:
//   strategy.compile      subject front-end compilation (BuildCache)
//   strategy.instrument   instrumentation pass (SubjectBuild)
//   strategy.instrument.corrupt
//                         corrupt one probe constant after the pass; the
//                         static audit (instr::auditModule) must reject
//                         the build — exercises the auditor end to end
//   support.pool.dispatch ThreadPool::trySubmit task dispatch
//   vm.heap.alloc         VM heap allocation (fails as OutOfMemory)
//   io.write.fail         atomic file write (support/Io.h): data write error
//   io.write.short        ... deterministic short write (half the bytes)
//   io.fsync.fail         ... fsync of the temporary file
//   io.rename.fail        ... the publishing rename
//   telemetry.export.fail trace/bench export file write (degrades to a
//                         warning in the batch runner)
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_FAULTINJECTION_H
#define PATHFUZZ_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <string>

namespace pathfuzz {
namespace fault {

/// How one armed site fails. Either trigger may be used; FailOnHit takes
/// effect first when both are set.
struct SiteConfig {
  uint64_t FailOnHit = 0;    ///< 1-based hit ordinal that fails; 0 = never
  uint32_t ProbPermille = 0; ///< per-hit failure probability in 1/1000
  uint64_t ProbSeed = 1;     ///< RNG seed for the probability trigger
  bool Transient = true;     ///< a retried operation may succeed
};

/// True when at least one site is armed. Hot paths gate on this; it is a
/// single relaxed atomic load.
bool enabled();

/// Arm (or re-arm, resetting its hit counter) a named site.
void armSite(const std::string &Site, const SiteConfig &Config);

/// Disarm one site.
void disarmSite(const std::string &Site);

/// Disarm every site and clear all hit counters.
void reset();

/// Arm sites from PATHFUZZ_FAULT_SITES (see file comment for the syntax);
/// returns the number of sites armed. Malformed entries are skipped with
/// a one-line stderr warning each, so a typo cannot silently disarm a
/// drill.
size_t armFromEnv();

/// Probe a site: records the hit and returns true when this hit fails.
/// Always false for unarmed sites (and counts nothing for them).
bool shouldFail(const char *Site);

/// Whether the site's configured fault is transient (true for unarmed
/// sites: unknown failures default to retryable).
bool isTransient(const char *Site);

/// Hits recorded at an armed site since it was armed.
uint64_t hitCount(const char *Site);

/// Test helper: arms nothing itself but guarantees reset() on scope exit,
/// so a failing test cannot leak armed sites into later tests.
class ScopedFaultInjection {
public:
  ScopedFaultInjection() = default;
  ~ScopedFaultInjection() { reset(); }
  ScopedFaultInjection(const ScopedFaultInjection &) = delete;
  ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;
};

} // namespace fault
} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_FAULTINJECTION_H
