//===- Env.cpp - Environment-variable configuration ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pathfuzz {

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  // strtoull silently wraps negative input and saturates to ULLONG_MAX on
  // overflow (setting ERANGE); both are out-of-range garbage for a u64
  // knob, not values, so they fall back to the default like any other
  // malformed input.
  if (std::strchr(Raw, '-'))
    return Default;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Raw, &End, 10);
  if (End == Raw || *End != '\0' || errno == ERANGE)
    return Default;
  return static_cast<uint64_t>(V);
}

std::string envStr(const char *Name, const std::string &Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  return Raw;
}

std::vector<std::string> envList(const char *Name) {
  std::vector<std::string> Out;
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Out;
  std::string Cur;
  for (const char *P = Raw; *P; ++P) {
    if (*P == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else if (*P != ' ') {
      Cur += *P;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

} // namespace pathfuzz
