//===- Env.cpp - Environment-variable configuration ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pathfuzz {

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  // strtoull silently wraps negative input and saturates to ULLONG_MAX on
  // overflow (setting ERANGE); both are out-of-range garbage for a u64
  // knob, not values. It also skips leading whitespace and accepts signs,
  // which a strict knob parser must not.
  if (Text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  uint64_t V = 0;
  return parseU64(Raw, V) ? V : Default;
}

bool envBool(const char *Name, bool Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  return Raw[0] != '0';
}

std::string envStr(const char *Name, const std::string &Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  return Raw;
}

std::vector<std::string> envList(const char *Name) {
  std::vector<std::string> Out;
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Out;
  std::string Cur;
  for (const char *P = Raw; *P; ++P) {
    if (*P == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else if (*P != ' ') {
      Cur += *P;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool splitSpecU64(const std::string &Spec, std::string &Name,
                  uint64_t &Value) {
  // Whitespace anywhere in a spec is a malformed entry, rejected as a
  // whole. envList only strips plain spaces, so tabs (and any whitespace
  // reaching the direct API) used to flow into the *name* — arming a
  // fault site or trace series under a name no lookup would ever match.
  // The value side was already strict (parseU64 rejects whitespace, signs
  // and 0x prefixes), so the name side must be too.
  for (char Ch : Spec)
    if (std::isspace(static_cast<unsigned char>(Ch)))
      return false;
  size_t At = Spec.find('@');
  if (At == std::string::npos || At == 0)
    return false;
  uint64_t V = 0;
  if (!parseU64(Spec.substr(At + 1), V))
    return false;
  Name = Spec.substr(0, At);
  Value = V;
  return true;
}

} // namespace pathfuzz
