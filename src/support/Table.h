//===- Table.h - Plain-text table rendering ---------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// A small aligned-column table writer used by the benchmark harness to
// print the paper's tables (Tables I through X) in a shape directly
// comparable with the publication.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_TABLE_H
#define PATHFUZZ_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {

/// Accumulates rows of string cells and renders them with right-aligned
/// numeric-style padding (first column left-aligned, like the paper's
/// benchmark-name column).
class Table {
public:
  explicit Table(std::string Title = "") : Title(std::move(Title)) {}

  /// Set the header row; column count is fixed from this point on.
  void setHeader(std::vector<std::string> Cells);

  /// Append a data row. Rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> Cells);

  /// Render the table to a string.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

  /// Format helpers used by the bench binaries.
  static std::string num(uint64_t V);
  static std::string num(int64_t V);
  static std::string fixed(double V, int Digits = 2);
  /// "bugs (crashes)" cell, as in Table II.
  static std::string pair(uint64_t Bugs, uint64_t Crashes);

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_TABLE_H
