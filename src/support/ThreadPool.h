//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// A small work-stealing thread pool for fanning out independent campaign
// jobs (subject x configuration x trial) across cores. Jobs are
// distributed round-robin over per-worker deques; an idle worker pops
// from the front of its own deque and steals from the *back* of a peer's,
// so long-queued (cold) jobs migrate while each worker keeps locality on
// its recent submissions. Campaign jobs run for milliseconds to seconds,
// so one mutex per deque costs nothing measurable — the stealing
// discipline is what matters for load balance, not lock-freedom.
//
// The pool carries no result plumbing: callers write into pre-sized
// result slots from inside their jobs (each job owns its slot), which is
// how runCampaigns keeps batch output byte-identical to the serial runner
// regardless of completion order.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_THREADPOOL_H
#define PATHFUZZ_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pathfuzz {

class ThreadPool {
public:
  /// Spawns `Threads` workers (clamped to at least one).
  explicit ThreadPool(size_t Threads);

  /// Drains all outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue one job; never blocks. Jobs must not submit further jobs
  /// (the campaign batch is fully known up front).
  void submit(std::function<void()> Job);

  /// Like submit(), but probes the "support.pool.dispatch" fault-injection
  /// site first: returns false without enqueuing when the site triggers.
  /// Callers that must not lose work retry or degrade to running the job
  /// inline (the batch runner does both, bounded).
  bool trySubmit(std::function<void()> Job);

  /// Block until every submitted job has finished. The calling thread
  /// helps drain the queues while it waits.
  void wait();

  size_t threadCount() const { return Workers.size(); }

  /// Worker-count policy shared by every batch entry point: the
  /// PATHFUZZ_JOBS environment override when set, else the hardware
  /// concurrency (at least 1).
  static size_t defaultThreadCount();

private:
  struct WorkerQueue {
    std::mutex M;
    std::deque<std::function<void()>> Jobs;
  };

  /// Run one job if any is available (own deque first, then steal).
  bool tryRunOne(size_t Self);
  void workerLoop(size_t Self);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex SleepM;
  std::condition_variable WorkCv; ///< signalled on submit and shutdown
  std::condition_variable IdleCv; ///< signalled when Pending reaches zero
  std::atomic<size_t> Queued{0};  ///< jobs sitting in deques
  std::atomic<size_t> Pending{0}; ///< jobs submitted but not yet finished
  std::atomic<size_t> NextQueue{0};
  std::atomic<bool> Stop{false};
};

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_THREADPOOL_H
