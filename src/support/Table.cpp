//===- Table.cpp - Plain-text table rendering ------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

namespace pathfuzz {

void Table::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(!Header.empty() && "setHeader() must precede addRow()");
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Out;
    for (size_t C = 0; C < Row.size(); ++C) {
      size_t Pad = Widths[C] - Row[C].size();
      if (C == 0) {
        // Left-align the label column.
        Out += Row[C];
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Row[C];
      }
      if (C + 1 != Row.size())
        Out += "  ";
    }
    Out += '\n';
    return Out;
  };

  std::string Out;
  if (!Title.empty()) {
    Out += Title;
    Out += '\n';
  }
  Out += renderRow(Header);
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

void Table::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
  std::fflush(stdout);
}

std::string Table::num(uint64_t V) { return std::to_string(V); }

std::string Table::num(int64_t V) { return std::to_string(V); }

std::string Table::fixed(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

std::string Table::pair(uint64_t Bugs, uint64_t Crashes) {
  return std::to_string(Bugs) + " (" + std::to_string(Crashes) + ")";
}

} // namespace pathfuzz
