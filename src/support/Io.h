//===- Io.h - Crash-safe file primitives ------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The two file primitives the durability layer is built on:
//
//   atomicWriteFile — publish a file so that a crash (or SIGKILL) at any
//     instant leaves either the complete old content or the complete new
//     content, never a torn mix. The classic POSIX recipe: write to a
//     temporary in the same directory, fflush + fsync the data, rename()
//     over the destination (atomic within a filesystem), then fsync the
//     parent directory so the rename itself is durable. On any failure
//     the destination is untouched and the temporary is removed.
//
//   readFileBounded — whole-file read with an explicit size bound, so a
//     recovery scan over untrusted on-disk state can never be tricked
//     into allocating from a corrupt length.
//
// Both are wired into the support::fault registry so the robustness suite
// can drill every failure leg deterministically:
//
//   io.write.fail    the data write errors out (disk full analogue)
//   io.write.short   deterministic short write: only half the bytes land
//   io.fsync.fail    fsync of the temporary fails
//   io.rename.fail   the publishing rename fails
//
// A failed directory fsync after a successful rename is deliberately not
// an error: the data file is already complete and checksummed, and the
// recovery scan treats a missing newest checkpoint exactly like a crash
// one interval earlier.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_IO_H
#define PATHFUZZ_SUPPORT_IO_H

#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {
namespace io {

/// Atomically replace Path with Size bytes from Data (see file comment).
/// Returns false (with *Err set when provided) on failure; the
/// destination then still holds its previous content, if any.
bool atomicWriteFile(const std::string &Path, const void *Data, size_t Size,
                     std::string *Err = nullptr);
bool atomicWriteFile(const std::string &Path, const std::vector<uint8_t> &Data,
                     std::string *Err = nullptr);
bool atomicWriteFile(const std::string &Path, const std::string &Data,
                     std::string *Err = nullptr);

/// Read Path into Out, refusing files larger than MaxBytes (untrusted
/// recovery input must not drive allocation). Returns false with *Err set
/// on open/short-read/oversize failures.
bool readFileBounded(const std::string &Path, size_t MaxBytes,
                     std::vector<uint8_t> &Out, std::string *Err = nullptr);

/// Suffix every in-flight temporary carries ("<dest><suffix>"). The store's
/// open scan uses it to sweep temporaries a crash left behind; they are
/// never valid recovery input.
const char *tmpSuffix();

} // namespace io
} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_IO_H
