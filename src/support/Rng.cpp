//===- Rng.cpp - Deterministic random number generation -------------------===//
//
// Part of the pathfuzz project. Rng is header-only; this TU anchors the
// library target.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

namespace pathfuzz {
// Intentionally empty: Rng is fully inline.
} // namespace pathfuzz
