//===- Stats.h - Summary statistics -----------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Median, mean, and geometric mean over small samples. The evaluation
// harness reports medians across runs (Tables III and VI) and geometric
// means of ratios (Tables III and V), mirroring the paper's methodology.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_STATS_H
#define PATHFUZZ_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathfuzz {

/// Median of a sample (averaging the two middle elements for even sizes).
/// Returns 0 for an empty sample.
double median(std::vector<double> Xs);

/// Convenience overload for integer samples.
double median(const std::vector<uint64_t> &Xs);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Geometric mean of strictly positive values; values <= 0 are skipped,
/// mirroring how the paper's ratio tables only aggregate defined ratios.
/// Returns 0 if no positive values remain.
double geomean(const std::vector<double> &Xs);

/// Min/max/mean/median bundle for reporting.
struct Summary {
  double Min = 0;
  double Max = 0;
  double Mean = 0;
  double Median = 0;

  static Summary of(const std::vector<double> &Xs);
};

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_STATS_H
