//===- Hashing.h - Hashing helpers ------------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Hash utilities shared by the coverage map indexing, crash deduplication
// (stack-trace hashing with the top-5 frames, per the paper's triage
// methodology), and the PathAFL-style whole-program path hashing.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_SUPPORT_HASHING_H
#define PATHFUZZ_SUPPORT_HASHING_H

#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace pathfuzz {

/// FNV-1a over a byte buffer.
inline uint64_t fnv1a(const void *Data, size_t Size,
                      uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t fnv1a(const std::string &S) { return fnv1a(S.data(), S.size()); }

/// Boost-style hash combination with a 64-bit mixer.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

} // namespace pathfuzz

#endif // PATHFUZZ_SUPPORT_HASHING_H
