//===- BallLarus.cpp - Ball-Larus acyclic path profiling ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "bl/BallLarus.h"

#include <algorithm>
#include <cassert>

namespace pathfuzz {
namespace bl {

namespace {

/// Minimal union-find for the spanning-tree construction.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    for (size_t I = 0; I < N; ++I)
      Parent[I] = static_cast<uint32_t>(I);
  }

  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Returns true if the union merged two distinct components.
  bool unite(uint32_t A, uint32_t B) {
    uint32_t Ra = find(A), Rb = find(B);
    if (Ra == Rb)
      return false;
    Parent[Ra] = Rb;
    return true;
  }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

std::optional<BLDag> BLDag::build(const cfg::CfgView &G, uint64_t MaxPaths) {
  BLDag D;
  D.NumBlocks = G.numBlocks();
  D.EntryNode = D.NumBlocks;
  D.ExitNode = D.NumBlocks + 1;
  D.Out.assign(D.NumBlocks + 2, {});
  D.Potential.assign(D.NumBlocks + 2, 0);

  auto addEdge = [&](uint32_t Src, uint32_t Dst, DagEdgeKind Kind,
                     uint32_t CfgEdgeIndex) {
    DagEdge E;
    E.Src = Src;
    E.Dst = Dst;
    E.Kind = Kind;
    E.CfgEdgeIndex = CfgEdgeIndex;
    uint32_t Index = static_cast<uint32_t>(D.Edges.size());
    D.Edges.push_back(E);
    D.Out[Src].push_back(Index);
  };

  // ENTRY's first out-edge is the one to the function entry block, so the
  // path register's initial value is 0 in Simple placement (Val of the
  // first out-edge is always 0).
  addEdge(D.EntryNode, 0, DagEdgeKind::EntryToFirst, UINT32_MAX);
  for (uint32_t EdgeIndex : G.backEdgeIndices())
    addEdge(D.EntryNode, G.edges()[EdgeIndex].Dst, DagEdgeKind::EntryDummy,
            EdgeIndex);

  for (uint32_t B = 0; B < D.NumBlocks; ++B) {
    if (!G.isReachable(B))
      continue;
    for (uint32_t EdgeIndex : G.succEdges(B)) {
      const cfg::Edge &E = G.edges()[EdgeIndex];
      if (G.isBackEdge(EdgeIndex))
        addEdge(B, D.ExitNode, DagEdgeKind::ExitDummy, EdgeIndex);
      else
        addEdge(B, E.Dst, DagEdgeKind::Real, EdgeIndex);
    }
    if (G.isExitBlock(B))
      addEdge(B, D.ExitNode, DagEdgeKind::RetToExit, UINT32_MAX);
  }

  // NumPaths in reverse topological order, assigning Val as the running
  // prefix sum over each node's out-edges.
  D.NumPathsPerNode.assign(D.NumBlocks + 2, 0);
  D.NumPathsPerNode[D.ExitNode] = 1;

  auto sumNode = [&](uint32_t Node) -> bool {
    unsigned __int128 Sum = 0;
    for (uint32_t EdgeIndex : D.Out[Node]) {
      DagEdge &E = D.Edges[EdgeIndex];
      E.Val = static_cast<uint64_t>(Sum);
      Sum += D.NumPathsPerNode[E.Dst];
      if (Sum > MaxPaths)
        return false;
    }
    D.NumPathsPerNode[Node] = static_cast<uint64_t>(Sum);
    return true;
  };

  const std::vector<uint32_t> &Topo = G.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It)
    if (!sumNode(*It))
      return std::nullopt;
  if (!sumNode(D.EntryNode))
    return std::nullopt;

  return D;
}

void BLDag::computeChordIncrements() {
  if (ChordsComputed)
    return;
  ChordsComputed = true;

  // Spanning tree over {blocks, ENTRY, EXIT}: the virtual EXIT--ENTRY edge
  // is forced onto the tree (it pins potential(ENTRY) == potential(EXIT)),
  // dummy edges are forced off it (back edges always carry probes), and
  // the remaining edges are tree candidates in deterministic order.
  UnionFind UF(NumBlocks + 2);
  UF.unite(ExitNode, EntryNode);

  for (uint32_t EdgeIndex = 0; EdgeIndex < Edges.size(); ++EdgeIndex) {
    DagEdge &E = Edges[EdgeIndex];
    if (E.Kind == DagEdgeKind::EntryDummy || E.Kind == DagEdgeKind::ExitDummy)
      continue;
    if (UF.unite(E.Src, E.Dst))
      E.OnTree = true;
  }

  // Potentials: walk the tree from ENTRY (potential 0); traversing a tree
  // edge u->v forward sets f(v) = f(u) + Val, backward f(u) = f(v) - Val.
  // EXIT is pinned to 0 through the virtual edge.
  std::vector<std::vector<std::pair<uint32_t, bool>>> Adj(NumBlocks + 2);
  for (uint32_t EdgeIndex = 0; EdgeIndex < Edges.size(); ++EdgeIndex) {
    const DagEdge &E = Edges[EdgeIndex];
    if (!E.OnTree)
      continue;
    Adj[E.Src].push_back({EdgeIndex, true});
    Adj[E.Dst].push_back({EdgeIndex, false});
  }

  std::fill(Potential.begin(), Potential.end(), 0);
  std::vector<bool> Visited(NumBlocks + 2, false);
  std::vector<uint32_t> Work;
  Visited[EntryNode] = true;
  Visited[ExitNode] = true; // pinned by the virtual edge
  Work.push_back(EntryNode);
  Work.push_back(ExitNode);
  while (!Work.empty()) {
    uint32_t U = Work.back();
    Work.pop_back();
    for (auto [EdgeIndex, Forward] : Adj[U]) {
      const DagEdge &E = Edges[EdgeIndex];
      uint32_t V = Forward ? E.Dst : E.Src;
      if (Visited[V])
        continue;
      Visited[V] = true;
      int64_t Val = static_cast<int64_t>(E.Val);
      Potential[V] = Forward ? Potential[U] + Val : Potential[U] - Val;
      Work.push_back(V);
    }
  }

  // Chord increments; tree edges come out 0 by construction.
  for (DagEdge &E : Edges) {
    E.Inc = static_cast<int64_t>(E.Val) + Potential[E.Src] - Potential[E.Dst];
    assert((!E.OnTree || E.Inc == 0) && "tree edge with nonzero increment");
  }
}

PathProbePlan BLDag::makePlan(PlacementMode Mode) {
  if (Mode == PlacementMode::SpanningTree)
    computeChordIncrements();

  auto planInc = [&](const DagEdge &E) -> int64_t {
    return Mode == PlacementMode::Simple ? static_cast<int64_t>(E.Val) : E.Inc;
  };

  PathProbePlan Plan;
  Plan.NumPaths = numPaths();

  // Pair up each back edge's dummy edges.
  struct BackPair {
    int64_t FlushAdd = 0;
    int64_t Reset = 0;
    bool SawExit = false, SawEntry = false;
  };
  std::vector<std::pair<uint32_t, BackPair>> BackPairs;
  auto backPairFor = [&](uint32_t CfgEdgeIndex) -> BackPair & {
    for (auto &P : BackPairs)
      if (P.first == CfgEdgeIndex)
        return P.second;
    BackPairs.push_back({CfgEdgeIndex, BackPair()});
    return BackPairs.back().second;
  };

  for (const DagEdge &E : Edges) {
    switch (E.Kind) {
    case DagEdgeKind::EntryToFirst:
      Plan.EntryInit = planInc(E);
      break;
    case DagEdgeKind::Real: {
      int64_t Inc = planInc(E);
      if (Inc != 0)
        Plan.EdgeIncs.push_back({E.CfgEdgeIndex, Inc});
      break;
    }
    case DagEdgeKind::ExitDummy: {
      BackPair &P = backPairFor(E.CfgEdgeIndex);
      P.FlushAdd = planInc(E);
      P.SawExit = true;
      break;
    }
    case DagEdgeKind::EntryDummy: {
      BackPair &P = backPairFor(E.CfgEdgeIndex);
      P.Reset = planInc(E);
      P.SawEntry = true;
      break;
    }
    case DagEdgeKind::RetToExit:
      Plan.RetProbes.push_back({E.Src, planInc(E)});
      break;
    }
  }

  for (const auto &[CfgEdgeIndex, P] : BackPairs) {
    assert(P.SawExit && P.SawEntry && "unpaired back-edge dummies");
    Plan.BackProbes.push_back({CfgEdgeIndex, P.FlushAdd, P.Reset});
  }
  return Plan;
}

std::vector<uint32_t> BLDag::reconstruct(uint64_t PathId) const {
  assert(PathId < numPaths() && "path ID out of range");
  std::vector<uint32_t> Blocks;
  uint32_t Node = EntryNode;
  uint64_t Remaining = PathId;
  while (Node != ExitNode) {
    // Out-edge Vals are ascending prefix sums: take the last one <=
    // Remaining.
    const std::vector<uint32_t> &OutEdges = Out[Node];
    assert(!OutEdges.empty() && "DAG node with no out-edges before EXIT");
    uint32_t Chosen = OutEdges[0];
    for (uint32_t EdgeIndex : OutEdges) {
      if (Edges[EdgeIndex].Val <= Remaining)
        Chosen = EdgeIndex;
      else
        break;
    }
    Remaining -= Edges[Chosen].Val;
    Node = Edges[Chosen].Dst;
    if (Node != ExitNode)
      Blocks.push_back(Node);
  }
  assert(Remaining == 0 && "path ID not fully consumed");
  return Blocks;
}

std::vector<std::vector<uint32_t>> BLDag::enumerateAllPaths() const {
  std::vector<std::vector<uint32_t>> Paths;
  std::vector<uint32_t> Current;

  // DFS in out-edge order enumerates paths in increasing ID order because
  // Vals are prefix sums of the subtree path counts.
  auto Dfs = [&](auto &&Self, uint32_t Node) -> void {
    if (Node == ExitNode) {
      Paths.push_back(Current);
      return;
    }
    for (uint32_t EdgeIndex : Out[Node]) {
      uint32_t Dst = Edges[EdgeIndex].Dst;
      bool Pushed = (Dst != ExitNode);
      if (Pushed)
        Current.push_back(Dst);
      Self(Self, Dst);
      if (Pushed)
        Current.pop_back();
    }
  };
  Dfs(Dfs, EntryNode);
  return Paths;
}

std::vector<std::vector<uint32_t>> BLDag::enumerateAllPathEdges() const {
  std::vector<std::vector<uint32_t>> Paths;
  std::vector<uint32_t> Current;
  auto Dfs = [&](auto &&Self, uint32_t Node) -> void {
    if (Node == ExitNode) {
      Paths.push_back(Current);
      return;
    }
    for (uint32_t EdgeIndex : Out[Node]) {
      Current.push_back(EdgeIndex);
      Self(Self, Edges[EdgeIndex].Dst);
      Current.pop_back();
    }
  };
  Dfs(Dfs, EntryNode);
  return Paths;
}

} // namespace bl
} // namespace pathfuzz
