//===- BallLarus.h - Ball-Larus acyclic path profiling ----------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// Implements the Ball-Larus efficient path profiling encoding [Ball &
// Larus, MICRO'96], the algorithm the paper adapts as its fuzzing feedback:
//
//  1. The function CFG is turned into a DAG: back edges (found by a
//     deterministic DFS) are removed and replaced by *dummy* edges
//     ENTRY->head and tail->EXIT, so acyclic paths start at the function
//     entry or a loop head and end at a return or a loop back edge.
//  2. NumPaths(v) is computed in reverse topological order; each DAG edge
//     receives a constant Val such that the sum of Vals along every
//     ENTRY->EXIT path is a unique ID in [0, NumPaths(ENTRY)).
//  3. Optionally, increments are pushed onto the chords of a spanning tree
//     (the "event counting" optimization), minimizing the number of
//     instrumented edges while preserving the exact same path IDs. Dummy
//     edges are kept off the tree since back edges must carry the
//     flush-and-reset probes regardless.
//
// The output is a PathProbePlan: per-edge increments plus flush/reset
// constants for back edges and returns, which src/instrument lowers into
// MIR probe instructions. An overflow guard caps NumPaths; functions with
// pathologically many acyclic paths fall back to edge coverage, the same
// pragmatic provision real path-profiling implementations take.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_BL_BALLLARUS_H
#define PATHFUZZ_BL_BALLLARUS_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace pathfuzz {
namespace bl {

/// How increments are placed on edges.
enum class PlacementMode {
  /// Every DAG edge carries its raw Val (zero-valued edges need no probe).
  Simple,
  /// Increments moved to spanning-tree chords (fewest probes; may be
  /// negative). Produces identical path IDs as Simple.
  SpanningTree,
};

/// Kinds of DAG edges.
enum class DagEdgeKind : uint8_t {
  Real,         ///< a non-back CFG edge
  EntryToFirst, ///< virtual ENTRY -> entry block
  EntryDummy,   ///< virtual ENTRY -> loop head (for one back edge)
  ExitDummy,    ///< loop tail -> virtual EXIT (for one back edge)
  RetToExit,    ///< return block -> virtual EXIT
};

struct DagEdge {
  uint32_t Src = 0; ///< DAG node (block index, or entry/exit pseudo node)
  uint32_t Dst = 0;
  DagEdgeKind Kind = DagEdgeKind::Real;
  /// For Real: the CFG edge index. For EntryDummy/ExitDummy: the CFG index
  /// of the originating back edge. UINT32_MAX otherwise.
  uint32_t CfgEdgeIndex = UINT32_MAX;
  /// Ball-Larus Val: raw increment in Simple placement.
  uint64_t Val = 0;
  /// Chord increment in SpanningTree placement (0 for tree edges).
  int64_t Inc = 0;
  /// Whether the edge was put on the spanning tree.
  bool OnTree = false;
};

/// The probe schedule the instrumentation pass executes.
struct PathProbePlan {
  /// `r += Inc` on this (non-back, real) CFG edge.
  struct EdgeIncrement {
    uint32_t CfgEdgeIndex;
    int64_t Inc;
  };
  /// On this back CFG edge: emit path (r + FlushAdd); then r = Reset.
  struct BackEdgeProbe {
    uint32_t CfgEdgeIndex;
    int64_t FlushAdd;
    int64_t Reset;
  };
  /// At the end of this return block: emit path (r + FlushAdd).
  struct RetProbe {
    uint32_t Block;
    int64_t FlushAdd;
  };

  std::vector<EdgeIncrement> EdgeIncs;
  std::vector<BackEdgeProbe> BackProbes;
  std::vector<RetProbe> RetProbes;
  /// Initial value of the path register on function entry (0 with our
  /// canonical edge ordering, kept general for robustness).
  int64_t EntryInit = 0;
  /// Total number of acyclic paths (IDs are exactly [0, NumPaths)).
  uint64_t NumPaths = 0;
};

/// The Ball-Larus DAG over one function's CFG.
class BLDag {
public:
  /// Build the DAG and the Val labeling. Returns std::nullopt if the
  /// function has more than MaxPaths acyclic paths (overflow guard).
  static std::optional<BLDag> build(const cfg::CfgView &G,
                                    uint64_t MaxPaths = (1ULL << 31));

  /// Number of acyclic paths, i.e. NumPaths(ENTRY).
  uint64_t numPaths() const { return NumPathsPerNode[EntryNode]; }

  /// NumPaths at a given DAG node (block index or pseudo node).
  uint64_t numPathsAt(uint32_t Node) const { return NumPathsPerNode[Node]; }

  uint32_t entryNode() const { return EntryNode; }
  uint32_t exitNode() const { return ExitNode; }
  unsigned numBlocks() const { return NumBlocks; }

  const std::vector<DagEdge> &edges() const { return Edges; }
  const std::vector<uint32_t> &outEdges(uint32_t Node) const {
    return Out[Node];
  }

  /// Compute chord increments over a spanning tree (fills Inc/OnTree and
  /// the node potentials). Idempotent.
  void computeChordIncrements();

  /// Node potential from the spanning-tree optimization (0 before
  /// computeChordIncrements() and for Simple placement).
  int64_t potential(uint32_t Node) const { return Potential[Node]; }

  /// Derive the probe schedule for the requested placement mode.
  PathProbePlan makePlan(PlacementMode Mode);

  /// Invert the encoding: map a path ID back to the block sequence it
  /// denotes (first block is the path's start: function entry or a loop
  /// head; last is a return block or a loop tail).
  std::vector<uint32_t> reconstruct(uint64_t PathId) const;

  /// Enumerate every acyclic path's block sequence by DFS, in path-ID
  /// order. Intended for tests; cost is O(NumPaths * length).
  std::vector<std::vector<uint32_t>> enumerateAllPaths() const;

  /// Enumerate every acyclic path as its sequence of DAG edge indices, in
  /// path-ID order (tests simulate the probe plans over these).
  std::vector<std::vector<uint32_t>> enumerateAllPathEdges() const;

private:
  BLDag() = default;

  unsigned NumBlocks = 0;
  uint32_t EntryNode = 0;
  uint32_t ExitNode = 0;
  std::vector<DagEdge> Edges;
  std::vector<std::vector<uint32_t>> Out; ///< per-node out edge indices
  std::vector<uint64_t> NumPathsPerNode;
  std::vector<int64_t> Potential;
  bool ChordsComputed = false;
};

} // namespace bl
} // namespace pathfuzz

#endif // PATHFUZZ_BL_BALLLARUS_H
