//===- ShadowEdges.h - Mode-independent edge numbering ----------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The paper measures code coverage of *all* fuzzer configurations with
// afl-showmap on a pcguard-instrumented binary, so coverage comparisons are
// independent of each fuzzer's own feedback. Our analogue: the VM can
// record, for every executed control-flow transfer, a *shadow* edge ID
// drawn from a numbering computed on the original (pre-instrumentation)
// module. Edge identity is the stable (function, source block, successor
// slot) triple, so trampoline blocks added by probe placement do not
// perturb it and all feedback modes observe identical edge sets for
// identical program behaviour. The same per-input edge sets feed the
// culling strategy's edge-coverage-preserving queue reduction.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_INSTRUMENT_SHADOWEDGES_H
#define PATHFUZZ_INSTRUMENT_SHADOWEDGES_H

#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace instr {

/// Global numbering of the original CFG edges of a module. Build this
/// *before* instrumenting the module.
class ShadowEdgeIndex {
public:
  /// Build the numbering from an uninstrumented module.
  static ShadowEdgeIndex build(const mir::Module &M);

  /// Total number of edge IDs.
  uint32_t numEdges() const { return Total; }

  /// ID of the Slot-th successor edge of block Block in function Func.
  /// Returns UINT32_MAX for blocks beyond the original block count
  /// (instrumentation trampolines), which callers must skip.
  uint32_t edgeId(uint32_t Func, uint32_t Block, uint32_t Slot) const {
    if (Block >= OrigBlockCount[Func])
      return UINT32_MAX;
    return BlockBase[FuncBlockBase[Func] + Block] + Slot;
  }

  /// Original (pre-instrumentation) block count of a function.
  uint32_t origBlocks(uint32_t Func) const { return OrigBlockCount[Func]; }

private:
  uint32_t Total = 0;
  std::vector<uint32_t> OrigBlockCount; ///< per function
  std::vector<uint32_t> FuncBlockBase;  ///< per function: index into BlockBase
  std::vector<uint32_t> BlockBase;      ///< per original block: first edge ID
};

} // namespace instr
} // namespace pathfuzz

#endif // PATHFUZZ_INSTRUMENT_SHADOWEDGES_H
