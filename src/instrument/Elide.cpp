//===- Elide.cpp - Probe elision plan for selective execution -------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "instrument/Elide.h"

#include "analysis/Dominators.h"
#include "cfg/Cfg.h"

#include <sstream>

namespace pathfuzz {
namespace instr {

uint64_t ElisionPlan::count() const {
  uint64_t N = 0;
  for (const auto &Fn : Elide)
    for (const auto &Blk : Fn)
      for (uint8_t Flag : Blk)
        N += Flag != 0;
  return N;
}

ElisionPlan planProbeElision(const mir::Module &M) {
  ElisionPlan Plan;
  Plan.Elide.resize(M.Funcs.size());
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    const mir::Function &Fn = M.Funcs[F];
    Plan.Elide[F].resize(Fn.Blocks.size());
    for (size_t B = 0; B < Fn.Blocks.size(); ++B) {
      const auto &Instrs = Fn.Blocks[B].Instrs;
      Plan.Elide[F][B].assign(Instrs.size(), 0);
      for (size_t I = 0; I < Instrs.size(); ++I)
        if (Instrs[I].isProbe())
          Plan.Elide[F][B][I] = 1;
    }
  }
  return Plan;
}

namespace {

/// Registers a non-probe instruction reads. Probes touch the path register
/// implicitly and are exempt; everything else must not observe it.
void appendReadRegs(const mir::Instr &In, std::vector<mir::Reg> &Out) {
  using mir::Opcode;
  switch (In.Op) {
  case Opcode::Move:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::InByte:
  case Opcode::Alloc:
  case Opcode::BinImm:
    Out.push_back(In.B);
    break;
  case Opcode::Bin:
  case Opcode::Load:
    Out.push_back(In.B);
    Out.push_back(In.C);
    break;
  case Opcode::Store:
    Out.push_back(In.A);
    Out.push_back(In.B);
    Out.push_back(In.C);
    break;
  case Opcode::Free:
    Out.push_back(In.A);
    break;
  case Opcode::Call:
    for (unsigned I = 0; I < In.NumArgs; ++I)
      Out.push_back(In.Args[I]);
    break;
  default:
    break; // Const, InLen, GlobalAddr, Abort, probes: no register reads.
  }
}

} // namespace

AuditResult auditElisionPlan(const mir::Module &M, const ElisionPlan &Plan) {
  AuditResult R;
  auto Issue = [&R](const std::string &S) { R.Issues.push_back(S); };

  if (Plan.Elide.size() != M.Funcs.size()) {
    std::ostringstream OS;
    OS << "elision plan spans " << Plan.Elide.size() << " functions, module has "
       << M.Funcs.size();
    Issue(OS.str());
    return R;
  }

  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    const mir::Function &Fn = M.Funcs[F];
    const auto &FnPlan = Plan.Elide[F];
    if (FnPlan.size() != Fn.Blocks.size()) {
      std::ostringstream OS;
      OS << Fn.Name << ": plan spans " << FnPlan.size() << " blocks, function has "
         << Fn.Blocks.size();
      Issue(OS.str());
      continue;
    }

    const cfg::CfgView G(Fn);
    const analysis::DominatorTree Dom(G);

    // Blocks holding a PathFlushBack, for the per-edge converse check
    // below.
    std::vector<uint8_t> HasFlushBack(Fn.Blocks.size(), 0);
    for (size_t B = 0; B < Fn.Blocks.size(); ++B)
      for (const mir::Instr &In : Fn.Blocks[B].Instrs)
        if (In.Op == mir::Opcode::PathFlushBack)
          HasFlushBack[B] = 1;

    for (size_t B = 0; B < Fn.Blocks.size(); ++B) {
      const auto &Instrs = Fn.Blocks[B].Instrs;
      const auto &BlkPlan = FnPlan[B];
      if (BlkPlan.size() != Instrs.size()) {
        std::ostringstream OS;
        OS << Fn.Name << " block " << B << ": plan spans " << BlkPlan.size()
           << " instructions, block has " << Instrs.size();
        Issue(OS.str());
        continue;
      }

      for (size_t I = 0; I < Instrs.size(); ++I) {
        const mir::Instr &In = Instrs[I];
        const bool Elided = BlkPlan[I] != 0;

        // The plan must elide exactly the probes: a non-probe rewritten to
        // a no-op changes program semantics; a surviving probe would write
        // through the cheap tier's null coverage map.
        if (Elided && !In.isProbe()) {
          std::ostringstream OS;
          OS << Fn.Name << " block " << B << " instr " << I
             << ": plan elides non-probe " << mir::opcodeName(In.Op);
          Issue(OS.str());
        }
        if (!Elided && In.isProbe()) {
          std::ostringstream OS;
          OS << Fn.Name << " block " << B << " instr " << I
             << ": probe " << mir::opcodeName(In.Op) << " not covered by plan";
          Issue(OS.str());
        }
        if (!In.isProbe())
          continue;

        // Placement sanity of the Ball-Larus flush probes, re-derived from
        // CFG facts rather than trusted from the planner. A back-edge
        // flush must sit adjacent to a retreating edge — the same
        // classification the planner placed it on: in the edge's source
        // block, its trampoline (the new source after splitting), or the
        // block the edge enters (the single-predecessor placement). The
        // target need not dominate the source — irreducible CFGs have
        // retreating edges without the natural-loop property, and the
        // planner flushes those too.
        if (In.Op == mir::Opcode::PathFlushBack && G.isReachable(
                static_cast<uint32_t>(B))) {
          bool AdjacentBackEdge = false;
          auto CheckEdges = [&](const std::vector<uint32_t> &EdgeIdxs) {
            for (uint32_t EI : EdgeIdxs)
              if (G.isBackEdge(EI))
                AdjacentBackEdge = true;
          };
          CheckEdges(G.succEdges(static_cast<uint32_t>(B)));
          CheckEdges(G.predEdges(static_cast<uint32_t>(B)));
          if (!AdjacentBackEdge) {
            std::ostringstream OS;
            OS << Fn.Name << " block " << B << " instr " << I
               << ": PathFlushBack not adjacent to any back edge";
            Issue(OS.str());
          }
        }
        if (In.Op == mir::Opcode::PathFlushRet &&
            G.isReachable(static_cast<uint32_t>(B)) &&
            !G.isExitBlock(static_cast<uint32_t>(B))) {
          std::ostringstream OS;
          OS << Fn.Name << " block " << B << " instr " << I
             << ": PathFlushRet outside a return block";
          Issue(OS.str());
        }
      }
    }

    // Converse placement check, from dominator facts: a retreating edge
    // whose target dominates its source is a natural back edge, and
    // natural back edges are retreating under *every* DFS order — so each
    // one must have received a flush at planning time regardless of how
    // edge splitting reshuffled the view. The flush lives in the edge's
    // source (direct and trampoline placements — the trampoline becomes
    // the new source) or its target (single-predecessor placement).
    if (Fn.HasPathReg) {
      for (uint32_t EI = 0; EI < G.edges().size(); ++EI) {
        if (!G.isBackEdge(EI))
          continue;
        const cfg::Edge &E = G.edges()[EI];
        if (!Dom.dominates(E.Dst, E.Src))
          continue; // irreducible retreating edge: no dominance fact
        if (!HasFlushBack[E.Src] && !HasFlushBack[E.Dst]) {
          std::ostringstream OS;
          OS << Fn.Name << ": natural back edge " << E.Src << "->" << E.Dst
             << " carries no PathFlushBack";
          Issue(OS.str());
        }
      }
    }

    // Eliding PathAdd/PathFlushBack stops the path register from being
    // updated; that is only safe if nothing but probes ever reads it.
    if (Fn.HasPathReg) {
      std::vector<mir::Reg> Reads;
      for (size_t B = 0; B < Fn.Blocks.size(); ++B) {
        for (size_t I = 0; I < Fn.Blocks[B].Instrs.size(); ++I) {
          const mir::Instr &In = Fn.Blocks[B].Instrs[I];
          if (In.isProbe())
            continue;
          Reads.clear();
          appendReadRegs(In, Reads);
          for (mir::Reg Rg : Reads) {
            if (Rg == Fn.PathReg) {
              std::ostringstream OS;
              OS << Fn.Name << " block " << B << " instr " << I << ": non-probe "
                 << mir::opcodeName(In.Op) << " reads the path register";
              Issue(OS.str());
            }
          }
        }
        const mir::Terminator &T = Fn.Blocks[B].Term;
        if ((T.Kind == mir::TermKind::CondBr || T.Kind == mir::TermKind::Switch ||
             T.Kind == mir::TermKind::Ret) &&
            T.Cond == Fn.PathReg) {
          std::ostringstream OS;
          OS << Fn.Name << " block " << B
             << ": terminator reads the path register";
          Issue(OS.str());
        }
      }
    }
  }
  return R;
}

} // namespace instr
} // namespace pathfuzz
