//===- Elide.h - Probe elision plan for selective execution -----*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The two-tier (selective) execution mode runs bulk executions on a cheap
// image whose coverage probes are replaced by no-ops, and re-executes an
// input on the fully instrumented image only when the cheap run's exec-path
// signature is new (see vm::FeedbackContext::PathSig). Because the replay
// decision is driven purely by the branch-decision signature — never by
// probe output — *every* probe is redundant on the cheap tier: probes only
// write the coverage map, and the map is untouched on cheap runs.
//
// ElisionPlan records which instruction slots the cheap ProgramImage build
// rewrites to DOp::Nop. The slots are rewritten in place (never deleted) so
// the cheap image keeps the exact PC layout, PcInfo table, step accounting
// and fault coordinates of the full image — the properties the byte-exact
// replay contract depends on.
//
// auditElisionPlan proves the plan is safe with dominator/CFG facts rather
// than trusting the planner: every elided slot is a probe, the plan covers
// every probe (a survivor would write the null map), Ball-Larus flush
// probes sit where the placement contract puts them (PathFlushBack
// adjacent to a retreating edge, PathFlushRet in return blocks — the same
// CfgView back-edge/exit classification the planner used), every natural
// back edge — one whose target dominates its source, a dominator-tree
// fact stable under any DFS order — carries a flush, and no non-probe
// instruction reads the path register, so eliding its writers cannot
// change any computed value. strategy::BuildCache runs the audit whenever
// instr::auditEnabled().
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_INSTRUMENT_ELIDE_H
#define PATHFUZZ_INSTRUMENT_ELIDE_H

#include "instrument/Audit.h"
#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace instr {

/// Which instruction slots the cheap image build replaces with no-ops.
/// Indexed [function][block][instruction]; a missing entry means "keep".
struct ElisionPlan {
  std::vector<std::vector<std::vector<uint8_t>>> Elide;

  /// Whether the plan elides instruction `InstrIdx` of block `B` in
  /// function `F`. Out-of-range coordinates are "keep" (false).
  bool covers(uint32_t F, uint32_t B, uint32_t InstrIdx) const {
    if (F >= Elide.size() || B >= Elide[F].size() ||
        InstrIdx >= Elide[F][B].size())
      return false;
    return Elide[F][B][InstrIdx] != 0;
  }

  /// Total number of elided slots.
  uint64_t count() const;
};

/// Build the elision plan for an instrumented module: mark every probe
/// instruction. The plan is a pure function of the module.
ElisionPlan planProbeElision(const mir::Module &M);

/// Prove Plan is a safe elision of M's probes (see file comment).
AuditResult auditElisionPlan(const mir::Module &M, const ElisionPlan &Plan);

} // namespace instr
} // namespace pathfuzz

#endif // PATHFUZZ_INSTRUMENT_ELIDE_H
