//===- Audit.h - Static instrumentation auditor -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Proves — without enumerating paths — that instrumentation output is
// sound. Two layers:
//
// auditPlan: given a function's Ball-Larus DAG and a PathProbePlan, prove
// the plan's increment/flush/reset constants realize the canonical path
// numbering. The argument is the potential algebra of the spanning-tree
// optimization run in reverse:
//
//  1. Re-derive NumPaths bottom-up and check every DAG edge's Val is the
//     canonical prefix sum of its successors' path counts. This is the
//     Ball-Larus invariant that makes Val sums injective onto
//     [0, NumPaths): paths through distinct first-divergence edges land in
//     disjoint ID intervals. O(V+E), no enumeration.
//  2. Map each DAG edge to the constant the plan makes it contribute to
//     the flushed ID (EntryToFirst -> EntryInit, Real -> its EdgeInc or 0,
//     EntryDummy -> Reset, ExitDummy -> FlushAdd, RetToExit -> FlushAdd).
//  3. Search for a node potential phi with phi(ENTRY) = 0 such that every
//     DAG edge e = u->v satisfies PlanInc(e) = Val(e) + phi(u) - phi(v),
//     and phi(EXIT) = 0. A single BFS from ENTRY determines phi uniquely
//     on a connected DAG; each edge then either confirms or refutes it.
//     If phi exists, the plan's sum along any ENTRY->EXIT path telescopes
//     to the Val sum — the canonical unique ID — for ALL NumPaths paths at
//     once. If any constant is corrupted, some edge refutes phi (or
//     phi(EXIT) != 0) and the audit fails.
//
//  For SpanningTree placement it additionally checks the chord discipline:
//  the zero-increment real edges (plus the virtual EXIT--ENTRY edge) must
//  connect every reachable DAG node, so probed edges are chords of some
//  spanning tree, and back-edge dummies always carry their probes.
//
// auditModule: given the pristine module, the instrumented module and the
// instrumentation report, re-derive each function's plan deterministically
// and prove the lowering placed exactly the planned probes: original
// instructions preserved in order, probes confined to block prefixes/
// suffixes or fresh trampoline blocks, critical edges split, per-edge
// placement following the single-successor/single-predecessor rules, and
// constants bit-exact. Edge and classic modes get the analogous placement
// checks. The audited module must also pass mir::verifyModule.
//
// strategy::BuildCache runs auditModule on every instrumented module when
// auditing is enabled (default: debug builds; override with PATHFUZZ_AUDIT
// = 0/1).
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_INSTRUMENT_AUDIT_H
#define PATHFUZZ_INSTRUMENT_AUDIT_H

#include "bl/BallLarus.h"
#include "instrument/Instrument.h"
#include "mir/Mir.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace instr {

/// Audit outcome; Issues is empty iff the artifact is proven sound.
struct AuditResult {
  std::vector<std::string> Issues;

  bool ok() const { return Issues.empty(); }
  std::string message() const;
};

/// Prove a probe plan realizes the canonical Ball-Larus numbering of Dag.
/// G must be the CfgView the DAG was built from. Checks are O(V + E).
AuditResult auditPlan(const cfg::CfgView &G, const bl::BLDag &Dag,
                      const bl::PathProbePlan &Plan, bl::PlacementMode Mode);

/// Prove an instrumented module is a sound lowering of Base under Opts.
/// Base must be the pre-instrumentation module, Inst the output of
/// instrumentModule(Base-copy, Opts), and Report its return value.
AuditResult auditModule(const mir::Module &Base, const mir::Module &Inst,
                        const InstrumentReport &Report,
                        const InstrumentOptions &Opts);

/// Whether BuildCache should audit each instrumented module. Defaults to
/// on in assert-enabled builds and off in release; the PATHFUZZ_AUDIT env
/// var (0/1) and setAuditEnabled override in that order.
bool auditEnabled();
void setAuditEnabled(bool On);

} // namespace instr
} // namespace pathfuzz

#endif // PATHFUZZ_INSTRUMENT_AUDIT_H
