//===- ShadowEdges.cpp - Mode-independent edge numbering ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "instrument/ShadowEdges.h"

namespace pathfuzz {
namespace instr {

ShadowEdgeIndex ShadowEdgeIndex::build(const mir::Module &M) {
  ShadowEdgeIndex Index;
  Index.OrigBlockCount.reserve(M.Funcs.size());
  Index.FuncBlockBase.reserve(M.Funcs.size());

  uint32_t NextId = 0;
  for (const mir::Function &F : M.Funcs) {
    Index.FuncBlockBase.push_back(
        static_cast<uint32_t>(Index.BlockBase.size()));
    Index.OrigBlockCount.push_back(F.numBlocks());
    for (const mir::BasicBlock &BB : F.Blocks) {
      Index.BlockBase.push_back(NextId);
      NextId += static_cast<uint32_t>(BB.Term.Succs.size());
    }
  }
  Index.Total = NextId;
  return Index;
}

} // namespace instr
} // namespace pathfuzz
