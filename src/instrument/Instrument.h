//===- Instrument.h - Coverage instrumentation passes -----------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// Rewrites a MIR module with coverage probes, mirroring the paper's LLVM
// passes. Three feedbacks are supported:
//
//  - EdgePrecise: one probe per CFG edge with a collision-free global edge
//    ID (the `pcguard` analogue, AFL++'s default and the paper's baseline).
//  - EdgeClassic: one probe per basic block with a random location ID; the
//    runtime combines it with the previous location as `cur ^ (prev >> 1)`
//    (classic AFL; the base PathAFL builds on).
//  - Path: Ball-Larus intra-procedural acyclic-path probes (the paper's
//    contribution): `r += k` on selected edges, flush+reset at back edges,
//    flush at returns. The map update key is (path_id ^ function_key),
//    computed by the runtime, exactly as in the paper (Section IV).
//
// Probes attach to edges with the standard placement rules: into the
// source block when it has a single successor, into the destination when
// it has a single predecessor, otherwise onto a freshly split trampoline
// block. Instrumentation runs after the frontend finishes, the analogue of
// the paper running its pass after all middle-end optimizations.
//
// Functions whose acyclic-path count exceeds MaxPathsPerFunction fall back
// to precise edge probes (overflow guard); the report records this.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_INSTRUMENT_INSTRUMENT_H
#define PATHFUZZ_INSTRUMENT_INSTRUMENT_H

#include "bl/BallLarus.h"
#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace instr {

/// Which coverage feedback the probes implement.
enum class Feedback : uint8_t {
  None,        ///< no probes (blind fuzzing / baseline timing)
  EdgePrecise, ///< pcguard analogue: per-edge collision-free IDs
  EdgeClassic, ///< classic AFL: per-block random location IDs
  Path,        ///< Ball-Larus intra-procedural path probes (the paper)
};

struct InstrumentOptions {
  Feedback Mode = Feedback::EdgePrecise;
  /// Increment placement for Path mode.
  bl::PlacementMode Placement = bl::PlacementMode::SpanningTree;
  /// Path-count overflow guard; beyond this a function falls back to
  /// precise edge probes.
  uint64_t MaxPathsPerFunction = 1ULL << 31;
  /// Seed for classic-mode block IDs and per-function keys.
  uint64_t Seed = 0x5eed5eedULL;
  /// Map size (power of two) used to pre-reduce classic block IDs.
  uint32_t MapSizeLog2 = 16;
};

/// Per-function summary of what the pass did.
struct FunctionInstrInfo {
  uint64_t NumPaths = 0;     ///< acyclic paths (Path mode; 0 on fallback)
  bool PathFallback = false; ///< Path mode fell back to edge probes
  uint32_t NumProbes = 0;    ///< probe instructions inserted
  uint32_t NumSplitEdges = 0;
};

/// Whole-module instrumentation result.
struct InstrumentReport {
  Feedback Mode = Feedback::None;
  std::vector<FunctionInstrInfo> PerFunction;
  /// Per-function 64-bit keys for path-map indexing (index = function).
  std::vector<uint64_t> FuncKeys;
  uint64_t TotalProbes = 0;
  uint64_t TotalSplitEdges = 0;
  uint64_t TotalPathFallbacks = 0;
  /// Number of distinct precise edge IDs assigned (EdgePrecise/fallbacks).
  uint64_t NumEdgeIds = 0;
  /// Sum of NumPaths over successfully path-instrumented functions.
  uint64_t TotalPaths = 0;
};

/// Instrument the module in place. The module must verify beforehand and
/// will verify afterwards.
InstrumentReport instrumentModule(mir::Module &M,
                                  const InstrumentOptions &Opts);

} // namespace instr
} // namespace pathfuzz

#endif // PATHFUZZ_INSTRUMENT_INSTRUMENT_H
