//===- Instrument.cpp - Coverage instrumentation passes ----------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrument.h"

#include "cfg/EdgeSplit.h"
#include "mir/Verifier.h"
#include "support/Rng.h"

#include <cassert>

namespace pathfuzz {
namespace instr {

namespace {

/// Instruments one function; shares the global edge-ID counter and RNG
/// with the module pass.
class FunctionInstrumenter {
public:
  FunctionInstrumenter(mir::Module &M, uint32_t FuncIndex,
                       const InstrumentOptions &Opts, uint32_t &NextEdgeId,
                       Rng &ClassicRng)
      : M(M), F(M.Funcs[FuncIndex]), Opts(Opts), NextEdgeId(NextEdgeId),
        ClassicRng(ClassicRng) {}

  FunctionInstrInfo run() {
    switch (Opts.Mode) {
    case Feedback::None:
      break;
    case Feedback::EdgePrecise:
      instrumentEdgePrecise();
      break;
    case Feedback::EdgeClassic:
      instrumentEdgeClassic();
      break;
    case Feedback::Path:
      instrumentPath();
      break;
    }
    return Info;
  }

private:
  /// Place probe I on the CFG edge (Src, Slot), splitting the edge when
  /// neither endpoint can host it unambiguously. G is the pre-pass view.
  void placeOnEdge(const cfg::CfgView &G, uint32_t Src, uint32_t Slot,
                   const mir::Instr &I) {
    ++Info.NumProbes;
    const std::vector<uint32_t> &Out = G.succEdges(Src);
    assert(Slot < Out.size() && "bad slot");
    uint32_t EdgeIndex = Out[Slot];
    uint32_t Dst = G.edges()[EdgeIndex].Dst;

    if (Out.size() == 1) {
      // The edge is always taken when Src completes: append to Src.
      F.Blocks[Src].Instrs.push_back(I);
      return;
    }
    if (G.predEdges(Dst).size() == 1 && Dst != 0) {
      // Only this edge enters Dst (and Dst is not the function entry, which
      // is also reachable from the caller): prepend to Dst.
      auto &Instrs = F.Blocks[Dst].Instrs;
      Instrs.insert(Instrs.begin(), I);
      return;
    }
    uint32_t Trampoline = cfg::splitEdge(F, Src, Slot);
    F.Blocks[Trampoline].Instrs.push_back(I);
    ++Info.NumSplitEdges;
  }

  void instrumentEdgePrecise() {
    // Faithful pcguard analogue: LLVM's SanitizerCoverage splits all
    // critical edges and then plants one guard per basic block, yielding
    // collision-free edge-equivalent coverage. We do exactly that.
    {
      cfg::CfgView G(F);
      for (uint32_t EdgeIndex = 0; EdgeIndex < G.edges().size(); ++EdgeIndex) {
        if (!G.isCriticalEdge(EdgeIndex))
          continue;
        const cfg::Edge &E = G.edges()[EdgeIndex];
        cfg::splitEdge(F, E.Src, E.Slot);
        ++Info.NumSplitEdges;
      }
    }
    cfg::CfgView G(F);
    for (uint32_t B = 0; B < G.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      mir::Instr Probe;
      Probe.Op = mir::Opcode::EdgeProbe;
      Probe.Imm = static_cast<int64_t>(NextEdgeId++);
      auto &Instrs = F.Blocks[B].Instrs;
      Instrs.insert(Instrs.begin(), Probe);
      ++Info.NumProbes;
    }
  }

  void instrumentEdgeClassic() {
    uint64_t MapSize = 1ULL << Opts.MapSizeLog2;
    for (mir::BasicBlock &BB : F.Blocks) {
      mir::Instr Probe;
      Probe.Op = mir::Opcode::BlockProbe;
      Probe.Imm = static_cast<int64_t>(ClassicRng.below(MapSize));
      BB.Instrs.insert(BB.Instrs.begin(), Probe);
      ++Info.NumProbes;
    }
  }

  void instrumentPath() {
    cfg::CfgView G(F);
    std::optional<bl::BLDag> Dag = bl::BLDag::build(G, Opts.MaxPathsPerFunction);
    if (!Dag) {
      // Overflow guard: pathological path counts fall back to edge probes,
      // as practical path-profiling systems do.
      Info.PathFallback = true;
      instrumentEdgePrecise();
      return;
    }

    bl::PathProbePlan Plan = Dag->makePlan(Opts.Placement);
    Info.NumPaths = Plan.NumPaths;

    F.HasPathReg = true;
    F.PathReg = F.NumRegs++;
    F.PathRegInit = Plan.EntryInit;

    for (const auto &EI : Plan.EdgeIncs) {
      const cfg::Edge &E = G.edges()[EI.CfgEdgeIndex];
      mir::Instr Probe;
      Probe.Op = mir::Opcode::PathAdd;
      Probe.Imm = EI.Inc;
      placeOnEdge(G, E.Src, E.Slot, Probe);
    }
    for (const auto &BP : Plan.BackProbes) {
      const cfg::Edge &E = G.edges()[BP.CfgEdgeIndex];
      mir::Instr Probe;
      Probe.Op = mir::Opcode::PathFlushBack;
      Probe.Imm = BP.FlushAdd;
      Probe.Imm2 = BP.Reset;
      placeOnEdge(G, E.Src, E.Slot, Probe);
    }
    for (const auto &RP : Plan.RetProbes) {
      mir::Instr Probe;
      Probe.Op = mir::Opcode::PathFlushRet;
      Probe.Imm = RP.FlushAdd;
      F.Blocks[RP.Block].Instrs.push_back(Probe);
      ++Info.NumProbes;
    }
  }

  mir::Module &M;
  mir::Function &F;
  const InstrumentOptions &Opts;
  uint32_t &NextEdgeId;
  Rng &ClassicRng;
  FunctionInstrInfo Info;
};

} // namespace

InstrumentReport instrumentModule(mir::Module &M,
                                  const InstrumentOptions &Opts) {
  assert(mir::verifyModule(M).ok() && "instrumenting an ill-formed module");

  InstrumentReport Report;
  Report.Mode = Opts.Mode;
  Report.FuncKeys.reserve(M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I)
    Report.FuncKeys.push_back(
        mix64(Opts.Seed ^ (0x9e3779b97f4a7c15ULL * (I + 1))));

  // Mark before inserting probes: the verifier rejects probe opcodes in
  // modules that never passed through this function.
  M.Instrumented = true;

  uint32_t NextEdgeId = 0;
  Rng ClassicRng(Opts.Seed ^ 0xc1a551cULL);

  for (uint32_t FuncIndex = 0; FuncIndex < M.Funcs.size(); ++FuncIndex) {
    FunctionInstrumenter FI(M, FuncIndex, Opts, NextEdgeId, ClassicRng);
    FunctionInstrInfo Info = FI.run();
    Report.TotalProbes += Info.NumProbes;
    Report.TotalSplitEdges += Info.NumSplitEdges;
    Report.TotalPathFallbacks += Info.PathFallback ? 1 : 0;
    Report.TotalPaths += Info.NumPaths;
    Report.PerFunction.push_back(Info);
  }
  Report.NumEdgeIds = NextEdgeId;

  assert(mir::verifyModule(M).ok() && "instrumentation broke the module");
  return Report;
}

} // namespace instr
} // namespace pathfuzz
