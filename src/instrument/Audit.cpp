//===- Audit.cpp - Static instrumentation auditor ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "instrument/Audit.h"

#include "cfg/Cfg.h"
#include "mir/Verifier.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pathfuzz {
namespace instr {

namespace {

/// -1 = no programmatic override; 0/1 = forced off/on via setAuditEnabled.
int AuditOverride = -1;

std::string str(uint64_t V) { return std::to_string(V); }
std::string str(int64_t V) { return std::to_string(V); }

bool instrEq(const mir::Instr &A, const mir::Instr &B) {
  if (A.Op != B.Op || A.BOp != B.BOp || A.A != B.A || A.B != B.B ||
      A.C != B.C || A.Imm != B.Imm || A.Imm2 != B.Imm2 ||
      A.Callee != B.Callee || A.NumArgs != B.NumArgs)
    return false;
  for (unsigned I = 0; I < A.NumArgs; ++I)
    if (A.Args[I] != B.Args[I])
      return false;
  return true;
}

/// Probe identity: opcode plus its immediates (registers are implicit —
/// path probes act on F.PathReg, coverage probes on the map).
bool probeEq(const mir::Instr &A, const mir::Instr &B) {
  return A.Op == B.Op && A.Imm == B.Imm && A.Imm2 == B.Imm2;
}

/// Terminator shape: everything except the successor targets, which
/// trampolines may legally redirect.
bool termShapeEq(const mir::Terminator &A, const mir::Terminator &B) {
  return A.Kind == B.Kind && A.Cond == B.Cond &&
         A.CaseValues == B.CaseValues && A.Succs.size() == B.Succs.size();
}

bool termExactEq(const mir::Terminator &A, const mir::Terminator &B) {
  return termShapeEq(A, B) && A.Succs == B.Succs;
}

using IssueFn = std::function<void(std::string)>;

/// Mode None: the pass must be the identity.
void auditUntouched(const mir::Function &BaseF, const mir::Function &InstF,
                    const IssueFn &Issue) {
  if (InstF.numBlocks() != BaseF.numBlocks()) {
    Issue("block count changed under Feedback::None");
    return;
  }
  for (uint32_t B = 0; B < BaseF.numBlocks(); ++B) {
    const mir::BasicBlock &BB = InstF.Blocks[B];
    const mir::BasicBlock &BBase = BaseF.Blocks[B];
    if (BB.Instrs.size() != BBase.Instrs.size() ||
        !termExactEq(BB.Term, BBase.Term)) {
      Issue("block " + str(uint64_t(B)) + " changed under Feedback::None");
      continue;
    }
    for (size_t I = 0; I < BB.Instrs.size(); ++I)
      if (!instrEq(BB.Instrs[I], BBase.Instrs[I]))
        Issue("block " + str(uint64_t(B)) + " instruction " + str(uint64_t(I)) +
              " changed under Feedback::None");
  }
}

/// EdgeClassic: exactly one BlockProbe prepended to EVERY block, location
/// ID inside the configured map; everything else untouched.
void auditClassic(const mir::Function &BaseF, const mir::Function &InstF,
                  uint32_t MapSizeLog2, const IssueFn &Issue) {
  if (InstF.numBlocks() != BaseF.numBlocks()) {
    Issue("classic probes must not add blocks");
    return;
  }
  const int64_t MapSize = int64_t(1) << MapSizeLog2;
  for (uint32_t B = 0; B < BaseF.numBlocks(); ++B) {
    const mir::BasicBlock &BB = InstF.Blocks[B];
    const mir::BasicBlock &BBase = BaseF.Blocks[B];
    std::string Where = "block " + str(uint64_t(B)) + ": ";
    if (BB.Instrs.empty() || BB.Instrs[0].Op != mir::Opcode::BlockProbe) {
      Issue(Where + "missing leading block probe");
      continue;
    }
    if (BB.Instrs[0].Imm < 0 || BB.Instrs[0].Imm >= MapSize)
      Issue(Where + "block probe location " + str(BB.Instrs[0].Imm) +
            " outside the " + str(MapSize) + "-entry map");
    if (BB.Instrs.size() != BBase.Instrs.size() + 1 ||
        !termExactEq(BB.Term, BBase.Term)) {
      Issue(Where + "original code altered");
      continue;
    }
    for (size_t I = 0; I < BBase.Instrs.size(); ++I)
      if (!instrEq(BB.Instrs[I + 1], BBase.Instrs[I]))
        Issue(Where + "original instruction " + str(uint64_t(I)) + " altered");
  }
}

/// EdgePrecise (also the Path-mode overflow fallback): all critical edges
/// split, exactly one EdgeProbe prepended per reachable block, unreachable
/// blocks untouched, original code preserved. Collects the probe IDs for
/// the module-wide uniqueness/density check.
void auditEdgePrecise(const mir::Function &BaseF, const mir::Function &InstF,
                      const FunctionInstrInfo &Info,
                      std::vector<int64_t> &EdgeIds, const IssueFn &Issue) {
  const uint32_t NB = BaseF.numBlocks();
  if (InstF.numBlocks() < NB) {
    Issue("instrumented function lost blocks");
    return;
  }
  cfg::CfgView BG(BaseF);
  cfg::CfgView IG(InstF);

  // The pcguard discipline: no critical edge may survive the pass.
  for (uint32_t E = 0; E < IG.edges().size(); ++E)
    if (IG.isCriticalEdge(E))
      Issue("critical edge " + str(uint64_t(IG.edges()[E].Src)) + "->" +
            str(uint64_t(IG.edges()[E].Dst)) + " was not split");

  uint32_t FoundProbes = 0, FoundSplits = InstF.numBlocks() - NB;
  std::vector<bool> TrampUsed(FoundSplits, false);

  for (uint32_t B = 0; B < NB; ++B) {
    const mir::BasicBlock &BB = InstF.Blocks[B];
    const mir::BasicBlock &BBase = BaseF.Blocks[B];
    std::string Where = "block " + str(uint64_t(B)) + ": ";

    size_t Lead = 0;
    while (Lead < BB.Instrs.size() && BB.Instrs[Lead].isProbe())
      ++Lead;
    const size_t WantLead = IG.isReachable(B) ? 1 : 0;
    if (Lead != WantLead) {
      Issue(Where + "expected " + str(uint64_t(WantLead)) +
            " leading probe(s), found " + str(uint64_t(Lead)));
    } else if (WantLead == 1) {
      if (BB.Instrs[0].Op != mir::Opcode::EdgeProbe)
        Issue(Where + "leading probe is not an edge probe");
      else
        EdgeIds.push_back(BB.Instrs[0].Imm);
    }
    FoundProbes += static_cast<uint32_t>(Lead);

    if (BB.Instrs.size() - Lead != BBase.Instrs.size()) {
      Issue(Where + "original instruction sequence altered");
    } else {
      for (size_t I = 0; I < BBase.Instrs.size(); ++I) {
        const mir::Instr &Got = BB.Instrs[Lead + I];
        if (Got.isProbe() || !instrEq(Got, BBase.Instrs[I])) {
          Issue(Where + "original instruction " + str(uint64_t(I)) +
                " altered");
          break;
        }
      }
    }

    if (!termShapeEq(BB.Term, BBase.Term)) {
      Issue(Where + "terminator shape changed");
      continue;
    }
    for (size_t S = 0; S < BBase.Term.Succs.size(); ++S) {
      const uint32_t D = BBase.Term.Succs[S];
      const uint32_t D2 = BB.Term.Succs[S];
      const bool Critical = BG.succEdges(B).size() > 1 &&
                            BG.predEdges(D).size() > 1;
      std::string EdgeName = "edge " + str(uint64_t(B)) + "->" +
                             str(uint64_t(D)) + ": ";
      if (!Critical) {
        if (D2 != D)
          Issue(EdgeName + "redirected although not critical");
        continue;
      }
      if (D2 < NB || D2 >= InstF.numBlocks()) {
        Issue(EdgeName + "critical edge not routed through a trampoline");
        continue;
      }
      if (TrampUsed[D2 - NB]) {
        Issue(EdgeName + "trampoline block shared between edges");
        continue;
      }
      TrampUsed[D2 - NB] = true;
      const mir::BasicBlock &TB = InstF.Blocks[D2];
      if (TB.Term.Kind != mir::TermKind::Br || TB.Term.Succs.size() != 1 ||
          TB.Term.Succs[0] != D)
        Issue(EdgeName + "trampoline does not branch straight to the "
                         "original target");
      const size_t WantTrampProbes = IG.isReachable(D2) ? 1 : 0;
      if (TB.Instrs.size() != WantTrampProbes) {
        Issue(EdgeName + "trampoline carries unexpected instructions");
        continue;
      }
      if (WantTrampProbes == 1) {
        if (TB.Instrs[0].Op != mir::Opcode::EdgeProbe) {
          Issue(EdgeName + "trampoline probe is not an edge probe");
        } else {
          EdgeIds.push_back(TB.Instrs[0].Imm);
          ++FoundProbes;
        }
      }
    }
  }
  for (size_t T = 0; T < TrampUsed.size(); ++T)
    if (!TrampUsed[T])
      Issue("orphan trampoline block " + str(uint64_t(NB + T)));

  if (FoundProbes != Info.NumProbes)
    Issue("report claims " + str(uint64_t(Info.NumProbes)) +
          " probes, module carries " + str(uint64_t(FoundProbes)));
  if (FoundSplits != Info.NumSplitEdges)
    Issue("report claims " + str(uint64_t(Info.NumSplitEdges)) +
          " split edges, module carries " + str(uint64_t(FoundSplits)));
}

/// Path mode, non-fallback: re-derive the plan deterministically, prove it
/// sound via auditPlan, then prove the lowering placed exactly the planned
/// probes following placeOnEdge's single-successor / single-predecessor /
/// trampoline rules.
void auditPathFunction(const mir::Function &BaseF, const mir::Function &InstF,
                       const FunctionInstrInfo &Info,
                       const InstrumentOptions &Opts, const IssueFn &Issue) {
  cfg::CfgView BG(BaseF);
  std::optional<bl::BLDag> DagOpt =
      bl::BLDag::build(BG, Opts.MaxPathsPerFunction);
  if (!DagOpt) {
    Issue("path count overflows the cap but the report says the function "
          "was path-instrumented");
    return;
  }
  bl::BLDag Dag = std::move(*DagOpt);
  bl::PathProbePlan Plan = Dag.makePlan(Opts.Placement);

  AuditResult PlanAudit = auditPlan(BG, Dag, Plan, Opts.Placement);
  for (std::string &S : PlanAudit.Issues)
    Issue("plan: " + std::move(S));

  if (Info.NumPaths != Plan.NumPaths)
    Issue("report path count " + str(Info.NumPaths) +
          " disagrees with the canonical plan's " + str(Plan.NumPaths));
  if (!InstF.HasPathReg) {
    Issue("path-instrumented function has no path register");
    return;
  }
  if (InstF.NumRegs != BaseF.NumRegs + 1 || InstF.PathReg != BaseF.NumRegs)
    Issue("path register must be the one freshly appended register");
  if (InstF.PathRegInit != Plan.EntryInit)
    Issue("path register init " + str(InstF.PathRegInit) +
          " != planned entry value " + str(Plan.EntryInit));

  // Expected placement, by replaying the placement *rules* (not the
  // insertion order) over the pristine CFG.
  const uint32_t NB = BaseF.numBlocks();
  std::map<uint32_t, mir::Instr> WantPrefix, WantSuffix, WantRet;
  std::map<std::pair<uint32_t, uint32_t>, mir::Instr> WantTramp;
  uint32_t WantProbes = 0;

  auto PlaceExpected = [&](uint32_t CfgEdgeIndex, const mir::Instr &P) {
    if (CfgEdgeIndex >= BG.edges().size()) {
      Issue("plan references CFG edge #" + str(uint64_t(CfgEdgeIndex)) +
            " which does not exist");
      return;
    }
    const cfg::Edge &E = BG.edges()[CfgEdgeIndex];
    ++WantProbes;
    if (BG.succEdges(E.Src).size() == 1) {
      // Unconditional edge: appended to the source block.
      WantSuffix.emplace(E.Src, P);
    } else if (BG.predEdges(E.Dst).size() == 1 && E.Dst != 0) {
      // Sole way into Dst: prepended to the destination block.
      WantPrefix.emplace(E.Dst, P);
    } else {
      WantTramp[{E.Src, E.Slot}] = P;
    }
  };
  for (const auto &EI : Plan.EdgeIncs) {
    mir::Instr P;
    P.Op = mir::Opcode::PathAdd;
    P.Imm = EI.Inc;
    PlaceExpected(EI.CfgEdgeIndex, P);
  }
  for (const auto &BP : Plan.BackProbes) {
    mir::Instr P;
    P.Op = mir::Opcode::PathFlushBack;
    P.Imm = BP.FlushAdd;
    P.Imm2 = BP.Reset;
    PlaceExpected(BP.CfgEdgeIndex, P);
  }
  for (const auto &RP : Plan.RetProbes) {
    mir::Instr P;
    P.Op = mir::Opcode::PathFlushRet;
    P.Imm = RP.FlushAdd;
    WantRet.emplace(RP.Block, P);
    ++WantProbes;
  }

  if (InstF.numBlocks() != NB + WantTramp.size())
    Issue("expected " + str(uint64_t(WantTramp.size())) +
          " trampoline blocks, found " +
          str(uint64_t(InstF.numBlocks() - NB)));
  if (Info.NumSplitEdges != WantTramp.size())
    Issue("report split-edge count disagrees with the plan");
  if (Info.NumProbes != WantProbes)
    Issue("report claims " + str(uint64_t(Info.NumProbes)) +
          " probes, plan requires " + str(uint64_t(WantProbes)));

  std::vector<bool> TrampUsed(
      InstF.numBlocks() > NB ? InstF.numBlocks() - NB : 0, false);
  uint32_t FoundProbes = 0;

  for (uint32_t B = 0; B < NB && B < InstF.numBlocks(); ++B) {
    const mir::BasicBlock &BB = InstF.Blocks[B];
    const mir::BasicBlock &BBase = BaseF.Blocks[B];
    std::string Where = "block " + str(uint64_t(B)) + ": ";

    // The block must be exactly [planned prefix probe?] + original code +
    // [planned suffix probe?]. A block never hosts both an out-edge
    // increment and a return flush (the former needs a successor, the
    // latter a Ret terminator), so the suffix is at most one probe.
    // Comparing against the fully materialized expectation — instead of
    // scanning for probe fringes — stays unambiguous even when the
    // original block had no instructions at all.
    std::vector<const mir::Instr *> Expect;
    auto PIt = WantPrefix.find(B);
    if (PIt != WantPrefix.end())
      Expect.push_back(&PIt->second);
    for (const mir::Instr &I : BBase.Instrs)
      Expect.push_back(&I);
    auto SIt = WantSuffix.find(B);
    auto RIt = WantRet.find(B);
    if (SIt != WantSuffix.end())
      Expect.push_back(&SIt->second);
    if (RIt != WantRet.end())
      Expect.push_back(&RIt->second);

    if (BB.Instrs.size() != Expect.size()) {
      Issue(Where + "expected " + str(uint64_t(Expect.size())) +
            " instructions (incl. planned probes), found " +
            str(uint64_t(BB.Instrs.size())));
    } else {
      for (size_t I = 0; I < Expect.size(); ++I) {
        const mir::Instr &Got = BB.Instrs[I];
        const mir::Instr &Want = *Expect[I];
        bool Same = Want.isProbe() ? Got.isProbe() && probeEq(Got, Want)
                                   : instrEq(Got, Want);
        if (!Same) {
          Issue(Where + "instruction " + str(uint64_t(I)) +
                (Want.isProbe() ? " is not the planned probe"
                                : " altered by instrumentation"));
          break;
        }
      }
    }
    for (const mir::Instr &I : BB.Instrs)
      if (I.isProbe())
        ++FoundProbes;

    if (!termShapeEq(BB.Term, BBase.Term)) {
      Issue(Where + "terminator shape changed");
      continue;
    }
    for (size_t S = 0; S < BBase.Term.Succs.size(); ++S) {
      const uint32_t D = BBase.Term.Succs[S];
      const uint32_t D2 = BB.Term.Succs[S];
      std::string EdgeName = "edge " + str(uint64_t(B)) + "[slot " +
                             str(uint64_t(S)) + "]->" + str(uint64_t(D)) +
                             ": ";
      auto TIt = WantTramp.find({B, static_cast<uint32_t>(S)});
      if (TIt == WantTramp.end()) {
        if (D2 != D)
          Issue(EdgeName + "redirected without a planned trampoline");
        continue;
      }
      if (D2 < NB || D2 >= InstF.numBlocks()) {
        Issue(EdgeName + "planned trampoline missing");
        continue;
      }
      if (TrampUsed[D2 - NB]) {
        Issue(EdgeName + "trampoline block shared between edges");
        continue;
      }
      TrampUsed[D2 - NB] = true;
      const mir::BasicBlock &TB = InstF.Blocks[D2];
      if (TB.Term.Kind != mir::TermKind::Br || TB.Term.Succs.size() != 1 ||
          TB.Term.Succs[0] != D)
        Issue(EdgeName + "trampoline does not branch straight to the "
                         "original target");
      if (TB.Instrs.size() != 1 || !probeEq(TB.Instrs[0], TIt->second)) {
        Issue(EdgeName + "trampoline probe wrong or missing");
        continue;
      }
      ++FoundProbes;
    }
  }
  for (size_t T = 0; T < TrampUsed.size(); ++T)
    if (!TrampUsed[T])
      Issue("orphan trampoline block " + str(uint64_t(NB + T)));

  if (FoundProbes != WantProbes)
    Issue("plan requires " + str(uint64_t(WantProbes)) +
          " probes, module carries " + str(uint64_t(FoundProbes)));
}

} // namespace

std::string AuditResult::message() const {
  std::string Msg;
  for (const std::string &S : Issues) {
    if (!Msg.empty())
      Msg += "; ";
    Msg += S;
  }
  return Msg;
}

AuditResult auditPlan(const cfg::CfgView &G, const bl::BLDag &Dag,
                      const bl::PathProbePlan &Plan, bl::PlacementMode Mode) {
  AuditResult R;
  auto Issue = [&R](std::string S) { R.Issues.push_back(std::move(S)); };

  const std::vector<bl::DagEdge> &Edges = Dag.edges();
  const uint32_t Entry = Dag.entryNode();
  const uint32_t Exit = Dag.exitNode();
  uint32_t NumNodes = std::max(Entry, Exit) + 1;
  for (const bl::DagEdge &E : Edges)
    NumNodes = std::max(NumNodes, std::max(E.Src, E.Dst) + 1);

  // ---- Acyclicity + canonical-Val check (Kahn, then reverse topo) ------
  // Recompute NumPaths bottom-up ourselves; every edge's Val must be the
  // prefix sum of its younger siblings' path counts. That invariant is
  // what makes Val-sums injective onto [0, NumPaths): paths diverging at
  // different out-edges of a node occupy disjoint ID intervals.
  std::vector<uint32_t> InDeg(NumNodes, 0);
  std::vector<bool> Active(NumNodes, false);
  Active[Entry] = Active[Exit] = true;
  for (const bl::DagEdge &E : Edges) {
    ++InDeg[E.Dst];
    Active[E.Src] = Active[E.Dst] = true;
  }
  size_t NumActive = 0;
  for (uint32_t N = 0; N < NumNodes; ++N)
    NumActive += Active[N] ? 1 : 0;

  std::deque<uint32_t> Q;
  for (uint32_t N = 0; N < NumNodes; ++N)
    if (Active[N] && InDeg[N] == 0)
      Q.push_back(N);
  std::vector<uint32_t> Topo;
  Topo.reserve(NumActive);
  while (!Q.empty()) {
    uint32_t N = Q.front();
    Q.pop_front();
    Topo.push_back(N);
    for (uint32_t EI : Dag.outEdges(N))
      if (--InDeg[Edges[EI].Dst] == 0)
        Q.push_back(Edges[EI].Dst);
  }
  if (Topo.size() != NumActive) {
    Issue("DAG contains a cycle");
    return R; // path counts are meaningless; nothing below can be trusted
  }

  std::vector<uint64_t> NP(NumNodes, 0);
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    const uint32_t N = *It;
    if (N == Exit) {
      if (!Dag.outEdges(N).empty())
        Issue("EXIT has outgoing edges");
      NP[N] = 1;
    } else if (Dag.outEdges(N).empty()) {
      // Every non-EXIT DAG node lies on some ENTRY->EXIT path: Ret blocks
      // get RetToExit, loop tails get ExitDummy. A dead end is corruption.
      Issue("node " + str(uint64_t(N)) + " cannot reach EXIT");
      NP[N] = 0;
    } else {
      uint64_t Sum = 0;
      for (uint32_t EI : Dag.outEdges(N)) {
        const bl::DagEdge &E = Edges[EI];
        if (E.Src != N) {
          Issue("out-edge list of node " + str(uint64_t(N)) + " is corrupt");
          continue;
        }
        if (E.Val != Sum)
          Issue("edge " + str(uint64_t(E.Src)) + "->" + str(uint64_t(E.Dst)) +
                " Val " + str(E.Val) + " is not the canonical prefix sum " +
                str(Sum));
        Sum += NP[E.Dst];
      }
      NP[N] = Sum;
    }
    if (NP[N] != Dag.numPathsAt(N))
      Issue("stored path count at node " + str(uint64_t(N)) +
            " disagrees with recomputation");
  }
  if (NP[Entry] != Plan.NumPaths)
    Issue("plan NumPaths " + str(Plan.NumPaths) +
          " != canonical path count " + str(NP[Entry]));
  if (NP[Entry] == 0)
    Issue("function has zero acyclic paths");

  // ---- Plan completeness ----------------------------------------------
  // Back probes <-> back edges, bijectively (the canonical back-edge list
  // is shared with BLDag::build via CfgView::backEdgeIndices).
  std::set<uint32_t> BackSet(G.backEdgeIndices().begin(),
                             G.backEdgeIndices().end());
  std::set<uint32_t> SeenBack;
  for (const auto &BP : Plan.BackProbes) {
    if (!BackSet.count(BP.CfgEdgeIndex))
      Issue("flush/reset probe on CFG edge #" + str(uint64_t(BP.CfgEdgeIndex)) +
            " which is not a back edge");
    if (!SeenBack.insert(BP.CfgEdgeIndex).second)
      Issue("duplicate back-edge probe on CFG edge #" +
            str(uint64_t(BP.CfgEdgeIndex)));
  }
  if (SeenBack.size() != BackSet.size())
    Issue("plan covers " + str(uint64_t(SeenBack.size())) + " of " +
          str(uint64_t(BackSet.size())) + " back edges");

  // Ret probes <-> reachable return blocks, bijectively.
  std::set<uint32_t> RetSet;
  for (uint32_t B = 0; B < G.numBlocks(); ++B)
    if (G.isReachable(B) && G.isExitBlock(B))
      RetSet.insert(B);
  std::set<uint32_t> SeenRet;
  for (const auto &RP : Plan.RetProbes) {
    if (!RetSet.count(RP.Block))
      Issue("flush probe at block " + str(uint64_t(RP.Block)) +
            " which is not a reachable return block");
    if (!SeenRet.insert(RP.Block).second)
      Issue("duplicate return probe at block " + str(uint64_t(RP.Block)));
  }
  if (SeenRet.size() != RetSet.size())
    Issue("plan covers " + str(uint64_t(SeenRet.size())) + " of " +
          str(uint64_t(RetSet.size())) + " return blocks");

  // Edge increments: distinct, non-trivial, on DAG real edges only.
  std::set<uint32_t> RealCfgEdges;
  for (const bl::DagEdge &E : Edges)
    if (E.Kind == bl::DagEdgeKind::Real)
      RealCfgEdges.insert(E.CfgEdgeIndex);
  std::map<uint32_t, int64_t> IncByCfgEdge;
  for (const auto &EI : Plan.EdgeIncs) {
    if (!IncByCfgEdge.emplace(EI.CfgEdgeIndex, EI.Inc).second)
      Issue("duplicate increment on CFG edge #" +
            str(uint64_t(EI.CfgEdgeIndex)));
    if (EI.Inc == 0)
      Issue("no-op zero increment on CFG edge #" +
            str(uint64_t(EI.CfgEdgeIndex)));
    if (!RealCfgEdges.count(EI.CfgEdgeIndex))
      Issue("increment on CFG edge #" + str(uint64_t(EI.CfgEdgeIndex)) +
            " which is not a DAG real edge");
  }

  // ---- Potential consistency (the heart of the audit) ------------------
  // PlanInc(e) is the constant the runtime adds to the path register when
  // traversing e (dummy edges "add" their reset/flush constants). A single
  // potential phi with phi(ENTRY) = phi(EXIT) = 0 and
  //   PlanInc(e) = Val(e) + phi(src) - phi(dst)
  // on EVERY edge makes each path's increment sum telescope to its Val sum
  // — the canonical unique ID — covering all NumPaths paths at once.
  std::map<uint32_t, std::pair<int64_t, int64_t>> BackByCfg; // flush, reset
  for (const auto &BP : Plan.BackProbes)
    BackByCfg[BP.CfgEdgeIndex] = {BP.FlushAdd, BP.Reset};
  std::map<uint32_t, int64_t> RetByBlock;
  for (const auto &RP : Plan.RetProbes)
    RetByBlock[RP.Block] = RP.FlushAdd;

  auto planInc = [&](const bl::DagEdge &E, bool &Ok) -> int64_t {
    Ok = true;
    switch (E.Kind) {
    case bl::DagEdgeKind::EntryToFirst:
      return Plan.EntryInit;
    case bl::DagEdgeKind::Real: {
      auto It = IncByCfgEdge.find(E.CfgEdgeIndex);
      return It == IncByCfgEdge.end() ? 0 : It->second;
    }
    case bl::DagEdgeKind::EntryDummy: {
      auto It = BackByCfg.find(E.CfgEdgeIndex);
      if (It == BackByCfg.end()) {
        Ok = false;
        return 0;
      }
      return It->second.second; // a path starting at a loop head begins
                                // with the back edge's reset constant
    }
    case bl::DagEdgeKind::ExitDummy: {
      auto It = BackByCfg.find(E.CfgEdgeIndex);
      if (It == BackByCfg.end()) {
        Ok = false;
        return 0;
      }
      return It->second.first;
    }
    case bl::DagEdgeKind::RetToExit: {
      auto It = RetByBlock.find(E.Src);
      if (It == RetByBlock.end()) {
        Ok = false;
        return 0;
      }
      return It->second;
    }
    }
    Ok = false;
    return 0;
  };

  using I128 = __int128;
  std::vector<I128> Phi(NumNodes, 0);
  std::vector<bool> Known(NumNodes, false);
  Known[Entry] = true;
  std::deque<uint32_t> Work{Entry};
  while (!Work.empty()) {
    const uint32_t N = Work.front();
    Work.pop_front();
    for (uint32_t EI : Dag.outEdges(N)) {
      const bl::DagEdge &E = Edges[EI];
      bool Ok = false;
      const I128 Inc = planInc(E, Ok);
      if (!Ok) {
        Issue("DAG edge " + str(uint64_t(E.Src)) + "->" +
              str(uint64_t(E.Dst)) + " has no plan constant");
        continue;
      }
      const I128 Want = Phi[N] + static_cast<I128>(E.Val) - Inc;
      if (!Known[E.Dst]) {
        Known[E.Dst] = true;
        Phi[E.Dst] = Want;
        Work.push_back(E.Dst);
      } else if (Phi[E.Dst] != Want) {
        Issue("increment algebra violated on DAG edge " +
              str(uint64_t(E.Src)) + "->" + str(uint64_t(E.Dst)) +
              ": no potential reconciles Val " + str(E.Val) +
              " with plan increment " + str(static_cast<int64_t>(Inc)));
      }
    }
  }
  if (!Known[Exit]) {
    Issue("EXIT is unreachable from ENTRY in the DAG");
  } else if (Phi[Exit] != 0) {
    Issue("potential at EXIT is " + str(static_cast<int64_t>(Phi[Exit])) +
          ", not 0: plan sums do not equal the canonical path IDs");
  }
  for (uint32_t N = 0; N < NumNodes; ++N)
    if (Active[N] && !Known[N])
      Issue("DAG node " + str(uint64_t(N)) + " is unreachable from ENTRY");

  // ---- Spanning-tree chord discipline ---------------------------------
  if (Mode == bl::PlacementMode::SpanningTree) {
    // The zero-increment edges, plus the virtual EXIT--ENTRY edge, must
    // connect every reachable DAG node: then the edges carrying nonzero
    // increments are chords of a spanning tree, the Ball-Larus minimum.
    // RetToExit edges are tree candidates too — their flush probe is
    // mandatory either way, so the planner happily puts them on the tree
    // with FlushAdd 0. Only the back-edge dummy pair is forced off-tree
    // (its flush/reset constants encode path boundaries, not increments),
    // so only those may not be needed for connectivity.
    std::vector<uint32_t> UF(NumNodes);
    std::iota(UF.begin(), UF.end(), 0u);
    std::function<uint32_t(uint32_t)> Find = [&](uint32_t X) -> uint32_t {
      while (UF[X] != X) {
        UF[X] = UF[UF[X]];
        X = UF[X];
      }
      return X;
    };
    auto Unite = [&](uint32_t A, uint32_t B) { UF[Find(A)] = Find(B); };
    Unite(Exit, Entry); // the virtual edge closing every path into a cycle
    for (const bl::DagEdge &E : Edges) {
      if (E.Kind != bl::DagEdgeKind::Real &&
          E.Kind != bl::DagEdgeKind::EntryToFirst &&
          E.Kind != bl::DagEdgeKind::RetToExit)
        continue;
      bool Ok = false;
      if (planInc(E, Ok) == 0 && Ok)
        Unite(E.Src, E.Dst);
    }
    const uint32_t Root = Find(Entry);
    for (uint32_t N = 0; N < NumNodes; ++N)
      if (Known[N] && Find(N) != Root)
        Issue("spanning-tree placement: zero-increment edges do not span "
              "DAG node " +
              str(uint64_t(N)) + " (a tree edge carries a probe)");
  }

  return R;
}

AuditResult auditModule(const mir::Module &Base, const mir::Module &Inst,
                        const InstrumentReport &Report,
                        const InstrumentOptions &Opts) {
  AuditResult R;
  auto Issue = [&R](std::string S) { R.Issues.push_back(std::move(S)); };

  if (Report.Mode != Opts.Mode)
    Issue("report feedback mode disagrees with the options");
  if (Base.Funcs.size() != Inst.Funcs.size()) {
    Issue("function count changed by instrumentation");
    return R;
  }
  if (Report.PerFunction.size() != Inst.Funcs.size()) {
    Issue("report covers " + str(uint64_t(Report.PerFunction.size())) +
          " of " + str(uint64_t(Inst.Funcs.size())) + " functions");
    return R;
  }
  if (Report.FuncKeys.size() != Inst.Funcs.size())
    Issue("per-function key table has the wrong size");
  if (Opts.Mode != Feedback::None && !Inst.Instrumented)
    Issue("instrumented module does not carry the Instrumented flag");

  // The extended verifier runs over the instrumented module: register
  // bounds for the appended path register, probe placement sanity, and
  // the probes-only-in-instrumented-modules rule.
  mir::VerifyResult VR = mir::verifyModule(Inst);
  if (!VR.ok())
    Issue("verifier: " + VR.message());

  std::vector<int64_t> EdgeIds; // global precise-edge IDs, for density
  for (size_t F = 0; F < Inst.Funcs.size(); ++F) {
    const mir::Function &BaseF = Base.Funcs[F];
    const mir::Function &InstF = Inst.Funcs[F];
    const FunctionInstrInfo &Info = Report.PerFunction[F];
    const std::string Prefix = "function '" + InstF.Name + "': ";
    auto FIssue = [&R, &Prefix](std::string S) {
      R.Issues.push_back(Prefix + std::move(S));
    };

    switch (Opts.Mode) {
    case Feedback::None:
      auditUntouched(BaseF, InstF, FIssue);
      break;
    case Feedback::EdgeClassic:
      auditClassic(BaseF, InstF, Opts.MapSizeLog2, FIssue);
      break;
    case Feedback::EdgePrecise:
      auditEdgePrecise(BaseF, InstF, Info, EdgeIds, FIssue);
      break;
    case Feedback::Path:
      if (Info.PathFallback) {
        cfg::CfgView BG(BaseF);
        if (bl::BLDag::build(BG, Opts.MaxPathsPerFunction))
          FIssue("fell back to edge probes although the path count fits "
                 "the cap");
        auditEdgePrecise(BaseF, InstF, Info, EdgeIds, FIssue);
      } else {
        auditPathFunction(BaseF, InstF, Info, Opts, FIssue);
      }
      break;
    }
  }

  // Precise edge IDs must be exactly [0, NumEdgeIds), each used once.
  if (Opts.Mode == Feedback::EdgePrecise || Opts.Mode == Feedback::Path) {
    if (EdgeIds.size() != Report.NumEdgeIds) {
      Issue("module carries " + str(uint64_t(EdgeIds.size())) +
            " edge probes but the report assigned " +
            str(Report.NumEdgeIds) + " IDs");
    } else {
      std::sort(EdgeIds.begin(), EdgeIds.end());
      for (size_t I = 0; I < EdgeIds.size(); ++I)
        if (EdgeIds[I] != static_cast<int64_t>(I)) {
          Issue("precise edge IDs are not the dense range [0, " +
                str(Report.NumEdgeIds) + ")");
          break;
        }
    }
  }

  return R;
}

bool auditEnabled() {
  if (AuditOverride >= 0)
    return AuditOverride != 0;
  // The shared env helper: "0" disables, anything else enables, unset
  // falls through to the build-type default.
#ifdef NDEBUG
  return envBool("PATHFUZZ_AUDIT", false);
#else
  return envBool("PATHFUZZ_AUDIT", true);
#endif
}

void setAuditEnabled(bool On) { AuditOverride = On ? 1 : 0; }

} // namespace instr
} // namespace pathfuzz
