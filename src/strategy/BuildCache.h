//===- BuildCache.h - Shared subject build cache ----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The paper's evaluation is embarrassingly parallel: 18 subjects x 7
// fuzzer configurations x several trials. What is *not* independent is
// the build work — compiling a subject and instrumenting it for a
// feedback mode is identical across trials, and the serial drivers used
// to redo it per campaign. This cache compiles each subject exactly once
// and instruments it once per (feedback mode, placement, map size),
// sharing the resulting modules read-only across every trial and every
// worker thread.
//
// Sharing is sound because everything downstream takes const references:
// the Fuzzer, the Vm and the shadow-edge index never mutate the module.
// It is *deterministic* because compilation and instrumentation derive
// only from the subject source and a stable instrumentation seed, so a
// cached build is bit-identical to the one a fresh serial campaign would
// construct.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_BUILDCACHE_H
#define PATHFUZZ_STRATEGY_BUILDCACHE_H

#include "strategy/Campaign.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace pathfuzz {
namespace strategy {

/// One instrumented variant of a subject: the rewritten module plus its
/// instrumentation report (per-function keys etc.).
struct InstrumentedBuild {
  mir::Module Mod;
  instr::InstrumentReport Report;
};

/// Compiled artifacts for one subject, shared read-only across campaign
/// trials and threads: the base module, its shadow-edge index, and one
/// instrumented module per feedback configuration.
class SubjectBuild {
public:
  /// Compiles the subject. Aborts on compile errors — subjects are part
  /// of the repository, not user input.
  explicit SubjectBuild(const Subject &S);

  const Subject &subject() const { return *S; }
  const mir::Module &base() const { return Base; }
  const instr::ShadowEdgeIndex &shadow() const { return Shadow; }

  /// The instrumented build for a feedback mode under the given campaign
  /// options; built on first use, then shared. Thread-safe. The returned
  /// reference stays valid for the lifetime of this SubjectBuild.
  const InstrumentedBuild &instrumented(instr::Feedback Mode,
                                        const CampaignOptions &Opts);

  /// Instrumentation passes run so far on this subject.
  size_t instrumentCount() const;

private:
  /// Everything instrumentModule's output depends on besides the module.
  using Key = std::tuple<uint8_t /*Feedback*/, uint8_t /*PlacementMode*/,
                         uint32_t /*MapSizeLog2*/>;

  const Subject *S;
  mir::Module Base;
  instr::ShadowEdgeIndex Shadow;

  mutable std::mutex M;
  std::map<Key, std::unique_ptr<InstrumentedBuild>> Builds;
};

/// Lazily compiles each subject exactly once and hands out the shared
/// per-subject builds. Thread-safe; one cache per batch run.
class BuildCache {
public:
  /// The (possibly freshly compiled) build for S, keyed by subject name.
  SubjectBuild &get(const Subject &S);

  size_t subjectsCompiled() const;
  size_t modulesInstrumented() const;

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<SubjectBuild>> Subjects;
};

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_BUILDCACHE_H
