//===- BuildCache.h - Shared subject build cache ----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The paper's evaluation is embarrassingly parallel: 18 subjects x 7
// fuzzer configurations x several trials. What is *not* independent is
// the build work — compiling a subject and instrumenting it for a
// feedback mode is identical across trials, and the serial drivers used
// to redo it per campaign. This cache compiles each subject exactly once
// and instruments it once per (feedback mode, placement, map size),
// sharing the resulting modules read-only across every trial and every
// worker thread.
//
// Sharing is sound because everything downstream takes const references:
// the Fuzzer, the Vm and the shadow-edge index never mutate the module.
// It is *deterministic* because compilation and instrumentation derive
// only from the subject source and a stable instrumentation seed, so a
// cached build is bit-identical to the one a fresh serial campaign would
// construct.
//
// Build failures are *captured, not fatal*: a SubjectBuild whose subject
// fails to compile (for real, or through the "strategy.compile" fault-
// injection site) carries the structured diagnostic instead of aborting
// the process, so one broken subject cannot take down a whole batch. The
// cache hands out shared_ptrs so a failed entry can be invalidated for a
// retry while concurrent holders of the old entry stay valid.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_BUILDCACHE_H
#define PATHFUZZ_STRATEGY_BUILDCACHE_H

#include "strategy/Campaign.h"
#include "vm/Image.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace pathfuzz {
namespace strategy {

/// One instrumented variant of a subject: the rewritten module plus its
/// instrumentation report (per-function keys etc.).
struct InstrumentedBuild {
  mir::Module Mod;
  instr::InstrumentReport Report;
  /// Pre-decoded VM image of Mod (the fast-path executor's input; see
  /// vm/Image.h), built once alongside the instrumentation when the fast
  /// path is enabled and shared read-only by every trial's Vm. Null when
  /// every campaign that touched this slot ran with the fast path off.
  std::unique_ptr<vm::ProgramImage> Image;
  /// Probe-free twin of Image for the selective mode's cheap tier: same
  /// module, same PC layout, probe slots rewritten to no-ops from an
  /// audited elision plan (instrument/Elide.h). Built lazily alongside
  /// Image when a campaign resolves to selective + fast-path execution;
  /// null otherwise.
  std::unique_ptr<vm::ProgramImage> CheapImage;
};

/// Compiled artifacts for one subject, shared read-only across campaign
/// trials and threads: the base module, its shadow-edge index, and one
/// instrumented module per feedback configuration.
class SubjectBuild {
public:
  /// Compiles the subject. Compile failure is captured (see ok()/error())
  /// rather than aborted on.
  explicit SubjectBuild(const Subject &S);

  /// Whether the subject compiled; every accessor below except the error
  /// ones requires ok().
  bool ok() const { return Compiled; }
  /// The structured diagnostic when !ok(): the frontend's full message,
  /// or the injected-fault description.
  const std::string &error() const { return Err; }
  /// Name of the fault-injection site that caused the failure (empty for
  /// genuine compile errors).
  const std::string &faultSite() const { return FaultSiteName; }
  /// Whether retrying the build may succeed (injected transient faults).
  bool transientError() const { return TransientErr; }

  const Subject &subject() const { return *S; }
  const mir::Module &base() const { return Base; }
  const instr::ShadowEdgeIndex &shadow() const { return Shadow; }

  /// The instrumented build for a feedback mode under the given campaign
  /// options; built on first use, then shared. Thread-safe. The returned
  /// reference stays valid for the lifetime of this SubjectBuild.
  /// Returns null — with the diagnostic in *ErrOut when provided — when
  /// the "strategy.instrument" fault site triggers, or when the static
  /// instrumentation audit (instr::auditModule; on in debug builds, via
  /// PATHFUZZ_AUDIT elsewhere, and always after the
  /// "strategy.instrument.corrupt" fault fires) rejects the module.
  /// Failed attempts are not cached, so a retry re-runs the pass.
  const InstrumentedBuild *tryInstrumented(instr::Feedback Mode,
                                           const CampaignOptions &Opts,
                                           std::string *ErrOut = nullptr);

  /// tryInstrumented for contexts where failure is impossible (no faults
  /// armed); asserts success.
  const InstrumentedBuild &instrumented(instr::Feedback Mode,
                                        const CampaignOptions &Opts);

  /// Instrumentation passes run so far on this subject.
  size_t instrumentCount() const;

  /// Fast-path image decodes performed / avoided on this subject:
  /// tryInstrumented builds the image at most once per cache slot and
  /// counts every later fast-path request as a hit.
  size_t imageBuilds() const;
  size_t imageHits() const;

private:
  /// Everything instrumentModule's output depends on besides the module.
  using Key = std::tuple<uint8_t /*Feedback*/, uint8_t /*PlacementMode*/,
                         uint32_t /*MapSizeLog2*/>;

  const Subject *S;
  mir::Module Base;
  instr::ShadowEdgeIndex Shadow;
  bool Compiled = false;
  bool TransientErr = false;
  std::string Err;
  std::string FaultSiteName;

  mutable std::mutex M;
  std::map<Key, std::unique_ptr<InstrumentedBuild>> Builds;
  size_t ImageBuildCount = 0;
  size_t ImageHitCount = 0;
};

/// Lazily compiles each subject exactly once and hands out the shared
/// per-subject builds. Thread-safe; one cache per batch run.
class BuildCache {
public:
  /// The (possibly freshly compiled) build for S, keyed by subject name.
  /// The shared_ptr keeps the build alive across invalidate().
  std::shared_ptr<SubjectBuild> get(const Subject &S);

  /// Drop the cached entry for a subject so the next get() recompiles —
  /// the retry path for transient build faults. In-flight holders of the
  /// old entry are unaffected.
  void invalidate(const std::string &SubjectName);

  size_t subjectsCompiled() const;
  size_t modulesInstrumented() const;
  /// Fast-path image decodes performed / avoided across all subjects.
  size_t imagesPredecoded() const;
  size_t imageCacheHits() const;

private:
  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<SubjectBuild>> Subjects;
  size_t CompileCount = 0;
};

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_BUILDCACHE_H
