//===- Campaign.h - Fuzzer configurations and campaign drivers --*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// The seven fuzzer configurations of the paper's evaluation, each driving
// the same fuzzing core with a different feedback and/or exploration-
// biasing strategy:
//
//   pcguard  — AFL++'s default precise edge coverage (the baseline).
//   path     — Ball-Larus intra-procedural path feedback (Section III-A).
//   cull     — path + periodic edge-coverage-preserving queue culling
//              (Section III-B1): the campaign is divided into culling
//              rounds; after each round the queue is reduced to a
//              favored-corpus-style subset that preserves all covered
//              edges and a fresh fuzzer instance restarts from it. The
//              culling cost (re-running the retained seeds) is charged
//              against the budget, as the paper's driver does.
//   cull_r   — the Appendix D ablation: culling with *random* retention
//              (84-98% of the queue trimmed per round).
//   opp      — opportunistic (Section III-B2): half the budget fuzzes
//              with edge feedback; the resulting queue is stripped of
//              crashes, trimmed to an edge-preserving subset, and handed
//              to a path-aware fuzzer for the second half. Only the
//              second phase's bugs count for opp, matching the paper.
//   afl      — classic AFL edge hashing (the base of PathAFL).
//   pathafl  — the PathAFL comparator: classic AFL feedback plus coarse
//              whole-program call-path hashing with partial
//              instrumentation (Appendix C).
//
// Budgets are measured in executions, the deterministic analogue of the
// paper's 48-hour wall-clock budgets.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_CAMPAIGN_H
#define PATHFUZZ_STRATEGY_CAMPAIGN_H

#include "fuzz/Fuzzer.h"
#include "lang/Compile.h"
#include "support/Bytes.h"
#include "vm/Image.h"

#include <functional>
#include <set>
#include <string>

namespace pathfuzz {
namespace strategy {

enum class FuzzerKind : uint8_t {
  Pcguard,
  Path,
  Cull,
  CullRandom,
  Opp,
  Afl,
  PathAfl,
};

const char *fuzzerKindName(FuzzerKind K);

/// A program under test: MiniLang source plus its seed corpus.
struct Subject {
  std::string Name;
  std::string Source;
  std::vector<fuzz::Input> Seeds;
};

struct CampaignOptions {
  FuzzerKind Kind = FuzzerKind::Pcguard;
  uint64_t ExecBudget = 20000;
  uint64_t Seed = 1;
  uint32_t MapSizeLog2 = 16;
  /// Number of culling rounds for Cull/CullRandom. The paper uses
  /// 48h/6h = 8 rounds; with the scaled-down execution budgets 2 rounds
  /// keep each round long enough to rebuild momentum after a cull.
  uint32_t CullRounds = 2;
  size_t MaxInputLen = 256;
  uint64_t StepLimit = 50000;
  bl::PlacementMode Placement = bl::PlacementMode::SpanningTree;
  /// Queue-size sampling interval (execs); 0 disables sampling.
  uint32_t GrowthSampleInterval = 1024;

  // Robustness knobs. None of these perturb the campaign's results: a
  // checkpointed or watchdog-bounded run executes the exact same fuzzing
  // schedule as an unadorned one.

  /// Emit a checkpoint through CheckpointSink roughly every this many
  /// campaign-cumulative execs (0 disables checkpointing). Checkpoints
  /// fire only at fuzzer safe points, so a run resumed from any emitted
  /// checkpoint is byte-identical to the uninterrupted run.
  uint64_t CheckpointInterval = 0;
  /// Receives each sealed checkpoint blob (see resumeCampaign).
  std::function<void(const std::vector<uint8_t> &)> CheckpointSink;
  /// Campaign-level exec watchdog: abort the campaign (with a structured
  /// CampaignError) once total executions reach this limit. 0 means the
  /// batch runner's default (a generous multiple of ExecBudget); the
  /// deterministic analogue of a wall-clock hang detector.
  uint64_t WatchdogExecLimit = 0;

  /// Durable campaign store (strategy/Store.h). When non-empty,
  /// runCampaign() persists checkpoints under this directory and first
  /// recovers from the newest valid one already there, so a SIGKILL at
  /// any instant loses at most one checkpoint interval. The batch runner
  /// derives per-trial directories from the PATHFUZZ_STORE root for jobs
  /// that leave this empty. Like the other robustness knobs it never
  /// perturbs results and is excluded from the checkpoint fingerprint.
  std::string StoreDir;
  /// Checkpoint files retained on disk per campaign (oldest rotated out;
  /// min 1). More files buy deeper fallback when the newest is corrupt.
  uint32_t StoreKeepLast = 3;

  /// Telemetry: when enabled, every fuzzer instance records events,
  /// metrics and time-series samples, folded into CampaignResult::Trace.
  /// Observational only — traced and untraced campaigns produce
  /// byte-identical results. The batch runner arms this from the
  /// PATHFUZZ_TRACE environment knob for jobs that don't set it.
  telemetry::TraceConfig Trace;

  /// VM execution engine. Auto (the default) follows the
  /// PATHFUZZ_VM_FASTPATH environment knob (fast path on unless set to
  /// "0"); Interpreter/FastPath force one engine regardless of the
  /// environment. Both engines produce bit-identical campaign results —
  /// the fast path only changes per-exec cost — so, like the robustness
  /// knobs above, this is excluded from the checkpoint fingerprint: a run
  /// checkpointed under one engine may be resumed under the other.
  vm::VmExecMode VmMode = vm::VmExecMode::Auto;

  /// Two-tier selective execution (fuzz/Fuzzer.h): bulk execs on a cheap
  /// probe-free image, full instrumented replay only on unseen exec-path
  /// signatures. Auto (the default) follows the PATHFUZZ_SELECTIVE
  /// environment knob (on unless set to "0"). Byte-identical campaign
  /// results either way — like VmMode, the knob only changes per-exec
  /// cost, and it is likewise excluded from the checkpoint fingerprint.
  vm::SelectiveMode Selective = vm::SelectiveMode::Auto;
};

/// Structured campaign failure, replacing in-band aborts: compile and
/// instrumentation errors (genuine or injected) and watchdog trips land
/// here instead of killing the process.
struct CampaignError {
  /// True when the campaign did not produce a (complete) result.
  bool Failed = false;
  /// Whether a retry may succeed (injected transient faults).
  bool Transient = false;
  /// True when the exec watchdog stopped a runaway campaign.
  bool Watchdog = false;
  /// Fault-injection site that triggered, when any (empty otherwise).
  std::string FaultSite;
  /// Human-readable diagnostic; for compile failures this preserves the
  /// frontend's full message.
  std::string Message;
};

/// Aggregated outcome of one campaign run (across culling rounds /
/// opportunistic phases where applicable).
struct CampaignResult {
  FuzzerKind Kind = FuzzerKind::Pcguard;
  uint64_t Execs = 0;
  /// Queue size at the end of the run (current instance for cull).
  uint64_t FinalQueueSize = 0;
  uint64_t TotalCrashes = 0;
  uint64_t TotalHangs = 0;
  /// Stack-hash-deduplicated crashes ("unique crashes").
  std::set<uint64_t> CrashHashes;
  /// Input-hash-deduplicated hangs across fuzzer instances.
  std::set<uint64_t> HangHashes;
  /// Ground-truth bug identities ("unique bugs").
  std::set<uint64_t> BugIds;
  /// Union of covered shadow edges, sorted ("afl-showmap" coverage).
  std::vector<uint32_t> EdgeSet;
  /// (execs, queue size) samples with cross-round offsets applied.
  std::vector<std::pair<uint64_t, uint64_t>> QueueGrowth;
  /// One representative crash per distinct stack hash.
  std::vector<fuzz::CrashRecord> UniqueCrashes;
  /// One representative hang per distinct input (Table V's overhead
  /// discussion references the step-limited tail).
  std::vector<fuzz::HangRecord> UniqueHangs;
  /// Telemetry trace (null when tracing was off). Deliberately excluded
  /// from serializeCampaignResult: the byte-identity oracle covers the
  /// campaign's *findings*, and the trace is exported through its own
  /// deterministic JSONL/CSV path instead.
  std::shared_ptr<telemetry::CampaignTrace> Trace;

  uint32_t edgesCovered() const {
    return static_cast<uint32_t>(EdgeSet.size());
  }
  uint64_t uniqueHangs() const { return HangHashes.size(); }
};

class SubjectBuild;

/// Compile, instrument and fuzz a subject under the given configuration.
/// Failures (compile errors, injected faults, watchdog trips) are
/// reported through *Err when provided; without an Err out-param a
/// failed campaign returns an empty result.
CampaignResult runCampaign(const Subject &S, const CampaignOptions &Opts,
                           CampaignError *Err = nullptr);

/// Same campaign, but on a pre-compiled shared build (see BuildCache.h).
/// Produces byte-identical results to the Subject overload for the same
/// options; the batch runner uses this to compile each subject once per
/// (feedback mode, placement, map size) instead of once per trial.
CampaignResult runCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                           CampaignError *Err = nullptr);

/// Resume a campaign from a checkpoint blob previously delivered to
/// CheckpointSink. Opts must match the original run's options (the
/// checkpoint carries a fingerprint and the resume fails on mismatch).
/// Contract: the returned result is byte-identical (per
/// serializeCampaignResult) to the uninterrupted run's.
CampaignResult resumeCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                              const std::vector<uint8_t> &Checkpoint,
                              CampaignError *Err = nullptr);
CampaignResult resumeCampaign(const Subject &S, const CampaignOptions &Opts,
                              const std::vector<uint8_t> &Checkpoint,
                              CampaignError *Err = nullptr);

/// Canonical byte serialization of a CampaignResult — the equality oracle
/// for the determinism and checkpoint/resume guarantees (two results are
/// "byte-identical" iff these blobs compare equal).
std::vector<uint8_t> serializeCampaignResult(const CampaignResult &R);

/// Inverse of serializeCampaignResult (the durable store persists final
/// results in this form). Returns false on malformed input, leaving R in
/// an unspecified state.
bool deserializeCampaignResult(const std::vector<uint8_t> &Blob,
                               CampaignResult &R);

/// Serialize the options fingerprint: every option the campaign schedule
/// depends on (kind, budget, seed, map size, cull rounds, input/step
/// limits, placement, sampling interval). Checkpoints and the durable
/// store's manifest both pin resumes to it; the robustness and engine
/// knobs (checkpoint cadence, watchdog, VmMode, Selective, StoreDir) are
/// deliberately excluded — they never affect results.
void writeOptionsFingerprint(ByteWriter &W, const CampaignOptions &Opts);

/// Parse a fingerprint back into Opts (only the pinned fields are
/// assigned; the rest keep their defaults). Returns false on malformed or
/// out-of-range input. The supervisor uses this to reconstruct runnable
/// options from a store manifest.
bool readOptionsFingerprint(ByteReader &Rd, CampaignOptions &Opts);

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_CAMPAIGN_H
