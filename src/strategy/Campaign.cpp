//===- Campaign.cpp - Fuzzer configurations and campaign drivers --------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Campaign.h"

#include "strategy/BuildCache.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

namespace pathfuzz {
namespace strategy {

const char *fuzzerKindName(FuzzerKind K) {
  switch (K) {
  case FuzzerKind::Pcguard:
    return "pcguard";
  case FuzzerKind::Path:
    return "path";
  case FuzzerKind::Cull:
    return "cull";
  case FuzzerKind::CullRandom:
    return "cull_r";
  case FuzzerKind::Opp:
    return "opp";
  case FuzzerKind::Afl:
    return "afl";
  case FuzzerKind::PathAfl:
    return "pathafl";
  }
  return "<bad-kind>";
}

namespace {

fuzz::FuzzerOptions fuzzerOptions(const CampaignOptions &Opts, uint64_t Seed,
                                  bool PathAflAssist) {
  fuzz::FuzzerOptions FO;
  FO.MapSizeLog2 = Opts.MapSizeLog2;
  FO.Seed = Seed;
  FO.Mut.MaxLen = Opts.MaxInputLen;
  FO.Exec.StepLimit = Opts.StepLimit;
  FO.PathAflAssist = PathAflAssist;
  FO.GrowthSampleInterval = Opts.GrowthSampleInterval;
  // The PathAFL comparator builds on plain AFL 2.52b, which has no
  // input-to-state stage; our afl/pathafl configs disable the cmp
  // dictionary accordingly.
  FO.UseCmpDict = !PathAflAssist;
  return FO;
}

/// Fold one fuzzer instance's findings into the campaign aggregate.
void accumulate(CampaignResult &R, const fuzz::Fuzzer &F,
                uint64_t ExecOffset) {
  R.Execs += F.stats().Execs;
  R.TotalCrashes += F.stats().Crashes;
  R.TotalHangs += F.stats().Hangs;
  for (const fuzz::CrashRecord &C : F.uniqueCrashes()) {
    if (R.CrashHashes.insert(C.StackHash).second)
      R.UniqueCrashes.push_back(C);
  }
  for (const fuzz::HangRecord &H : F.uniqueHangs()) {
    if (R.HangHashes.insert(H.InputHash).second)
      R.UniqueHangs.push_back(H);
  }
  for (uint64_t Bug : F.bugIds())
    R.BugIds.insert(Bug);

  std::vector<uint32_t> Edges = F.coveredEdgeList();
  std::vector<uint32_t> Merged;
  Merged.reserve(R.EdgeSet.size() + Edges.size());
  std::set_union(R.EdgeSet.begin(), R.EdgeSet.end(), Edges.begin(),
                 Edges.end(), std::back_inserter(Merged));
  R.EdgeSet = std::move(Merged);

  for (auto [Execs, QueueSize] : F.stats().QueueGrowth)
    R.QueueGrowth.push_back({ExecOffset + Execs, QueueSize});
}

CampaignResult runPlain(SubjectBuild &SB, const CampaignOptions &Opts,
                        instr::Feedback Mode, bool PathAflAssist) {
  const InstrumentedBuild &B = SB.instrumented(Mode, Opts);
  fuzz::Fuzzer F(B.Mod, B.Report, SB.shadow(),
                 fuzzerOptions(Opts, Opts.Seed, PathAflAssist));
  for (const fuzz::Input &Seed : SB.subject().Seeds)
    F.addSeed(Seed);
  F.run(Opts.ExecBudget);

  CampaignResult R;
  R.Kind = Opts.Kind;
  accumulate(R, F, 0);
  R.FinalQueueSize = F.corpus().size();
  return R;
}

CampaignResult runCull(SubjectBuild &SB, const CampaignOptions &Opts,
                       bool RandomCull) {
  const InstrumentedBuild &B = SB.instrumented(instr::Feedback::Path, Opts);

  CampaignResult R;
  R.Kind = Opts.Kind;

  uint32_t Rounds = std::max<uint32_t>(1, Opts.CullRounds);
  uint64_t PerRound = std::max<uint64_t>(1, Opts.ExecBudget / Rounds);
  std::vector<fuzz::Input> RoundSeeds = SB.subject().Seeds;
  std::vector<int64_t> CarriedDict;
  Rng CullRng(Opts.Seed ^ 0xc0ffee);
  uint64_t ExecOffset = 0;

  for (uint32_t Round = 0; Round < Rounds; ++Round) {
    // The last round gets whatever remains of the overall budget (the
    // paper's driver subtracts accumulated culling costs the same way).
    uint64_t Remaining =
        Opts.ExecBudget > ExecOffset ? Opts.ExecBudget - ExecOffset : 0;
    uint64_t Budget = (Round + 1 == Rounds) ? Remaining : PerRound;
    fuzz::Fuzzer F(B.Mod, B.Report, SB.shadow(),
                   fuzzerOptions(Opts, Opts.Seed + Round * 7919, false));
    // Carry the cmp dictionary across instances (AFL++ re-mines cmplog
    // from the seed queue on restart).
    F.seedDict(CarriedDict);
    for (const fuzz::Input &Seed : RoundSeeds)
      F.addSeed(Seed);
    F.run(Budget);
    accumulate(R, F, ExecOffset);
    ExecOffset += F.stats().Execs;
    R.FinalQueueSize = F.corpus().size();
    CarriedDict = F.cmpDict();

    if (Round + 1 == Rounds)
      break;

    // Cull: reduce the queue for the next round. The retained seeds get
    // re-executed by the next instance's addSeed() calls, so the culling
    // cost is charged against the overall budget, as the paper's driver
    // subtracts culling time from the final round.
    const fuzz::Corpus &Q = F.corpus();
    RoundSeeds.clear();
    if (!RandomCull) {
      for (size_t Index : Q.edgePreservingSubset())
        RoundSeeds.push_back(Q[Index].Data);
    } else {
      // Appendix D: retain a random 2-16% of the queue.
      uint64_t KeepPermille = 20 + CullRng.below(141); // 2.0% .. 16.0%
      size_t Keep = std::max<size_t>(
          1, static_cast<size_t>(Q.size() * KeepPermille / 1000));
      std::vector<size_t> All(Q.size());
      for (size_t I = 0; I < All.size(); ++I)
        All[I] = I;
      for (size_t I = 0; I < Keep && I < All.size(); ++I) {
        size_t J = I + CullRng.index(All.size() - I);
        std::swap(All[I], All[J]);
        RoundSeeds.push_back(Q[All[I]].Data);
      }
    }
    if (RoundSeeds.empty())
      RoundSeeds = SB.subject().Seeds;
  }
  return R;
}

CampaignResult runOpp(SubjectBuild &SB, const CampaignOptions &Opts) {
  // Phase 1: edge-coverage exploration for half the budget.
  const InstrumentedBuild &EdgeBuild =
      SB.instrumented(instr::Feedback::EdgePrecise, Opts);
  fuzz::Fuzzer Phase1(EdgeBuild.Mod, EdgeBuild.Report, SB.shadow(),
                      fuzzerOptions(Opts, Opts.Seed ^ 0x0bb, false));
  for (const fuzz::Input &Seed : SB.subject().Seeds)
    Phase1.addSeed(Seed);
  uint64_t Phase1Budget = Opts.ExecBudget / 2;
  Phase1.run(Phase1Budget);

  // Queue hand-off: crashing inputs were never queued; trim to an
  // edge-coverage-preserving subset (the paper's pre-processing).
  std::vector<fuzz::Input> Handoff;
  const fuzz::Corpus &Q1 = Phase1.corpus();
  for (size_t Index : Q1.edgePreservingSubset())
    Handoff.push_back(Q1[Index].Data);
  if (Handoff.empty())
    Handoff = SB.subject().Seeds;

  // Phase 2: path-aware fuzzing on the inherited queue. Only this phase's
  // findings count as opp's (the paper does not credit phase-1 bugs).
  const InstrumentedBuild &PathBuild =
      SB.instrumented(instr::Feedback::Path, Opts);
  fuzz::Fuzzer Phase2(PathBuild.Mod, PathBuild.Report, SB.shadow(),
                      fuzzerOptions(Opts, Opts.Seed ^ 0x0bb1e5, false));
  Phase2.seedDict(Phase1.cmpDict()); // cmplog re-mining on the handoff
  for (const fuzz::Input &Seed : Handoff)
    Phase2.addSeed(Seed);
  Phase2.run(Opts.ExecBudget - Phase1Budget);

  CampaignResult R;
  R.Kind = Opts.Kind;
  accumulate(R, Phase2, Phase1Budget);
  R.FinalQueueSize = Phase2.corpus().size();

  // Edge coverage additionally includes the opportunistic phase-1
  // exploration, as in Table IV's discussion.
  std::vector<uint32_t> Phase1Edges = Phase1.coveredEdgeList();
  std::vector<uint32_t> Merged;
  std::set_union(R.EdgeSet.begin(), R.EdgeSet.end(), Phase1Edges.begin(),
                 Phase1Edges.end(), std::back_inserter(Merged));
  R.EdgeSet = std::move(Merged);
  R.Execs += Phase1.stats().Execs;
  return R;
}

} // namespace

CampaignResult runCampaign(const Subject &S, const CampaignOptions &Opts) {
  SubjectBuild B(S);
  return runCampaign(B, Opts);
}

CampaignResult runCampaign(SubjectBuild &B, const CampaignOptions &Opts) {
  switch (Opts.Kind) {
  case FuzzerKind::Pcguard:
    return runPlain(B, Opts, instr::Feedback::EdgePrecise, false);
  case FuzzerKind::Path:
    return runPlain(B, Opts, instr::Feedback::Path, false);
  case FuzzerKind::Cull:
    return runCull(B, Opts, /*RandomCull=*/false);
  case FuzzerKind::CullRandom:
    return runCull(B, Opts, /*RandomCull=*/true);
  case FuzzerKind::Opp:
    return runOpp(B, Opts);
  case FuzzerKind::Afl:
    return runPlain(B, Opts, instr::Feedback::EdgeClassic, false);
  case FuzzerKind::PathAfl:
    return runPlain(B, Opts, instr::Feedback::EdgeClassic, true);
  }
  return {};
}

} // namespace strategy
} // namespace pathfuzz
