//===- Campaign.cpp - Fuzzer configurations and campaign drivers --------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Campaign.h"

#include "fuzz/Snapshot.h"
#include "strategy/BuildCache.h"
#include "strategy/Store.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

namespace pathfuzz {
namespace strategy {

const char *fuzzerKindName(FuzzerKind K) {
  switch (K) {
  case FuzzerKind::Pcguard:
    return "pcguard";
  case FuzzerKind::Path:
    return "path";
  case FuzzerKind::Cull:
    return "cull";
  case FuzzerKind::CullRandom:
    return "cull_r";
  case FuzzerKind::Opp:
    return "opp";
  case FuzzerKind::Afl:
    return "afl";
  case FuzzerKind::PathAfl:
    return "pathafl";
  }
  return "<bad-kind>";
}

namespace {

using fuzz::ByteReader;
using fuzz::ByteWriter;

fuzz::FuzzerOptions fuzzerOptions(const InstrumentedBuild &B,
                                  const CampaignOptions &Opts, uint64_t Seed,
                                  bool PathAflAssist) {
  fuzz::FuzzerOptions FO;
  FO.MapSizeLog2 = Opts.MapSizeLog2;
  FO.Seed = Seed;
  FO.Mut.MaxLen = Opts.MaxInputLen;
  FO.Exec.StepLimit = Opts.StepLimit;
  FO.PathAflAssist = PathAflAssist;
  FO.GrowthSampleInterval = Opts.GrowthSampleInterval;
  // The PathAFL comparator builds on plain AFL 2.52b, which has no
  // input-to-state stage; our afl/pathafl configs disable the cmp
  // dictionary accordingly.
  FO.UseCmpDict = !PathAflAssist;
  FO.Trace = Opts.Trace;
  // VM fast path: hand every instance the build's shared pre-decoded
  // image. Gated on the mode (not just image presence) so a forced
  // Interpreter campaign ignores an image a previous fast-path campaign
  // left in the shared cache slot.
  if (vm::fastPathEnabled(Opts.VmMode))
    FO.Image = B.Image.get();
  // Selective (two-tier) execution: byte-identical results either way,
  // so the knob is resolved per campaign exactly like the engine choice.
  // The cheap image is only present when the build cache ran under a
  // selective + fast-path resolution; a null CheapImage falls back to the
  // interpreter cheap tier inside the fuzzer.
  if (vm::selectiveEnabled(Opts.Selective)) {
    FO.Selective = true;
    FO.CheapImage = B.CheapImage.get();
  }
  return FO;
}

/// Campaign trace container for this run, or null when tracing is off.
/// Resume paths pass the checkpoint-carried trace through so completed
/// instances survive the restart.
std::shared_ptr<telemetry::CampaignTrace>
makeCampaignTrace(const SubjectBuild &SB, const CampaignOptions &Opts,
                  std::shared_ptr<telemetry::CampaignTrace> Carried) {
  if (!(telemetry::Compiled && Opts.Trace.Enabled))
    return nullptr;
  if (Carried)
    return Carried;
  auto CT = std::make_shared<telemetry::CampaignTrace>();
  CT->Subject = SB.subject().Name;
  CT->Fuzzer = fuzzerKindName(Opts.Kind);
  CT->Seed = Opts.Seed;
  return CT;
}

/// Record a campaign-level driver event (cull verdicts, phase starts).
/// Exec is campaign-cumulative.
void campaignEvent(telemetry::CampaignTrace *CT, telemetry::EventKind K,
                   uint64_t Exec, uint32_t A32 = 0, uint64_t A64 = 0,
                   uint8_t A8 = 0) {
  if (!CT)
    return;
  telemetry::Event E;
  E.Exec = Exec;
  E.Kind = K;
  E.Arg32 = A32;
  E.Arg64 = A64;
  E.Arg8 = A8;
  CT->CampaignEvents.push_back(E);
}

/// Fold one fuzzer instance's findings into the campaign aggregate.
void accumulate(CampaignResult &R, const fuzz::Fuzzer &F,
                uint64_t ExecOffset) {
  R.Execs += F.stats().Execs;
  R.TotalCrashes += F.stats().Crashes;
  R.TotalHangs += F.stats().Hangs;
  for (const fuzz::CrashRecord &C : F.uniqueCrashes()) {
    if (R.CrashHashes.insert(C.StackHash).second)
      R.UniqueCrashes.push_back(C);
  }
  for (const fuzz::HangRecord &H : F.uniqueHangs()) {
    if (R.HangHashes.insert(H.InputHash).second)
      R.UniqueHangs.push_back(H);
  }
  for (uint64_t Bug : F.bugIds())
    R.BugIds.insert(Bug);

  std::vector<uint32_t> Edges = F.coveredEdgeList();
  std::vector<uint32_t> Merged;
  Merged.reserve(R.EdgeSet.size() + Edges.size());
  std::set_union(R.EdgeSet.begin(), R.EdgeSet.end(), Edges.begin(),
                 Edges.end(), std::back_inserter(Merged));
  R.EdgeSet = std::move(Merged);

  for (auto [Execs, QueueSize] : F.stats().QueueGrowth)
    R.QueueGrowth.push_back({ExecOffset + Execs, QueueSize});
}

//===----------------------------------------------------------------------===//
// Error plumbing
//===----------------------------------------------------------------------===//

void setError(CampaignError *Err, std::string Message, std::string FaultSite,
              bool Transient, bool Watchdog = false) {
  if (!Err)
    return;
  Err->Failed = true;
  Err->Transient = Transient;
  Err->Watchdog = Watchdog;
  Err->FaultSite = std::move(FaultSite);
  Err->Message = std::move(Message);
}

/// tryInstrumented with the diagnostic routed into CampaignError.
const InstrumentedBuild *instrumentOrError(SubjectBuild &SB,
                                           instr::Feedback Mode,
                                           const CampaignOptions &Opts,
                                           CampaignError *Err) {
  std::string Diag;
  const InstrumentedBuild *B = SB.tryInstrumented(Mode, Opts, &Diag);
  if (!B)
    setError(Err, Diag, "strategy.instrument",
             fault::isTransient("strategy.instrument"));
  return B;
}

//===----------------------------------------------------------------------===//
// CampaignResult serialization — the byte-identity oracle and the carrier
// for partial results inside multi-round checkpoints.
//===----------------------------------------------------------------------===//

void writeCampaignResult(ByteWriter &W, const CampaignResult &R) {
  W.u8(static_cast<uint8_t>(R.Kind));
  W.u64(R.Execs);
  W.u64(R.FinalQueueSize);
  W.u64(R.TotalCrashes);
  W.u64(R.TotalHangs);
  // std::set iterates sorted, so these vectors are canonical.
  W.vecU64({R.CrashHashes.begin(), R.CrashHashes.end()});
  W.vecU64({R.HangHashes.begin(), R.HangHashes.end()});
  W.vecU64({R.BugIds.begin(), R.BugIds.end()});
  W.vecU32(R.EdgeSet);
  W.u64(R.QueueGrowth.size());
  for (auto [Execs, QueueSize] : R.QueueGrowth) {
    W.u64(Execs);
    W.u64(QueueSize);
  }
  W.u64(R.UniqueCrashes.size());
  for (const fuzz::CrashRecord &C : R.UniqueCrashes)
    fuzz::writeCrashRecord(W, C);
  W.u64(R.UniqueHangs.size());
  for (const fuzz::HangRecord &H : R.UniqueHangs)
    fuzz::writeHangRecord(W, H);
}

CampaignResult readCampaignResult(ByteReader &Rd) {
  CampaignResult R;
  R.Kind = static_cast<FuzzerKind>(Rd.u8());
  R.Execs = Rd.u64();
  R.FinalQueueSize = Rd.u64();
  R.TotalCrashes = Rd.u64();
  R.TotalHangs = Rd.u64();
  std::vector<uint64_t> Crash = Rd.vecU64();
  R.CrashHashes.insert(Crash.begin(), Crash.end());
  std::vector<uint64_t> Hang = Rd.vecU64();
  R.HangHashes.insert(Hang.begin(), Hang.end());
  std::vector<uint64_t> Bug = Rd.vecU64();
  R.BugIds.insert(Bug.begin(), Bug.end());
  R.EdgeSet = Rd.vecU32();
  uint64_t NGrowth = Rd.u64();
  if (NGrowth > Rd.remaining() / 16) {
    Rd.invalidate();
    NGrowth = 0;
  }
  R.QueueGrowth.reserve(NGrowth);
  for (uint64_t I = 0; I < NGrowth; ++I) {
    uint64_t Execs = Rd.u64();
    uint64_t QueueSize = Rd.u64();
    R.QueueGrowth.push_back({Execs, QueueSize});
  }
  uint64_t NCrashRecs = Rd.u64();
  for (uint64_t I = 0; I < NCrashRecs && Rd.ok(); ++I)
    R.UniqueCrashes.push_back(fuzz::readCrashRecord(Rd));
  uint64_t NHangRecs = Rd.u64();
  for (uint64_t I = 0; I < NHangRecs && Rd.ok(); ++I)
    R.UniqueHangs.push_back(fuzz::readHangRecord(Rd));
  return R;
}

//===----------------------------------------------------------------------===//
// Checkpoint envelope
//===----------------------------------------------------------------------===//
//
// A campaign checkpoint is sealSnapshot() over:
//
//   u8 driver tag (0 plain / 1 cull / 2 opp)   u8 FuzzerKind
//   options fingerprint (every option the schedule depends on)
//   driver-specific state, ending in a nested Fuzzer::snapshot() blob
//
// The fingerprint pins the resume to the exact original configuration;
// the robustness knobs themselves (checkpoint interval, watchdog) are
// deliberately excluded — they never affect results, so a run may be
// resumed under a different checkpoint cadence.

constexpr uint8_t TagPlain = 0;
constexpr uint8_t TagCull = 1;
constexpr uint8_t TagOpp = 2;

uint8_t driverTag(FuzzerKind K) {
  switch (K) {
  case FuzzerKind::Cull:
  case FuzzerKind::CullRandom:
    return TagCull;
  case FuzzerKind::Opp:
    return TagOpp;
  default:
    return TagPlain;
  }
}

// The header is the public writeOptionsFingerprint (Campaign.h): the
// durable store's manifest pins the same fields, so a checkpoint that
// matches the manifest necessarily matches the resume options.

bool readCheckpointHeader(ByteReader &Rd, const CampaignOptions &Opts) {
  bool Ok = Rd.u8() == driverTag(Opts.Kind);
  Ok &= Rd.u8() == static_cast<uint8_t>(Opts.Kind);
  Ok &= Rd.u64() == Opts.ExecBudget;
  Ok &= Rd.u64() == Opts.Seed;
  Ok &= Rd.u32() == Opts.MapSizeLog2;
  Ok &= Rd.u32() == Opts.CullRounds;
  Ok &= Rd.u64() == Opts.MaxInputLen;
  Ok &= Rd.u64() == Opts.StepLimit;
  Ok &= Rd.u8() == static_cast<uint8_t>(Opts.Placement);
  Ok &= Rd.u32() == Opts.GrowthSampleInterval;
  return Ok && Rd.ok();
}

//===----------------------------------------------------------------------===//
// Drivers
//===----------------------------------------------------------------------===//

/// Parsed driver state for a resume; drivers start mid-stream when given
/// one of these instead of from scratch.
struct PlainResume {
  std::vector<uint8_t> FuzzBlob;
};

struct CullResume {
  uint32_t Round = 0;
  uint64_t ExecOffset = 0;
  CampaignResult Partial;
  uint64_t RngState[4] = {0, 0, 0, 0};
  /// Telemetry collected for completed rounds (null when untraced).
  std::shared_ptr<telemetry::CampaignTrace> Trace;
  std::vector<uint8_t> FuzzBlob;
};

struct OppResume {
  uint8_t Phase = 1;
  uint64_t Phase1Execs = 0;               // phase 2 only
  std::vector<uint32_t> Phase1Edges;      // phase 2 only
  /// Phase-1 telemetry (phase 2 only; null when untraced).
  std::shared_ptr<telemetry::CampaignTrace> Trace;
  std::vector<uint8_t> FuzzBlob;
};

CampaignResult runPlain(SubjectBuild &SB, const CampaignOptions &Opts,
                        instr::Feedback Mode, bool PathAflAssist,
                        CampaignError *Err, const PlainResume *Resume) {
  const InstrumentedBuild *B = instrumentOrError(SB, Mode, Opts, Err);
  if (!B)
    return {};

  fuzz::FuzzerOptions FO = fuzzerOptions(*B, Opts, Opts.Seed, PathAflAssist);
  FO.CheckpointInterval = Opts.CheckpointInterval;
  FO.ExecHardLimit = Opts.WatchdogExecLimit;
  if (Opts.CheckpointSink && Opts.CheckpointInterval)
    FO.OnCheckpoint = [&Opts](const fuzz::Fuzzer &F) {
      ByteWriter W;
      writeOptionsFingerprint(W, Opts);
      W.blob(F.snapshot());
      Opts.CheckpointSink(fuzz::sealSnapshot(W.take()));
    };

  fuzz::Fuzzer F(B->Mod, B->Report, SB.shadow(), FO);
  std::shared_ptr<telemetry::CampaignTrace> CT =
      makeCampaignTrace(SB, Opts, nullptr);
  // A single-instance campaign always records its (one) phase start, even
  // on resume: the event's position is fixed at exec 0, so resumed and
  // uninterrupted traces agree.
  campaignEvent(CT.get(), telemetry::EventKind::PhaseStarted, 0);
  if (Resume) {
    if (!F.restore(Resume->FuzzBlob)) {
      setError(Err, "checkpoint restore failed (incompatible state)", "",
               false);
      return {};
    }
  } else {
    for (const fuzz::Input &Seed : SB.subject().Seeds)
      F.addSeed(Seed);
  }
  F.run(Opts.ExecBudget);
  if (F.hardLimitHit()) {
    setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
    return {};
  }

  CampaignResult R;
  R.Kind = Opts.Kind;
  accumulate(R, F, 0);
  R.FinalQueueSize = F.corpus().size();
  if (CT && F.trace())
    telemetry::collectInstance(*CT, "main", 0, *F.trace());
  R.Trace = CT;
  return R;
}

CampaignResult runCull(SubjectBuild &SB, const CampaignOptions &Opts,
                       bool RandomCull, CampaignError *Err,
                       const CullResume *Resume) {
  const InstrumentedBuild *B =
      instrumentOrError(SB, instr::Feedback::Path, Opts, Err);
  if (!B)
    return {};

  CampaignResult R;
  R.Kind = Opts.Kind;

  uint32_t Rounds = std::max<uint32_t>(1, Opts.CullRounds);
  uint64_t PerRound = std::max<uint64_t>(1, Opts.ExecBudget / Rounds);
  std::vector<fuzz::Input> RoundSeeds = SB.subject().Seeds;
  std::vector<int64_t> CarriedDict;
  Rng CullRng(Opts.Seed ^ 0xc0ffee);
  uint64_t ExecOffset = 0;
  uint32_t StartRound = 0;
  if (Resume) {
    // Everything a mid-round checkpoint depends on: completed rounds'
    // aggregate, the cull RNG stream position, and the live instance (in
    // FuzzBlob). RoundSeeds and the carried dictionary are only consumed
    // when *starting* an instance, which a resume never does — the
    // restored instance already absorbed them.
    R = Resume->Partial;
    StartRound = Resume->Round;
    ExecOffset = Resume->ExecOffset;
    CullRng.loadState(Resume->RngState);
  }
  std::shared_ptr<telemetry::CampaignTrace> CT =
      makeCampaignTrace(SB, Opts, Resume ? Resume->Trace : nullptr);

  for (uint32_t Round = StartRound; Round < Rounds; ++Round) {
    // The last round gets whatever remains of the overall budget (the
    // paper's driver subtracts accumulated culling costs the same way).
    uint64_t Remaining =
        Opts.ExecBudget > ExecOffset ? Opts.ExecBudget - ExecOffset : 0;
    uint64_t Budget = (Round + 1 == Rounds) ? Remaining : PerRound;

    fuzz::FuzzerOptions FO =
        fuzzerOptions(*B, Opts, Opts.Seed + Round * 7919, false);
    FO.CheckpointInterval = Opts.CheckpointInterval;
    FO.CheckpointBase = ExecOffset;
    if (Opts.WatchdogExecLimit) {
      if (ExecOffset >= Opts.WatchdogExecLimit) {
        setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
        return {};
      }
      FO.ExecHardLimit = Opts.WatchdogExecLimit - ExecOffset;
    }
    if (Opts.CheckpointSink && Opts.CheckpointInterval)
      FO.OnCheckpoint = [&Opts, &R, &CullRng, CT, Round,
                         ExecOffset](const fuzz::Fuzzer &F) {
        ByteWriter W;
        writeOptionsFingerprint(W, Opts);
        W.u32(Round);
        W.u64(ExecOffset);
        writeCampaignResult(W, R);
        uint64_t RS[4];
        CullRng.saveState(RS);
        for (uint64_t S : RS)
          W.u64(S);
        // Completed rounds' telemetry; the live round's recorder rides
        // inside the fuzzer snapshot below.
        telemetry::writeCampaignTrace(W, CT.get());
        W.blob(F.snapshot());
        Opts.CheckpointSink(fuzz::sealSnapshot(W.take()));
      };

    fuzz::Fuzzer F(B->Mod, B->Report, SB.shadow(), FO);
    if (Resume && Round == StartRound) {
      if (!F.restore(Resume->FuzzBlob)) {
        setError(Err, "checkpoint restore failed (incompatible state)", "",
                 false);
        return {};
      }
    } else {
      // Fresh round start: the carried checkpoint trace (if any) already
      // holds this event for the resumed round.
      campaignEvent(CT.get(), telemetry::EventKind::PhaseStarted, ExecOffset,
                    Round);
      // Carry the cmp dictionary across instances (AFL++ re-mines cmplog
      // from the seed queue on restart).
      F.seedDict(CarriedDict);
      for (const fuzz::Input &Seed : RoundSeeds)
        F.addSeed(Seed);
    }
    F.run(Budget);
    if (F.hardLimitHit()) {
      setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
      return {};
    }
    accumulate(R, F, ExecOffset);
    if (CT && F.trace())
      telemetry::collectInstance(*CT, "round" + std::to_string(Round),
                                 ExecOffset, *F.trace());
    ExecOffset += F.stats().Execs;
    R.FinalQueueSize = F.corpus().size();
    CarriedDict = F.cmpDict();

    if (Round + 1 == Rounds)
      break;

    // Cull: reduce the queue for the next round. The retained seeds get
    // re-executed by the next instance's addSeed() calls, so the culling
    // cost is charged against the overall budget, as the paper's driver
    // subtracts culling time from the final round.
    const fuzz::Corpus &Q = F.corpus();
    RoundSeeds.clear();
    if (!RandomCull) {
      for (size_t Index : Q.edgePreservingSubset())
        RoundSeeds.push_back(Q[Index].Data);
    } else {
      // Appendix D: retain a random 2-16% of the queue.
      uint64_t KeepPermille = 20 + CullRng.below(141); // 2.0% .. 16.0%
      size_t Keep = std::max<size_t>(
          1, static_cast<size_t>(Q.size() * KeepPermille / 1000));
      std::vector<size_t> All(Q.size());
      for (size_t I = 0; I < All.size(); ++I)
        All[I] = I;
      for (size_t I = 0; I < Keep && I < All.size(); ++I) {
        size_t J = I + CullRng.index(All.size() - I);
        std::swap(All[I], All[J]);
        RoundSeeds.push_back(Q[All[I]].Data);
      }
    }
    if (RoundSeeds.empty())
      RoundSeeds = SB.subject().Seeds;
    campaignEvent(CT.get(), telemetry::EventKind::SeedCulled, ExecOffset,
                  static_cast<uint32_t>(RoundSeeds.size()), Q.size());
  }
  R.Trace = CT;
  return R;
}

CampaignResult runOpp(SubjectBuild &SB, const CampaignOptions &Opts,
                      CampaignError *Err, const OppResume *Resume) {
  uint64_t Phase1Budget = Opts.ExecBudget / 2;
  uint64_t Phase1Execs = 0;
  std::vector<uint32_t> Phase1Edges;
  std::vector<fuzz::Input> Handoff;
  std::vector<int64_t> HandoffDict;
  std::shared_ptr<telemetry::CampaignTrace> CT =
      makeCampaignTrace(SB, Opts, Resume ? Resume->Trace : nullptr);

  if (!Resume || Resume->Phase == 1) {
    // Phase-1 checkpoints don't carry the campaign trace (nothing is
    // collected yet), so this event is re-recorded on a phase-1 resume —
    // its position is fixed at exec 0 either way.
    campaignEvent(CT.get(), telemetry::EventKind::PhaseStarted, 0, 0, 0,
                  /*A8=*/1);
    // Phase 1: edge-coverage exploration for half the budget.
    const InstrumentedBuild *EdgeBuild =
        instrumentOrError(SB, instr::Feedback::EdgePrecise, Opts, Err);
    if (!EdgeBuild)
      return {};
    fuzz::FuzzerOptions FO =
        fuzzerOptions(*EdgeBuild, Opts, Opts.Seed ^ 0x0bb, false);
    FO.CheckpointInterval = Opts.CheckpointInterval;
    FO.ExecHardLimit = Opts.WatchdogExecLimit;
    if (Opts.CheckpointSink && Opts.CheckpointInterval)
      FO.OnCheckpoint = [&Opts](const fuzz::Fuzzer &F) {
        ByteWriter W;
        writeOptionsFingerprint(W, Opts);
        W.u8(1); // phase
        W.blob(F.snapshot());
        Opts.CheckpointSink(fuzz::sealSnapshot(W.take()));
      };
    fuzz::Fuzzer Phase1(EdgeBuild->Mod, EdgeBuild->Report, SB.shadow(), FO);
    if (Resume) {
      if (!Phase1.restore(Resume->FuzzBlob)) {
        setError(Err, "checkpoint restore failed (incompatible state)", "",
                 false);
        return {};
      }
    } else {
      for (const fuzz::Input &Seed : SB.subject().Seeds)
        Phase1.addSeed(Seed);
    }
    Phase1.run(Phase1Budget);
    if (Phase1.hardLimitHit()) {
      setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
      return {};
    }

    // Queue hand-off: crashing inputs were never queued; trim to an
    // edge-coverage-preserving subset (the paper's pre-processing).
    const fuzz::Corpus &Q1 = Phase1.corpus();
    for (size_t Index : Q1.edgePreservingSubset())
      Handoff.push_back(Q1[Index].Data);
    if (Handoff.empty())
      Handoff = SB.subject().Seeds;
    HandoffDict = Phase1.cmpDict();
    Phase1Execs = Phase1.stats().Execs;
    Phase1Edges = Phase1.coveredEdgeList();
    if (CT && Phase1.trace())
      telemetry::collectInstance(*CT, "phase1", 0, *Phase1.trace());
    campaignEvent(CT.get(), telemetry::EventKind::SeedCulled, Phase1Execs,
                  static_cast<uint32_t>(Handoff.size()), Q1.size());
  } else {
    Phase1Execs = Resume->Phase1Execs;
    Phase1Edges = Resume->Phase1Edges;
  }

  // Phase 2: path-aware fuzzing on the inherited queue. Only this phase's
  // findings count as opp's (the paper does not credit phase-1 bugs).
  const InstrumentedBuild *PathBuild =
      instrumentOrError(SB, instr::Feedback::Path, Opts, Err);
  if (!PathBuild)
    return {};
  fuzz::FuzzerOptions FO2 =
      fuzzerOptions(*PathBuild, Opts, Opts.Seed ^ 0x0bb1e5, false);
  FO2.CheckpointInterval = Opts.CheckpointInterval;
  FO2.CheckpointBase = Phase1Execs;
  if (Opts.WatchdogExecLimit) {
    if (Phase1Execs >= Opts.WatchdogExecLimit) {
      setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
      return {};
    }
    FO2.ExecHardLimit = Opts.WatchdogExecLimit - Phase1Execs;
  }
  if (Opts.CheckpointSink && Opts.CheckpointInterval)
    FO2.OnCheckpoint = [&Opts, Phase1Execs, &Phase1Edges,
                        CT](const fuzz::Fuzzer &F) {
      ByteWriter W;
      writeOptionsFingerprint(W, Opts);
      W.u8(2); // phase
      W.u64(Phase1Execs);
      W.vecU32(Phase1Edges);
      // Phase-1 telemetry; the live phase-2 recorder rides inside the
      // fuzzer snapshot below.
      telemetry::writeCampaignTrace(W, CT.get());
      W.blob(F.snapshot());
      Opts.CheckpointSink(fuzz::sealSnapshot(W.take()));
    };
  if (!(Resume && Resume->Phase == 2))
    campaignEvent(CT.get(), telemetry::EventKind::PhaseStarted, Phase1Execs, 0,
                  0, /*A8=*/2);
  fuzz::Fuzzer Phase2(PathBuild->Mod, PathBuild->Report, SB.shadow(), FO2);
  if (Resume && Resume->Phase == 2) {
    if (!Phase2.restore(Resume->FuzzBlob)) {
      setError(Err, "checkpoint restore failed (incompatible state)", "",
               false);
      return {};
    }
  } else {
    Phase2.seedDict(HandoffDict); // cmplog re-mining on the handoff
    for (const fuzz::Input &Seed : Handoff)
      Phase2.addSeed(Seed);
  }
  Phase2.run(Opts.ExecBudget - Phase1Budget);
  if (Phase2.hardLimitHit()) {
    setError(Err, "exec watchdog tripped", "", false, /*Watchdog=*/true);
    return {};
  }

  CampaignResult R;
  R.Kind = Opts.Kind;
  accumulate(R, Phase2, Phase1Budget);
  R.FinalQueueSize = Phase2.corpus().size();
  if (CT && Phase2.trace())
    telemetry::collectInstance(*CT, "phase2", Phase1Execs, *Phase2.trace());
  R.Trace = CT;

  // Edge coverage additionally includes the opportunistic phase-1
  // exploration, as in Table IV's discussion.
  std::vector<uint32_t> Merged;
  std::set_union(R.EdgeSet.begin(), R.EdgeSet.end(), Phase1Edges.begin(),
                 Phase1Edges.end(), std::back_inserter(Merged));
  R.EdgeSet = std::move(Merged);
  R.Execs += Phase1Execs;
  return R;
}

CampaignResult dispatch(SubjectBuild &B, const CampaignOptions &Opts,
                        CampaignError *Err, const PlainResume *RPlain,
                        const CullResume *RCull, const OppResume *ROpp) {
  if (!B.ok()) {
    setError(Err, B.error(), B.faultSite(), B.transientError());
    return {};
  }
  switch (Opts.Kind) {
  case FuzzerKind::Pcguard:
    return runPlain(B, Opts, instr::Feedback::EdgePrecise, false, Err, RPlain);
  case FuzzerKind::Path:
    return runPlain(B, Opts, instr::Feedback::Path, false, Err, RPlain);
  case FuzzerKind::Cull:
    return runCull(B, Opts, /*RandomCull=*/false, Err, RCull);
  case FuzzerKind::CullRandom:
    return runCull(B, Opts, /*RandomCull=*/true, Err, RCull);
  case FuzzerKind::Opp:
    return runOpp(B, Opts, Err, ROpp);
  case FuzzerKind::Afl:
    return runPlain(B, Opts, instr::Feedback::EdgeClassic, false, Err, RPlain);
  case FuzzerKind::PathAfl:
    return runPlain(B, Opts, instr::Feedback::EdgeClassic, true, Err, RPlain);
  }
  return {};
}

} // namespace

std::vector<uint8_t> serializeCampaignResult(const CampaignResult &R) {
  ByteWriter W;
  writeCampaignResult(W, R);
  return W.take();
}

bool deserializeCampaignResult(const std::vector<uint8_t> &Blob,
                               CampaignResult &R) {
  ByteReader Rd(Blob);
  R = readCampaignResult(Rd);
  return Rd.done();
}

void writeOptionsFingerprint(ByteWriter &W, const CampaignOptions &Opts) {
  W.u8(driverTag(Opts.Kind));
  W.u8(static_cast<uint8_t>(Opts.Kind));
  W.u64(Opts.ExecBudget);
  W.u64(Opts.Seed);
  W.u32(Opts.MapSizeLog2);
  W.u32(Opts.CullRounds);
  W.u64(Opts.MaxInputLen);
  W.u64(Opts.StepLimit);
  W.u8(static_cast<uint8_t>(Opts.Placement));
  W.u32(Opts.GrowthSampleInterval);
}

bool readOptionsFingerprint(ByteReader &Rd, CampaignOptions &Opts) {
  uint8_t Tag = Rd.u8();
  uint8_t Kind = Rd.u8();
  if (Kind > static_cast<uint8_t>(FuzzerKind::PathAfl))
    return false;
  Opts.Kind = static_cast<FuzzerKind>(Kind);
  if (Tag != driverTag(Opts.Kind))
    return false;
  Opts.ExecBudget = Rd.u64();
  Opts.Seed = Rd.u64();
  Opts.MapSizeLog2 = Rd.u32();
  Opts.CullRounds = Rd.u32();
  Opts.MaxInputLen = Rd.u64();
  Opts.StepLimit = Rd.u64();
  uint8_t Placement = Rd.u8();
  if (Placement > static_cast<uint8_t>(bl::PlacementMode::SpanningTree))
    return false;
  Opts.Placement = static_cast<bl::PlacementMode>(Placement);
  Opts.GrowthSampleInterval = Rd.u32();
  return Rd.ok();
}

CampaignResult runCampaign(const Subject &S, const CampaignOptions &Opts,
                           CampaignError *Err) {
  SubjectBuild B(S);
  return runCampaign(B, Opts, Err);
}

CampaignResult runCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                           CampaignError *Err) {
  // Durable campaigns detour through the store layer, which re-enters
  // here with StoreDir cleared once recovery is resolved.
  if (!Opts.StoreDir.empty())
    return runStoredCampaign(B, Opts, Err);
  return dispatch(B, Opts, Err, nullptr, nullptr, nullptr);
}

CampaignResult resumeCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                              const std::vector<uint8_t> &Checkpoint,
                              CampaignError *Err) {
  auto Fail = [&](const char *Msg) {
    setError(Err, Msg, "", false);
    return CampaignResult{};
  };
  if (!B.ok()) {
    setError(Err, B.error(), B.faultSite(), B.transientError());
    return {};
  }
  std::vector<uint8_t> Payload;
  if (!fuzz::openSnapshot(Checkpoint, Payload))
    return Fail("corrupt or truncated checkpoint");
  ByteReader Rd(Payload);
  if (!readCheckpointHeader(Rd, Opts))
    return Fail("checkpoint does not match campaign options");

  switch (driverTag(Opts.Kind)) {
  case TagPlain: {
    PlainResume PR;
    PR.FuzzBlob = Rd.blob();
    if (!Rd.done())
      return Fail("malformed checkpoint payload");
    return dispatch(B, Opts, Err, &PR, nullptr, nullptr);
  }
  case TagCull: {
    CullResume CR;
    CR.Round = Rd.u32();
    CR.ExecOffset = Rd.u64();
    CR.Partial = readCampaignResult(Rd);
    for (uint64_t &S : CR.RngState)
      S = Rd.u64();
    CR.Trace = telemetry::readCampaignTrace(Rd);
    CR.FuzzBlob = Rd.blob();
    if (!Rd.done() || CR.Round >= std::max<uint32_t>(1, Opts.CullRounds))
      return Fail("malformed checkpoint payload");
    return dispatch(B, Opts, Err, nullptr, &CR, nullptr);
  }
  case TagOpp: {
    OppResume OR;
    OR.Phase = Rd.u8();
    if (OR.Phase == 2) {
      OR.Phase1Execs = Rd.u64();
      OR.Phase1Edges = Rd.vecU32();
      OR.Trace = telemetry::readCampaignTrace(Rd);
    } else if (OR.Phase != 1) {
      return Fail("malformed checkpoint payload");
    }
    OR.FuzzBlob = Rd.blob();
    if (!Rd.done())
      return Fail("malformed checkpoint payload");
    return dispatch(B, Opts, Err, nullptr, nullptr, &OR);
  }
  }
  return Fail("malformed checkpoint payload");
}

CampaignResult resumeCampaign(const Subject &S, const CampaignOptions &Opts,
                              const std::vector<uint8_t> &Checkpoint,
                              CampaignError *Err) {
  SubjectBuild B(S);
  return resumeCampaign(B, Opts, Checkpoint, Err);
}

} // namespace strategy
} // namespace pathfuzz
