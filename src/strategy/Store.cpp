//===- Store.cpp - Durable on-disk campaign store -----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Store.h"

#include "fuzz/Snapshot.h"
#include "strategy/BuildCache.h"
#include "support/Env.h"
#include "support/Io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace pathfuzz {
namespace strategy {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t StoreFormatVersion = 1;
constexpr const char *ManifestName = "manifest.pfm";
constexpr const char *QuarantineDir = "quarantine";
constexpr const char *CkptPrefix = "ckpt-";
constexpr const char *CkptSuffix = ".pfsnap";

/// Read bound for any store file: checkpoints carry a whole corpus, but a
/// corrupt length must never drive a multi-gigabyte allocation.
constexpr size_t MaxStoreFileBytes = size_t(1) << 30;

struct CkptFile {
  uint64_t Seq = 0;
  fs::path Path;
};

/// ckpt-NNNN.pfsnap files in Dir, sorted by ascending sequence number.
/// Anything that doesn't parse strictly is not a checkpoint.
std::vector<CkptFile> listCheckpoints(const fs::path &Dir) {
  std::vector<CkptFile> Out;
  const std::string Pre = CkptPrefix, Suf = CkptSuffix;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    std::string Name = It->path().filename().string();
    if (Name.size() <= Pre.size() + Suf.size() ||
        Name.compare(0, Pre.size(), Pre) != 0 ||
        Name.compare(Name.size() - Suf.size(), Suf.size(), Suf) != 0)
      continue;
    CkptFile F;
    if (!parseU64(Name.substr(Pre.size(), Name.size() - Pre.size() - Suf.size()),
                  F.Seq))
      continue;
    F.Path = It->path();
    Out.push_back(std::move(F));
  }
  std::sort(Out.begin(), Out.end(),
            [](const CkptFile &A, const CkptFile &B) { return A.Seq < B.Seq; });
  return Out;
}

std::string ckptFileName(uint64_t Seq) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s%04llu%s", CkptPrefix,
                static_cast<unsigned long long>(Seq), CkptSuffix);
  return Buf;
}

/// Move a torn/corrupt file into <dir>/quarantine/ (removed outright when
/// even the rename fails, so the recovery scan always makes progress).
void quarantineFile(const fs::path &File) {
  std::error_code Ec;
  fs::path QDir = File.parent_path() / QuarantineDir;
  fs::create_directories(QDir, Ec);
  fs::rename(File, QDir / File.filename(), Ec);
  if (Ec)
    fs::remove(File, Ec);
}

/// Everything a manifest records.
struct ManifestData {
  std::string Subject;
  CampaignOptions Opts; ///< fingerprint fields only
  bool Done = false;
  CampaignResult Final;
};

bool readManifest(const fs::path &Path, ManifestData &M, std::string &Err) {
  std::vector<uint8_t> Raw, Payload;
  if (!io::readFileBounded(Path.string(), MaxStoreFileBytes, Raw, &Err))
    return false;
  if (!fuzz::openSnapshot(Raw, Payload)) {
    Err = "corrupt manifest envelope";
    return false;
  }
  ByteReader Rd(Payload);
  if (Rd.u32() != StoreFormatVersion) {
    Err = "unsupported store format version";
    return false;
  }
  M.Subject = Rd.str();
  if (!readOptionsFingerprint(Rd, M.Opts)) {
    Err = "corrupt manifest fingerprint";
    return false;
  }
  uint8_t Status = Rd.u8();
  if (Status == 1) {
    std::vector<uint8_t> Blob = Rd.blob();
    if (!Rd.done() || !deserializeCampaignResult(Blob, M.Final)) {
      Err = "corrupt manifest result";
      return false;
    }
    M.Done = true;
  } else if (Status != 0 || !Rd.done()) {
    Err = "corrupt manifest payload";
    return false;
  }
  return true;
}

/// Serialized fingerprint bytes — the manifest-vs-request comparison key.
std::vector<uint8_t> fingerprintBytes(const CampaignOptions &Opts) {
  ByteWriter W;
  writeOptionsFingerprint(W, Opts);
  return W.take();
}

void setStoreError(CampaignError *Err, std::string Msg) {
  if (!Err)
    return;
  Err->Failed = true;
  Err->Transient = false;
  Err->Watchdog = false;
  Err->FaultSite.clear();
  Err->Message = std::move(Msg);
}

} // namespace

const char *storeStateName(StoreState S) {
  switch (S) {
  case StoreState::Fresh:
    return "fresh";
  case StoreState::Resumable:
    return "resumable";
  case StoreState::Done:
    return "done";
  case StoreState::Corrupt:
    return "corrupt";
  }
  return "<bad-state>";
}

std::unique_ptr<CampaignStore>
CampaignStore::open(const std::string &Dir, const std::string &SubjectName,
                    const CampaignOptions &Opts, std::string *Err) {
  auto Fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    return std::unique_ptr<CampaignStore>();
  };
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Fail("cannot create store directory " + Dir + ": " + Ec.message());

  std::unique_ptr<CampaignStore> S(new CampaignStore());
  S->Dir = Dir;
  S->KeepLast = std::max<uint32_t>(1, Opts.StoreKeepLast);

  // Sweep temporaries a kill mid-write left behind. They never carry
  // recovery state (atomicWriteFile publishes only via rename).
  const std::string Suf = io::tmpSuffix();
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    std::string Name = It->path().filename().string();
    if (Name.size() > Suf.size() &&
        Name.compare(Name.size() - Suf.size(), Suf.size(), Suf) == 0) {
      std::error_code Rm;
      fs::remove(It->path(), Rm);
    }
  }

  // The manifest prefix (format version, subject, fingerprint) is fixed
  // for the campaign's lifetime; markDone() appends status + result.
  ByteWriter P;
  P.u32(StoreFormatVersion);
  P.str(SubjectName);
  writeOptionsFingerprint(P, Opts);
  S->ManifestPrefix = P.take();

  fs::path Manifest = fs::path(Dir) / ManifestName;
  if (fs::exists(Manifest, Ec)) {
    ManifestData M;
    std::string MErr;
    if (!readManifest(Manifest, M, MErr))
      return Fail("store " + Dir + ": " + MErr);
    // A mismatched manifest is a hard error, never auto-overwritten:
    // silently resuming (or restarting) someone else's campaign would
    // corrupt both campaigns' results.
    if (M.Subject != SubjectName)
      return Fail("store " + Dir + " pins subject '" + M.Subject +
                  "', not '" + SubjectName + "'");
    if (fingerprintBytes(M.Opts) != fingerprintBytes(Opts))
      return Fail("store " + Dir +
                  " was created with different campaign options "
                  "(fingerprint mismatch)");
    S->Done = M.Done;
    S->Final = std::move(M.Final);
  } else {
    ByteWriter W;
    W.bytes(S->ManifestPrefix.data(), S->ManifestPrefix.size());
    W.u8(0); // running
    std::string WErr;
    if (!io::atomicWriteFile(Manifest.string(), fuzz::sealSnapshot(W.take()),
                             &WErr))
      return Fail("cannot write manifest: " + WErr);
  }

  for (const CkptFile &F : listCheckpoints(Dir))
    S->NextSeq = std::max(S->NextSeq, F.Seq + 1);
  return S;
}

bool CampaignStore::writeCheckpoint(const std::vector<uint8_t> &Blob,
                                    std::string *Err) {
  fs::path Path = fs::path(Dir) / ckptFileName(NextSeq);
  if (!io::atomicWriteFile(Path.string(), Blob, Err))
    return false;
  ++NextSeq;
  *Metrics.counter("store.checkpoint.written") += 1;
  *Metrics.counter("store.checkpoint.bytes") += Blob.size();

  // Retention: drop the oldest files beyond the window. Unlink order is
  // oldest-first, so a kill mid-rotation still leaves the newest intact.
  std::vector<CkptFile> Files = listCheckpoints(Dir);
  for (size_t I = 0; I + KeepLast < Files.size(); ++I) {
    std::error_code Ec;
    fs::remove(Files[I].Path, Ec);
  }
  return true;
}

bool CampaignStore::recover(std::vector<uint8_t> &Blob) {
  LastRecovered.clear();
  std::vector<CkptFile> Files = listCheckpoints(Dir);
  for (auto It = Files.rbegin(); It != Files.rend(); ++It) {
    std::vector<uint8_t> Raw, Payload;
    std::string Err;
    if (io::readFileBounded(It->Path.string(), MaxStoreFileBytes, Raw, &Err) &&
        fuzz::openSnapshot(Raw, Payload)) {
      Blob = std::move(Raw);
      LastRecovered = It->Path.string();
      *Metrics.counter("store.checkpoint.recovered") += 1;
      return true;
    }
    // Torn or corrupt: move it aside and keep scanning older files.
    quarantineFile(It->Path);
    *Metrics.counter("store.checkpoint.quarantined") += 1;
  }
  return false;
}

void CampaignStore::quarantineRecovered() {
  if (LastRecovered.empty())
    return;
  quarantineFile(LastRecovered);
  *Metrics.counter("store.checkpoint.quarantined") += 1;
  LastRecovered.clear();
}

bool CampaignStore::markDone(const CampaignResult &R, std::string *Err) {
  ByteWriter W;
  W.bytes(ManifestPrefix.data(), ManifestPrefix.size());
  W.u8(1); // done
  W.blob(serializeCampaignResult(R));
  fs::path Manifest = fs::path(Dir) / ManifestName;
  if (!io::atomicWriteFile(Manifest.string(), fuzz::sealSnapshot(W.take()),
                           Err))
    return false;
  Done = true;
  Final = R;
  return true;
}

uint64_t CampaignStore::checkpointsOnDisk() const {
  return listCheckpoints(Dir).size();
}

std::vector<StoreScanEntry> scanStoreRoot(const std::string &Root) {
  std::vector<StoreScanEntry> Entries;
  std::error_code Ec;
  std::vector<fs::path> Dirs;
  for (fs::directory_iterator It(Root, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    if (It->is_directory(Ec))
      Dirs.push_back(It->path());
  }
  std::sort(Dirs.begin(), Dirs.end());

  for (const fs::path &D : Dirs) {
    std::error_code E2;
    bool HasManifest = fs::exists(D / ManifestName, E2);
    std::vector<CkptFile> Ckpts = listCheckpoints(D);
    if (!HasManifest && Ckpts.empty())
      continue; // not a campaign directory

    StoreScanEntry E;
    E.Dir = D.string();
    E.CheckpointFiles = Ckpts.size();
    if (!HasManifest) {
      E.Error = "missing manifest";
      Entries.push_back(std::move(E));
      continue;
    }
    ManifestData M;
    std::string MErr;
    if (!readManifest(D / ManifestName, M, MErr)) {
      E.Error = MErr;
      Entries.push_back(std::move(E));
      continue;
    }
    E.Subject = M.Subject;
    E.Opts = M.Opts;
    if (M.Done) {
      E.State = StoreState::Done;
      E.Final = std::move(M.Final);
    } else {
      // Non-destructive probe: resumable iff some checkpoint's envelope
      // validates (recovery proper quarantines; a scan only reports).
      E.State = StoreState::Fresh;
      for (auto It = Ckpts.rbegin(); It != Ckpts.rend(); ++It) {
        std::vector<uint8_t> Raw, Payload;
        if (io::readFileBounded(It->Path.string(), MaxStoreFileBytes, Raw) &&
            fuzz::openSnapshot(Raw, Payload)) {
          E.State = StoreState::Resumable;
          break;
        }
      }
    }
    Entries.push_back(std::move(E));
  }
  return Entries;
}

CampaignResult runStoredCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                                 CampaignError *Err) {
  if (Opts.StoreDir.empty()) {
    setStoreError(Err, "runStoredCampaign requires CampaignOptions::StoreDir");
    return {};
  }
  std::string OpenErr;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::open(Opts.StoreDir, B.subject().Name, Opts, &OpenErr);
  if (!Store) {
    setStoreError(Err, std::move(OpenErr));
    return {};
  }
  // Finished in an earlier life: the manifest carries the byte-identical
  // result, so return it without re-executing (no Trace is attached —
  // telemetry is exported by the run that produced it).
  if (Store->done())
    return Store->finalResult();

  CampaignOptions Run = Opts;
  Run.StoreDir.clear(); // re-entering runCampaign must not recurse
  if (!Run.CheckpointInterval)
    Run.CheckpointInterval = std::max<uint64_t>(1, Opts.ExecBudget / 8);
  auto UserSink = Opts.CheckpointSink;
  CampaignStore *SP = Store.get();
  // The store persists before any user sink runs: when a sink-side crash
  // (or the kill-torture harness) takes the process down, the checkpoint
  // that triggered it is already on disk.
  Run.CheckpointSink = [SP, UserSink](const std::vector<uint8_t> &Blob) {
    std::string WErr;
    if (!SP->writeCheckpoint(Blob, &WErr))
      std::fprintf(stderr,
                   "pathfuzz: warning: checkpoint not persisted: %s\n",
                   WErr.c_str());
    if (UserSink)
      UserSink(Blob);
  };

  CampaignResult R;
  bool Ran = false;
  std::vector<uint8_t> Ckpt;
  while (SP->recover(Ckpt)) {
    CampaignError E;
    R = resumeCampaign(B, Run, Ckpt, &E);
    if (!E.Failed) {
      Ran = true;
      break;
    }
    // Build faults and watchdog trips are campaign failures, not
    // checkpoint damage — propagate them (the batch runner retries
    // transients against the same store).
    if (E.Watchdog || !E.FaultSite.empty()) {
      if (Err)
        *Err = E;
      return {};
    }
    // The envelope validated but the payload didn't restore: corruption
    // only the drivers can detect. Quarantine it and fall back.
    SP->quarantineRecovered();
  }
  if (!Ran) {
    CampaignError E;
    R = runCampaign(B, Run, &E);
    if (E.Failed) {
      if (Err)
        *Err = E;
      return {};
    }
  }

  std::string DoneErr;
  if (!SP->markDone(R, &DoneErr))
    std::fprintf(stderr,
                 "pathfuzz: warning: final result not persisted: %s\n",
                 DoneErr.c_str());

  // Fold the store's accounting into the trace as its own instance, the
  // same shape the engine-local vm.* families use.
  if (R.Trace && !SP->metrics().empty()) {
    telemetry::InstanceRecord Rec;
    Rec.Label = "store";
    Rec.Metrics = SP->metrics();
    R.Trace->Instances.push_back(std::move(Rec));
  }
  return R;
}

CampaignResult runStoredCampaign(const Subject &S, const CampaignOptions &Opts,
                                 CampaignError *Err) {
  SubjectBuild B(S);
  return runStoredCampaign(B, Opts, Err);
}

} // namespace strategy
} // namespace pathfuzz
