//===- Batch.h - Parallel campaign batch runner -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The paper's evaluation fans out 18 subjects x 7 fuzzer configurations x
// N trials, all mutually independent. runCampaigns() executes such a
// batch across a work-stealing thread pool, sharing subject builds (see
// BuildCache.h) so each subject is compiled once and instrumented once
// per feedback configuration instead of once per trial.
//
// Determinism guarantee: every campaign's randomness flows from its own
// seed through its own Rng, and shared builds are bit-identical to fresh
// ones, so Results[i] is byte-identical to the serial
// runCampaign(*Jobs[i].S, Jobs[i].Opts) — at any thread count, in any
// completion order. The table drivers rely on this to emit output
// independent of PATHFUZZ_JOBS.
//
// Fault tolerance: one failing trial no longer costs the batch. A job
// whose build fails, whose dispatch is rejected, or whose campaign trips
// the exec watchdog is recorded in its BatchJobStatus (with the full
// diagnostic) and every other job completes byte-identically to a
// fault-free batch. Transient faults — the deterministic fault-injection
// harness marks its faults transient by default — are retried by
// replaying the trial from scratch, up to PATHFUZZ_JOB_ATTEMPTS times
// (default 3); the replay is deterministic, so a retry that clears the
// fault reproduces exactly the result the fault interrupted.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_BATCH_H
#define PATHFUZZ_STRATEGY_BATCH_H

#include "strategy/Campaign.h"

namespace pathfuzz {
namespace strategy {

/// One (subject, configuration) campaign to run. Opts carries the fuzzer
/// kind and the trial's RNG seed; S must outlive the batch call.
struct BatchJob {
  const Subject *S = nullptr;
  CampaignOptions Opts;
};

/// Per-job outcome: Ok jobs hold their result in the corresponding
/// Results slot; failed jobs keep the diagnostic here instead of taking
/// the process down.
struct BatchJobStatus {
  bool Ok = true;
  /// The campaign exec watchdog stopped a runaway trial.
  bool TimedOut = false;
  /// Campaign attempts made (0 when the job could not be dispatched;
  /// >1 when transient faults were retried).
  uint32_t Attempts = 0;
  /// Fault-injection site behind the failure, when any (empty for
  /// genuine errors).
  std::string FaultSite;
  /// Full diagnostic of the last failed attempt (compile message,
  /// injected-fault description, watchdog note). Empty when Ok.
  std::string Error;
};

/// Bookkeeping from one runCampaigns() call.
struct BatchStats {
  size_t Threads = 1;             ///< worker threads used
  size_t SubjectsCompiled = 0;    ///< front-end compilations performed
  size_t ModulesInstrumented = 0; ///< instrumentation passes performed
  size_t ImagesPredecoded = 0;    ///< VM fast-path images decoded
  size_t ImageCacheHits = 0;      ///< fast-path image reuses across trials
  size_t JobsFailed = 0;          ///< jobs that exhausted their attempts
  size_t JobsRetried = 0;         ///< jobs that needed more than one attempt
  size_t DispatchRetries = 0;     ///< pool submissions retried after a
                                  ///< rejected dispatch
};

/// Deterministic per-trial seed derivation, shared by the serial and the
/// batch evaluation paths so their campaigns are interchangeable.
uint64_t trialSeed(uint64_t BaseSeed, FuzzerKind K, uint32_t Trial);

/// The worker count runCampaigns() will use for the given override
/// (0 = PATHFUZZ_JOBS when set, else the hardware concurrency).
size_t resolvedJobCount(size_t Override = 0);

/// Run every job, fanning out across a work-stealing thread pool.
/// Results[i] is the outcome of Jobs[i], byte-identical to the serial
/// runner for the same options regardless of thread count. Failed jobs
/// leave their Results slot empty; pass Statuses to see which and why.
/// Jobs without an explicit WatchdogExecLimit get a generous default
/// (several times the exec budget) so a runaway campaign becomes a
/// recorded error instead of a wedged worker.
std::vector<CampaignResult> runCampaigns(
    const std::vector<BatchJob> &Jobs, size_t ThreadsOverride = 0,
    BatchStats *Stats = nullptr, std::vector<BatchJobStatus> *Statuses = nullptr);

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_BATCH_H
