//===- Batch.h - Parallel campaign batch runner -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The paper's evaluation fans out 18 subjects x 7 fuzzer configurations x
// N trials, all mutually independent. runCampaigns() executes such a
// batch across a work-stealing thread pool, sharing subject builds (see
// BuildCache.h) so each subject is compiled once and instrumented once
// per feedback configuration instead of once per trial.
//
// Determinism guarantee: every campaign's randomness flows from its own
// seed through its own Rng, and shared builds are bit-identical to fresh
// ones, so Results[i] is byte-identical to the serial
// runCampaign(*Jobs[i].S, Jobs[i].Opts) — at any thread count, in any
// completion order. The table drivers rely on this to emit output
// independent of PATHFUZZ_JOBS.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_BATCH_H
#define PATHFUZZ_STRATEGY_BATCH_H

#include "strategy/Campaign.h"

namespace pathfuzz {
namespace strategy {

/// One (subject, configuration) campaign to run. Opts carries the fuzzer
/// kind and the trial's RNG seed; S must outlive the batch call.
struct BatchJob {
  const Subject *S = nullptr;
  CampaignOptions Opts;
};

/// Bookkeeping from one runCampaigns() call.
struct BatchStats {
  size_t Threads = 1;             ///< worker threads used
  size_t SubjectsCompiled = 0;    ///< front-end compilations performed
  size_t ModulesInstrumented = 0; ///< instrumentation passes performed
};

/// Deterministic per-trial seed derivation, shared by the serial and the
/// batch evaluation paths so their campaigns are interchangeable.
uint64_t trialSeed(uint64_t BaseSeed, FuzzerKind K, uint32_t Trial);

/// The worker count runCampaigns() will use for the given override
/// (0 = PATHFUZZ_JOBS when set, else the hardware concurrency).
size_t resolvedJobCount(size_t Override = 0);

/// Run every job, fanning out across a work-stealing thread pool.
/// Results[i] is the outcome of Jobs[i], byte-identical to the serial
/// runner for the same options regardless of thread count.
std::vector<CampaignResult> runCampaigns(const std::vector<BatchJob> &Jobs,
                                         size_t ThreadsOverride = 0,
                                         BatchStats *Stats = nullptr);

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_BATCH_H
