//===- Evaluation.h - Multi-run evaluation harness --------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Runs repeated campaigns per (subject, fuzzer) pair — the analogue of the
// paper's 10 x 48-hour runs — and provides the set algebra the evaluation
// tables report: cumulative unique bugs/crashes across runs, pairwise
// intersections and differences (Tables II, VI, VII, VIII, X and the
// Fig. 3 inclusion relations), median queue sizes (Table III), and
// cumulative edge-coverage sets (Table IV).
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_EVALUATION_H
#define PATHFUZZ_STRATEGY_EVALUATION_H

#include "strategy/Campaign.h"

#include <map>
#include <set>

namespace pathfuzz {
namespace strategy {

/// All runs of one fuzzer on one subject.
struct RunSet {
  std::vector<CampaignResult> Runs;

  /// Union of unique bugs across runs (Table II main columns).
  std::set<uint64_t> cumulativeBugs() const;
  /// Union of unique crashes (stack hashes) across runs.
  std::set<uint64_t> cumulativeCrashes() const;
  /// Union of covered shadow edges across runs (Table IV).
  std::set<uint32_t> cumulativeEdges() const;
  /// Median final queue size across runs (Table III).
  double medianQueueSize() const;
  /// Index of the median run by unique-bug count (Table VI reports the
  /// median runs' data points).
  size_t medianRunIndex() const;
  /// Bug set of the median run.
  std::set<uint64_t> medianRunBugs() const;
};

/// Results for a whole evaluation: Data[subject][kind].
struct Evaluation {
  std::vector<std::string> SubjectNames;
  std::map<std::string, std::map<FuzzerKind, RunSet>> Data;

  const RunSet &at(const std::string &SubjectName, FuzzerKind K) const {
    return Data.at(SubjectName).at(K);
  }
};

/// Run `Runs` campaigns of every requested fuzzer on every subject.
/// Per-run seeds derive deterministically from Base.Seed.
Evaluation evaluate(const std::vector<Subject> &Subjects,
                    const std::vector<FuzzerKind> &Kinds, uint32_t Runs,
                    const CampaignOptions &Base, bool Verbose = false);

/// Set-algebra helpers for table rendering.
template <typename T>
size_t setIntersectSize(const std::set<T> &A, const std::set<T> &B) {
  size_t N = 0;
  for (const T &X : A)
    N += B.count(X);
  return N;
}

template <typename T>
size_t setSubtractSize(const std::set<T> &A, const std::set<T> &B) {
  size_t N = 0;
  for (const T &X : A)
    N += !B.count(X);
  return N;
}

template <typename T>
std::set<T> setUnion(const std::set<T> &A, const std::set<T> &B) {
  std::set<T> U = A;
  U.insert(B.begin(), B.end());
  return U;
}

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_EVALUATION_H
