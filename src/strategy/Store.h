//===- Store.h - Durable on-disk campaign store -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The durability layer behind CampaignOptions::StoreDir: a per-campaign
// directory that makes a SIGKILL at any instant lose at most one
// checkpoint interval. Layout:
//
//   <dir>/manifest.pfm        sealSnapshot() envelope over: store format
//                             version, subject name, the options
//                             fingerprint (Campaign.h), a status byte and
//                             — once finished — the final
//                             serializeCampaignResult blob.
//   <dir>/ckpt-NNNN.pfsnap    rotating checkpoint files (increasing
//                             sequence numbers, newest wins), each a
//                             sealed campaign checkpoint exactly as
//                             handed to CheckpointSink. Only the last
//                             StoreKeepLast are retained.
//   <dir>/quarantine/         torn or corrupt checkpoints moved aside by
//                             the recovery scan (kept for post-mortems,
//                             never read again).
//
// Every write goes through io::atomicWriteFile, so no file is ever
// observed half-written; recovery picks the newest checkpoint whose
// envelope validates and falls back — quarantining as it goes — until
// one resumes or none are left (fresh start). A manifest whose subject
// or fingerprint does not match the requested campaign is a hard error:
// resuming someone else's store silently would corrupt both.
//
// The store's own accounting (store.checkpoint.{written,bytes,recovered,
// quarantined}) is an engine-local telemetry family: resumed and
// uninterrupted runs legitimately differ in it, and it is folded into the
// campaign trace as its own "store" instance record when tracing is on.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_STRATEGY_STORE_H
#define PATHFUZZ_STRATEGY_STORE_H

#include "strategy/Campaign.h"
#include "telemetry/Metrics.h"

#include <memory>
#include <string>
#include <vector>

namespace pathfuzz {
namespace strategy {

/// Lifecycle state of one on-disk campaign, as the recovery scan sees it.
enum class StoreState : uint8_t {
  Fresh,     ///< manifest present, no valid checkpoint yet
  Resumable, ///< at least one checkpoint with a valid envelope
  Done,      ///< the manifest carries the final result
  Corrupt,   ///< manifest missing/unreadable — never silently reused
};

const char *storeStateName(StoreState S);

/// One campaign directory. Opened (and created) by runStoredCampaign;
/// exposed for tests and the pathfuzz-resume supervisor.
class CampaignStore {
public:
  /// Open Dir (creating it and its manifest if needed) for a campaign on
  /// SubjectName with the given options. Fails — returning null with
  /// *Err set — on IO errors or when an existing manifest pins a
  /// different subject or options fingerprint.
  static std::unique_ptr<CampaignStore>
  open(const std::string &Dir, const std::string &SubjectName,
       const CampaignOptions &Opts, std::string *Err);

  /// True once markDone() has recorded a final result (possibly in an
  /// earlier process life).
  bool done() const { return Done; }
  /// The stored final result; only meaningful when done().
  const CampaignResult &finalResult() const { return Final; }

  /// Persist one sealed checkpoint blob as the next ckpt-NNNN.pfsnap and
  /// rotate out files beyond the retention window. Returns false on IO
  /// failure (the previous checkpoints are unaffected).
  bool writeCheckpoint(const std::vector<uint8_t> &Blob,
                       std::string *Err = nullptr);

  /// Recovery scan: fill Blob with the newest checkpoint whose envelope
  /// validates, quarantining invalid ones encountered on the way.
  /// Returns false when no valid checkpoint remains.
  bool recover(std::vector<uint8_t> &Blob);

  /// Quarantine the checkpoint the last successful recover() returned —
  /// for corruption only resumeCampaign could detect (valid envelope,
  /// un-restorable payload). The next recover() proceeds to older files.
  void quarantineRecovered();

  /// Rewrite the manifest with the final result (atomic; the store then
  /// reports done() forever).
  bool markDone(const CampaignResult &R, std::string *Err = nullptr);

  /// Checkpoint files currently on disk (after rotation).
  uint64_t checkpointsOnDisk() const;

  /// store.checkpoint.* counters accumulated by this handle.
  const telemetry::MetricsRegistry &metrics() const { return Metrics; }

private:
  CampaignStore() = default;

  std::string Dir;
  uint32_t KeepLast = 3;
  bool Done = false;
  CampaignResult Final;
  std::vector<uint8_t> ManifestPrefix; ///< manifest bytes up to the status
  uint64_t NextSeq = 1;                ///< next checkpoint sequence number
  std::string LastRecovered;           ///< path recover() last returned
  telemetry::MetricsRegistry Metrics;
};

/// One store-root entry as pathfuzz-resume sees it: the manifest parsed
/// back into runnable options plus the recovery-relevant state.
struct StoreScanEntry {
  std::string Dir;     ///< campaign directory
  std::string Subject; ///< subject name pinned by the manifest
  CampaignOptions Opts; ///< fingerprint fields reconstructed from it
  StoreState State = StoreState::Corrupt;
  uint64_t CheckpointFiles = 0; ///< ckpt-*.pfsnap present (unvalidated)
  CampaignResult Final;         ///< stored result when State == Done
  std::string Error;            ///< diagnostic for Corrupt entries
};

/// Scan a store root: every direct subdirectory holding (or supposed to
/// hold) a manifest, sorted by directory name for deterministic output.
std::vector<StoreScanEntry> scanStoreRoot(const std::string &Root);

/// Run a campaign durably under Opts.StoreDir: recover from the newest
/// valid checkpoint (falling back across corrupt ones, then to a fresh
/// start), persist a checkpoint every interval — Opts.CheckpointInterval
/// of 0 defaults to ExecBudget/8 here — and record the final result in
/// the manifest. A campaign already marked done returns its stored result
/// without re-executing (and without a Trace). The returned result is
/// byte-identical (serializeCampaignResult) to an uninterrupted in-memory
/// run with the same options. runCampaign() calls this itself whenever
/// StoreDir is set; the supervisor calls it directly.
CampaignResult runStoredCampaign(SubjectBuild &B, const CampaignOptions &Opts,
                                 CampaignError *Err = nullptr);
CampaignResult runStoredCampaign(const Subject &S, const CampaignOptions &Opts,
                                 CampaignError *Err = nullptr);

} // namespace strategy
} // namespace pathfuzz

#endif // PATHFUZZ_STRATEGY_STORE_H
