//===- BuildCache.cpp - Shared subject build cache ----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/BuildCache.h"

#include "instrument/Audit.h"
#include "instrument/Elide.h"
#include "support/FaultInjection.h"

#include <cassert>

namespace pathfuzz {
namespace strategy {

namespace {

/// The "strategy.instrument.corrupt" fault: flip the first path/edge probe
/// constant in the freshly instrumented module. A single off-by-one in a
/// path increment makes some path IDs collide or escape [0, NumPaths) —
/// exactly the class of silent miscompile the static audit exists to
/// catch. Classic block probes are left alone: their location IDs are
/// random by design, so no audit can (or should) pin their values.
bool corruptOneProbe(mir::Module &M) {
  for (auto &F : M.Funcs)
    for (auto &BB : F.Blocks)
      for (auto &I : BB.Instrs) {
        switch (I.Op) {
        case mir::Opcode::EdgeProbe:
        case mir::Opcode::PathAdd:
        case mir::Opcode::PathFlushRet:
        case mir::Opcode::PathFlushBack:
          ++I.Imm;
          return true;
        default:
          break;
        }
      }
  return false;
}

} // namespace

SubjectBuild::SubjectBuild(const Subject &S) : S(&S) {
  // Injected build faults surface through the same structured-error path
  // as genuine frontend diagnostics, so the batch retry logic is
  // exercised identically for both.
  if (fault::enabled() && fault::shouldFail("strategy.compile")) {
    Err = "injected fault: strategy.compile";
    FaultSiteName = "strategy.compile";
    TransientErr = fault::isTransient("strategy.compile");
    return;
  }
  lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
  if (!CR.ok()) {
    // A real compile error: keep the frontend's full diagnostic. Not
    // transient — recompiling the same source cannot succeed.
    Err = CR.message();
    TransientErr = false;
    return;
  }
  Base = std::move(*CR.Mod);
  Shadow = instr::ShadowEdgeIndex::build(Base);
  Compiled = true;
}

const InstrumentedBuild *
SubjectBuild::tryInstrumented(instr::Feedback Mode, const CampaignOptions &Opts,
                              std::string *ErrOut) {
  Key K{static_cast<uint8_t>(Mode), static_cast<uint8_t>(Opts.Placement),
        Opts.MapSizeLog2};
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<InstrumentedBuild> &Slot = Builds[K];
  if (!Slot) {
    // The fault probe sits inside the cache-miss path: a cached build is
    // immune (the pass already ran), and a failed attempt leaves the slot
    // empty so a retry re-runs the pass and can succeed.
    if (fault::enabled() && fault::shouldFail("strategy.instrument")) {
      Builds.erase(K);
      if (ErrOut)
        *ErrOut = "injected fault: strategy.instrument";
      return nullptr;
    }
    Slot = std::make_unique<InstrumentedBuild>();
    Slot->Mod = Base; // copy, then rewrite in place
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    IO.Placement = Opts.Placement;
    IO.MapSizeLog2 = Opts.MapSizeLog2;
    IO.Seed = 0x5eed0000 + Opts.MapSizeLog2; // stable across runs
    Slot->Report = instr::instrumentModule(Slot->Mod, IO);

    // Static audit: prove the probe constants realize the canonical path
    // numbering and the lowering followed the placement rules. On by
    // default in assert-enabled builds (PATHFUZZ_AUDIT=0/1 overrides);
    // always on when the corruption fault just fired, so the fault is
    // caught deterministically in any build flavor.
    bool Corrupted =
        fault::enabled() && fault::shouldFail("strategy.instrument.corrupt") &&
        corruptOneProbe(Slot->Mod);
    if (instr::auditEnabled() || Corrupted) {
      instr::AuditResult AR =
          instr::auditModule(Base, Slot->Mod, Slot->Report, IO);
      if (!AR.ok()) {
        Builds.erase(K);
        if (ErrOut)
          *ErrOut = "instrumentation audit failed: " + AR.message();
        return nullptr;
      }
    }
  }
  // The pre-decoded fast-path image rides the same cache slot as the
  // instrumented module: decoded at most once per (feedback, placement,
  // map size) and shared read-only by every trial's Vm. Checked on the
  // cache-hit path too, so a campaign that enables the fast path can add
  // the image to a slot instrumented while the fast path was off.
  if (vm::fastPathEnabled(Opts.VmMode)) {
    if (!Slot->Image) {
      Slot->Image = std::make_unique<vm::ProgramImage>(
          vm::ProgramImage::build(Slot->Mod, &Shadow));
      ++ImageBuildCount;
    } else {
      ++ImageHitCount;
    }
    // The selective mode's cheap image rides the slot the same way:
    // decoded from an elision plan covering every probe, audited with the
    // same gate as the instrumentation itself. An audit failure is a
    // planner bug, reported like a failed instrumentation audit rather
    // than silently running the campaign non-selectively.
    if (vm::selectiveEnabled(Opts.Selective) && !Slot->CheapImage) {
      instr::ElisionPlan Plan = instr::planProbeElision(Slot->Mod);
      if (instr::auditEnabled()) {
        instr::AuditResult AR = instr::auditElisionPlan(Slot->Mod, Plan);
        if (!AR.ok()) {
          if (ErrOut)
            *ErrOut = "probe elision audit failed: " + AR.message();
          return nullptr;
        }
      }
      Slot->CheapImage = std::make_unique<vm::ProgramImage>(
          vm::ProgramImage::build(Slot->Mod, &Shadow, &Plan));
    }
  }
  return Slot.get();
}

const InstrumentedBuild &
SubjectBuild::instrumented(instr::Feedback Mode, const CampaignOptions &Opts) {
  const InstrumentedBuild *B = tryInstrumented(Mode, Opts);
  assert(B && "instrumented() used with instrumentation faults armed");
  return *B;
}

size_t SubjectBuild::instrumentCount() const {
  std::lock_guard<std::mutex> L(M);
  return Builds.size();
}

size_t SubjectBuild::imageBuilds() const {
  std::lock_guard<std::mutex> L(M);
  return ImageBuildCount;
}

size_t SubjectBuild::imageHits() const {
  std::lock_guard<std::mutex> L(M);
  return ImageHitCount;
}

std::shared_ptr<SubjectBuild> BuildCache::get(const Subject &S) {
  std::lock_guard<std::mutex> L(M);
  std::shared_ptr<SubjectBuild> &Slot = Subjects[S.Name];
  if (!Slot) {
    Slot = std::make_shared<SubjectBuild>(S);
    ++CompileCount;
  }
  return Slot;
}

void BuildCache::invalidate(const std::string &SubjectName) {
  std::lock_guard<std::mutex> L(M);
  Subjects.erase(SubjectName);
}

size_t BuildCache::subjectsCompiled() const {
  std::lock_guard<std::mutex> L(M);
  return CompileCount;
}

size_t BuildCache::modulesInstrumented() const {
  std::lock_guard<std::mutex> L(M);
  size_t N = 0;
  for (const auto &[Name, Build] : Subjects)
    N += Build->instrumentCount();
  return N;
}

size_t BuildCache::imagesPredecoded() const {
  std::lock_guard<std::mutex> L(M);
  size_t N = 0;
  for (const auto &[Name, Build] : Subjects)
    N += Build->imageBuilds();
  return N;
}

size_t BuildCache::imageCacheHits() const {
  std::lock_guard<std::mutex> L(M);
  size_t N = 0;
  for (const auto &[Name, Build] : Subjects)
    N += Build->imageHits();
  return N;
}

} // namespace strategy
} // namespace pathfuzz
