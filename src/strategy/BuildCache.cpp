//===- BuildCache.cpp - Shared subject build cache ----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/BuildCache.h"

#include <cstdio>
#include <cstdlib>

namespace pathfuzz {
namespace strategy {

namespace {

mir::Module compileSubject(const Subject &S) {
  lang::CompileResult CR = lang::compileSource(S.Source, S.Name);
  if (!CR.ok()) {
    std::fprintf(stderr, "subject '%s' failed to compile:\n%s", S.Name.c_str(),
                 CR.message().c_str());
    std::abort();
  }
  return std::move(*CR.Mod);
}

} // namespace

SubjectBuild::SubjectBuild(const Subject &S)
    : S(&S), Base(compileSubject(S)),
      Shadow(instr::ShadowEdgeIndex::build(Base)) {}

const InstrumentedBuild &
SubjectBuild::instrumented(instr::Feedback Mode, const CampaignOptions &Opts) {
  Key K{static_cast<uint8_t>(Mode), static_cast<uint8_t>(Opts.Placement),
        Opts.MapSizeLog2};
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<InstrumentedBuild> &Slot = Builds[K];
  if (!Slot) {
    Slot = std::make_unique<InstrumentedBuild>();
    Slot->Mod = Base; // copy, then rewrite in place
    instr::InstrumentOptions IO;
    IO.Mode = Mode;
    IO.Placement = Opts.Placement;
    IO.MapSizeLog2 = Opts.MapSizeLog2;
    IO.Seed = 0x5eed0000 + Opts.MapSizeLog2; // stable across runs
    Slot->Report = instr::instrumentModule(Slot->Mod, IO);
  }
  return *Slot;
}

size_t SubjectBuild::instrumentCount() const {
  std::lock_guard<std::mutex> L(M);
  return Builds.size();
}

SubjectBuild &BuildCache::get(const Subject &S) {
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<SubjectBuild> &Slot = Subjects[S.Name];
  if (!Slot)
    Slot = std::make_unique<SubjectBuild>(S);
  return *Slot;
}

size_t BuildCache::subjectsCompiled() const {
  std::lock_guard<std::mutex> L(M);
  return Subjects.size();
}

size_t BuildCache::modulesInstrumented() const {
  std::lock_guard<std::mutex> L(M);
  size_t N = 0;
  for (const auto &[Name, Build] : Subjects)
    N += Build->instrumentCount();
  return N;
}

} // namespace strategy
} // namespace pathfuzz
