//===- Batch.cpp - Parallel campaign batch runner -----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Batch.h"

#include "strategy/BuildCache.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

namespace pathfuzz {
namespace strategy {

uint64_t trialSeed(uint64_t BaseSeed, FuzzerKind K, uint32_t Trial) {
  return BaseSeed + 1000003ULL * Trial +
         1000000007ULL * static_cast<uint64_t>(K);
}

size_t resolvedJobCount(size_t Override) {
  return Override ? Override : ThreadPool::defaultThreadCount();
}

namespace {

/// Run one job to completion, retrying transient faults with a fresh
/// deterministic replay. The retry is exact: the campaign's randomness
/// flows only from its seed, so attempt N that gets past the fault
/// produces the same bytes attempt 1 would have.
CampaignResult runOneJob(BuildCache &Cache, const BatchJob &Job,
                         uint32_t MaxAttempts, BatchJobStatus &Status) {
  CampaignOptions Opts = Job.Opts;
  if (!Opts.Trace.Enabled) {
    // Honor PATHFUZZ_TRACE for jobs that don't configure tracing
    // themselves (an explicit per-job config wins). Parsed once; traces
    // are per-instance, so any thread count yields the same merged trace.
    static const telemetry::TraceConfig EnvTrace =
        telemetry::traceConfigFromEnv();
    if (EnvTrace.Enabled)
      Opts.Trace = EnvTrace;
  }
  if (!Opts.WatchdogExecLimit) {
    // Default watchdog: generous enough that no legitimate campaign gets
    // near it (each driver executes ~ExecBudget total), tight enough to
    // convert a wedged trial into a recorded error.
    Opts.WatchdogExecLimit = 8 * Opts.ExecBudget + 4096;
  }
  if (Opts.StoreDir.empty()) {
    // Durable batches: PATHFUZZ_STORE names a store root and every trial
    // gets its own campaign directory under it, keyed by the trial cell —
    // subject, fuzzer, seed — so re-running the same batch after a kill
    // resumes each trial from its newest checkpoint. A per-job StoreDir
    // wins over the env root. Read per job (not latched): a getenv per
    // trial is noise next to a campaign, and tests re-point the root.
    const std::string EnvStoreRoot = envStr("PATHFUZZ_STORE", "");
    if (!EnvStoreRoot.empty())
      Opts.StoreDir = EnvStoreRoot + "/" + Job.S->Name + "-" +
                      fuzzerKindName(Opts.Kind) + "-s" +
                      std::to_string(Opts.Seed);
  }
  for (uint32_t Attempt = 1;; ++Attempt) {
    Status.Attempts = Attempt;
    std::shared_ptr<SubjectBuild> B = Cache.get(*Job.S);
    CampaignError Err;
    CampaignResult R = runCampaign(*B, Opts, &Err);
    if (!Err.Failed) {
      Status.Ok = true;
      Status.TimedOut = false;
      Status.FaultSite.clear();
      Status.Error.clear();
      return R;
    }
    Status.Ok = false;
    Status.TimedOut = Err.Watchdog;
    Status.FaultSite = Err.FaultSite;
    Status.Error = Err.Message;
    if (!Err.Transient || Attempt >= MaxAttempts)
      return {};
    // Transient build fault: drop the poisoned cache entry so the retry
    // recompiles (in-flight sharers of the old entry are unaffected).
    // Transient instrumentation faults need nothing — failed passes are
    // never cached.
    if (!B->ok())
      Cache.invalidate(Job.S->Name);
  }
}

} // namespace

std::vector<CampaignResult> runCampaigns(const std::vector<BatchJob> &Jobs,
                                         size_t ThreadsOverride,
                                         BatchStats *Stats,
                                         std::vector<BatchJobStatus> *Statuses) {
  std::vector<CampaignResult> Results(Jobs.size());
  std::vector<BatchJobStatus> Local(Jobs.size());
  BuildCache Cache;

  // Honor PATHFUZZ_FAULT_SITES for whole-binary runs (bench drivers go
  // through here). Armed once per process so hit counters span batches.
  static const size_t EnvFaultSites = fault::armFromEnv();
  (void)EnvFaultSites;

  const uint32_t MaxAttempts = static_cast<uint32_t>(
      std::max<uint64_t>(1, envU64("PATHFUZZ_JOB_ATTEMPTS", 3)));

  size_t Threads = resolvedJobCount(ThreadsOverride);
  Threads = std::max<size_t>(1, std::min(Threads, Jobs.size()));

  std::atomic<size_t> DispatchRetries{0};

  if (Threads == 1) {
    // No pool for the serial case: identical code path, zero thread
    // overhead, and the 1-thread/N-thread identity test stays honest.
    for (size_t I = 0; I < Jobs.size(); ++I)
      Results[I] = runOneJob(Cache, Jobs[I], MaxAttempts, Local[I]);
  } else {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I < Jobs.size(); ++I) {
      // Dispatch with bounded retry: a rejected submission (the
      // "support.pool.dispatch" fault site) costs a retry, never the
      // job — persistent rejection degrades to running inline on the
      // submitting thread, so no result slot is ever silently skipped.
      bool Queued = false;
      for (uint32_t A = 0; A < MaxAttempts && !Queued; ++A) {
        if (A > 0)
          DispatchRetries.fetch_add(1, std::memory_order_relaxed);
        Queued = Pool.trySubmit([&Jobs, &Results, &Local, &Cache, MaxAttempts,
                                 I] {
          Results[I] = runOneJob(Cache, Jobs[I], MaxAttempts, Local[I]);
        });
      }
      if (!Queued)
        Results[I] = runOneJob(Cache, Jobs[I], MaxAttempts, Local[I]);
    }
    Pool.wait();
  }

  if (Stats) {
    Stats->Threads = Threads;
    Stats->SubjectsCompiled = Cache.subjectsCompiled();
    Stats->ModulesInstrumented = Cache.modulesInstrumented();
    Stats->ImagesPredecoded = Cache.imagesPredecoded();
    Stats->ImageCacheHits = Cache.imageCacheHits();
    Stats->DispatchRetries = DispatchRetries.load();
    Stats->JobsFailed = 0;
    Stats->JobsRetried = 0;
    for (const BatchJobStatus &St : Local) {
      Stats->JobsFailed += !St.Ok;
      Stats->JobsRetried += St.Attempts > 1;
    }
  }
  if (Statuses)
    *Statuses = std::move(Local);
  return Results;
}

} // namespace strategy
} // namespace pathfuzz
