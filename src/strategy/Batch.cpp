//===- Batch.cpp - Parallel campaign batch runner -----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Batch.h"

#include "strategy/BuildCache.h"
#include "support/ThreadPool.h"

#include <algorithm>

namespace pathfuzz {
namespace strategy {

uint64_t trialSeed(uint64_t BaseSeed, FuzzerKind K, uint32_t Trial) {
  return BaseSeed + 1000003ULL * Trial +
         1000000007ULL * static_cast<uint64_t>(K);
}

size_t resolvedJobCount(size_t Override) {
  return Override ? Override : ThreadPool::defaultThreadCount();
}

std::vector<CampaignResult> runCampaigns(const std::vector<BatchJob> &Jobs,
                                         size_t ThreadsOverride,
                                         BatchStats *Stats) {
  std::vector<CampaignResult> Results(Jobs.size());
  BuildCache Cache;

  size_t Threads = resolvedJobCount(ThreadsOverride);
  Threads = std::max<size_t>(1, std::min(Threads, Jobs.size()));

  if (Threads == 1) {
    // No pool for the serial case: identical code path, zero thread
    // overhead, and the 1-thread/N-thread identity test stays honest.
    for (size_t I = 0; I < Jobs.size(); ++I)
      Results[I] = runCampaign(Cache.get(*Jobs[I].S), Jobs[I].Opts);
  } else {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I < Jobs.size(); ++I)
      Pool.submit([&Jobs, &Results, &Cache, I] {
        Results[I] = runCampaign(Cache.get(*Jobs[I].S), Jobs[I].Opts);
      });
    Pool.wait();
  }

  if (Stats) {
    Stats->Threads = Threads;
    Stats->SubjectsCompiled = Cache.subjectsCompiled();
    Stats->ModulesInstrumented = Cache.modulesInstrumented();
  }
  return Results;
}

} // namespace strategy
} // namespace pathfuzz
