//===- Evaluation.cpp - Multi-run evaluation harness --------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Evaluation.h"

#include "strategy/Batch.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>

namespace pathfuzz {
namespace strategy {

std::set<uint64_t> RunSet::cumulativeBugs() const {
  std::set<uint64_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.BugIds.begin(), R.BugIds.end());
  return Out;
}

std::set<uint64_t> RunSet::cumulativeCrashes() const {
  std::set<uint64_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.CrashHashes.begin(), R.CrashHashes.end());
  return Out;
}

std::set<uint32_t> RunSet::cumulativeEdges() const {
  std::set<uint32_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.EdgeSet.begin(), R.EdgeSet.end());
  return Out;
}

double RunSet::medianQueueSize() const {
  std::vector<double> Sizes;
  Sizes.reserve(Runs.size());
  for (const CampaignResult &R : Runs)
    Sizes.push_back(static_cast<double>(R.FinalQueueSize));
  return median(std::move(Sizes));
}

size_t RunSet::medianRunIndex() const {
  if (Runs.empty())
    return 0;
  std::vector<size_t> Order(Runs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Runs[A].BugIds.size() < Runs[B].BugIds.size();
  });
  return Order[Order.size() / 2];
}

std::set<uint64_t> RunSet::medianRunBugs() const {
  if (Runs.empty())
    return {};
  return Runs[medianRunIndex()].BugIds;
}

Evaluation evaluate(const std::vector<Subject> &Subjects,
                    const std::vector<FuzzerKind> &Kinds, uint32_t Runs,
                    const CampaignOptions &Base, bool Verbose) {
  // Fan every (subject, kind, run) campaign out through the batch
  // runner, then fold results back in the fixed nesting order below, so
  // the Evaluation is identical to the old serial loop for the same
  // seeds at any thread count.
  std::vector<BatchJob> Jobs;
  Jobs.reserve(Subjects.size() * Kinds.size() * Runs);
  for (const Subject &S : Subjects)
    for (FuzzerKind K : Kinds)
      for (uint32_t Run = 0; Run < Runs; ++Run) {
        BatchJob J;
        J.S = &S;
        J.Opts = Base;
        J.Opts.Kind = K;
        J.Opts.Seed = trialSeed(Base.Seed, K, Run);
        Jobs.push_back(J);
      }

  std::vector<CampaignResult> Results = runCampaigns(Jobs);

  Evaluation E;
  size_t Next = 0;
  for (const Subject &S : Subjects) {
    E.SubjectNames.push_back(S.Name);
    for (FuzzerKind K : Kinds) {
      RunSet &RS = E.Data[S.Name][K];
      for (uint32_t Run = 0; Run < Runs; ++Run) {
        RS.Runs.push_back(std::move(Results[Next++]));
        if (Verbose) {
          const CampaignResult &R = RS.Runs.back();
          std::fprintf(stderr,
                       "[%s/%s run %u] execs=%llu queue=%llu bugs=%zu "
                       "crashes=%zu edges=%u\n",
                       S.Name.c_str(), fuzzerKindName(K), Run,
                       static_cast<unsigned long long>(R.Execs),
                       static_cast<unsigned long long>(R.FinalQueueSize),
                       R.BugIds.size(), R.CrashHashes.size(),
                       R.edgesCovered());
        }
      }
    }
  }
  return E;
}

} // namespace strategy
} // namespace pathfuzz
