//===- Evaluation.cpp - Multi-run evaluation harness --------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "strategy/Evaluation.h"

#include "support/Stats.h"

#include <algorithm>
#include <cstdio>

namespace pathfuzz {
namespace strategy {

std::set<uint64_t> RunSet::cumulativeBugs() const {
  std::set<uint64_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.BugIds.begin(), R.BugIds.end());
  return Out;
}

std::set<uint64_t> RunSet::cumulativeCrashes() const {
  std::set<uint64_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.CrashHashes.begin(), R.CrashHashes.end());
  return Out;
}

std::set<uint32_t> RunSet::cumulativeEdges() const {
  std::set<uint32_t> Out;
  for (const CampaignResult &R : Runs)
    Out.insert(R.EdgeSet.begin(), R.EdgeSet.end());
  return Out;
}

double RunSet::medianQueueSize() const {
  std::vector<double> Sizes;
  Sizes.reserve(Runs.size());
  for (const CampaignResult &R : Runs)
    Sizes.push_back(static_cast<double>(R.FinalQueueSize));
  return median(std::move(Sizes));
}

size_t RunSet::medianRunIndex() const {
  if (Runs.empty())
    return 0;
  std::vector<size_t> Order(Runs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Runs[A].BugIds.size() < Runs[B].BugIds.size();
  });
  return Order[Order.size() / 2];
}

std::set<uint64_t> RunSet::medianRunBugs() const {
  if (Runs.empty())
    return {};
  return Runs[medianRunIndex()].BugIds;
}

Evaluation evaluate(const std::vector<Subject> &Subjects,
                    const std::vector<FuzzerKind> &Kinds, uint32_t Runs,
                    const CampaignOptions &Base, bool Verbose) {
  Evaluation E;
  for (const Subject &S : Subjects) {
    E.SubjectNames.push_back(S.Name);
    for (FuzzerKind K : Kinds) {
      RunSet &RS = E.Data[S.Name][K];
      for (uint32_t Run = 0; Run < Runs; ++Run) {
        CampaignOptions Opts = Base;
        Opts.Kind = K;
        Opts.Seed = Base.Seed + 1000003ULL * Run +
                    1000000007ULL * static_cast<uint64_t>(K);
        RS.Runs.push_back(runCampaign(S, Opts));
        if (Verbose) {
          const CampaignResult &R = RS.Runs.back();
          std::fprintf(stderr,
                       "[%s/%s run %u] execs=%llu queue=%llu bugs=%zu "
                       "crashes=%zu edges=%u\n",
                       S.Name.c_str(), fuzzerKindName(K), Run,
                       static_cast<unsigned long long>(R.Execs),
                       static_cast<unsigned long long>(R.FinalQueueSize),
                       R.BugIds.size(), R.CrashHashes.size(),
                       R.edgesCovered());
        }
      }
    }
  }
  return E;
}

} // namespace strategy
} // namespace pathfuzz
