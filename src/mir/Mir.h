//===- Mir.h - Mini intermediate representation -----------------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// The mini-IR (MIR) is the substrate this reproduction uses in place of
// LLVM IR. It is a register-based, non-SSA, CFG-structured IR: a module is
// a list of functions, a function is a list of basic blocks over virtual
// registers, and each block ends in exactly one terminator. This surface is
// all the paper's instrumentation passes need: function CFGs with loops,
// calls, returns, and an edge/block structure to place probes on.
//
// Programs under test are written in MiniLang (src/lang) and lowered to
// MIR; instrumentation passes (src/instrument) rewrite MIR in place; the VM
// (src/vm) interprets it with a memory-safety checker standing in for ASan.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_MIR_MIR_H
#define PATHFUZZ_MIR_MIR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {
namespace mir {

/// Virtual register index within a function frame.
using Reg = uint16_t;

/// Instruction opcodes. Probe opcodes are only ever introduced by the
/// instrumentation passes; the frontend never emits them.
enum class Opcode : uint8_t {
  // Value-producing instructions (destination in A).
  Const,      ///< A = Imm
  Move,       ///< A = R(B)
  Bin,        ///< A = R(B) <BinOp> R(C)
  BinImm,     ///< A = R(B) <BinOp> Imm
  Neg,        ///< A = -R(B)
  Not,        ///< A = !R(B) (logical)
  InLen,      ///< A = length of the fuzz input
  InByte,     ///< A = input[R(B)], or -1 if out of range
  Alloc,      ///< A = pointer to a fresh heap object of R(B) cells
  GlobalAddr, ///< A = pointer to global #Imm
  Load,       ///< A = mem[R(B)][R(C)]
  Call,       ///< A = call Callee(Args...)

  // Void instructions.
  Store, ///< mem[R(A)][R(B)] = R(C)
  Free,  ///< free object R(A)
  Abort, ///< explicit program abort (assertion failure); Imm tags the site

  // Coverage probes (inserted by src/instrument only).
  EdgeProbe,     ///< coverage-map hit for edge id Imm (pcguard analogue)
  BlockProbe,    ///< classic AFL block probe; Imm = this block's location id
  PathAdd,       ///< Ball-Larus: PathReg += Imm
  PathFlushRet,  ///< Ball-Larus: emit path (PathReg + Imm); at returns
  PathFlushBack, ///< Ball-Larus: emit path (PathReg + Imm); PathReg = Imm2
};

/// Binary operators for Bin/BinImm. Comparisons yield 0/1.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, ///< traps on division by zero (DivByZero fault)
  Rem, ///< traps on division by zero (DivByZero fault)
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Maximum number of call arguments; plenty for the target suite.
inline constexpr unsigned MaxCallArgs = 6;

/// A single three-address instruction.
struct Instr {
  Opcode Op = Opcode::Const;
  BinOp BOp = BinOp::Add;
  Reg A = 0;
  Reg B = 0;
  Reg C = 0;
  int64_t Imm = 0;
  int64_t Imm2 = 0;              ///< second immediate (PathFlushBack reset)
  uint32_t Callee = 0;           ///< function index for Call
  uint8_t NumArgs = 0;           ///< argument count for Call
  Reg Args[MaxCallArgs] = {0};   ///< argument registers for Call
  /// Source position (1-based; 0 = no source attribution). Stamped by the
  /// MiniLang lowering so lint/audit diagnostics can point at source.
  uint32_t Line = 0;
  uint32_t Col = 0;
  /// Compiler-synthesized value with no source-level counterpart (implicit
  /// zero-init of `var x;`, discarded builtin results). The lint passes
  /// skip these: a synthetic zero-init must not count as "initialization"
  /// for use-before-init, nor be reported as a dead store.
  bool Synth = false;

  /// Whether this opcode writes register A.
  bool producesValue() const {
    switch (Op) {
    case Opcode::Store:
    case Opcode::Free:
    case Opcode::Abort:
    case Opcode::EdgeProbe:
    case Opcode::BlockProbe:
    case Opcode::PathAdd:
    case Opcode::PathFlushRet:
    case Opcode::PathFlushBack:
      return false;
    default:
      return true;
    }
  }

  /// Whether this is an instrumentation probe.
  bool isProbe() const {
    switch (Op) {
    case Opcode::EdgeProbe:
    case Opcode::BlockProbe:
    case Opcode::PathAdd:
    case Opcode::PathFlushRet:
    case Opcode::PathFlushBack:
      return true;
    default:
      return false;
    }
  }
};

/// Terminator kinds; every basic block ends in exactly one terminator.
enum class TermKind : uint8_t {
  Br,     ///< unconditional branch to Succs[0]
  CondBr, ///< branch on R(Cond): Succs[0] if nonzero else Succs[1]
  Switch, ///< jump to Succs[i] if R(Cond)==CaseValues[i]; else Succs.back()
  Ret,    ///< return R(Cond)
};

struct Terminator {
  TermKind Kind = TermKind::Ret;
  Reg Cond = 0;
  std::vector<uint32_t> Succs;      ///< successor block indices
  std::vector<int64_t> CaseValues;  ///< Switch only; size == Succs.size()-1
  /// Source position of the statement that produced this terminator
  /// (1-based; 0 = no source attribution).
  uint32_t Line = 0;
  uint32_t Col = 0;

  unsigned numSuccessors() const {
    return static_cast<unsigned>(Succs.size());
  }
};

/// A basic block: straight-line instructions plus one terminator.
struct BasicBlock {
  std::string Name;
  std::vector<Instr> Instrs;
  Terminator Term;
};

/// A function: a CFG of basic blocks over a flat register frame.
/// Parameters arrive in registers [0, NumParams). Block 0 is the entry.
struct Function {
  std::string Name;
  uint16_t NumParams = 0;
  uint16_t NumRegs = 0;
  std::vector<BasicBlock> Blocks;

  /// Source position of the declaration (0 = unknown) and the parameter
  /// spellings, kept for diagnostics; empty for builder-made functions.
  uint32_t DeclLine = 0;
  uint32_t DeclCol = 0;
  std::vector<std::string> ParamNames;

  /// Set by instrumentation: register holding the Ball-Larus path state.
  /// Only meaningful when HasPathReg is true.
  Reg PathReg = 0;
  bool HasPathReg = false;
  /// Initial value of the path register on function entry (the Val of the
  /// ENTRY->entry dummy edge; 0 with the canonical edge ordering).
  int64_t PathRegInit = 0;

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
};

/// A module-level global array (word-granular, zero- or expr-initialized).
struct Global {
  std::string Name;
  uint32_t Size = 0;              ///< number of cells
  std::vector<int64_t> Init;      ///< optional initializer (<= Size cells)
};

/// A whole program: functions (index 0 need not be the entry; the entry is
/// looked up by name, conventionally "main"), plus globals.
struct Module {
  std::string Name;
  std::vector<Function> Funcs;
  std::vector<Global> Globals;

  /// Set by instr::instrumentModule. The verifier rejects probe opcodes in
  /// modules that never went through an instrumentation pass, so stray
  /// probes in frontend output are caught at the pipeline boundary.
  bool Instrumented = false;

  /// Returns the index of the named function, or -1 if absent.
  int findFunction(const std::string &FnName) const {
    for (size_t I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == FnName)
        return static_cast<int>(I);
    return -1;
  }

  /// Total number of basic blocks across all functions.
  uint64_t totalBlocks() const {
    uint64_t N = 0;
    for (const auto &F : Funcs)
      N += F.numBlocks();
    return N;
  }
};

/// Returns a printable mnemonic for an opcode.
const char *opcodeName(Opcode Op);

/// Returns a printable mnemonic for a binary operator.
const char *binOpName(BinOp Op);

} // namespace mir
} // namespace pathfuzz

#endif // PATHFUZZ_MIR_MIR_H
