//===- Printer.h - Textual dump of MIR --------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_MIR_PRINTER_H
#define PATHFUZZ_MIR_PRINTER_H

#include "mir/Mir.h"

#include <string>

namespace pathfuzz {
namespace mir {

/// Render one instruction as text (for diagnostics and golden tests).
std::string printInstr(const Instr &I, const Module *M = nullptr);

/// Render a terminator as text.
std::string printTerminator(const Terminator &T, const Function &F);

/// Render a whole function.
std::string printFunction(const Function &F, const Module *M = nullptr);

/// Render a whole module.
std::string printModule(const Module &M);

} // namespace mir
} // namespace pathfuzz

#endif // PATHFUZZ_MIR_PRINTER_H
