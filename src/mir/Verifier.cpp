//===- Verifier.cpp - Well-formedness checks for MIR -------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "mir/Verifier.h"

#include "mir/Printer.h"

namespace pathfuzz {
namespace mir {

std::string VerifyResult::message() const {
  std::string S;
  for (const auto &E : Errors) {
    S += E;
    S += '\n';
  }
  return S;
}

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F, VerifyResult &Result)
      : M(M), F(F), Result(Result) {}

  void run() {
    if (F.Blocks.empty()) {
      error("function has no blocks");
      return;
    }
    if (F.NumParams > F.NumRegs)
      error("NumParams exceeds NumRegs");
    for (uint32_t B = 0; B < F.Blocks.size(); ++B)
      verifyBlock(B);
  }

private:
  void error(const std::string &Msg) {
    Result.Errors.push_back("@" + F.Name + ": " + Msg);
  }

  /// Block-scoped errors carry a uniform `@function:block:` prefix so
  /// tooling (and humans) can locate them without parsing prose.
  void errorAt(uint32_t Block, const std::string &Msg) {
    Result.Errors.push_back("@" + F.Name + ":" + F.Blocks[Block].Name + ": " +
                            Msg);
  }

  void checkReg(uint32_t Block, Reg R, const char *What) {
    if (R >= F.NumRegs)
      errorAt(Block, std::string(What) + " register r" + std::to_string(R) +
                         " out of range (NumRegs=" + std::to_string(F.NumRegs) +
                         ")");
  }

  void checkBlockRef(uint32_t Block, uint32_t Target) {
    if (Target >= F.Blocks.size())
      errorAt(Block,
              "successor block #" + std::to_string(Target) + " out of range");
  }

  void verifyBlock(uint32_t B) {
    const BasicBlock &BB = F.Blocks[B];
    for (const Instr &I : BB.Instrs)
      verifyInstr(B, I);
    verifyTerminator(B, BB.Term);
  }

  void verifyInstr(uint32_t B, const Instr &I) {
    if (I.isProbe() && !M.Instrumented)
      errorAt(B, std::string(opcodeName(I.Op)) +
                     " probe in a module that never went through "
                     "instrumentation");
    if (I.producesValue())
      checkReg(B, I.A, "destination");
    switch (I.Op) {
    case Opcode::Move:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::InByte:
    case Opcode::Alloc:
      checkReg(B, I.B, "source");
      break;
    case Opcode::Bin:
      checkReg(B, I.B, "lhs");
      checkReg(B, I.C, "rhs");
      break;
    case Opcode::BinImm:
      checkReg(B, I.B, "lhs");
      break;
    case Opcode::GlobalAddr:
      if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= M.Globals.size())
        errorAt(B, "gaddr references invalid global #" + std::to_string(I.Imm));
      break;
    case Opcode::Load:
      checkReg(B, I.B, "base");
      checkReg(B, I.C, "index");
      break;
    case Opcode::Store:
      checkReg(B, I.A, "base");
      checkReg(B, I.B, "index");
      checkReg(B, I.C, "value");
      break;
    case Opcode::Free:
      checkReg(B, I.A, "pointer");
      break;
    case Opcode::Call: {
      if (I.Callee >= M.Funcs.size()) {
        errorAt(B, "call to invalid function #" + std::to_string(I.Callee));
        break;
      }
      const Function &Callee = M.Funcs[I.Callee];
      if (I.NumArgs != Callee.NumParams)
        errorAt(B, "call to @" + Callee.Name + " passes " +
                       std::to_string(I.NumArgs) + " args, expected " +
                       std::to_string(Callee.NumParams));
      if (I.NumArgs > MaxCallArgs)
        errorAt(B, "call exceeds MaxCallArgs");
      for (unsigned K = 0; K < I.NumArgs && K < MaxCallArgs; ++K)
        checkReg(B, I.Args[K], "argument");
      break;
    }
    case Opcode::EdgeProbe:
    case Opcode::BlockProbe:
      if (I.Imm < 0)
        errorAt(B, std::string(opcodeName(I.Op)) + " has negative id " +
                       std::to_string(I.Imm));
      break;
    case Opcode::PathAdd:
    case Opcode::PathFlushBack:
      if (!F.HasPathReg)
        errorAt(B, "path probe in a function without a path register");
      break;
    case Opcode::PathFlushRet:
      if (!F.HasPathReg)
        errorAt(B, "path probe in a function without a path register");
      if (F.Blocks[B].Term.Kind != TermKind::Ret)
        errorAt(B, "path.flush.ret outside a return block");
      break;
    default:
      break;
    }
  }

  void verifyTerminator(uint32_t B, const Terminator &T) {
    switch (T.Kind) {
    case TermKind::Br:
      if (T.Succs.size() != 1) {
        errorAt(B, "br must have exactly one successor");
        return;
      }
      checkBlockRef(B, T.Succs[0]);
      break;
    case TermKind::CondBr:
      if (T.Succs.size() != 2) {
        errorAt(B, "condbr must have exactly two successors");
        return;
      }
      checkReg(B, T.Cond, "condition");
      checkBlockRef(B, T.Succs[0]);
      checkBlockRef(B, T.Succs[1]);
      break;
    case TermKind::Switch:
      if (T.Succs.empty() || T.CaseValues.size() + 1 != T.Succs.size()) {
        errorAt(B, "switch case/successor arity mismatch");
        return;
      }
      checkReg(B, T.Cond, "scrutinee");
      for (uint32_t S : T.Succs)
        checkBlockRef(B, S);
      break;
    case TermKind::Ret:
      if (!T.Succs.empty()) {
        errorAt(B, "ret must have no successors");
        return;
      }
      checkReg(B, T.Cond, "return value");
      break;
    }
  }

  const Module &M;
  const Function &F;
  VerifyResult &Result;
};

} // namespace

VerifyResult verifyFunction(const Module &M, const Function &F) {
  VerifyResult Result;
  FunctionVerifier(M, F, Result).run();
  return Result;
}

VerifyResult verifyModule(const Module &M) {
  VerifyResult Result;
  if (M.findFunction("main") < 0)
    Result.Errors.push_back("module " + M.Name + " has no @main entry");
  for (const Function &F : M.Funcs) {
    VerifyResult R = verifyFunction(M, F);
    for (auto &E : R.Errors)
      Result.Errors.push_back(std::move(E));
  }
  return Result;
}

} // namespace mir
} // namespace pathfuzz
