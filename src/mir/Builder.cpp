//===- Builder.cpp - Convenience construction of MIR ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "mir/Builder.h"

namespace pathfuzz {
namespace mir {

FunctionBuilder::FunctionBuilder(std::string Name, uint16_t NumParams) {
  F.Name = std::move(Name);
  F.NumParams = NumParams;
  F.NumRegs = NumParams;
  newBlock("entry");
}

Reg FunctionBuilder::newReg() {
  assert(F.NumRegs < UINT16_MAX && "register file exhausted");
  return F.NumRegs++;
}

uint32_t FunctionBuilder::newBlock(std::string Name) {
  uint32_t Index = static_cast<uint32_t>(F.Blocks.size());
  BasicBlock BB;
  BB.Name = Name.empty() ? ("bb" + std::to_string(Index)) : std::move(Name);
  F.Blocks.push_back(std::move(BB));
  Terminated.push_back(false);
  return Index;
}

void FunctionBuilder::setInsertPoint(uint32_t Block) {
  assert(Block < F.Blocks.size() && "invalid insertion block");
  CurBlock = Block;
}

Instr &FunctionBuilder::append(Opcode Op) {
  assert(!Terminated[CurBlock] && "appending to a terminated block");
  Instr I;
  I.Op = Op;
  I.Line = CurLine;
  I.Col = CurCol;
  I.Synth = SynthMode;
  F.Blocks[CurBlock].Instrs.push_back(I);
  return F.Blocks[CurBlock].Instrs.back();
}

Reg FunctionBuilder::emitConst(int64_t V) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Const);
  I.A = Dst;
  I.Imm = V;
  return Dst;
}

Reg FunctionBuilder::emitMove(Reg Src) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Move);
  I.A = Dst;
  I.B = Src;
  return Dst;
}

void FunctionBuilder::emitMoveInto(Reg Dst, Reg Src) {
  Instr &I = append(Opcode::Move);
  I.A = Dst;
  I.B = Src;
}

void FunctionBuilder::emitConstInto(Reg Dst, int64_t V) {
  Instr &I = append(Opcode::Const);
  I.A = Dst;
  I.Imm = V;
}

Reg FunctionBuilder::emitBin(BinOp Op, Reg L, Reg R) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Bin);
  I.BOp = Op;
  I.A = Dst;
  I.B = L;
  I.C = R;
  return Dst;
}

Reg FunctionBuilder::emitBinImm(BinOp Op, Reg L, int64_t Imm) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::BinImm);
  I.BOp = Op;
  I.A = Dst;
  I.B = L;
  I.Imm = Imm;
  return Dst;
}

Reg FunctionBuilder::emitNeg(Reg Src) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Neg);
  I.A = Dst;
  I.B = Src;
  return Dst;
}

Reg FunctionBuilder::emitNot(Reg Src) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Not);
  I.A = Dst;
  I.B = Src;
  return Dst;
}

Reg FunctionBuilder::emitInLen() {
  Reg Dst = newReg();
  Instr &I = append(Opcode::InLen);
  I.A = Dst;
  return Dst;
}

Reg FunctionBuilder::emitInByte(Reg Idx) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::InByte);
  I.A = Dst;
  I.B = Idx;
  return Dst;
}

Reg FunctionBuilder::emitAlloc(Reg Size) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Alloc);
  I.A = Dst;
  I.B = Size;
  return Dst;
}

Reg FunctionBuilder::emitGlobalAddr(uint32_t GlobalIndex) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::GlobalAddr);
  I.A = Dst;
  I.Imm = GlobalIndex;
  return Dst;
}

Reg FunctionBuilder::emitLoad(Reg Base, Reg Idx) {
  Reg Dst = newReg();
  Instr &I = append(Opcode::Load);
  I.A = Dst;
  I.B = Base;
  I.C = Idx;
  return Dst;
}

Reg FunctionBuilder::emitCall(uint32_t Callee, const std::vector<Reg> &Args) {
  assert(Args.size() <= MaxCallArgs && "too many call arguments");
  Reg Dst = newReg();
  Instr &I = append(Opcode::Call);
  I.A = Dst;
  I.Callee = Callee;
  I.NumArgs = static_cast<uint8_t>(Args.size());
  for (size_t K = 0; K < Args.size(); ++K)
    I.Args[K] = Args[K];
  return Dst;
}

void FunctionBuilder::emitStore(Reg Base, Reg Idx, Reg Val) {
  Instr &I = append(Opcode::Store);
  I.A = Base;
  I.B = Idx;
  I.C = Val;
}

void FunctionBuilder::emitFree(Reg Ptr) {
  Instr &I = append(Opcode::Free);
  I.A = Ptr;
}

void FunctionBuilder::emitAbort(int64_t SiteTag) {
  Instr &I = append(Opcode::Abort);
  I.Imm = SiteTag;
}

void FunctionBuilder::setBr(uint32_t Target) {
  assert(!Terminated[CurBlock] && "block already terminated");
  Terminator &T = F.Blocks[CurBlock].Term;
  T.Line = CurLine;
  T.Col = CurCol;
  T.Kind = TermKind::Br;
  T.Succs = {Target};
  Terminated[CurBlock] = true;
}

void FunctionBuilder::setCondBr(Reg Cond, uint32_t IfTrue, uint32_t IfFalse) {
  assert(!Terminated[CurBlock] && "block already terminated");
  Terminator &T = F.Blocks[CurBlock].Term;
  T.Line = CurLine;
  T.Col = CurCol;
  T.Kind = TermKind::CondBr;
  T.Cond = Cond;
  T.Succs = {IfTrue, IfFalse};
  Terminated[CurBlock] = true;
}

void FunctionBuilder::setSwitch(Reg Scrutinee, std::vector<int64_t> CaseValues,
                                std::vector<uint32_t> CaseTargets,
                                uint32_t DefaultTarget) {
  assert(!Terminated[CurBlock] && "block already terminated");
  assert(CaseValues.size() == CaseTargets.size() && "case arity mismatch");
  Terminator &T = F.Blocks[CurBlock].Term;
  T.Line = CurLine;
  T.Col = CurCol;
  T.Kind = TermKind::Switch;
  T.Cond = Scrutinee;
  T.Succs = std::move(CaseTargets);
  T.Succs.push_back(DefaultTarget);
  T.CaseValues = std::move(CaseValues);
  Terminated[CurBlock] = true;
}

void FunctionBuilder::setRet(Reg Value) {
  assert(!Terminated[CurBlock] && "block already terminated");
  Terminator &T = F.Blocks[CurBlock].Term;
  T.Line = CurLine;
  T.Col = CurCol;
  T.Kind = TermKind::Ret;
  T.Cond = Value;
  T.Succs.clear();
  Terminated[CurBlock] = true;
}

void FunctionBuilder::setRetConst(int64_t V) {
  Reg R = emitConst(V);
  setRet(R);
}

Function FunctionBuilder::take() {
  // Give every unterminated block a `ret 0` so the function is always
  // well-formed (the frontend may leave dead join blocks unterminated).
  // These fills are synthetic: no source attribution, invisible to lint.
  setCurLoc(0, 0);
  setSynth(true);
  for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
    if (Terminated[B])
      continue;
    setInsertPoint(B);
    setRetConst(0);
  }
  return std::move(F);
}

} // namespace mir
} // namespace pathfuzz
