//===- Builder.h - Convenience construction of MIR --------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// FunctionBuilder provides a fluent API for constructing MIR functions,
// used by the MiniLang lowering (src/lang) and directly by tests that need
// hand-crafted CFG shapes (e.g. the Ball-Larus property tests on random
// graphs).
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_MIR_BUILDER_H
#define PATHFUZZ_MIR_BUILDER_H

#include "mir/Mir.h"

namespace pathfuzz {
namespace mir {

/// Builds one function block by block. The builder owns a Function until
/// take() is called.
class FunctionBuilder {
public:
  FunctionBuilder(std::string Name, uint16_t NumParams);

  /// Allocate a fresh virtual register.
  Reg newReg();

  /// Create a new basic block and return its index. Does not change the
  /// insertion point.
  uint32_t newBlock(std::string Name = "");

  /// Set the block subsequent instructions are appended to.
  void setInsertPoint(uint32_t Block);
  uint32_t insertPoint() const { return CurBlock; }

  /// Source position stamped onto subsequently emitted instructions and
  /// terminators (0,0 = no attribution, the default for builder-made IR).
  void setCurLoc(uint32_t Line, uint32_t Col) {
    CurLine = Line;
    CurCol = Col;
  }
  /// Mark subsequently emitted instructions as compiler-synthesized (no
  /// source-level counterpart); see mir::Instr::Synth.
  void setSynth(bool On) { SynthMode = On; }

  // Instruction emitters; each returns the destination register where
  // applicable.
  Reg emitConst(int64_t V);
  Reg emitMove(Reg Src);
  /// Write into an existing register (lowering of mutable variables and
  /// control-flow joins in a non-SSA IR).
  void emitMoveInto(Reg Dst, Reg Src);
  void emitConstInto(Reg Dst, int64_t V);
  Reg emitBin(BinOp Op, Reg L, Reg R);
  Reg emitBinImm(BinOp Op, Reg L, int64_t Imm);
  Reg emitNeg(Reg Src);
  Reg emitNot(Reg Src);
  Reg emitInLen();
  Reg emitInByte(Reg Idx);
  Reg emitAlloc(Reg Size);
  Reg emitGlobalAddr(uint32_t GlobalIndex);
  Reg emitLoad(Reg Base, Reg Idx);
  Reg emitCall(uint32_t Callee, const std::vector<Reg> &Args);
  void emitStore(Reg Base, Reg Idx, Reg Val);
  void emitFree(Reg Ptr);
  void emitAbort(int64_t SiteTag);

  // Terminators.
  void setBr(uint32_t Target);
  void setCondBr(Reg Cond, uint32_t IfTrue, uint32_t IfFalse);
  void setSwitch(Reg Scrutinee, std::vector<int64_t> CaseValues,
                 std::vector<uint32_t> CaseTargets, uint32_t DefaultTarget);
  void setRet(Reg Value);
  /// Return constant V (emits a Const then Ret).
  void setRetConst(int64_t V);

  /// Whether the current block already has a terminator set explicitly.
  bool isTerminated() const { return Terminated[CurBlock]; }

  Function &function() { return F; }

  /// Finalize and move the function out of the builder. Blocks left
  /// unterminated get a `ret 0`.
  Function take();

private:
  Instr &append(Opcode Op);

  Function F;
  uint32_t CurBlock = 0;
  uint32_t CurLine = 0;
  uint32_t CurCol = 0;
  bool SynthMode = false;
  std::vector<bool> Terminated;
};

} // namespace mir
} // namespace pathfuzz

#endif // PATHFUZZ_MIR_BUILDER_H
