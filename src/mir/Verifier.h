//===- Verifier.h - Well-formedness checks for MIR --------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The verifier validates structural invariants of a module before it is
// instrumented or executed: register indices in range, successors valid,
// call targets and arities consistent, switch case arity, and (after
// instrumentation) probe placement sanity. Mirrors the role of LLVM's IR
// verifier between pass pipeline stages.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_MIR_VERIFIER_H
#define PATHFUZZ_MIR_VERIFIER_H

#include "mir/Mir.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace mir {

/// Verification outcome: empty Errors means the module is well-formed.
struct VerifyResult {
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
  std::string message() const;
};

/// Verify a single function within a module (the module provides callee
/// signatures and global bounds).
VerifyResult verifyFunction(const Module &M, const Function &F);

/// Verify the whole module.
VerifyResult verifyModule(const Module &M);

} // namespace mir
} // namespace pathfuzz

#endif // PATHFUZZ_MIR_VERIFIER_H
