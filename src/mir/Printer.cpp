//===- Printer.cpp - Textual dump of MIR ------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "mir/Printer.h"

namespace pathfuzz {
namespace mir {

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Move:
    return "move";
  case Opcode::Bin:
    return "bin";
  case Opcode::BinImm:
    return "binimm";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::InLen:
    return "inlen";
  case Opcode::InByte:
    return "inbyte";
  case Opcode::Alloc:
    return "alloc";
  case Opcode::GlobalAddr:
    return "gaddr";
  case Opcode::Load:
    return "load";
  case Opcode::Call:
    return "call";
  case Opcode::Store:
    return "store";
  case Opcode::Free:
    return "free";
  case Opcode::Abort:
    return "abort";
  case Opcode::EdgeProbe:
    return "edge.probe";
  case Opcode::BlockProbe:
    return "block.probe";
  case Opcode::PathAdd:
    return "path.add";
  case Opcode::PathFlushRet:
    return "path.flush.ret";
  case Opcode::PathFlushBack:
    return "path.flush.back";
  }
  return "<bad-op>";
}

const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::Shr:
    return "shr";
  case BinOp::Eq:
    return "eq";
  case BinOp::Ne:
    return "ne";
  case BinOp::Lt:
    return "lt";
  case BinOp::Le:
    return "le";
  case BinOp::Gt:
    return "gt";
  case BinOp::Ge:
    return "ge";
  }
  return "<bad-binop>";
}

static std::string reg(Reg R) { return "r" + std::to_string(R); }

std::string printInstr(const Instr &I, const Module *M) {
  std::string S;
  switch (I.Op) {
  case Opcode::Const:
    S = reg(I.A) + " = const " + std::to_string(I.Imm);
    break;
  case Opcode::Move:
    S = reg(I.A) + " = move " + reg(I.B);
    break;
  case Opcode::Bin:
    S = reg(I.A) + " = " + binOpName(I.BOp) + " " + reg(I.B) + ", " + reg(I.C);
    break;
  case Opcode::BinImm:
    S = reg(I.A) + " = " + binOpName(I.BOp) + " " + reg(I.B) + ", " +
        std::to_string(I.Imm);
    break;
  case Opcode::Neg:
    S = reg(I.A) + " = neg " + reg(I.B);
    break;
  case Opcode::Not:
    S = reg(I.A) + " = not " + reg(I.B);
    break;
  case Opcode::InLen:
    S = reg(I.A) + " = inlen";
    break;
  case Opcode::InByte:
    S = reg(I.A) + " = inbyte " + reg(I.B);
    break;
  case Opcode::Alloc:
    S = reg(I.A) + " = alloc " + reg(I.B);
    break;
  case Opcode::GlobalAddr:
    S = reg(I.A) + " = gaddr @" + std::to_string(I.Imm);
    if (M && I.Imm >= 0 && static_cast<size_t>(I.Imm) < M->Globals.size())
      S += " ; " + M->Globals[static_cast<size_t>(I.Imm)].Name;
    break;
  case Opcode::Load:
    S = reg(I.A) + " = load " + reg(I.B) + "[" + reg(I.C) + "]";
    break;
  case Opcode::Call: {
    S = reg(I.A) + " = call ";
    if (M && I.Callee < M->Funcs.size())
      S += "@" + M->Funcs[I.Callee].Name;
    else
      S += "#" + std::to_string(I.Callee);
    S += "(";
    for (unsigned K = 0; K < I.NumArgs; ++K) {
      if (K)
        S += ", ";
      S += reg(I.Args[K]);
    }
    S += ")";
    break;
  }
  case Opcode::Store:
    S = "store " + reg(I.A) + "[" + reg(I.B) + "] = " + reg(I.C);
    break;
  case Opcode::Free:
    S = "free " + reg(I.A);
    break;
  case Opcode::Abort:
    S = "abort #" + std::to_string(I.Imm);
    break;
  case Opcode::EdgeProbe:
    S = "edge.probe " + std::to_string(I.Imm);
    break;
  case Opcode::BlockProbe:
    S = "block.probe " + std::to_string(I.Imm);
    break;
  case Opcode::PathAdd:
    S = "path.add " + std::to_string(I.Imm);
    break;
  case Opcode::PathFlushRet:
    S = "path.flush.ret +" + std::to_string(I.Imm);
    break;
  case Opcode::PathFlushBack:
    S = "path.flush.back +" + std::to_string(I.Imm) + ", reset " +
        std::to_string(I.Imm2);
    break;
  }
  return S;
}

std::string printTerminator(const Terminator &T, const Function &F) {
  auto BlockName = [&](uint32_t Index) {
    if (Index < F.Blocks.size())
      return F.Blocks[Index].Name;
    return std::string("<bad-block-") + std::to_string(Index) + ">";
  };
  switch (T.Kind) {
  case TermKind::Br:
    return "br " + BlockName(T.Succs[0]);
  case TermKind::CondBr:
    return "condbr " + reg(T.Cond) + ", " + BlockName(T.Succs[0]) + ", " +
           BlockName(T.Succs[1]);
  case TermKind::Switch: {
    std::string S = "switch " + reg(T.Cond) + " [";
    for (size_t K = 0; K + 1 < T.Succs.size(); ++K) {
      if (K)
        S += ", ";
      S += std::to_string(T.CaseValues[K]) + " -> " + BlockName(T.Succs[K]);
    }
    S += "] default " + BlockName(T.Succs.back());
    return S;
  }
  case TermKind::Ret:
    return "ret " + reg(T.Cond);
  }
  return "<bad-term>";
}

std::string printFunction(const Function &F, const Module *M) {
  std::string S = "func @" + F.Name + "(" + std::to_string(F.NumParams) +
                  ") regs=" + std::to_string(F.NumRegs);
  if (F.HasPathReg)
    S += " ; pathreg r" + std::to_string(F.PathReg) + " init " +
         std::to_string(F.PathRegInit);
  S += " {\n";

  // CFG edge IDs in the canonical (block, slot) enumeration — the same
  // numbering cfg::CfgView assigns, recomputed here so the printer stays
  // free of a cfg dependency. The annotation lets probe constants in a
  // dump be matched against a probe plan's CfgEdgeIndex values by eye.
  std::vector<uint32_t> EdgeBase(F.Blocks.size() + 1, 0);
  for (uint32_t B = 0; B < F.Blocks.size(); ++B)
    EdgeBase[B + 1] = EdgeBase[B] + F.Blocks[B].Term.numSuccessors();

  for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    S += BB.Name + ":";
    if (BB.Term.numSuccessors() > 0) {
      S += " ; edges";
      for (uint32_t Slot = 0; Slot < BB.Term.numSuccessors(); ++Slot) {
        uint32_t Succ = BB.Term.Succs[Slot];
        S += " #" + std::to_string(EdgeBase[B] + Slot) + "->" +
             (Succ < F.Blocks.size() ? F.Blocks[Succ].Name
                                     : "<bad-block-" + std::to_string(Succ) +
                                           ">");
      }
    }
    S += "\n";
    for (const Instr &I : BB.Instrs)
      S += "  " + printInstr(I, M) + "\n";
    S += "  " + printTerminator(BB.Term, F) + "\n";
  }
  S += "}\n";
  return S;
}

std::string printModule(const Module &M) {
  std::string S = "; module " + M.Name + "\n";
  for (const auto &G : M.Globals)
    S += "global @" + G.Name + "[" + std::to_string(G.Size) + "]\n";
  for (const auto &F : M.Funcs)
    S += printFunction(F, &M);
  return S;
}

} // namespace mir
} // namespace pathfuzz
