//===- CoverageMap.h - AFL-style coverage map -------------------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// The fixed-size byte coverage map AFL-family fuzzers share with the
// target, plus the standard post-processing pipeline:
//
//  - classifyCounts(): hit counts are normalized into power-of-two buckets
//    (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+) so that only order-of-
//    magnitude count changes register as novelty.
//  - hasNewBits(): compares a classified trace against the "virgin" map
//    and reports no novelty / new hit-count bucket / brand-new entry,
//    exactly like AFL++'s has_new_bits, updating the virgin map.
//
// The paper keeps this machinery untouched and only changes what indexes
// the map (edges vs (path_id ^ function) values), so the same CoverageMap
// serves every fuzzer configuration in this reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_COV_COVERAGEMAP_H
#define PATHFUZZ_COV_COVERAGEMAP_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace pathfuzz {
namespace cov {

/// Novelty classification returned by hasNewBits.
enum class Novelty : uint8_t {
  None = 0,     ///< nothing new
  NewCounts = 1,///< an existing entry moved to a new hit-count bucket
  NewEdges = 2, ///< a map entry was hit for the first time
};

/// The per-execution trace map plus helpers. Size is a power of two.
class CoverageMap {
public:
  explicit CoverageMap(uint32_t SizeLog2 = 16);

  uint8_t *data() { return Map.data(); }
  const uint8_t *data() const { return Map.data(); }
  uint32_t size() const { return static_cast<uint32_t>(Map.size()); }
  uint32_t mask() const { return size() - 1; }

  /// Zero the map (before each execution).
  void reset() { std::memset(Map.data(), 0, Map.size()); }

  /// Bucket raw hit counts in place (AFL's classify_counts).
  void classifyCounts();

  /// Number of nonzero entries (AFL's count_bytes; the "map density").
  uint32_t countBytes() const;

  /// 64-bit checksum of the classified map (AFL's execution checksum used
  /// for calibration stability checks).
  uint64_t checksum() const;

  /// Bucket a single raw count (exposed for tests).
  static uint8_t bucketFor(uint8_t Count);

private:
  std::vector<uint8_t> Map;
};

/// The accumulated "virgin" view of everything seen so far. Starts all-FF.
class VirginMap {
public:
  explicit VirginMap(uint32_t Size);

  /// Compare a *classified* trace with the virgin map; updates the virgin
  /// map with anything new. Mirrors AFL++'s has_new_bits.
  Novelty hasNewBits(const CoverageMap &Trace);

  /// Non-updating variant.
  Novelty wouldHaveNewBits(const CoverageMap &Trace) const;

  /// Number of map entries observed at least once.
  uint32_t coveredEntries() const;

  const uint8_t *data() const { return Virgin.data(); }

  /// Overwrite the accumulated view with Size bytes captured from another
  /// virgin map (snapshot restore); false on size mismatch.
  bool restoreFrom(const uint8_t *Data, size_t Size) {
    if (Size != Virgin.size())
      return false;
    std::memcpy(Virgin.data(), Data, Size);
    return true;
  }

private:
  std::vector<uint8_t> Virgin;
};

} // namespace cov
} // namespace pathfuzz

#endif // PATHFUZZ_COV_COVERAGEMAP_H
