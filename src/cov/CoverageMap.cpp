//===- CoverageMap.cpp - AFL-style coverage map ------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cov/CoverageMap.h"

#include "support/Hashing.h"

#include <cassert>

namespace pathfuzz {
namespace cov {

namespace {

/// AFL's count_class_lookup: power-of-two hit-count buckets.
struct BucketLut {
  uint8_t Lut[256];
  BucketLut() {
    Lut[0] = 0;
    Lut[1] = 1;
    Lut[2] = 2;
    Lut[3] = 4;
    for (int I = 4; I <= 7; ++I)
      Lut[I] = 8;
    for (int I = 8; I <= 15; ++I)
      Lut[I] = 16;
    for (int I = 16; I <= 31; ++I)
      Lut[I] = 32;
    for (int I = 32; I <= 127; ++I)
      Lut[I] = 64;
    for (int I = 128; I <= 255; ++I)
      Lut[I] = 128;
  }
};

const BucketLut Buckets;

} // namespace

CoverageMap::CoverageMap(uint32_t SizeLog2) {
  assert(SizeLog2 >= 4 && SizeLog2 <= 24 && "unreasonable map size");
  Map.assign(1u << SizeLog2, 0);
}

void CoverageMap::classifyCounts() {
  // Word-at-a-time with zero skipping: traces are sparse and this runs on
  // every execution (AFL applies the same optimization).
  auto *Words = reinterpret_cast<uint64_t *>(Map.data());
  size_t NumWords = Map.size() / 8;
  for (size_t W = 0; W < NumWords; ++W) {
    if (!Words[W])
      continue;
    auto *Bytes = reinterpret_cast<uint8_t *>(&Words[W]);
    for (int I = 0; I < 8; ++I)
      Bytes[I] = Buckets.Lut[Bytes[I]];
  }
}

uint32_t CoverageMap::countBytes() const {
  uint32_t N = 0;
  for (uint8_t B : Map)
    N += (B != 0);
  return N;
}

uint64_t CoverageMap::checksum() const {
  return fnv1a(Map.data(), Map.size());
}

uint8_t CoverageMap::bucketFor(uint8_t Count) { return Buckets.Lut[Count]; }

VirginMap::VirginMap(uint32_t Size) { Virgin.assign(Size, 0xff); }

Novelty VirginMap::hasNewBits(const CoverageMap &Trace) {
  assert(Trace.size() == Virgin.size() && "map size mismatch");
  Novelty Result = Novelty::None;
  const auto *TW = reinterpret_cast<const uint64_t *>(Trace.data());
  auto *VW = reinterpret_cast<uint64_t *>(Virgin.data());
  size_t NumWords = Virgin.size() / 8;
  for (size_t W = 0; W < NumWords; ++W) {
    uint64_t Cur = TW[W];
    if (!Cur || !(Cur & VW[W]))
      continue;
    const auto *TB = reinterpret_cast<const uint8_t *>(&TW[W]);
    auto *VB = reinterpret_cast<uint8_t *>(&VW[W]);
    for (int I = 0; I < 8; ++I) {
      uint8_t C = TB[I];
      if (C && (C & VB[I])) {
        if (Result != Novelty::NewEdges)
          Result = (VB[I] == 0xff) ? Novelty::NewEdges : Novelty::NewCounts;
        VB[I] &= static_cast<uint8_t>(~C);
      }
    }
  }
  return Result;
}

Novelty VirginMap::wouldHaveNewBits(const CoverageMap &Trace) const {
  assert(Trace.size() == Virgin.size() && "map size mismatch");
  Novelty Result = Novelty::None;
  const uint8_t *T = Trace.data();
  for (size_t I = 0; I < Virgin.size(); ++I) {
    uint8_t Cur = T[I];
    uint8_t V = Virgin[I];
    if (Cur && (Cur & V)) {
      if (V == 0xff)
        return Novelty::NewEdges;
      Result = Novelty::NewCounts;
    }
  }
  return Result;
}

uint32_t VirginMap::coveredEntries() const {
  uint32_t N = 0;
  for (uint8_t V : Virgin)
    N += (V != 0xff);
  return N;
}

} // namespace cov
} // namespace pathfuzz
