//===- Liveness.cpp - Register liveness over MIR ------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/Dataflow.h"
#include "analysis/UseDef.h"

namespace pathfuzz {
namespace analysis {

namespace {

struct LivenessProblem {
  using Domain = BitVec;
  static constexpr Direction Dir = Direction::Backward;

  const mir::Function &F;
  const cfg::CfgView &G;
  /// Per block: registers read before any write (upward-exposed uses) and
  /// registers written anywhere in the block.
  std::vector<BitVec> Use, Kill;

  LivenessProblem(const mir::Function &F, const cfg::CfgView &G) : F(F), G(G) {
    unsigned N = F.numBlocks();
    Use.assign(N, BitVec(F.NumRegs));
    Kill.assign(N, BitVec(F.NumRegs));
    for (uint32_t B = 0; B < N; ++B) {
      for (const mir::Instr &I : F.Blocks[B].Instrs) {
        forEachUse(F, I, [&](mir::Reg R) {
          if (!Kill[B].test(R))
            Use[B].set(R);
        });
        forEachDef(F, I, [&](mir::Reg R) { Kill[B].set(R); });
      }
      forEachTermUse(F.Blocks[B].Term, [&](mir::Reg R) {
        if (!Kill[B].test(R))
          Use[B].set(R);
      });
    }
  }

  Domain top() const { return BitVec(F.NumRegs); }
  /// Nothing is live after a return.
  Domain boundary() const { return BitVec(F.NumRegs); }
  bool meet(Domain &Into, const Domain &V) const { return Into.unionWith(V); }
  Domain transfer(uint32_t Block, const Domain &In) const {
    // LiveIn = Use  ∪ (LiveOut \ Kill); In here is the block's LiveOut.
    BitVec Out(F.NumRegs);
    for (uint32_t R = 0; R < F.NumRegs; ++R)
      if (Use[Block].test(R) || (In.test(R) && !Kill[Block].test(R)))
        Out.set(R);
    return Out;
  }
  void widen(Domain &Into, const Domain &V) const { meet(Into, V); }
};

} // namespace

LivenessResult computeLiveness(const mir::Function &F, const cfg::CfgView &G) {
  LivenessProblem P(F, G);
  DataflowResult<BitVec> R = solve(G, P);
  LivenessResult L;
  // Backward problem: solver In = value at block end, Out = at block start.
  L.LiveOut = std::move(R.In);
  L.LiveIn = std::move(R.Out);
  return L;
}

} // namespace analysis
} // namespace pathfuzz
