//===- Dominators.h - (Post-)dominator trees and loop info ------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Dominator and post-dominator trees over a CfgView, computed with the
// Cooper-Harvey-Kennedy iterative algorithm, plus the natural-loop summary.
// These used to live in src/cfg; they moved here with the rest of the
// analyses so src/cfg stays a pure graph view and there is exactly one
// dominance implementation for the planner, the auditor and the lints.
//
// The post-dominator tree is dominance on the reverse graph rooted at a
// virtual exit node that every Ret block feeds — the same EXIT convention
// the Ball-Larus DAG uses, so "post-dominates" means the same thing to the
// auditor as to BLDag.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_DOMINATORS_H
#define PATHFUZZ_ANALYSIS_DOMINATORS_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace analysis {

/// Dominator tree over the reachable blocks of a function.
class DominatorTree {
public:
  explicit DominatorTree(const cfg::CfgView &G);

  /// Immediate dominator of a block; the entry block's idom is itself.
  /// Unreachable blocks report UINT32_MAX.
  uint32_t idom(uint32_t Block) const { return Idom[Block]; }

  /// Whether A dominates B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> Idom;
  std::vector<uint32_t> RpoNumber;
};

/// Post-dominator tree: dominance on the reversed CFG from a virtual exit
/// that every Ret-terminated (reachable) block feeds. Blocks that cannot
/// reach any exit (e.g. bodies of infinite loops) have no post-dominator
/// information and report UINT32_MAX.
class PostDominatorTree {
public:
  explicit PostDominatorTree(const cfg::CfgView &G);

  /// Virtual-exit sentinel returned by ipostdom() for blocks whose only
  /// post-dominator is the function exit itself.
  static constexpr uint32_t VirtualExit = UINT32_MAX - 1;

  /// Immediate post-dominator of a block: another block, VirtualExit, or
  /// UINT32_MAX when the block cannot reach an exit.
  uint32_t ipostdom(uint32_t Block) const { return Ipdom[Block]; }

  /// Whether A post-dominates B (reflexive). The virtual exit
  /// post-dominates every block that reaches an exit.
  bool postDominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> Ipdom;
};

/// Natural-loop summary derived from back edges.
struct LoopInfo {
  /// Loop header block indices (deduplicated, ascending).
  std::vector<uint32_t> Headers;
  /// For each block, the innermost loop header it belongs to, or
  /// UINT32_MAX if it is not in any loop.
  std::vector<uint32_t> InnermostHeader;

  static LoopInfo compute(const cfg::CfgView &G);
};

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_DOMINATORS_H
