//===- ReachingDefs.cpp - Reaching definitions over MIR -----------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReachingDefs.h"

#include "analysis/Dataflow.h"
#include "analysis/UseDef.h"

namespace pathfuzz {
namespace analysis {

namespace {

struct ReachingProblem {
  using Domain = BitVec;
  static constexpr Direction Dir = Direction::Forward;

  uint32_t NumSites;
  BitVec Boundary;
  /// Per block: sites generated in the block (a def not overwritten later
  /// in the same block) and, per site, whether the block kills it.
  std::vector<BitVec> Gen;
  /// Per block: registers fully redefined by the block (kills all other
  /// sites of those registers).
  std::vector<std::vector<bool>> KillReg; // [block][reg]
  const std::vector<DefSite> *Sites;
  uint16_t NumRegs;

  Domain top() const { return BitVec(NumSites); }
  Domain boundary() const { return Boundary; }
  bool meet(Domain &Into, const Domain &V) const { return Into.unionWith(V); }
  Domain transfer(uint32_t Block, const Domain &In) const {
    BitVec Out(NumSites);
    for (uint32_t S = 0; S < NumSites; ++S) {
      if (In.test(S) && !KillReg[Block][(*Sites)[S].R])
        Out.set(S);
    }
    Out.unionWith(Gen[Block]);
    return Out;
  }
  void widen(Domain &Into, const Domain &V) const { meet(Into, V); }
};

} // namespace

ReachingDefs::ReachingDefs(const mir::Function &F, const cfg::CfgView &G,
                           ReachingDefsOptions Opts)
    : F(F), Opts(Opts) {
  unsigned N = F.numBlocks();
  EntrySite.assign(F.NumRegs, UINT32_MAX);

  // Entry pseudo-sites first (non-parameter registers only), then the
  // instruction defs in program order.
  for (mir::Reg R = F.NumParams; R < F.NumRegs; ++R) {
    EntrySite[R] = static_cast<uint32_t>(Sites.size());
    DefSite S;
    S.R = R;
    S.IsEntryPseudo = true;
    Sites.push_back(S);
  }
  for (uint32_t B = 0; B < N; ++B)
    for (uint32_t K = 0; K < F.Blocks[B].Instrs.size(); ++K) {
      const mir::Instr &I = F.Blocks[B].Instrs[K];
      if (!defCounts(I))
        continue;
      forEachDef(F, I, [&](mir::Reg R) {
        DefSite S;
        S.R = R;
        S.Block = B;
        S.InstrIndex = K;
        Sites.push_back(S);
      });
    }

  ReachingProblem P;
  P.NumSites = static_cast<uint32_t>(Sites.size());
  P.Sites = &Sites;
  P.NumRegs = F.NumRegs;
  P.Boundary = BitVec(P.NumSites);
  for (mir::Reg R = 0; R < F.NumRegs; ++R)
    if (EntrySite[R] != UINT32_MAX)
      P.Boundary.set(EntrySite[R]);

  P.Gen.assign(N, BitVec(P.NumSites));
  P.KillReg.assign(N, std::vector<bool>(F.NumRegs, false));
  // Map (block, instr) -> site index for Gen computation.
  uint32_t SiteCursor = static_cast<uint32_t>(F.NumRegs - F.NumParams);
  for (uint32_t B = 0; B < N; ++B) {
    std::vector<uint32_t> LastSiteOfReg(F.NumRegs, UINT32_MAX);
    for (uint32_t K = 0; K < F.Blocks[B].Instrs.size(); ++K) {
      const mir::Instr &I = F.Blocks[B].Instrs[K];
      if (!defCounts(I))
        continue;
      forEachDef(F, I, [&](mir::Reg R) {
        LastSiteOfReg[R] = SiteCursor;
        P.KillReg[B][R] = true;
        ++SiteCursor;
      });
    }
    for (mir::Reg R = 0; R < F.NumRegs; ++R)
      if (LastSiteOfReg[R] != UINT32_MAX)
        P.Gen[B].set(LastSiteOfReg[R]);
  }

  DataflowResult<BitVec> R = solve(G, P);
  In = std::move(R.In);
}

bool ReachingDefs::mayBeUninitAt(uint32_t Block, uint32_t InstrIndex,
                                 mir::Reg R) const {
  if (EntrySite[R] == UINT32_MAX)
    return false; // parameter: always initialized
  if (!In[Block].test(EntrySite[R]))
    return false;
  // The pseudo-def reaches the block; check no def of R precedes the use
  // within the block.
  for (uint32_t K = 0; K < InstrIndex; ++K) {
    const mir::Instr &I = F.Blocks[Block].Instrs[K];
    if (!defCounts(I))
      continue;
    bool Defs = false;
    forEachDef(F, I, [&](mir::Reg D) { Defs |= D == R; });
    if (Defs)
      return false;
  }
  return true;
}

} // namespace analysis
} // namespace pathfuzz
