//===- BitVec.h - Dense fixed-width bit vector ------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// A small word-packed bit set used as the lattice element of the set-based
// dataflow problems (liveness over registers, reaching definitions over def
// sites). std::vector<bool> would work but unioning word-at-a-time is what
// makes the worklist solver cheap on the register counts MiniLang functions
// actually have.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_BITVEC_H
#define PATHFUZZ_ANALYSIS_BITVEC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace analysis {

class BitVec {
public:
  BitVec() = default;
  explicit BitVec(uint32_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  uint32_t size() const { return NumBits; }

  bool test(uint32_t I) const {
    return (Words[I >> 6] >> (I & 63)) & 1;
  }
  void set(uint32_t I) { Words[I >> 6] |= uint64_t(1) << (I & 63); }
  void reset(uint32_t I) { Words[I >> 6] &= ~(uint64_t(1) << (I & 63)); }

  /// this |= O; returns true if any bit changed.
  bool unionWith(const BitVec &O) {
    bool Changed = false;
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t New = Words[W] | O.Words[W];
      Changed |= New != Words[W];
      Words[W] = New;
    }
    return Changed;
  }

  bool operator==(const BitVec &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }

  uint32_t count() const {
    uint32_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<uint32_t>(__builtin_popcountll(W));
    return N;
  }

private:
  uint32_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_BITVEC_H
