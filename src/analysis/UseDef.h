//===- UseDef.h - Register use/def enumeration for MIR ----------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Per-instruction register use/def enumeration shared by liveness, reaching
// definitions and the lint passes, so no analysis hand-rolls (and gets
// subtly wrong) the operand roles of each opcode. Probe opcodes are handled
// too: PathAdd and the flushes read (and PathAdd/PathFlushBack write) the
// function's path register, which is why the callbacks take the Function.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_USEDEF_H
#define PATHFUZZ_ANALYSIS_USEDEF_H

#include "mir/Mir.h"

namespace pathfuzz {
namespace analysis {

/// Invoke Fn(Reg) for every register the instruction reads.
template <typename Callback>
void forEachUse(const mir::Function &F, const mir::Instr &I, Callback Fn) {
  using mir::Opcode;
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::InLen:
  case Opcode::GlobalAddr:
  case Opcode::Abort:
  case Opcode::EdgeProbe:
  case Opcode::BlockProbe:
    break;
  case Opcode::Move:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::InByte:
  case Opcode::Alloc:
  case Opcode::BinImm:
    Fn(I.B);
    break;
  case Opcode::Bin:
  case Opcode::Load:
    Fn(I.B);
    Fn(I.C);
    break;
  case Opcode::Call:
    for (unsigned K = 0; K < I.NumArgs; ++K)
      Fn(I.Args[K]);
    break;
  case Opcode::Store:
    Fn(I.A);
    Fn(I.B);
    Fn(I.C);
    break;
  case Opcode::Free:
    Fn(I.A);
    break;
  case Opcode::PathAdd:
  case Opcode::PathFlushRet:
  case Opcode::PathFlushBack:
    if (F.HasPathReg)
      Fn(F.PathReg);
    break;
  }
}

/// Invoke Fn(Reg) for every register the instruction writes.
template <typename Callback>
void forEachDef(const mir::Function &F, const mir::Instr &I, Callback Fn) {
  using mir::Opcode;
  if (I.producesValue()) {
    Fn(I.A);
    return;
  }
  // PathAdd accumulates into the path register and PathFlushBack resets it;
  // PathFlushRet only reads it.
  if ((I.Op == Opcode::PathAdd || I.Op == Opcode::PathFlushBack) &&
      F.HasPathReg)
    Fn(F.PathReg);
}

/// Invoke Fn(Reg) for every register the block's terminator reads.
template <typename Callback>
void forEachTermUse(const mir::Terminator &T, Callback Fn) {
  switch (T.Kind) {
  case mir::TermKind::Br:
    break;
  case mir::TermKind::CondBr:
  case mir::TermKind::Switch:
  case mir::TermKind::Ret:
    Fn(T.Cond);
    break;
  }
}

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_USEDEF_H
