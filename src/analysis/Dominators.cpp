//===- Dominators.cpp - (Post-)dominator trees and loop info -----------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "cfg/Dfs.h"

#include <algorithm>

namespace pathfuzz {
namespace analysis {

namespace {

/// Cooper-Harvey-Kennedy iteration shared by both tree directions: given
/// the nodes in reverse postorder (root first) and each node's flow
/// predecessors, fill Idom (pre-sized, UINT32_MAX = unknown/unreachable).
void runChk(const std::vector<uint32_t> &Rpo,
            const std::vector<std::vector<uint32_t>> &Preds,
            std::vector<uint32_t> &Idom) {
  if (Rpo.empty())
    return;
  std::vector<uint32_t> RpoNumber(Idom.size(), UINT32_MAX);
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = I;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  uint32_t Root = Rpo[0];
  Idom[Root] = Root;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == Root)
        continue;
      uint32_t NewIdom = UINT32_MAX;
      for (uint32_t P : Preds[B]) {
        if (RpoNumber[P] == UINT32_MAX || Idom[P] == UINT32_MAX)
          continue;
        NewIdom = (NewIdom == UINT32_MAX) ? P : Intersect(NewIdom, P);
      }
      if (NewIdom != UINT32_MAX && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

DominatorTree::DominatorTree(const cfg::CfgView &G) {
  unsigned N = G.numBlocks();
  Idom.assign(N, UINT32_MAX);
  if (N == 0)
    return;

  // topoOrder() is the reversed postorder of the canonical DFS, i.e. an RPO
  // of the full graph restricted to reachable blocks — exactly the
  // iteration order CHK wants.
  std::vector<std::vector<uint32_t>> Preds(N);
  for (uint32_t B = 0; B < N; ++B)
    for (uint32_t EdgeIndex : G.predEdges(B)) {
      uint32_t P = G.edges()[EdgeIndex].Src;
      if (G.isReachable(P))
        Preds[B].push_back(P);
    }
  runChk(G.topoOrder(), Preds, Idom);
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (B >= Idom.size() || Idom[B] == UINT32_MAX)
    return false;
  uint32_t Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    uint32_t Up = Idom[Cur];
    if (Up == Cur)
      return false; // reached the entry
    Cur = Up;
  }
}

//===----------------------------------------------------------------------===//
// PostDominatorTree
//===----------------------------------------------------------------------===//

PostDominatorTree::PostDominatorTree(const cfg::CfgView &G) {
  unsigned N = G.numBlocks();
  Ipdom.assign(N, UINT32_MAX);
  if (N == 0)
    return;

  // Reverse graph over {blocks, virtual exit = N}: each forward edge Src->
  // Dst becomes Dst->Src, and the virtual exit points at every reachable
  // Ret block. Only forward-reachable blocks participate.
  uint32_t ExitNode = N;
  std::vector<std::vector<uint32_t>> Out(N + 1);
  std::vector<uint32_t> EdgeDst;
  auto addRevEdge = [&](uint32_t From, uint32_t To) {
    Out[From].push_back(static_cast<uint32_t>(EdgeDst.size()));
    EdgeDst.push_back(To);
  };
  for (uint32_t B = 0; B < N; ++B) {
    if (!G.isReachable(B))
      continue;
    if (G.isExitBlock(B))
      addRevEdge(ExitNode, B);
    for (uint32_t EdgeIndex : G.succEdges(B))
      addRevEdge(G.edges()[EdgeIndex].Dst, B);
  }

  cfg::DfsResult R = cfg::depthFirstWalk(N + 1, ExitNode, Out, EdgeDst);
  std::vector<uint32_t> Rpo(R.PostOrder.rbegin(), R.PostOrder.rend());

  // Flow predecessors in the reverse graph = forward successors, plus the
  // virtual exit for Ret blocks.
  std::vector<std::vector<uint32_t>> Preds(N + 1);
  for (uint32_t B = 0; B < N; ++B) {
    if (!G.isReachable(B))
      continue;
    if (G.isExitBlock(B))
      Preds[B].push_back(ExitNode);
    for (uint32_t EdgeIndex : G.succEdges(B))
      Preds[B].push_back(G.edges()[EdgeIndex].Dst);
  }

  std::vector<uint32_t> IdomExt(N + 1, UINT32_MAX);
  runChk(Rpo, Preds, IdomExt);

  for (uint32_t B = 0; B < N; ++B) {
    if (IdomExt[B] == UINT32_MAX)
      continue;
    Ipdom[B] = IdomExt[B] == ExitNode ? VirtualExit : IdomExt[B];
  }
}

bool PostDominatorTree::postDominates(uint32_t A, uint32_t B) const {
  if (A == VirtualExit)
    return B >= Ipdom.size() ? false : Ipdom[B] != UINT32_MAX;
  if (B == VirtualExit)
    return A == VirtualExit;
  if (B >= Ipdom.size() || Ipdom[B] == UINT32_MAX)
    return false;
  uint32_t Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    if (Cur == VirtualExit)
      return false;
    Cur = Ipdom[Cur];
  }
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

LoopInfo LoopInfo::compute(const cfg::CfgView &G) {
  LoopInfo LI;
  unsigned N = G.numBlocks();
  LI.InnermostHeader.assign(N, UINT32_MAX);

  // Collect natural loops: for each back edge Latch->Header, the loop body
  // is Header plus everything that reaches Latch without going through
  // Header (reverse flood fill).
  struct Loop {
    uint32_t Header;
    std::vector<uint32_t> Blocks;
  };
  std::vector<Loop> Loops;

  for (uint32_t EdgeIndex : G.backEdgeIndices()) {
    const cfg::Edge &E = G.edges()[EdgeIndex];
    uint32_t Header = E.Dst;
    uint32_t Latch = E.Src;

    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<uint32_t> Work;
    if (!InLoop[Latch]) {
      InLoop[Latch] = true;
      Work.push_back(Latch);
    }
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t PredEdge : G.predEdges(B)) {
        uint32_t P = G.edges()[PredEdge].Src;
        if (!G.isReachable(P) || InLoop[P])
          continue;
        InLoop[P] = true;
        Work.push_back(P);
      }
    }

    Loop L;
    L.Header = Header;
    for (uint32_t B = 0; B < N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
    Loops.push_back(std::move(L));
  }

  // Larger loops first; smaller (inner) loops overwrite, leaving the
  // innermost header for each block.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    return A.Blocks.size() > B.Blocks.size();
  });
  for (const Loop &L : Loops)
    for (uint32_t B : L.Blocks)
      LI.InnermostHeader[B] = L.Header;

  for (const Loop &L : Loops)
    LI.Headers.push_back(L.Header);
  std::sort(LI.Headers.begin(), LI.Headers.end());
  LI.Headers.erase(std::unique(LI.Headers.begin(), LI.Headers.end()),
                   LI.Headers.end());
  return LI;
}

} // namespace analysis
} // namespace pathfuzz
