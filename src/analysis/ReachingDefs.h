//===- ReachingDefs.h - Reaching definitions over MIR -----------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Forward may-analysis over definition *sites*: which writes of each
// register may reach a given point. Every instruction def is a site; in
// addition each register gets one pseudo-site "uninitialized at entry"
// (parameters excluded — they arrive initialized), which is what the
// use-before-init lint queries: a use is flagged when the uninitialized
// pseudo-def of its register reaches it.
//
// Synthetic defs (mir::Instr::Synth — the frontend's implicit zero-inits)
// can be excluded so that `var x; use(x)` is reported even though the
// lowering materialized `x = 0`.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_REACHINGDEFS_H
#define PATHFUZZ_ANALYSIS_REACHINGDEFS_H

#include "analysis/BitVec.h"
#include "cfg/Cfg.h"
#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace analysis {

/// One definition site of a register.
struct DefSite {
  mir::Reg R = 0;
  uint32_t Block = 0;     ///< meaningless for entry pseudo-defs
  uint32_t InstrIndex = 0; ///< meaningless for entry pseudo-defs
  bool IsEntryPseudo = false; ///< "uninitialized at function entry"
};

struct ReachingDefsOptions {
  /// Treat compiler-synthesized defs (Instr::Synth) as if they did not
  /// define their register; the entry pseudo-def survives through them.
  bool IgnoreSynthDefs = false;
};

class ReachingDefs {
public:
  ReachingDefs(const mir::Function &F, const cfg::CfgView &G,
               ReachingDefsOptions Opts = {});

  const std::vector<DefSite> &sites() const { return Sites; }

  /// Def sites that may reach the entry of a block (bit = site index).
  const BitVec &reachingIn(uint32_t Block) const { return In[Block]; }

  /// Index of the "uninitialized at entry" pseudo-site for a register, or
  /// UINT32_MAX for parameters (which have none).
  uint32_t entryPseudoSite(mir::Reg R) const { return EntrySite[R]; }

  /// Walk a block forward applying kills, and report whether the entry
  /// pseudo-def of R still reaches just before instruction InstrIndex —
  /// i.e. whether R may still be uninitialized at that use.
  bool mayBeUninitAt(uint32_t Block, uint32_t InstrIndex, mir::Reg R) const;

private:
  const mir::Function &F;
  ReachingDefsOptions Opts;
  std::vector<DefSite> Sites;
  std::vector<uint32_t> EntrySite; ///< per reg, UINT32_MAX if none
  std::vector<BitVec> In;

  bool defCounts(const mir::Instr &I) const {
    return !(Opts.IgnoreSynthDefs && I.Synth);
  }
};

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_REACHINGDEFS_H
