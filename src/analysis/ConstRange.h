//===- ConstRange.h - Integer constant/range propagation --------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Forward abstract interpretation of MIR over a small value lattice:
//
//            Top  (any value)
//             |
//   Int[lo,hi] / GlobalPtr(g) / HeapPtr[lo,hi]   (interval, pointer shapes)
//             |
//           Bottom (no value / unreachable)
//
// An environment maps every register to an AbsVal; block environments are
// joined pointwise at CFG merges. The lattice has infinite ascending
// chains (intervals can grow one step per loop iteration), so the solver
// widens interval bounds to ±inf at back-edge destinations.
//
// Clients: the DivByZero / ConstOutOfBounds / negative-alloc lints query
// the per-block input environments and replay instructions with
// applyInstr; the auditor does not need ranges but shares the framework.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_CONSTRANGE_H
#define PATHFUZZ_ANALYSIS_CONSTRANGE_H

#include "cfg/Cfg.h"
#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace analysis {

/// One abstract value.
struct AbsVal {
  enum class Kind : uint8_t {
    Bottom,    ///< no value reaches here
    Int,       ///< an integer in [Lo, Hi]
    GlobalPtr, ///< pointer to global #GlobalIndex, offset 0
    HeapPtr,   ///< pointer to a heap object of [Lo, Hi] cells
    Top,       ///< anything
  };

  Kind K = Kind::Bottom;
  int64_t Lo = 0; ///< Int: value range; HeapPtr: object size range
  int64_t Hi = 0;
  uint32_t GlobalIndex = 0;

  static AbsVal bottom() { return {}; }
  static AbsVal top() {
    AbsVal V;
    V.K = Kind::Top;
    return V;
  }
  static AbsVal intRange(int64_t Lo, int64_t Hi) {
    AbsVal V;
    V.K = Kind::Int;
    V.Lo = Lo;
    V.Hi = Hi;
    return V;
  }
  static AbsVal intConst(int64_t C) { return intRange(C, C); }
  static AbsVal globalPtr(uint32_t Index) {
    AbsVal V;
    V.K = Kind::GlobalPtr;
    V.GlobalIndex = Index;
    return V;
  }
  static AbsVal heapPtr(int64_t SizeLo, int64_t SizeHi) {
    AbsVal V;
    V.K = Kind::HeapPtr;
    V.Lo = SizeLo;
    V.Hi = SizeHi;
    return V;
  }

  bool isConst() const { return K == Kind::Int && Lo == Hi; }

  bool operator==(const AbsVal &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Bottom:
    case Kind::Top:
      return true;
    case Kind::Int:
    case Kind::HeapPtr:
      return Lo == O.Lo && Hi == O.Hi;
    case Kind::GlobalPtr:
      return GlobalIndex == O.GlobalIndex;
    }
    return false;
  }

  /// Least upper bound.
  static AbsVal join(const AbsVal &A, const AbsVal &B);
  /// join + interval widening: bounds that grew past Prev's jump to ±inf.
  static AbsVal widenFrom(const AbsVal &Prev, const AbsVal &Next);
};

/// Abstract register environment at one program point. An infeasible
/// environment means no execution reaches the point.
struct AbsEnv {
  bool Feasible = false;
  std::vector<AbsVal> Regs;

  static AbsEnv infeasible(uint16_t NumRegs) {
    AbsEnv E;
    E.Regs.assign(NumRegs, AbsVal::bottom());
    return E;
  }
  static AbsEnv entry(uint16_t NumRegs) {
    AbsEnv E;
    E.Feasible = true;
    E.Regs.assign(NumRegs, AbsVal::top());
    return E;
  }
};

/// Abstractly execute one instruction against Env (in place). Public so
/// the lint passes can replay a block from its input environment and
/// inspect operand values at each instruction.
void applyInstr(const mir::Function &F, const mir::Instr &I, AbsEnv &Env);

/// Per-block input/output environments at the fixed point.
struct ConstRangeResult {
  std::vector<AbsEnv> In;
  std::vector<AbsEnv> Out;
};

ConstRangeResult computeConstRanges(const mir::Function &F,
                                    const cfg::CfgView &G);

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_CONSTRANGE_H
