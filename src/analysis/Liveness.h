//===- Liveness.h - Register liveness over MIR ------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Classic backward may-analysis: a register is live at a point if some path
// from there reads it before writing it. Built on the generic worklist
// solver; the per-block Use/Kill summaries come from analysis::forEachUse /
// forEachDef, so probe reads of the path register are accounted for.
//
// The dead-store lint walks blocks backward from LiveOut with the same
// gen/kill rules to find writes that nothing reads.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_LIVENESS_H
#define PATHFUZZ_ANALYSIS_LIVENESS_H

#include "analysis/BitVec.h"
#include "cfg/Cfg.h"
#include "mir/Mir.h"

#include <vector>

namespace pathfuzz {
namespace analysis {

/// Per-block live register sets (bit I = register I).
struct LivenessResult {
  std::vector<BitVec> LiveIn;  ///< live at block entry
  std::vector<BitVec> LiveOut; ///< live after the terminator
};

LivenessResult computeLiveness(const mir::Function &F, const cfg::CfgView &G);

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_LIVENESS_H
