//===- ConstRange.cpp - Integer constant/range propagation --------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The abstract transfer mirrors the VM (src/vm/Vm.cpp) exactly: Add, Sub,
// Mul and Shl wrap in two's complement, shifts mask their count with 63,
// Div/Rem use the INT64_MIN/-1 special cases. Whenever a result interval
// would leave int64 the value degrades to the full range rather than a
// wrapped interval — sound, since the wrapped value is certainly in
// [INT64_MIN, INT64_MAX].
//
//===----------------------------------------------------------------------===//

#include "analysis/ConstRange.h"

#include "analysis/Dataflow.h"

#include <algorithm>

namespace pathfuzz {
namespace analysis {

AbsVal AbsVal::join(const AbsVal &A, const AbsVal &B) {
  using K = Kind;
  if (A.K == K::Bottom)
    return B;
  if (B.K == K::Bottom)
    return A;
  if (A.K == K::Top || B.K == K::Top || A.K != B.K)
    return top();
  switch (A.K) {
  case K::Int:
    return intRange(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
  case K::HeapPtr:
    return heapPtr(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
  case K::GlobalPtr:
    return A.GlobalIndex == B.GlobalIndex ? A : top();
  default:
    return top();
  }
}

AbsVal AbsVal::widenFrom(const AbsVal &Prev, const AbsVal &Next) {
  AbsVal J = join(Prev, Next);
  if (Prev.K != J.K)
    return J; // shape changed; join already is an upper bound
  if (J.K == Kind::Int || J.K == Kind::HeapPtr) {
    if (J.Lo < Prev.Lo)
      J.Lo = INT64_MIN;
    if (J.Hi > Prev.Hi)
      J.Hi = INT64_MAX;
  }
  return J;
}

namespace {

AbsVal fullInt() { return AbsVal::intRange(INT64_MIN, INT64_MAX); }

bool bothInt(const AbsVal &L, const AbsVal &R) {
  return L.K == AbsVal::Kind::Int && R.K == AbsVal::Kind::Int;
}

/// Interval from a set of __int128 corner values; full range on overflow.
AbsVal fromCorners(std::initializer_list<__int128> Corners) {
  __int128 Lo = *Corners.begin(), Hi = *Corners.begin();
  for (__int128 C : Corners) {
    Lo = std::min(Lo, C);
    Hi = std::max(Hi, C);
  }
  if (Lo < INT64_MIN || Hi > INT64_MAX)
    return fullInt();
  return AbsVal::intRange(static_cast<int64_t>(Lo), static_cast<int64_t>(Hi));
}

int64_t vmDiv(int64_t L, int64_t R) {
  return (L == INT64_MIN && R == -1) ? INT64_MIN : L / R;
}

AbsVal evalBin(mir::BinOp Op, const AbsVal &L, const AbsVal &R) {
  using mir::BinOp;
  // Comparisons are defined on anything the VM can hold, but we only
  // reason about integer operands; pointer comparisons stay [0,1].
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge: {
    if (!bothInt(L, R))
      return AbsVal::intRange(0, 1);
    auto Decided = [](bool V) { return AbsVal::intConst(V ? 1 : 0); };
    switch (Op) {
    case BinOp::Lt:
      if (L.Hi < R.Lo)
        return Decided(true);
      if (L.Lo >= R.Hi)
        return Decided(false);
      break;
    case BinOp::Le:
      if (L.Hi <= R.Lo)
        return Decided(true);
      if (L.Lo > R.Hi)
        return Decided(false);
      break;
    case BinOp::Gt:
      if (L.Lo > R.Hi)
        return Decided(true);
      if (L.Hi <= R.Lo)
        return Decided(false);
      break;
    case BinOp::Ge:
      if (L.Lo >= R.Hi)
        return Decided(true);
      if (L.Hi < R.Lo)
        return Decided(false);
      break;
    case BinOp::Eq:
      if (L.isConst() && R.isConst() && L.Lo == R.Lo)
        return Decided(true);
      if (L.Hi < R.Lo || R.Hi < L.Lo)
        return Decided(false);
      break;
    case BinOp::Ne:
      if (L.isConst() && R.isConst() && L.Lo == R.Lo)
        return Decided(false);
      if (L.Hi < R.Lo || R.Hi < L.Lo)
        return Decided(true);
      break;
    default:
      break;
    }
    return AbsVal::intRange(0, 1);
  }
  default:
    break;
  }

  if (!bothInt(L, R))
    return AbsVal::top();

  switch (Op) {
  case BinOp::Add:
    return fromCorners({static_cast<__int128>(L.Lo) + R.Lo,
                        static_cast<__int128>(L.Hi) + R.Hi});
  case BinOp::Sub:
    return fromCorners({static_cast<__int128>(L.Lo) - R.Hi,
                        static_cast<__int128>(L.Hi) - R.Lo});
  case BinOp::Mul:
    return fromCorners({static_cast<__int128>(L.Lo) * R.Lo,
                        static_cast<__int128>(L.Lo) * R.Hi,
                        static_cast<__int128>(L.Hi) * R.Lo,
                        static_cast<__int128>(L.Hi) * R.Hi});
  case BinOp::Div: {
    // Only when the divisor interval excludes zero; truncating division is
    // monotone in each argument over a same-sign divisor interval, so the
    // corner quotients bound the result.
    if (R.Lo <= 0 && R.Hi >= 0)
      return fullInt();
    int64_t C[4] = {vmDiv(L.Lo, R.Lo), vmDiv(L.Lo, R.Hi), vmDiv(L.Hi, R.Lo),
                    vmDiv(L.Hi, R.Hi)};
    return AbsVal::intRange(*std::min_element(C, C + 4),
                            *std::max_element(C, C + 4));
  }
  case BinOp::Rem:
    if (L.isConst() && R.isConst() && R.Lo != 0)
      return AbsVal::intConst((L.Lo == INT64_MIN && R.Lo == -1) ? 0
                                                                : L.Lo % R.Lo);
    // |L rem R| < |R|, sign follows the dividend.
    if (R.Lo > 0 || R.Hi < 0) {
      int64_t Mag = std::max(std::abs(R.Lo == INT64_MIN ? INT64_MAX : R.Lo),
                             std::abs(R.Hi == INT64_MIN ? INT64_MAX : R.Hi)) -
                    1;
      int64_t Lo = L.Lo < 0 ? -Mag : 0;
      int64_t Hi = L.Hi > 0 ? Mag : 0;
      return AbsVal::intRange(Lo, Hi);
    }
    return fullInt();
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Xor: {
    if (L.isConst() && R.isConst()) {
      int64_t V = Op == BinOp::And   ? (L.Lo & R.Lo)
                  : Op == BinOp::Or  ? (L.Lo | R.Lo)
                                     : (L.Lo ^ R.Lo);
      return AbsVal::intConst(V);
    }
    // Nonnegative bitwise results stay below the next power of two.
    if (L.Lo >= 0 && R.Lo >= 0 && L.Hi < INT64_MAX / 2 &&
        R.Hi < INT64_MAX / 2) {
      int64_t Bound = 1;
      while (Bound <= L.Hi || Bound <= R.Hi)
        Bound <<= 1;
      return AbsVal::intRange(0, Bound - 1);
    }
    return fullInt();
  }
  case BinOp::Shl:
    if (L.isConst() && R.isConst()) {
      uint64_t Sh = static_cast<uint64_t>(R.Lo) & 63;
      return AbsVal::intConst(
          static_cast<int64_t>(static_cast<uint64_t>(L.Lo) << Sh));
    }
    return fullInt();
  case BinOp::Shr:
    if (R.isConst()) {
      uint64_t Sh = static_cast<uint64_t>(R.Lo) & 63;
      // Arithmetic right shift is monotone in the dividend.
      return AbsVal::intRange(L.Lo >> Sh, L.Hi >> Sh);
    }
    return fullInt();
  default:
    return fullInt();
  }
}

} // namespace

void applyInstr(const mir::Function &F, const mir::Instr &I, AbsEnv &Env) {
  if (!Env.Feasible)
    return;
  using mir::Opcode;
  auto R = [&](mir::Reg Reg) -> const AbsVal & { return Env.Regs[Reg]; };
  auto Set = [&](mir::Reg Reg, AbsVal V) { Env.Regs[Reg] = V; };

  switch (I.Op) {
  case Opcode::Const:
    Set(I.A, AbsVal::intConst(I.Imm));
    break;
  case Opcode::Move:
    Set(I.A, R(I.B));
    break;
  case Opcode::Bin: {
    const AbsVal &Rhs = R(I.C);
    if ((I.BOp == mir::BinOp::Div || I.BOp == mir::BinOp::Rem) &&
        Rhs.isConst() && Rhs.Lo == 0) {
      Env.Feasible = false; // the VM faults: nothing executes past here
      return;
    }
    Set(I.A, evalBin(I.BOp, R(I.B), Rhs));
    break;
  }
  case Opcode::BinImm:
    if ((I.BOp == mir::BinOp::Div || I.BOp == mir::BinOp::Rem) && I.Imm == 0) {
      Env.Feasible = false;
      return;
    }
    Set(I.A, evalBin(I.BOp, R(I.B), AbsVal::intConst(I.Imm)));
    break;
  case Opcode::Neg: {
    const AbsVal &V = R(I.B);
    if (V.K == AbsVal::Kind::Int)
      Set(I.A, fromCorners({-static_cast<__int128>(V.Lo),
                            -static_cast<__int128>(V.Hi)}));
    else
      Set(I.A, AbsVal::top());
    break;
  }
  case Opcode::Not: {
    const AbsVal &V = R(I.B);
    if (V.K == AbsVal::Kind::Int) {
      if (V.isConst())
        Set(I.A, AbsVal::intConst(V.Lo == 0 ? 1 : 0));
      else if (V.Lo > 0 || V.Hi < 0)
        Set(I.A, AbsVal::intConst(0));
      else
        Set(I.A, AbsVal::intRange(0, 1));
    } else {
      Set(I.A, AbsVal::intRange(0, 1));
    }
    break;
  }
  case Opcode::InLen:
    Set(I.A, AbsVal::intRange(0, INT64_MAX));
    break;
  case Opcode::InByte:
    Set(I.A, AbsVal::intRange(-1, 255));
    break;
  case Opcode::Alloc: {
    const AbsVal &Size = R(I.B);
    if (Size.K == AbsVal::Kind::Int)
      Set(I.A, AbsVal::heapPtr(Size.Lo, Size.Hi));
    else
      Set(I.A, AbsVal::heapPtr(INT64_MIN, INT64_MAX));
    break;
  }
  case Opcode::GlobalAddr:
    Set(I.A, AbsVal::globalPtr(static_cast<uint32_t>(I.Imm)));
    break;
  case Opcode::Load:
  case Opcode::Call:
    Set(I.A, AbsVal::top());
    break;
  case Opcode::Store:
  case Opcode::Free:
  case Opcode::EdgeProbe:
  case Opcode::BlockProbe:
    break;
  case Opcode::Abort:
    Env.Feasible = false; // execution never continues past an abort
    break;
  case Opcode::PathAdd:
  case Opcode::PathFlushRet:
  case Opcode::PathFlushBack:
    if (F.HasPathReg)
      Set(F.PathReg, AbsVal::top());
    break;
  }
}

namespace {

struct ConstRangeProblem {
  using Domain = AbsEnv;
  static constexpr Direction Dir = Direction::Forward;

  const mir::Function &F;

  Domain top() const { return AbsEnv::infeasible(F.NumRegs); }
  Domain boundary() const { return AbsEnv::entry(F.NumRegs); }

  bool meet(Domain &Into, const Domain &V) const {
    if (!V.Feasible)
      return false;
    if (!Into.Feasible) {
      Into = V;
      return true;
    }
    bool Changed = false;
    for (size_t R = 0; R < Into.Regs.size(); ++R) {
      AbsVal J = AbsVal::join(Into.Regs[R], V.Regs[R]);
      if (!(J == Into.Regs[R])) {
        Into.Regs[R] = J;
        Changed = true;
      }
    }
    return Changed;
  }

  Domain transfer(uint32_t Block, const Domain &In) const {
    Domain Out = In;
    for (const mir::Instr &I : F.Blocks[Block].Instrs) {
      applyInstr(F, I, Out);
      if (!Out.Feasible)
        break;
    }
    return Out;
  }

  void widen(Domain &Into, const Domain &V) const {
    if (!V.Feasible)
      return;
    if (!Into.Feasible) {
      Into = V;
      return;
    }
    for (size_t R = 0; R < Into.Regs.size(); ++R)
      Into.Regs[R] = AbsVal::widenFrom(Into.Regs[R], V.Regs[R]);
  }
};

} // namespace

ConstRangeResult computeConstRanges(const mir::Function &F,
                                    const cfg::CfgView &G) {
  ConstRangeProblem P{F};
  DataflowResult<AbsEnv> R = solve(G, P);
  ConstRangeResult CR;
  CR.In = std::move(R.In);
  CR.Out = std::move(R.Out);
  return CR;
}

} // namespace analysis
} // namespace pathfuzz
