//===- Dataflow.h - Monotone dataflow framework over MIR --------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// A generic worklist solver for monotone dataflow problems over a function
// CFG. An analysis supplies a Problem type describing the lattice and the
// block transfer function:
//
//   struct Problem {
//     using Domain = ...;                 // one lattice element per block
//     static constexpr Direction Dir = Direction::Forward;  // or Backward
//     Domain top() const;                 // identity of meet
//     Domain boundary() const;            // entry (fwd) / exit (bwd) value
//     // Meet Into with V; returns true if Into changed.
//     bool meet(Domain &Into, const Domain &V) const;
//     // Apply the block's effect to In, producing the out-flowing value.
//     Domain transfer(uint32_t Block, const Domain &In) const;
//     // Optional acceleration at widening points (loop heads): replace
//     // Into with an upper bound of Into and V that forces termination.
//     // The default meet-only behaviour is fine for finite lattices.
//     void widen(Domain &Into, const Domain &V) const { meet(Into, V); }
//   };
//
// The solver iterates to the least fixed point (greatest, for analyses
// that phrase their lattice dually) over the *reachable* blocks; values
// for unreachable blocks stay top(). For infinite-height lattices
// (ConstRange) the solver widens at back-edge destinations — every cycle
// in the CFG, reducible or not, contains a DFS back edge, so widening
// there bounds every chain — and additionally force-widens any block
// revisited more than MaxVisitsBeforeWiden times as a belt-and-braces
// termination guarantee.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_ANALYSIS_DATAFLOW_H
#define PATHFUZZ_ANALYSIS_DATAFLOW_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace pathfuzz {
namespace analysis {

enum class Direction : uint8_t {
  Forward,  ///< values flow along edges; In[B] = meet over preds' Out
  Backward, ///< values flow against edges; In[B] = meet over succs' Out
};

/// Fixed-point result: the value at each block boundary.
/// For a forward problem, In[B] is the state *before* B executes and
/// Out[B] the state after its terminator; for a backward problem, In[B]
/// is the state at the *end* of B (before flowing backwards through it)
/// and Out[B] the state at its start.
template <typename Domain> struct DataflowResult {
  std::vector<Domain> In;
  std::vector<Domain> Out;
  /// Total block visits performed by the solver (stability diagnostic).
  uint64_t NumVisits = 0;
};

/// Solve a monotone dataflow problem to fixed point over G.
template <typename Problem>
DataflowResult<typename Problem::Domain> solve(const cfg::CfgView &G,
                                               const Problem &P) {
  using Domain = typename Problem::Domain;
  constexpr bool Fwd = Problem::Dir == Direction::Forward;

  unsigned N = G.numBlocks();
  DataflowResult<Domain> R;
  R.In.assign(N, P.top());
  R.Out.assign(N, P.top());
  if (N == 0)
    return R;

  // Widening points: destinations of DFS back edges (forward) or their
  // sources (backward) — the blocks through which every cycle re-enters.
  std::vector<bool> WidenAt(N, false);
  for (uint32_t EdgeIndex : G.backEdgeIndices()) {
    const cfg::Edge &E = G.edges()[EdgeIndex];
    WidenAt[Fwd ? E.Dst : E.Src] = true;
  }

  // Visit order: reverse postorder for forward problems, postorder for
  // backward ones, so most edges are relaxed before their consumers.
  std::vector<uint32_t> Order = G.topoOrder();
  if (!Fwd)
    std::vector<uint32_t>(Order.rbegin(), Order.rend()).swap(Order);

  std::vector<bool> InQueue(N, false);
  std::deque<uint32_t> Work;
  for (uint32_t B : Order) {
    Work.push_back(B);
    InQueue[B] = true;
  }

  // Safety valve for lattices whose widen() is not aggressive enough (or
  // absent): after this many visits a block's input is force-widened on
  // every subsequent meet.
  constexpr unsigned MaxVisitsBeforeWiden = 64;
  std::vector<uint32_t> Visits(N, 0);

  auto boundaryBlock = [&](uint32_t B) {
    return Fwd ? B == 0 : G.isExitBlock(B);
  };

  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    InQueue[B] = false;
    ++R.NumVisits;
    bool ForceWiden = WidenAt[B] || ++Visits[B] > MaxVisitsBeforeWiden;

    // Recompute In[B] from scratch: meet of the flow-predecessors' Out
    // values plus the boundary value where applicable. Recomputing (rather
    // than accumulating) keeps the result independent of visit order for
    // non-distributive problems like range propagation.
    Domain NewIn = P.top();
    if (boundaryBlock(B))
      P.meet(NewIn, P.boundary());
    const std::vector<uint32_t> &InEdges =
        Fwd ? G.predEdges(B) : G.succEdges(B);
    for (uint32_t EdgeIndex : InEdges) {
      const cfg::Edge &E = G.edges()[EdgeIndex];
      uint32_t Nbr = Fwd ? E.Src : E.Dst;
      if (!G.isReachable(Nbr))
        continue;
      P.meet(NewIn, R.Out[Nbr]);
    }
    if (ForceWiden) {
      // Widen the previous In with the new one so the sequence of In
      // values at this block forms an ascending chain the widening
      // operator bounds.
      Domain Widened = R.In[B];
      P.widen(Widened, NewIn);
      NewIn = std::move(Widened);
    }

    Domain NewOut = P.transfer(B, NewIn);
    bool OutChanged = P.meet(R.Out[B], NewOut);
    R.In[B] = std::move(NewIn);
    if (!OutChanged)
      continue;

    const std::vector<uint32_t> &OutEdges =
        Fwd ? G.succEdges(B) : G.predEdges(B);
    for (uint32_t EdgeIndex : OutEdges) {
      const cfg::Edge &E = G.edges()[EdgeIndex];
      uint32_t Nbr = Fwd ? E.Dst : E.Src;
      if (!G.isReachable(Nbr) || InQueue[Nbr])
        continue;
      Work.push_back(Nbr);
      InQueue[Nbr] = true;
    }
  }
  return R;
}

} // namespace analysis
} // namespace pathfuzz

#endif // PATHFUZZ_ANALYSIS_DATAFLOW_H
