//===- PathAfl.cpp - PathAFL comparator notes and helpers ---------------------===//
//
// Part of the pathfuzz project. Header-only; this TU anchors the library.
//
//===----------------------------------------------------------------------===//

#include "pathafl/PathAfl.h"

namespace pathfuzz {
namespace pathafl {
// Intentionally empty.
} // namespace pathafl
} // namespace pathfuzz
