//===- PathAfl.h - PathAFL comparator notes and helpers ---------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// PathAFL [Yan et al., ASIA CCS'20] is the paper's only prior path-aware
// comparator (Appendix C). It differs from the paper's approach on every
// axis:
//
//   - path abstraction: *whole-program* path hashes ("h-paths") over a
//     pruned subset of edges, vs. complete intra-procedural acyclic paths;
//   - instrumentation: partial (selected functions/edges only, binaries
//     patched post-hoc), vs. full Ball-Larus probes placed by the
//     compiler;
//   - base fuzzer: AFL 2.52b (no cmplog, classic xor edge hashing), vs.
//     AFL++ 4.07a.
//
// Our comparator mirrors those design points: the EdgeClassic
// instrumentation provides AFL's block-pair hashing, and the VM's
// CallPathHash assist extends it with a rolling hash over the call events
// of a *selected* ~25% of functions, bumping a map entry per selected
// call — a coarse, collision-prone whole-program path signal with partial
// instrumentation, exactly PathAFL's trade-off. The `afl` configuration is
// the same build without the assist (Appendix C compares the two).
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_PATHAFL_PATHAFL_H
#define PATHFUZZ_PATHAFL_PATHAFL_H

#include "support/Rng.h"

#include <cstdint>

namespace pathfuzz {
namespace pathafl {

/// Whether the VM's call-path hashing considers this callee "selected"
/// (partial instrumentation). Must match the VM's predicate; the unit
/// tests assert the two stay in sync.
inline bool isSelectedFunction(uint32_t FuncIndex) {
  return (mix64(FuncIndex * 0x9e3779b97f4a7c15ULL) & 3) == 0;
}

/// Initial value of the rolling call-path hash (must match the VM).
inline constexpr uint64_t callHashSeed() { return 0x50a7af1dULL; }

/// Rolling hash step applied per selected call event (must match the VM).
inline uint64_t callHashStep(uint64_t Hash, uint32_t Callee) {
  return mix64(Hash ^ (Callee + 0x517cc1b727220a95ULL));
}

} // namespace pathafl
} // namespace pathfuzz

#endif // PATHFUZZ_PATHAFL_PATHAFL_H
