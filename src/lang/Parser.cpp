//===- Parser.cpp - MiniLang recursive-descent parser -------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

namespace pathfuzz {
namespace lang {

ExprPtr makeIntLit(int64_t V, SrcLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IntLit;
  E->IntVal = V;
  E->Loc = Loc;
  return E;
}

ExprPtr makeVarRef(std::string Name, SrcLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::VarRef;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

Parser::Parser(std::string Source) : Lex(std::move(Source)) { Cur = Lex.next(); }

void Parser::bump() { Cur = Lex.next(); }

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  bump();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokKindName(K) + " " + Context +
        ", found " + tokKindName(Cur.Kind));
  return false;
}

void Parser::error(const std::string &Msg) {
  Errors.push_back(Cur.Loc.str() + ": " + Msg);
}

void Parser::syncToStmtBoundary() {
  while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
    bump();
  accept(TokKind::Semi);
}

std::optional<Program> Parser::parseProgram() {
  Program P;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::KwGlobal)) {
      if (auto G = parseGlobal())
        P.Globals.push_back(std::move(*G));
      else
        syncToStmtBoundary();
      continue;
    }
    if (at(TokKind::KwFn)) {
      if (auto F = parseFunc())
        P.Funcs.push_back(std::move(*F));
      continue;
    }
    error("expected 'fn' or 'global' at top level, found " +
          std::string(tokKindName(Cur.Kind)));
    bump();
  }
  for (const std::string &E : Lex.errors())
    Errors.push_back(E);
  if (!Errors.empty())
    return std::nullopt;
  return P;
}

std::optional<GlobalDecl> Parser::parseGlobal() {
  GlobalDecl G;
  G.Loc = Cur.Loc;
  bump(); // 'global'
  if (!at(TokKind::Ident)) {
    error("expected global name");
    return std::nullopt;
  }
  G.Name = Cur.Text;
  bump();
  if (!expect(TokKind::LBracket, "after global name"))
    return std::nullopt;
  if (!at(TokKind::IntLit)) {
    error("global size must be an integer literal");
    return std::nullopt;
  }
  G.Size = Cur.IntVal;
  bump();
  if (!expect(TokKind::RBracket, "after global size"))
    return std::nullopt;
  if (accept(TokKind::Assign)) {
    if (!expect(TokKind::LBrace, "to open global initializer"))
      return std::nullopt;
    while (!at(TokKind::RBrace)) {
      bool Negative = accept(TokKind::Minus);
      if (!at(TokKind::IntLit)) {
        error("global initializer must contain integer literals");
        return std::nullopt;
      }
      G.Init.push_back(Negative ? -Cur.IntVal : Cur.IntVal);
      bump();
      if (!accept(TokKind::Comma))
        break;
    }
    if (!expect(TokKind::RBrace, "to close global initializer"))
      return std::nullopt;
  }
  expect(TokKind::Semi, "after global declaration");
  return G;
}

std::optional<FuncDecl> Parser::parseFunc() {
  FuncDecl F;
  F.Loc = Cur.Loc;
  bump(); // 'fn'
  if (!at(TokKind::Ident)) {
    error("expected function name");
    return std::nullopt;
  }
  F.Name = Cur.Text;
  bump();
  if (!expect(TokKind::LParen, "after function name"))
    return std::nullopt;
  if (!at(TokKind::RParen)) {
    for (;;) {
      if (!at(TokKind::Ident)) {
        error("expected parameter name");
        return std::nullopt;
      }
      F.Params.push_back(Cur.Text);
      bump();
      if (!accept(TokKind::Comma))
        break;
    }
  }
  if (!expect(TokKind::RParen, "after parameters"))
    return std::nullopt;
  if (!parseStmtList(F.Body))
    return std::nullopt;
  return F;
}

bool Parser::parseStmtList(std::vector<StmtPtr> &Out) {
  if (!expect(TokKind::LBrace, "to open block"))
    return false;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (S)
      Out.push_back(std::move(S));
    else
      syncToStmtBoundary();
  }
  return expect(TokKind::RBrace, "to close block");
}

StmtPtr Parser::parseBlockAsStmt() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Block;
  S->Loc = Cur.Loc;
  if (!parseStmtList(S->Body))
    return nullptr;
  return S;
}

StmtPtr Parser::parseStmt() {
  switch (Cur.Kind) {
  case TokKind::LBrace:
    return parseBlockAsStmt();
  case TokKind::KwVar:
    return parseVarDecl();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwReturn:
    return parseReturn();
  case TokKind::KwBreak: {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Break;
    S->Loc = Cur.Loc;
    bump();
    expect(TokKind::Semi, "after 'break'");
    return S;
  }
  case TokKind::KwContinue: {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Continue;
    S->Loc = Cur.Loc;
    bump();
    expect(TokKind::Semi, "after 'continue'");
    return S;
  }
  default:
    return parseExprLeadStmt();
  }
}

StmtPtr Parser::parseVarDecl() {
  auto S = std::make_unique<Stmt>();
  S->Loc = Cur.Loc;
  bump(); // 'var'
  if (!at(TokKind::Ident)) {
    error("expected variable name");
    return nullptr;
  }
  S->Name = Cur.Text;
  bump();
  if (accept(TokKind::LBracket)) {
    S->Kind = StmtKind::ArrayDecl;
    S->A = parseExpr();
    if (!S->A)
      return nullptr;
    if (!expect(TokKind::RBracket, "after array size"))
      return nullptr;
  } else {
    S->Kind = StmtKind::VarDecl;
    if (accept(TokKind::Assign)) {
      S->A = parseExpr();
      if (!S->A)
        return nullptr;
    }
  }
  expect(TokKind::Semi, "after declaration");
  return S;
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Loc = Cur.Loc;
  bump(); // 'if'
  if (!expect(TokKind::LParen, "after 'if'"))
    return nullptr;
  S->A = parseExpr();
  if (!S->A)
    return nullptr;
  if (!expect(TokKind::RParen, "after if condition"))
    return nullptr;
  StmtPtr Then = parseStmt();
  if (!Then)
    return nullptr;
  S->Body.push_back(std::move(Then));
  if (accept(TokKind::KwElse)) {
    StmtPtr Else = parseStmt();
    if (!Else)
      return nullptr;
    S->ElseBody.push_back(std::move(Else));
  }
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::While;
  S->Loc = Cur.Loc;
  bump(); // 'while'
  if (!expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  S->A = parseExpr();
  if (!S->A)
    return nullptr;
  if (!expect(TokKind::RParen, "after while condition"))
    return nullptr;
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  S->Body.push_back(std::move(Body));
  return S;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->Loc = Cur.Loc;
  bump(); // 'return'
  if (!at(TokKind::Semi)) {
    S->A = parseExpr();
    if (!S->A)
      return nullptr;
  }
  expect(TokKind::Semi, "after return");
  return S;
}

StmtPtr Parser::parseExprLeadStmt() {
  SrcLoc Loc = Cur.Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;

  if (accept(TokKind::Assign)) {
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    auto S = std::make_unique<Stmt>();
    S->Loc = Loc;
    if (E->Kind == ExprKind::VarRef) {
      S->Kind = StmtKind::Assign;
      S->Name = E->Name;
      S->A = std::move(Value);
    } else if (E->Kind == ExprKind::Index) {
      S->Kind = StmtKind::IndexAssign;
      S->A = std::move(E->Lhs);
      S->B = std::move(E->Rhs);
      S->C = std::move(Value);
    } else {
      error("invalid assignment target");
      return nullptr;
    }
    expect(TokKind::Semi, "after assignment");
    return S;
  }

  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::ExprStmt;
  S->Loc = Loc;
  S->A = std::move(E);
  expect(TokKind::Semi, "after expression");
  return S;
}

int Parser::precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  return parseBinaryRhs(1, std::move(Lhs));
}

ExprPtr Parser::parseBinaryRhs(int MinPrec, ExprPtr Lhs) {
  for (;;) {
    int Prec = precedenceOf(Cur.Kind);
    if (Prec < MinPrec)
      return Lhs;
    TokKind Op = Cur.Kind;
    SrcLoc Loc = Cur.Loc;
    bump();
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    // Left-associative: fold while the next operator binds tighter.
    int NextPrec = precedenceOf(Cur.Kind);
    if (NextPrec > Prec) {
      Rhs = parseBinaryRhs(Prec + 1, std::move(Rhs));
      if (!Rhs)
        return nullptr;
    }
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Binary;
    E->Loc = Loc;
    E->Op = Op;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseUnary() {
  if (at(TokKind::Minus) || at(TokKind::Bang)) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Unary;
    E->Loc = Cur.Loc;
    E->Op = Cur.Kind;
    bump();
    E->Lhs = parseUnary();
    if (!E->Lhs)
      return nullptr;
    return E;
  }
  ExprPtr Base = parsePrimary();
  if (!Base)
    return nullptr;
  return parsePostfix(std::move(Base));
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  for (;;) {
    if (accept(TokKind::LBracket)) {
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Index;
      E->Loc = Cur.Loc;
      E->Lhs = std::move(Base);
      E->Rhs = parseExpr();
      if (!E->Rhs)
        return nullptr;
      if (!expect(TokKind::RBracket, "after index"))
        return nullptr;
      Base = std::move(E);
      continue;
    }
    return Base;
  }
}

ExprPtr Parser::parsePrimary() {
  switch (Cur.Kind) {
  case TokKind::IntLit: {
    ExprPtr E = makeIntLit(Cur.IntVal, Cur.Loc);
    bump();
    return E;
  }
  case TokKind::LParen: {
    bump();
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokKind::Ident: {
    std::string Name = Cur.Text;
    SrcLoc Loc = Cur.Loc;
    bump();
    if (accept(TokKind::LParen)) {
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Call;
      E->Loc = Loc;
      E->Name = std::move(Name);
      if (!at(TokKind::RParen)) {
        for (;;) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          E->Args.push_back(std::move(Arg));
          if (!accept(TokKind::Comma))
            break;
        }
      }
      if (!expect(TokKind::RParen, "after call arguments"))
        return nullptr;
      return E;
    }
    return makeVarRef(std::move(Name), Loc);
  }
  default:
    error("expected expression, found " + std::string(tokKindName(Cur.Kind)));
    return nullptr;
  }
}

} // namespace lang
} // namespace pathfuzz
