//===- Lint.cpp - MiniLang lint suite over MIR --------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lint.h"

#include "analysis/ConstRange.h"
#include "analysis/Liveness.h"
#include "analysis/ReachingDefs.h"
#include "analysis/UseDef.h"
#include "cfg/Cfg.h"
#include "lang/Compile.h"

#include <algorithm>
#include <set>

namespace pathfuzz {
namespace lang {

const char *lintCheckName(LintCheck C) {
  switch (C) {
  case LintCheck::UseBeforeInit:
    return "use-before-init";
  case LintCheck::DeadStore:
    return "dead-store";
  case LintCheck::UnreachableCode:
    return "unreachable-code";
  case LintCheck::DivByZero:
    return "div-by-zero";
  case LintCheck::ConstOutOfBounds:
    return "const-out-of-bounds";
  case LintCheck::UnusedParam:
    return "unused-param";
  case LintCheck::UnusedFunction:
    return "unused-function";
  }
  return "unknown";
}

std::string LintDiagnostic::str() const {
  std::string S = std::to_string(Line) + ":" + std::to_string(Col) + ": [" +
                  lintCheckName(Check) + "] " + Message;
  if (!Func.empty()) {
    S += " (in @" + Func;
    if (!Block.empty())
      S += ":" + Block;
    S += ")";
  }
  return S;
}

namespace {

class Linter {
public:
  Linter(const mir::Module &M, LintOptions Opts) : M(M), Opts(Opts) {}

  std::vector<LintDiagnostic> run() {
    for (const mir::Function &F : M.Funcs)
      lintFunction(F);
    if (Opts.EnableUnusedFunction)
      checkUnusedFunctions();
    return std::move(Diags);
  }

private:
  const mir::Module &M;
  LintOptions Opts;
  std::vector<LintDiagnostic> Diags;

  void report(LintCheck Check, const mir::Function &F, uint32_t Block,
              uint32_t Line, uint32_t Col, std::string Msg) {
    LintDiagnostic D;
    D.Check = Check;
    D.Func = F.Name;
    if (Block != UINT32_MAX)
      D.Block = F.Blocks[Block].Name;
    D.Line = Line;
    D.Col = Col;
    D.Message = std::move(Msg);
    Diags.push_back(std::move(D));
  }

  /// Value-producing instructions with no observable effect besides their
  /// result; only these can be dead stores. Div/Rem can trap, Alloc and
  /// Call have effects, Load can fault on a bad index.
  static bool isPureProducer(const mir::Instr &I) {
    using mir::Opcode;
    switch (I.Op) {
    case Opcode::Const:
    case Opcode::Move:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::InLen:
    case Opcode::InByte:
    case Opcode::GlobalAddr:
      return true;
    case Opcode::Bin:
    case Opcode::BinImm:
      return I.BOp != mir::BinOp::Div && I.BOp != mir::BinOp::Rem;
    default:
      return false;
    }
  }

  void lintFunction(const mir::Function &F) {
    if (F.Blocks.empty())
      return;
    cfg::CfgView G(F);

    size_t FuncDiagStart = Diags.size();
    if (Opts.EnableUseBeforeInit)
      checkUseBeforeInit(F, G);
    if (Opts.EnableDeadStore)
      checkDeadStores(F, G);
    if (Opts.EnableUnreachable)
      checkUnreachable(F, G);
    if (Opts.EnableDivByZero || Opts.EnableConstOutOfBounds)
      checkConstFacts(F, G);
    if (Opts.EnableUnusedParam)
      checkUnusedParams(F);

    // Within a function, order findings by source position.
    std::sort(Diags.begin() + FuncDiagStart, Diags.end(),
              [](const LintDiagnostic &A, const LintDiagnostic &B) {
                if (A.Line != B.Line)
                  return A.Line < B.Line;
                if (A.Col != B.Col)
                  return A.Col < B.Col;
                return static_cast<int>(A.Check) < static_cast<int>(B.Check);
              });
  }

  void checkUseBeforeInit(const mir::Function &F, const cfg::CfgView &G) {
    analysis::ReachingDefsOptions RDOpts;
    RDOpts.IgnoreSynthDefs = true; // `var x;` zero-init does not initialize
    analysis::ReachingDefs RD(F, G, RDOpts);

    // One finding per register: the first read that may see it
    // uninitialized, in block/program order.
    std::set<mir::Reg> Reported;
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      const mir::BasicBlock &BB = F.Blocks[B];
      for (uint32_t K = 0; K < BB.Instrs.size(); ++K) {
        const mir::Instr &I = BB.Instrs[K];
        if (I.Synth)
          continue;
        analysis::forEachUse(F, I, [&](mir::Reg R) {
          if (Reported.count(R) || !RD.mayBeUninitAt(B, K, R))
            return;
          Reported.insert(R);
          report(LintCheck::UseBeforeInit, F, B, I.Line, I.Col,
                 "variable may be read before it is assigned");
        });
      }
      analysis::forEachTermUse(BB.Term, [&](mir::Reg R) {
        uint32_t End = static_cast<uint32_t>(BB.Instrs.size());
        if (Reported.count(R) || !RD.mayBeUninitAt(B, End, R))
          return;
        Reported.insert(R);
        report(LintCheck::UseBeforeInit, F, B, BB.Term.Line, BB.Term.Col,
               "variable may be read before it is assigned");
      });
    }
  }

  void checkDeadStores(const mir::Function &F, const cfg::CfgView &G) {
    analysis::LivenessResult LV = analysis::computeLiveness(F, G);
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      const mir::BasicBlock &BB = F.Blocks[B];
      analysis::BitVec Live = LV.LiveOut[B];
      analysis::forEachTermUse(BB.Term, [&](mir::Reg R) { Live.set(R); });
      for (size_t K = BB.Instrs.size(); K-- > 0;) {
        const mir::Instr &I = BB.Instrs[K];
        bool AnyLive = false;
        analysis::forEachDef(F, I, [&](mir::Reg R) { AnyLive |= Live.test(R); });
        if (!AnyLive && !I.Synth && I.Line > 0 && isPureProducer(I))
          report(LintCheck::DeadStore, F, B, I.Line, I.Col,
                 "value is computed but never read");
        analysis::forEachDef(F, I, [&](mir::Reg R) { Live.reset(R); });
        analysis::forEachUse(F, I, [&](mir::Reg R) { Live.set(R); });
      }
    }
  }

  void checkUnreachable(const mir::Function &F, const cfg::CfgView &G) {
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      if (G.isReachable(B))
        continue;
      // Only report blocks holding real source statements; structural
      // padding the lowering synthesizes is not the user's code.
      const mir::Instr *First = nullptr;
      for (const mir::Instr &I : F.Blocks[B].Instrs)
        if (!I.Synth && I.Line > 0) {
          First = &I;
          break;
        }
      uint32_t Line = First ? First->Line : F.Blocks[B].Term.Line;
      uint32_t Col = First ? First->Col : F.Blocks[B].Term.Col;
      if (Line == 0)
        continue;
      report(LintCheck::UnreachableCode, F, B, Line, Col,
             "statement can never be executed");
    }
  }

  /// DivByZero and ConstOutOfBounds share one walk: replay each reachable
  /// block's instructions from its fixed-point input environment and
  /// inspect operands at the faulting opcodes.
  void checkConstFacts(const mir::Function &F, const cfg::CfgView &G) {
    analysis::ConstRangeResult CR = analysis::computeConstRanges(F, G);
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      analysis::AbsEnv Env = CR.In[B];
      for (const mir::Instr &I : F.Blocks[B].Instrs) {
        if (!Env.Feasible)
          break; // an earlier instruction in the block always faults
        if (Opts.EnableDivByZero)
          checkDiv(F, B, I, Env);
        if (Opts.EnableConstOutOfBounds)
          checkBounds(F, B, I, Env);
        analysis::applyInstr(F, I, Env);
      }
    }
  }

  void checkDiv(const mir::Function &F, uint32_t B, const mir::Instr &I,
                const analysis::AbsEnv &Env) {
    using mir::Opcode;
    if ((I.Op != Opcode::Bin && I.Op != Opcode::BinImm) ||
        (I.BOp != mir::BinOp::Div && I.BOp != mir::BinOp::Rem))
      return;
    bool Zero = false;
    if (I.Op == Opcode::BinImm) {
      Zero = I.Imm == 0;
    } else {
      const analysis::AbsVal &D = Env.Regs[I.C];
      Zero = D.isConst() && D.Lo == 0;
    }
    if (Zero)
      report(LintCheck::DivByZero, F, B, I.Line, I.Col,
             "divisor is always zero here");
  }

  void checkBounds(const mir::Function &F, uint32_t B, const mir::Instr &I,
                   const analysis::AbsEnv &Env) {
    using mir::Opcode;
    using analysis::AbsVal;

    if (I.Op == Opcode::Alloc) {
      const AbsVal &Size = Env.Regs[I.B];
      if (Size.K == AbsVal::Kind::Int && Size.Hi < 0)
        report(LintCheck::ConstOutOfBounds, F, B, I.Line, I.Col,
               "allocation size is always negative");
      return;
    }

    mir::Reg BaseR, IdxR;
    if (I.Op == Opcode::Load) {
      BaseR = I.B;
      IdxR = I.C;
    } else if (I.Op == Opcode::Store) {
      BaseR = I.A;
      IdxR = I.B;
    } else {
      return;
    }

    const AbsVal &Base = Env.Regs[BaseR];
    const AbsVal &Idx = Env.Regs[IdxR];
    if (Idx.K != AbsVal::Kind::Int)
      return;

    // "Provably out of bounds" = every value the index can take misses
    // every size the object can have.
    if (Base.K == AbsVal::Kind::GlobalPtr) {
      if (Base.GlobalIndex >= M.Globals.size())
        return;
      int64_t Size = M.Globals[Base.GlobalIndex].Size;
      if (Idx.Hi < 0 || Idx.Lo >= Size)
        report(LintCheck::ConstOutOfBounds, F, B, I.Line, I.Col,
               "index is always outside global '" +
                   M.Globals[Base.GlobalIndex].Name + "' (size " +
                   std::to_string(Size) + ")");
    } else if (Base.K == AbsVal::Kind::HeapPtr) {
      if (Idx.Hi < 0 || (Base.Hi >= 0 && Idx.Lo >= Base.Hi))
        report(LintCheck::ConstOutOfBounds, F, B, I.Line, I.Col,
               "index is always outside the allocated object");
    }
  }

  void checkUnusedParams(const mir::Function &F) {
    if (F.ParamNames.empty())
      return; // builder-made function: no source-level parameters
    std::vector<bool> Used(F.NumParams, false);
    for (const mir::BasicBlock &BB : F.Blocks) {
      for (const mir::Instr &I : BB.Instrs)
        analysis::forEachUse(F, I, [&](mir::Reg R) {
          if (R < F.NumParams)
            Used[R] = true;
        });
      analysis::forEachTermUse(BB.Term, [&](mir::Reg R) {
        if (R < F.NumParams)
          Used[R] = true;
      });
    }
    for (uint16_t P = 0; P < F.NumParams && P < F.ParamNames.size(); ++P)
      if (!Used[P])
        report(LintCheck::UnusedParam, F, UINT32_MAX, F.DeclLine, F.DeclCol,
               "parameter '" + F.ParamNames[P] + "' is never used");
  }

  void checkUnusedFunctions() {
    int Main = M.findFunction("main");
    if (Main < 0)
      return;
    std::vector<bool> Reached(M.Funcs.size(), false);
    std::vector<uint32_t> Work{static_cast<uint32_t>(Main)};
    Reached[Main] = true;
    while (!Work.empty()) {
      uint32_t FI = Work.back();
      Work.pop_back();
      for (const mir::BasicBlock &BB : M.Funcs[FI].Blocks)
        for (const mir::Instr &I : BB.Instrs)
          if (I.Op == mir::Opcode::Call && I.Callee < M.Funcs.size() &&
              !Reached[I.Callee]) {
            Reached[I.Callee] = true;
            Work.push_back(I.Callee);
          }
    }
    for (size_t FI = 0; FI < M.Funcs.size(); ++FI)
      if (!Reached[FI])
        report(LintCheck::UnusedFunction, M.Funcs[FI], UINT32_MAX,
               M.Funcs[FI].DeclLine, M.Funcs[FI].DeclCol,
               "function '" + M.Funcs[FI].Name +
                   "' is never called from main");
  }
};

} // namespace

std::vector<LintDiagnostic> lintModule(const mir::Module &M, LintOptions Opts) {
  return Linter(M, Opts).run();
}

std::vector<LintDiagnostic> lintSource(const std::string &Source,
                                       const std::string &Name,
                                       std::vector<std::string> &CompileErrors,
                                       LintOptions Opts) {
  CompileResult CR = compileSource(Source, Name);
  if (!CR.ok()) {
    CompileErrors = CR.Errors;
    return {};
  }
  return lintModule(*CR.Mod, Opts);
}

} // namespace lang
} // namespace pathfuzz
