//===- Compile.h - MiniLang to MIR compilation pipeline ---------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end frontend pipeline: parse MiniLang, lower the AST to MIR
// (resolving variables against lexical scopes, parameters and globals, and
// builtins in/len/alloc/free/abort), then verify the module. Semantic
// errors (undefined or redefined names, arity mismatches, break outside a
// loop, missing @main) are collected rather than thrown, following the
// no-exceptions discipline.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_COMPILE_H
#define PATHFUZZ_LANG_COMPILE_H

#include "lang/Ast.h"
#include "mir/Mir.h"

#include <optional>
#include <string>
#include <vector>

namespace pathfuzz {
namespace lang {

struct CompileResult {
  std::optional<mir::Module> Mod;
  std::vector<std::string> Errors;

  bool ok() const { return Mod.has_value() && Errors.empty(); }
  std::string message() const;
};

/// Lower a parsed program.
CompileResult compileProgram(const Program &P, std::string ModuleName);

/// Parse and lower a source string.
CompileResult compileSource(const std::string &Source,
                            std::string ModuleName);

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_COMPILE_H
