//===- Lint.h - MiniLang lint suite over MIR --------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Static checks over compiled MiniLang programs, built on the dataflow
// framework in src/analysis. Each diagnostic carries the source position
// the lowering stamped onto the offending MIR instruction, so findings
// point back at MiniLang source, not at IR.
//
// Checks:
//   UseBeforeInit   — a variable read on some path before any (non-
//                     synthetic) assignment; reaching-definitions based.
//   DeadStore       — a pure value-producing instruction whose result no
//                     path reads; liveness based. Side-effecting writes
//                     (calls, loads that can fault) are exempt.
//   UnreachableCode — a block with source-located statements that no
//                     execution can enter.
//   DivByZero       — a division whose divisor is the constant 0 on every
//                     execution reaching it; constant/range based.
//   ConstOutOfBounds— an index expression provably outside the bounds of
//                     the global or alloc'd object it addresses, or an
//                     alloc whose size is provably negative.
//   UnusedParam     — a declared parameter no instruction ever reads.
//   UnusedFunction  — a function unreachable from main in the call graph.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_LINT_H
#define PATHFUZZ_LANG_LINT_H

#include "mir/Mir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pathfuzz {
namespace lang {

enum class LintCheck : uint8_t {
  UseBeforeInit,
  DeadStore,
  UnreachableCode,
  DivByZero,
  ConstOutOfBounds,
  UnusedParam,
  UnusedFunction,
};

/// Printable kebab-case name of a check, e.g. "use-before-init".
const char *lintCheckName(LintCheck C);

/// One finding, located in MiniLang source.
struct LintDiagnostic {
  LintCheck Check = LintCheck::UseBeforeInit;
  std::string Func;  ///< containing function name
  std::string Block; ///< containing block name (empty for whole-function)
  uint32_t Line = 0; ///< 1-based source position; 0 if unattributed
  uint32_t Col = 0;
  std::string Message;

  /// "line:col: [check] message (in @func:block)"
  std::string str() const;
};

struct LintOptions {
  /// Enable every check; callers can mask individual ones off.
  bool EnableUseBeforeInit = true;
  bool EnableDeadStore = true;
  bool EnableUnreachable = true;
  bool EnableDivByZero = true;
  bool EnableConstOutOfBounds = true;
  bool EnableUnusedParam = true;
  bool EnableUnusedFunction = true;
};

/// Lint a compiled module. Diagnostics are ordered by function, then by
/// source position.
std::vector<LintDiagnostic> lintModule(const mir::Module &M,
                                       LintOptions Opts = {});

/// Parse + compile + lint a MiniLang source string. Compilation errors are
/// returned through CompileErrors (and yield no diagnostics).
std::vector<LintDiagnostic> lintSource(const std::string &Source,
                                       const std::string &Name,
                                       std::vector<std::string> &CompileErrors,
                                       LintOptions Opts = {});

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_LINT_H
