//===- Lexer.cpp - MiniLang lexer --------------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

namespace pathfuzz {
namespace lang {

const char *tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "<eof>";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwGlobal:
    return "'global'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Error:
    return "<error>";
  }
  return "<bad-token>";
}

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  size_t P = Pos + Ahead;
  return P < Src.size() ? Src[P] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Loc.Line;
    Loc.Col = 1;
  } else {
    ++Loc.Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          error("unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind) const {
  Token T;
  T.Kind = Kind;
  T.Loc = TokStart;
  return T;
}

void Lexer::error(const std::string &Msg) {
  Errors.push_back(Loc.str() + ": " + Msg);
}

Token Lexer::lexNumber() {
  Token T = makeToken(TokKind::IntLit);
  int64_t V = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool Any = false;
    for (;;) {
      char C = peek();
      int D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        break;
      V = V * 16 + D;
      Any = true;
      advance();
    }
    if (!Any)
      error("hex literal with no digits");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      V = V * 10 + (advance() - '0');
    }
  }
  T.IntVal = V;
  return T;
}

Token Lexer::lexCharLit() {
  advance(); // opening quote
  Token T = makeToken(TokKind::IntLit);
  char C = advance();
  if (C == '\\') {
    char E = advance();
    switch (E) {
    case 'n':
      C = '\n';
      break;
    case 't':
      C = '\t';
      break;
    case '0':
      C = '\0';
      break;
    case '\\':
      C = '\\';
      break;
    case '\'':
      C = '\'';
      break;
    default:
      error("unknown escape in char literal");
      C = E;
      break;
    }
  }
  if (!match('\''))
    error("unterminated char literal");
  T.IntVal = static_cast<unsigned char>(C);
  return T;
}

Token Lexer::lexIdent() {
  Token T = makeToken(TokKind::Ident);
  std::string S;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    S += advance();
  if (S == "fn")
    T.Kind = TokKind::KwFn;
  else if (S == "var")
    T.Kind = TokKind::KwVar;
  else if (S == "global")
    T.Kind = TokKind::KwGlobal;
  else if (S == "if")
    T.Kind = TokKind::KwIf;
  else if (S == "else")
    T.Kind = TokKind::KwElse;
  else if (S == "while")
    T.Kind = TokKind::KwWhile;
  else if (S == "return")
    T.Kind = TokKind::KwReturn;
  else if (S == "break")
    T.Kind = TokKind::KwBreak;
  else if (S == "continue")
    T.Kind = TokKind::KwContinue;
  else
    T.Text = std::move(S);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokStart = Loc;
  char C = peek();
  if (C == '\0')
    return makeToken(TokKind::Eof);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '\'')
    return lexCharLit();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen);
  case ')':
    return makeToken(TokKind::RParen);
  case '{':
    return makeToken(TokKind::LBrace);
  case '}':
    return makeToken(TokKind::RBrace);
  case '[':
    return makeToken(TokKind::LBracket);
  case ']':
    return makeToken(TokKind::RBracket);
  case ',':
    return makeToken(TokKind::Comma);
  case ';':
    return makeToken(TokKind::Semi);
  case '+':
    return makeToken(TokKind::Plus);
  case '-':
    return makeToken(TokKind::Minus);
  case '*':
    return makeToken(TokKind::Star);
  case '/':
    return makeToken(TokKind::Slash);
  case '%':
    return makeToken(TokKind::Percent);
  case '^':
    return makeToken(TokKind::Caret);
  case '!':
    return makeToken(match('=') ? TokKind::NotEq : TokKind::Bang);
  case '=':
    return makeToken(match('=') ? TokKind::EqEq : TokKind::Assign);
  case '&':
    return makeToken(match('&') ? TokKind::AmpAmp : TokKind::Amp);
  case '|':
    return makeToken(match('|') ? TokKind::PipePipe : TokKind::Pipe);
  case '<':
    if (match('<'))
      return makeToken(TokKind::Shl);
    return makeToken(match('=') ? TokKind::Le : TokKind::Lt);
  case '>':
    if (match('>'))
      return makeToken(TokKind::Shr);
    return makeToken(match('=') ? TokKind::Ge : TokKind::Gt);
  default:
    error(std::string("unexpected character '") + C + "'");
    return makeToken(TokKind::Error);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Token T = next();
    Out.push_back(T);
    if (T.Kind == TokKind::Eof)
      break;
  }
  return Out;
}

} // namespace lang
} // namespace pathfuzz
