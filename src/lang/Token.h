//===- Token.h - MiniLang tokens --------------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// MiniLang is the C-like source language the target suite (src/targets) is
// written in; it plays the role of the C/C++ sources of the UNIFUZZ
// subjects in the paper. The frontend is a classic pipeline: lexer ->
// recursive-descent parser -> AST -> lowering to MIR CFGs.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_TOKEN_H
#define PATHFUZZ_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace pathfuzz {
namespace lang {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,

  // Keywords.
  KwFn,
  KwVar,
  KwGlobal,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,

  // Operators.
  Assign, // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,
  PipePipe,
  Bang,

  Error,
};

/// Source location: 1-based line/column.
struct SrcLoc {
  uint32_t Line = 1;
  uint32_t Col = 1;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

struct Token {
  TokKind Kind = TokKind::Eof;
  SrcLoc Loc;
  std::string Text;  ///< identifier spelling
  int64_t IntVal = 0;
};

/// Printable token-kind name for diagnostics.
const char *tokKindName(TokKind K);

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_TOKEN_H
