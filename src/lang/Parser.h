//===- Parser.h - MiniLang recursive-descent parser -------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_PARSER_H
#define PATHFUZZ_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

#include <optional>

namespace pathfuzz {
namespace lang {

/// Recursive-descent parser for MiniLang with operator-precedence
/// expression parsing. Collects diagnostics instead of throwing; a parse
/// with errors yields std::nullopt.
class Parser {
public:
  explicit Parser(std::string Source);

  /// Parse the whole compilation unit.
  std::optional<Program> parseProgram();

  const std::vector<std::string> &errors() const { return Errors; }

private:
  // Token plumbing.
  const Token &cur() const { return Cur; }
  void bump();
  bool at(TokKind K) const { return Cur.Kind == K; }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void error(const std::string &Msg);
  void syncToStmtBoundary();

  // Grammar productions.
  std::optional<GlobalDecl> parseGlobal();
  std::optional<FuncDecl> parseFunc();
  StmtPtr parseStmt();
  StmtPtr parseBlockAsStmt();
  bool parseStmtList(std::vector<StmtPtr> &Out); // '{' stmts '}'
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseReturn();
  StmtPtr parseExprLeadStmt(); // assignment or expression statement

  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(int MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();

  static int precedenceOf(TokKind K);

  Lexer Lex;
  Token Cur;
  std::vector<std::string> Errors;
};

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_PARSER_H
