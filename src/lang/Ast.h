//===- Ast.h - MiniLang abstract syntax tree --------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_AST_H
#define PATHFUZZ_LANG_AST_H

#include "lang/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace pathfuzz {
namespace lang {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t {
  IntLit,  ///< IntVal
  VarRef,  ///< Name
  Unary,   ///< Op (Minus/Bang), Lhs
  Binary,  ///< Op, Lhs, Rhs (AmpAmp/PipePipe short-circuit)
  Index,   ///< Lhs [ Rhs ]
  Call,    ///< Name ( Args ) — user function or builtin
};

/// Builtin functions resolved at lowering time by name:
///   in(i)     — input byte at i (-1 past the end)
///   len()     — input length
///   alloc(n)  — heap array of n cells
///   free(p)   — release p
///   abort()   — assertion failure (crash)
struct Expr {
  ExprKind Kind;
  SrcLoc Loc;
  int64_t IntVal = 0;
  std::string Name;
  TokKind Op = TokKind::Eof;
  ExprPtr Lhs;
  ExprPtr Rhs;
  std::vector<ExprPtr> Args;
};

enum class StmtKind : uint8_t {
  Block,       ///< Body
  VarDecl,     ///< Name = A (A may be null: zero-init)
  ArrayDecl,   ///< Name [ A ] — fresh heap array
  Assign,      ///< Name = A
  IndexAssign, ///< A [ B ] = C
  If,          ///< A cond, Body, ElseBody
  While,       ///< A cond, Body
  Return,      ///< A (may be null: return 0)
  Break,
  Continue,
  ExprStmt,    ///< A
};

struct Stmt {
  StmtKind Kind;
  SrcLoc Loc;
  std::string Name;
  ExprPtr A;
  ExprPtr B;
  ExprPtr C;
  std::vector<StmtPtr> Body;
  std::vector<StmtPtr> ElseBody;
};

/// A function declaration.
struct FuncDecl {
  std::string Name;
  SrcLoc Loc;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
};

/// A global array declaration with optional constant initializer.
struct GlobalDecl {
  std::string Name;
  SrcLoc Loc;
  int64_t Size = 0;
  std::vector<int64_t> Init;
};

/// A parsed compilation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

// Convenience constructors used by the parser and tests.
ExprPtr makeIntLit(int64_t V, SrcLoc Loc = {});
ExprPtr makeVarRef(std::string Name, SrcLoc Loc = {});

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_AST_H
