//===- Compile.cpp - MiniLang to MIR compilation pipeline --------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"

#include "lang/Parser.h"
#include "mir/Builder.h"
#include "mir/Verifier.h"

#include <map>

namespace pathfuzz {
namespace lang {

std::string CompileResult::message() const {
  std::string S;
  for (const auto &E : Errors) {
    S += E;
    S += '\n';
  }
  return S;
}

namespace {

/// Signature info collected in the pre-pass so calls can be lowered
/// against forward references.
struct FuncSig {
  uint32_t Index;
  uint32_t Arity;
};

class Lowering {
public:
  Lowering(const Program &P, std::string ModuleName) : P(P) {
    Mod.Name = std::move(ModuleName);
  }

  CompileResult run() {
    declareGlobals();
    declareFunctions();
    for (const FuncDecl &F : P.Funcs)
      lowerFunction(F);

    CompileResult Result;
    Result.Errors = std::move(Errors);
    if (!Result.Errors.empty())
      return Result;

    if (Mod.findFunction("main") < 0) {
      Result.Errors.push_back("program has no 'main' function");
      return Result;
    }

    mir::VerifyResult VR = mir::verifyModule(Mod);
    if (!VR.ok()) {
      Result.Errors = std::move(VR.Errors);
      return Result;
    }
    Result.Mod = std::move(Mod);
    return Result;
  }

private:
  void error(SrcLoc Loc, const std::string &Msg) {
    Errors.push_back(Loc.str() + ": " + Msg);
  }

  void declareGlobals() {
    for (const GlobalDecl &G : P.Globals) {
      if (GlobalIndex.count(G.Name)) {
        error(G.Loc, "redefinition of global '" + G.Name + "'");
        continue;
      }
      if (G.Size < 0 || G.Size > (1 << 20)) {
        error(G.Loc, "unreasonable global size for '" + G.Name + "'");
        continue;
      }
      mir::Global MG;
      MG.Name = G.Name;
      MG.Size = static_cast<uint32_t>(G.Size);
      MG.Init = G.Init;
      GlobalIndex[G.Name] = static_cast<uint32_t>(Mod.Globals.size());
      Mod.Globals.push_back(std::move(MG));
    }
  }

  void declareFunctions() {
    for (const FuncDecl &F : P.Funcs) {
      if (Funcs.count(F.Name)) {
        error(F.Loc, "redefinition of function '" + F.Name + "'");
        continue;
      }
      if (F.Params.size() > mir::MaxCallArgs) {
        error(F.Loc, "too many parameters for '" + F.Name + "'");
        continue;
      }
      FuncSig Sig;
      Sig.Index = static_cast<uint32_t>(Mod.Funcs.size());
      Sig.Arity = static_cast<uint32_t>(F.Params.size());
      Funcs[F.Name] = Sig;
      // Placeholder; filled in by lowerFunction.
      mir::Function Placeholder;
      Placeholder.Name = F.Name;
      Placeholder.NumParams = static_cast<uint16_t>(F.Params.size());
      Mod.Funcs.push_back(std::move(Placeholder));
    }
    if (auto It = Funcs.find("main");
        It != Funcs.end() && It->second.Arity != 0)
      Errors.push_back("'main' must take no parameters");
  }

  //===--------------------------------------------------------------------===//
  // Per-function lowering state
  //===--------------------------------------------------------------------===//

  struct LoopCtx {
    uint32_t ContinueTarget;
    uint32_t BreakTarget;
  };

  void lowerFunction(const FuncDecl &F) {
    auto It = Funcs.find(F.Name);
    if (It == Funcs.end() || Mod.Funcs[It->second.Index].Name != F.Name)
      return; // a redefinition diagnosed earlier

    FB.emplace(F.Name, static_cast<uint16_t>(F.Params.size()));
    FB->function().DeclLine = F.Loc.Line;
    FB->function().DeclCol = F.Loc.Col;
    FB->function().ParamNames = F.Params;
    Scopes.clear();
    Scopes.emplace_back();
    Loops.clear();
    for (size_t K = 0; K < F.Params.size(); ++K) {
      if (!declare(F.Loc, F.Params[K], static_cast<mir::Reg>(K)))
        continue;
    }
    for (const StmtPtr &S : F.Body)
      lowerStmt(*S);
    Mod.Funcs[It->second.Index] = FB->take();
    FB.reset();
  }

  bool declare(SrcLoc Loc, const std::string &Name, mir::Reg R) {
    auto &Scope = Scopes.back();
    if (Scope.count(Name)) {
      error(Loc, "redefinition of '" + Name + "' in the same scope");
      return false;
    }
    Scope[Name] = R;
    return true;
  }

  /// Resolve a name to a local/param register; nullopt if it is not a
  /// local (might still be a global).
  std::optional<mir::Reg> lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return std::nullopt;
  }

  /// Ensure the insert block is open; statements after a return/break go
  /// into a fresh (unreachable) block, as in classic non-SSA lowering.
  void ensureOpenBlock() {
    if (!FB->isTerminated())
      return;
    uint32_t Dead = FB->newBlock("dead");
    FB->setInsertPoint(Dead);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(const Stmt &S) {
    ensureOpenBlock();
    FB->setCurLoc(S.Loc.Line, S.Loc.Col);
    switch (S.Kind) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Sub : S.Body)
        lowerStmt(*Sub);
      Scopes.pop_back();
      break;
    }
    case StmtKind::VarDecl: {
      mir::Reg V = FB->newReg();
      if (S.A) {
        mir::Reg R = lowerExpr(*S.A);
        FB->setCurLoc(S.Loc.Line, S.Loc.Col);
        FB->emitMoveInto(V, R);
      } else {
        // `var x;` zero-initializes at the MIR level for VM determinism,
        // but the store is synthetic: the lint analyses must still treat
        // x as uninitialized until the program assigns it.
        FB->setSynth(true);
        FB->emitConstInto(V, 0);
        FB->setSynth(false);
      }
      declare(S.Loc, S.Name, V);
      break;
    }
    case StmtKind::ArrayDecl: {
      mir::Reg Size = lowerExpr(*S.A);
      mir::Reg Ptr = FB->emitAlloc(Size);
      declare(S.Loc, S.Name, Ptr);
      break;
    }
    case StmtKind::Assign: {
      std::optional<mir::Reg> V = lookupLocal(S.Name);
      if (!V) {
        error(S.Loc, "assignment to undefined variable '" + S.Name + "'");
        return;
      }
      mir::Reg R = lowerExpr(*S.A);
      FB->setCurLoc(S.Loc.Line, S.Loc.Col);
      FB->emitMoveInto(*V, R);
      break;
    }
    case StmtKind::IndexAssign: {
      mir::Reg Base = lowerExpr(*S.A);
      mir::Reg Idx = lowerExpr(*S.B);
      mir::Reg Val = lowerExpr(*S.C);
      FB->setCurLoc(S.Loc.Line, S.Loc.Col);
      FB->emitStore(Base, Idx, Val);
      break;
    }
    case StmtKind::If:
      lowerIf(S);
      break;
    case StmtKind::While:
      lowerWhile(S);
      break;
    case StmtKind::Return: {
      if (S.A) {
        mir::Reg R = lowerExpr(*S.A);
        FB->setCurLoc(S.Loc.Line, S.Loc.Col);
        FB->setRet(R);
      } else {
        FB->setRetConst(0);
      }
      break;
    }
    case StmtKind::Break: {
      if (Loops.empty()) {
        error(S.Loc, "'break' outside of a loop");
        return;
      }
      FB->setBr(Loops.back().BreakTarget);
      break;
    }
    case StmtKind::Continue: {
      if (Loops.empty()) {
        error(S.Loc, "'continue' outside of a loop");
        return;
      }
      FB->setBr(Loops.back().ContinueTarget);
      break;
    }
    case StmtKind::ExprStmt:
      lowerExpr(*S.A);
      break;
    }
  }

  void lowerIf(const Stmt &S) {
    mir::Reg Cond = lowerExpr(*S.A);
    uint32_t ThenBB = FB->newBlock("if.then");
    uint32_t EndBB = FB->newBlock("if.end");
    uint32_t ElseBB = S.ElseBody.empty() ? EndBB : FB->newBlock("if.else");
    FB->setCondBr(Cond, ThenBB, ElseBB);

    FB->setInsertPoint(ThenBB);
    Scopes.emplace_back();
    for (const StmtPtr &Sub : S.Body)
      lowerStmt(*Sub);
    Scopes.pop_back();
    if (!FB->isTerminated())
      FB->setBr(EndBB);

    if (!S.ElseBody.empty()) {
      FB->setInsertPoint(ElseBB);
      Scopes.emplace_back();
      for (const StmtPtr &Sub : S.ElseBody)
        lowerStmt(*Sub);
      Scopes.pop_back();
      if (!FB->isTerminated())
        FB->setBr(EndBB);
    }
    FB->setInsertPoint(EndBB);
  }

  void lowerWhile(const Stmt &S) {
    uint32_t CondBB = FB->newBlock("while.cond");
    uint32_t BodyBB = FB->newBlock("while.body");
    uint32_t EndBB = FB->newBlock("while.end");
    FB->setBr(CondBB);

    FB->setInsertPoint(CondBB);
    mir::Reg Cond = lowerExpr(*S.A);
    FB->setCondBr(Cond, BodyBB, EndBB);

    FB->setInsertPoint(BodyBB);
    Loops.push_back({CondBB, EndBB});
    Scopes.emplace_back();
    for (const StmtPtr &Sub : S.Body)
      lowerStmt(*Sub);
    Scopes.pop_back();
    Loops.pop_back();
    if (!FB->isTerminated())
      FB->setBr(CondBB);

    FB->setInsertPoint(EndBB);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  mir::Reg lowerExpr(const Expr &E) {
    ensureOpenBlock();
    FB->setCurLoc(E.Loc.Line, E.Loc.Col);
    switch (E.Kind) {
    case ExprKind::IntLit:
      return FB->emitConst(E.IntVal);
    case ExprKind::VarRef: {
      if (std::optional<mir::Reg> V = lookupLocal(E.Name))
        return *V;
      if (auto It = GlobalIndex.find(E.Name); It != GlobalIndex.end())
        return FB->emitGlobalAddr(It->second);
      error(E.Loc, "use of undefined variable '" + E.Name + "'");
      return FB->emitConst(0);
    }
    case ExprKind::Unary: {
      mir::Reg V = lowerExpr(*E.Lhs);
      FB->setCurLoc(E.Loc.Line, E.Loc.Col);
      return E.Op == TokKind::Minus ? FB->emitNeg(V) : FB->emitNot(V);
    }
    case ExprKind::Binary:
      return lowerBinary(E);
    case ExprKind::Index: {
      mir::Reg Base = lowerExpr(*E.Lhs);
      mir::Reg Idx = lowerExpr(*E.Rhs);
      FB->setCurLoc(E.Loc.Line, E.Loc.Col);
      return FB->emitLoad(Base, Idx);
    }
    case ExprKind::Call:
      return lowerCall(E);
    }
    return FB->emitConst(0);
  }

  mir::Reg lowerBinary(const Expr &E) {
    // Short-circuit forms lower to control flow, giving the targets the
    // branchy CFG shapes real C code has.
    if (E.Op == TokKind::AmpAmp || E.Op == TokKind::PipePipe)
      return lowerShortCircuit(E);

    mir::Reg L = lowerExpr(*E.Lhs);
    mir::Reg R = lowerExpr(*E.Rhs);
    mir::BinOp Op;
    switch (E.Op) {
    case TokKind::Plus:
      Op = mir::BinOp::Add;
      break;
    case TokKind::Minus:
      Op = mir::BinOp::Sub;
      break;
    case TokKind::Star:
      Op = mir::BinOp::Mul;
      break;
    case TokKind::Slash:
      Op = mir::BinOp::Div;
      break;
    case TokKind::Percent:
      Op = mir::BinOp::Rem;
      break;
    case TokKind::Amp:
      Op = mir::BinOp::And;
      break;
    case TokKind::Pipe:
      Op = mir::BinOp::Or;
      break;
    case TokKind::Caret:
      Op = mir::BinOp::Xor;
      break;
    case TokKind::Shl:
      Op = mir::BinOp::Shl;
      break;
    case TokKind::Shr:
      Op = mir::BinOp::Shr;
      break;
    case TokKind::EqEq:
      Op = mir::BinOp::Eq;
      break;
    case TokKind::NotEq:
      Op = mir::BinOp::Ne;
      break;
    case TokKind::Lt:
      Op = mir::BinOp::Lt;
      break;
    case TokKind::Le:
      Op = mir::BinOp::Le;
      break;
    case TokKind::Gt:
      Op = mir::BinOp::Gt;
      break;
    case TokKind::Ge:
      Op = mir::BinOp::Ge;
      break;
    default:
      error(E.Loc, "invalid binary operator");
      return FB->emitConst(0);
    }
    FB->setCurLoc(E.Loc.Line, E.Loc.Col);
    return FB->emitBin(Op, L, R);
  }

  mir::Reg lowerShortCircuit(const Expr &E) {
    bool IsAnd = E.Op == TokKind::AmpAmp;
    mir::Reg Result = FB->newReg();
    mir::Reg L = lowerExpr(*E.Lhs);
    FB->emitConstInto(Result, IsAnd ? 0 : 1);
    uint32_t RhsBB = FB->newBlock(IsAnd ? "and.rhs" : "or.rhs");
    uint32_t EndBB = FB->newBlock(IsAnd ? "and.end" : "or.end");
    if (IsAnd)
      FB->setCondBr(L, RhsBB, EndBB);
    else
      FB->setCondBr(L, EndBB, RhsBB);

    FB->setInsertPoint(RhsBB);
    mir::Reg R = lowerExpr(*E.Rhs);
    mir::Reg Norm = FB->emitBinImm(mir::BinOp::Ne, R, 0);
    FB->emitMoveInto(Result, Norm);
    FB->setBr(EndBB);

    FB->setInsertPoint(EndBB);
    return Result;
  }

  mir::Reg lowerCall(const Expr &E) {
    auto arity = [&](size_t N) {
      if (E.Args.size() == N)
        return true;
      error(E.Loc, "'" + E.Name + "' expects " + std::to_string(N) +
                       " argument(s), got " + std::to_string(E.Args.size()));
      return false;
    };

    // Builtins first.
    if (E.Name == "len") {
      if (!arity(0))
        return FB->emitConst(0);
      return FB->emitInLen();
    }
    if (E.Name == "in") {
      if (!arity(1))
        return FB->emitConst(0);
      mir::Reg Idx = lowerExpr(*E.Args[0]);
      return FB->emitInByte(Idx);
    }
    if (E.Name == "alloc") {
      if (!arity(1))
        return FB->emitConst(0);
      mir::Reg N = lowerExpr(*E.Args[0]);
      return FB->emitAlloc(N);
    }
    if (E.Name == "free") {
      if (!arity(1))
        return FB->emitConst(0);
      mir::Reg Ptr = lowerExpr(*E.Args[0]);
      FB->setCurLoc(E.Loc.Line, E.Loc.Col);
      FB->emitFree(Ptr);
      return synthZero();
    }
    if (E.Name == "abort") {
      if (!arity(0))
        return FB->emitConst(0);
      FB->emitAbort(0);
      return synthZero();
    }

    auto It = Funcs.find(E.Name);
    if (It == Funcs.end()) {
      error(E.Loc, "call to undefined function '" + E.Name + "'");
      return FB->emitConst(0);
    }
    if (!arity(It->second.Arity))
      return FB->emitConst(0);
    std::vector<mir::Reg> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args)
      Args.push_back(lowerExpr(*A));
    FB->setCurLoc(E.Loc.Line, E.Loc.Col);
    return FB->emitCall(It->second.Index, Args);
  }

  /// Placeholder value for void builtins (`free`, `abort` yield nothing at
  /// the source level); synthetic so the dead-store lint ignores it.
  mir::Reg synthZero() {
    FB->setSynth(true);
    mir::Reg R = FB->emitConst(0);
    FB->setSynth(false);
    return R;
  }

  const Program &P;
  mir::Module Mod;
  std::map<std::string, uint32_t> GlobalIndex;
  std::map<std::string, FuncSig> Funcs;
  std::vector<std::string> Errors;

  std::optional<mir::FunctionBuilder> FB;
  std::vector<std::map<std::string, mir::Reg>> Scopes;
  std::vector<LoopCtx> Loops;
};

} // namespace

CompileResult compileProgram(const Program &P, std::string ModuleName) {
  return Lowering(P, std::move(ModuleName)).run();
}

CompileResult compileSource(const std::string &Source,
                            std::string ModuleName) {
  Parser Psr(Source);
  std::optional<Program> Prog = Psr.parseProgram();
  if (!Prog) {
    CompileResult R;
    R.Errors = Psr.errors();
    if (R.Errors.empty())
      R.Errors.push_back("parse failed");
    return R;
  }
  return compileProgram(*Prog, std::move(ModuleName));
}

} // namespace lang
} // namespace pathfuzz
