//===- Lexer.h - MiniLang lexer ---------------------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_LANG_LEXER_H
#define PATHFUZZ_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace lang {

/// Tokenizes MiniLang source. Supports decimal, hex (0x...) and character
/// ('h', with \n \t \0 \\ \' escapes) literals, // and /* */ comments.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lex the next token. After Eof, keeps returning Eof.
  Token next();

  /// Lex everything (for tests).
  std::vector<Token> lexAll();

  /// Diagnostics accumulated while lexing (bad characters etc.).
  const std::vector<std::string> &errors() const { return Errors; }

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipTrivia();
  Token makeToken(TokKind Kind) const;
  Token lexNumber();
  Token lexCharLit();
  Token lexIdent();
  void error(const std::string &Msg);

  std::string Src;
  size_t Pos = 0;
  SrcLoc Loc;
  SrcLoc TokStart;
  std::vector<std::string> Errors;
};

} // namespace lang
} // namespace pathfuzz

#endif // PATHFUZZ_LANG_LEXER_H
