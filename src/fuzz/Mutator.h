//===- Mutator.h - Havoc/splice mutation engine -----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// AFL++-style input mutation: stacked "havoc" transformations (bit flips,
// interesting values, arithmetic, block delete/clone/overwrite), splicing
// with another queue entry, and dictionary injection of values harvested
// from comparison operands (the cmplog / input-to-state-correspondence
// analogue the paper enables for all fuzzer configurations). The paper
// changes only the coverage feedback, so this machinery is shared verbatim
// by every configuration.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_FUZZ_MUTATOR_H
#define PATHFUZZ_FUZZ_MUTATOR_H

#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace fuzz {

using Input = std::vector<uint8_t>;

struct MutatorConfig {
  size_t MaxLen = 512;
  unsigned MaxStackPow = 6; ///< stack 1 << (1..MaxStackPow) mutations
};

/// Deterministic mutation engine; all randomness comes from the supplied
/// Rng so campaigns replay exactly.
class Mutator {
public:
  Mutator(Rng &R, MutatorConfig Config) : R(R), Config(Config) {}

  /// Stacked havoc mutations in place. Dict may be empty.
  void havoc(Input &Data, const std::vector<int64_t> &Dict);

  /// Splice Data with Other at random points, then havoc.
  void splice(Input &Data, const Input &Other,
              const std::vector<int64_t> &Dict);

  /// One random atomic mutation (exposed for tests).
  void mutateOnce(Input &Data, const std::vector<int64_t> &Dict);

private:
  void insertBytes(Input &Data, size_t Pos, const uint8_t *Src, size_t N);
  void writeValueLE(Input &Data, int64_t Value, unsigned Width, bool Insert);

  Rng &R;
  MutatorConfig Config;
};

} // namespace fuzz
} // namespace pathfuzz

#endif // PATHFUZZ_FUZZ_MUTATOR_H
