//===- Queue.cpp - Fuzzing corpus and favored-set computation -----------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Queue.h"

#include <algorithm>
#include <unordered_map>

namespace pathfuzz {
namespace fuzz {

Corpus::Corpus(uint32_t MapSize) { TopRated.assign(MapSize, -1); }

void Corpus::add(QueueEntry Entry) {
  int32_t Index = static_cast<int32_t>(Entries.size());
  Entries.push_back(std::move(Entry));
  const QueueEntry &E = Entries.back();

  for (uint32_t MapIdx : E.MapSet) {
    int32_t Cur = TopRated[MapIdx];
    if (Cur < 0 || E.score() < Entries[static_cast<size_t>(Cur)].score()) {
      TopRated[MapIdx] = Index;
      NeedCull = true;
    }
  }
}

void Corpus::cullIfNeeded() {
  if (!NeedCull)
    return;
  recomputeFavored();
}

void Corpus::markFuzzed(size_t Index) {
  QueueEntry &E = Entries[Index];
  if (E.Favored && !E.WasFuzzed && PendingFavoredCount > 0)
    --PendingFavoredCount;
  E.WasFuzzed = true;
}

void Corpus::recomputeFavored() {
  NeedCull = false;
  ++CullPasses;
  for (QueueEntry &E : Entries)
    E.Favored = false;

  // AFL's cull_queue: walk the map; the first top-rated entry owning a
  // still-uncovered index becomes favored and claims its whole trace.
  std::vector<uint8_t> Uncovered(TopRated.size(), 1);
  for (size_t MapIdx = 0; MapIdx < TopRated.size(); ++MapIdx) {
    if (!Uncovered[MapIdx] || TopRated[MapIdx] < 0)
      continue;
    QueueEntry &E = Entries[static_cast<size_t>(TopRated[MapIdx])];
    E.Favored = true;
    for (uint32_t Idx : E.MapSet)
      Uncovered[Idx] = 0;
  }

  PendingFavoredCount = 0;
  for (const QueueEntry &E : Entries)
    PendingFavoredCount += (E.Favored && !E.WasFuzzed);
}

void Corpus::restoreState(std::vector<QueueEntry> NewEntries,
                          std::vector<int32_t> NewTopRated, bool NewNeedCull,
                          uint32_t NewPendingFavored, uint64_t NewCullPasses) {
  Entries = std::move(NewEntries);
  TopRated = std::move(NewTopRated);
  NeedCull = NewNeedCull;
  PendingFavoredCount = NewPendingFavored;
  CullPasses = NewCullPasses;
}

uint32_t Corpus::favoredCount() const {
  uint32_t N = 0;
  for (const QueueEntry &E : Entries)
    N += E.Favored;
  return N;
}

std::vector<size_t> Corpus::edgePreservingSubset() const {
  // Top-rated over *edges* (computed on demand; edge IDs are sparse so a
  // hash map replaces the dense table).
  std::unordered_map<uint32_t, size_t> Best;
  for (size_t I = 0; I < Entries.size(); ++I) {
    for (uint32_t Edge : Entries[I].EdgeSet) {
      auto It = Best.find(Edge);
      if (It == Best.end() || Entries[I].score() < Entries[It->second].score())
        Best[Edge] = I;
    }
  }

  std::vector<uint8_t> Taken(Entries.size(), 0);
  // Greedy pass in ascending edge-ID order for determinism.
  std::vector<uint32_t> EdgeIds;
  EdgeIds.reserve(Best.size());
  for (const auto &[Edge, _] : Best)
    EdgeIds.push_back(Edge);
  std::sort(EdgeIds.begin(), EdgeIds.end());

  std::unordered_map<uint32_t, bool> EdgeCovered;
  std::vector<size_t> Result;
  for (uint32_t Edge : EdgeIds) {
    if (EdgeCovered[Edge])
      continue;
    size_t E = Best[Edge];
    if (!Taken[E]) {
      Taken[E] = 1;
      Result.push_back(E);
    }
    for (uint32_t Covers : Entries[E].EdgeSet)
      EdgeCovered[Covers] = true;
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

} // namespace fuzz
} // namespace pathfuzz
