//===- Fuzzer.cpp - Coverage-guided fuzzing loop ------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "support/FaultInjection.h"
#include "vm/Image.h"

#include <algorithm>

namespace pathfuzz {
namespace fuzz {

Fuzzer::Fuzzer(const mir::Module &M, const instr::InstrumentReport &Report,
               const instr::ShadowEdgeIndex &Shadow, FuzzerOptions Opts)
    : M(M), Report(Report), Opts(Opts), Machine(M, &Shadow),
      Trace(Opts.MapSizeLog2), Virgin(Trace.size()), R(Opts.Seed),
      Mut(R, Opts.Mut), Q(Trace.size()) {
  if (this->Opts.Image)
    Machine.attachImage(this->Opts.Image);
  // Selective (two-tier) execution: construct the cheap machine over the
  // same module and shadow index. Fault injection is stateful across
  // executions (per-site hit counters), so an armed harness disables the
  // mode — a cheap run would consume injection budget the full replay
  // then misses.
  SelectiveOn = this->Opts.Selective && !fault::enabled();
  if (SelectiveOn) {
    CheapMachine = std::make_unique<vm::Vm>(M, &Shadow);
    if (this->Opts.CheapImage)
      CheapMachine->attachImage(this->Opts.CheapImage);
  }
  EdgeCovered.assign(Shadow.numEdges(), 0);
  if (telemetry::Compiled && this->Opts.Trace.Enabled) {
    Tr = std::make_unique<telemetry::InstanceTrace>(this->Opts.Trace);
    telemetry::MetricsRegistry &Reg = Tr->metrics();
    MExecs = Reg.counter("execs");
    MHeapAllocs = Reg.counter("vm.heap.allocs");
    MHeapCells = Reg.counter("vm.heap.cells");
    HSteps = Reg.histogram("exec.steps");
    HInputSize = Reg.histogram("input.size");
    HHeapCells = Reg.histogram("exec.heap.cells");
    if (this->Opts.Image) {
      // Fast-path-only series, registered only when an image is attached
      // so interpreter traces carry no vm.fastpath.* family (identity
      // comparisons across engines exclude exactly that family).
      MResetBytes = Reg.counter("vm.fastpath.reset.bytes");
      *Reg.gauge("vm.fastpath.image.bytes") =
          static_cast<int64_t>(this->Opts.Image->byteSize());
    }
    if (SelectiveOn) {
      // Selective-only series: how the two-tier split played out. Engine-
      // local (like vm.fastpath.*): identity comparisons across selective
      // settings and across resumes exclude the family, because a resumed
      // run re-replays paths its predecessor already consumed.
      MSelSkipped = Reg.counter("vm.selective.skipped");
      MSelReplays = Reg.counter("vm.selective.replays");
      MSelMismatch = Reg.counter("vm.selective.replay.mismatch");
    }
  }
}

vm::ExecResult Fuzzer::executeRaw(const Input &Data, bool LogCmps) {
  Trace.reset();
  vm::FeedbackContext Fb;
  Fb.Map = Trace.data();
  Fb.MapMask = Trace.mask();
  Fb.FuncKeys = Report.FuncKeys.data();
  Fb.CallPathHash = Opts.PathAflAssist;
  // Events the VM records (injected faults) carry the index this
  // execution is about to get.
  Fb.Trace = Tr.get();
  Fb.TraceExec = Stats.Execs + 1;

  vm::ExecOptions EO = Opts.Exec;
  EO.LogCmps = LogCmps;
  return Machine.run(Data.data(), Data.size(), EO, &Fb);
}

vm::ExecResult Fuzzer::executeCheap(const Input &Data, bool LogCmps,
                                    uint64_t &Sig) {
  // No map, no trace: the run is invisible to coverage and telemetry. The
  // coverage map is left untouched (not even reset) — a skipped execution
  // must not perturb it, and a replaced one resets it in executeRaw. The
  // crash/hang outcome, steps, cmp operands and shadow edges the result
  // carries are exact: none of them depend on probes.
  vm::FeedbackContext Fb;
  Fb.PathSig = &Sig;
  vm::ExecOptions EO = Opts.Exec;
  EO.LogCmps = LogCmps;
  return CheapMachine->run(Data.data(), Data.size(), EO, &Fb);
}

void Fuzzer::sampleGrowth() {
  if (Opts.GrowthSampleInterval == 0)
    return;
  if (Stats.Execs % Opts.GrowthSampleInterval == 0)
    Stats.QueueGrowth.push_back({Stats.Execs, Q.size()});
}

void Fuzzer::sampleTrace() {
  if (!Tr || !Tr->sampleDue(Stats.Execs))
    return;
  telemetry::Sample S;
  S.Exec = Stats.Execs;
  S.QueueSize = Q.size();
  S.Favored = Q.favoredCount();
  S.EdgesCovered = EdgeCoveredCount;
  S.Crashes = Stats.Crashes;
  S.UniqueCrashes = Crashes.size();
  S.Hangs = Stats.Hangs;
  S.UniqueBugs = Bugs.size();
  S.CullPasses = Q.cullPasses();
  S.DictSize = CmpDict.size();
  Tr->sample(S);
}

bool Fuzzer::processResult(const Input &Data, const vm::ExecResult &Res,
                           uint32_t Depth, bool ForceAdd, bool SkipNovelty) {
  ++Stats.Execs;
  sampleGrowth();

  // Telemetry for the completed execution. `Compiled` is a constant, so
  // the whole block folds away under -DPATHFUZZ_NO_TELEMETRY; otherwise
  // the disabled cost is the one null test.
  if (telemetry::Compiled && Tr) {
    ++*MExecs;
    *MHeapAllocs += Res.HeapAllocs;
    *MHeapCells += Res.HeapCellsAllocated;
    if (MResetBytes)
      *MResetBytes += Res.DirtyGlobalCells * sizeof(int64_t);
    HSteps->observe(Res.Steps);
    HInputSize->observe(Data.size());
    HHeapCells->observe(Res.HeapCellsAllocated);
    uint8_t Outcome = Res.crashed() ? 1 : (Res.hung() ? 2 : 0);
    Tr->event(telemetry::EventKind::ExecCompleted, Stats.Execs,
              static_cast<uint32_t>(Data.size()), Res.Steps, Outcome);
    sampleTrace();
  }

  // Union shadow edges (crashing runs count for coverage too, as the
  // paper's afl-showmap pass replays everything the fuzzer saved).
  for (uint32_t Edge : Res.ShadowEdges) {
    if (!EdgeCovered[Edge]) {
      EdgeCovered[Edge] = 1;
      ++EdgeCoveredCount;
    }
  }

  // Harvest comparison operands.
  if (Opts.UseCmpDict) {
    for (int64_t V : Res.CmpOperands) {
      if (CmpDict.size() >= Opts.MaxCmpDict)
        break;
      if (CmpDictSet.insert(V).second)
        CmpDict.push_back(V);
    }
  }

  if (Res.crashed()) {
    ++Stats.Crashes;
    uint64_t Hash = Res.TheFault.stackHash();
    Bugs.insert(Res.TheFault.bugId());
    if (CrashHashes.insert(Hash).second) {
      PF_TRACE_EVENT(Tr.get(), telemetry::EventKind::CrashDeduped,
                     Stats.Execs, static_cast<uint32_t>(Crashes.size()),
                     Hash);
      CrashRecord C;
      C.Data = Data;
      C.TheFault = Res.TheFault;
      C.StackHash = Hash;
      C.BugId = Res.TheFault.bugId();
      C.AtExec = Stats.Execs;
      Crashes.push_back(std::move(C));
    }
    return false;
  }
  // Speed baseline for the energy bonus: every non-crashing execution
  // contributes. (Accumulating only over saved queue entries drifted the
  // average toward novelty-bearing — often slower — runs.)
  AvgStepsNum += Res.Steps;
  AvgStepsDen += 1;

  if (Res.hung()) {
    ++Stats.Hangs;
    uint64_t Hash = fnv1a(Data.data(), Data.size());
    if (HangHashes.insert(Hash).second) {
      PF_TRACE_EVENT(Tr.get(), telemetry::EventKind::HangDeduped, Stats.Execs,
                     static_cast<uint32_t>(Hangs.size()), Hash);
      HangRecord H;
      H.Data = Data;
      H.Steps = Res.Steps;
      H.AtExec = Stats.Execs;
      H.InputHash = Hash;
      Hangs.push_back(std::move(H));
    }
    return false;
  }

  // Selective skip: the execution ran only on the cheap tier because its
  // exec-path signature was seen before, which means an earlier full
  // execution with a byte-identical trace already fed the virgin map —
  // the novelty verdict is None by construction, and the (stale) map must
  // not be read.
  if (SkipNovelty && !ForceAdd)
    return false;

  Trace.classifyCounts();
  cov::Novelty Nov = Virgin.hasNewBits(Trace);
  if (Nov == cov::Novelty::None && !ForceAdd)
    return false;

  QueueEntry E;
  E.Data = Data;
  E.Checksum = Trace.checksum();
  E.Steps = Res.Steps;
  E.Depth = Depth;
  E.FoundAtExec = Stats.Execs;
  E.EdgeSet = Res.ShadowEdges;
  // Word-skipping scan: traces are sparse and entries are added often
  // under the path feedback.
  const auto *Words = reinterpret_cast<const uint64_t *>(Trace.data());
  const uint8_t *T = Trace.data();
  for (uint32_t W = 0; W < Trace.size() / 8; ++W) {
    if (!Words[W])
      continue;
    for (uint32_t I = W * 8; I < W * 8 + 8; ++I)
      if (T[I])
        E.MapSet.push_back(I);
  }
  E.Density = static_cast<uint32_t>(E.MapSet.size());

  Stats.LastFindExec = Stats.Execs;
  Q.add(std::move(E));
  PF_TRACE_EVENT(Tr.get(), telemetry::EventKind::SeedAdded, Stats.Execs,
                 static_cast<uint32_t>(Q.size() - 1), Data.size());
  return true;
}

void Fuzzer::seedDict(const std::vector<int64_t> &Values) {
  for (int64_t V : Values) {
    if (CmpDict.size() >= Opts.MaxCmpDict)
      break;
    if (CmpDictSet.insert(V).second)
      CmpDict.push_back(V);
  }
}

void Fuzzer::addSeed(const Input &Data) {
  // Seeds are always retained, novelty or not (AFL keeps all seeds),
  // unless they crash or hang outright.
  vm::ExecResult Res = executeRaw(Data, Opts.UseCmpDict);
  processResult(Data, Res, 0, /*ForceAdd=*/true);
}

uint32_t Fuzzer::energyFor(const QueueEntry &E) const {
  // Simplified AFL perf_score: favor fast, fresh, favored and deep
  // entries.
  uint64_t Score = 48;
  if (E.Favored)
    Score *= 2;
  if (!E.WasFuzzed)
    Score *= 2;
  if (AvgStepsDen) {
    uint64_t Avg = AvgStepsNum / AvgStepsDen;
    if (E.Steps * 2 < Avg)
      Score = Score * 3 / 2;
    else if (E.Steps > Avg * 4)
      Score /= 2;
  }
  Score += std::min<uint32_t>(E.Depth, 16) * 4;
  return static_cast<uint32_t>(std::clamp<uint64_t>(Score, 16, 384));
}

void Fuzzer::run(uint64_t ExecBudget) {
  if (Q.empty()) {
    // All seeds crashed or none were given: start from a tiny default.
    addSeed({'A', 'A', 'A', 'A'});
    if (Q.empty())
      return; // even the default input crashes at depth 0
  }

  // The watchdog stop: a campaign driver may bound this instance harder
  // than the budget. Checked wherever the budget is checked, so a tripped
  // limit stops the loop at the next execution boundary.
  auto stopNow = [this] {
    return Opts.ExecHardLimit && Stats.Execs >= Opts.ExecHardLimit;
  };

  // Checkpoints fire at the top of the scheduling loop — a safe point
  // where no mid-entry mutation state is live — each time the campaign-
  // cumulative exec count crosses an interval multiple. NextCkpt is
  // recomputed the same way after a restore, so a resumed run emits the
  // same remaining checkpoint schedule as the uninterrupted one.
  const uint64_t Interval = Opts.OnCheckpoint ? Opts.CheckpointInterval : 0;
  uint64_t NextCkpt =
      Interval
          ? ((Opts.CheckpointBase + Stats.Execs) / Interval + 1) * Interval
          : 0;

  while (Stats.Execs < ExecBudget && !stopNow()) {
    if (Interval && Opts.CheckpointBase + Stats.Execs >= NextCkpt) {
      // Recorded before the hook runs so the event is part of the
      // snapshot the hook writes.
      PF_TRACE_EVENT(Tr.get(), telemetry::EventKind::CheckpointWritten,
                     Stats.Execs, 0, Opts.CheckpointBase + Stats.Execs);
      Opts.OnCheckpoint(*this);
      NextCkpt =
          ((Opts.CheckpointBase + Stats.Execs) / Interval + 1) * Interval;
    }
    uint64_t CyclesBefore = Sched.Cycles;
    size_t Index = Sched.next(Q.size());
    if (Sched.Cycles != CyclesBefore)
      PF_TRACE_EVENT(Tr.get(), telemetry::EventKind::CycleStarted, Stats.Execs,
                     static_cast<uint32_t>(Sched.Cycles), Q.size());
    Stats.QueueCycles = Sched.completedCycles();
    Q.cullIfNeeded();
    QueueEntry &E = Q[Index];

    // AFL's skip probabilities.
    if (!E.Favored) {
      if (Q.pendingFavored() > 0) {
        if (R.chance(99, 100))
          continue;
      } else if (E.WasFuzzed) {
        if (R.chance(95, 100))
          continue;
      } else {
        if (R.chance(75, 100))
          continue;
      }
    }

    uint32_t Energy = energyFor(E);
    uint32_t Depth = E.Depth + 1;
    Input Base = E.Data; // E may be invalidated by queue growth
    Q.markFuzzed(Index);

    for (uint32_t I = 0; I < Energy && Stats.Execs < ExecBudget && !stopNow();
         ++I) {
      Input Data = Base;
      bool DoSplice = Q.size() > 1 && R.chance(Opts.SplicePercent, 100);
      if (DoSplice) {
        // Re-draw when the donor is the entry being fuzzed (AFL does the
        // same): splicing an input with itself is a no-op mutation.
        size_t Donor = R.index(Q.size());
        while (Donor == Index)
          Donor = R.index(Q.size());
        Mut.splice(Data, Q[Donor].Data, CmpDict);
      } else {
        Mut.havoc(Data, CmpDict);
      }
      // Log comparisons on a small fraction of runs to refresh the
      // dictionary without paying the cost everywhere.
      bool LogCmps = Opts.UseCmpDict && R.oneIn(16);
      vm::ExecResult Res;
      bool SkipNovelty = false;
      if (SelectiveOn) {
        // Two-tier step: run the cheap (probe-free, map-less) tier first;
        // only an unseen exec-path signature triggers the full, map-
        // writing execution. Determinism makes the replay exact, so the
        // observable campaign state evolves byte-identically to always
        // running the full tier — the only difference is cost.
        uint64_t Sig = 0;
        Res = executeCheap(Data, LogCmps, Sig);
        if (Res.crashed() || Res.hung()) {
          // Crash/hang bookkeeping never reads the coverage map and every
          // field it uses is exact on the cheap tier: process directly.
        } else if (!SeenSigs.insert(Sig).second) {
          SkipNovelty = true;
          if (MSelSkipped)
            ++*MSelSkipped;
        } else {
          if (MSelReplays)
            ++*MSelReplays;
          vm::ExecResult Full = executeRaw(Data, LogCmps);
          // The replay contract says the full run reproduces the cheap
          // run observation-for-observation; a mismatch means the engines
          // (or the elision) diverged. Count it — the identity tests turn
          // any nonzero value into a failure.
          if (MSelMismatch &&
              (Full.Steps != Res.Steps ||
               Full.TheFault.Kind != Res.TheFault.Kind ||
               Full.ReturnValue != Res.ReturnValue))
            ++*MSelMismatch;
          Res = std::move(Full);
        }
      } else {
        Res = executeRaw(Data, LogCmps);
      }
      processResult(Data, Res, Depth, /*ForceAdd=*/false, SkipNovelty);
    }
  }
}

std::vector<uint32_t> Fuzzer::coveredEdgeList() const {
  std::vector<uint32_t> Out;
  Out.reserve(EdgeCoveredCount);
  for (uint32_t I = 0; I < EdgeCovered.size(); ++I)
    if (EdgeCovered[I])
      Out.push_back(I);
  return Out;
}

} // namespace fuzz
} // namespace pathfuzz
