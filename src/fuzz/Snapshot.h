//===- Snapshot.h - Versioned, checksummed fuzzer-state snapshots -*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Binary serialization for checkpoint/resume: a little-endian byte writer
// and a bounds-checked reader, a versioned + checksummed envelope every
// snapshot blob is sealed in, and serializers for the fuzz-layer records
// that both Fuzzer::snapshot() and the campaign-level checkpoints reuse.
//
// Envelope layout (all little-endian):
//
//   u32 magic "PFZS"   u32 version   u64 payload length
//   u64 FNV-1a checksum of the payload   payload bytes
//
// openSnapshot() rejects wrong magic, unknown versions, truncation and
// checksum mismatches, so a half-written checkpoint file can never be
// half-restored: restore is all-or-nothing by construction.
//
// The payload encodes the *mutable* fuzzer state only. Immutable inputs —
// the instrumented module, the instrumentation report, the shadow-edge
// index, the options — are reconstructed by the caller (the build cache
// makes them bit-identical), and restore() verifies the structural
// fingerprint (map size, shadow edge count) before touching any state.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_FUZZ_SNAPSHOT_H
#define PATHFUZZ_FUZZ_SNAPSHOT_H

#include "fuzz/Fuzzer.h"
#include "support/Bytes.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace pathfuzz {
namespace fuzz {

constexpr uint32_t SnapshotMagic = 0x535a4650; // "PFZS" little-endian
/// Version 2 added the telemetry section (metrics counters, histograms,
/// the sample series and the event ring) so a resumed campaign reports
/// the same cumulative series as an uninterrupted one.
constexpr uint32_t SnapshotVersion = 2;

// The byte writer/reader moved to support/Bytes.h (the telemetry layer
// serializes with them too); re-exported here for the existing users.
using pathfuzz::ByteReader;
using pathfuzz::ByteWriter;

/// Wrap a payload in the magic/version/length/checksum envelope.
std::vector<uint8_t> sealSnapshot(std::vector<uint8_t> Payload);

/// Validate the envelope; on success fills Payload and returns true. Any
/// corruption (magic, version, truncation, checksum) returns false.
bool openSnapshot(const std::vector<uint8_t> &Blob,
                  std::vector<uint8_t> &Payload);

// Record serializers shared with the campaign checkpoint code.
void writeInput(ByteWriter &W, const Input &Data);
Input readInput(ByteReader &R);
void writeCrashRecord(ByteWriter &W, const CrashRecord &C);
CrashRecord readCrashRecord(ByteReader &R);
void writeHangRecord(ByteWriter &W, const HangRecord &H);
HangRecord readHangRecord(ByteReader &R);

} // namespace fuzz
} // namespace pathfuzz

#endif // PATHFUZZ_FUZZ_SNAPSHOT_H
