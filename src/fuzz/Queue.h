//===- Queue.h - Fuzzing corpus and favored-set computation -----*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The fuzzer's queue of interesting test cases plus AFL's "top-rated"
// favored-corpus machinery: for every coverage-map entry the cheapest
// (steps x size) covering input is tracked, and a greedy pass marks a
// minimal-ish covering subset as *favored*; non-favored entries are mostly
// skipped during scheduling. Section III-B1 of the paper builds its culling
// criterion on exactly this fast set-cover approximation — applied to
// *edge* sets rather than map entries — which edgePreservingSubset()
// implements.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_FUZZ_QUEUE_H
#define PATHFUZZ_FUZZ_QUEUE_H

#include "fuzz/Mutator.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace fuzz {

/// One retained test case.
struct QueueEntry {
  Input Data;
  uint64_t Checksum = 0; ///< classified-trace checksum (calibration)
  uint32_t Density = 0;  ///< nonzero classified map entries
  uint64_t Steps = 0;    ///< VM steps (execution cost)
  uint32_t Depth = 0;    ///< mutation chain depth from the seeds
  bool Favored = false;
  bool WasFuzzed = false;
  uint64_t FoundAtExec = 0;
  /// Feedback-map indices this input covers (sorted) — favored set input.
  std::vector<uint32_t> MapSet;
  /// Shadow (true) edges this input covers (sorted) — culling/coverage.
  std::vector<uint32_t> EdgeSet;

  /// AFL's fav_factor: lower is better.
  uint64_t score() const { return Steps * (Data.size() + 1); }
};

/// The corpus plus the top-rated index.
class Corpus {
public:
  explicit Corpus(uint32_t MapSize);

  /// Append an entry and update the top-rated table. Favored marks are
  /// recomputed lazily (AFL defers cull_queue the same way); call
  /// cullIfNeeded() before reading Favored flags.
  void add(QueueEntry Entry);

  /// Run the favored-marking pass if the top-rated table changed since the
  /// last pass (AFL's cull_queue guarded by score_changed).
  void cullIfNeeded();

  /// Record that an entry received a fuzzing round (keeps the pending-
  /// favored counter exact without rescanning the queue).
  void markFuzzed(size_t Index);

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  QueueEntry &operator[](size_t I) { return Entries[I]; }
  const QueueEntry &operator[](size_t I) const { return Entries[I]; }
  const std::vector<QueueEntry> &entries() const { return Entries; }

  /// Number of favored entries not yet fuzzed (drives skip probabilities).
  /// Cached; exact after cullIfNeeded().
  uint32_t pendingFavored() const { return PendingFavoredCount; }
  uint32_t favoredCount() const;

  /// Re-run the greedy favored marking now (normally automatic).
  void recomputeFavored();

  /// Lifetime favored-marking passes (telemetry's culling-stats series).
  uint64_t cullPasses() const { return CullPasses; }

  /// Greedy minimal-ish subset of entry indices whose EdgeSets union to
  /// the union of all entries' EdgeSets: the paper's culling criterion
  /// ("retain test cases exercising all edges encountered", via the
  /// favored-corpus approximation of set cover).
  std::vector<size_t> edgePreservingSubset() const;

  // -- Snapshot support (fuzz/Snapshot.cpp). The corpus is serialized
  //    exactly — including the top-rated table and the deferred-cull flag —
  //    so a restored fuzzer replays the favored-marking schedule
  //    byte-identically instead of merely equivalently.
  const std::vector<int32_t> &topRatedTable() const { return TopRated; }
  bool cullPending() const { return NeedCull; }
  /// Replace the whole corpus state with deserialized contents. TopRated
  /// must have the same size as the map this corpus was built for.
  void restoreState(std::vector<QueueEntry> NewEntries,
                    std::vector<int32_t> NewTopRated, bool NewNeedCull,
                    uint32_t NewPendingFavored, uint64_t NewCullPasses);

private:
  std::vector<QueueEntry> Entries;
  std::vector<int32_t> TopRated; ///< per map index: best entry or -1
  bool NeedCull = false;
  uint32_t PendingFavoredCount = 0;
  uint64_t CullPasses = 0;
};

} // namespace fuzz
} // namespace pathfuzz

#endif // PATHFUZZ_FUZZ_QUEUE_H
