//===- Mutator.cpp - Havoc/splice mutation engine ----------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include <algorithm>
#include <cstring>

namespace pathfuzz {
namespace fuzz {

namespace {

/// AFL's "interesting" 8-bit values.
const int8_t Interesting8[] = {-128, -1, 0, 1, 16, 32, 64, 100, 127};
/// A few 16/32-bit interesting values (lengths, off-by-one traps).
const int32_t Interesting32[] = {-1,  0,    1,    16,   32,    64,   127,
                                 128, 255,  256,  512,  1000,  1024, 4096,
                                 -128, -32768, 32767, 65535, 100663045};

} // namespace

void Mutator::insertBytes(Input &Data, size_t Pos, const uint8_t *Src,
                          size_t N) {
  if (Data.size() + N > Config.MaxLen)
    return;
  Data.insert(Data.begin() + static_cast<long>(Pos), Src, Src + N);
}

void Mutator::writeValueLE(Input &Data, int64_t Value, unsigned Width,
                           bool Insert) {
  uint8_t Buf[8];
  for (unsigned I = 0; I < Width; ++I)
    Buf[I] = static_cast<uint8_t>(static_cast<uint64_t>(Value) >> (8 * I));
  if (Insert) {
    size_t Pos = R.index(Data.size() + 1);
    insertBytes(Data, Pos, Buf, Width);
    return;
  }
  if (Data.size() < Width)
    return;
  size_t Pos = R.index(Data.size() - Width + 1);
  std::memcpy(Data.data() + Pos, Buf, Width);
}

void Mutator::mutateOnce(Input &Data, const std::vector<int64_t> &Dict) {
  // Keep inputs non-empty so position draws are valid.
  if (Data.empty())
    Data.push_back(static_cast<uint8_t>(R.next()));

  switch (R.below(14)) {
  case 0: { // flip one bit
    size_t Pos = R.index(Data.size());
    Data[Pos] ^= static_cast<uint8_t>(1u << R.below(8));
    break;
  }
  case 1: { // set interesting byte
    size_t Pos = R.index(Data.size());
    Data[Pos] = static_cast<uint8_t>(
        Interesting8[R.below(sizeof(Interesting8))]);
    break;
  }
  case 2: { // random byte
    size_t Pos = R.index(Data.size());
    Data[Pos] = static_cast<uint8_t>(R.next());
    break;
  }
  case 3: { // byte arithmetic
    size_t Pos = R.index(Data.size());
    int Delta = static_cast<int>(R.below(35)) + 1;
    Data[Pos] = static_cast<uint8_t>(Data[Pos] +
                                     (R.oneIn(2) ? Delta : -Delta));
    break;
  }
  case 4: { // 2-byte LE interesting
    writeValueLE(Data,
                 Interesting32[R.below(std::size(Interesting32))], 2,
                 /*Insert=*/false);
    break;
  }
  case 5: { // 4-byte LE interesting
    writeValueLE(Data,
                 Interesting32[R.below(std::size(Interesting32))], 4,
                 /*Insert=*/false);
    break;
  }
  case 6: { // delete a block
    if (Data.size() < 2)
      break;
    size_t Len = 1 + R.index(std::min<size_t>(Data.size() - 1, 16));
    size_t Pos = R.index(Data.size() - Len + 1);
    Data.erase(Data.begin() + static_cast<long>(Pos),
               Data.begin() + static_cast<long>(Pos + Len));
    break;
  }
  case 7: { // clone a block (insert)
    size_t Len = 1 + R.index(std::min<size_t>(Data.size(), 16));
    size_t From = R.index(Data.size() - Len + 1);
    Input Block(Data.begin() + static_cast<long>(From),
                Data.begin() + static_cast<long>(From + Len));
    size_t To = R.index(Data.size() + 1);
    insertBytes(Data, To, Block.data(), Block.size());
    break;
  }
  case 8: { // insert random bytes
    size_t Len = 1 + R.below(8);
    uint8_t Buf[8];
    for (size_t I = 0; I < Len; ++I)
      Buf[I] = static_cast<uint8_t>(R.next());
    size_t Pos = R.index(Data.size() + 1);
    insertBytes(Data, Pos, Buf, Len);
    break;
  }
  case 9: { // overwrite block from elsewhere in the input
    if (Data.size() < 2)
      break;
    size_t Len = 1 + R.index(std::min<size_t>(Data.size() - 1, 16));
    size_t From = R.index(Data.size() - Len + 1);
    size_t To = R.index(Data.size() - Len + 1);
    std::memmove(Data.data() + To, Data.data() + From, Len);
    break;
  }
  case 10: { // repeat-extend (grow towards length-gated code)
    size_t Len = 1 + R.below(16);
    uint8_t Byte =
        Data.empty() ? static_cast<uint8_t>(R.next()) : Data[R.index(Data.size())];
    Input Block(Len, Byte);
    insertBytes(Data, R.index(Data.size() + 1), Block.data(), Block.size());
    break;
  }
  case 11:   // dictionary overwrite (cmplog / input-to-state analogue)
  case 12: { // dictionary insert
    if (Dict.empty()) {
      size_t Pos = R.index(Data.size());
      Data[Pos] = static_cast<uint8_t>(R.next());
      break;
    }
    int64_t Value = Dict[R.index(Dict.size())];
    unsigned Width = R.oneIn(3) ? 1 : (R.oneIn(2) ? 2 : 4);
    // Values that fit a byte are most often what parsers compare against.
    if (Value >= 0 && Value < 256 && R.chance(3, 4))
      Width = 1;
    writeValueLE(Data, Value, Width, /*Insert=*/R.below(14) == 12);
    break;
  }
  case 13: { // truncate or extend to a random length
    if (R.oneIn(2) && Data.size() > 1) {
      Data.resize(1 + R.index(Data.size()));
    } else {
      size_t Target = 1 + R.index(Config.MaxLen);
      while (Data.size() < Target && Data.size() < Config.MaxLen)
        Data.push_back(static_cast<uint8_t>(R.next()));
    }
    break;
  }
  }
  if (Data.size() > Config.MaxLen)
    Data.resize(Config.MaxLen);
}

void Mutator::havoc(Input &Data, const std::vector<int64_t> &Dict) {
  unsigned Stack = 1u << (1 + R.below(Config.MaxStackPow));
  for (unsigned I = 0; I < Stack; ++I)
    mutateOnce(Data, Dict);
}

void Mutator::splice(Input &Data, const Input &Other,
                     const std::vector<int64_t> &Dict) {
  if (!Other.empty() && !Data.empty()) {
    size_t CutA = R.index(Data.size());
    size_t CutB = R.index(Other.size());
    Input Merged(Data.begin(), Data.begin() + static_cast<long>(CutA));
    Merged.insert(Merged.end(), Other.begin() + static_cast<long>(CutB),
                  Other.end());
    if (Merged.size() > Config.MaxLen)
      Merged.resize(Config.MaxLen);
    if (!Merged.empty())
      Data = std::move(Merged);
  }
  havoc(Data, Dict);
}

} // namespace fuzz
} // namespace pathfuzz
