//===- Snapshot.cpp - Versioned, checksummed fuzzer-state snapshots -----------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Snapshot.h"

#include "support/Hashing.h"

#include <algorithm>

namespace pathfuzz {
namespace fuzz {

std::vector<uint8_t> sealSnapshot(std::vector<uint8_t> Payload) {
  ByteWriter W;
  W.u32(SnapshotMagic);
  W.u32(SnapshotVersion);
  W.u64(Payload.size());
  W.u64(fnv1a(Payload.data(), Payload.size()));
  W.bytes(Payload.data(), Payload.size());
  return W.take();
}

bool openSnapshot(const std::vector<uint8_t> &Blob,
                  std::vector<uint8_t> &Payload) {
  ByteReader R(Blob);
  if (R.u32() != SnapshotMagic)
    return false;
  if (R.u32() != SnapshotVersion)
    return false;
  uint64_t Len = R.u64();
  uint64_t Checksum = R.u64();
  if (!R.ok() || Len != R.remaining())
    return false;
  std::vector<uint8_t> P = R.raw(Len);
  if (!R.done() || fnv1a(P.data(), P.size()) != Checksum)
    return false;
  Payload = std::move(P);
  return true;
}

void writeInput(ByteWriter &W, const Input &Data) { W.blob(Data); }

Input readInput(ByteReader &R) { return R.blob(); }

namespace {

void writeFault(ByteWriter &W, const vm::Fault &F) {
  W.u8(static_cast<uint8_t>(F.Kind));
  W.u32(F.Func);
  W.u32(F.Block);
  W.u32(F.InstrIdx);
  W.u64(F.Stack.size());
  for (const vm::StackFrameRef &Fr : F.Stack) {
    W.u32(Fr.Func);
    W.u32(Fr.Block);
    W.u32(Fr.InstrIdx);
  }
}

vm::Fault readFault(ByteReader &R) {
  vm::Fault F;
  F.Kind = static_cast<vm::FaultKind>(R.u8());
  F.Func = R.u32();
  F.Block = R.u32();
  F.InstrIdx = R.u32();
  uint64_t N = R.u64();
  if (N > R.remaining() / 12) {
    // Poison the reader; the caller's done()/ok() check rejects the blob.
    R.invalidate();
    N = 0;
  }
  F.Stack.resize(N);
  for (vm::StackFrameRef &Fr : F.Stack) {
    Fr.Func = R.u32();
    Fr.Block = R.u32();
    Fr.InstrIdx = R.u32();
  }
  return F;
}

} // namespace

void writeCrashRecord(ByteWriter &W, const CrashRecord &C) {
  writeInput(W, C.Data);
  writeFault(W, C.TheFault);
  W.u64(C.StackHash);
  W.u64(C.BugId);
  W.u64(C.AtExec);
}

CrashRecord readCrashRecord(ByteReader &R) {
  CrashRecord C;
  C.Data = readInput(R);
  C.TheFault = readFault(R);
  C.StackHash = R.u64();
  C.BugId = R.u64();
  C.AtExec = R.u64();
  return C;
}

void writeHangRecord(ByteWriter &W, const HangRecord &H) {
  writeInput(W, H.Data);
  W.u64(H.Steps);
  W.u64(H.AtExec);
  W.u64(H.InputHash);
}

HangRecord readHangRecord(ByteReader &R) {
  HangRecord H;
  H.Data = readInput(R);
  H.Steps = R.u64();
  H.AtExec = R.u64();
  H.InputHash = R.u64();
  return H;
}

namespace {

void writeQueueEntry(ByteWriter &W, const QueueEntry &E) {
  W.blob(E.Data);
  W.u64(E.Checksum);
  W.u32(E.Density);
  W.u64(E.Steps);
  W.u32(E.Depth);
  W.u8(E.Favored);
  W.u8(E.WasFuzzed);
  W.u64(E.FoundAtExec);
  W.vecU32(E.MapSet);
  W.vecU32(E.EdgeSet);
}

QueueEntry readQueueEntry(ByteReader &R) {
  QueueEntry E;
  E.Data = R.blob();
  E.Checksum = R.u64();
  E.Density = R.u32();
  E.Steps = R.u64();
  E.Depth = R.u32();
  E.Favored = R.u8() != 0;
  E.WasFuzzed = R.u8() != 0;
  E.FoundAtExec = R.u64();
  E.MapSet = R.vecU32();
  E.EdgeSet = R.vecU32();
  return E;
}

} // namespace

std::vector<uint8_t> Fuzzer::snapshot() const {
  ByteWriter W;

  // Structural fingerprint, validated before restore() mutates anything.
  W.u32(Trace.size());
  W.u32(static_cast<uint32_t>(EdgeCovered.size()));

  // RNG stream position and schedule cursor.
  uint64_t RngState[4];
  R.saveState(RngState);
  for (uint64_t S : RngState)
    W.u64(S);
  W.u64(Sched.CurIdx);
  W.u64(Sched.CycleEnd);
  W.u64(Sched.Cycles);

  // Stats.
  W.u64(Stats.Execs);
  W.u64(Stats.Crashes);
  W.u64(Stats.Hangs);
  W.u64(Stats.LastFindExec);
  W.u64(Stats.QueueCycles);
  W.u64(Stats.QueueGrowth.size());
  for (auto [Execs, QueueSize] : Stats.QueueGrowth) {
    W.u64(Execs);
    W.u64(QueueSize);
  }
  W.u64(AvgStepsNum);
  W.u64(AvgStepsDen);

  // Coverage: the virgin map and the shadow-edge bitmap.
  W.bytes(Virgin.data(), Trace.size());
  W.bytes(EdgeCovered.data(), EdgeCovered.size());

  // Cmp dictionary (the set is rebuilt from the vector on restore).
  W.vecI64(CmpDict);

  // Findings. The hash sets are exactly the records' hashes, so only the
  // records are serialized; Bugs is materialized sorted for determinism.
  std::vector<uint64_t> BugList(Bugs.begin(), Bugs.end());
  std::sort(BugList.begin(), BugList.end());
  W.vecU64(BugList);
  W.u64(Crashes.size());
  for (const CrashRecord &C : Crashes)
    writeCrashRecord(W, C);
  W.u64(Hangs.size());
  for (const HangRecord &H : Hangs)
    writeHangRecord(W, H);

  // Corpus, including the top-rated table and deferred-cull flag.
  W.u64(Q.size());
  for (size_t I = 0; I < Q.size(); ++I)
    writeQueueEntry(W, Q[I]);
  const std::vector<int32_t> &TopRated = Q.topRatedTable();
  W.u64(TopRated.size());
  for (int32_t T : TopRated)
    W.u32(static_cast<uint32_t>(T));
  W.u8(Q.cullPending());
  W.u32(Q.pendingFavored());
  W.u64(Q.cullPasses());

  // Telemetry section (version 2): the instance recorder's cumulative
  // state, so a killed-and-resumed campaign reports the same metrics,
  // samples and event history as an uninterrupted one. Untraced fuzzers
  // write an absence byte.
  if (Tr) {
    W.u8(1);
    Tr->serializeState(W);
  } else {
    W.u8(0);
  }

  return sealSnapshot(W.take());
}

bool Fuzzer::restore(const std::vector<uint8_t> &Blob) {
  std::vector<uint8_t> Payload;
  if (!openSnapshot(Blob, Payload))
    return false;
  ByteReader Rd(Payload);

  // Structural fingerprint first: nothing is mutated on mismatch. Past
  // this point the checksummed payload is trusted (a failed read below
  // still returns false, but the fuzzer must then be discarded).
  if (Rd.u32() != Trace.size() ||
      Rd.u32() != static_cast<uint32_t>(EdgeCovered.size()) || !Rd.ok())
    return false;

  // The selective-mode signature cache is deliberately absent from the
  // blob (it is pure cache: a resumed run just replays more). It must not
  // survive the restore either — entries observed before the restore may
  // name paths the restored virgin map has never consumed, and a stale
  // skip would drop real novelty.
  SeenSigs.clear();

  uint64_t RngState[4];
  for (uint64_t &S : RngState)
    S = Rd.u64();
  R.loadState(RngState);
  Sched.CurIdx = Rd.u64();
  Sched.CycleEnd = Rd.u64();
  Sched.Cycles = Rd.u64();

  Stats.Execs = Rd.u64();
  Stats.Crashes = Rd.u64();
  Stats.Hangs = Rd.u64();
  Stats.LastFindExec = Rd.u64();
  Stats.QueueCycles = Rd.u64();
  Stats.QueueGrowth.clear();
  uint64_t NGrowth = Rd.u64();
  if (NGrowth > Rd.remaining() / 16)
    return false;
  Stats.QueueGrowth.reserve(NGrowth);
  for (uint64_t I = 0; I < NGrowth; ++I) {
    uint64_t Execs = Rd.u64();
    uint64_t QueueSize = Rd.u64();
    Stats.QueueGrowth.push_back({Execs, QueueSize});
  }
  AvgStepsNum = Rd.u64();
  AvgStepsDen = Rd.u64();

  std::vector<uint8_t> VirginBytes(Trace.size());
  if (!Rd.bytes(VirginBytes.data(), VirginBytes.size()))
    return false;
  if (!Virgin.restoreFrom(VirginBytes.data(), VirginBytes.size()))
    return false;
  if (!Rd.bytes(EdgeCovered.data(), EdgeCovered.size()))
    return false;
  EdgeCoveredCount = 0;
  for (uint8_t B : EdgeCovered)
    EdgeCoveredCount += (B != 0);

  CmpDict = Rd.vecI64();
  CmpDictSet.clear();
  CmpDictSet.insert(CmpDict.begin(), CmpDict.end());

  std::vector<uint64_t> BugList = Rd.vecU64();
  Bugs.clear();
  Bugs.insert(BugList.begin(), BugList.end());

  uint64_t NCrashes = Rd.u64();
  Crashes.clear();
  CrashHashes.clear();
  for (uint64_t I = 0; I < NCrashes && Rd.ok(); ++I) {
    Crashes.push_back(readCrashRecord(Rd));
    CrashHashes.insert(Crashes.back().StackHash);
  }
  uint64_t NHangs = Rd.u64();
  Hangs.clear();
  HangHashes.clear();
  for (uint64_t I = 0; I < NHangs && Rd.ok(); ++I) {
    Hangs.push_back(readHangRecord(Rd));
    HangHashes.insert(Hangs.back().InputHash);
  }

  uint64_t NEntries = Rd.u64();
  std::vector<QueueEntry> Entries;
  for (uint64_t I = 0; I < NEntries && Rd.ok(); ++I)
    Entries.push_back(readQueueEntry(Rd));
  uint64_t NTop = Rd.u64();
  if (NTop != Trace.size())
    return false;
  std::vector<int32_t> TopRated(NTop);
  for (int32_t &T : TopRated)
    T = static_cast<int32_t>(Rd.u32());
  bool NeedCull = Rd.u8() != 0;
  uint32_t PendingFavored = Rd.u32();
  uint64_t CullPasses = Rd.u64();

  // Telemetry section. When this fuzzer is untraced the section is still
  // parsed (into a scratch recorder) so the trailing done() check keeps
  // validating the whole payload.
  if (Rd.u8() != 0) {
    if (Tr) {
      if (!Tr->restoreState(Rd))
        return false;
    } else {
      telemetry::InstanceTrace Scratch{telemetry::TraceConfig{}};
      if (!Scratch.restoreState(Rd))
        return false;
    }
  }

  if (!Rd.done())
    return false;
  Q.restoreState(std::move(Entries), std::move(TopRated), NeedCull,
                 PendingFavored, CullPasses);
  return true;
}

} // namespace fuzz
} // namespace pathfuzz
