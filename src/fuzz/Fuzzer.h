//===- Fuzzer.h - Coverage-guided fuzzing loop ------------------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// An AFL++-style greybox fuzzing loop over the MIR VM. One Fuzzer instance
// is one fuzzing "session": it owns the coverage map, the virgin map, the
// corpus, the mutation RNG and the crash collection. The feedback
// mechanism is whatever the module was instrumented with — the paper's
// point is that everything else is shared across configurations:
//
//  - scheduling with favored-entry skip probabilities (AFL's 99/95/75%),
//  - energy assignment (a simplified perf_score),
//  - havoc/splice mutations plus a comparison-operand dictionary
//    (the cmplog / input-to-state analogue),
//  - crash collection with stack-hash dedup ("unique crashes") and
//    ground-truth bug identity ("unique bugs" after the paper's manual
//    triage),
//  - campaign budgets measured in executions (the deterministic analogue
//    of the paper's wall-clock budgets).
//
// The fuzzer also tracks the union of *shadow* edges covered, regardless
// of feedback mode — the afl-showmap analogue behind Table IV and the
// culling criterion.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_FUZZ_FUZZER_H
#define PATHFUZZ_FUZZ_FUZZER_H

#include "cov/CoverageMap.h"
#include "fuzz/Mutator.h"
#include "fuzz/Queue.h"
#include "instrument/Instrument.h"
#include "telemetry/Trace.h"
#include "vm/Vm.h"

#include <functional>
#include <memory>
#include <unordered_set>

namespace pathfuzz {
namespace fuzz {

class Fuzzer;

struct FuzzerOptions {
  uint32_t MapSizeLog2 = 16;
  uint64_t Seed = 1;
  MutatorConfig Mut;
  vm::ExecOptions Exec;
  /// Harvest comparison operands into the mutation dictionary.
  bool UseCmpDict = true;
  /// PathAFL-style whole-program call-path hashing assist.
  bool PathAflAssist = false;
  /// Probability (percent) of splicing instead of plain havoc.
  uint32_t SplicePercent = 15;
  /// Queue-size sampling interval in executions (Fig. 2 / Table I data).
  uint32_t GrowthSampleInterval = 2048;
  size_t MaxCmpDict = 512;

  /// Checkpoint hook: OnCheckpoint fires at a safe point (the top of the
  /// scheduling loop) each time CheckpointBase + Execs crosses a multiple
  /// of CheckpointInterval. Purely observational — it never perturbs the
  /// schedule, so runs with and without checkpointing are byte-identical.
  /// CheckpointBase offsets the interval arithmetic for multi-instance
  /// campaigns (culling rounds, opportunistic phases) so checkpoints pace
  /// by campaign-cumulative executions. 0 disables.
  uint64_t CheckpointInterval = 0;
  uint64_t CheckpointBase = 0;
  std::function<void(const Fuzzer &)> OnCheckpoint;

  /// Watchdog plumbing: run() additionally stops once Execs reaches this
  /// instance-local count (0 = no limit), letting a campaign driver convert
  /// a runaway instance into a recorded error instead of a wedged worker.
  uint64_t ExecHardLimit = 0;

  /// Telemetry: when enabled (and compiled in) the fuzzer owns a flight
  /// recorder + metrics registry + sample series. Purely observational —
  /// traced and untraced runs are byte-identical in campaign results.
  telemetry::TraceConfig Trace;

  /// Pre-decoded program image for the VM fast path (vm/Image.h). Must be
  /// built from the same instrumented module and shadow index the fuzzer
  /// is constructed over; may be shared read-only across instances. Null
  /// runs the reference interpreter — either way every execution result
  /// is bit-identical, the fast path only changes per-exec cost. The
  /// campaign drivers set this from the build cache when the fast path is
  /// enabled (see CampaignOptions::VmMode).
  const vm::ProgramImage *Image = nullptr;

  /// Two-tier selective execution (vm::SelectiveMode resolved by the
  /// campaign driver). Bulk executions run on a second cheap machine with
  /// no coverage map attached; the full, map-writing execution happens
  /// only when the cheap run's exec-path signature was never seen before.
  /// Equal signatures imply byte-identical coverage traces on this
  /// deterministic VM, so results, queue contents and campaign-visible
  /// coverage stay byte-identical to Selective = false — only per-exec
  /// cost changes. Automatically disabled while fault injection is armed
  /// (injected faults are stateful across executions, which breaks the
  /// cheap/full replay equivalence).
  bool Selective = false;
  /// Probe-free twin of Image for the cheap tier (same module, probe slots
  /// rewritten to no-ops; see instrument/Elide.h). Null makes the cheap
  /// tier run the reference interpreter with a null map — same contract,
  /// less speedup. Ignored unless Selective is set.
  const vm::ProgramImage *CheapImage = nullptr;
};

struct FuzzStats {
  uint64_t Execs = 0;
  uint64_t Crashes = 0; ///< total crashing executions
  uint64_t Hangs = 0;   ///< total hung (step-limited) executions
  uint64_t LastFindExec = 0; ///< exec index of the last queue addition
  uint64_t QueueCycles = 0;  ///< completed full passes over the queue
  /// (execs, queue size) samples.
  std::vector<std::pair<uint64_t, uint64_t>> QueueGrowth;
};

/// A deduplicated crash (one per distinct stack hash).
struct CrashRecord {
  Input Data;
  vm::Fault TheFault;
  uint64_t StackHash = 0;
  uint64_t BugId = 0;
  uint64_t AtExec = 0;
};

/// A deduplicated hang (one per distinct input): the step-limited input
/// and how far it got. The Table V overhead discussion reads these off
/// CampaignResult instead of losing them to a bare counter.
struct HangRecord {
  Input Data;
  uint64_t Steps = 0;     ///< steps executed when the limit hit
  uint64_t AtExec = 0;    ///< exec index at which the hang was recorded
  uint64_t InputHash = 0; ///< content hash used for deduplication
};

/// AFL-style queue-cycle cursor. The cycle length is latched when a cycle
/// begins, so entries appended mid-cycle are first scheduled at the start
/// of the next cycle. (The previous cursor advanced modulo the *live*
/// queue size: when the queue grew mid-cycle it wrapped early, starving
/// newly added tail entries for an entire extra pass.)
struct CycleScheduler {
  size_t CurIdx = 0;
  size_t CycleEnd = 0; ///< queue size latched when the cycle began
  uint64_t Cycles = 0; ///< cycles started (AFL's queue_cycle)

  /// Next queue index to schedule; QueueSize must be nonzero and may only
  /// grow between calls.
  size_t next(size_t QueueSize) {
    if (CurIdx >= CycleEnd) {
      CurIdx = 0;
      CycleEnd = QueueSize;
      ++Cycles;
    }
    return CurIdx++;
  }

  /// Completed full passes over the queue.
  uint64_t completedCycles() const { return Cycles ? Cycles - 1 : 0; }
};

class Fuzzer {
public:
  /// M must already be instrumented; Report is the instrumentation report
  /// for it (per-function keys); Shadow indexes the *original* module.
  /// All three must outlive the Fuzzer.
  Fuzzer(const mir::Module &M, const instr::InstrumentReport &Report,
         const instr::ShadowEdgeIndex &Shadow, FuzzerOptions Opts);

  /// Execute a seed and add it to the corpus (unless it crashes, which is
  /// recorded instead — matching the paper's removal of crashing inputs
  /// from opportunistic seed queues).
  void addSeed(const Input &Data);

  /// Pre-load comparison-operand dictionary values (what AFL++'s cmplog
  /// re-mines from a seed queue when an instance restarts; the culling
  /// and opportunistic drivers carry the dictionary across instances).
  void seedDict(const std::vector<int64_t> &Values);

  /// Fuzz until the *cumulative* execution count reaches ExecBudget (or
  /// the ExecHardLimit watchdog stop, whichever comes first).
  void run(uint64_t ExecBudget);

  /// Adjust the watchdog stop after construction (campaign drivers set it
  /// per instance from the campaign-cumulative allowance).
  void setExecHardLimit(uint64_t Limit) { Opts.ExecHardLimit = Limit; }
  /// True when run() returned because of ExecHardLimit rather than the
  /// budget: the instance was declared runaway.
  bool hardLimitHit() const {
    return Opts.ExecHardLimit && Stats.Execs >= Opts.ExecHardLimit;
  }

  /// Serialize the complete mutable fuzzer state (corpus + metadata,
  /// virgin/coverage bookkeeping, shadow edge set, RNG stream position,
  /// stats, crash/hang/bug records, cmp dictionary, schedule cursor) into
  /// a versioned, checksummed blob. Defined in Snapshot.cpp.
  std::vector<uint8_t> snapshot() const;

  /// Restore state captured by snapshot() on a compatibly-configured
  /// fuzzer (same map size, same module/shadow index). Returns false —
  /// without touching any state — on envelope corruption, version
  /// mismatch or structural mismatch. A restored fuzzer continues run()
  /// byte-identically to the instance that was snapshotted.
  bool restore(const std::vector<uint8_t> &Blob);

  /// Execute one input under this fuzzer's feedback without corpus or
  /// novelty bookkeeping (exposed for tools, calibration and tests).
  vm::ExecResult executeRaw(const Input &Data, bool LogCmps = false);

  Corpus &corpus() { return Q; }
  const Corpus &corpus() const { return Q; }
  const FuzzStats &stats() const { return Stats; }
  const std::vector<CrashRecord> &uniqueCrashes() const { return Crashes; }
  /// Deduplicated step-limited inputs (one record per distinct input).
  const std::vector<HangRecord> &uniqueHangs() const { return Hangs; }

  /// Number of distinct shadow edges covered so far (crashing runs
  /// included).
  uint32_t edgesCovered() const { return EdgeCoveredCount; }
  /// Sorted list of covered shadow edge IDs.
  std::vector<uint32_t> coveredEdgeList() const;

  /// Distinct ground-truth bugs found (the "unique bugs" measure).
  const std::unordered_set<uint64_t> &bugIds() const { return Bugs; }

  const std::vector<int64_t> &cmpDict() const { return CmpDict; }

  /// Whether executions run on the VM fast path (an image is attached).
  bool usingFastPath() const { return Machine.usingImage(); }
  /// Snapshot-reset accounting of the underlying Vm (all zero on the
  /// interpreter).
  const vm::ResetStats &vmResetStats() const { return Machine.resetStats(); }

  /// The instance recorder; null when tracing is disabled or compiled out.
  telemetry::InstanceTrace *trace() { return Tr.get(); }
  const telemetry::InstanceTrace *trace() const { return Tr.get(); }

private:
  /// Process one executed input; returns true if it was added to the
  /// corpus. ForceAdd retains the input even without coverage novelty
  /// (seeds). SkipNovelty marks a selective-mode cheap execution whose
  /// exec-path signature was already seen: the coverage map was neither
  /// reset nor written for it, so the novelty check is skipped (its
  /// outcome is already known to be None); crash/hang/cmp/shadow-edge
  /// bookkeeping — all exact on the cheap tier — still runs.
  bool processResult(const Input &Data, const vm::ExecResult &Res,
                     uint32_t Depth, bool ForceAdd = false,
                     bool SkipNovelty = false);
  /// Selective-mode cheap execution: no coverage map, no trace, just the
  /// exec-path signature (and the exact crash/hang/cmp/shadow data).
  vm::ExecResult executeCheap(const Input &Data, bool LogCmps,
                              uint64_t &Sig);
  uint32_t energyFor(const QueueEntry &E) const;
  void sampleGrowth();
  void sampleTrace();

  const mir::Module &M;
  const instr::InstrumentReport &Report;
  FuzzerOptions Opts;
  vm::Vm Machine;
  /// Cheap tier of the selective mode; null when Selective is off.
  std::unique_ptr<vm::Vm> CheapMachine;
  /// Exec-path signatures of clean executions already consumed by the
  /// novelty check. A pure cache — never serialized into snapshots (a
  /// resumed run re-replays and converges to the same results), cleared
  /// on restore so stale entries cannot outlive the restored virgin map.
  std::unordered_set<uint64_t> SeenSigs;
  bool SelectiveOn = false;
  cov::CoverageMap Trace;
  cov::VirginMap Virgin;
  Rng R;
  Mutator Mut;
  Corpus Q;
  FuzzStats Stats;

  std::vector<CrashRecord> Crashes;
  std::unordered_set<uint64_t> CrashHashes;
  std::unordered_set<uint64_t> Bugs;

  std::vector<HangRecord> Hangs;
  std::unordered_set<uint64_t> HangHashes;

  std::vector<uint8_t> EdgeCovered; ///< dense bitmap over shadow edge IDs
  uint32_t EdgeCoveredCount = 0;

  std::vector<int64_t> CmpDict;
  std::unordered_set<int64_t> CmpDictSet;

  CycleScheduler Sched;
  uint64_t AvgStepsNum = 0, AvgStepsDen = 0;

  // Telemetry. The metric pointers are cached at construction so the hot
  // path never does a name lookup; all null when tracing is off.
  std::unique_ptr<telemetry::InstanceTrace> Tr;
  uint64_t *MExecs = nullptr;
  uint64_t *MHeapAllocs = nullptr;
  uint64_t *MHeapCells = nullptr;
  /// Fast-path-only counter (bytes of global state the snapshot reset
  /// restores); null when tracing is off *or* no image is attached, so
  /// interpreter traces never grow a vm.fastpath.* metric family.
  uint64_t *MResetBytes = nullptr;
  /// Selective-mode-only counters (registered only when SelectiveOn, so
  /// non-selective traces never grow a vm.selective.* metric family —
  /// like vm.fastpath.*, an engine-local family excluded from identity
  /// comparisons; see telemetry::isEngineLocalMetric).
  uint64_t *MSelSkipped = nullptr;
  uint64_t *MSelReplays = nullptr;
  uint64_t *MSelMismatch = nullptr;
  telemetry::Histogram *HSteps = nullptr;
  telemetry::Histogram *HInputSize = nullptr;
  telemetry::Histogram *HHeapCells = nullptr;
};

} // namespace fuzz
} // namespace pathfuzz

#endif // PATHFUZZ_FUZZ_FUZZER_H
