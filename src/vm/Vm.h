//===- Vm.h - MIR interpreter with memory-safety checking -------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// The VM executes (instrumented) MIR programs on fuzz inputs, standing in
// for native execution under AddressSanitizer in the paper's setup:
//
//  - A simulated heap with per-object bounds, free-state tracking and
//    pointer validation turns memory-safety violations into deterministic
//    Fault records carrying the faulting site and the call stack, enabling
//    the paper's triage pipeline (stack-hash "unique crashes" and
//    root-cause "unique bugs").
//  - Coverage probes inserted by src/instrument are interpreted against a
//    caller-provided coverage map (the AFL++ shared-memory map analogue).
//  - Independent of the feedback mode, the VM can record the set of
//    *shadow* edges traversed (see instrument/ShadowEdges.h), the
//    afl-showmap analogue used for the paper's coverage study and for the
//    culling strategy.
//  - Comparison operands can be logged, feeding the input-to-state
//    mutation stage (the cmplog/RedQueen analogue the paper enables).
//  - A step budget bounds runaway executions (the timeout analogue); step
//    exhaustion is a hang, not a crash.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_VM_VM_H
#define PATHFUZZ_VM_VM_H

#include "instrument/ShadowEdges.h"
#include "mir/Mir.h"
#include "support/Hashing.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace telemetry {
class InstanceTrace;
} // namespace telemetry
namespace vm {

class ProgramImage;

/// Execution outcome kinds. Everything except None and StepLimit is a
/// crash (StepLimit is the hang/timeout analogue).
enum class FaultKind : uint8_t {
  None,
  OobRead,
  OobWrite,
  UseAfterFree,
  DoubleFree,
  InvalidFree,
  BadPointer,
  DivByZero,
  Abort,
  StackOverflow,
  OutOfMemory,
  StepLimit,
};

/// Whether the fault kind counts as a crash for the fuzzer.
inline bool isCrash(FaultKind K) {
  return K != FaultKind::None && K != FaultKind::StepLimit;
}

const char *faultKindName(FaultKind K);

/// One frame of the call stack at fault time.
struct StackFrameRef {
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t InstrIdx = 0;
};

/// A crash report: the faulting site plus the call stack (innermost
/// first).
struct Fault {
  FaultKind Kind = FaultKind::None;
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t InstrIdx = 0;
  std::vector<StackFrameRef> Stack;

  /// Ground-truth bug identity: the faulting site and kind. This is the
  /// analogue of the paper's *manual* crash-to-bug deduplication — with
  /// planted bugs the root cause is known exactly.
  uint64_t bugId() const {
    uint64_t Id = (static_cast<uint64_t>(Func) << 40) |
                  (static_cast<uint64_t>(Block) << 16) | InstrIdx;
    return hashCombine(Id, static_cast<uint64_t>(Kind));
  }

  /// Stack-trace hash over the top `Frames` frames (default 5, as the
  /// paper's crash clustering does): the "unique crash" identity.
  uint64_t stackHash(unsigned Frames = 5) const;
};

/// Feedback plumbing: where probes write. Null Map disables feedback.
struct FeedbackContext {
  uint8_t *Map = nullptr;
  uint32_t MapMask = 0; ///< map size minus one (size is a power of two)
  /// Per-function keys for path-map indexing: (path_id ^ key) & MapMask,
  /// the paper's (path_id XOR function) % map_size scheme.
  const uint64_t *FuncKeys = nullptr;
  /// PathAFL-style assist: hash the sequence of *selected* function calls
  /// into the map (coarse whole-program path tracking).
  bool CallPathHash = false;
  /// Flight recorder for events raised below the fuzzer (injected
  /// faults); null disables recording. TraceExec is the instance-local
  /// exec index stamped on those events.
  telemetry::InstanceTrace *Trace = nullptr;
  uint64_t TraceExec = 0;
  /// Exec-path signature sink for the selective (two-tier) mode: when
  /// non-null, the engine hashes the sequence of taken successor slots at
  /// every multi-successor terminator (CondBr taken/not-taken, Switch case
  /// selection) into *PathSig. Both engines compute the identical value —
  /// it is a pure function of the branch decisions, which on this
  /// deterministic VM fully determine the executed instruction stream and
  /// therefore every coverage-map write. Equal signatures on clean execs
  /// imply byte-identical coverage traces; the two-tier fuzzer uses that
  /// to skip the novelty check for already-seen paths (see fuzz/Fuzzer.cpp).
  uint64_t *PathSig = nullptr;
};

/// Per-execution limits and switches.
struct ExecOptions {
  uint64_t StepLimit = 500000;
  uint32_t MaxCallDepth = 192;
  uint64_t HeapCellLimit = 1 << 22; ///< total allocatable cells per run
  uint32_t MaxObjects = 1 << 16;
  bool RecordShadowEdges = true;
  bool LogCmps = false;
  uint32_t MaxCmpLog = 128;
};

/// Result of one execution.
struct ExecResult {
  Fault TheFault;
  uint64_t Steps = 0;
  int64_t ReturnValue = 0;
  /// Unique shadow edges covered, ascending (empty if not recorded).
  std::vector<uint32_t> ShadowEdges;
  /// Logged comparison operand values (for the cmplog stage).
  std::vector<int64_t> CmpOperands;
  /// Heap pressure of this execution (successful allocations only).
  uint64_t HeapAllocs = 0;
  uint64_t HeapCellsAllocated = 0;
  /// Fast path only: global cells this execution dirtied (page-granular;
  /// what the snapshot reset will restore before the next run). Always 0
  /// on the reference interpreter — a bookkeeping observation, not part
  /// of the execution semantics or the identity contract.
  uint64_t DirtyGlobalCells = 0;

  bool crashed() const { return isCrash(TheFault.Kind); }
  bool hung() const { return TheFault.Kind == FaultKind::StepLimit; }
};

/// Cumulative snapshot-reset accounting of one fast-path Vm: how much of
/// the global image the persistent-mode reset actually had to restore.
struct ResetStats {
  uint64_t Resets = 0;          ///< dirty-page resets performed
  uint64_t DirtyPagesReset = 0; ///< pages restored from the pristine image
  uint64_t DirtyCellsReset = 0; ///< cells those pages span
};

/// The interpreter. One Vm per module; run() is reentrant per input and
/// reuses internal buffers across executions for speed.
class Vm {
public:
  /// Shadow may be null to disable shadow-edge recording entirely.
  Vm(const mir::Module &M, const instr::ShadowEdgeIndex *Shadow = nullptr);

  /// Execute @main on the given input.
  ExecResult run(const uint8_t *Input, size_t Len, const ExecOptions &Opts,
                 FeedbackContext *Fb = nullptr);

  /// Attach a pre-decoded image of this Vm's module: run() switches to the
  /// threaded-dispatch, snapshot-reset executor (Exec.cpp), which produces
  /// bit-identical results to the reference interpreter. The image must
  /// have been built from the same module (and with a shadow index if this
  /// Vm has one); it is borrowed, not owned, and may be shared read-only
  /// across Vms. Pass null to detach and fall back to the interpreter.
  void attachImage(const ProgramImage *Image);
  bool usingImage() const { return Img != nullptr; }

  /// Snapshot-reset accounting since the image was attached.
  const ResetStats &resetStats() const { return RStats; }

  const mir::Module &module() const { return M; }

private:
  struct HeapObject {
    uint32_t Size = 0;
    uint32_t CellBase = 0; ///< offset into Cells
    bool Freed = false;
  };

  struct Frame {
    uint32_t Func = 0;
    uint32_t Block = 0;
    uint32_t InstrIdx = 0;
    uint32_t RegBase = 0; ///< offset into RegStack
    mir::Reg RetReg = 0;  ///< caller register receiving the return value
  };

  /// Fast-path call frame: the reference Frame with (Block, InstrIdx)
  /// collapsed into one saved PC. SavedPC of the *top* frame is dead (the
  /// live PC is an executor local); below it, each frame's SavedPC is its
  /// resume point just past the call.
  struct FastFrame {
    uint32_t SavedPC = 0;
    uint32_t RegBase = 0;
    mir::Reg RetReg = 0;
  };

  /// The fast-path executor (Exec.cpp). Requires Img.
  ExecResult runImage(const uint8_t *Input, size_t Len,
                      const ExecOptions &Opts, FeedbackContext *Fb);

  /// Snapshot reset: restore the persistent globals prefix of
  /// Objects/Cells to the image's pristine state, touching only pages the
  /// previous execution dirtied.
  void resetGlobalsFromImage();

  const mir::Module &M;
  const instr::ShadowEdgeIndex *Shadow;
  int MainIndex = -1;

  // Reused per-execution state.
  std::vector<int64_t> RegStack;
  std::vector<Frame> Frames;
  std::vector<HeapObject> Objects;
  std::vector<int64_t> Cells;
  std::vector<uint8_t> EdgeSeen;
  std::vector<uint32_t> EdgeTouched;

  // Fast-path state (meaningful only while Img is attached).
  const ProgramImage *Img = nullptr;
  std::vector<FastFrame> FFrames;
  /// Whether the persistent globals prefix of Objects/Cells is live (set
  /// after the first fast-path run materializes it).
  bool GlobalsLive = false;
  std::vector<uint8_t> DirtyPage;  ///< per 64-cell page of the globals
  std::vector<uint32_t> DirtyList; ///< pages dirtied by the last run
  ResetStats RStats;
};

} // namespace vm
} // namespace pathfuzz

#endif // PATHFUZZ_VM_VM_H
