//===- Image.h - Pre-decoded VM program image -------------------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// The reference interpreter in Vm.cpp walks the MIR object graph on every
// step: Frames.back() -> M.Funcs[f] -> .Blocks[b] -> .Instrs[i], four
// dependent loads and a vector bounds dance before the opcode switch even
// begins. For a fuzzing campaign that executes the same module millions of
// times, all of that work is loop-invariant — so the ProgramImage hoists
// it to decode time, once per (subject, feedback mode):
//
//  - every instruction of every block is lowered into one flat, 32-byte,
//    pointer-free DInstr in a single contiguous array; a "program counter"
//    is just an index into it;
//  - block boundaries disappear: terminators become explicit decoded
//    branch ops whose successor *PCs* are resolved, so taking an edge is
//    one store to the PC instead of a block-object lookup;
//  - per-terminator shadow-edge IDs (instr::ShadowEdgeIndex lookups) are
//    resolved at decode time, including the UINT32_MAX "trampoline, skip"
//    sentinel;
//  - call targets carry their callee entry PC, frame size and path-reg
//    initialization inline, and the PathAFL call-selection hash test is
//    precomputed into a flag bit;
//  - a parallel PcInfo side table maps every PC back to the reference
//    interpreter's (function, block, *probe-free* instruction index)
//    coordinates, so fault records and stack hashes are bit-identical to
//    the reference interpreter's without re-deriving anything at fault
//    time.
//
// The image is immutable after build() and carries no pointers into the
// module it was decoded from, so one image is safely shared read-only by
// any number of Vm instances across threads (the build cache does exactly
// that, one image per instrumented build). Executing it is Vm::run's fast
// path, see Exec.cpp; identity with the reference interpreter is pinned
// by tests/VmFastPathTest.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_VM_IMAGE_H
#define PATHFUZZ_VM_IMAGE_H

#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace instr {
class ShadowEdgeIndex;
struct ElisionPlan;
} // namespace instr
namespace vm {

/// Decoded opcodes: the mir::Opcode set with terminators folded in as
/// explicit ops. The enum is dense from 0 so a computed-goto jump table
/// indexes it directly.
enum class DOp : uint8_t {
  Const,
  Move,
  Bin,
  BinImm,
  Neg,
  Not,
  InLen,
  InByte,
  Alloc,
  GlobalAddr,
  Load,
  Store,
  Free,
  Abort,
  Call,
  EdgeProbe,
  BlockProbe,
  PathAdd,
  PathFlushRet,
  PathFlushBack,
  Br,
  CondBr,
  Switch,
  Ret,
  /// Superinstructions: a comparison Bin/BinImm whose result feeds the
  /// CondBr in the very next slot (same register, same block). The decoder
  /// rewrites the *comparison* slot's opcode; the CondBr slot stays in
  /// place unchanged — the fused handler consumes it inline, so the PC
  /// layout, PcInfo table and step accounting are identical to the
  /// unfused stream. Comparisons cannot fault, which is what makes the
  /// pairing safe.
  BinBr,
  BinImmBr,
  /// Chain superinstructions: the first op's handler runs, then jumps
  /// *directly* to the statically-known handler of the very next slot
  /// instead of going through the indirect dispatch — the second slot is
  /// re-fetched and executed verbatim, so no operand conditions apply and
  /// step accounting / fault coordinates are unchanged. These cover the
  /// hottest dynamic pairs (a constant feeding an ALU op or branch, a
  /// path probe before its block's terminator).
  PathAddBr,     ///< PathAdd, then the Br terminator behind it
  FlushRetRet,   ///< PathFlushRet probe, then its Ret terminator
  ConstCondBr,   ///< Const, then a CondBr terminator
  ConstBin,      ///< Const, then a (non-fused) Bin
  ConstBinBr,    ///< Const, then a fused BinBr pair
  /// An elided probe slot in a selective ("cheap") image: consumes its
  /// step and does nothing else. Probe slots are rewritten in place — not
  /// removed — so the PC layout, PcInfo table, step accounting and
  /// fault/step-limit coordinates of the cheap image stay byte-identical
  /// to the fully instrumented one.
  Nop,
};
inline constexpr unsigned NumDOps = static_cast<unsigned>(DOp::Nop) + 1;

/// One decoded instruction slot. Exactly 32 bytes, two per cache line.
/// Field meaning is per-op (register operands keep the reference names):
///
///   Call         A=result reg, B/C=arg regs 0/1, Imm=arg regs 2..5 packed
///                16-bit, X=callee entry PC, Y=callee function index,
///                Flags bit0 = PathAFL-selected callee
///   Br           X=target PC, Y=shadow edge ID (UINT32_MAX = skip)
///   CondBr       A=cond reg, X=taken PC, Y=not-taken PC,
///                Imm = taken edge ID | not-taken edge ID << 32
///   Switch       A=cond reg, X=offset into succs() (Y entries),
///                Y=successor count, Imm=offset into constPool() (Y-1 case
///                values)
///   Ret          A=value reg
///   PathAdd      A=path reg, Imm=increment
///   PathFlushRet A=path reg, Imm=flush offset, Y=function index (for the
///                per-function map key)
///   PathFlushBack as PathFlushRet, plus X=constPool() index of the
///                path-register reset value (mir Imm2)
///   BinBr/BinImmBr fields as Bin/BinImm; branch operands live in the
///                adjacent CondBr slot, which the fused handler reads
///   everything else matches the mir::Instr it was decoded from.
struct DInstr {
  DOp Op = DOp::Const;
  mir::BinOp BOp = mir::BinOp::Add;
  uint8_t Flags = 0;
  uint8_t NumArgs = 0;
  mir::Reg A = 0;
  mir::Reg B = 0;
  mir::Reg C = 0;
  int64_t Imm = 0;
  uint32_t X = 0;
  uint32_t Y = 0;

  /// Call: the K-th argument register.
  mir::Reg arg(unsigned K) const {
    if (K == 0)
      return B;
    if (K == 1)
      return C;
    return static_cast<mir::Reg>(
        (static_cast<uint64_t>(Imm) >> ((K - 2) * 16)) & 0xffff);
  }

  static constexpr uint8_t FlagCallSelected = 1; ///< PathAFL call hashing
};
static_assert(sizeof(DInstr) == 32, "decoded instruction must stay compact");

/// Switch/branch successor: resolved target plus its shadow edge ID.
struct SuccEntry {
  uint32_t TargetPC = 0;
  uint32_t EdgeId = UINT32_MAX;
};

/// Reference-interpreter coordinates of one PC, precomputed so fault
/// records match the reference bit for bit. Norm is the *probe-free*
/// index of this slot within its block (terminator slots count every
/// non-probe instruction of the block) — exactly what Vm.cpp's
/// normalizedIdx() yields for a frame suspended at this PC.
struct PcInfo {
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t Norm = 0;
};

/// Per-function execution header: everything pushFrame() read off
/// mir::Function, flattened.
struct ImageFunc {
  uint32_t EntryPC = 0;
  uint16_t NumRegs = 0;
  uint16_t PathReg = 0;
  int64_t PathRegInit = 0;
  bool HasPathReg = false;
};

/// Snapshot-reset page granularity: global cells are dirty-tracked in
/// pages of 64 cells (512 bytes), the granularity the executor restores
/// from the pristine image between executions.
inline constexpr unsigned SnapshotPageShift = 6;
inline constexpr uint64_t SnapshotPageCells = 1ull << SnapshotPageShift;

/// Selects the VM execution engine for campaign-level drivers. Auto
/// resolves the PATHFUZZ_VM_FASTPATH environment knob (default: fast
/// path on). Results are bit-identical either way; the knob exists for
/// benchmarking and for bisecting the engines against each other.
enum class VmExecMode : uint8_t { Auto, Interpreter, FastPath };

/// Whether Mode resolves to the pre-decoded fast path. Auto consults
/// PATHFUZZ_VM_FASTPATH on every call (tests flip it at runtime).
bool fastPathEnabled(VmExecMode Mode);

/// Selects the two-tier selective-instrumentation mode for campaign-level
/// drivers (CampaignOptions::Selective). Auto resolves the
/// PATHFUZZ_SELECTIVE environment knob (default: on). Like VmMode, the
/// knob never changes campaign results — selective runs are byte-identical
/// to always-instrumented ones; it exists for benchmarking and bisection.
enum class SelectiveMode : uint8_t { Auto, Off, On };

/// Whether Mode resolves to two-tier selective execution. Auto consults
/// PATHFUZZ_SELECTIVE on every call (tests flip it at runtime).
bool selectiveEnabled(SelectiveMode Mode);

/// Whether the fast-path executor was compiled with computed-goto
/// threaded dispatch (PATHFUZZ_THREADED_DISPATCH on a GNU-compatible
/// compiler) rather than the portable switch loop. Informational only —
/// the two produce bit-identical results; benchmarks record which one
/// they measured.
bool threadedDispatch();

/// The immutable decoded form of one (instrumented) module.
class ProgramImage {
public:
  /// Decode M. Shadow (the index over the *original* module, as handed to
  /// Vm) resolves per-terminator edge IDs; pass null when shadow-edge
  /// recording will never be requested. Elide, when non-null, names probe
  /// slots to rewrite to DOp::Nop (the selective mode's cheap image; see
  /// instrument/Elide.h) — the slot layout, PcInfo table and step
  /// accounting are unchanged, only the probes' side effects disappear.
  static ProgramImage build(const mir::Module &M,
                            const instr::ShadowEdgeIndex *Shadow,
                            const instr::ElisionPlan *Elide = nullptr);

  const DInstr *code() const { return Code.data(); }
  size_t codeSize() const { return Code.size(); }
  const PcInfo *pcInfo() const { return Pc.data(); }
  const ImageFunc *funcs() const { return Funcs.data(); }
  size_t numFuncs() const { return Funcs.size(); }
  const SuccEntry *succs() const { return SuccPool.data(); }
  /// Switch case values and PathFlushBack reset constants.
  const int64_t *constPool() const { return Pool.data(); }

  /// Whether shadow edge IDs were resolved at decode time. A Vm holding a
  /// ShadowEdgeIndex refuses an image built without one (it could never
  /// record the edges the reference interpreter would).
  bool builtWithShadow() const { return HasShadow; }

  /// Entry PC of @main.
  uint32_t mainEntryPC() const { return Funcs[MainIndex].EntryPC; }
  uint32_t mainIndex() const { return MainIndex; }

  // Snapshot-reset support: the pristine global image, materialized once
  // at decode time exactly as the reference interpreter materializes it
  // per execution (Init prefix, zero tail).
  uint32_t numGlobals() const { return NumGlobals; }
  uint64_t globalCells() const { return GlobalCellsTotal; }
  const std::vector<int64_t> &pristineGlobalCells() const { return Pristine; }
  const std::vector<uint32_t> &globalSizes() const { return GlobalSizes; }
  const std::vector<uint32_t> &globalCellBases() const { return GlobalBases; }

  /// The module this image was decoded from (identity check only — the
  /// executor never dereferences it).
  const mir::Module *module() const { return Src; }

  /// Decoded footprint in bytes (code + side tables), for reporting.
  uint64_t byteSize() const;

private:
  const mir::Module *Src = nullptr;
  uint32_t MainIndex = 0;
  bool HasShadow = false;
  std::vector<DInstr> Code;
  std::vector<PcInfo> Pc;
  std::vector<ImageFunc> Funcs;
  std::vector<SuccEntry> SuccPool;
  std::vector<int64_t> Pool;

  uint32_t NumGlobals = 0;
  uint64_t GlobalCellsTotal = 0;
  std::vector<int64_t> Pristine;
  std::vector<uint32_t> GlobalSizes;
  std::vector<uint32_t> GlobalBases;
};

} // namespace vm
} // namespace pathfuzz

#endif // PATHFUZZ_VM_IMAGE_H
