//===- Image.cpp - MIR -> flat program image decoder --------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "vm/Image.h"

#include "instrument/Elide.h"
#include "instrument/ShadowEdges.h"
#include "support/Env.h"
#include "support/Rng.h"

#include <cassert>

namespace pathfuzz {
namespace vm {

bool fastPathEnabled(VmExecMode Mode) {
  switch (Mode) {
  case VmExecMode::Interpreter:
    return false;
  case VmExecMode::FastPath:
    return true;
  case VmExecMode::Auto:
    break;
  }
  // Re-read the environment on every Auto query (not once into a static):
  // it is consulted once per instrumented build, and tests flip the knob
  // at runtime to pit the engines against each other.
  return envBool("PATHFUZZ_VM_FASTPATH", true);
}

bool selectiveEnabled(SelectiveMode Mode) {
  switch (Mode) {
  case SelectiveMode::Off:
    return false;
  case SelectiveMode::On:
    return true;
  case SelectiveMode::Auto:
    break;
  }
  // Same contract as fastPathEnabled: re-read the environment on every
  // Auto query so tests can flip the knob at runtime.
  return envBool("PATHFUZZ_SELECTIVE", true);
}

ProgramImage ProgramImage::build(const mir::Module &M,
                                 const instr::ShadowEdgeIndex *Shadow,
                                 const instr::ElisionPlan *Elide) {
  ProgramImage P;
  P.Src = &M;
  P.HasShadow = Shadow != nullptr;

  int Main = M.findFunction("main");
  assert(Main >= 0 && "module has no @main");
  P.MainIndex = static_cast<uint32_t>(Main);

  // Pass 1: lay out PCs. Each block contributes one slot per instruction
  // plus one terminator slot, in block order, functions concatenated; a PC
  // is an index into Code. BlockPC[f] maps block index -> first PC.
  std::vector<std::vector<uint32_t>> BlockPC(M.Funcs.size());
  uint32_t NextPC = 0;
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    const mir::Function &Fn = M.Funcs[F];
    ImageFunc IF;
    IF.NumRegs = Fn.NumRegs;
    IF.PathReg = Fn.PathReg;
    IF.HasPathReg = Fn.HasPathReg;
    IF.PathRegInit = Fn.PathRegInit;
    BlockPC[F].reserve(Fn.Blocks.size());
    for (const mir::BasicBlock &BB : Fn.Blocks) {
      BlockPC[F].push_back(NextPC);
      NextPC += static_cast<uint32_t>(BB.Instrs.size()) + 1;
    }
    IF.EntryPC = BlockPC[F].empty() ? NextPC : BlockPC[F][0];
    P.Funcs.push_back(IF);
  }
  P.Code.reserve(NextPC);
  P.Pc.reserve(NextPC);

  // Pass 2: decode. Every slot also gets its PcInfo: the reference
  // interpreter's (function, block, probe-free index) for a frame whose
  // InstrIdx names this slot. The executor reads PcInfo at the *current*
  // (already advanced) PC on a fault, which lands on the slot after the
  // faulting instruction — in the same block, with a Norm that includes
  // the faulting instruction — reproducing Vm.cpp's normalizedIdx() over
  // its post-increment InstrIdx exactly. The pending-slot PC at a step
  // limit needs no adjustment either: Norm of the pending slot counts only
  // the instructions already retired.
  auto edgeIdOf = [&](uint32_t F, uint32_t B, uint32_t Slot) -> uint32_t {
    return Shadow ? Shadow->edgeId(F, B, Slot) : UINT32_MAX;
  };
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    const mir::Function &Fn = M.Funcs[F];
    for (size_t B = 0; B < Fn.Blocks.size(); ++B) {
      const mir::BasicBlock &BB = Fn.Blocks[B];
      uint32_t Norm = 0;
      for (size_t InstrIdx = 0; InstrIdx < BB.Instrs.size(); ++InstrIdx) {
        const mir::Instr &In = BB.Instrs[InstrIdx];
        DInstr D;
        P.Pc.push_back({static_cast<uint32_t>(F), static_cast<uint32_t>(B),
                        Norm});
        Norm += !In.isProbe();
        // Selective (cheap) build: rewrite elided slots to no-ops *in
        // place* — same PC layout, same PcInfo, same step accounting as the
        // full image, just no coverage-map writes. The pool push for
        // PathFlushBack is skipped along with the rest of the lowering.
        if (Elide && Elide->covers(static_cast<uint32_t>(F),
                                   static_cast<uint32_t>(B),
                                   static_cast<uint32_t>(InstrIdx))) {
          D.Op = DOp::Nop;
          P.Code.push_back(D);
          continue;
        }
        D.BOp = In.BOp;
        D.A = In.A;
        D.B = In.B;
        D.C = In.C;
        D.Imm = In.Imm;
        switch (In.Op) {
        case mir::Opcode::Const:
          D.Op = DOp::Const;
          break;
        case mir::Opcode::Move:
          D.Op = DOp::Move;
          break;
        case mir::Opcode::Bin:
          D.Op = DOp::Bin;
          break;
        case mir::Opcode::BinImm:
          D.Op = DOp::BinImm;
          break;
        case mir::Opcode::Neg:
          D.Op = DOp::Neg;
          break;
        case mir::Opcode::Not:
          D.Op = DOp::Not;
          break;
        case mir::Opcode::InLen:
          D.Op = DOp::InLen;
          break;
        case mir::Opcode::InByte:
          D.Op = DOp::InByte;
          break;
        case mir::Opcode::Alloc:
          D.Op = DOp::Alloc;
          break;
        case mir::Opcode::GlobalAddr:
          D.Op = DOp::GlobalAddr;
          break;
        case mir::Opcode::Load:
          D.Op = DOp::Load;
          break;
        case mir::Opcode::Store:
          D.Op = DOp::Store;
          break;
        case mir::Opcode::Free:
          D.Op = DOp::Free;
          break;
        case mir::Opcode::Abort:
          D.Op = DOp::Abort;
          break;
        case mir::Opcode::Call: {
          D.Op = DOp::Call;
          D.NumArgs = In.NumArgs;
          D.B = In.NumArgs > 0 ? In.Args[0] : 0;
          D.C = In.NumArgs > 1 ? In.Args[1] : 0;
          uint64_t Packed = 0;
          for (unsigned K = 2; K < In.NumArgs; ++K)
            Packed |= static_cast<uint64_t>(In.Args[K]) << ((K - 2) * 16);
          D.Imm = static_cast<int64_t>(Packed);
          D.X = P.Funcs[In.Callee].EntryPC;
          D.Y = In.Callee;
          // The PathAFL "is this callee selected" hash depends only on the
          // callee index; fold it to a flag bit.
          if ((mix64(In.Callee * 0x9e3779b97f4a7c15ULL) & 3) == 0)
            D.Flags |= DInstr::FlagCallSelected;
          break;
        }
        case mir::Opcode::EdgeProbe:
          D.Op = DOp::EdgeProbe;
          break;
        case mir::Opcode::BlockProbe:
          D.Op = DOp::BlockProbe;
          break;
        case mir::Opcode::PathAdd:
          // The reference executes against Fn.PathReg, not the probe's own
          // register field; resolve it here.
          D.Op = DOp::PathAdd;
          D.A = Fn.PathReg;
          break;
        case mir::Opcode::PathFlushRet:
          D.Op = DOp::PathFlushRet;
          D.A = Fn.PathReg;
          D.Y = static_cast<uint32_t>(F);
          break;
        case mir::Opcode::PathFlushBack:
          D.Op = DOp::PathFlushBack;
          D.A = Fn.PathReg;
          D.Y = static_cast<uint32_t>(F);
          D.X = static_cast<uint32_t>(P.Pool.size());
          P.Pool.push_back(In.Imm2);
          break;
        }
        P.Code.push_back(D);
      }

      // Terminator slot.
      const mir::Terminator &T = BB.Term;
      P.Pc.push_back({static_cast<uint32_t>(F), static_cast<uint32_t>(B),
                      Norm});
      DInstr D;
      switch (T.Kind) {
      case mir::TermKind::Br:
        D.Op = DOp::Br;
        D.X = BlockPC[F][T.Succs[0]];
        D.Y = edgeIdOf(static_cast<uint32_t>(F), static_cast<uint32_t>(B), 0);
        break;
      case mir::TermKind::CondBr: {
        D.Op = DOp::CondBr;
        D.A = T.Cond;
        D.X = BlockPC[F][T.Succs[0]];
        D.Y = BlockPC[F][T.Succs[1]];
        uint64_t Taken =
            edgeIdOf(static_cast<uint32_t>(F), static_cast<uint32_t>(B), 0);
        uint64_t NotTaken =
            edgeIdOf(static_cast<uint32_t>(F), static_cast<uint32_t>(B), 1);
        D.Imm = static_cast<int64_t>(Taken | (NotTaken << 32));
        break;
      }
      case mir::TermKind::Switch: {
        D.Op = DOp::Switch;
        D.A = T.Cond;
        D.X = static_cast<uint32_t>(P.SuccPool.size());
        D.Y = static_cast<uint32_t>(T.Succs.size());
        D.Imm = static_cast<int64_t>(P.Pool.size());
        for (uint32_t S = 0; S < T.Succs.size(); ++S)
          P.SuccPool.push_back(
              {BlockPC[F][T.Succs[S]],
               edgeIdOf(static_cast<uint32_t>(F), static_cast<uint32_t>(B),
                        S)});
        for (uint32_t K = 0; K + 1 < T.Succs.size(); ++K)
          P.Pool.push_back(T.CaseValues[K]);
        break;
      }
      case mir::TermKind::Ret:
        D.Op = DOp::Ret;
        D.A = T.Cond;
        break;
      }
      P.Code.push_back(D);
    }
  }
  assert(P.Code.size() == NextPC && P.Pc.size() == NextPC &&
         "layout / decode disagree on slot count");

  // Fusion post-pass: rewrite a comparison Bin/BinImm immediately followed
  // by the CondBr it feeds into a two-slot superinstruction (the CondBr
  // slot is left intact as the fused handler's operand block). Soundness:
  // a Bin at Code[i-1] is by construction a regular slot of the *same*
  // block as the CondBr terminator at Code[i] (block terminators are never
  // Bin), and branch/call targets only ever name block-start PCs, so no
  // control transfer can land on the consumed CondBr slot. Comparisons
  // cannot fault, so the only mid-pair observable — a step-limit trip
  // between the two — is replayed exactly by the handler's second check.
  auto isCmp = [](mir::BinOp Op) {
    switch (Op) {
    case mir::BinOp::Eq:
    case mir::BinOp::Ne:
    case mir::BinOp::Lt:
    case mir::BinOp::Le:
    case mir::BinOp::Gt:
    case mir::BinOp::Ge:
      return true;
    default:
      return false;
    }
  };
  for (size_t I = 1; I < P.Code.size(); ++I) {
    if (P.Code[I].Op != DOp::CondBr)
      continue;
    DInstr &Prev = P.Code[I - 1];
    if ((Prev.Op == DOp::Bin || Prev.Op == DOp::BinImm) && isCmp(Prev.BOp) &&
        Prev.A == P.Code[I].A)
      Prev.Op = Prev.Op == DOp::Bin ? DOp::BinBr : DOp::BinImmBr;
  }

  // Chain-fusion pass: rewrite the first op of the remaining hot pairs so
  // its handler jumps straight to the (statically known) handler of the
  // next slot instead of through the indirect dispatch. The second slot
  // still executes verbatim from the stream, so — unlike the inline pass
  // above — adjacency is the *only* condition. Runs after the inline pass
  // because Const must chain to BinBr where that rewrite happened.
  for (size_t I = 0; I + 1 < P.Code.size(); ++I) {
    const DOp Next = P.Code[I + 1].Op;
    DInstr &D = P.Code[I];
    if (D.Op == DOp::Const) {
      if (Next == DOp::Bin)
        D.Op = DOp::ConstBin;
      else if (Next == DOp::BinBr)
        D.Op = DOp::ConstBinBr;
      else if (Next == DOp::CondBr)
        D.Op = DOp::ConstCondBr;
    } else if (D.Op == DOp::PathAdd && Next == DOp::Br) {
      D.Op = DOp::PathAddBr;
    } else if (D.Op == DOp::PathFlushRet && Next == DOp::Ret) {
      D.Op = DOp::FlushRetRet;
    }
  }

  // Globals: materialize the pristine cell image once, exactly as the
  // reference interpreter does per execution (Init prefix, zero tail).
  P.NumGlobals = static_cast<uint32_t>(M.Globals.size());
  for (const mir::Global &G : M.Globals) {
    P.GlobalBases.push_back(static_cast<uint32_t>(P.Pristine.size()));
    P.GlobalSizes.push_back(G.Size);
    size_t Base = P.Pristine.size();
    P.Pristine.resize(Base + G.Size, 0);
    for (size_t I = 0; I < G.Init.size() && I < G.Size; ++I)
      P.Pristine[Base + I] = G.Init[I];
  }
  P.GlobalCellsTotal = P.Pristine.size();
  return P;
}

uint64_t ProgramImage::byteSize() const {
  return Code.size() * sizeof(DInstr) + Pc.size() * sizeof(PcInfo) +
         Funcs.size() * sizeof(ImageFunc) + SuccPool.size() * sizeof(SuccEntry) +
         Pool.size() * sizeof(int64_t) + Pristine.size() * sizeof(int64_t) +
         (GlobalSizes.size() + GlobalBases.size()) * sizeof(uint32_t);
}

} // namespace vm
} // namespace pathfuzz
