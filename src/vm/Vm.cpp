//===- Vm.cpp - MIR interpreter with memory-safety checking ------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "support/FaultInjection.h"
#include "telemetry/Trace.h"
#include "vm/Image.h"

#include <algorithm>
#include <cassert>

namespace pathfuzz {
namespace vm {

namespace {

/// Tagged pointer base: heap/global pointers are PtrBase + object index.
/// Arithmetic-mangled pointers land outside the object table and fault as
/// BadPointer, the wild-pointer analogue.
constexpr int64_t PtrBase = int64_t(1) << 56;

/// AFL++-style "NeverZero" saturating counter bump.
inline void bump(uint8_t *Map, uint32_t Index) {
  uint8_t V = static_cast<uint8_t>(Map[Index] + 1);
  Map[Index] = V ? V : 1;
}

} // namespace

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::None:
    return "none";
  case FaultKind::OobRead:
    return "oob-read";
  case FaultKind::OobWrite:
    return "oob-write";
  case FaultKind::UseAfterFree:
    return "use-after-free";
  case FaultKind::DoubleFree:
    return "double-free";
  case FaultKind::InvalidFree:
    return "invalid-free";
  case FaultKind::BadPointer:
    return "bad-pointer";
  case FaultKind::DivByZero:
    return "div-by-zero";
  case FaultKind::Abort:
    return "abort";
  case FaultKind::StackOverflow:
    return "stack-overflow";
  case FaultKind::OutOfMemory:
    return "out-of-memory";
  case FaultKind::StepLimit:
    return "step-limit";
  }
  return "<bad-fault>";
}

uint64_t Fault::stackHash(unsigned Frames) const {
  uint64_t H = 0x811c9dc5a55aULL ^ static_cast<uint64_t>(Kind);
  unsigned N = std::min<unsigned>(Frames, static_cast<unsigned>(Stack.size()));
  for (unsigned I = 0; I < N; ++I) {
    H = hashCombine(H, (static_cast<uint64_t>(Stack[I].Func) << 32) |
                           Stack[I].Block);
    H = hashCombine(H, Stack[I].InstrIdx);
  }
  return H;
}

Vm::Vm(const mir::Module &M, const instr::ShadowEdgeIndex *Shadow)
    : M(M), Shadow(Shadow) {
  MainIndex = M.findFunction("main");
  assert(MainIndex >= 0 && "module has no @main");
  if (Shadow)
    EdgeSeen.assign(Shadow->numEdges(), 0);
}

void Vm::attachImage(const ProgramImage *Image) {
  assert((!Image || Image->module() == &M) &&
         "image decoded from a different module");
  assert((!Image || !Shadow || Image->builtWithShadow()) &&
         "shadow-recording Vm needs an image with resolved edge IDs");
  Img = Image;
  // The persistent globals prefix belongs to the previous image (or to the
  // reference interpreter's last run); force re-materialization.
  GlobalsLive = false;
  DirtyPage.clear();
  DirtyList.clear();
}

ExecResult Vm::run(const uint8_t *Input, size_t Len, const ExecOptions &Opts,
                   FeedbackContext *Fb) {
  if (Img)
    return runImage(Input, Len, Opts, Fb);
  // An interpreter run rebuilds Objects/Cells from scratch below, clobbering
  // any persistent globals prefix a fast-path run may have left behind.
  GlobalsLive = false;
  ExecResult R;

  Frames.clear();
  RegStack.clear();
  Objects.clear();
  Cells.clear();

  uint8_t *Map = Fb ? Fb->Map : nullptr;
  uint32_t MapMask = Fb ? Fb->MapMask : 0;
  uint64_t PrevLoc = 0;
  uint64_t CallHash = 0x50a7af1dULL;
  bool RecordEdges = Opts.RecordShadowEdges && Shadow;
  const bool DoSig = Fb && Fb->PathSig;
  uint64_t Sig = 0;

  // Materialize globals as the first heap objects (object index == global
  // index), re-initialized on every execution.
  for (const mir::Global &G : M.Globals) {
    HeapObject O;
    O.Size = G.Size;
    O.CellBase = static_cast<uint32_t>(Cells.size());
    Cells.resize(Cells.size() + G.Size, 0);
    for (size_t I = 0; I < G.Init.size() && I < G.Size; ++I)
      Cells[O.CellBase + I] = G.Init[I];
    Objects.push_back(O);
  }

  auto pushFrame = [&](uint32_t Func, mir::Reg RetReg) {
    const mir::Function &Fn = M.Funcs[Func];
    Frame Fr;
    Fr.Func = Func;
    Fr.RegBase = static_cast<uint32_t>(RegStack.size());
    Fr.RetReg = RetReg;
    RegStack.resize(RegStack.size() + Fn.NumRegs, 0);
    if (Fn.HasPathReg)
      RegStack[Fr.RegBase + Fn.PathReg] = Fn.PathRegInit;
    Frames.push_back(Fr);
  };

  pushFrame(static_cast<uint32_t>(MainIndex), 0);

  bool Done = false;
  // Fault coordinates are normalized to *probe-free* instruction indices so
  // that bug identities and stack hashes are invariant across feedback
  // instrumentations: the paper compares the bug sets of differently
  // instrumented binaries, which is only meaningful if a crash site names
  // the same source construct in all of them. Probes never fault, original
  // block indices survive instrumentation (trampolines are appended), and
  // prepended/interleaved probes are skipped by the count below.
  auto normalizedIdx = [&](uint32_t Func, uint32_t Block, uint32_t InstrIdx) {
    const std::vector<mir::Instr> &Instrs =
        M.Funcs[Func].Blocks[Block].Instrs;
    uint32_t N = 0;
    for (uint32_t I = 0; I < InstrIdx && I < Instrs.size(); ++I)
      N += !Instrs[I].isProbe();
    return N;
  };
  auto fault = [&](FaultKind Kind) {
    R.TheFault.Kind = Kind;
    const Frame &Top = Frames.back();
    R.TheFault.Func = Top.Func;
    R.TheFault.Block = Top.Block;
    R.TheFault.InstrIdx = normalizedIdx(Top.Func, Top.Block, Top.InstrIdx);
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It)
      R.TheFault.Stack.push_back(
          {It->Func, It->Block,
           normalizedIdx(It->Func, It->Block, It->InstrIdx)});
    Done = true;
  };

  // Pointer checking helpers. Kind selects the fault reported on a bounds
  // violation (read vs write).
  auto checkObject = [&](int64_t Ptr) -> int64_t {
    if (Ptr < PtrBase || Ptr >= PtrBase + static_cast<int64_t>(Objects.size()))
      return -1;
    return Ptr - PtrBase;
  };

  uint64_t Steps = 0;

  while (!Done && !Frames.empty()) {
    if (++Steps > Opts.StepLimit) {
      fault(FaultKind::StepLimit);
      break;
    }

    Frame &Fr = Frames.back();
    const mir::Function &Fn = M.Funcs[Fr.Func];
    const mir::BasicBlock &BB = Fn.Blocks[Fr.Block];
    int64_t *Regs = RegStack.data() + Fr.RegBase;

    if (Fr.InstrIdx < BB.Instrs.size()) {
      const mir::Instr &I = BB.Instrs[Fr.InstrIdx];
      ++Fr.InstrIdx;
      switch (I.Op) {
      case mir::Opcode::Const:
        Regs[I.A] = I.Imm;
        break;
      case mir::Opcode::Move:
        Regs[I.A] = Regs[I.B];
        break;
      case mir::Opcode::Bin:
      case mir::Opcode::BinImm: {
        int64_t L = Regs[I.B];
        int64_t Rv = (I.Op == mir::Opcode::Bin) ? Regs[I.C] : I.Imm;
        if (Opts.LogCmps && R.CmpOperands.size() < Opts.MaxCmpLog) {
          switch (I.BOp) {
          case mir::BinOp::Eq:
          case mir::BinOp::Ne:
          case mir::BinOp::Lt:
          case mir::BinOp::Le:
          case mir::BinOp::Gt:
          case mir::BinOp::Ge:
            // Operand values become mutation dictionary material; tiny
            // values are noise.
            if (L > 1 || L < -1)
              R.CmpOperands.push_back(L);
            if (Rv > 1 || Rv < -1)
              R.CmpOperands.push_back(Rv);
            break;
          default:
            break;
          }
        }
        int64_t Out = 0;
        switch (I.BOp) {
        case mir::BinOp::Add:
          Out = static_cast<int64_t>(static_cast<uint64_t>(L) +
                                     static_cast<uint64_t>(Rv));
          break;
        case mir::BinOp::Sub:
          Out = static_cast<int64_t>(static_cast<uint64_t>(L) -
                                     static_cast<uint64_t>(Rv));
          break;
        case mir::BinOp::Mul:
          Out = static_cast<int64_t>(static_cast<uint64_t>(L) *
                                     static_cast<uint64_t>(Rv));
          break;
        case mir::BinOp::Div:
          if (Rv == 0) {
            fault(FaultKind::DivByZero);
            continue;
          }
          Out = (L == INT64_MIN && Rv == -1) ? INT64_MIN : L / Rv;
          break;
        case mir::BinOp::Rem:
          if (Rv == 0) {
            fault(FaultKind::DivByZero);
            continue;
          }
          Out = (L == INT64_MIN && Rv == -1) ? 0 : L % Rv;
          break;
        case mir::BinOp::And:
          Out = L & Rv;
          break;
        case mir::BinOp::Or:
          Out = L | Rv;
          break;
        case mir::BinOp::Xor:
          Out = L ^ Rv;
          break;
        case mir::BinOp::Shl:
          Out = static_cast<int64_t>(static_cast<uint64_t>(L)
                                     << (static_cast<uint64_t>(Rv) & 63));
          break;
        case mir::BinOp::Shr:
          Out = L >> (static_cast<uint64_t>(Rv) & 63);
          break;
        case mir::BinOp::Eq:
          Out = L == Rv;
          break;
        case mir::BinOp::Ne:
          Out = L != Rv;
          break;
        case mir::BinOp::Lt:
          Out = L < Rv;
          break;
        case mir::BinOp::Le:
          Out = L <= Rv;
          break;
        case mir::BinOp::Gt:
          Out = L > Rv;
          break;
        case mir::BinOp::Ge:
          Out = L >= Rv;
          break;
        }
        Regs[I.A] = Out;
        break;
      }
      case mir::Opcode::Neg:
        Regs[I.A] =
            static_cast<int64_t>(0 - static_cast<uint64_t>(Regs[I.B]));
        break;
      case mir::Opcode::Not:
        Regs[I.A] = Regs[I.B] == 0;
        break;
      case mir::Opcode::InLen:
        Regs[I.A] = static_cast<int64_t>(Len);
        break;
      case mir::Opcode::InByte: {
        int64_t Idx = Regs[I.B];
        Regs[I.A] = (Idx >= 0 && static_cast<uint64_t>(Idx) < Len)
                        ? Input[Idx]
                        : -1;
        break;
      }
      case mir::Opcode::Alloc: {
        int64_t Size = Regs[I.B];
        // The injected variant of heap exhaustion: lets tests drive the
        // OutOfMemory path on any allocation without tuning real limits.
        // (`fault` names the local fault-raising lambda here, hence the
        // fully qualified registry calls.)
        if (pathfuzz::fault::enabled() &&
            pathfuzz::fault::shouldFail("vm.heap.alloc")) {
          if (Fb)
            PF_TRACE_EVENT(
                Fb->Trace, telemetry::EventKind::FaultInjected, Fb->TraceExec,
                static_cast<uint32_t>(telemetry::VmFaultSite::HeapAlloc),
                static_cast<uint64_t>(Size < 0 ? 0 : Size));
          fault(FaultKind::OutOfMemory);
          continue;
        }
        if (Size < 0 ||
            Cells.size() + static_cast<uint64_t>(Size) > Opts.HeapCellLimit ||
            Objects.size() >= Opts.MaxObjects) {
          fault(FaultKind::OutOfMemory);
          continue;
        }
        HeapObject O;
        O.Size = static_cast<uint32_t>(Size);
        O.CellBase = static_cast<uint32_t>(Cells.size());
        Cells.resize(Cells.size() + static_cast<size_t>(Size), 0);
        Regs[I.A] = PtrBase + static_cast<int64_t>(Objects.size());
        Objects.push_back(O);
        ++R.HeapAllocs;
        R.HeapCellsAllocated += static_cast<uint64_t>(Size);
        break;
      }
      case mir::Opcode::GlobalAddr:
        Regs[I.A] = PtrBase + I.Imm;
        break;
      case mir::Opcode::Load: {
        int64_t Obj = checkObject(Regs[I.B]);
        if (Obj < 0) {
          fault(FaultKind::BadPointer);
          continue;
        }
        const HeapObject &O = Objects[static_cast<size_t>(Obj)];
        if (O.Freed) {
          fault(FaultKind::UseAfterFree);
          continue;
        }
        int64_t Idx = Regs[I.C];
        if (Idx < 0 || static_cast<uint64_t>(Idx) >= O.Size) {
          fault(FaultKind::OobRead);
          continue;
        }
        Regs[I.A] = Cells[O.CellBase + static_cast<size_t>(Idx)];
        break;
      }
      case mir::Opcode::Store: {
        int64_t Obj = checkObject(Regs[I.A]);
        if (Obj < 0) {
          fault(FaultKind::BadPointer);
          continue;
        }
        const HeapObject &O = Objects[static_cast<size_t>(Obj)];
        if (O.Freed) {
          fault(FaultKind::UseAfterFree);
          continue;
        }
        int64_t Idx = Regs[I.B];
        if (Idx < 0 || static_cast<uint64_t>(Idx) >= O.Size) {
          fault(FaultKind::OobWrite);
          continue;
        }
        Cells[O.CellBase + static_cast<size_t>(Idx)] = Regs[I.C];
        break;
      }
      case mir::Opcode::Free: {
        int64_t Obj = checkObject(Regs[I.A]);
        if (Obj < 0 || static_cast<size_t>(Obj) < M.Globals.size()) {
          // Freeing a wild pointer or a global is an invalid free.
          fault(FaultKind::InvalidFree);
          continue;
        }
        HeapObject &O = Objects[static_cast<size_t>(Obj)];
        if (O.Freed) {
          fault(FaultKind::DoubleFree);
          continue;
        }
        O.Freed = true;
        break;
      }
      case mir::Opcode::Abort:
        fault(FaultKind::Abort);
        continue;
      case mir::Opcode::Call: {
        if (Frames.size() >= Opts.MaxCallDepth) {
          fault(FaultKind::StackOverflow);
          continue;
        }
        if (Fb && Fb->CallPathHash && Map) {
          // PathAFL-style partial whole-program path hashing: ~1/4 of
          // functions are "selected"; each selected call event extends a
          // running hash indexed into the map.
          if ((mix64(I.Callee * 0x9e3779b97f4a7c15ULL) & 3) == 0) {
            CallHash = mix64(CallHash ^ (I.Callee + 0x517cc1b727220a95ULL));
            bump(Map, static_cast<uint32_t>(CallHash) & MapMask);
          }
        }
        int64_t ArgVals[mir::MaxCallArgs];
        for (unsigned K = 0; K < I.NumArgs; ++K)
          ArgVals[K] = Regs[I.Args[K]];
        pushFrame(I.Callee, I.A);
        // pushFrame may reallocate RegStack; re-derive the callee base.
        Frame &Callee = Frames.back();
        for (unsigned K = 0; K < I.NumArgs; ++K)
          RegStack[Callee.RegBase + K] = ArgVals[K];
        continue; // switch to the callee frame
      }
      case mir::Opcode::EdgeProbe:
        if (Map)
          bump(Map, static_cast<uint32_t>(I.Imm) & MapMask);
        break;
      case mir::Opcode::BlockProbe:
        if (Map) {
          bump(Map,
               (static_cast<uint32_t>(I.Imm) ^ static_cast<uint32_t>(PrevLoc)) &
                   MapMask);
          PrevLoc = static_cast<uint64_t>(I.Imm) >> 1;
        }
        break;
      case mir::Opcode::PathAdd:
        Regs[Fn.PathReg] += I.Imm;
        break;
      case mir::Opcode::PathFlushRet:
      case mir::Opcode::PathFlushBack: {
        int64_t PathId = Regs[Fn.PathReg] + I.Imm;
        if (Map) {
          uint64_t Key = Fb->FuncKeys ? Fb->FuncKeys[Fr.Func] : 0;
          bump(Map,
               static_cast<uint32_t>(static_cast<uint64_t>(PathId) ^ Key) &
                   MapMask);
        }
        if (I.Op == mir::Opcode::PathFlushBack)
          Regs[Fn.PathReg] = I.Imm2;
        break;
      }
      }
      continue;
    }

    // Terminator.
    const mir::Terminator &T = BB.Term;
    if (T.Kind == mir::TermKind::Ret) {
      int64_t Value = Regs[T.Cond];
      uint32_t RegBase = Fr.RegBase;
      mir::Reg RetReg = Fr.RetReg;
      Frames.pop_back();
      RegStack.resize(RegBase);
      if (Frames.empty()) {
        R.ReturnValue = Value;
        break;
      }
      Frame &Caller = Frames.back();
      RegStack[Caller.RegBase + RetReg] = Value;
      continue;
    }

    uint32_t Slot = 0;
    switch (T.Kind) {
    case mir::TermKind::Br:
      Slot = 0;
      break;
    case mir::TermKind::CondBr:
      Slot = Regs[T.Cond] != 0 ? 0 : 1;
      break;
    case mir::TermKind::Switch: {
      int64_t V = Regs[T.Cond];
      Slot = static_cast<uint32_t>(T.Succs.size() - 1); // default
      for (uint32_t K = 0; K + 1 < T.Succs.size(); ++K) {
        if (T.CaseValues[K] == V) {
          Slot = K;
          break;
        }
      }
      break;
    }
    case mir::TermKind::Ret:
      break; // handled above
    }
    // The exec-path signature hashes only *decisions*: slots of CondBr and
    // Switch. Br/Ret are forced transfers — including them would add
    // nothing, and excluding them keeps the fast path's per-handler
    // accumulation sites identical to these.
    if (DoSig && T.Kind != mir::TermKind::Br)
      Sig = hashCombine(Sig, Slot);

    if (RecordEdges) {
      uint32_t Id = Shadow->edgeId(Fr.Func, Fr.Block, Slot);
      if (Id != UINT32_MAX && !EdgeSeen[Id]) {
        EdgeSeen[Id] = 1;
        EdgeTouched.push_back(Id);
      }
    }
    Fr.Block = T.Succs[Slot];
    Fr.InstrIdx = 0;
  }

  R.Steps = Steps;
  if (DoSig)
    *Fb->PathSig = Sig;
  if (RecordEdges) {
    std::sort(EdgeTouched.begin(), EdgeTouched.end());
    R.ShadowEdges = EdgeTouched;
    for (uint32_t Id : EdgeTouched)
      EdgeSeen[Id] = 0;
    EdgeTouched.clear();
  }
  return R;
}

} // namespace vm
} // namespace pathfuzz
