//===- Exec.cpp - Threaded-dispatch snapshot-reset VM fast path --------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The fast-path executor: runs a pre-decoded ProgramImage (Image.h) with
// direct-threaded dispatch and persistent-mode global state, producing
// results bit-identical to the reference interpreter in Vm.cpp. Three
// mechanisms carry the speedup:
//
//  1. Flat fetch. The decoded instruction stream is one contiguous array;
//     fetching is `&Code[PC++]` instead of three dependent vector lookups,
//     and taken branches assign a PC instead of re-walking blocks.
//
//  2. Threaded dispatch. With PATHFUZZ_THREADED_DISPATCH on a GNU-C
//     compiler each handler jumps straight to the next handler through a
//     computed goto, giving the branch predictor one indirect jump per
//     opcode site instead of a single shared switch jump. A portable
//     for/switch loop compiles otherwise — same handlers, same semantics.
//
//  3. Snapshot reset (the fork-server/persistent-mode analogue). Globals
//     are materialized once from the image's pristine copy and kept as a
//     persistent prefix of Objects/Cells across executions; stores into
//     global cells mark 64-cell pages dirty, and the inter-exec reset
//     restores only those pages instead of reconstructing the world.
//
// Semantics notes (the identity contract with Vm.cpp, enforced by
// tests/VmFastPathTest.cpp):
//
//  - Step accounting: one ++Steps check precedes every slot, terminators
//    included, so Steps and the StepLimit trip point match exactly.
//  - Fault coordinates come from the PcInfo side table at the *current*
//    PC: the fetch already advanced it past a faulting instruction, which
//    reproduces the reference's post-increment InstrIdx normalization,
//    and a pending (step-limit) slot is the un-advanced PC — also exact.
//    Caller frames report their saved resume PCs, which sit just past
//    their Call instructions, matching the reference stack walk.
//  - Everything observable is replicated: NeverZero map bumps, PrevLoc
//    shifting, PathAFL call-hash mixing order, fault-injection probe
//    order, cmp-operand capture rules, unsigned wrap arithmetic,
//    INT64_MIN division corners, and shadow-edge dedup ordering.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "support/FaultInjection.h"
#include "telemetry/Trace.h"
#include "vm/Image.h"

#include <algorithm>
#include <cassert>

// Threaded dispatch needs the GNU address-of-label extension; anything
// else gets the portable switch loop regardless of the CMake option.
#if defined(PATHFUZZ_THREADED_DISPATCH) &&                                     \
    (defined(__GNUC__) || defined(__clang__))
#define PF_THREADED 1
#else
#define PF_THREADED 0
#endif

namespace pathfuzz {
namespace vm {

namespace {

/// Tagged pointer base; must match Vm.cpp.
constexpr int64_t PtrBase = int64_t(1) << 56;

/// AFL++-style "NeverZero" saturating counter bump; must match Vm.cpp.
inline void bump(uint8_t *Map, uint32_t Index) {
  uint8_t V = static_cast<uint8_t>(Map[Index] + 1);
  Map[Index] = V ? V : 1;
}

/// Comparison-operand capture for the cmplog stage; the filter (only
/// comparisons, only values outside [-1, 1]) matches Vm.cpp.
inline void logCmpOperands(mir::BinOp Op, int64_t L, int64_t Rv,
                           std::vector<int64_t> &Out) {
  switch (Op) {
  case mir::BinOp::Eq:
  case mir::BinOp::Ne:
  case mir::BinOp::Lt:
  case mir::BinOp::Le:
  case mir::BinOp::Gt:
  case mir::BinOp::Ge:
    if (L > 1 || L < -1)
      Out.push_back(L);
    if (Rv > 1 || Rv < -1)
      Out.push_back(Rv);
    break;
  default:
    break;
  }
}

/// The 16-way ALU; returns false on division by zero. Wrap-around and
/// INT64_MIN corner handling match Vm.cpp.
inline bool evalBin(mir::BinOp Op, int64_t L, int64_t Rv, int64_t &Out) {
  switch (Op) {
  case mir::BinOp::Add:
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) +
                               static_cast<uint64_t>(Rv));
    break;
  case mir::BinOp::Sub:
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) -
                               static_cast<uint64_t>(Rv));
    break;
  case mir::BinOp::Mul:
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) *
                               static_cast<uint64_t>(Rv));
    break;
  case mir::BinOp::Div:
    if (Rv == 0)
      return false;
    Out = (L == INT64_MIN && Rv == -1) ? INT64_MIN : L / Rv;
    break;
  case mir::BinOp::Rem:
    if (Rv == 0)
      return false;
    Out = (L == INT64_MIN && Rv == -1) ? 0 : L % Rv;
    break;
  case mir::BinOp::And:
    Out = L & Rv;
    break;
  case mir::BinOp::Or:
    Out = L | Rv;
    break;
  case mir::BinOp::Xor:
    Out = L ^ Rv;
    break;
  case mir::BinOp::Shl:
    Out = static_cast<int64_t>(static_cast<uint64_t>(L)
                               << (static_cast<uint64_t>(Rv) & 63));
    break;
  case mir::BinOp::Shr:
    Out = L >> (static_cast<uint64_t>(Rv) & 63);
    break;
  case mir::BinOp::Eq:
    Out = L == Rv;
    break;
  case mir::BinOp::Ne:
    Out = L != Rv;
    break;
  case mir::BinOp::Lt:
    Out = L < Rv;
    break;
  case mir::BinOp::Le:
    Out = L <= Rv;
    break;
  case mir::BinOp::Gt:
    Out = L > Rv;
    break;
  case mir::BinOp::Ge:
    Out = L >= Rv;
    break;
  }
  return true;
}

} // namespace

bool threadedDispatch() { return PF_THREADED != 0; }

void Vm::resetGlobalsFromImage() {
  const ProgramImage &P = *Img;
  const uint64_t NumCells = P.globalCells();
  const uint32_t NumGlobals = P.numGlobals();

  if (!GlobalsLive) {
    // First run on this image: materialize the whole prefix.
    Objects.clear();
    Objects.reserve(NumGlobals);
    for (uint32_t G = 0; G < NumGlobals; ++G) {
      HeapObject O;
      O.Size = P.globalSizes()[G];
      O.CellBase = P.globalCellBases()[G];
      Objects.push_back(O);
    }
    Cells.assign(P.pristineGlobalCells().begin(),
                 P.pristineGlobalCells().end());
    DirtyPage.assign((NumCells + SnapshotPageCells - 1) >> SnapshotPageShift,
                     0);
    DirtyList.clear();
    GlobalsLive = true;
    return;
  }

  // Persistent-mode reset: drop the heap suffix, then restore only the
  // global pages the previous execution wrote. Global objects themselves
  // are immutable (Free on a global faults before setting Freed), so only
  // cells need restoring.
  Objects.resize(NumGlobals);
  Cells.resize(NumCells);
  ++RStats.Resets;
  const int64_t *Pristine = P.pristineGlobalCells().data();
  for (uint32_t Page : DirtyList) {
    const uint64_t Base = static_cast<uint64_t>(Page) << SnapshotPageShift;
    const uint64_t N = std::min<uint64_t>(SnapshotPageCells, NumCells - Base);
    std::copy(Pristine + Base, Pristine + Base + N, Cells.data() + Base);
    DirtyPage[Page] = 0;
    ++RStats.DirtyPagesReset;
    RStats.DirtyCellsReset += N;
  }
  DirtyList.clear();
}

ExecResult Vm::runImage(const uint8_t *Input, size_t Len,
                        const ExecOptions &Opts, FeedbackContext *Fb) {
  const ProgramImage &P = *Img;
  ExecResult R;

  FFrames.clear();
  resetGlobalsFromImage();

  uint8_t *Map = Fb ? Fb->Map : nullptr;
  const uint32_t MapMask = Fb ? Fb->MapMask : 0;
  uint64_t PrevLoc = 0;
  uint64_t CallHash = 0x50a7af1dULL;
  const bool RecordEdges = Opts.RecordShadowEdges && Shadow;
  const bool DoCallHash = Fb && Fb->CallPathHash && Map;
  const bool DoSig = Fb && Fb->PathSig;
  uint64_t Sig = 0;

  // Hoisted once: the coverage-map writes go through uint8_t*, which may
  // alias anything, so loads left behind Opts./this-> would be re-issued
  // on every step of the loop.
  const uint64_t StepLimit = Opts.StepLimit;
  const bool LogCmps = Opts.LogCmps;
  const size_t MaxCmpLog = Opts.MaxCmpLog;
  const uint64_t HeapCellLimit = Opts.HeapCellLimit;
  const size_t MaxObjects = Opts.MaxObjects;
  const size_t MaxCallDepth = Opts.MaxCallDepth;

  const DInstr *const Code = P.code();
  const PcInfo *const Pcs = P.pcInfo();
  const ImageFunc *const IFuncs = P.funcs();
  const SuccEntry *const SuccPool = P.succs();
  const int64_t *const Pool = P.constPool();
  const uint64_t NumGlobalCells = P.globalCells();
  const uint32_t NumGlobals = P.numGlobals();

  // Heap views, hoisted for the same aliasing reason. Only Alloc changes
  // them (growth can reallocate); it re-derives all four.
  HeapObject *ObjsP = Objects.data();
  size_t NumObjs = Objects.size();
  int64_t *CellsP = Cells.data();
  size_t CellsN = Cells.size();

  // The register stack is managed as a high-water buffer: RegTop tracks
  // the live extent, RegStack only ever grows, and frame setup zero-fills
  // its slice in place. This keeps the per-call cost at one small memset
  // instead of a vector resize (which libstdc++ services out of line).
  size_t RegTop = 0;

  // Entry frame for @main, exactly as the reference pushFrame does it.
  {
    const ImageFunc &MainF = IFuncs[P.mainIndex()];
    FastFrame Fr;
    Fr.RegBase = 0;
    Fr.RetReg = 0;
    FFrames.push_back(Fr);
    if (RegStack.size() < MainF.NumRegs + size_t(3))
      RegStack.resize(MainF.NumRegs + size_t(3));
    std::fill_n(RegStack.data(), MainF.NumRegs, 0);
    RegTop = MainF.NumRegs;
    if (MainF.HasPathReg)
      RegStack[MainF.PathReg] = MainF.PathRegInit;
  }

  uint64_t Steps = 0;
  uint32_t PC = P.mainEntryPC();
  int64_t *Regs = RegStack.data();
  const DInstr *I = nullptr;
  FaultKind Fk = FaultKind::None;

#if PF_THREADED
#define PF_NEXT()                                                              \
  do {                                                                         \
    if (++Steps > StepLimit)                                                   \
      goto HitStepLimit;                                                       \
    I = &Code[PC++];                                                           \
    goto *JumpTable[static_cast<unsigned>(I->Op)];                             \
  } while (0)
#define PF_OP(Name) L_##Name:
// Chain-target ops: in threaded mode every handler already has a label.
#define PF_OP_CT(Name) L_##Name:
  // Indexed by DOp, which the decoder emits densely from 0.
  static const void *const JumpTable[NumDOps] = {
      &&L_Const,     &&L_Move,       &&L_Bin,          &&L_BinImm,
      &&L_Neg,       &&L_Not,        &&L_InLen,        &&L_InByte,
      &&L_Alloc,     &&L_GlobalAddr, &&L_Load,         &&L_Store,
      &&L_Free,      &&L_Abort,      &&L_Call,         &&L_EdgeProbe,
      &&L_BlockProbe, &&L_PathAdd,   &&L_PathFlushRet, &&L_PathFlushBack,
      &&L_Br,        &&L_CondBr,     &&L_Switch,       &&L_Ret,
      &&L_BinBr,     &&L_BinImmBr,   &&L_PathAddBr,    &&L_FlushRetRet,
      &&L_ConstCondBr, &&L_ConstBin, &&L_ConstBinBr,   &&L_Nop,
  };
  PF_NEXT();
#else
#define PF_NEXT() continue
#define PF_OP(Name) case DOp::Name:
// Chain-target ops additionally carry a goto label so PF_CHAIN can reach
// them from inside other cases (a legal jump within the switch block).
#define PF_OP_CT(Name) case DOp::Name: L_##Name:
  for (;;) {
    if (++Steps > StepLimit)
      goto HitStepLimit;
    I = &Code[PC++];
    switch (I->Op) {
#endif

// Chain tail for fused pairs: account the second slot's step, fetch it,
// and jump *directly* to its handler — the dispatch a plain PF_NEXT would
// do through the indirect jump, minus the indirection. Identical step
// counts and trip coordinates by construction.
#define PF_CHAIN(Name)                                                         \
  do {                                                                         \
    if (++Steps > StepLimit)                                                   \
      goto HitStepLimit;                                                       \
    I = &Code[PC++];                                                           \
    goto L_##Name;                                                             \
  } while (0)

  PF_OP(Const) { Regs[I->A] = I->Imm; }
  PF_NEXT();

  PF_OP(Move) { Regs[I->A] = Regs[I->B]; }
  PF_NEXT();

  PF_OP_CT(Bin) {
    int64_t L = Regs[I->B];
    int64_t Rv = Regs[I->C];
    if (LogCmps && R.CmpOperands.size() < MaxCmpLog)
      logCmpOperands(I->BOp, L, Rv, R.CmpOperands);
    int64_t Out = 0;
    if (!evalBin(I->BOp, L, Rv, Out)) {
      Fk = FaultKind::DivByZero;
      goto RaiseFault;
    }
    Regs[I->A] = Out;
  }
  PF_NEXT();

  PF_OP(BinImm) {
    int64_t L = Regs[I->B];
    int64_t Rv = I->Imm;
    if (LogCmps && R.CmpOperands.size() < MaxCmpLog)
      logCmpOperands(I->BOp, L, Rv, R.CmpOperands);
    int64_t Out = 0;
    if (!evalBin(I->BOp, L, Rv, Out)) {
      Fk = FaultKind::DivByZero;
      goto RaiseFault;
    }
    Regs[I->A] = Out;
  }
  PF_NEXT();

  PF_OP(Neg) {
    Regs[I->A] = static_cast<int64_t>(0 - static_cast<uint64_t>(Regs[I->B]));
  }
  PF_NEXT();

  PF_OP(Not) { Regs[I->A] = Regs[I->B] == 0; }
  PF_NEXT();

  PF_OP(InLen) { Regs[I->A] = static_cast<int64_t>(Len); }
  PF_NEXT();

  PF_OP(InByte) {
    int64_t Idx = Regs[I->B];
    Regs[I->A] =
        (Idx >= 0 && static_cast<uint64_t>(Idx) < Len) ? Input[Idx] : -1;
  }
  PF_NEXT();

  PF_OP(Alloc) {
    int64_t Size = Regs[I->B];
    // Injected heap exhaustion first, then the real limits — probe order
    // (and thus fault-site hit counting) must match the reference.
    if (pathfuzz::fault::enabled() &&
        pathfuzz::fault::shouldFail("vm.heap.alloc")) {
      if (Fb)
        PF_TRACE_EVENT(
            Fb->Trace, telemetry::EventKind::FaultInjected, Fb->TraceExec,
            static_cast<uint32_t>(telemetry::VmFaultSite::HeapAlloc),
            static_cast<uint64_t>(Size < 0 ? 0 : Size));
      Fk = FaultKind::OutOfMemory;
      goto RaiseFault;
    }
    if (Size < 0 || CellsN + static_cast<uint64_t>(Size) > HeapCellLimit ||
        NumObjs >= MaxObjects) {
      Fk = FaultKind::OutOfMemory;
      goto RaiseFault;
    }
    HeapObject O;
    O.Size = static_cast<uint32_t>(Size);
    O.CellBase = static_cast<uint32_t>(CellsN);
    Cells.resize(CellsN + static_cast<size_t>(Size), 0);
    Regs[I->A] = PtrBase + static_cast<int64_t>(NumObjs);
    Objects.push_back(O);
    ObjsP = Objects.data();
    NumObjs = Objects.size();
    CellsP = Cells.data();
    CellsN = Cells.size();
    ++R.HeapAllocs;
    R.HeapCellsAllocated += static_cast<uint64_t>(Size);
  }
  PF_NEXT();

  PF_OP(GlobalAddr) { Regs[I->A] = PtrBase + I->Imm; }
  PF_NEXT();

  PF_OP(Load) {
    int64_t Ptr = Regs[I->B];
    if (Ptr < PtrBase || Ptr >= PtrBase + static_cast<int64_t>(NumObjs)) {
      Fk = FaultKind::BadPointer;
      goto RaiseFault;
    }
    const HeapObject &O = ObjsP[static_cast<size_t>(Ptr - PtrBase)];
    if (O.Freed) {
      Fk = FaultKind::UseAfterFree;
      goto RaiseFault;
    }
    int64_t Idx = Regs[I->C];
    if (Idx < 0 || static_cast<uint64_t>(Idx) >= O.Size) {
      Fk = FaultKind::OobRead;
      goto RaiseFault;
    }
    Regs[I->A] = CellsP[O.CellBase + static_cast<size_t>(Idx)];
  }
  PF_NEXT();

  PF_OP(Store) {
    int64_t Ptr = Regs[I->A];
    if (Ptr < PtrBase || Ptr >= PtrBase + static_cast<int64_t>(NumObjs)) {
      Fk = FaultKind::BadPointer;
      goto RaiseFault;
    }
    const HeapObject &O = ObjsP[static_cast<size_t>(Ptr - PtrBase)];
    if (O.Freed) {
      Fk = FaultKind::UseAfterFree;
      goto RaiseFault;
    }
    int64_t Idx = Regs[I->B];
    if (Idx < 0 || static_cast<uint64_t>(Idx) >= O.Size) {
      Fk = FaultKind::OobWrite;
      goto RaiseFault;
    }
    const size_t CellAddr = O.CellBase + static_cast<size_t>(Idx);
    // Global cells are the [0, NumGlobalCells) prefix; a write there is
    // what the inter-exec snapshot reset must undo.
    if (CellAddr < NumGlobalCells) {
      const uint32_t Page = static_cast<uint32_t>(CellAddr >> SnapshotPageShift);
      if (!DirtyPage[Page]) {
        DirtyPage[Page] = 1;
        DirtyList.push_back(Page);
      }
    }
    CellsP[CellAddr] = Regs[I->C];
  }
  PF_NEXT();

  PF_OP(Free) {
    int64_t Ptr = Regs[I->A];
    if (Ptr < PtrBase || Ptr >= PtrBase + static_cast<int64_t>(NumObjs) ||
        static_cast<uint64_t>(Ptr - PtrBase) < NumGlobals) {
      Fk = FaultKind::InvalidFree;
      goto RaiseFault;
    }
    HeapObject &O = ObjsP[static_cast<size_t>(Ptr - PtrBase)];
    if (O.Freed) {
      Fk = FaultKind::DoubleFree;
      goto RaiseFault;
    }
    O.Freed = true;
  }
  PF_NEXT();

  PF_OP(Abort) {
    Fk = FaultKind::Abort;
    goto RaiseFault;
  }

  PF_OP(Call) {
    if (FFrames.size() >= MaxCallDepth) {
      Fk = FaultKind::StackOverflow;
      goto RaiseFault;
    }
    if (DoCallHash && (I->Flags & DInstr::FlagCallSelected)) {
      CallHash = mix64(CallHash ^ (I->Y + 0x517cc1b727220a95ULL));
      bump(Map, static_cast<uint32_t>(CallHash) & MapMask);
    }
    int64_t ArgVals[mir::MaxCallArgs];
    const unsigned NumArgs = I->NumArgs;
    for (unsigned K = 0; K < NumArgs; ++K)
      ArgVals[K] = Regs[I->arg(K)];
    FFrames.back().SavedPC = PC; // resume just past the call
    const ImageFunc &CF = IFuncs[I->Y];
    FastFrame Fr;
    Fr.RegBase = static_cast<uint32_t>(RegTop);
    Fr.RetReg = I->A;
    FFrames.push_back(Fr);
    const size_t NewTop = RegTop + CF.NumRegs;
    // +3 slack lets the zero loop run 4-wide past the live extent instead
    // of dropping into an out-of-line memset on every call.
    if (NewTop + 3 > RegStack.size())
      RegStack.resize(NewTop + (NewTop >> 1) + 3);
    Regs = RegStack.data() + RegTop;
    for (unsigned K = 0; K < CF.NumRegs; K += 4) {
      Regs[K] = 0;
      Regs[K + 1] = 0;
      Regs[K + 2] = 0;
      Regs[K + 3] = 0;
    }
    RegTop = NewTop;
    if (CF.HasPathReg)
      Regs[CF.PathReg] = CF.PathRegInit;
    for (unsigned K = 0; K < NumArgs; ++K)
      Regs[K] = ArgVals[K];
    PC = CF.EntryPC;
  }
  PF_NEXT();

  PF_OP(EdgeProbe) {
    if (Map)
      bump(Map, static_cast<uint32_t>(I->Imm) & MapMask);
  }
  PF_NEXT();

  PF_OP(BlockProbe) {
    if (Map) {
      bump(Map, (static_cast<uint32_t>(I->Imm) ^
                 static_cast<uint32_t>(PrevLoc)) &
                    MapMask);
      PrevLoc = static_cast<uint64_t>(I->Imm) >> 1;
    }
  }
  PF_NEXT();

  PF_OP(PathAdd) { Regs[I->A] += I->Imm; }
  PF_NEXT();

  PF_OP(PathFlushRet) {
    if (Map) {
      int64_t PathId = Regs[I->A] + I->Imm;
      uint64_t Key = Fb->FuncKeys ? Fb->FuncKeys[I->Y] : 0;
      bump(Map, static_cast<uint32_t>(static_cast<uint64_t>(PathId) ^ Key) &
                    MapMask);
    }
  }
  PF_NEXT();

  PF_OP(PathFlushBack) {
    if (Map) {
      int64_t PathId = Regs[I->A] + I->Imm;
      uint64_t Key = Fb->FuncKeys ? Fb->FuncKeys[I->Y] : 0;
      bump(Map, static_cast<uint32_t>(static_cast<uint64_t>(PathId) ^ Key) &
                    MapMask);
    }
    Regs[I->A] = Pool[I->X];
  }
  PF_NEXT();

  PF_OP_CT(Br) {
    if (RecordEdges) {
      const uint32_t Id = I->Y;
      if (Id != UINT32_MAX && !EdgeSeen[Id]) {
        EdgeSeen[Id] = 1;
        EdgeTouched.push_back(Id);
      }
    }
    PC = I->X;
  }
  PF_NEXT();

  PF_OP_CT(CondBr) {
    const bool Taken = Regs[I->A] != 0;
    // Decision-slot signature: CondBr contributes its taken slot (0/1),
    // matching the interpreter's terminator Slot value exactly.
    if (DoSig)
      Sig = hashCombine(Sig, static_cast<uint64_t>(Taken ? 0 : 1));
    if (RecordEdges) {
      const uint64_t Packed = static_cast<uint64_t>(I->Imm);
      const uint32_t Id =
          Taken ? static_cast<uint32_t>(Packed)
                : static_cast<uint32_t>(Packed >> 32);
      if (Id != UINT32_MAX && !EdgeSeen[Id]) {
        EdgeSeen[Id] = 1;
        EdgeTouched.push_back(Id);
      }
    }
    PC = Taken ? I->X : I->Y;
  }
  PF_NEXT();

  PF_OP(Switch) {
    const int64_t V = Regs[I->A];
    const uint32_t NumSuccs = I->Y;
    const int64_t *CaseVals = Pool + static_cast<uint64_t>(I->Imm);
    uint32_t Slot = NumSuccs - 1; // default
    for (uint32_t K = 0; K + 1 < NumSuccs; ++K) {
      if (CaseVals[K] == V) {
        Slot = K;
        break;
      }
    }
    if (DoSig)
      Sig = hashCombine(Sig, static_cast<uint64_t>(Slot));
    const SuccEntry &SE = SuccPool[I->X + Slot];
    if (RecordEdges) {
      const uint32_t Id = SE.EdgeId;
      if (Id != UINT32_MAX && !EdgeSeen[Id]) {
        EdgeSeen[Id] = 1;
        EdgeTouched.push_back(Id);
      }
    }
    PC = SE.TargetPC;
  }
  PF_NEXT();

  PF_OP_CT(BinBr) {
    int64_t L = Regs[I->B];
    int64_t Rv = Regs[I->C];
    if (LogCmps && R.CmpOperands.size() < MaxCmpLog)
      logCmpOperands(I->BOp, L, Rv, R.CmpOperands);
    int64_t Out = 0;
    evalBin(I->BOp, L, Rv, Out); // fused ops are comparisons: cannot fault
    Regs[I->A] = Out;
    // Second half: the adjacent CondBr slot. PC names it right now, so a
    // step-limit trip here reports its coordinates — exactly as unfused.
    if (++Steps > StepLimit)
      goto HitStepLimit;
    I = &Code[PC++];
    {
      const bool Taken = Out != 0;
      if (DoSig)
        Sig = hashCombine(Sig, static_cast<uint64_t>(Taken ? 0 : 1));
      if (RecordEdges) {
        const uint64_t Packed = static_cast<uint64_t>(I->Imm);
        const uint32_t Id = Taken ? static_cast<uint32_t>(Packed)
                                  : static_cast<uint32_t>(Packed >> 32);
        if (Id != UINT32_MAX && !EdgeSeen[Id]) {
          EdgeSeen[Id] = 1;
          EdgeTouched.push_back(Id);
        }
      }
      PC = Taken ? I->X : I->Y;
    }
  }
  PF_NEXT();

  PF_OP(BinImmBr) {
    int64_t L = Regs[I->B];
    int64_t Rv = I->Imm;
    if (LogCmps && R.CmpOperands.size() < MaxCmpLog)
      logCmpOperands(I->BOp, L, Rv, R.CmpOperands);
    int64_t Out = 0;
    evalBin(I->BOp, L, Rv, Out); // fused ops are comparisons: cannot fault
    Regs[I->A] = Out;
    if (++Steps > StepLimit)
      goto HitStepLimit;
    I = &Code[PC++];
    {
      const bool Taken = Out != 0;
      if (DoSig)
        Sig = hashCombine(Sig, static_cast<uint64_t>(Taken ? 0 : 1));
      if (RecordEdges) {
        const uint64_t Packed = static_cast<uint64_t>(I->Imm);
        const uint32_t Id = Taken ? static_cast<uint32_t>(Packed)
                                  : static_cast<uint32_t>(Packed >> 32);
        if (Id != UINT32_MAX && !EdgeSeen[Id]) {
          EdgeSeen[Id] = 1;
          EdgeTouched.push_back(Id);
        }
      }
      PC = Taken ? I->X : I->Y;
    }
  }
  PF_NEXT();

  PF_OP(PathAddBr) { Regs[I->A] += I->Imm; }
  PF_CHAIN(Br);

  PF_OP(FlushRetRet) {
    if (Map) {
      int64_t PathId = Regs[I->A] + I->Imm;
      uint64_t Key = Fb->FuncKeys ? Fb->FuncKeys[I->Y] : 0;
      bump(Map, static_cast<uint32_t>(static_cast<uint64_t>(PathId) ^ Key) &
                    MapMask);
    }
  }
  PF_CHAIN(Ret);

  PF_OP(ConstCondBr) { Regs[I->A] = I->Imm; }
  PF_CHAIN(CondBr);

  PF_OP(ConstBin) { Regs[I->A] = I->Imm; }
  PF_CHAIN(Bin);

  PF_OP(ConstBinBr) { Regs[I->A] = I->Imm; }
  PF_CHAIN(BinBr);

  // Elided probe slot of a cheap (selective) image: consumes its step and
  // does nothing else, preserving PC layout and step accounting exactly.
  PF_OP(Nop) {}
  PF_NEXT();

  PF_OP_CT(Ret) {
    const int64_t Value = Regs[I->A];
    const FastFrame Top = FFrames.back();
    FFrames.pop_back();
    RegTop = Top.RegBase;
    if (FFrames.empty()) {
      R.ReturnValue = Value;
      goto Finish;
    }
    const FastFrame &Caller = FFrames.back();
    Regs = RegStack.data() + Caller.RegBase;
    Regs[Top.RetReg] = Value;
    PC = Caller.SavedPC;
  }
  PF_NEXT();

#if !PF_THREADED
    } // switch
  }   // for
#endif
#undef PF_NEXT
#undef PF_OP
#undef PF_OP_CT
#undef PF_CHAIN

HitStepLimit:
  Fk = FaultKind::StepLimit;
  // fall through — PC is the pending slot, which is exactly the site the
  // reference reports for a step-limit trip.

RaiseFault: {
  R.TheFault.Kind = Fk;
  const PcInfo &FP = Pcs[PC];
  R.TheFault.Func = FP.Func;
  R.TheFault.Block = FP.Block;
  R.TheFault.InstrIdx = FP.Norm;
  R.TheFault.Stack.push_back({FP.Func, FP.Block, FP.Norm});
  for (size_t K = FFrames.size() - 1; K-- > 0;) {
    const PcInfo &CP = Pcs[FFrames[K].SavedPC];
    R.TheFault.Stack.push_back({CP.Func, CP.Block, CP.Norm});
  }
}

Finish:
  R.Steps = Steps;
  if (DoSig)
    *Fb->PathSig = Sig;
  if (RecordEdges) {
    std::sort(EdgeTouched.begin(), EdgeTouched.end());
    R.ShadowEdges = EdgeTouched;
    for (uint32_t Id : EdgeTouched)
      EdgeSeen[Id] = 0;
    EdgeTouched.clear();
  }
  // Dirty accounting happens at exec end, not reset time, so the value is
  // a deterministic function of this execution alone (a checkpoint-resumed
  // Vm reports the same series even though its first reset restores
  // nothing).
  uint64_t Dirty = 0;
  for (uint32_t Page : DirtyList) {
    const uint64_t Base = static_cast<uint64_t>(Page) << SnapshotPageShift;
    Dirty += std::min<uint64_t>(SnapshotPageCells, NumGlobalCells - Base);
  }
  R.DirtyGlobalCells = Dirty;
  return R;
}

} // namespace vm
} // namespace pathfuzz
