//===- Telemetry.h - Campaign event tracing core ----------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The event half of the telemetry subsystem: a typed, fixed-capacity
// flight recorder for the fuzzing hot paths. The paper's evaluation is
// time-series shaped (queue trajectories, coverage growth, bugs over
// time); this layer captures the raw events those series derive from —
// executions, seed additions, cull verdicts, cycle starts, crash dedup,
// checkpoints, injected faults — without perturbing the campaign.
//
// Cost model (the "Same Coverage, Less Bloat" lesson: feedback plumbing
// is a first-order fuzzing cost):
//
//  - Compiled out (-DPATHFUZZ_NO_TELEMETRY): the PF_TRACE_* macros expand
//    to nothing and `Compiled` is a constant false, so every recording
//    block is dead code the optimizer deletes. Zero bytes, zero branches.
//  - Compiled in, tracing disabled: each site is one null-pointer test.
//  - Enabled: one masked store into a preallocated ring per event — no
//    locks, no allocation, no syscalls.
//
// Threading: a ring is single-writer by construction. Each fuzzer
// instance owns its own ring ("sharded when batched"): the parallel batch
// runner never shares one recorder across jobs, so the single-threaded
// push stays lock-free and the merged export stays deterministic — traces
// are merged by (subject, fuzzer, trial seed), not by arrival order.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TELEMETRY_TELEMETRY_H
#define PATHFUZZ_TELEMETRY_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace telemetry {

#ifdef PATHFUZZ_NO_TELEMETRY
inline constexpr bool Compiled = false;
#else
inline constexpr bool Compiled = true;
#endif

/// Every event the flight recorder can capture. Values are part of the
/// trace schema: append only, never renumber.
enum class EventKind : uint8_t {
  ExecCompleted = 0,     ///< Arg8: 0 ok / 1 crash / 2 hang; Arg32: input
                         ///< size; Arg64: VM steps
  SeedAdded = 1,         ///< Arg32: queue index; Arg64: input size
  SeedCulled = 2,        ///< Arg32: seeds retained; Arg64: queue size before
  CycleStarted = 3,      ///< Arg32: cycle ordinal; Arg64: queue size
  CrashDeduped = 4,      ///< Arg32: unique-crash ordinal; Arg64: stack hash
  HangDeduped = 5,       ///< Arg32: unique-hang ordinal; Arg64: input hash
  CheckpointWritten = 6, ///< Arg64: campaign-cumulative exec base
  FaultInjected = 7,     ///< Arg32: site tag (VmFaultSite); Arg64: detail
  PhaseStarted = 8,      ///< Arg8: driver phase/round; Arg32: round ordinal
};

/// Stable schema name for an event kind ("exec", "seed_added", ...).
const char *eventKindName(EventKind K);

/// Tags for FaultInjected events recorded below the fuzzer (the VM has no
/// string table; exporters map tags back to site names).
enum class VmFaultSite : uint32_t {
  HeapAlloc = 1, ///< vm.heap.alloc (injected OutOfMemory)
};

/// One recorded event. 24 bytes, trivially copyable — the ring is a flat
/// array of these.
struct Event {
  uint64_t Exec = 0; ///< instance-local exec index at record time
  uint64_t Arg64 = 0;
  uint32_t Arg32 = 0;
  EventKind Kind = EventKind::ExecCompleted;
  uint8_t Arg8 = 0;
  uint16_t Pad = 0;
};

inline bool operator==(const Event &A, const Event &B) {
  return A.Exec == B.Exec && A.Arg64 == B.Arg64 && A.Arg32 == B.Arg32 &&
         A.Kind == B.Kind && A.Arg8 == B.Arg8;
}

/// Fixed-capacity single-writer flight recorder. Pushing past capacity
/// overwrites the oldest event; recorded() keeps the lifetime total so
/// exporters can report how much history was dropped.
class EventRing {
public:
  /// Capacity is 2^CapacityLog2 events (clamped to [64, 2^20]).
  explicit EventRing(uint32_t CapacityLog2) {
    if (CapacityLog2 < 6)
      CapacityLog2 = 6;
    if (CapacityLog2 > 20)
      CapacityLog2 = 20;
    Buf.resize(size_t(1) << CapacityLog2);
  }

  void push(const Event &E) {
    Buf[static_cast<size_t>(Recorded) & (Buf.size() - 1)] = E;
    ++Recorded;
  }

  size_t capacity() const { return Buf.size(); }
  /// Events currently held (min(recorded - lost-before-restore, capacity)).
  size_t size() const {
    uint64_t Kept = Recorded - Base;
    return Kept < Buf.size() ? static_cast<size_t>(Kept) : Buf.size();
  }
  /// Lifetime events pushed, including overwritten ones.
  uint64_t recorded() const { return Recorded; }
  /// Events lost to overwriting (or dropped before a snapshot restore).
  uint64_t dropped() const { return Recorded - size(); }

  /// Events oldest → newest.
  std::vector<Event> events() const {
    std::vector<Event> Out;
    Out.reserve(size());
    uint64_t First = Recorded - size();
    for (uint64_t I = First; I < Recorded; ++I)
      Out.push_back(Buf[static_cast<size_t>(I) & (Buf.size() - 1)]);
    return Out;
  }

  /// Replace the contents (snapshot restore). The ring's invariant is
  /// that logical event #i lives at slot i & mask — the kept events are
  /// replayed at their original logical positions so later pushes keep
  /// overwriting oldest-first, and a restored ring stays byte-identical
  /// to one that was never snapshotted. Events beyond capacity keep only
  /// the newest; RecordedTotal preserves the lifetime counter.
  void restore(const std::vector<Event> &Events, uint64_t RecordedTotal) {
    uint64_t Total = RecordedTotal > Events.size() ? RecordedTotal
                                                   : Events.size();
    size_t Keep = Events.size() < Buf.size() ? Events.size() : Buf.size();
    const Event *Newest = Events.data() + (Events.size() - Keep);
    uint64_t First = Total - Keep;
    for (size_t J = 0; J < Keep; ++J)
      Buf[static_cast<size_t>(First + J) & (Buf.size() - 1)] = Newest[J];
    Recorded = Total;
    Base = First; // anything older than the kept set is gone for good
  }

private:
  std::vector<Event> Buf;
  uint64_t Recorded = 0;
  /// Logical index of the oldest event that could still be in the buffer:
  /// 0 for a ring that has only ever been pushed to; after a restore, the
  /// first kept event's logical index (history before it was dropped).
  uint64_t Base = 0;
};

} // namespace telemetry
} // namespace pathfuzz

// The compile-out-able macro surface. `TR` is an InstanceTrace* (null when
// tracing is off); the remaining arguments forward to the recorder. Sites
// stay in the hot paths permanently — disabled cost is one branch, and
// under PATHFUZZ_NO_TELEMETRY the preprocessor removes them entirely.
#ifdef PATHFUZZ_NO_TELEMETRY
#define PF_TRACE_EVENT(TR, ...)                                              \
  do {                                                                       \
  } while (0)
#else
#define PF_TRACE_EVENT(TR, ...)                                              \
  do {                                                                       \
    if (TR)                                                                  \
      (TR)->event(__VA_ARGS__);                                              \
  } while (0)
#endif

#endif // PATHFUZZ_TELEMETRY_TELEMETRY_H
