//===- Export.cpp - JSONL / CSV trace exporters ---------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"

#include "support/FaultInjection.h"
#include "support/Io.h"

#include <algorithm>
#include <sstream>

namespace pathfuzz {
namespace telemetry {

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// The shared identity prefix every line carries, so each JSONL line is
/// independently attributable after merging.
void identity(std::ostringstream &O, const CampaignTrace &T) {
  O << "\"subject\":\"" << jsonEscape(T.Subject) << "\",\"fuzzer\":\""
    << jsonEscape(T.Fuzzer) << "\",\"seed\":" << T.Seed;
}

void emitEvent(std::ostringstream &O, const CampaignTrace &T,
               const std::string &Label, uint64_t Offset, const Event &E) {
  O << "{\"type\":\"event\",";
  identity(O, T);
  O << ",\"instance\":\"" << jsonEscape(Label) << "\",\"kind\":\""
    << eventKindName(E.Kind) << "\",\"exec\":" << (Offset + E.Exec)
    << ",\"a32\":" << E.Arg32 << ",\"a64\":" << E.Arg64
    << ",\"a8\":" << unsigned(E.Arg8) << "}\n";
}

void emitSample(std::ostringstream &O, const CampaignTrace &T,
                const std::string &Label, uint64_t Offset, const Sample &S) {
  O << "{\"type\":\"sample\",";
  identity(O, T);
  O << ",\"instance\":\"" << jsonEscape(Label) << "\",\"exec\":"
    << (Offset + S.Exec) << ",\"queue\":" << S.QueueSize
    << ",\"favored\":" << S.Favored << ",\"edges\":" << S.EdgesCovered
    << ",\"crashes\":" << S.Crashes << ",\"uniq_crashes\":" << S.UniqueCrashes
    << ",\"hangs\":" << S.Hangs << ",\"uniq_bugs\":" << S.UniqueBugs
    << ",\"cull_passes\":" << S.CullPasses << ",\"dict\":" << S.DictSize
    << "}\n";
}

void emitMetrics(std::ostringstream &O, const CampaignTrace &T,
                 const std::string &Label, const MetricsRegistry &M) {
  for (const auto &[Name, V] : M.counters()) {
    O << "{\"type\":\"counter\",";
    identity(O, T);
    O << ",\"instance\":\"" << jsonEscape(Label) << "\",\"name\":\""
      << jsonEscape(Name) << "\",\"value\":" << V << "}\n";
  }
  for (const auto &[Name, V] : M.gauges()) {
    O << "{\"type\":\"gauge\",";
    identity(O, T);
    O << ",\"instance\":\"" << jsonEscape(Label) << "\",\"name\":\""
      << jsonEscape(Name) << "\",\"value\":" << V << "}\n";
  }
  for (const auto &[Name, H] : M.histograms()) {
    O << "{\"type\":\"histogram\",";
    identity(O, T);
    O << ",\"instance\":\"" << jsonEscape(Label) << "\",\"name\":\""
      << jsonEscape(Name) << "\",\"count\":" << H.Count << ",\"sum\":" << H.Sum
      << ",\"min\":" << (H.Count ? H.Min : 0) << ",\"max\":" << H.Max
      << ",\"buckets\":[";
    // Sparse [bucket, count] pairs: 64 fixed buckets are mostly empty.
    bool FirstB = true;
    for (uint32_t B = 0; B < Histogram::NumBuckets; ++B) {
      if (!H.Buckets[B])
        continue;
      if (!FirstB)
        O << ",";
      FirstB = false;
      O << "[" << B << "," << H.Buckets[B] << "]";
    }
    O << "]}\n";
  }
}

/// Stable presentation order for merged artifacts.
std::vector<const CampaignTrace *>
sorted(const std::vector<const CampaignTrace *> &Traces) {
  std::vector<const CampaignTrace *> Out;
  Out.reserve(Traces.size());
  for (const CampaignTrace *T : Traces)
    if (T)
      Out.push_back(T);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const CampaignTrace *A, const CampaignTrace *B) {
                     if (A->Subject != B->Subject)
                       return A->Subject < B->Subject;
                     if (A->Fuzzer != B->Fuzzer)
                       return A->Fuzzer < B->Fuzzer;
                     return A->Seed < B->Seed;
                   });
  return Out;
}

} // namespace

std::string traceJsonl(const CampaignTrace &T, bool Wall) {
  std::ostringstream O;
  O << "{\"type\":\"campaign\",";
  identity(O, T);
  O << ",\"instances\":" << T.Instances.size();
  if (Wall)
    O << ",\"wall_micros\":" << T.WallMicros;
  O << "}\n";
  for (const InstanceRecord &Rec : T.Instances) {
    O << "{\"type\":\"instance\",";
    identity(O, T);
    O << ",\"instance\":\"" << jsonEscape(Rec.Label)
      << "\",\"exec_offset\":" << Rec.ExecOffset
      << ",\"events_recorded\":" << Rec.EventsRecorded
      << ",\"events_kept\":" << Rec.Events.size() << "}\n";
    for (const Sample &S : Rec.Samples)
      emitSample(O, T, Rec.Label, Rec.ExecOffset, S);
    for (const Event &E : Rec.Events)
      emitEvent(O, T, Rec.Label, Rec.ExecOffset, E);
    emitMetrics(O, T, Rec.Label, Rec.Metrics);
  }
  // Campaign-level driver events already carry cumulative exec indices.
  for (const Event &E : T.CampaignEvents)
    emitEvent(O, T, "campaign", 0, E);
  return O.str();
}

std::string mergedJsonl(const std::vector<const CampaignTrace *> &Traces,
                        bool Wall) {
  std::string Out;
  for (const CampaignTrace *T : sorted(Traces))
    Out += traceJsonl(*T, Wall);
  return Out;
}

std::string csvField(const std::string &Raw) {
  if (Raw.find_first_of(",\"\n\r") == std::string::npos)
    return Raw;
  std::string Out = "\"";
  for (char C : Raw) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

std::string
queueTrajectoryCsv(const std::vector<const CampaignTrace *> &Traces) {
  std::ostringstream O;
  O << "subject,fuzzer,seed,execs,queue\n";
  for (const CampaignTrace *T : sorted(Traces))
    for (const InstanceRecord &Rec : T->Instances)
      for (const Sample &S : Rec.Samples)
        O << csvField(T->Subject) << "," << csvField(T->Fuzzer) << ","
          << T->Seed << "," << (Rec.ExecOffset + S.Exec) << ","
          << S.QueueSize << "\n";
  return O.str();
}

std::string coverageCsv(const std::vector<const CampaignTrace *> &Traces) {
  std::ostringstream O;
  O << "subject,fuzzer,seed,execs,edges\n";
  for (const CampaignTrace *T : sorted(Traces))
    for (const InstanceRecord &Rec : T->Instances)
      for (const Sample &S : Rec.Samples)
        O << csvField(T->Subject) << "," << csvField(T->Fuzzer) << ","
          << T->Seed << "," << (Rec.ExecOffset + S.Exec) << ","
          << S.EdgesCovered << "\n";
  return O.str();
}

bool exportFile(const std::string &Path, const std::string &Content,
                std::string *Err) {
  if (fault::enabled() && fault::shouldFail("telemetry.export.fail")) {
    if (Err)
      *Err = "injected fault at telemetry.export.fail";
    return false;
  }
  // Atomic publish (support/Io.h): a crash mid-export must leave the
  // previous complete trace, never a half-written JSONL/CSV a downstream
  // report run would misparse.
  return io::atomicWriteFile(Path, Content, Err);
}

} // namespace telemetry
} // namespace pathfuzz
