//===- Metrics.h - Counters, gauges and log2 histograms ---------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The aggregate half of the telemetry subsystem: a registry of named
// counters, gauges and fixed-bucket log2 histograms. The registry is the
// uniform export surface — every metric a campaign reports (exec totals,
// step and input-size distributions, heap pressure, culling stats) flows
// through here and serializes deterministically (std::map iteration is
// name-sorted).
//
// Hot-path contract: registration (the string lookup) happens once, at
// instance construction; the fuzzing loop holds raw pointers and pays one
// increment per update. Map nodes are stable, so the pointers survive
// later registrations and in-place restores.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TELEMETRY_METRICS_H
#define PATHFUZZ_TELEMETRY_METRICS_H

#include "support/Bytes.h"

#include <cstdint>
#include <map>
#include <string>

namespace pathfuzz {
namespace telemetry {

/// Histogram over u64 values with fixed log2 buckets: bucket 0 holds the
/// value 0 and bucket i (1..63) holds [2^(i-1), 2^i). Fixed buckets keep
/// merged traces mergeable — two histograms of the same name always have
/// the same shape (exec steps, input sizes).
struct Histogram {
  static constexpr uint32_t NumBuckets = 64;
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~0ull;
  uint64_t Max = 0;

  static uint32_t bucketOf(uint64_t V) {
    if (V == 0)
      return 0;
    uint32_t B = 64 - static_cast<uint32_t>(__builtin_clzll(V));
    return B < NumBuckets ? B : NumBuckets - 1;
  }
  /// Inclusive lower bound of a bucket (0 for bucket 0).
  static uint64_t bucketLow(uint32_t B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  void observe(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++Count;
    Sum += V;
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
  }
};

inline bool operator==(const Histogram &A, const Histogram &B) {
  if (A.Count != B.Count || A.Sum != B.Sum || A.Min != B.Min ||
      A.Max != B.Max)
    return false;
  for (uint32_t I = 0; I < Histogram::NumBuckets; ++I)
    if (A.Buckets[I] != B.Buckets[I])
      return false;
  return true;
}

/// Named counters (monotone u64), gauges (last-written i64) and
/// histograms. Copyable; equality compares every value (the resume tests'
/// oracle).
class MetricsRegistry {
public:
  /// Stable pointer to the named counter, created at zero on first use.
  uint64_t *counter(const std::string &Name) { return &Counters[Name]; }
  /// Stable pointer to the named gauge.
  int64_t *gauge(const std::string &Name) { return &Gauges[Name]; }
  /// Stable pointer to the named histogram.
  Histogram *histogram(const std::string &Name) { return &Histograms[Name]; }

  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, int64_t> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Deterministic (name-sorted) serialization.
  void serialize(ByteWriter &W) const;
  /// In-place restore: values land in existing nodes where present, so
  /// pointers handed out by counter()/gauge()/histogram() stay live and
  /// correct. Returns false on malformed input (registry then holds a
  /// partial restore; callers discard it).
  bool deserialize(ByteReader &R);

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, Histogram> Histograms;
};

bool operator==(const MetricsRegistry &A, const MetricsRegistry &B);

/// Whether a metric name belongs to an *engine-local* family: series that
/// describe how the execution engine ran (vm.fastpath.* snapshot-reset
/// accounting, vm.selective.* two-tier replay accounting, store.* durable
/// checkpoint/recovery accounting) rather than what the campaign
/// observed. The byte-identity contract — interpreter vs fast
/// path, selective vs always-instrumented, resumed vs uninterrupted —
/// covers every other metric; engine-local families legitimately differ
/// across those settings and must be excluded from equality comparisons.
/// This is the single definition the identity tests share, so a new
/// engine-local family added here cannot silently break them.
bool isEngineLocalMetric(const std::string &Name);

/// Equality over the non-engine-local subset of two registries: the
/// comparison the campaign/resume identity tests use.
bool sameObservableMetrics(const MetricsRegistry &A, const MetricsRegistry &B);

} // namespace telemetry
} // namespace pathfuzz

#endif // PATHFUZZ_TELEMETRY_METRICS_H
