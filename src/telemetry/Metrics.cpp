//===- Metrics.cpp - Counters, gauges and log2 histograms ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

namespace pathfuzz {
namespace telemetry {

void MetricsRegistry::serialize(ByteWriter &W) const {
  W.u64(Counters.size());
  for (const auto &[Name, V] : Counters) {
    W.str(Name);
    W.u64(V);
  }
  W.u64(Gauges.size());
  for (const auto &[Name, V] : Gauges) {
    W.str(Name);
    W.i64(V);
  }
  W.u64(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    W.str(Name);
    W.u64(H.Count);
    W.u64(H.Sum);
    W.u64(H.Min);
    W.u64(H.Max);
    for (uint64_t B : H.Buckets)
      W.u64(B);
  }
}

bool MetricsRegistry::deserialize(ByteReader &R) {
  uint64_t NCounters = R.u64();
  for (uint64_t I = 0; I < NCounters && R.ok(); ++I) {
    std::string Name = R.str();
    Counters[Name] = R.u64();
  }
  uint64_t NGauges = R.u64();
  for (uint64_t I = 0; I < NGauges && R.ok(); ++I) {
    std::string Name = R.str();
    Gauges[Name] = R.i64();
  }
  uint64_t NHists = R.u64();
  for (uint64_t I = 0; I < NHists && R.ok(); ++I) {
    std::string Name = R.str();
    Histogram &H = Histograms[Name];
    H.Count = R.u64();
    H.Sum = R.u64();
    H.Min = R.u64();
    H.Max = R.u64();
    for (uint64_t &B : H.Buckets)
      B = R.u64();
  }
  return R.ok();
}

bool operator==(const MetricsRegistry &A, const MetricsRegistry &B) {
  return A.counters() == B.counters() && A.gauges() == B.gauges() &&
         A.histograms() == B.histograms();
}

bool isEngineLocalMetric(const std::string &Name) {
  // Prefix families, one entry per engine facility. Keep this the only
  // place such families are spelled: the identity tests and the report
  // tooling all route through here.
  static const char *const Prefixes[] = {
      "vm.fastpath.",  // snapshot-reset/image accounting of the fast path
      "vm.selective.", // two-tier skip/replay accounting
      "store.",        // durable-store checkpoint/recovery accounting: a
                       // resumed campaign legitimately records different
                       // write/recover counts than an uninterrupted one
  };
  for (const char *P : Prefixes)
    if (Name.rfind(P, 0) == 0)
      return true;
  return false;
}

namespace {

template <typename MapT>
bool sameObservableEntries(const MapT &A, const MapT &B) {
  auto IA = A.begin(), IB = B.begin();
  for (;;) {
    while (IA != A.end() && isEngineLocalMetric(IA->first))
      ++IA;
    while (IB != B.end() && isEngineLocalMetric(IB->first))
      ++IB;
    if (IA == A.end() || IB == B.end())
      return IA == A.end() && IB == B.end();
    if (IA->first != IB->first || !(IA->second == IB->second))
      return false;
    ++IA;
    ++IB;
  }
}

} // namespace

bool sameObservableMetrics(const MetricsRegistry &A,
                           const MetricsRegistry &B) {
  return sameObservableEntries(A.counters(), B.counters()) &&
         sameObservableEntries(A.gauges(), B.gauges()) &&
         sameObservableEntries(A.histograms(), B.histograms());
}

} // namespace telemetry
} // namespace pathfuzz
