//===- Metrics.cpp - Counters, gauges and log2 histograms ---------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

namespace pathfuzz {
namespace telemetry {

void MetricsRegistry::serialize(ByteWriter &W) const {
  W.u64(Counters.size());
  for (const auto &[Name, V] : Counters) {
    W.str(Name);
    W.u64(V);
  }
  W.u64(Gauges.size());
  for (const auto &[Name, V] : Gauges) {
    W.str(Name);
    W.i64(V);
  }
  W.u64(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    W.str(Name);
    W.u64(H.Count);
    W.u64(H.Sum);
    W.u64(H.Min);
    W.u64(H.Max);
    for (uint64_t B : H.Buckets)
      W.u64(B);
  }
}

bool MetricsRegistry::deserialize(ByteReader &R) {
  uint64_t NCounters = R.u64();
  for (uint64_t I = 0; I < NCounters && R.ok(); ++I) {
    std::string Name = R.str();
    Counters[Name] = R.u64();
  }
  uint64_t NGauges = R.u64();
  for (uint64_t I = 0; I < NGauges && R.ok(); ++I) {
    std::string Name = R.str();
    Gauges[Name] = R.i64();
  }
  uint64_t NHists = R.u64();
  for (uint64_t I = 0; I < NHists && R.ok(); ++I) {
    std::string Name = R.str();
    Histogram &H = Histograms[Name];
    H.Count = R.u64();
    H.Sum = R.u64();
    H.Min = R.u64();
    H.Max = R.u64();
    for (uint64_t &B : H.Buckets)
      B = R.u64();
  }
  return R.ok();
}

bool operator==(const MetricsRegistry &A, const MetricsRegistry &B) {
  return A.counters() == B.counters() && A.gauges() == B.gauges() &&
         A.histograms() == B.histograms();
}

} // namespace telemetry
} // namespace pathfuzz
