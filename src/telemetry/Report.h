//===- Report.h - Artifact tables from trace JSONL --------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// The consuming half of the export pipeline: given merged trace JSONL (as
// written by Export.h), reconstruct the artifact tables and curves the
// paper reports — queue trajectory per configuration, coverage over the
// exec budget, a crash-dedup summary, and a machine-readable bench
// record. This is the library behind the `pathfuzz-report` CLI; it lives
// in the telemetry library so tests can round-trip export → report
// without spawning a process.
//
// The parser is deliberately tiny: our exporter writes flat, one-object-
// per-line JSON with unique keys, so two key extractors (string, u64) are
// the whole grammar. It is not a general JSON parser and does not try to
// be.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TELEMETRY_REPORT_H
#define PATHFUZZ_TELEMETRY_REPORT_H

#include <cstdint>
#include <string>

namespace pathfuzz {
namespace telemetry {

/// Extract an unsigned field from one flat JSON line. False when the key
/// is absent or not a number.
bool jsonU64(const std::string &Line, const std::string &Key, uint64_t &Out);

/// Extract a string field (unescaping \" \\ \n \t \r).
bool jsonStr(const std::string &Line, const std::string &Key,
             std::string &Out);

/// Queue-trajectory CSV ("subject,fuzzer,seed,execs,queue") rebuilt from
/// sample lines. Byte-identical to Export's queueTrajectoryCsv over the
/// same traces — the round-trip oracle.
std::string queueCsvFromJsonl(const std::string &Jsonl);

/// Coverage CSV ("subject,fuzzer,seed,execs,edges") from sample lines.
std::string coverageCsvFromJsonl(const std::string &Jsonl);

/// Per-campaign crash-dedup summary CSV:
/// "subject,fuzzer,seed,crashes,unique_crashes,unique_bugs,dedup_events".
std::string crashSummaryFromJsonl(const std::string &Jsonl);

/// Machine-readable per-campaign end-state record (final queue size,
/// edges, crash totals) as a single JSON document, for BENCH_*.json
/// artifact trajectories.
std::string benchJsonFromJsonl(const std::string &Jsonl,
                               const std::string &Name);

} // namespace telemetry
} // namespace pathfuzz

#endif // PATHFUZZ_TELEMETRY_REPORT_H
