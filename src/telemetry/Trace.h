//===- Trace.h - Instance and campaign trace containers ---------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Ties the telemetry subsystem together:
//
//  - TraceConfig: the knobs, settable programmatically or via the
//    PATHFUZZ_TRACE environment variable (spec-list syntax mirroring
//    PATHFUZZ_FAULT_SITES):
//
//      PATHFUZZ_TRACE="out=trace.jsonl,sample@1024,ring@8192,csv"
//
//        on / 1       enable tracing with defaults
//        off / 0      force tracing off (wins over everything)
//        out=PATH     merged-JSONL output path for the bench exporters
//        sample@N     time-series sampling interval in execs
//        ring@N       event ring capacity (rounded up to a power of two)
//        csv          additionally emit queue/coverage CSVs next to `out`
//        wall         include wall-clock fields in exports (these are
//                     non-deterministic and excluded by default so merged
//                     traces stay byte-identical across job counts)
//
//      Any entry other than off/0 enables tracing; malformed entries are
//      skipped, like fault-site specs.
//
//  - Sample: one row of the exec-budget time-series (queue size, favored
//    set, coverage, crash/hang totals, culling stats, dictionary size) —
//    the machine-readable form of the paper's Fig. 2 / Tables I & III
//    inputs. Samples are keyed by execution index, the deterministic
//    analogue of the paper's wall-clock axis.
//
//  - InstanceTrace: one fuzzer instance's recorder — event ring + metrics
//    registry + sample series. Owned by the Fuzzer, serialized inside its
//    snapshot (the versioned metrics section), so a killed-and-resumed
//    campaign reports the same cumulative series as an uninterrupted one.
//
//  - CampaignTrace: a whole campaign's telemetry — one InstanceRecord per
//    fuzzer instance (culling rounds, opportunistic phases) with its
//    campaign-cumulative exec offset, plus campaign-level events (cull
//    verdicts, phase starts). This is what exporters and pathfuzz-report
//    consume.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TELEMETRY_TRACE_H
#define PATHFUZZ_TELEMETRY_TRACE_H

#include "support/Bytes.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"

#include <memory>
#include <string>
#include <vector>

namespace pathfuzz {
namespace telemetry {

struct TraceConfig {
  bool Enabled = false;
  /// Event ring capacity as log2 (default 4096 events).
  uint32_t RingCapacityLog2 = 12;
  /// Execs between time-series samples; 0 disables sampling.
  uint64_t SampleInterval = 2048;
  /// Merged-trace output path ("" = collect only, no file export).
  std::string OutPath;
  /// Also emit queue/coverage CSVs next to OutPath.
  bool Csv = false;
  /// Include wall-clock fields in exports (non-deterministic).
  bool Wall = false;
};

/// Parse PATHFUZZ_TRACE (see file comment). Unset → disabled defaults.
TraceConfig traceConfigFromEnv();

/// One time-series sample, keyed by instance-local exec index.
struct Sample {
  uint64_t Exec = 0;
  uint64_t QueueSize = 0;
  uint64_t Favored = 0;      ///< favored queue entries
  uint64_t EdgesCovered = 0; ///< distinct shadow edges so far
  uint64_t Crashes = 0;      ///< total crashing execs
  uint64_t UniqueCrashes = 0;
  uint64_t Hangs = 0;
  uint64_t UniqueBugs = 0;
  uint64_t CullPasses = 0; ///< favored-set recomputations (queue culls)
  uint64_t DictSize = 0;   ///< cmp-operand dictionary entries
};

bool operator==(const Sample &A, const Sample &B);

/// One fuzzer instance's recorder. Single-writer; the owning fuzzer is
/// the only mutator (see Telemetry.h for the sharding story).
class InstanceTrace {
public:
  explicit InstanceTrace(const TraceConfig &Cfg)
      : Cfg(Cfg), Ring(Cfg.RingCapacityLog2) {}

  void event(EventKind K, uint64_t Exec, uint32_t A32 = 0, uint64_t A64 = 0,
             uint8_t A8 = 0) {
    Event E;
    E.Exec = Exec;
    E.Kind = K;
    E.Arg32 = A32;
    E.Arg64 = A64;
    E.Arg8 = A8;
    Ring.push(E);
  }

  bool sampleDue(uint64_t Execs) const {
    return Cfg.SampleInterval != 0 && Execs % Cfg.SampleInterval == 0;
  }
  void sample(const Sample &S) { Samples.push_back(S); }

  const TraceConfig &config() const { return Cfg; }
  EventRing &ring() { return Ring; }
  const EventRing &ring() const { return Ring; }
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }
  const std::vector<Sample> &samples() const { return Samples; }

  /// Serialize the mutable state (ring, samples, metrics) — the snapshot
  /// "metrics section". Versioned independently of the snapshot envelope.
  void serializeState(ByteWriter &W) const;
  /// Restore state written by serializeState. Returns false on malformed
  /// or version-unknown input without guaranteeing partial effects.
  bool restoreState(ByteReader &R);

private:
  TraceConfig Cfg;
  EventRing Ring;
  MetricsRegistry Metrics;
  std::vector<Sample> Samples;
};

/// One fuzzer instance's telemetry, flattened into a campaign trace with
/// its campaign-cumulative exec offset.
struct InstanceRecord {
  std::string Label; ///< "main", "round2", "phase1", ...
  uint64_t ExecOffset = 0;
  std::vector<Event> Events;
  uint64_t EventsRecorded = 0; ///< lifetime pushes (>= Events.size())
  std::vector<Sample> Samples;
  MetricsRegistry Metrics;
};

/// A whole campaign's telemetry: identity, per-instance records and
/// campaign-level driver events (cull verdicts, phase starts) keyed by
/// campaign-cumulative exec index.
struct CampaignTrace {
  std::string Subject;
  std::string Fuzzer;
  uint64_t Seed = 0;
  std::vector<InstanceRecord> Instances;
  std::vector<Event> CampaignEvents;
  /// Wall-clock duration of the campaign (microseconds); 0 when not
  /// measured. Never exported in deterministic mode.
  uint64_t WallMicros = 0;
};

/// Append Tr's current state to T as a completed instance.
void collectInstance(CampaignTrace &T, std::string Label, uint64_t ExecOffset,
                     const InstanceTrace &Tr);

/// Checkpoint-payload serialization of a campaign trace (presence byte +
/// body); Null writes an absent trace.
void writeCampaignTrace(ByteWriter &W, const CampaignTrace *T);
/// Returns null for an absent trace; poisons R on malformed input.
std::shared_ptr<CampaignTrace> readCampaignTrace(ByteReader &R);

} // namespace telemetry
} // namespace pathfuzz

#endif // PATHFUZZ_TELEMETRY_TRACE_H
