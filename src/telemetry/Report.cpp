//===- Report.cpp - Artifact tables from trace JSONL ----------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Report.h"

#include "telemetry/Export.h"

#include <map>
#include <sstream>
#include <tuple>
#include <vector>

namespace pathfuzz {
namespace telemetry {

namespace {

/// Position just past `"Key":`, or npos. Keys are unique per line by
/// schema, so the first hit is the right one.
size_t findValue(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  return At == std::string::npos ? std::string::npos : At + Needle.size();
}

struct CampaignKey {
  std::string Subject;
  std::string Fuzzer;
  uint64_t Seed = 0;
  bool operator<(const CampaignKey &O) const {
    return std::tie(Subject, Fuzzer, Seed) <
           std::tie(O.Subject, O.Fuzzer, O.Seed);
  }
};

bool lineKey(const std::string &Line, CampaignKey &K) {
  return jsonStr(Line, "subject", K.Subject) &&
         jsonStr(Line, "fuzzer", K.Fuzzer) && jsonU64(Line, "seed", K.Seed);
}

bool lineType(const std::string &Line, const char *Type) {
  std::string T;
  return jsonStr(Line, "type", T) && T == Type;
}

template <typename Fn> void eachLine(const std::string &Jsonl, Fn F) {
  size_t Pos = 0;
  while (Pos < Jsonl.size()) {
    size_t Nl = Jsonl.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Jsonl.size();
    if (Nl > Pos)
      F(Jsonl.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
}

/// Sample-line series CSV ("execs" plus one value field), preserving the
/// exporter's line order so the round-trip is byte-exact.
std::string seriesCsv(const std::string &Jsonl, const char *Header,
                      const char *Field) {
  std::ostringstream O;
  O << Header << "\n";
  eachLine(Jsonl, [&](const std::string &Line) {
    if (!lineType(Line, "sample"))
      return;
    CampaignKey K;
    uint64_t Exec = 0, Value = 0;
    if (!lineKey(Line, K) || !jsonU64(Line, "exec", Exec) ||
        !jsonU64(Line, Field, Value))
      return;
    O << csvField(K.Subject) << "," << csvField(K.Fuzzer) << "," << K.Seed
      << "," << Exec << "," << Value << "\n";
  });
  return O.str();
}

struct CrashTotals {
  uint64_t Crashes = 0;
  uint64_t UniqueCrashes = 0;
  uint64_t UniqueBugs = 0;
  uint64_t DedupEvents = 0;
};

struct EndState {
  uint64_t Exec = 0;
  uint64_t Queue = 0;
  uint64_t Edges = 0;
  uint64_t UniqueCrashes = 0;
};

} // namespace

bool jsonU64(const std::string &Line, const std::string &Key, uint64_t &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos || At >= Line.size())
    return false;
  uint64_t V = 0;
  size_t Digits = 0;
  while (At < Line.size() && Line[At] >= '0' && Line[At] <= '9') {
    V = V * 10 + (Line[At] - '0');
    ++At;
    ++Digits;
  }
  if (Digits == 0)
    return false;
  Out = V;
  return true;
}

bool jsonStr(const std::string &Line, const std::string &Key,
             std::string &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos || At >= Line.size() || Line[At] != '"')
    return false;
  ++At;
  std::string V;
  while (At < Line.size() && Line[At] != '"') {
    char C = Line[At];
    if (C == '\\' && At + 1 < Line.size()) {
      char E = Line[++At];
      switch (E) {
      case 'n':
        V += '\n';
        break;
      case 't':
        V += '\t';
        break;
      case 'r':
        V += '\r';
        break;
      default:
        V += E; // \" and \\ (and anything else, verbatim)
      }
    } else {
      V += C;
    }
    ++At;
  }
  if (At >= Line.size())
    return false; // unterminated string
  Out = V;
  return true;
}

std::string queueCsvFromJsonl(const std::string &Jsonl) {
  return seriesCsv(Jsonl, "subject,fuzzer,seed,execs,queue", "queue");
}

std::string coverageCsvFromJsonl(const std::string &Jsonl) {
  return seriesCsv(Jsonl, "subject,fuzzer,seed,execs,edges", "edges");
}

std::string crashSummaryFromJsonl(const std::string &Jsonl) {
  std::map<CampaignKey, CrashTotals> Rows;
  eachLine(Jsonl, [&](const std::string &Line) {
    CampaignKey K;
    if (!lineKey(Line, K))
      return;
    if (lineType(Line, "campaign")) {
      Rows[K]; // campaigns with zero crashes still get a row
      return;
    }
    if (lineType(Line, "sample")) {
      CrashTotals &T = Rows[K];
      uint64_t V = 0;
      // Samples are cumulative; the last one seen carries the totals.
      if (jsonU64(Line, "crashes", V) && V > T.Crashes)
        T.Crashes = V;
      if (jsonU64(Line, "uniq_crashes", V) && V > T.UniqueCrashes)
        T.UniqueCrashes = V;
      if (jsonU64(Line, "uniq_bugs", V) && V > T.UniqueBugs)
        T.UniqueBugs = V;
      return;
    }
    if (lineType(Line, "event")) {
      std::string Kind;
      if (jsonStr(Line, "kind", Kind) && Kind == "crash_deduped")
        ++Rows[K].DedupEvents;
    }
  });
  std::ostringstream O;
  O << "subject,fuzzer,seed,crashes,unique_crashes,unique_bugs,"
       "dedup_events\n";
  for (const auto &[K, T] : Rows)
    O << csvField(K.Subject) << "," << csvField(K.Fuzzer) << "," << K.Seed
      << "," << T.Crashes << "," << T.UniqueCrashes << "," << T.UniqueBugs
      << "," << T.DedupEvents << "\n";
  return O.str();
}

std::string benchJsonFromJsonl(const std::string &Jsonl,
                               const std::string &Name) {
  std::map<CampaignKey, EndState> Rows;
  eachLine(Jsonl, [&](const std::string &Line) {
    CampaignKey K;
    if (!lineKey(Line, K))
      return;
    if (lineType(Line, "campaign")) {
      Rows[K];
      return;
    }
    if (!lineType(Line, "sample"))
      return;
    EndState &E = Rows[K];
    uint64_t Exec = 0;
    if (!jsonU64(Line, "exec", Exec) || Exec < E.Exec)
      return;
    E.Exec = Exec;
    jsonU64(Line, "queue", E.Queue);
    jsonU64(Line, "edges", E.Edges);
    jsonU64(Line, "uniq_crashes", E.UniqueCrashes);
  });
  std::ostringstream O;
  O << "{\"name\":\"" << Name << "\",\"configs\":[";
  bool First = true;
  for (const auto &[K, E] : Rows) {
    if (!First)
      O << ",";
    First = false;
    O << "{\"subject\":\"" << K.Subject << "\",\"fuzzer\":\"" << K.Fuzzer
      << "\",\"seed\":" << K.Seed << ",\"final_exec\":" << E.Exec
      << ",\"final_queue\":" << E.Queue << ",\"final_edges\":" << E.Edges
      << ",\"unique_crashes\":" << E.UniqueCrashes << "}";
  }
  O << "]}\n";
  return O.str();
}

} // namespace telemetry
} // namespace pathfuzz
