//===- Trace.cpp - Instance and campaign trace containers -----------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Trace.h"

#include "support/Env.h"

namespace pathfuzz {
namespace telemetry {

const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::ExecCompleted:
    return "exec";
  case EventKind::SeedAdded:
    return "seed_added";
  case EventKind::SeedCulled:
    return "seed_culled";
  case EventKind::CycleStarted:
    return "cycle_started";
  case EventKind::CrashDeduped:
    return "crash_deduped";
  case EventKind::HangDeduped:
    return "hang_deduped";
  case EventKind::CheckpointWritten:
    return "checkpoint_written";
  case EventKind::FaultInjected:
    return "fault_injected";
  case EventKind::PhaseStarted:
    return "phase_started";
  }
  return "unknown";
}

TraceConfig traceConfigFromEnv() {
  TraceConfig Cfg;
  std::vector<std::string> Specs = envList("PATHFUZZ_TRACE");
  if (Specs.empty())
    return Cfg;
  bool ForcedOff = false;
  for (const std::string &Spec : Specs) {
    if (Spec == "off" || Spec == "0") {
      ForcedOff = true;
      continue;
    }
    if (Spec == "on" || Spec == "1")
      continue; // Enabled is implied by any accepted entry.
    if (Spec == "csv") {
      Cfg.Csv = true;
      continue;
    }
    if (Spec == "wall") {
      Cfg.Wall = true;
      continue;
    }
    if (Spec.rfind("out=", 0) == 0) {
      Cfg.OutPath = Spec.substr(4);
      continue;
    }
    std::string Name;
    uint64_t Value = 0;
    if (!splitSpecU64(Spec, Name, Value))
      continue; // malformed entry: skip, like fault-site specs
    if (Name == "sample") {
      Cfg.SampleInterval = Value;
    } else if (Name == "ring") {
      // Round the requested capacity up to a power of two; the ring
      // clamps the exponent to its supported range.
      uint32_t Log2 = 0;
      while ((uint64_t(1) << Log2) < Value && Log2 < 20)
        ++Log2;
      Cfg.RingCapacityLog2 = Log2;
    }
    // Unknown names are skipped.
  }
  Cfg.Enabled = !ForcedOff;
  return Cfg;
}

bool operator==(const Sample &A, const Sample &B) {
  return A.Exec == B.Exec && A.QueueSize == B.QueueSize &&
         A.Favored == B.Favored && A.EdgesCovered == B.EdgesCovered &&
         A.Crashes == B.Crashes && A.UniqueCrashes == B.UniqueCrashes &&
         A.Hangs == B.Hangs && A.UniqueBugs == B.UniqueBugs &&
         A.CullPasses == B.CullPasses && A.DictSize == B.DictSize;
}

namespace {

/// Sub-version of the instance-state / campaign-trace wire format,
/// independent of the snapshot envelope version.
constexpr uint8_t TraceFormatVersion = 1;

void writeEvent(ByteWriter &W, const Event &E) {
  W.u64(E.Exec);
  W.u64(E.Arg64);
  W.u32(E.Arg32);
  W.u8(static_cast<uint8_t>(E.Kind));
  W.u8(E.Arg8);
}

Event readEvent(ByteReader &R) {
  Event E;
  E.Exec = R.u64();
  E.Arg64 = R.u64();
  E.Arg32 = R.u32();
  E.Kind = static_cast<EventKind>(R.u8());
  E.Arg8 = R.u8();
  return E;
}

void writeEvents(ByteWriter &W, const std::vector<Event> &Events) {
  W.u64(Events.size());
  for (const Event &E : Events)
    writeEvent(W, E);
}

std::vector<Event> readEvents(ByteReader &R) {
  uint64_t N = R.u64();
  // 22 serialized bytes per event; an impossible count poisons the reader
  // instead of attempting a huge allocation.
  if (N > R.remaining() / 22) {
    R.invalidate();
    return {};
  }
  std::vector<Event> Out;
  Out.reserve(N);
  for (uint64_t I = 0; I < N && R.ok(); ++I)
    Out.push_back(readEvent(R));
  return Out;
}

void writeSample(ByteWriter &W, const Sample &S) {
  W.u64(S.Exec);
  W.u64(S.QueueSize);
  W.u64(S.Favored);
  W.u64(S.EdgesCovered);
  W.u64(S.Crashes);
  W.u64(S.UniqueCrashes);
  W.u64(S.Hangs);
  W.u64(S.UniqueBugs);
  W.u64(S.CullPasses);
  W.u64(S.DictSize);
}

Sample readSample(ByteReader &R) {
  Sample S;
  S.Exec = R.u64();
  S.QueueSize = R.u64();
  S.Favored = R.u64();
  S.EdgesCovered = R.u64();
  S.Crashes = R.u64();
  S.UniqueCrashes = R.u64();
  S.Hangs = R.u64();
  S.UniqueBugs = R.u64();
  S.CullPasses = R.u64();
  S.DictSize = R.u64();
  return S;
}

void writeSamples(ByteWriter &W, const std::vector<Sample> &Samples) {
  W.u64(Samples.size());
  for (const Sample &S : Samples)
    writeSample(W, S);
}

std::vector<Sample> readSamples(ByteReader &R) {
  uint64_t N = R.u64();
  if (N > R.remaining() / 80) {
    R.invalidate();
    return {};
  }
  std::vector<Sample> Out;
  Out.reserve(N);
  for (uint64_t I = 0; I < N && R.ok(); ++I)
    Out.push_back(readSample(R));
  return Out;
}

} // namespace

void InstanceTrace::serializeState(ByteWriter &W) const {
  W.u8(TraceFormatVersion);
  writeEvents(W, Ring.events());
  W.u64(Ring.recorded());
  writeSamples(W, Samples);
  Metrics.serialize(W);
}

bool InstanceTrace::restoreState(ByteReader &R) {
  if (R.u8() != TraceFormatVersion) {
    R.invalidate();
    return false;
  }
  std::vector<Event> Events = readEvents(R);
  uint64_t Recorded = R.u64();
  std::vector<Sample> NewSamples = readSamples(R);
  if (!Metrics.deserialize(R) || !R.ok())
    return false;
  Ring.restore(Events, Recorded);
  Samples = std::move(NewSamples);
  return true;
}

void collectInstance(CampaignTrace &T, std::string Label, uint64_t ExecOffset,
                     const InstanceTrace &Tr) {
  InstanceRecord Rec;
  Rec.Label = std::move(Label);
  Rec.ExecOffset = ExecOffset;
  Rec.Events = Tr.ring().events();
  Rec.EventsRecorded = Tr.ring().recorded();
  Rec.Samples = Tr.samples();
  Rec.Metrics = Tr.metrics();
  T.Instances.push_back(std::move(Rec));
}

void writeCampaignTrace(ByteWriter &W, const CampaignTrace *T) {
  if (!T) {
    W.u8(0);
    return;
  }
  W.u8(1);
  W.u8(TraceFormatVersion);
  W.str(T->Subject);
  W.str(T->Fuzzer);
  W.u64(T->Seed);
  W.u64(T->Instances.size());
  for (const InstanceRecord &Rec : T->Instances) {
    W.str(Rec.Label);
    W.u64(Rec.ExecOffset);
    writeEvents(W, Rec.Events);
    W.u64(Rec.EventsRecorded);
    writeSamples(W, Rec.Samples);
    Rec.Metrics.serialize(W);
  }
  writeEvents(W, T->CampaignEvents);
  // WallMicros is deliberately absent: checkpoint payloads feed the
  // byte-identical resume oracle, and wall time is not reproducible.
}

std::shared_ptr<CampaignTrace> readCampaignTrace(ByteReader &R) {
  uint8_t Present = R.u8();
  if (Present == 0)
    return nullptr;
  if (Present != 1 || R.u8() != TraceFormatVersion) {
    R.invalidate();
    return nullptr;
  }
  auto T = std::make_shared<CampaignTrace>();
  T->Subject = R.str();
  T->Fuzzer = R.str();
  T->Seed = R.u64();
  uint64_t NInstances = R.u64();
  if (NInstances > R.remaining()) {
    R.invalidate();
    return nullptr;
  }
  for (uint64_t I = 0; I < NInstances && R.ok(); ++I) {
    InstanceRecord Rec;
    Rec.Label = R.str();
    Rec.ExecOffset = R.u64();
    Rec.Events = readEvents(R);
    Rec.EventsRecorded = R.u64();
    Rec.Samples = readSamples(R);
    if (!Rec.Metrics.deserialize(R))
      return nullptr;
    T->Instances.push_back(std::move(Rec));
  }
  T->CampaignEvents = readEvents(R);
  if (!R.ok())
    return nullptr;
  return T;
}

} // namespace telemetry
} // namespace pathfuzz
