//===- Export.h - JSONL / CSV trace exporters -------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Turns in-memory campaign traces into artifact files. Two formats:
//
//  - JSONL: one self-describing JSON object per line ("type" selects the
//    schema), flat keys, deterministic field order. This is the lingua
//    franca between campaigns and pathfuzz-report: the bench drivers write
//    it, the report tool reads it back.
//
//  - CSV: the two series the paper's figures plot directly — queue
//    trajectory (Fig. 2 / Table I) and coverage over execs (Table III).
//
// Determinism contract: traces are merged sorted by (subject, fuzzer,
// seed) — never by completion order — and wall-clock fields are omitted
// unless the config opts in, so the same campaign set produces
// byte-identical exports at any PATHFUZZ_JOBS value.
//
// Export failure is a degradation, not an abort: exportFile() reports
// errors (and hosts the `telemetry.export.fail` fault-injection site) so
// callers warn and keep the campaign results.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TELEMETRY_EXPORT_H
#define PATHFUZZ_TELEMETRY_EXPORT_H

#include "telemetry/Trace.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace telemetry {

/// JSONL for one campaign trace. Wall=true adds the non-deterministic
/// wall-clock fields.
std::string traceJsonl(const CampaignTrace &T, bool Wall = false);

/// Merged JSONL for a set of campaigns, sorted by (subject, fuzzer, seed).
/// Null entries are skipped (campaigns that ran without tracing).
std::string mergedJsonl(const std::vector<const CampaignTrace *> &Traces,
                        bool Wall = false);

/// RFC-4180 CSV field: quoted (with doubled inner quotes) only when the
/// value contains a comma, quote, or newline, so plain names — the
/// overwhelmingly common case — stay byte-identical to the unquoted form.
/// Every CSV emitter (Export and the report tool's JSONL re-derivations)
/// routes name fields through here so the round-trip stays exact.
std::string csvField(const std::string &Raw);

/// "subject,fuzzer,seed,execs,queue" rows from every sample, execs made
/// campaign-cumulative via each instance's offset. Same sort as the JSONL.
std::string queueTrajectoryCsv(const std::vector<const CampaignTrace *> &Traces);

/// "subject,fuzzer,seed,execs,edges" rows (coverage over the exec budget).
std::string coverageCsv(const std::vector<const CampaignTrace *> &Traces);

/// Write Content to Path. Returns false (with *Err set when non-null) on
/// failure; probes the `telemetry.export.fail` fault site first so tests
/// can prove export failure never aborts a campaign.
bool exportFile(const std::string &Path, const std::string &Content,
                std::string *Err = nullptr);

} // namespace telemetry
} // namespace pathfuzz

#endif // PATHFUZZ_TELEMETRY_EXPORT_H
