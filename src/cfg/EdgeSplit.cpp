//===- EdgeSplit.cpp - Critical-edge splitting -------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cfg/EdgeSplit.h"

#include <cassert>

namespace pathfuzz {
namespace cfg {

uint32_t splitEdge(mir::Function &F, uint32_t Src, uint32_t Slot) {
  assert(Src < F.Blocks.size() && "invalid source block");
  mir::Terminator &T = F.Blocks[Src].Term;
  assert(Slot < T.Succs.size() && "invalid successor slot");

  uint32_t OldDst = T.Succs[Slot];
  uint32_t NewBlock = static_cast<uint32_t>(F.Blocks.size());

  mir::BasicBlock Trampoline;
  Trampoline.Name = F.Blocks[Src].Name + ".split" + std::to_string(Slot);
  Trampoline.Term.Kind = mir::TermKind::Br;
  Trampoline.Term.Succs = {OldDst};
  F.Blocks.push_back(std::move(Trampoline));

  // Note: push_back may invalidate T; re-fetch.
  F.Blocks[Src].Term.Succs[Slot] = NewBlock;
  return NewBlock;
}

} // namespace cfg
} // namespace pathfuzz
