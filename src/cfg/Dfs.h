//===- Dfs.h - Shared deterministic graph traversal -------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// One deterministic depth-first walk shared by every CFG consumer. The
// Ball-Larus planner (src/bl), the instrumentation auditor
// (src/instrument/Audit) and the dataflow analyses (src/analysis) all
// depend on agreeing about which edges are back edges and what the
// (reverse) postorder of a function is; historically each client carried
// its own DFS, and a divergence between the planner's notion of "back
// edge" and the auditor's would make the audit vacuous. This walk is that
// single source of truth: CfgView::classifyEdges, the dominator and
// post-dominator builders, and (through CfgView) BLDag::build all consume
// it.
//
// The walk is expressed over an edge-indexed adjacency shape — a node's
// out-edges as a list of edge indices plus a flat edge->destination map —
// because that is exactly what CfgView stores, and because the
// post-dominator builder reuses it verbatim on the reversed graph.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_CFG_DFS_H
#define PATHFUZZ_CFG_DFS_H

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace cfg {

/// Result of one depth-first walk from a root.
struct DfsResult {
  /// Per node: reachable from the root.
  std::vector<bool> Reachable;
  /// Per edge index: targets a node on the current DFS stack (gray), the
  /// Ball-Larus notion of a back edge. Deterministic because out-edges are
  /// visited in slot order.
  std::vector<bool> BackEdge;
  /// Reachable nodes in DFS postorder. Reversing it yields an RPO of the
  /// full graph and simultaneously a topological order of the graph with
  /// back edges removed (a DFS never descends through a back edge, so the
  /// two orders coincide).
  std::vector<uint32_t> PostOrder;
  unsigned NumBackEdges = 0;
};

/// Deterministic iterative DFS over an edge-indexed graph: OutEdges maps a
/// node to the indices of its outgoing edges (visited in order) and
/// EdgeDst maps an edge index to its destination node.
DfsResult depthFirstWalk(uint32_t NumNodes, uint32_t Root,
                         const std::vector<std::vector<uint32_t>> &OutEdges,
                         const std::vector<uint32_t> &EdgeDst);

} // namespace cfg
} // namespace pathfuzz

#endif // PATHFUZZ_CFG_DFS_H
