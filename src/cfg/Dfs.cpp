//===- Dfs.cpp - Shared deterministic graph traversal ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dfs.h"

namespace pathfuzz {
namespace cfg {

DfsResult depthFirstWalk(uint32_t NumNodes, uint32_t Root,
                         const std::vector<std::vector<uint32_t>> &OutEdges,
                         const std::vector<uint32_t> &EdgeDst) {
  DfsResult R;
  R.Reachable.assign(NumNodes, false);
  R.BackEdge.assign(EdgeDst.size(), false);
  if (NumNodes == 0 || Root >= NumNodes)
    return R;
  R.PostOrder.reserve(NumNodes);

  // Tri-color marking: an edge into a gray (on-stack) node is a back edge.
  // Back, forward and cross edges are never descended, so the one tree walk
  // simultaneously yields the back-edge classification and a postorder
  // whose reverse topologically orders the back-edge-free remainder.
  enum : uint8_t { White, Gray, Black };
  std::vector<uint8_t> Color(NumNodes, White);
  struct Frame {
    uint32_t Node;
    uint32_t NextSlot;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Root, 0});
  Color[Root] = Gray;
  R.Reachable[Root] = true;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const std::vector<uint32_t> &Out = OutEdges[Top.Node];
    if (Top.NextSlot == Out.size()) {
      Color[Top.Node] = Black;
      R.PostOrder.push_back(Top.Node);
      Stack.pop_back();
      continue;
    }
    uint32_t EdgeIndex = Out[Top.NextSlot++];
    uint32_t Dst = EdgeDst[EdgeIndex];
    if (Color[Dst] == Gray) {
      R.BackEdge[EdgeIndex] = true;
      ++R.NumBackEdges;
      continue;
    }
    if (Color[Dst] == White) {
      Color[Dst] = Gray;
      R.Reachable[Dst] = true;
      Stack.push_back({Dst, 0});
    }
  }
  return R;
}

} // namespace cfg
} // namespace pathfuzz
