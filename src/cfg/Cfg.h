//===- Cfg.h - Control-flow graph view and analyses -------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// CfgView materializes the control-flow graph of a MIR function: explicit
// edge objects (a CFG edge is a (source block, successor slot) pair, so two
// switch cases targeting the same block are distinct edges, as in LLVM),
// predecessor lists, DFS-based back-edge classification, reachability, and
// a topological order of the acyclic remainder. These analyses feed the
// Ball-Larus DAG construction (src/bl) and the probe-placement passes
// (src/instrument).
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_CFG_CFG_H
#define PATHFUZZ_CFG_CFG_H

#include "mir/Mir.h"

#include <cstdint>
#include <vector>

namespace pathfuzz {
namespace cfg {

/// A CFG edge: the Slot-th successor of block Src (targeting Dst).
struct Edge {
  uint32_t Src = 0;
  uint32_t Slot = 0;
  uint32_t Dst = 0;

  bool operator==(const Edge &O) const {
    return Src == O.Src && Slot == O.Slot && Dst == O.Dst;
  }
};

/// Immutable CFG view of a function with the standard analyses the
/// instrumentation passes need. Invalidated by any mutation of the
/// function's block structure.
class CfgView {
public:
  explicit CfgView(const mir::Function &F);

  unsigned numBlocks() const { return static_cast<unsigned>(Succ.size()); }

  /// All edges, in (block, slot) order.
  const std::vector<Edge> &edges() const { return AllEdges; }

  /// Outgoing edges of a block (indices into edges()).
  const std::vector<uint32_t> &succEdges(uint32_t Block) const {
    return Succ[Block];
  }

  /// Incoming edges of a block (indices into edges()).
  const std::vector<uint32_t> &predEdges(uint32_t Block) const {
    return Pred[Block];
  }

  /// Whether the block is reachable from the entry block.
  bool isReachable(uint32_t Block) const { return Reachable[Block]; }

  /// Whether an edge (by index) is a DFS back edge. Back edges found on a
  /// deterministic DFS from the entry; paths are truncated at them, exactly
  /// as the Ball-Larus scheme prescribes.
  bool isBackEdge(uint32_t EdgeIndex) const { return BackEdge[EdgeIndex]; }

  /// Number of back edges among reachable blocks.
  unsigned numBackEdges() const { return NumBackEdges; }

  /// Indices of all back edges, in edge order. This is the canonical list
  /// the Ball-Larus planner (BLDag::build) iterates when adding dummy
  /// edges, so planner and auditor share one back-edge definition.
  const std::vector<uint32_t> &backEdgeIndices() const {
    return BackEdgeList;
  }

  /// Reachable blocks in a topological order of the graph without back
  /// edges (entry first).
  const std::vector<uint32_t> &topoOrder() const { return Topo; }

  /// Whether the block ends in a return.
  bool isExitBlock(uint32_t Block) const { return ExitBlock[Block]; }

  /// True if the edge is critical: its source has multiple successors and
  /// its destination multiple predecessors. Instrumenting such an edge
  /// requires splitting it first.
  bool isCriticalEdge(uint32_t EdgeIndex) const;

private:
  void build(const mir::Function &F);
  void classifyEdges();

  std::vector<Edge> AllEdges;
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<std::vector<uint32_t>> Pred;
  std::vector<bool> Reachable;
  std::vector<bool> BackEdge;
  std::vector<uint32_t> BackEdgeList;
  std::vector<bool> ExitBlock;
  std::vector<uint32_t> Topo;
  unsigned NumBackEdges = 0;
};

// Dominator trees and natural-loop info live in src/analysis/Dominators.h
// (analysis::DominatorTree, analysis::PostDominatorTree, analysis::LoopInfo)
// together with the rest of the dataflow analyses.

} // namespace cfg
} // namespace pathfuzz

#endif // PATHFUZZ_CFG_CFG_H
