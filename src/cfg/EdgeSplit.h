//===- EdgeSplit.h - Critical-edge splitting --------------------*- C++ -*-===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//
//
// Probe placement instruments *edges*. When an edge is critical (multi-succ
// source into multi-pred destination) the probe cannot live in either
// endpoint without over-counting, so the edge gets split with a fresh
// trampoline block — the classic compiler transform LLVM performs for the
// same purpose.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_CFG_EDGESPLIT_H
#define PATHFUZZ_CFG_EDGESPLIT_H

#include "mir/Mir.h"

#include <cstdint>

namespace pathfuzz {
namespace cfg {

/// Split the Slot-th successor edge of block Src in F: a new block with an
/// unconditional branch to the old destination is appended and the
/// terminator retargeted to it. Returns the new block's index. Existing
/// block indices remain valid (new blocks are appended).
uint32_t splitEdge(mir::Function &F, uint32_t Src, uint32_t Slot);

} // namespace cfg
} // namespace pathfuzz

#endif // PATHFUZZ_CFG_EDGESPLIT_H
