//===- Cfg.cpp - Control-flow graph view and analyses ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "cfg/Dfs.h"

namespace pathfuzz {
namespace cfg {

CfgView::CfgView(const mir::Function &F) {
  build(F);
  classifyEdges();
}

void CfgView::build(const mir::Function &F) {
  unsigned N = F.numBlocks();
  Succ.assign(N, {});
  Pred.assign(N, {});
  Reachable.assign(N, false);
  ExitBlock.assign(N, false);

  for (uint32_t B = 0; B < N; ++B) {
    const mir::Terminator &T = F.Blocks[B].Term;
    if (T.Kind == mir::TermKind::Ret)
      ExitBlock[B] = true;
    for (uint32_t Slot = 0; Slot < T.Succs.size(); ++Slot) {
      Edge E;
      E.Src = B;
      E.Slot = Slot;
      E.Dst = T.Succs[Slot];
      uint32_t Index = static_cast<uint32_t>(AllEdges.size());
      AllEdges.push_back(E);
      Succ[B].push_back(Index);
      Pred[E.Dst].push_back(Index);
    }
  }
}

void CfgView::classifyEdges() {
  unsigned N = numBlocks();
  BackEdge.assign(AllEdges.size(), false);
  if (N == 0)
    return;

  std::vector<uint32_t> EdgeDst(AllEdges.size());
  for (uint32_t I = 0; I < AllEdges.size(); ++I)
    EdgeDst[I] = AllEdges[I].Dst;

  DfsResult R = depthFirstWalk(N, 0, Succ, EdgeDst);
  Reachable = std::move(R.Reachable);
  BackEdge = std::move(R.BackEdge);
  NumBackEdges = R.NumBackEdges;
  for (uint32_t I = 0; I < BackEdge.size(); ++I)
    if (BackEdge[I])
      BackEdgeList.push_back(I);

  // Reversed DFS postorder is simultaneously an RPO of the full graph and a
  // topological order of the reachable blocks with back edges removed.
  Topo.assign(R.PostOrder.rbegin(), R.PostOrder.rend());
}

bool CfgView::isCriticalEdge(uint32_t EdgeIndex) const {
  const Edge &E = AllEdges[EdgeIndex];
  return Succ[E.Src].size() > 1 && Pred[E.Dst].size() > 1;
}

} // namespace cfg
} // namespace pathfuzz
